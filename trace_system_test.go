package tornado_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"tornado"
	"tornado/internal/algorithms"
	"tornado/internal/datasets"
	"tornado/internal/obs/trace"
	"tornado/internal/stream"
)

// TestEndToEndFreshnessTrace is the PR acceptance check for the causal span
// pipeline: with full head sampling, a sampled input delta's trace must show
// at least six distinct pipeline stages with non-zero attributed durations,
// both through the in-process API and reconstructed from the /traces HTTP
// endpoint; a query submitted through the service must leave query_* spans;
// and Result.Freshness must track the journal lag exactly.
func TestEndToEndFreshnessTrace(t *testing.T) {
	sys, err := tornado.New(algorithms.SSSP{Source: 0}, tornado.Options{
		Processors:     2,
		DelayBound:     16,
		SpanSampleRate: 1,
		MetricsAddr:    "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	sys.IngestAll(datasets.PowerLawGraph(80, 3, 17))
	if err := sys.WaitQuiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	// A full input trace: spout/gate are recorded only on the per-tuple path
	// (the feed or single Ingest); the IngestAll fast path starts at batch.
	sys.Ingest(stream.AddEdge(stream.Timestamp(1_000_000), 0, 79))
	if err := sys.WaitQuiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	wantInput := []string{"gate", "batch", "frame", "inbox", "process", "commit", "frontier"}
	views := sys.Spans().Traces(trace.Filter{Stage: "gate", Limit: 4})
	if len(views) == 0 {
		t.Fatal("no trace passing through the admission gate retained")
	}
	best := views[0]
	stages := make(map[string]bool, len(best.Stages))
	for _, s := range best.Stages {
		stages[s] = true
	}
	var missing []string
	for _, s := range wantInput {
		if !stages[s] {
			missing = append(missing, s)
		}
	}
	if len(missing) > 0 || len(best.Stages) < 6 {
		t.Fatalf("input trace %d covers stages %v; missing %v", best.Trace, best.Stages, missing)
	}
	for _, sp := range best.Spans {
		if sp.Dur <= 0 {
			t.Fatalf("span %q of trace %d has non-positive duration %v", sp.Stage, best.Trace, sp.Dur)
		}
	}

	// The same trace must be reconstructible over HTTP.
	url := fmt.Sprintf("%s/traces?trace=%d", sys.MetricsURL(), best.Trace)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, body)
	}
	var payload struct {
		Traces []struct {
			Trace  uint64   `json:"trace"`
			Stages []string `json:"stages"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("/traces not JSON: %v\n%s", err, body)
	}
	if len(payload.Traces) != 1 || payload.Traces[0].Trace != best.Trace {
		t.Fatalf("/traces?trace=%d returned %+v", best.Trace, payload.Traces)
	}
	if len(payload.Traces[0].Stages) < 6 {
		t.Fatalf("/traces shows %v for trace %d; want >= 6 stages",
			payload.Traces[0].Stages, best.Trace)
	}

	// Query path: Submit leaves query_* spans and Freshness tracks lag.
	tk, err := sys.Submit(context.Background(), tornado.QuerySpec{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Freshness(); got != 0 {
		t.Fatalf("Freshness() = %d right after an exact query; want 0", got)
	}
	const lag = 23
	var extra []stream.Tuple
	for i := 0; i < lag; i++ {
		extra = append(extra, stream.AddEdge(stream.Timestamp(2_000_000+i),
			stream.VertexID(i%40), stream.VertexID((i+11)%40)))
	}
	sys.IngestAll(extra)
	if got := res.Freshness(); got != lag {
		t.Fatalf("Freshness() = %d after %d more deltas; want %d", got, lag, lag)
	}
	res.Close()

	qviews := sys.Spans().Traces(trace.Filter{Stage: "query_serve", Limit: 1})
	if len(qviews) == 0 {
		t.Fatal("no query trace with a query_serve span retained")
	}
	qstages := map[string]bool{}
	for _, s := range qviews[0].Stages {
		qstages[s] = true
	}
	for _, s := range []string{"query_submit", "query_queue", "query_fork", "query_wait", "query_serve"} {
		if !qstages[s] {
			t.Fatalf("query trace %d covers %v; missing %q", qviews[0].Trace, qviews[0].Stages, s)
		}
	}
}

// TestFeedSpoutHeadsTrace pins the full eight-stage input path: a delta
// pulled from an attached source takes its sampling decision at the spout,
// and its trace runs spout → gate → batch → frame → inbox → process →
// commit → frontier.
func TestFeedSpoutHeadsTrace(t *testing.T) {
	sys, err := tornado.New(algorithms.SSSP{Source: 0}, tornado.Options{
		Processors:     2,
		SpanSampleRate: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	q := stream.NewQueue()
	feed, err := sys.AttachSource(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		q.Push(stream.AddEdge(stream.Timestamp(i), stream.VertexID(i%6), stream.VertexID((i+1)%6)))
	}
	q.Close()
	if err := feed.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitQuiesce(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	views := sys.Spans().Traces(trace.Filter{Stage: "spout", Limit: 2})
	if len(views) == 0 {
		t.Fatal("no spout-stage trace from the feed path")
	}
	got := map[string]bool{}
	for _, s := range views[0].Stages {
		got[s] = true
	}
	for _, s := range []string{"spout", "gate", "batch", "frame", "inbox", "process", "commit", "frontier"} {
		if !got[s] {
			t.Fatalf("feed trace %d covers %v; missing %q", views[0].Trace, views[0].Stages, s)
		}
	}
}
