// Command tornado-shell is an interactive Tornado session: feed edges of an
// evolving graph line by line and query the exact fixed point (SSSP or
// PageRank) at any instant. It demonstrates the main-loop / branch-loop
// split live: ingestion never blocks on queries and queries never wait for
// recomputation.
//
// Usage:
//
//	tornado-shell [-algo sssp|pagerank] [-mode value|delta] [-source N] [-procs N] [-bound B] [-spares N] [-autoscale]
//
// With -mode delta the loop runs the delta-accumulative engine (DESIGN.md
// §13): updates fold into per-vertex pending deltas, a priority queue
// activates the most significant ones first, and 'stats' additionally shows
// the activation queue depth, merged/parked counts and the significance
// boost. The fixed point is identical to value mode.
//
// Commands (also via piped stdin):
//
//	add <src> <dst>      insert the edge src -> dst
//	remove <src> <dst>   retract the edge
//	load <n> <epv> <seed> generate a power-law graph and ingest it
//	query                fork a branch loop and print the fixed point
//	submit [d] [p]       enqueue an async query (staleness tolerance d
//	                     journal deltas, priority p) and print its ticket id
//	queries              list live/finished tickets and service counters
//	result <id>          collect a finished ticket's fixed point
//	cancel <id>          cancel a queued/running ticket
//	approx               print the main loop's current approximation
//	merge                query, then merge the result back (Section 5.2)
//	stats                runtime counters and loop snapshot
//	store                MVCC store stats: live versions, resident bytes,
//	                     compactions, reclaimed versions, pinned snapshots
//	                     and the oldest snapshot's age
//	flow                 backpressure and overload state (alias: pressure):
//	                     the degradation-ladder level, admission-gate
//	                     ledger, transport inbox watermark state, the
//	                     effective delay bound and query shedding
//	trace [id]           no argument: print recent end-to-end causal
//	                     freshness traces (sampled input deltas and queries
//	                     with per-stage latency attribution); with a vertex
//	                     id: that vertex's recorded protocol events
//	slow [min-ms] [n]    the n slowest retained traces at least min-ms of
//	                     wall time (defaults 0ms, 8)
//	watch <id>           force tracing of a vertex (ignore sampling)
//	partitions           the live partition plan: epoch, per-slot state
//	                     (active/spare/quarantined), hosted vertices and
//	                     commit/update counters, layered range overrides
//	                     and lifetime migration counters
//	scale out            split the hottest partition onto a spare slot as
//	                     a live migration (ingestion keeps running)
//	scale in <slot>      drain slot live and retire it from the plan
//	scale move <lo> <hi> <slot>  migrate the vertex range [lo, hi] onto
//	                     slot without stopping the loop (DESIGN.md §16)
//	crash <i|master>     crash processor i (or the master) for real:
//	                     its in-memory state dies; the heartbeat
//	                     supervisor restarts the loop from the last
//	                     checkpoint (Section 5.3)
//	recover              manual checkpoint restart (when -heartbeat 0)
//	faults               print the recovery log and quarantined set
//	help                 this text
//	quit
//
// With -metrics host:port the session serves /metrics (Prometheus text),
// /statusz (JSON) and /debug/pprof while it runs.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"tornado"
	"tornado/internal/algorithms"
	"tornado/internal/datasets"
	"tornado/internal/obs/trace"
	"tornado/internal/stream"
)

func main() {
	algo := flag.String("algo", "sssp", "algorithm: sssp or pagerank")
	mode := flag.String("mode", "value", "execution mode: value or delta (delta-accumulative with selective activation)")
	source := flag.Uint64("source", 0, "SSSP source vertex")
	procs := flag.Int("procs", 4, "processors")
	bound := flag.Int64("bound", 64, "delay bound B (1 = synchronous)")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /statusz, /debug/pprof on host:port (\":0\" picks a port)")
	traceEvery := flag.Int("trace-sample", 0, "trace 1 in N vertices (0 = default 64, 1 = all, negative = watched only)")
	spanRate := flag.Float64("span-sample", 0, "head-sampling rate for causal freshness traces (0 = default 1%, 1 = all, negative = off)")
	heartbeat := flag.Duration("heartbeat", 25*time.Millisecond, "supervision heartbeat interval (0 = unsupervised; 'crash' then needs 'recover')")
	wire := flag.Bool("wire", false, "run the message plane over a TCP loopback socket (serialized, CRC-framed, supervised reconnects)")
	spares := flag.Int("spares", 1, "spare processor slots for live hot splits ('scale out'/'scale move'; 0 disables elasticity)")
	autoscale := flag.Bool("autoscale", false, "run the pressure-driven split/merge planner in the background")
	flag.Parse()

	deltaMode := *mode == "delta"
	if !deltaMode && *mode != "value" {
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	var prog tornado.Program
	var dprog tornado.DeltaProgram
	var render func(id tornado.VertexID, state any) string
	switch *algo {
	case "sssp":
		if deltaMode {
			dprog = algorithms.DeltaSSSP{Source: tornado.VertexID(*source)}
		} else {
			prog = algorithms.SSSP{Source: tornado.VertexID(*source)}
		}
		render = func(id tornado.VertexID, state any) string {
			var d int64
			switch st := state.(type) {
			case *algorithms.SSSPState:
				d = st.Length
			case *algorithms.DeltaSSSPState:
				d = st.Length
			}
			if d >= algorithms.Unreachable {
				return fmt.Sprintf("%d: unreachable", id)
			}
			return fmt.Sprintf("%d: %d hops", id, d)
		}
	case "pagerank":
		if deltaMode {
			dprog = algorithms.DeltaPageRank{Epsilon: 1e-4}
		} else {
			prog = algorithms.PageRank{Epsilon: 1e-4}
		}
		render = func(id tornado.VertexID, state any) string {
			return fmt.Sprintf("%d: rank %.4f", id, state.(*algorithms.PageRankState).Rank)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	opts := tornado.Options{
		Processors:        *procs,
		DelayBound:        *bound,
		MetricsAddr:       *metricsAddr,
		TraceSampleEvery:  *traceEvery,
		SpanSampleRate:    *spanRate,
		HeartbeatInterval: *heartbeat,
	}
	if *spares > 0 {
		opts.Elastic = tornado.ElasticOptions{
			MaxProcessors: *procs + *spares,
			AutoScale:     *autoscale,
		}
	}
	if *wire {
		opts.Wire = &tornado.WireSpec{}
	}
	var sys *tornado.System
	var err error
	if deltaMode {
		sys, err = tornado.NewDelta(dprog, opts)
	} else {
		sys, err = tornado.New(prog, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer sys.Close()

	fmt.Printf("tornado-shell: %s (%s mode), %d processors, B=%d (type 'help')\n", *algo, *mode, *procs, *bound)
	if addr := sys.WireAddr(); addr != "" {
		fmt.Printf("wire: %s\n", addr)
	}
	if url := sys.MetricsURL(); url != "" {
		fmt.Printf("observability: %s/metrics %s/statusz %s/debug/pprof\n", url, url, url)
	}
	ts := stream.Timestamp(0)
	sc := bufio.NewScanner(os.Stdin)
	for prompt(); sc.Scan(); prompt() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "add", "remove":
			src, dst, err := parseEdge(fields)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			ts++
			if fields[0] == "add" {
				sys.Ingest(stream.AddEdge(ts, src, dst))
			} else {
				sys.Ingest(stream.RemoveEdge(ts, src, dst))
			}
		case "load":
			if len(fields) != 4 {
				fmt.Println("usage: load <vertices> <edges-per-vertex> <seed>")
				continue
			}
			n, _ := strconv.Atoi(fields[1])
			epv, _ := strconv.Atoi(fields[2])
			seed, _ := strconv.ParseInt(fields[3], 10, 64)
			tuples := datasets.PowerLawGraph(n, epv, seed)
			sys.IngestAll(tuples)
			fmt.Printf("ingested %d edge updates\n", len(tuples))
		case "query":
			runQuery(sys, render, false)
		case "merge":
			runQuery(sys, render, true)
		case "submit":
			var spec tornado.QuerySpec
			if len(fields) > 1 {
				d, err := strconv.ParseUint(fields[1], 10, 64)
				if err != nil {
					fmt.Println("usage: submit [stale-deltas] [priority]")
					continue
				}
				spec.MaxStaleDeltas = d
			}
			if len(fields) > 2 {
				p, err := strconv.Atoi(fields[2])
				if err != nil {
					fmt.Println("usage: submit [stale-deltas] [priority]")
					continue
				}
				spec.Priority = p
			}
			tk, err := sys.Submit(context.Background(), spec)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("ticket %d submitted ('result %d' to collect, 'queries' to list)\n", tk.ID(), tk.ID())
		case "queries":
			qs := sys.QueryService()
			for _, info := range qs.Queries() {
				line := fmt.Sprintf("  #%-4d %-8s age=%-12v prio=%d", info.ID, info.State, info.Age.Round(time.Millisecond), info.Priority)
				if info.Coalesced {
					line += " coalesced"
				}
				if info.CacheHit {
					line += " cache-hit"
				}
				if info.Err != "" {
					line += " error=" + info.Err
				}
				fmt.Println(line)
			}
			snap := qs.Snapshot()
			fmt.Printf("submitted=%d admitted=%d coalesced=%d cache-hits=%d shed=%d cancelled=%d expired=%d\n",
				snap.Submitted, snap.Admitted, snap.Coalesced, snap.CacheHits, snap.Shed, snap.Cancelled, snap.Expired)
			fmt.Printf("queue-depth=%d inflight=%d cached=%d live-tickets=%d\n",
				snap.QueueDepth, snap.Inflight, snap.Cached, snap.Tickets)
		case "result":
			if len(fields) != 2 {
				fmt.Println("usage: result <ticket-id>")
				continue
			}
			id, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			tk, ok := sys.QueryService().Ticket(id)
			if !ok {
				fmt.Println("no such ticket (already collected or cancelled?)")
				continue
			}
			res, qerr, done := tk.Poll()
			if !done {
				fmt.Println("still pending (try again, or 'cancel' it)")
				continue
			}
			if qerr != nil {
				fmt.Println("query failed:", qerr)
				continue
			}
			var lines []string
			scanErr := res.Scan(func(id tornado.VertexID, state any) error {
				lines = append(lines, render(id, state))
				return nil
			})
			if scanErr != nil {
				fmt.Println("error:", scanErr)
				res.Close()
				continue
			}
			printSorted(lines)
			tag := ""
			if res.CacheHit {
				tag = fmt.Sprintf(", served from cache %d deltas stale", res.Staleness)
			} else if res.Coalesced {
				tag = ", coalesced with a concurrent query"
			}
			fmt.Printf("(latency %v%s)\n", res.Latency.Round(time.Microsecond), tag)
			res.Close()
		case "cancel":
			if len(fields) != 2 {
				fmt.Println("usage: cancel <ticket-id>")
				continue
			}
			id, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if sys.QueryService().Cancel(id) {
				fmt.Println("cancelled")
			} else {
				fmt.Println("no such ticket")
			}
		case "approx":
			var lines []string
			err := sys.ScanApprox(func(id tornado.VertexID, state any) error {
				lines = append(lines, render(id, state))
				return nil
			})
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			printSorted(lines)
		case "stats":
			s := sys.Stats()
			fmt.Printf("updates=%d update-msgs=%d prepares=%d acks=%d inputs=%d emits=%d\n",
				s.Commits, s.UpdateMsgs, s.PrepareMsgs, s.AckMsgs, s.InputMsgs, s.Emits)
			fmt.Printf("frontier=%d notified=%d pending-prepares=%d transport frames=%d delivered=%d resent=%d\n",
				s.Frontier, s.Notified, s.PendingPrepares, s.TransportSent, s.TransportDelivered, s.TransportResent)
			ppf, app := 0.0, 0.0
			if first := s.TransportSent - s.TransportResent; first > 0 {
				ppf = float64(s.TransportPayloads) / float64(first)
			}
			if s.TransportPayloads > 0 {
				app = float64(s.TransportAckFrames) / float64(s.TransportPayloads)
			}
			fmt.Printf("batching payloads=%d payloads/frame=%.2f coalesced=%d acks/payload=%.3f\n",
				s.TransportPayloads, ppf, s.Coalesced, app)
			fmt.Printf("generation=%d crashes=%d recoveries=%d quarantined=%d dead-letters=%d\n",
				s.Generation, s.Crashes, s.Recoveries, s.Quarantined, s.TransportDeadLetters)
			if deltaMode {
				fmt.Printf("delta queue-depth=%d merged=%d parked=%d applied=%d boost=%.1f\n",
					s.DeltaQueueDepth, s.DeltaMerged, s.DeltaSkipped, s.DeltaApplied, sys.DeltaBoost())
			}
			if addr := sys.WireAddr(); addr != "" {
				bpf := 0.0
				if s.WireTxFrames > 0 {
					bpf = float64(s.WireTxBytes) / float64(s.WireTxFrames)
				}
				fmt.Printf("wire addr=%s tx=%d rx=%d bytes tx=%d rx=%d (%.0f B/frame) reconnects=%d checksum-failures=%d torn=%d\n",
					addr, s.WireTxFrames, s.WireRxFrames, s.WireTxBytes, s.WireRxBytes,
					bpf, s.WireReconnects, s.WireChecksumFailures, s.WireTornFrames)
			}
			if url := sys.MetricsURL(); url != "" {
				fmt.Printf("endpoint: %s/metrics\n", url)
			}
		case "store":
			st, ok := sys.StoreStats()
			if !ok {
				fmt.Println("store backend does not expose MVCC stats")
				continue
			}
			fmt.Printf("loops=%d live-versions=%d resident-bytes=%d\n",
				st.Loops, st.LiveVersions, st.ResidentBytes)
			fmt.Printf("compactions=%d reclaimed-versions=%d pinned-snapshots=%d oldest-snapshot=%s\n",
				st.Compactions, st.ReclaimedVersions, st.PinnedSnapshots,
				st.OldestSnapshotAge.Round(time.Millisecond))
		case "flow", "pressure":
			fs := sys.FlowStats()
			qs := sys.QueryService().Snapshot()
			fmt.Printf("overload level=%d pressure=%.2f transitions=%d degraded-for=%s\n",
				fs.OverloadLevel, fs.Pressure, fs.OverloadTransitions, fs.Degraded.Round(time.Millisecond))
			sat := ""
			if fs.Engine.GateSaturated {
				sat = " SATURATED"
			}
			fmt.Printf("ingest gate depth=%d/%d peak=%d%s waits=%d paused-for=%s resets=%d\n",
				fs.Engine.GateDepth, fs.Engine.GateCapacity, fs.Engine.GatePeak, sat,
				fs.Engine.GateWaits, fs.Engine.GateWaitTime.Round(time.Millisecond), fs.Engine.GateResets)
			fmt.Printf("transport inbox max=%d total=%d stalled-endpoints=%d held-frames=%d stalls=%d frames-held=%d urgent-shed=%d\n",
				fs.Engine.InboxMax, fs.Engine.InboxTotal, fs.Engine.StalledEndpoints,
				fs.Engine.HeldFrames, fs.Engine.Stalls, fs.Engine.FramesHeld, fs.Engine.UrgentShed)
			fmt.Printf("delay bound effective=%d (configured %d)\n", fs.Engine.DelayBound, *bound)
			fmt.Printf("queries degrade-level=%d shed-low-priority=%d shed-total=%d queue-depth=%d\n",
				qs.DegradeLevel, qs.ShedLowPriority, qs.Shed, qs.QueueDepth)
		case "partitions":
			ps := sys.PlanStats()
			fmt.Printf("plan epoch=%d processors=%d/%d migrations=%d moved-vertices=%d aborts=%d\n",
				ps.Epoch, ps.BaseProcessors, ps.MaxProcessors, ps.Migrations, ps.MigratedVertices, ps.Aborts)
			for _, l := range sys.PartitionLoads() {
				state := "spare"
				switch {
				case l.Quarantined:
					state = "quarantined"
				case l.Active:
					state = "active"
				}
				line := fmt.Sprintf("  slot %d  %-11s vertices=%-7d commits=%-9d updates=%d",
					l.Proc, state, l.Vertices, l.Commits, l.Updates)
				if deltaMode {
					line += fmt.Sprintf("  queue=%d", l.QueueDepth)
				}
				fmt.Println(line)
			}
			if n := len(ps.Overrides); n > 0 {
				fmt.Printf("%d range override(s) layered on the base partition function:\n", n)
				for _, ov := range ps.Overrides {
					owner := "any owner"
					if ov.From >= 0 {
						owner = fmt.Sprintf("slot %d", ov.From)
					}
					fmt.Printf("  [%d, %d] owned by %s -> slot %d\n", ov.Range.Lo, ov.Range.Hi, owner, ov.Dest)
				}
			}
		case "scale":
			if len(fields) < 2 {
				fmt.Println("usage: scale out | scale in <slot> | scale move <lo> <hi> <slot>")
				continue
			}
			switch fields[1] {
			case "out":
				slot, err := sys.ScaleOut()
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				fmt.Printf("hottest partition split onto slot %d (plan epoch %d); 'partitions' to inspect\n",
					slot, sys.PlanStats().Epoch)
			case "in":
				if len(fields) != 3 {
					fmt.Println("usage: scale in <slot>")
					continue
				}
				slot, err := strconv.Atoi(fields[2])
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				if err := sys.ScaleIn(slot); err != nil {
					fmt.Println("error:", err)
					continue
				}
				fmt.Printf("slot %d drained and retired (plan epoch %d)\n", slot, sys.PlanStats().Epoch)
			case "move":
				if len(fields) != 5 {
					fmt.Println("usage: scale move <lo> <hi> <slot>")
					continue
				}
				lo, err1 := strconv.ParseUint(fields[2], 10, 64)
				hi, err2 := strconv.ParseUint(fields[3], 10, 64)
				slot, err3 := strconv.Atoi(fields[4])
				if err1 != nil || err2 != nil || err3 != nil {
					fmt.Println("usage: scale move <lo> <hi> <slot>")
					continue
				}
				if err := sys.Migrate(tornado.VertexID(lo), tornado.VertexID(hi), slot); err != nil {
					fmt.Println("error:", err)
					continue
				}
				fmt.Printf("range [%d, %d] migrated onto slot %d live (plan epoch %d)\n",
					lo, hi, slot, sys.PlanStats().Epoch)
			default:
				fmt.Println("usage: scale out | scale in <slot> | scale move <lo> <hi> <slot>")
			}
		case "crash":
			if len(fields) != 2 {
				fmt.Println("usage: crash <processor-index|master>")
				continue
			}
			if fields[1] == "master" {
				sys.CrashMaster()
				fmt.Println("master crashed: termination notifications stopped")
			} else {
				i, err := strconv.Atoi(fields[1])
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				sys.CrashProcessor(i)
				fmt.Printf("processor %d crashed: its in-memory state is gone\n", i)
			}
			if *heartbeat > 0 {
				fmt.Println("(the supervisor will restart the loop from the last checkpoint)")
			} else {
				fmt.Println("(unsupervised: run 'recover' to restart from the checkpoint)")
			}
		case "recover":
			if sys.RecoverFromCheckpoint() {
				fmt.Println("restarted from the last terminated iteration's checkpoint")
			} else {
				fmt.Println("nothing to do (a concurrent recovery already ran?)")
			}
		case "faults":
			log := sys.RecoveryLog()
			if len(log) == 0 {
				fmt.Println("no failures recorded")
			}
			for _, ev := range log {
				who := strconv.Itoa(ev.Proc)
				switch ev.Proc {
				case -1:
					who = "master"
				case -2:
					who = "loop"
				}
				line := fmt.Sprintf("  %s  gen %d  %-10s %s", ev.Time.Format("15:04:05.000"), ev.Gen, ev.Kind, who)
				if ev.Kind == "recovery" {
					line += fmt.Sprintf("  resumed above iteration %d", ev.Resume)
				}
				if ev.Detail != "" {
					line += "  (" + ev.Detail + ")"
				}
				fmt.Println(line)
			}
			if q := sys.Quarantined(); len(q) > 0 {
				fmt.Printf("quarantined processors: %v\n", q)
			}
		case "trace":
			if len(fields) > 2 {
				fmt.Println("usage: trace [vertex-id]")
				continue
			}
			if len(fields) == 1 {
				views := sys.Spans().Traces(trace.Filter{Limit: 8})
				if len(views) == 0 {
					fmt.Println("no spans retained yet (tracing samples ~1% of deltas; ingest more, or raise SpanSampleRate)")
					continue
				}
				for _, v := range views {
					fmt.Print(v)
				}
				continue
			}
			id, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			events := sys.Trace(tornado.VertexID(id))
			if len(events) == 0 {
				fmt.Println("no events recorded (vertex sampled out? try 'watch' first)")
				continue
			}
			for _, e := range events {
				fmt.Println(" ", e)
			}
		case "slow":
			minDur := time.Duration(0)
			limit := 8
			if len(fields) > 1 {
				msf, err := strconv.ParseFloat(fields[1], 64)
				if err != nil {
					fmt.Println("usage: slow [min-ms] [count]")
					continue
				}
				minDur = time.Duration(msf * float64(time.Millisecond))
			}
			if len(fields) > 2 {
				n, err := strconv.Atoi(fields[2])
				if err != nil {
					fmt.Println("usage: slow [min-ms] [count]")
					continue
				}
				limit = n
			}
			views := sys.Spans().Slowest(minDur, limit)
			if len(views) == 0 {
				fmt.Println("no traces at or above that duration")
				continue
			}
			for _, v := range views {
				fmt.Print(v)
			}
		case "watch":
			if len(fields) != 2 {
				fmt.Println("usage: watch <vertex-id>")
				continue
			}
			id, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			sys.Watch(tornado.VertexID(id))
			fmt.Printf("watching vertex %d (all its protocol events are now traced)\n", id)
		case "help":
			fmt.Println("commands: add s d | remove s d | load n epv seed | query | submit [d] [p] | queries | result id | cancel id | merge | approx | stats | store | flow | partitions | scale out|in|move | trace [id] | slow [ms] [n] | watch id | crash i|master | recover | faults | quit")
		case "quit", "exit":
			return
		default:
			fmt.Printf("unknown command %q (try 'help')\n", fields[0])
		}
	}
}

func prompt() {
	fmt.Print("> ")
}

func parseEdge(fields []string) (src, dst tornado.VertexID, err error) {
	if len(fields) != 3 {
		return 0, 0, fmt.Errorf("usage: %s <src> <dst>", fields[0])
	}
	s, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	d, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	return tornado.VertexID(s), tornado.VertexID(d), nil
}

func runQuery(sys *tornado.System, render func(tornado.VertexID, any) string, merge bool) {
	res, err := sys.Query(time.Minute)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer res.Close()
	var lines []string
	err = res.Scan(func(id tornado.VertexID, state any) error {
		lines = append(lines, render(id, state))
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printSorted(lines)
	fmt.Printf("(branch converged in %v, forked at iteration %d)\n",
		res.Latency.Round(time.Microsecond), res.ForkIteration())
	if merge {
		if err := sys.Merge(res); err != nil {
			fmt.Println("merge error:", err)
			return
		}
		fmt.Println("(merged back into the main loop)")
	}
}

func printSorted(lines []string) {
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(" ", l)
	}
}
