// Command tornado-node runs one process of a distributed SSSP over the raw
// wire transport: a master that listens for workers, partitions the graph
// and detects termination, or a worker that joins a master by seed address.
//
// Start a master and two workers (any order; workers retry their dial):
//
//	tornado-node -listen 127.0.0.1:7070 -workers 2 -vertices 2000
//	tornado-node -join 127.0.0.1:7070
//	tornado-node -join 127.0.0.1:7070
//
// Socket-level chaos can be injected per process with -drop, -dup and
// -corrupt; the run must still end at the exact fixed point because corrupt
// frames fail their CRC and every loss is repaired by the resend ledger.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"tornado/internal/datasets"
	"tornado/internal/stream"
	"tornado/internal/transport"
	"tornado/internal/wirenode"
)

func main() {
	join := flag.String("join", "", "join the master at this seed address (worker mode)")
	listen := flag.String("listen", "127.0.0.1:7070", "listen address (master seed address, or this worker's own port)")
	workers := flag.Int("workers", 2, "master: number of workers to wait for")
	vertices := flag.Int("vertices", 1000, "master: demo power-law graph size")
	epv := flag.Int("epv", 3, "master: edges per vertex of the demo graph")
	seed := flag.Int64("seed", 42, "master: demo graph seed")
	source := flag.Uint64("source", 0, "master: SSSP source vertex")
	timeout := flag.Duration("timeout", 2*time.Minute, "bound on the whole run")
	drop := flag.Float64("drop", 0, "chaos: fraction of frames dropped on this process's connections")
	dup := flag.Float64("dup", 0, "chaos: fraction of frames duplicated")
	corrupt := flag.Float64("corrupt", 0, "chaos: fraction of frames byte-corrupted (caught by CRC, repaired by resend)")
	dump := flag.Bool("dump", false, "master: print every distance, not just the summary")
	flag.Parse()

	var faults *transport.WireFaults
	if *drop > 0 || *dup > 0 || *corrupt > 0 {
		faults = transport.NewWireFaults(*seed ^ int64(os.Getpid()))
		faults.SetLoss(*drop, *dup)
		faults.SetCorrupt(*corrupt)
	}

	if *join != "" {
		err := wirenode.RunWorker(wirenode.WorkerConfig{
			MasterAddr: *join,
			ListenAddr: "127.0.0.1:0",
			Faults:     faults,
			Timeout:    *timeout,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var edges []wirenode.Edge
	for _, t := range datasets.PowerLawGraph(*vertices, *epv, *seed) {
		if t.Kind == stream.KindAddEdge {
			edges = append(edges, wirenode.Edge{Src: uint64(t.Src), Dst: uint64(t.Dst), W: 1})
		}
	}
	fmt.Printf("tornado-node master: %d edges, %d workers, seed %s\n", len(edges), *workers, *listen)
	start := time.Now()
	dists, err := wirenode.RunMaster(wirenode.MasterConfig{
		ListenAddr: *listen,
		Workers:    *workers,
		Edges:      edges,
		Source:     *source,
		Faults:     faults,
		Timeout:    *timeout,
		OnListen:   func(addr string) { fmt.Printf("listening on %s\n", addr) },
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var sum int64
	for _, d := range dists {
		sum += d
	}
	fmt.Printf("converged in %s: %d reachable vertices, distance sum %d\n",
		time.Since(start).Round(time.Millisecond), len(dists), sum)
	if *dump {
		ids := make([]uint64, 0, len(dists))
		for v := range dists {
			ids = append(ids, v)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, v := range ids {
			fmt.Printf("%d: %d\n", v, dists[v])
		}
	}
}
