// Command tornado-bench regenerates the paper's evaluation artifacts
// (Section 6): every table and figure has a named experiment whose output is
// the same rows/series the paper reports.
//
// Usage:
//
//	tornado-bench [-scale small|full] [-experiment id|all]
//
// Experiment IDs: fig5a fig5b fig5c fig6 fig7 tab2 (includes fig8a) fig8b
// fig8c fig8d fig9 tab3 ablation queries throughput overload trace_overhead delta wire
// store elastic.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"tornado/internal/bench"
	"tornado/internal/obs"
)

type experiment struct {
	id   string
	desc string
	run  func(bench.Scale) (fmt.Stringer, error)
}

func wrap[T fmt.Stringer](f func(bench.Scale) (T, error)) func(bench.Scale) (fmt.Stringer, error) {
	return func(s bench.Scale) (fmt.Stringer, error) {
		r, err := f(s)
		return r, err
	}
}

var experiments = []experiment{
	{"fig5a", "SSSP: batch epoch sweep vs approximate (p99 latency)", wrap(bench.RunFig5a)},
	{"fig5b", "PageRank: batch epoch sweep vs approximate", wrap(bench.RunFig5b)},
	{"fig5c", "KMeans: approximation does not beat small batches", wrap(bench.RunFig5c)},
	{"fig6", "SVM: approximation error vs adaption rate; branch times", wrap(bench.RunFig6)},
	{"fig7", "LR: static vs bold-driver descent rates on drift", wrap(bench.RunFig7)},
	{"tab2", "SSSP loop summaries under delay bounds (with Fig 8a)", wrap(bench.RunTable2)},
	{"fig8b", "LR under delay bounds with a straggler", wrap(bench.RunFig8b)},
	{"fig8c", "SSSP across a master failure", wrap(bench.RunFig8c)},
	{"fig8d", "SSSP across a processor failure", wrap(bench.RunFig8d)},
	{"fig9", "scalability: speedup and message throughput", wrap(bench.RunFig9)},
	{"tab3", "system comparison: spark/graphlab/naiad-like vs tornado", wrap(bench.RunTable3)},
	{"ablation", "design-choice ablations (prepare-skip, fork fast path, store backend)", wrap(bench.RunAblations)},
	{"queries", "query service: latency/throughput at 1/8/64 clients, coalesced vs uncoalesced", wrap(bench.RunQueries)},
	{"throughput", "transport batching: sustained SSSP updates/sec, batched vs unbatched", wrap(bench.RunThroughput)},
	{"overload", "backpressure: updates/sec and p99 ingest latency at the overload knee", wrap(bench.RunOverload)},
	{"trace_overhead", "causal span tracing: SSSP updates/sec at off/1%/100% sampling (3% gate)", wrap(bench.RunTraceOverhead)},
	{"delta", "delta-accumulative PageRank: updates-to-convergence vs value mode on power-law and uniform graphs", wrap(bench.RunDelta)},
	{"wire", "TCP wire: serialization overhead, corruption-storm recovery, multi-process SSSP", wrap(bench.RunWire)},
	{"store", "MVCC store: snapshot-fork latency vs MemStore, churn-soak RSS plateau under compaction", wrap(bench.RunStore)},
	{"elastic", "elastic hot split: throughput recovery from 4x hot-key skew, split planner vs control", wrap(bench.RunElastic)},
}

func main() {
	// The wire experiment re-executes this binary as worker processes; the
	// hook takes over (and exits) when the join variable is set.
	bench.WireWorkerHook()
	scaleFlag := flag.String("scale", "full", "workload scale: small or full")
	expFlag := flag.String("experiment", "all", "experiment id or 'all'")
	listFlag := flag.Bool("list", false, "list experiments and exit")
	metricsFlag := flag.String("metrics", "", "serve /debug/pprof and /statusz on host:port while experiments run (\":0\" picks a port)")
	flag.Parse()

	if *metricsFlag != "" {
		// The bench runners assemble their engines privately, so the
		// endpoint's value here is live profiling (/debug/pprof) of the
		// experiment process rather than per-loop counters.
		hub := obs.NewHub(obs.HubOptions{})
		addr, err := hub.Serve(*metricsFlag)
		if err != nil {
			log.Fatalf("metrics endpoint: %v", err)
		}
		defer func() { _ = hub.Close() }()
		fmt.Printf("observability: http://%s/debug/pprof http://%s/statusz\n", addr, addr)
	}

	if *listFlag {
		for _, e := range experiments {
			fmt.Printf("%-6s %s\n", e.id, e.desc)
		}
		return
	}
	scale, err := bench.ScaleByName(*scaleFlag)
	if err != nil {
		log.Fatal(err)
	}
	ran := 0
	for _, e := range experiments {
		if *expFlag != "all" && *expFlag != e.id {
			continue
		}
		ran++
		fmt.Printf("==> %s (%s scale): %s\n", e.id, scale.Name, e.desc)
		start := time.Now()
		rep, err := e.run(scale)
		if err != nil {
			log.Fatalf("%s: %v", e.id, err)
		}
		fmt.Print(rep.String())
		// Reports that can serialize themselves also leave a JSON artifact
		// next to the working directory (e.g. BENCH_queries.json).
		if w, ok := rep.(interface{ WriteArtifact(string) error }); ok {
			artifact := fmt.Sprintf("BENCH_%s.json", e.id)
			if err := w.WriteArtifact(artifact); err != nil {
				log.Fatalf("%s: write %s: %v", e.id, artifact, err)
			}
			fmt.Printf("    [artifact: %s]\n", artifact)
		}
		// Regression gates fail the run only after the artifact is on disk,
		// so a gate violation still leaves the numbers behind it inspectable.
		if f, ok := rep.(interface{ Failed() error }); ok {
			if gerr := f.Failed(); gerr != nil {
				log.Fatalf("%s: %v", e.id, gerr)
			}
		}
		fmt.Printf("    [%s completed in %v]\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *expFlag)
		os.Exit(2)
	}
}
