package tornado

// Benchmarks: one testing.B benchmark per table and figure of the paper's
// evaluation (delegating to the runners in internal/bench at small scale,
// reporting the headline quantity of each artifact as a custom metric), plus
// micro-benchmarks of the engine's hot paths. cmd/tornado-bench prints the
// full reports.

import (
	"fmt"
	"testing"
	"time"

	"tornado/internal/algorithms"
	"tornado/internal/bench"
	"tornado/internal/datasets"
	"tornado/internal/engine"
	"tornado/internal/storage"
	"tornado/internal/stream"
)

func reportSeconds(b *testing.B, name string, d time.Duration) {
	b.ReportMetric(d.Seconds(), name)
}

// BenchmarkFig5aSSSPBatchVsApprox reports the p99 latencies of the best
// batch configuration and the approximate method (Figure 5a).
func BenchmarkFig5aSSSPBatchVsApprox(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunFig5a(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		approx, _ := rep.Approximate()
		best, _ := rep.BestBatch()
		reportSeconds(b, "p99-approx-s", approx.P99)
		reportSeconds(b, "p99-best-batch-s", best.P99)
	}
}

// BenchmarkFig5bPageRankBatchVsApprox reports Figure 5b's headline numbers.
func BenchmarkFig5bPageRankBatchVsApprox(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunFig5b(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		approx, _ := rep.Approximate()
		best, _ := rep.BestBatch()
		reportSeconds(b, "p99-approx-s", approx.P99)
		reportSeconds(b, "p99-best-batch-s", best.P99)
	}
}

// BenchmarkFig5cKMeansBatchVsApprox reports Figure 5c's headline numbers
// (the workload where approximation does not help).
func BenchmarkFig5cKMeansBatchVsApprox(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunFig5c(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		approx, _ := rep.Approximate()
		best, _ := rep.BestBatch()
		reportSeconds(b, "p99-approx-s", approx.P99)
		reportSeconds(b, "p99-best-batch-s", best.P99)
	}
}

// BenchmarkFig6SVMAdaptionRate reports the final main-loop objective per
// descent rate (Figure 6a) and the final branch query time (Figure 6b).
func BenchmarkFig6SVMAdaptionRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunFig6(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, label := range []string{"rate=0.5", "rate=0.1"} {
			pts := rep.Error[label]
			b.ReportMetric(pts[len(pts)-1].Value, "final-obj-"+label)
		}
	}
}

// BenchmarkFig7LRBoldDriver reports the final drifting-window error of the
// bold driver against the static rates (Figure 7).
func BenchmarkFig7LRBoldDriver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunFig7(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := rep.FinalDynamicError(); ok {
			b.ReportMetric(v, "final-err-bold-driver")
		}
		if v, ok := rep.FinalError("rate=0.01"); ok {
			b.ReportMetric(v, "final-err-rate-0.01")
		}
	}
}

// BenchmarkTable2DelayBounds reports per-bound loop totals (Table 2 /
// Figure 8a).
func BenchmarkTable2DelayBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunTable2(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rep.Rows {
			b.ReportMetric(float64(row.Iterations), fmt.Sprintf("iters-B%d", row.Bound))
			b.ReportMetric(float64(row.Prepares), fmt.Sprintf("prepares-B%d", row.Bound))
		}
	}
}

// BenchmarkFig8bStraggler reports time-to-absorb per bound with a straggling
// processor (Figure 8b).
func BenchmarkFig8bStraggler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunFig8b(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rep.Rows {
			b.ReportMetric(row.Time.Seconds(), fmt.Sprintf("time-B%d-s", row.Bound))
		}
	}
}

// BenchmarkFig8cMasterFailure reports per-bound progress across a master
// failure (Figure 8c).
func BenchmarkFig8cMasterFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunFig8c(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rep.Rows {
			b.ReportMetric(float64(row.DuringFailure), fmt.Sprintf("updates-during-failure-B%d", row.Bound))
		}
	}
}

// BenchmarkFig8dProcessorFailure reports per-bound progress across a
// processor failure (Figure 8d).
func BenchmarkFig8dProcessorFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunFig8d(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rep.Rows {
			b.ReportMetric(float64(row.DuringFailure), fmt.Sprintf("updates-during-failure-B%d", row.Bound))
		}
	}
}

// BenchmarkFig9Scalability reports per-workload speedups at the top of the
// worker sweep (Figure 9a) and the message throughput there (Figure 9b).
func BenchmarkFig9Scalability(b *testing.B) {
	scale := bench.SmallScale
	scale.WorkerSweep = []int{1, 4}
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunFig9(scale)
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range []string{"sssp", "pagerank", "kmeans", "svm"} {
			series := rep.Series(name)
			top := series[len(series)-1]
			b.ReportMetric(top.Speedup, "speedup-"+name)
			b.ReportMetric(top.MsgsPerSec, "msgs-per-s-"+name)
		}
	}
}

// BenchmarkTable3Systems reports the SSSP@20% latency of every system
// (Table 3's headline column).
func BenchmarkTable3Systems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.RunTable3(bench.SmallScale)
		if err != nil {
			b.Fatal(err)
		}
		row, ok := rep.Row("sssp", 0.20)
		if !ok {
			b.Fatal("missing sssp@20% row")
		}
		reportSeconds(b, "spark-like-s", row.Spark.Latency)
		reportSeconds(b, "graphlab-like-s", row.GraphLab.Latency)
		reportSeconds(b, "naiad-like-s", row.Naiad.Latency)
		reportSeconds(b, "tornado-s", row.Tornado.Latency)
	}
}

// --- Engine micro-benchmarks ------------------------------------------------

// BenchmarkEngineIngestSSSP measures end-to-end tuple absorption (ingest
// through quiescence) on the SSSP main loop.
func BenchmarkEngineIngestSSSP(b *testing.B) {
	tuples := datasets.PowerLawGraph(500, 3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := engine.New(engine.Config{
			Processors: 4, DelayBound: 256, Kind: engine.MainLoop,
			LoopID: storage.MainLoop, Store: storage.NewMemStore(),
			Program: algorithms.SSSP{Source: 0}, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		e.Start()
		e.IngestAll(tuples)
		if err := e.WaitQuiesce(time.Minute); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(e.StatsSnapshot().Commits), "commits")
		e.Stop()
	}
	b.ReportMetric(float64(len(tuples)), "tuples")
}

// BenchmarkEngineForkQuery measures the full query path (fork, converge,
// read) against a warm main loop.
func BenchmarkEngineForkQuery(b *testing.B) {
	sys, err := New(algorithms.SSSP{Source: 0}, Options{Processors: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	sys.IngestAll(datasets.PowerLawGraph(500, 3, 4))
	if err := sys.WaitQuiesce(time.Minute); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.Query(time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		res.Close()
	}
}

// BenchmarkStorePut measures versioned store writes.
func BenchmarkStorePut(b *testing.B) {
	for _, backend := range []string{"mem", "disk"} {
		b.Run(backend, func(b *testing.B) {
			var store storage.Store
			if backend == "mem" {
				store = storage.NewMemStore()
			} else {
				disk, err := storage.OpenDisk(b.TempDir() + "/bench.log")
				if err != nil {
					b.Fatal(err)
				}
				defer disk.Close()
				store = disk
			}
			data := make([]byte, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := stream.VertexID(i % 1024)
				if err := store.Put(storage.MainLoop, v, int64(i), data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreSnapshotRead measures snapshot reads (Latest at a bound).
func BenchmarkStoreSnapshotRead(b *testing.B) {
	store := storage.NewMemStore()
	data := make([]byte, 64)
	for v := 0; v < 1024; v++ {
		for it := 0; it < 8; it++ {
			if err := store.Put(storage.MainLoop, stream.VertexID(v), int64(it*10), data); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := store.Latest(storage.MainLoop, stream.VertexID(i%1024), 35); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGobCodec measures vertex state serialization (every commit pays
// this).
func BenchmarkGobCodec(b *testing.B) {
	codec := engine.GobCodec{}
	state := &algorithms.SSSPState{
		Length: 5, Sent: 5,
		SrcLens: map[stream.VertexID]int64{1: 4, 2: 6, 3: 5},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := codec.Encode(state)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codec.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
