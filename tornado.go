// Package tornado is a Go implementation of Tornado, the system for
// real-time iterative analysis over evolving data described in
// "Tornado: A System For Real-Time Iterative Analysis Over Evolving Data"
// (SIGMOD 2016).
//
// A Tornado System runs a graph-parallel vertex program (Program) over an
// evolving input stream. The main loop continuously ingests stream tuples
// and maintains an approximation of the fixed point at the current instant;
// Query forks an independent branch loop from a consistent snapshot of the
// main loop and iterates the program to convergence, so results arrive
// quickly because the branch starts near the fixed point (Section 3 of the
// paper). Iterations run under the bounded asynchronous model of Section 4:
// updates carry iteration numbers negotiated with their consumers through a
// three-phase protocol, and the delay bound B interpolates between
// synchronous BSP execution (B = 1) and unbounded asynchrony.
//
// Minimal usage:
//
//	sys, err := tornado.New(algorithms.SSSP{Source: 0}, tornado.Options{})
//	...
//	sys.Ingest(stream.AddEdge(1, 0, 1))
//	res, err := sys.Query(time.Minute)
//	state, _, err := res.Read(1)
//	res.Close()
//	sys.Close()
package tornado

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"tornado/internal/delta"
	"tornado/internal/engine"
	"tornado/internal/flow"
	"tornado/internal/obs"
	"tornado/internal/obs/trace"
	"tornado/internal/queryserv"
	"tornado/internal/storage"
	"tornado/internal/stream"
)

// Re-exported core types, so applications only import this package plus the
// stream vocabulary.
type (
	// Program defines per-vertex behavior; see engine.Program.
	Program = engine.Program
	// Context is the callback view handed to Program methods.
	Context = engine.Context
	// DeltaProgram defines per-vertex behavior for delta-accumulative
	// execution (NewDelta); see delta.Program.
	DeltaProgram = delta.Program
	// DeltaContext is the callback view handed to DeltaProgram methods.
	DeltaContext = delta.Context
	// LoopKind distinguishes main and branch loops.
	LoopKind = engine.LoopKind
	// IterationRecord is one terminated iteration's statistics.
	IterationRecord = engine.IterationRecord
	// StatsSnapshot is a point-in-time copy of runtime counters.
	StatsSnapshot = engine.StatsSnapshot
	// VertexID identifies a vertex.
	VertexID = stream.VertexID
	// Tuple is one turnstile stream update.
	Tuple = stream.Tuple
	// TraceEvent is one recorded protocol transition (see obs.Event).
	TraceEvent = obs.Event
	// RecoveryEvent is one entry of the crash-recovery log.
	RecoveryEvent = engine.RecoveryEvent
	// Fault is one entry of a deterministic chaos schedule.
	Fault = engine.Fault
	// FaultKind selects what a planned fault does.
	FaultKind = engine.FaultKind
	// FaultPlan is a deterministic chaos schedule of crashes.
	FaultPlan = engine.FaultPlan
	// QuerySpec describes one asynchronous query: deadline, staleness
	// tolerance, priority, and optional branch configuration hooks.
	QuerySpec = queryserv.QuerySpec
	// Ticket is a submitted query's handle (see System.Submit).
	Ticket = queryserv.Ticket
	// QueryOptions tune the query service (worker pool, queue bound, cache).
	QueryOptions = queryserv.Options
	// WireSpec puts the main loop's message plane on a real socket transport
	// (see Options.Wire and engine.WireSpec).
	WireSpec = engine.WireSpec
	// StoreStats is the versioned store's residency report (live versions,
	// resident bytes, compactions, pinned snapshots; see System.StoreStats).
	StoreStats = storage.StoreStats
	// VertexRange is a contiguous inclusive vertex-ID range (live migration).
	VertexRange = engine.VertexRange
	// PlanStats describes the current partition plan: epoch, active slots,
	// overrides, and migration counters (see System.PlanStats).
	PlanStats = engine.PlanStats
	// PartitionLoad is one processor slot's live load accounting (see
	// System.PartitionLoads).
	PartitionLoad = engine.PartitionLoad
)

// ErrOverloaded is returned by Submit when the query wait queue is full and
// the query was shed (backpressure; retry later or relax the load).
var ErrOverloaded = queryserv.ErrOverloaded

// ErrIngestionActive is returned by Reshard when admitted inputs are still
// unapplied — stop-the-world resharding would lose them. Drain (WaitQuiesce)
// first, or use live migration (Migrate/ScaleOut), which needs no pause.
var ErrIngestionActive = engine.ErrIngestionActive

// ErrMigrationActive is returned when a live migration is already in flight
// (one at a time).
var ErrMigrationActive = engine.ErrMigrationActive

// Loop kind values.
const (
	MainLoop   = engine.MainLoop
	BranchLoop = engine.BranchLoop
)

// Planned fault kinds.
const (
	FaultCrashProcessor       = engine.FaultCrashProcessor
	FaultCrashMaster          = engine.FaultCrashMaster
	FaultSlowProcessor        = engine.FaultSlowProcessor
	FaultWirePartition        = engine.FaultWirePartition
	FaultWireCorrupt          = engine.FaultWireCorrupt
	FaultCrashDuringMigration = engine.FaultCrashDuringMigration
)

// RegisterStateType registers a concrete vertex-state type for
// serialization; call it (typically from init) for every state type your
// Program stores.
func RegisterStateType(v any) { engine.RegisterStateType(v) }

// Options configure a System. The zero value is usable.
type Options struct {
	// Processors is the number of processor workers (default 4).
	Processors int
	// DelayBound is the iteration delay bound B (default 64; 1 = BSP).
	DelayBound int64
	// Store holds versioned vertex state. The default is the in-memory MVCC
	// copy-on-write store with a background compactor: query forks pin O(1)
	// snapshot handles and superseded versions are reclaimed below the
	// checkpoint horizon, so RSS stays bounded on long-running streams (the
	// system closes a store it defaulted; one you pass stays yours to
	// close). Use storage.NewMemStore for the plain map backend or
	// storage.OpenDisk for durable checkpoints.
	Store storage.Store
	// ResendAfter enables at-least-once transport with the given
	// retransmission timeout (default 0: trusted in-process delivery).
	ResendAfter time.Duration
	// Wire, when non-nil, puts the main loop's message plane on a real
	// socket transport: every frame is length-prefixed, CRC-framed and
	// crosses the configured listener (a fresh TCP loopback port by
	// default), with supervised per-peer reconnection and corruption
	// defense. Implies at-least-once delivery — ResendAfter defaults on.
	Wire *WireSpec
	// Seed drives engine-internal randomness (default 1).
	Seed int64

	// Supervision. With a non-zero HeartbeatInterval the main loop runs
	// under a failure detector: every processor and the master send
	// periodic heartbeats, and a node silent for SuspectAfter intervals is
	// declared dead and the loop restarted from the last terminated
	// iteration's checkpoint (Section 5.3 of the paper).

	// HeartbeatInterval enables supervised crash recovery with the given
	// heartbeat period (default 0: unsupervised; crashes then need a
	// manual Engine().RecoverFromCheckpoint).
	HeartbeatInterval time.Duration
	// SuspectAfter is how many missed heartbeats declare a node dead
	// (default 3).
	SuspectAfter int
	// MaxRestarts quarantines a processor that crashes more than this many
	// times within RestartWindow; its partition is remapped onto the
	// survivors (default 5; 0 disables quarantine).
	MaxRestarts int
	// RestartWindow is the sliding window for MaxRestarts (default 1m).
	RestartWindow time.Duration
	// RestartBackoff is the base of the exponential backoff between
	// successive restarts (default: one heartbeat interval).
	RestartBackoff time.Duration

	// Observability. Every System carries an obs.Hub: protocol counters,
	// frontier gauges and a sampled three-phase protocol tracer register
	// per loop, readable via Obs(), Trace() and the HTTP endpoint.

	// MetricsAddr, when non-empty, serves the exposition endpoint
	// (/metrics in Prometheus text format, /statusz JSON snapshots,
	// /debug/pprof) on this host:port; ":0" picks a free port. Read the
	// bound address from MetricsURL.
	MetricsAddr string
	// TraceCapacity is the protocol tracer's ring size (default 8192).
	TraceCapacity int
	// TraceSampleEvery traces 1 in N vertices by identifier hash
	// (default 64; 1 traces every vertex; negative disables sampling so
	// only watched vertices are traced).
	TraceSampleEvery int
	// SpanSampleRate is the head-based sampling probability for causal
	// freshness traces: each input delta (and each query) is traced with
	// this probability from ingest through iterate to the frontier (default
	// 0.01; 0 disables head sampling — tail escalation on sheds, resends,
	// recoveries and degradation rungs still force-retains traces; negative
	// disables tracing entirely). Spans surface on /traces, the shell's
	// trace/slow commands, and the tornado_stage_seconds histograms.
	SpanSampleRate float64
	// SpanCapacity is the span ring's size in spans (default 4096).
	SpanCapacity int

	// Query tunes the query service that answers Submit and Query calls:
	// worker-pool size (concurrent branch loops), wait-queue bound,
	// shed/backpressure behavior and the freshness-bounded result cache.
	// The zero value uses the service defaults.
	Query QueryOptions

	// Flow tunes end-to-end backpressure and the graceful-degradation
	// ladder. The zero value bounds every queue with the FlowOptions
	// defaults and runs the overload controller.
	Flow FlowOptions

	// Elastic tunes live repartitioning: spare processor slots for
	// hot-partition splits, and the pressure-driven split/merge planner.
	// The zero value runs without spares and without the planner; manual
	// Migrate/ScaleOut/ScaleIn remain available whenever spare slots exist.
	Elastic ElasticOptions
}

// ElasticOptions configure the elastic repartitioning layer (DESIGN.md §16).
type ElasticOptions struct {
	// MaxProcessors is the processor slot ceiling. Slots beyond Processors
	// start idle (owning no vertices) and join the plan when a hot
	// partition splits onto them; ScaleIn drains a slot and retires it
	// again. Default Processors: no spares, splits impossible.
	MaxProcessors int
	// AutoScale runs the background split/merge planner: sustained overload
	// (degradation ladder level SplitLevel+) concentrated in one partition
	// splits it onto a spare; a scaled-out partition idle through MergeAfter
	// calm samples drains back. Requires flow control (the ladder is the
	// pressure signal) and MaxProcessors > Processors to be useful.
	AutoScale bool
	// SampleEvery is the planner's sampling period (default 250ms).
	SampleEvery time.Duration
	// Planner hysteresis overrides; zero values take the flow.ScalePlanner
	// defaults (split at ladder level 2 after 3 samples when the hottest
	// partition carries 2x the mean update rate; merge after 8 calm samples).
	SplitLevel    int
	SplitAfter    int
	MergeAfter    int
	Concentration float64
	MinVertices   int
}

// FlowOptions bound the system's queues and drive graceful degradation
// under overload. With the (default) bounds in place a slow consumer
// propagates backpressure all the way to the ingesting source instead of
// growing unbounded buffers, and the overload controller walks a
// degradation ladder — widen the query staleness window, raise the delay
// bound B toward its ceiling, shed low-priority queries — before any input
// is ever dropped.
type FlowOptions struct {
	// Disable turns all flow control off: unbounded queues, fixed B, no
	// degradation (the pre-flow-control behavior).
	Disable bool
	// MaxPendingInputs bounds stream inputs admitted into the main loop but
	// not yet applied to a vertex; Ingest blocks at the bound, parking the
	// source (default 16384, -1 unbounded).
	MaxPendingInputs int
	// InboxHigh / InboxLow are the transport's per-endpoint inbox credit
	// watermarks: at InboxHigh a receiver withdraws delivery credit and
	// senders park frames until it drains to InboxLow (default 4096 /
	// high÷2, -1 unbounded).
	InboxHigh, InboxLow int
	// DelayBoundCeiling is how far the overload controller may raise the
	// effective delay bound B while degraded — more asynchrony, fewer
	// synchronization stalls, staler approximation (default 4×DelayBound,
	// -1 pins B at its configured value).
	DelayBoundCeiling int64
	// DisableController keeps the bounds but never walks the degradation
	// ladder automatically (manual control via QueryService().SetDegraded
	// and Engine().SetDelayBound remains available).
	DisableController bool
	// SampleEvery is the overload controller's sampling period
	// (default 25ms).
	SampleEvery time.Duration
}

func (o *FlowOptions) fill(delayBound int64) {
	if o.Disable {
		return
	}
	if o.MaxPendingInputs == 0 {
		o.MaxPendingInputs = 1 << 14
	}
	if o.InboxHigh == 0 {
		o.InboxHigh = 4096
	}
	if o.DelayBoundCeiling == 0 {
		o.DelayBoundCeiling = 4 * delayBound
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 25 * time.Millisecond
	}
}

// nonNeg maps the -1 "explicitly unbounded" convention to the zero value
// the engine understands as disabled.
func nonNeg[T int | int64](n T) T {
	if n < 0 {
		return 0
	}
	return n
}

func (o *Options) fill() {
	if o.Processors <= 0 {
		o.Processors = 4
	}
	if o.DelayBound <= 0 {
		o.DelayBound = 64
	}
	if o.Store == nil {
		o.Store = storage.NewMVCCStore(storage.AutoCompact(2 * time.Second))
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	o.Flow.fill(o.DelayBound)
	if o.Elastic.SampleEvery <= 0 {
		o.Elastic.SampleEvery = 250 * time.Millisecond
	}
}

// System is a running Tornado instance: one main loop plus on-demand branch
// loops.
type System struct {
	mu       sync.RWMutex
	main     *engine.Engine
	store    storage.Store
	ownStore bool         // store was defaulted by New: Close owns it
	program  Program      // value mode (nil in delta mode)
	delta    DeltaProgram // delta mode (nil in value mode)
	nextLoop atomic.Uint64

	qs   *queryserv.Service
	qapi *queryserv.API

	// Overload controller state: the ladder base/ceiling for B and the
	// bounds the pressure signal normalizes against (all fixed at New).
	flowCtl       *flow.Controller
	flowBase      int64
	flowCeil      int64
	flowInboxHigh int
	flowQueueCap  int

	// Elastic planner loop (nil when Options.Elastic.AutoScale is off).
	scaleStop chan struct{}
	scaleWG   sync.WaitGroup

	hub          *obs.Hub
	branchesLive atomic.Int64
	branchTotal  atomic.Int64
	branchHist   *obs.StreamHist
	obsScope     *obs.Scope
}

// engine returns the current main-loop engine (it can be swapped by
// Reshard).
func (s *System) engine() *engine.Engine {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.main
}

// New assembles and starts a System running program.
func New(program Program, opts Options) (*System, error) {
	return newSystem(program, nil, opts)
}

// NewDelta assembles and starts a System running a delta-accumulative
// program (DESIGN.md §13): gathered updates fold into per-vertex pending
// deltas through the program's commutative-associative accumulator, a
// per-processor priority queue activates the most significant pendings
// first, and sub-threshold pendings park until they matter. Under overload
// the degradation ladder raises the significance threshold instead of the
// delay bound alone, shrinking commit work while every withheld delta keeps
// accumulating exactly.
func NewDelta(dp DeltaProgram, opts Options) (*System, error) {
	return newSystem(nil, dp, opts)
}

func newSystem(program Program, dp DeltaProgram, opts Options) (*System, error) {
	ownStore := opts.Store == nil // defaulted below: Close tears it down
	opts.fill()
	spanRate := opts.SpanSampleRate
	switch {
	case spanRate == 0:
		spanRate = 0.01
	case spanRate < 0:
		spanRate = 0
	}
	hub := obs.NewHub(obs.HubOptions{
		TraceCapacity:    opts.TraceCapacity,
		TraceSampleEvery: opts.TraceSampleEvery,
		SpanCapacity:     opts.SpanCapacity,
		SpanSampleRate:   spanRate,
	})
	cfg := engine.Config{
		Processors:        opts.Processors,
		MaxProcessors:     opts.Elastic.MaxProcessors,
		DelayBound:        opts.DelayBound,
		Kind:              engine.MainLoop,
		LoopID:            storage.MainLoop,
		Store:             opts.Store,
		Program:           program,
		Delta:             dp,
		ResendAfter:       opts.ResendAfter,
		Seed:              opts.Seed,
		Wire:              opts.Wire,
		Obs:               hub,
		HeartbeatInterval: opts.HeartbeatInterval,
		SuspectAfter:      opts.SuspectAfter,
		MaxRestarts:       opts.MaxRestarts,
		RestartWindow:     opts.RestartWindow,
		RestartBackoff:    opts.RestartBackoff,
	}
	if !opts.Flow.Disable {
		cfg.MaxPendingInputs = nonNeg(opts.Flow.MaxPendingInputs)
		cfg.InboxHigh = nonNeg(opts.Flow.InboxHigh)
		cfg.InboxLow = nonNeg(opts.Flow.InboxLow)
		cfg.DelayBoundCeiling = nonNeg(opts.Flow.DelayBoundCeiling)
	}
	e, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	s := &System{main: e, store: opts.Store, ownStore: ownStore, program: program, delta: dp, hub: hub}
	s.flowBase = opts.DelayBound
	s.flowCeil = cfg.DelayBoundCeiling
	s.flowInboxHigh = cfg.InboxHigh
	if s.flowQueueCap = opts.Query.QueueCap; s.flowQueueCap <= 0 {
		s.flowQueueCap = 128 // the queryserv default
	}
	s.nextLoop.Store(1)
	s.attachObs()
	s.qs = queryserv.New(queryserv.Backend{
		Fork:        s.forkBranch,
		Drop:        s.dropBranch,
		JournalSeq:  func() uint64 { return s.engine().JournalSeq() },
		OnConverged: func(d time.Duration) { s.branchHist.Observe(d.Seconds()) },
	}, opts.Query, hub)
	if !opts.Flow.Disable && !opts.Flow.DisableController {
		s.flowCtl = flow.NewController(flow.ControllerOptions{
			SampleEvery: opts.Flow.SampleEvery,
			Spans:       hub.Spans,
		}, s.flowPressure, s.applyFlowLevel)
	}
	s.qapi = queryserv.NewAPI(s.qs, 0)
	s.qapi.Mount(hub.Handle) // before Serve: routes are fixed at bind time
	if opts.MetricsAddr != "" {
		if _, err := hub.Serve(opts.MetricsAddr); err != nil {
			if s.flowCtl != nil {
				s.flowCtl.Stop()
			}
			s.qapi.Close()
			s.qs.Close()
			e.Stop()
			return nil, fmt.Errorf("tornado: metrics endpoint: %w", err)
		}
	}
	e.Start()
	if opts.Elastic.AutoScale {
		s.scaleStop = make(chan struct{})
		s.scaleWG.Add(1)
		go s.scaleRun(opts.Elastic)
	}
	return s, nil
}

// scaleRun is the elastic planner loop: it samples per-partition load and
// the overload ladder, asks the flow.ScalePlanner for a verdict, and
// executes split/merge decisions as live migrations. Rates are deltas of
// the slots' lifetime counters over the sampling window; a crash recovery
// resets the counters, which reads as a negative delta and is skipped.
func (s *System) scaleRun(opts ElasticOptions) {
	defer s.scaleWG.Done()
	planner := flow.NewScalePlanner(flow.ScalePlannerOptions{
		SplitLevel:    opts.SplitLevel,
		SplitAfter:    opts.SplitAfter,
		MergeAfter:    opts.MergeAfter,
		Concentration: opts.Concentration,
		MinVertices:   opts.MinVertices,
	})
	tick := time.NewTicker(opts.SampleEvery)
	defer tick.Stop()
	var (
		prevEng *engine.Engine
		prev    []engine.PartitionLoad
		prevAt  time.Time
	)
	for {
		select {
		case <-s.scaleStop:
			return
		case <-tick.C:
		}
		e := s.engine()
		if e != prevEng {
			prevEng, prev = e, nil // Reshard swapped the engine: rates restart
		}
		loads := e.PartitionLoads()
		stats := e.PlanStats()
		now := time.Now()
		dt := now.Sub(prevAt).Seconds()
		fl := make([]flow.PartitionLoad, len(loads))
		spare := false
		for i, l := range loads {
			fl[i] = flow.PartitionLoad{
				Proc:       l.Proc,
				Active:     l.Active,
				Scaled:     l.Active && l.Proc >= stats.BaseProcessors,
				Vertices:   l.Vertices,
				QueueDepth: l.QueueDepth,
			}
			if prev != nil && i < len(prev) && dt > 0 {
				if du := l.Updates - prev[i].Updates; du > 0 {
					fl[i].UpdateRate = float64(du) / dt
				}
				if dc := l.Commits - prev[i].Commits; dc > 0 {
					fl[i].CommitRate = float64(dc) / dt
				}
			}
			if !l.Active && !l.Quarantined {
				spare = true
			}
		}
		prev, prevAt = loads, now
		level := 0
		if c := s.flowCtl; c != nil {
			level = c.Level()
		}
		switch d := planner.Decide(level, fl, spare); d.Action {
		case flow.ScaleSplit:
			_, _ = e.ScaleOut(d.Proc)
		case flow.ScaleMerge:
			_ = e.ScaleIn(d.Proc)
		}
	}
}

// forkBranch is the query service's fork backend: it allocates a loop ID,
// forks from the current main-loop frontier, and keeps the system-level
// branch accounting.
func (s *System) forkBranch(override func(*engine.Config), seed func(*engine.Engine)) (*engine.Engine, engine.ForkSpec, storage.LoopID, error) {
	loop := storage.LoopID(s.nextLoop.Add(1))
	br, spec, err := s.engine().ForkBranch(loop, override, seed)
	if err != nil {
		return nil, engine.ForkSpec{}, 0, err
	}
	s.branchTotal.Add(1)
	s.branchesLive.Add(1)
	return br, spec, loop, nil
}

// dropBranch releases a stopped branch loop's stored versions (every fork
// passes through here exactly once, when its last reference closes).
func (s *System) dropBranch(loop storage.LoopID) {
	_ = s.store.DropLoop(loop)
	s.branchesLive.Add(-1)
}

// StoreStats reports the versioned store's residency counters — live
// versions and bytes, compaction activity, pinned snapshots and the oldest
// handle's age. ok is false when the configured store does not account
// itself (the default MVCC store does; MemStore and DiskStore do not).
func (s *System) StoreStats() (stats StoreStats, ok bool) {
	if sp, isProvider := s.store.(storage.StatsProvider); isProvider {
		return sp.StoreStats(), true
	}
	return StoreStats{}, false
}

// flowPressure is the overload controller's signal: utilization of the
// tightest bounded queue in the system — the ingest admission gate, the
// deepest transport inbox against its high watermark, and the query wait
// queue — as a 0..1 fraction.
func (s *System) flowPressure() float64 {
	fs := s.engine().FlowSnapshot()
	var p float64
	if fs.GateCapacity > 0 {
		if fs.GateSaturated {
			// Producers are parked at the gate: fully saturated regardless
			// of the instantaneous depth (which may sit between the
			// watermarks while the gate waits for the low-water drain).
			p = 1
		} else {
			p = float64(fs.GateDepth) / float64(fs.GateCapacity)
		}
	}
	if s.flowInboxHigh > 0 {
		p = math.Max(p, float64(fs.InboxMax)/float64(s.flowInboxHigh))
	}
	if s.flowQueueCap > 0 {
		p = math.Max(p, float64(s.qs.Snapshot().QueueDepth)/float64(s.flowQueueCap))
	}
	return p
}

// applyFlowLevel is the degradation ladder. Each rung trades answer quality
// or low-priority service for headroom, and every rung is reversible — input
// is never dropped:
//
//	level 0: exact service, configured delay bound.
//	level 1: the query service imposes its degraded staleness floor, so
//	         cache hits and coalescing absorb fork load.
//	level 2: additionally raise the effective delay bound B to its ceiling —
//	         fewer synchronization stalls, staler approximation.
//	level 3: additionally shed queries below the priority cut with
//	         ErrOverloaded.
//
// A delta-mode loop (NewDelta) gets one more reversible lever: levels 2 and
// 3 also boost the significance threshold (×4, ×16), so sub-threshold
// pendings park instead of committing. Nothing is dropped — parked deltas
// keep accumulating exactly, and stepping back down rescans them — the
// approximation just coarsens to threshold-sized dust while the overload
// lasts.
func (s *System) applyFlowLevel(level int) {
	e := s.engine()
	switch {
	case level <= 0:
		s.qs.SetDegraded(0)
		e.SetDelayBound(s.flowBase)
		e.SetDeltaBoost(1)
	case level == 1:
		s.qs.SetDegraded(1)
		e.SetDelayBound(s.flowBase)
		e.SetDeltaBoost(1)
	case level == 2:
		s.qs.SetDegraded(1)
		e.SetDelayBound(s.flowCeil)
		e.SetDeltaBoost(4)
	default:
		s.qs.SetDegraded(2)
		e.SetDelayBound(s.flowCeil)
		e.SetDeltaBoost(16)
	}
}

// FlowStats is a point-in-time view of the system's backpressure and
// degradation state.
type FlowStats struct {
	// Engine is the main loop's flow snapshot: admission-gate ledger,
	// transport inbox depths, credit stalls, effective delay bound.
	Engine engine.FlowSnapshot
	// OverloadLevel is the degradation ladder's current rung (0 = normal);
	// OverloadTransitions counts rung changes and Degraded the cumulative
	// time spent above level 0. Pressure is the controller's last sample
	// (utilization of the tightest bounded queue, 0..1).
	OverloadLevel       int
	OverloadTransitions int64
	Degraded            time.Duration
	Pressure            float64
	// QueryDegradeLevel and ShedLowPriority mirror the query service: its
	// imposed degradation level and how many low-priority queries the
	// level-2 cut refused.
	QueryDegradeLevel int
	ShedLowPriority   int64
}

// FlowStats snapshots the backpressure and overload state end to end.
func (s *System) FlowStats() FlowStats {
	st := FlowStats{Engine: s.engine().FlowSnapshot()}
	if c := s.flowCtl; c != nil {
		st.OverloadLevel = c.Level()
		st.OverloadTransitions = c.Transitions()
		st.Degraded = c.Degraded()
		st.Pressure = c.Pressure()
	}
	snap := s.qs.Snapshot()
	st.QueryDegradeLevel = snap.DegradeLevel
	st.ShedLowPriority = snap.ShedLowPriority
	return st
}

// attachObs registers the system-level collectors: branch-loop lifecycle
// counters, the branch convergence-latency histogram, and the system
// /statusz section.
func (s *System) attachObs() {
	sc := s.hub.Registry.Scope(obs.L("kind", "system"))
	s.obsScope = sc
	sc.GaugeFunc("tornado_branches_live",
		"Branch loops currently running (forked queries not yet closed).",
		func() float64 { return float64(s.branchesLive.Load()) })
	sc.GaugeFunc("tornado_branches_total",
		"Branch loops ever forked by Query.",
		func() float64 { return float64(s.branchTotal.Load()) })
	s.branchHist = sc.Histogram("tornado_branch_converge_seconds",
		"Wall-clock time from fork to branch-loop convergence.", nil)
	sc.GaugeFunc("tornado_overload_level",
		"Degradation-ladder rung the overload controller is at (0 = normal).",
		func() float64 {
			if c := s.flowCtl; c != nil {
				return float64(c.Level())
			}
			return 0
		})
	sc.GaugeFunc("tornado_overload_pressure",
		"Overload controller's last pressure sample (utilization of the tightest bounded queue).",
		func() float64 {
			if c := s.flowCtl; c != nil {
				return c.Pressure()
			}
			return 0
		})
	s.hub.AddStatus("system", func() any {
		prog, mode := any(s.program), "value"
		if s.delta != nil {
			prog, mode = s.delta, "delta"
		}
		m := map[string]any{
			"branches_live":  s.branchesLive.Load(),
			"branches_total": s.branchTotal.Load(),
			"program":        fmt.Sprintf("%T", prog),
			"mode":           mode,
		}
		if c := s.flowCtl; c != nil {
			m["overload_level"] = c.Level()
			m["overload_transitions"] = c.Transitions()
			m["overload_pressure"] = c.Pressure()
			m["degraded_for"] = c.Degraded().String()
		}
		return m
	})
}

// Obs returns the system's observability hub (advanced use: custom
// collectors, status sections, direct tracer access).
func (s *System) Obs() *obs.Hub { return s.hub }

// MetricsURL returns the base URL of the exposition endpoint, or "" when
// Options.MetricsAddr was empty.
func (s *System) MetricsURL() string {
	if addr := s.hub.Addr(); addr != "" {
		return "http://" + addr
	}
	return ""
}

// Spans returns the causal span tracer: head-sampled end-to-end freshness
// traces of input deltas (spout -> gate -> batch -> frame -> inbox ->
// process -> commit -> frontier) and queries (submit -> queue -> fork ->
// wait -> serve), with tail escalation on sheds, resends, recoveries and
// degradation rungs. Use trace.Filter with Spans().Traces to query, or the
// /traces HTTP endpoint.
func (s *System) Spans() *trace.Tracer { return s.hub.Spans }

// Trace returns the retained protocol events of one main-loop vertex, oldest
// first: input applications, PREPARE/ACK negotiations, iteration-number
// assignments at commit, and gathered updates. Only sampled or watched
// vertices have events; call Watch(id) before the run to guarantee coverage.
func (s *System) Trace(id VertexID) []TraceEvent { return s.engine().Trace(id) }

// Watch forces tracing of one vertex regardless of the sampling rate.
func (s *System) Watch(id VertexID) { s.engine().Watch(id) }

// Unwatch reverses Watch.
func (s *System) Unwatch(id VertexID) { s.engine().Unwatch(id) }

// Ingest feeds one stream tuple to the main loop. Edge tuples evolve the
// dependency graph; value tuples are delivered to the program's OnInput.
func (s *System) Ingest(t Tuple) { s.engine().Ingest(t) }

// IngestAll feeds tuples in order.
func (s *System) IngestAll(ts []Tuple) { s.engine().IngestAll(ts) }

// WaitQuiesce blocks until the main loop has fully absorbed all ingested
// input (approximation caught up) or the timeout expires.
func (s *System) WaitQuiesce(timeout time.Duration) error {
	return s.engine().WaitQuiesce(timeout)
}

// ReadApprox returns the main loop's current approximate state of a vertex.
func (s *System) ReadApprox(id VertexID) (any, error) {
	state, _, err := s.engine().ReadState(id, math.MaxInt64)
	return state, err
}

// ScanApprox visits the main loop's approximate state of every vertex.
func (s *System) ScanApprox(fn func(id VertexID, state any) error) error {
	return s.engine().ScanStates(math.MaxInt64, func(id VertexID, _ int64, state any) error {
		return fn(id, state)
	})
}

// Result is a converged query's result set. Close it when done; Close is
// idempotent, and coalesced or cached queries may hand several Results
// backed by one shared branch loop — the loop is released when the last
// handle (and the result cache) lets go.
type Result struct {
	qr *queryserv.Result
	// Latency is the submitter's end-to-end wall time (queueing, fork and
	// convergence; near zero for cache hits).
	Latency time.Duration
	// CacheHit reports the result was served from the freshness-bounded
	// cache without forking.
	CacheHit bool
	// Coalesced reports the query shared another query's branch loop.
	Coalesced bool
}

func wrapResult(qr *queryserv.Result) *Result {
	return &Result{qr: qr, Latency: qr.Latency, CacheHit: qr.CacheHit, Coalesced: qr.Coalesced}
}

// Read returns the branch's state of one vertex.
func (r *Result) Read(id VertexID) (any, int64, error) { return r.qr.Read(id) }

// Scan visits the branch's state of every vertex in ascending ID order.
func (r *Result) Scan(fn func(id VertexID, state any) error) error { return r.qr.Scan(fn) }

// Stats returns the branch loop's counters.
func (r *Result) Stats() StatsSnapshot { return r.qr.Engine().StatsSnapshot() }

// IterationLog returns the branch loop's per-iteration records.
func (r *Result) IterationLog() []IterationRecord { return r.qr.Engine().IterationLog() }

// ForkIteration returns the main-loop iteration the branch was forked at.
func (r *Result) ForkIteration() int64 { return r.qr.ForkSpec().ForkIter }

// ForkSeq returns the number of ingested inputs the result reflects (the
// input-journal sequence at fork time).
func (r *Result) ForkSeq() uint64 { return r.qr.ForkSeq() }

// Freshness is the result's live staleness watermark: how many input deltas
// the main loop has ingested past this result's fork, right now. A freshly
// served exact result reads 0 and drifts upward as ingestion continues —
// poll it to decide when a held handle is too stale to keep using.
func (r *Result) Freshness() uint64 { return r.qr.Freshness() }

// Engine exposes the underlying branch engine (advanced use: custom reads).
func (r *Result) Engine() *engine.Engine { return r.qr.Engine() }

// Close releases this handle on the result. Idempotent; the branch loop's
// resources and stored versions are dropped once no handle references it.
func (r *Result) Close() { r.qr.Close() }

// Submit enqueues an asynchronous query with the query service: admission
// control bounds the number of concurrent branch loops, identical concurrent
// queries coalesce onto one fork, and queries declaring a staleness
// tolerance may be answered from the result cache without forking at all.
// ErrOverloaded means the wait queue was full and the query was shed.
func (s *System) Submit(ctx context.Context, spec QuerySpec) (*Ticket, error) {
	return s.qs.Submit(ctx, spec)
}

// QueryService exposes the serving front end (listing and cancelling
// queries, counters, advanced tuning).
func (s *System) QueryService() *queryserv.Service { return s.qs }

// Query forks a branch loop at the current instant, waits for it to
// converge, and returns its results (Section 5.2). It is a thin synchronous
// wrapper over Submit: the query passes through admission control and may
// coalesce with concurrent identical queries, but never accepts a stale
// cached answer.
func (s *System) Query(timeout time.Duration) (*Result, error) {
	return s.submitAndWait(QuerySpec{Timeout: timeout})
}

// QueryStale is Query with a staleness tolerance: a cached result at most
// maxDeltas ingested inputs behind the present is accepted without forking.
func (s *System) QueryStale(timeout time.Duration, maxDeltas uint64) (*Result, error) {
	return s.submitAndWait(QuerySpec{Timeout: timeout, MaxStaleDeltas: maxDeltas})
}

// QueryWith is Query with pre-fork hooks: override tweaks the branch
// configuration (e.g. a different delay bound), and seed, when non-nil, runs
// under the branch's bootstrap guard before it may converge (e.g. to
// activate extra vertices such as SGD samplers). Hooked queries are private:
// they never coalesce and never touch the cache (set QuerySpec.OverrideKey
// via Submit to opt a deterministic override into sharing).
func (s *System) QueryWith(timeout time.Duration, override func(*engine.Config), seed func(*engine.Engine)) (*Result, error) {
	return s.submitAndWait(QuerySpec{Timeout: timeout, Override: override, Seed: seed})
}

func (s *System) submitAndWait(spec QuerySpec) (*Result, error) {
	t, err := s.qs.Submit(context.Background(), spec)
	if err != nil {
		return nil, err
	}
	qr, err := t.Wait(context.Background())
	if err != nil {
		return nil, err
	}
	return wrapResult(qr), nil
}

// Merge folds a converged query result back into the main loop's
// approximation (Section 5.2 of the paper): the branch's fixed point is
// adopted at iteration lastTerminated+B, so subsequent queries start even
// closer to their answers. Merging is only valid while no new inputs are
// being ingested; if inputs raced the merge, ErrMergeConflict is returned
// and the main loop is unchanged. The Result remains readable and must
// still be closed by the caller.
func (s *System) Merge(res *Result) error {
	return s.engine().AdoptBranch(res.qr.Engine())
}

// Reshard rebalances the main loop onto a new processor count (the paper's
// Section 5.1 repartitioning): the loop settles, stops, and resumes in place
// from its last terminated iteration under the new partitioning. Pause
// ingestion (and any attached Feed) around the call.
func (s *System) Reshard(newProcs int, timeout time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Ingestion is paused by contract, so the admitted backlog drains to
	// zero; if a spout is still feeding, the quiesce times out or the gate
	// refills and engine.Reshard refuses with ErrIngestionActive.
	if err := s.main.WaitQuiesce(timeout); err != nil {
		return err
	}
	ne, err := engine.Reshard(s.main, newProcs, nil, timeout)
	if err != nil {
		return err
	}
	s.main = ne
	return nil
}

// Migrate moves the inclusive vertex-ID range [lo, hi] onto main-loop
// processor dest WITHOUT stopping the loop (DESIGN.md §16): the range
// freezes at its current owners, state ships live while in-flight traffic
// journal-forwards, and the cutover is one atomic partition-plan publish.
// Ingestion and queries keep running throughout. Blocks until the migration
// completes; on a crash mid-migration it aborts with the plan unchanged.
func (s *System) Migrate(lo, hi VertexID, dest int) error {
	return s.engine().Migrate(VertexRange{Lo: lo, Hi: hi}, dest)
}

// ScaleOut splits the hottest partition (by hosted vertex count) onto the
// first spare processor slot as a live migration, returning the slot scaled
// onto. Requires Options.Elastic.MaxProcessors > Processors.
func (s *System) ScaleOut() (int, error) { return s.engine().ScaleOut(-1) }

// ScaleIn drains processor slot proc live — everything it owns migrates to
// the least-loaded remaining active slot — and retires it from the plan.
func (s *System) ScaleIn(proc int) error { return s.engine().ScaleIn(proc) }

// PlanStats reports the current partition plan: epoch, base and maximum
// processor counts, which slots are active, the override chain, and the
// lifetime migration counters.
func (s *System) PlanStats() PlanStats { return s.engine().PlanStats() }

// PartitionLoads reports per-slot load accounting: hosted vertices,
// lifetime commit/update counters and delta queue depth — the signals the
// elastic planner weighs.
func (s *System) PartitionLoads() []PartitionLoad { return s.engine().PartitionLoads() }

// CrashProcessor crashes main-loop processor i with true crash semantics:
// its in-memory vertex states, pending inputs and in-flight frames are
// discarded (unlike a pause, which merely delays them). With supervision
// enabled (Options.HeartbeatInterval) the failure is detected via missed
// heartbeats and the loop restarts from the last checkpoint automatically;
// without it, call RecoverFromCheckpoint.
func (s *System) CrashProcessor(i int) { s.engine().CrashProcessor(i) }

// CrashMaster crashes the main loop's master: termination notifications stop
// and no further checkpoints are taken until recovery.
func (s *System) CrashMaster() { s.engine().CrashMaster() }

// RecoverFromCheckpoint manually restarts the main loop from the last
// terminated iteration's checkpoint. It returns false when there is nothing
// to do (system closed, or a concurrent recovery already ran).
func (s *System) RecoverFromCheckpoint() bool { return s.engine().RecoverFromCheckpoint() }

// InjectFaultPlan arms a deterministic chaos schedule against the main loop:
// crash processor i at iteration k, crash the master, crash mid-fork.
func (s *System) InjectFaultPlan(plan FaultPlan) { s.engine().InjectFaultPlan(plan) }

// RecoveryLog returns the main loop's crash-recovery event log (crashes,
// suspicions, restarts, quarantines) in chronological order.
func (s *System) RecoveryLog() []RecoveryEvent { return s.engine().RecoveryLog() }

// Quarantined returns the indexes of quarantined main-loop processors.
func (s *System) Quarantined() []int { return s.engine().Quarantined() }

// WireAddr returns the main loop's wire listener address, or "" when the
// system runs on the in-process transport (Options.Wire nil).
func (s *System) WireAddr() string { return s.engine().WireAddr() }

// SetWirePartition hard-partitions (or heals) the wire: while on, every
// frame on every connection vanishes. Returns false without a wire.
func (s *System) SetWirePartition(on bool) bool { return s.engine().SetWirePartition(on) }

// SetWireCorrupt makes the wire flip bytes in roughly the given fraction of
// frames; corrupted frames fail their checksum at the receiver and are
// dropped with the connection, never delivered. Returns false without a wire.
func (s *System) SetWireCorrupt(rate float64) bool { return s.engine().SetWireCorrupt(rate) }

// Stats returns the main loop's counters.
func (s *System) Stats() StatsSnapshot { return s.engine().StatsSnapshot() }

// DeltaBoost returns the delta-mode significance threshold multiplier
// (1 at rest, and always 1 in value mode).
func (s *System) DeltaBoost() float64 { return s.engine().DeltaBoost() }

// SetDeltaBoost manually adjusts the delta-mode significance threshold
// multiplier (clamped to >= 1; no-op in value mode) and returns the adopted
// value. Lowering it rescans parked pendings, so the loop converges back to
// the base threshold's fixed point. The overload controller drives the same
// knob automatically at degradation levels 2 and 3.
func (s *System) SetDeltaBoost(mult float64) float64 { return s.engine().SetDeltaBoost(mult) }

// IterationLog returns the main loop's per-iteration records.
func (s *System) IterationLog() []IterationRecord { return s.engine().IterationLog() }

// Engine exposes the underlying main-loop engine (advanced use: fault
// injection, custom forks).
func (s *System) Engine() *engine.Engine { return s.engine() }

// Close stops the overload controller, the query service, the main loop and
// the exposition endpoint. Branch results obtained earlier must be closed
// separately.
func (s *System) Close() {
	if s.scaleStop != nil {
		close(s.scaleStop)
	}
	if s.flowCtl != nil {
		s.flowCtl.Stop()
	}
	s.qapi.Close()
	s.qs.Close()
	s.engine().Stop()
	// After Stop: a planner-driven migration in flight aborts when the
	// incarnation dies, unblocking the loop to observe the closed channel.
	s.scaleWG.Wait()
	if s.ownStore {
		_ = s.store.Close() // stops the default MVCC store's compactor
	}
	if s.obsScope != nil {
		s.hub.RemoveStatus("system")
		s.obsScope.Close()
	}
	_ = s.hub.Close()
}
