module tornado

go 1.22
