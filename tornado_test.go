package tornado

import (
	"sync"
	"testing"
	"time"

	"tornado/internal/algorithms"
	"tornado/internal/datasets"
	"tornado/internal/engine"
	"tornado/internal/storage"
	"tornado/internal/stream"
)

const waitFor = 30 * time.Second

func newSSSP(t *testing.T, opts Options) *System {
	t.Helper()
	sys, err := New(algorithms.SSSP{Source: 0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func TestQuickstartFlow(t *testing.T) {
	sys := newSSSP(t, Options{})
	sys.IngestAll([]Tuple{
		stream.AddEdge(1, 0, 1),
		stream.AddEdge(2, 1, 2),
		stream.AddEdge(3, 2, 3),
	})
	res, err := sys.Query(waitFor)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	st, _, err := res.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.(*algorithms.SSSPState).Length; got != 3 {
		t.Fatalf("dist(3) = %d; want 3", got)
	}
	if res.Latency <= 0 {
		t.Fatal("query latency not recorded")
	}
}

func TestQueryMatchesReference(t *testing.T) {
	tuples := datasets.PowerLawGraph(150, 3, 7)
	sys := newSSSP(t, Options{Processors: 3, DelayBound: 32})
	sys.IngestAll(tuples)
	res, err := sys.Query(waitFor)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	want := algorithms.RefSSSP(tuples, 0, 64)
	err = res.Scan(func(id VertexID, state any) error {
		if got := state.(*algorithms.SSSPState).Length; got != want[id] {
			t.Fatalf("vertex %d: %d vs %d", id, got, want[id])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentQueriesWhileIngesting(t *testing.T) {
	tuples := datasets.PowerLawGraph(150, 3, 9)
	cut := len(tuples) / 2
	sys := newSSSP(t, Options{Processors: 4, DelayBound: 64})
	sys.IngestAll(tuples[:cut])

	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := sys.Query(waitFor)
			if err != nil {
				errs <- err
				return
			}
			res.Close()
		}()
	}
	sys.IngestAll(tuples[cut:])
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	// The main loop's approximation reflects the full input afterwards.
	want := algorithms.RefSSSP(tuples, 0, 64)
	err := sys.ScanApprox(func(id VertexID, state any) error {
		if got := state.(*algorithms.SSSPState).Length; got != want[id] {
			t.Fatalf("vertex %d: approx %d vs %d", id, got, want[id])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQueryWithOverrideDelayBound(t *testing.T) {
	tuples := datasets.PowerLawGraph(100, 3, 11)
	sys := newSSSP(t, Options{Processors: 2, DelayBound: 64})
	sys.IngestAll(tuples)
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	res, err := sys.QueryWith(waitFor, func(cfg *engine.Config) { cfg.DelayBound = 1 }, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if got := res.Stats().PrepareMsgs; got != 0 {
		t.Fatalf("synchronous branch sent %d prepares; want 0", got)
	}
}

func TestReadApprox(t *testing.T) {
	sys := newSSSP(t, Options{})
	sys.Ingest(stream.AddEdge(1, 0, 5))
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	st, err := sys.ReadApprox(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.(*algorithms.SSSPState).Length; got != 1 {
		t.Fatalf("approx dist(5) = %d; want 1", got)
	}
}

func TestResultCloseDropsLoop(t *testing.T) {
	store := storage.NewMemStore()
	// Disable the result cache so Close releases the last reference.
	sys := newSSSP(t, Options{Store: store, Query: QueryOptions{DisableCache: true}})
	sys.Ingest(stream.AddEdge(1, 0, 1))
	res, err := sys.Query(waitFor)
	if err != nil {
		t.Fatal(err)
	}
	loop := res.Engine().Config().LoopID
	res.Close()
	res.Close() // idempotent: a second Close must not double-release
	if n := store.NumVersions(loop); n != 0 {
		t.Fatalf("branch loop %d still has %d versions after Close", loop, n)
	}
}

func TestStatsAndIterationLog(t *testing.T) {
	sys := newSSSP(t, Options{})
	sys.IngestAll(datasets.PowerLawGraph(60, 3, 13))
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	s := sys.Stats()
	if s.Commits == 0 || s.UpdateMsgs == 0 || s.InputMsgs == 0 {
		t.Fatalf("stats look dead: %+v", s)
	}
	if len(sys.IterationLog()) == 0 {
		t.Fatal("no iteration records")
	}
}

func TestSystemReshard(t *testing.T) {
	tuples := datasets.PowerLawGraph(100, 3, 27)
	half := len(tuples) / 2
	sys := newSSSP(t, Options{Processors: 2, DelayBound: 16})
	sys.IngestAll(tuples[:half])
	if err := sys.Reshard(5, waitFor); err != nil {
		t.Fatal(err)
	}
	sys.IngestAll(tuples[half:])
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	want := algorithms.RefSSSP(tuples, 0, 64)
	err := sys.ScanApprox(func(id VertexID, state any) error {
		if got := state.(*algorithms.SSSPState).Length; got != want[id] {
			t.Fatalf("vertex %d: %d vs %d after reshard", id, got, want[id])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Queries still work on the resharded system.
	res, err := sys.Query(waitFor)
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
}

func TestMergeQueryResultBack(t *testing.T) {
	tuples := datasets.PowerLawGraph(80, 3, 15)
	sys := newSSSP(t, Options{Processors: 2, DelayBound: 16})
	sys.IngestAll(tuples)
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(waitFor)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if err := sys.Merge(res); err != nil {
		t.Fatal(err)
	}
	// The main loop's approximation equals the merged fixed point.
	want := algorithms.RefSSSP(tuples, 0, 64)
	err = sys.ScanApprox(func(id VertexID, state any) error {
		if got := state.(*algorithms.SSSPState).Length; got != want[id] {
			t.Fatalf("vertex %d: %d vs %d after merge", id, got, want[id])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsNilProgram(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil program accepted")
	}
}

func TestQueryTimeoutCleansUp(t *testing.T) {
	// chatter keeps a branch from converging; the query must time out and
	// clean up rather than leak.
	sys, err := New(chatter{}, Options{Processors: 1, DelayBound: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Ingest(stream.AddEdge(1, 0, 1))
	sys.Ingest(stream.AddEdge(2, 1, 0))
	time.Sleep(20 * time.Millisecond)
	if _, err := sys.Query(50 * time.Millisecond); err == nil {
		t.Fatal("query against a non-converging program should time out")
	}
}

// chatter never quiesces.
type chatter struct{}

type chatterState struct{ N int64 }

func init() { RegisterStateType(&chatterState{}) }

func (chatter) Init(ctx Context)       { ctx.SetState(&chatterState{}) }
func (chatter) OnInput(Context, Tuple) {}
func (chatter) Gather(ctx Context, _ VertexID, _ int64, _ any) {
	ctx.State().(*chatterState).N++
}
func (chatter) Scatter(ctx Context) {
	st := ctx.State().(*chatterState)
	for _, t := range ctx.Targets() {
		ctx.Emit(t, st.N)
	}
}

// TestNewDeltaQueryAndMerge drives the system-level delta mode end to end:
// delta main loop, branch-loop query, merge back, continued streaming — and
// requires the exact value-mode answer throughout.
func TestNewDeltaQueryAndMerge(t *testing.T) {
	tuples := datasets.WithRemovals(datasets.PowerLawGraph(150, 3, 19), 0.15, 6)
	sys, err := NewDelta(algorithms.DeltaSSSP{Source: 0}, Options{Processors: 3, DelayBound: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	half := len(tuples) / 2
	sys.IngestAll(tuples[:half])
	res, err := sys.Query(waitFor)
	if err != nil {
		t.Fatal(err)
	}
	halfWant := algorithms.RefSSSP(tuples[:half], 0, 64)
	err = res.Scan(func(id VertexID, state any) error {
		if got := state.(*algorithms.DeltaSSSPState).Length; got != halfWant[id] {
			t.Fatalf("branch vertex %d: %d vs %d", id, got, halfWant[id])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	if err := sys.Merge(res); err != nil {
		t.Fatal(err)
	}
	res.Close()
	sys.IngestAll(tuples[half:])
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	want := algorithms.RefSSSP(tuples, 0, 64)
	err = sys.ScanApprox(func(id VertexID, state any) error {
		if got := state.(*algorithms.DeltaSSSPState).Length; got != want[id] {
			t.Fatalf("vertex %d after merge+stream: %d vs %d", id, got, want[id])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.SetDeltaBoost(8); got != 8 {
		t.Fatalf("SetDeltaBoost(8) = %v", got)
	}
	if got := sys.SetDeltaBoost(1); got != 1 || sys.DeltaBoost() != 1 {
		t.Fatalf("boost did not return to rest: %v / %v", got, sys.DeltaBoost())
	}
}
