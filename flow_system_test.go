package tornado

import (
	"testing"
	"time"

	"tornado/internal/algorithms"
	"tornado/internal/datasets"
)

// pollUntil spins until cond holds or the deadline passes.
func pollUntil(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestOverloadControllerLadder drives the system into overload with a paused
// processor and a saturated admission gate, and asserts the controller walks
// the degradation ladder up (staleness floor, raised B) and — once the
// pressure clears — all the way back down to exact service, with the final
// fixed point unharmed.
func TestOverloadControllerLadder(t *testing.T) {
	tuples := datasets.PowerLawGraph(300, 3, 53)
	sys := newSSSP(t, Options{
		Processors: 2,
		DelayBound: 8,
		Flow: FlowOptions{
			MaxPendingInputs:  64,
			InboxHigh:         256,
			DelayBoundCeiling: 32,
			SampleEvery:       time.Millisecond,
		},
	})
	// A paused processor pins its share of admitted inputs: the gate fills
	// to capacity and stays there, a steady 1.0 pressure signal.
	sys.Engine().PauseProcessor(0)

	done := make(chan struct{})
	go func() {
		defer close(done)
		sys.IngestAll(tuples) // blocks at the 64-input gate while proc 0 is paused
	}()

	pollUntil(t, waitFor, func() bool { return sys.FlowStats().OverloadLevel >= 2 },
		"controller never escalated to level 2 under a saturated gate")
	if got := sys.Engine().DelayBound(); got != 32 {
		t.Fatalf("effective delay bound at level >= 2 = %d, want ceiling 32", got)
	}
	if got := sys.QueryService().Degraded(); got < 1 {
		t.Fatalf("query service degrade level = %d, want >= 1 while overloaded", got)
	}

	sys.Engine().ResumeProcessor(0)
	<-done
	pollUntil(t, waitFor, func() bool { return sys.FlowStats().OverloadLevel == 0 },
		"controller never relaxed back to level 0 after the pressure cleared")
	pollUntil(t, waitFor, func() bool { return sys.Engine().DelayBound() == 8 },
		"delay bound not restored to its configured value at level 0")
	if sys.QueryService().Degraded() != 0 {
		t.Fatal("query service still degraded at level 0")
	}

	st := sys.FlowStats()
	if st.OverloadTransitions < 2 {
		t.Fatalf("OverloadTransitions = %d, want >= 2 (up and back down)", st.OverloadTransitions)
	}
	if st.Degraded <= 0 {
		t.Fatal("Degraded duration not accounted")
	}

	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	want := algorithms.RefSSSP(tuples, 0, 64)
	err := sys.ScanApprox(func(id VertexID, state any) error {
		if got := state.(*algorithms.SSSPState).Length; got != want[id] {
			t.Fatalf("vertex %d: %d vs %d", id, got, want[id])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFlowDisabled: Flow.Disable restores the unbounded pre-flow-control
// behavior — no admission gate, no controller.
func TestFlowDisabled(t *testing.T) {
	sys := newSSSP(t, Options{Processors: 2, Flow: FlowOptions{Disable: true}})
	sys.IngestAll(datasets.PowerLawGraph(50, 2, 9))
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	st := sys.FlowStats()
	if st.Engine.GateCapacity != 0 {
		t.Fatalf("GateCapacity = %d with flow disabled, want 0", st.Engine.GateCapacity)
	}
	if st.OverloadLevel != 0 || st.OverloadTransitions != 0 {
		t.Fatal("controller active with flow disabled")
	}
}
