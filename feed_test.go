package tornado

import (
	"testing"
	"time"

	"tornado/internal/algorithms"
	"tornado/internal/datasets"
	"tornado/internal/stream"
)

func TestAttachSourceFromSlice(t *testing.T) {
	tuples := datasets.PowerLawGraph(100, 3, 19)
	sys := newSSSP(t, Options{Processors: 3, DelayBound: 32})
	feed, err := sys.AttachSource(stream.FromSlice(tuples), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Stop()
	if err := feed.Wait(waitFor); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	want := algorithms.RefSSSP(tuples, 0, 64)
	err = sys.ScanApprox(func(id VertexID, state any) error {
		if got := state.(*algorithms.SSSPState).Length; got != want[id] {
			t.Fatalf("vertex %d: %d vs %d", id, got, want[id])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAttachSourceFromQueue(t *testing.T) {
	// A live queue: push while the feed runs, query mid-stream, then close.
	tuples := datasets.PowerLawGraph(80, 3, 23)
	half := len(tuples) / 2
	sys := newSSSP(t, Options{Processors: 2, DelayBound: 32})
	q := stream.NewQueue()
	feed, err := sys.AttachSource(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Stop()
	q.Push(tuples[:half]...)
	// Queries work while the feed is live.
	deadline := time.Now().Add(waitFor)
	for sys.Stats().InputMsgs < int64(half) {
		if time.Now().After(deadline) {
			t.Fatal("feed did not deliver the first half")
		}
		time.Sleep(time.Millisecond)
	}
	res, err := sys.Query(waitFor)
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	q.Push(tuples[half:]...)
	q.Close()
	if err := feed.Wait(waitFor); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	want := algorithms.RefSSSP(tuples, 0, 64)
	err = sys.ScanApprox(func(id VertexID, state any) error {
		if got := state.(*algorithms.SSSPState).Length; got != want[id] {
			t.Fatalf("vertex %d: %d vs %d", id, got, want[id])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
