package tornado

import (
	"errors"
	"testing"
	"time"

	"tornado/internal/algorithms"
	"tornado/internal/datasets"
	"tornado/internal/stream"
)

func TestAttachSourceFromSlice(t *testing.T) {
	tuples := datasets.PowerLawGraph(100, 3, 19)
	sys := newSSSP(t, Options{Processors: 3, DelayBound: 32})
	feed, err := sys.AttachSource(stream.FromSlice(tuples), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Stop()
	if err := feed.Wait(waitFor); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	want := algorithms.RefSSSP(tuples, 0, 64)
	err = sys.ScanApprox(func(id VertexID, state any) error {
		if got := state.(*algorithms.SSSPState).Length; got != want[id] {
			t.Fatalf("vertex %d: %d vs %d", id, got, want[id])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// failingSource yields n tuples, then fails with a non-exhaustion error.
type failingSource struct {
	tuples []stream.Tuple
	pos    int
	err    error
}

func (s *failingSource) Next() (stream.Tuple, error) {
	if s.pos >= len(s.tuples) {
		return stream.Tuple{}, s.err
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, nil
}

// TestFeedSourceErrorSurfaced: a source failure that is not ErrExhausted must
// not masquerade as a clean end of stream — the tuples before the failure
// drain, and the error surfaces through Err, Wait and the stats.
func TestFeedSourceErrorSurfaced(t *testing.T) {
	tuples := datasets.PowerLawGraph(60, 3, 31)
	sys := newSSSP(t, Options{Processors: 2, DelayBound: 32})
	srcErr := errors.New("disk on fire")
	feed, err := sys.AttachSource(&failingSource{tuples: tuples, err: srcErr}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Stop()
	werr := feed.Wait(waitFor)
	if !errors.Is(werr, srcErr) {
		t.Fatalf("Wait = %v, want wrapped %v", werr, srcErr)
	}
	if !errors.Is(feed.Err(), srcErr) {
		t.Fatalf("Err = %v, want %v", feed.Err(), srcErr)
	}
	st := feed.Stats()
	if st.SourceErrors != 1 {
		t.Fatalf("SourceErrors = %d, want 1", st.SourceErrors)
	}
	if st.Emitted != int64(len(tuples)) || st.Acked != st.Emitted {
		t.Fatalf("emitted %d acked %d, want both %d (pre-failure tuples must drain)",
			st.Emitted, st.Acked, len(tuples))
	}
	// Everything produced before the failure reached the loop.
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	want := algorithms.RefSSSP(tuples, 0, 64)
	err = sys.ScanApprox(func(id VertexID, state any) error {
		if got := state.(*algorithms.SSSPState).Length; got != want[id] {
			t.Fatalf("vertex %d: %d vs %d", id, got, want[id])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFeedRetryQueueBounded is the regression for the replay-queue head leak:
// the old `retry = retry[1:]` pop kept the backing array's dead prefix alive,
// so sustained fail/replay churn grew memory without bound. The indexed pop
// with periodic compaction must keep the backing array small no matter how
// many failures cycle through.
func TestFeedRetryQueueBounded(t *testing.T) {
	sp := &sourceSpout{src: stream.FromSlice(nil)}
	tu := stream.AddEdge(1, 2, 3)
	for i := 0; i < 10000; i++ {
		sp.Fail(tu)
		if _, ok := sp.Next(); !ok {
			t.Fatalf("cycle %d: failed tuple not replayed", i)
		}
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if live := len(sp.retry) - sp.retryHead; live != 0 {
		t.Fatalf("replay queue holds %d tuples after full drain", live)
	}
	if c := cap(sp.retry); c > 256 {
		t.Fatalf("replay backing array grew to %d after 10000 fail/replay cycles, want <= 256", c)
	}
	if sp.retried != 10000 || sp.emitted != 10000 {
		t.Fatalf("retried %d emitted %d, want 10000 each", sp.retried, sp.emitted)
	}
}

// TestFeedMaxPendingPausesSpout: with a throttled main loop the spout must
// park at the tuple-tree cap instead of emitting the whole source into the
// tracking table, and still deliver everything once the loop catches up.
func TestFeedMaxPendingPausesSpout(t *testing.T) {
	tuples := datasets.PowerLawGraph(250, 3, 41)
	sys := newSSSP(t, Options{Processors: 2, DelayBound: 32})
	const maxPending = 32
	sys.Engine().SlowProcessor(0, 200*time.Microsecond)
	feed, err := sys.AttachSourceWith(stream.FromSlice(tuples), FeedOptions{
		RouterTasks: 2,
		MaxPending:  maxPending,
		InboxHigh:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Stop()
	peak := 0
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		for {
			st := feed.Stats()
			if st.PendingTrees > peak {
				peak = st.PendingTrees
			}
			if st.Emitted >= int64(len(tuples)) && st.PendingTrees == 0 {
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	sys.Engine().SlowProcessor(0, 0)
	if err := feed.Wait(waitFor); err != nil {
		t.Fatal(err)
	}
	<-sampled
	if peak > maxPending {
		t.Fatalf("pending trees peaked at %d, want <= cap %d", peak, maxPending)
	}
	if feed.Stats().SpoutPauses == 0 {
		t.Fatal("spout never paused; the cap did not engage")
	}
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	want := algorithms.RefSSSP(tuples, 0, 64)
	err = sys.ScanApprox(func(id VertexID, state any) error {
		if got := state.(*algorithms.SSSPState).Length; got != want[id] {
			t.Fatalf("vertex %d: %d vs %d", id, got, want[id])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAttachSourceFromQueue(t *testing.T) {
	// A live queue: push while the feed runs, query mid-stream, then close.
	tuples := datasets.PowerLawGraph(80, 3, 23)
	half := len(tuples) / 2
	sys := newSSSP(t, Options{Processors: 2, DelayBound: 32})
	q := stream.NewQueue()
	feed, err := sys.AttachSource(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Stop()
	q.Push(tuples[:half]...)
	// Queries work while the feed is live.
	deadline := time.Now().Add(waitFor)
	for sys.Stats().InputMsgs < int64(half) {
		if time.Now().After(deadline) {
			t.Fatal("feed did not deliver the first half")
		}
		time.Sleep(time.Millisecond)
	}
	res, err := sys.Query(waitFor)
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	q.Push(tuples[half:]...)
	q.Close()
	if err := feed.Wait(waitFor); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	want := algorithms.RefSSSP(tuples, 0, 64)
	err = sys.ScanApprox(func(id VertexID, state any) error {
		if got := state.(*algorithms.SSSPState).Length; got != want[id] {
			t.Fatalf("vertex %d: %d vs %d", id, got, want[id])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
