// Command searchrank reproduces the paper's motivating scenario (Section
// 3.1): a search engine whose crawlers produce a retractable edge stream
// while PageRank must stay queryable at any instant.
//
// A synthetic power-law web graph arrives in waves (crawl batches, including
// some retractions for pages that disappeared). After each wave the program
// issues an ad-hoc branch-loop query and prints the current top pages —
// without ever recomputing from scratch and without stopping ingestion.
//
// Run it with:
//
//	go run ./examples/searchrank
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"tornado"
	"tornado/internal/algorithms"
	"tornado/internal/datasets"
)

func main() {
	// Epsilon is the per-vertex share tolerance; with hub ranks in the tens
	// it controls how much residual error the approximation tolerates per
	// page (and how far each branch loop has to iterate).
	sys, err := tornado.New(algorithms.PageRank{Damping: 0.85, Epsilon: 1e-3}, tornado.Options{
		Processors: 4,
		DelayBound: 256,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// The full crawl: a 2000-page power-law web graph with 5% of the links
	// later retracted (dead pages).
	crawl := datasets.WithRemovals(datasets.PowerLawGraph(2000, 3, 42), 0.05, 7)
	waves := 4
	per := len(crawl) / waves

	for wave := 0; wave < waves; wave++ {
		lo, hi := wave*per, (wave+1)*per
		if wave == waves-1 {
			hi = len(crawl)
		}
		sys.IngestAll(crawl[lo:hi])

		// Ad-hoc query at this instant. The main loop keeps ingesting in
		// the background; the branch starts from its approximation.
		start := time.Now()
		res, err := sys.Query(time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after crawl wave %d (%d link updates): query latency %v\n",
			wave+1, hi-lo, time.Since(start).Round(time.Millisecond))
		printTop(res, 5)
		res.Close()
	}

	s := sys.Stats()
	fmt.Printf("main loop totals: %d vertex updates, %d update messages, %d prepares\n",
		s.Commits, s.UpdateMsgs, s.PrepareMsgs)
}

type page struct {
	id   tornado.VertexID
	rank float64
}

func printTop(res *tornado.Result, n int) {
	var pages []page
	err := res.Scan(func(id tornado.VertexID, state any) error {
		pages = append(pages, page{id, state.(*algorithms.PageRankState).Rank})
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].rank > pages[j].rank })
	for i := 0; i < n && i < len(pages); i++ {
		fmt.Printf("  #%d page %-5d rank %.4f\n", i+1, pages[i].id, pages[i].rank)
	}
}
