// Command quickstart is the smallest end-to-end Tornado program: it streams
// edges of a growing graph into the main loop, lets the approximation catch
// up, and issues branch-loop queries for exact single-source shortest paths
// at two instants.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tornado"
	"tornado/internal/algorithms"
	"tornado/internal/stream"
)

func main() {
	// The vertex program: Single-Source Shortest Path from vertex 0, as in
	// Appendix B of the paper.
	sys, err := tornado.New(algorithms.SSSP{Source: 0}, tornado.Options{
		Processors: 4,
		DelayBound: 64, // bounded asynchronous; 1 would be synchronous BSP
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// A small road network arrives as a stream of edge insertions.
	sys.IngestAll([]stream.Tuple{
		stream.AddEdge(1, 0, 1), // 0 -> 1
		stream.AddEdge(2, 1, 2), // 1 -> 2
		stream.AddEdge(3, 2, 3), // 2 -> 3
		stream.AddEdge(4, 0, 4), // 0 -> 4
		stream.AddEdge(5, 4, 3), // 4 -> 3 (a shortcut: 3 is 2 hops away)
	})

	// Query the exact fixed point at this instant: a branch loop forks from
	// the main loop's approximation and converges almost immediately.
	res, err := sys.Query(time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("distances after the first five edges:")
	printDistances(res)
	res.Close()

	// The graph keeps evolving: the shortcut is retracted and a new longer
	// detour appears. The main loop adapts its approximation online.
	sys.IngestAll([]stream.Tuple{
		stream.RemoveEdge(6, 4, 3),
		stream.AddEdge(7, 4, 5),
		stream.AddEdge(8, 5, 3),
	})

	// Queries are served asynchronously: Submit returns a ticket immediately
	// (the query waits its turn behind admission control) and Wait collects
	// the converged result. sys.Query is just Submit+Wait in one call.
	ticket, err := sys.Submit(context.Background(), tornado.QuerySpec{Timeout: time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	qres, err := ticket.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("distances after the retraction and detour:")
	err = qres.Scan(func(id tornado.VertexID, state any) error {
		printDistance(id, state)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query converged in %v (forked at main-loop iteration %d)\n",
		qres.Latency.Round(time.Millisecond), qres.ForkSpec().ForkIter)
	qres.Close()

	// A re-issued query that tolerates a little staleness is answered from
	// the result cache without forking at all.
	cached, err := sys.QueryStale(time.Minute, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-issued with staleness tolerance: cache hit=%v, latency %v\n",
		cached.CacheHit, cached.Latency.Round(time.Microsecond))
	cached.Close()
}

func printDistances(res *tornado.Result) {
	err := res.Scan(func(id tornado.VertexID, state any) error {
		printDistance(id, state)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

func printDistance(id tornado.VertexID, state any) {
	d := state.(*algorithms.SSSPState).Length
	if d >= algorithms.Unreachable {
		fmt.Printf("  vertex %d: unreachable\n", id)
	} else {
		fmt.Printf("  vertex %d: %d hops\n", id, d)
	}
}
