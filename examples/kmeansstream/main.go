// Command kmeansstream clusters an evolving point stream with the KMeans
// vertex program. Points from a Gaussian mixture arrive in batches; the main
// loop keeps the centroids approximately current, and branch-loop queries
// return the converged clustering at specific instants.
//
// It also demonstrates the paper's Figure 5c observation: unlike SSSP or
// PageRank, every KMeans refinement re-scans all points, so the warm start
// shortens the branch's iteration count but not its per-iteration cost.
//
// Run it with:
//
//	go run ./examples/kmeansstream
package main

import (
	"fmt"
	"log"
	"time"

	"tornado"
	"tornado/internal/algorithms"
	"tornado/internal/datasets"
)

func main() {
	const (
		k      = 4
		blocks = 8
		total  = 4000
	)
	points, trueCenters := datasets.GaussianMixture(total, k, 8, 1.0, 2024)
	prog := algorithms.KMeans{
		CentroidBase:   0,
		BlockBase:      100,
		K:              k,
		InitialCenters: farthestFirst(points[:200], k), // spread-out seeding
		Epsilon:        1e-6,
	}
	sys, err := tornado.New(prog, tornado.Options{Processors: 4, DelayBound: 128})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Bipartite topology: centroids <-> blocks.
	sys.IngestAll(algorithms.KMeansEdges(prog, blocks, 1))

	tuples := datasets.PointStream(points, prog.BlockBase, blocks)
	batches := 4
	per := len(tuples) / batches
	for b := 0; b < batches; b++ {
		sys.IngestAll(tuples[b*per : (b+1)*per])
		res, err := sys.Query(time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		centers := make([][]float64, k)
		for i := 0; i < k; i++ {
			st, _, err := res.Read(prog.CentroidBase + tornado.VertexID(i))
			if err != nil {
				log.Fatal(err)
			}
			centers[i] = st.(*algorithms.KMCentroidState).Pos
		}
		seen := points[:(b+1)*per]
		fmt.Printf("after %5d points: query latency %v, within-cluster SSQ %.1f\n",
			len(seen), res.Latency.Round(time.Millisecond),
			algorithms.KMeansObjective(seen, centers))
		res.Close()
	}

	// How close did streaming clustering get to the generating mixture?
	ref := make([][]float64, k)
	for i, c := range trueCenters {
		ref[i] = c
	}
	fmt.Printf("generating mixture SSQ for comparison: %.1f\n",
		algorithms.KMeansObjective(points, ref))
}

// farthestFirst picks k spread-out seeds from the stream head: the first
// point, then greedily the point farthest from all chosen seeds.
func farthestFirst(points []datasets.Point, k int) []datasets.Point {
	seeds := []datasets.Point{points[0]}
	for len(seeds) < k {
		bestIdx, bestD := 0, -1.0
		for i, p := range points {
			near := 1e300
			for _, s := range seeds {
				var d float64
				for j := range p {
					diff := p[j] - s[j]
					d += diff * diff
				}
				if d < near {
					near = d
				}
			}
			if near > bestD {
				bestIdx, bestD = i, near
			}
		}
		seeds = append(seeds, points[bestIdx])
	}
	return seeds
}
