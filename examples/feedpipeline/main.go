// Command feedpipeline demonstrates Tornado's Storm-like ingestion side:
// instead of calling Ingest directly, the application attaches a live
// stream.Queue source to the System. Tuples then flow through a dataflow
// topology — spout → router bolt (fields-grouped by routed vertex) → ingest
// sink — with Storm-style tuple-tree acking providing at-least-once delivery
// into the main loop, exactly the role of the paper's ingesters.
//
// A producer goroutine pushes crawl batches into the queue while the
// foreground issues exact queries and finally merges the last result back
// into the main loop (Section 5.2).
//
// Run it with:
//
//	go run ./examples/feedpipeline
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tornado"
	"tornado/internal/algorithms"
	"tornado/internal/datasets"
	"tornado/internal/stream"
)

func main() {
	sys, err := tornado.New(algorithms.SSSP{Source: 0}, tornado.Options{
		Processors: 4,
		DelayBound: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Attach a live queue through the dataflow topology.
	q := stream.NewQueue()
	feed, err := sys.AttachSource(q, 2)
	if err != nil {
		log.Fatal(err)
	}
	defer feed.Stop()

	// A background producer delivers the edge stream in bursts.
	edges := datasets.PowerLawGraph(1500, 3, 7)
	go func() {
		chunk := len(edges) / 5
		for i := 0; i < 5; i++ {
			lo, hi := i*chunk, (i+1)*chunk
			if i == 4 {
				hi = len(edges)
			}
			q.Push(edges[lo:hi]...)
			time.Sleep(30 * time.Millisecond)
		}
		q.Close()
	}()

	// Query while the producer is still pushing: the main loop never stops
	// ingesting, and each branch answers for its own instant. The three
	// tickets are submitted together, so they land on the same journal
	// frontier and the service coalesces them onto a single fork.
	time.Sleep(50 * time.Millisecond)
	tickets := make([]*tornado.Ticket, 3)
	for i := range tickets {
		t, err := sys.Submit(context.Background(), tornado.QuerySpec{Timeout: time.Minute})
		if err != nil {
			log.Fatal(err)
		}
		tickets[i] = t
	}
	for i, t := range tickets {
		res, err := t.Wait(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		reachable := 0
		if err := res.Scan(func(_ tornado.VertexID, state any) error {
			if state.(*algorithms.SSSPState).Length < algorithms.Unreachable {
				reachable++
			}
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d: %d vertices reachable, latency %v, coalesced=%v\n",
			i+1, reachable, res.Latency.Round(time.Millisecond), res.Coalesced)
		res.Close()
	}

	// Drain the feed, take the final answer and merge it back.
	if err := feed.Wait(time.Minute); err != nil {
		log.Fatal(err)
	}
	if err := sys.WaitQuiesce(time.Minute); err != nil {
		log.Fatal(err)
	}
	res, err := sys.Query(time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	defer res.Close()
	if err := sys.Merge(res); err != nil {
		log.Fatal(err)
	}
	s := sys.Stats()
	fmt.Printf("final: %d inputs via the dataflow feed, %d vertex updates; result merged back\n",
		s.InputMsgs, s.Commits)
}
