// Command streamingml runs adaptive logistic regression over a drifting
// instance stream — the Section 6.2.2 scenario. The underlying model rotates
// slowly while instances arrive; the main loop's SGD approximation tracks it
// with the bold-driver descent schedule (a static rate either lags the drift
// or plateaus at high error). Periodic branch-loop queries return precisely
// converged models for the instant they were asked at.
//
// Run it with:
//
//	go run ./examples/streamingml
package main

import (
	"fmt"
	"log"
	"time"

	"tornado"
	"tornado/internal/algorithms"
	"tornado/internal/datasets"
	"tornado/internal/engine"
)

func main() {
	const (
		dim      = 16
		samplers = 4
		total    = 4000
	)
	prog := algorithms.SGD{
		ParamVertex: 0,
		SamplerBase: 10,
		Samplers:    samplers,
		Dim:         dim,
		Loss:        algorithms.Logistic,
		Lambda:      1e-4,
		Eta0:        0.2,
		BoldDriver:  true, // adapt the rate to the drift (Figure 7b)
		RoundLimit:  100,
		Tol:         1e-4,
	}
	sys, err := tornado.New(prog, tornado.Options{Processors: 4, DelayBound: 128})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Wire the bipartite SGD topology: parameter vertex <-> samplers.
	sys.IngestAll(algorithms.SGDEdges(prog, 1))

	// A drifting ground-truth model generates the stream.
	instances, _ := datasets.DriftingLogistic(total, dim, 6, 0.002, 99)
	tuples := datasets.InstanceStream(instances, prog.SamplerBase, samplers)

	chunk := total / 8
	for i := 0; i < 8; i++ {
		sys.IngestAll(tuples[i*chunk : (i+1)*chunk])
		if err := sys.WaitQuiesce(time.Minute); err != nil {
			log.Fatal(err)
		}
		// The approximation's quality on the most recent window.
		w, err := approxWeights(sys, prog)
		if err != nil {
			log.Fatal(err)
		}
		recent := instances[i*chunk : (i+1)*chunk]
		fmt.Printf("chunk %d: approx objective %.4f, accuracy %.3f\n",
			i+1,
			algorithms.Objective(algorithms.Logistic, w, recent, prog.Lambda),
			algorithms.Accuracy(algorithms.Logistic, w, recent))
	}

	// Ask for the precise model at the final instant: the branch loop
	// iterates SGD to convergence starting from the warm approximation.
	res, err := sys.QueryWith(time.Minute, nil, func(br *engine.Engine) {
		// Nudge every sampler so it recomputes its gradient against the
		// snapshot parameters even though no new data arrives in a branch.
		for s := 0; s < samplers; s++ {
			br.Activate(prog.SamplerBase + tornado.VertexID(s))
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	defer res.Close()
	st, _, err := res.Read(prog.ParamVertex)
	if err != nil {
		log.Fatal(err)
	}
	w := st.(*algorithms.SGDParamState).W
	fmt.Printf("branch query: latency %v, final objective %.4f, accuracy %.3f\n",
		res.Latency.Round(time.Millisecond),
		algorithms.Objective(algorithms.Logistic, w, instances[total-chunk:], prog.Lambda),
		algorithms.Accuracy(algorithms.Logistic, w, instances[total-chunk:]))
}

func approxWeights(sys *tornado.System, prog algorithms.SGD) ([]float64, error) {
	st, err := sys.ReadApprox(prog.ParamVertex)
	if err != nil {
		return nil, err
	}
	return st.(*algorithms.SGDParamState).W, nil
}
