package tornado

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tornado/internal/dataflow"
	"tornado/internal/stream"
)

// Feed is a running ingestion topology attached to a System: a spout pulls
// from a stream.Source, a router bolt partitions tuples by their routed
// vertex (preserving per-vertex order), and a sink bolt ingests into the
// main loop. Delivery is tracked with Storm-style tuple-tree acking — the
// paper's ingesters are exactly such spouts (Section 5.1).
type Feed struct {
	topo  *dataflow.Topology
	spout *sourceSpout
}

// sourceSpout adapts a stream.Source to the dataflow spout contract with
// replay-on-failure.
type sourceSpout struct {
	mu        sync.Mutex
	src       stream.Source
	retry     []stream.Tuple
	exhausted bool
	emitted   int64
	acked     int64
}

func (s *sourceSpout) Next() (any, bool) {
	s.mu.Lock()
	if len(s.retry) > 0 {
		t := s.retry[0]
		s.retry = s.retry[1:]
		s.emitted++
		s.mu.Unlock()
		return t, true
	}
	if s.exhausted {
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Unlock()
	// Pull outside the lock: Queue-backed sources block until data or
	// Close.
	t, err := s.src.Next()
	s.mu.Lock()
	defer s.mu.Unlock()
	if errors.Is(err, stream.ErrExhausted) {
		s.exhausted = true
		return nil, false
	}
	if err != nil {
		s.exhausted = true
		return nil, false
	}
	s.emitted++
	return t, true
}

func (s *sourceSpout) Ack(any) {
	s.mu.Lock()
	s.acked++
	s.mu.Unlock()
}

func (s *sourceSpout) Fail(p any) {
	s.mu.Lock()
	s.retry = append(s.retry, p.(stream.Tuple))
	s.mu.Unlock()
}

func (s *sourceSpout) done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exhausted && len(s.retry) == 0 && s.acked == s.emitted
}

// AttachSource pulls tuples from src through a dataflow topology into the
// main loop. routerTasks sets the router bolt's parallelism (it partitions
// by routed vertex, so per-vertex tuple order is preserved). Close or
// exhaust the source, then Wait for full delivery.
func (s *System) AttachSource(src stream.Source, routerTasks int) (*Feed, error) {
	if routerTasks < 1 {
		routerTasks = 2
	}
	topo := dataflow.NewTopology(30 * time.Second)
	spout := &sourceSpout{src: src}
	if err := topo.AddSpout("source", spout); err != nil {
		return nil, err
	}
	// The router exists to demonstrate/exercise fields grouping the way
	// Storm topologies partition ingesters' output; the sink performs the
	// actual ingest.
	router := dataflow.BoltFunc(func(t dataflow.Tuple, c *dataflow.Collector) {
		c.Emit(t.Payload)
	})
	sys := s
	sink := dataflow.BoltFunc(func(t dataflow.Tuple, _ *dataflow.Collector) {
		sys.Ingest(t.Payload.(stream.Tuple))
	})
	if err := topo.AddBolt("router", router, routerTasks); err != nil {
		return nil, err
	}
	if err := topo.AddBolt("ingest", sink, routerTasks); err != nil {
		return nil, err
	}
	routeKey := dataflow.Fields(func(p any) uint64 {
		t := p.(stream.Tuple)
		switch t.Kind {
		case stream.KindAddEdge, stream.KindRemoveEdge:
			return uint64(t.Src)
		default:
			return uint64(t.Dst)
		}
	})
	if err := topo.Subscribe("router", "source", routeKey); err != nil {
		return nil, err
	}
	if err := topo.Subscribe("ingest", "router", routeKey); err != nil {
		return nil, err
	}
	if err := topo.Start(); err != nil {
		return nil, err
	}
	return &Feed{topo: topo, spout: spout}, nil
}

// Wait blocks until the source is exhausted and every tuple tree has been
// acknowledged (all input handed to the main loop).
func (f *Feed) Wait(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if f.spout.done() && f.topo.PendingTrees() == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("tornado: feed did not drain within %v", timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// Stop tears the ingestion topology down. For blocking sources (such as
// stream.Queue) close the source first, or Stop will wait on the pull in
// flight.
func (f *Feed) Stop() { f.topo.Stop() }
