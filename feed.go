package tornado

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"tornado/internal/dataflow"
	"tornado/internal/obs/trace"
	"tornado/internal/stream"
)

// tracedTuple rides the ingestion topology carrying the causal span context
// born at spout emission; the sink hands it to IngestTraced, which closes
// the "spout" stage (emission, routing and topology transit). Untraced
// tuples travel bare — the wrapper exists only on the sampled path.
type tracedTuple struct {
	T   stream.Tuple
	Ctx trace.Context
}

// feedTuple unwraps a topology payload into the tuple and its (possibly
// zero) span context.
func feedTuple(p any) (stream.Tuple, trace.Context) {
	if tt, ok := p.(tracedTuple); ok {
		return tt.T, tt.Ctx
	}
	return p.(stream.Tuple), trace.Context{}
}

// Feed is a running ingestion topology attached to a System: a spout pulls
// from a stream.Source, a router bolt partitions tuples by their routed
// vertex (preserving per-vertex order), and a sink bolt ingests into the
// main loop. Delivery is tracked with Storm-style tuple-tree acking — the
// paper's ingesters are exactly such spouts (Section 5.1).
//
// The feed participates in end-to-end backpressure: the spout stops pulling
// from the source while FeedOptions.MaxPending tuple trees are incomplete,
// the topology transport bounds its inboxes with credit watermarks, and the
// sink's Ingest blocks at the main loop's admission gate — so a slow main
// loop propagates all the way back to a paused source instead of unbounded
// buffering at any hop.
type Feed struct {
	topo  *dataflow.Topology
	spout *sourceSpout
}

// FeedOptions tune AttachSourceWith. The zero value enables bounded
// ingestion with the defaults below; set a field to -1 to disable that
// bound explicitly.
type FeedOptions struct {
	// RouterTasks is the router and sink bolts' parallelism (default 2).
	// The router partitions by routed vertex, preserving per-vertex order.
	RouterTasks int
	// MaxPending caps incomplete tuple trees; at the cap the spout pauses
	// until acks drain it (default 4096, -1 unbounded).
	MaxPending int
	// InboxHigh / InboxLow are the topology transport's credit watermarks
	// (default 1024 / high÷2, -1 unbounded).
	InboxHigh, InboxLow int
	// Timeout is how long a tuple tree may stay incomplete before it is
	// failed back to the spout for replay (default 30s).
	Timeout time.Duration
}

func (o *FeedOptions) fill() {
	if o.RouterTasks < 1 {
		o.RouterTasks = 2
	}
	if o.MaxPending == 0 {
		o.MaxPending = 4096
	}
	if o.InboxHigh == 0 {
		o.InboxHigh = 1024
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
}

// FeedStats is a point-in-time snapshot of a feed's delivery and
// backpressure state.
type FeedStats struct {
	// Emitted and Acked count spout emissions (including replays) and
	// completed tuple trees; Retried counts tuples failed back for replay.
	Emitted, Acked, Retried int64
	// RetryLen and RetryCap are the replay queue's current length and its
	// backing array's capacity (the latter stays bounded by compaction).
	RetryLen, RetryCap int
	// PendingTrees is the number of incomplete tuple trees.
	PendingTrees int
	// SourceErrors counts source failures other than exhaustion (the first
	// is retained in Err).
	SourceErrors int64
	// SpoutPauses and SpoutPaused count transitions into the paused state
	// at the MaxPending cap and the cumulative time spent there.
	SpoutPauses int64
	SpoutPaused time.Duration
}

// sourceSpout adapts a stream.Source to the dataflow spout contract with
// replay-on-failure.
type sourceSpout struct {
	// spans makes the spout the head of causal freshness traces: each
	// emitted tuple takes its sampling decision here (nil-safe).
	spans *trace.Tracer

	mu        sync.Mutex
	src       stream.Source
	retry     []stream.Tuple
	retryHead int // index of the next replay in retry
	exhausted bool
	emitted   int64
	acked     int64
	retried   int64
	err       error
	errCount  int64
}

// popRetryLocked takes the oldest failed tuple for replay. The queue is an
// indexed slice, not a re-sliced one: popping advances retryHead and zeroes
// the slot, and once the dead prefix dominates the backing array the live
// tail is copied down — so replay churn cannot retain an ever-growing array.
func (s *sourceSpout) popRetryLocked() stream.Tuple {
	t := s.retry[s.retryHead]
	s.retry[s.retryHead] = stream.Tuple{}
	s.retryHead++
	if s.retryHead >= 64 && s.retryHead*2 >= len(s.retry) {
		n := copy(s.retry, s.retry[s.retryHead:])
		clear(s.retry[n:])
		s.retry = s.retry[:n]
		s.retryHead = 0
	}
	return t
}

// emitPayload takes the head-sampling decision for one emitted tuple: a
// sampled tuple travels wrapped with its newborn span context, everything
// else travels bare.
func (s *sourceSpout) emitPayload(t stream.Tuple) any {
	if s.spans.Enabled() {
		if ctx := s.spans.Begin(s.spans.Now()); ctx.Traced() {
			return tracedTuple{T: t, Ctx: ctx}
		}
	}
	return t
}

func (s *sourceSpout) Next() (any, bool) {
	s.mu.Lock()
	if s.retryHead < len(s.retry) {
		t := s.popRetryLocked()
		s.emitted++
		s.mu.Unlock()
		return s.emitPayload(t), true
	}
	if s.exhausted {
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Unlock()
	// Pull outside the lock: Queue-backed sources block until data or
	// Close.
	t, err := s.src.Next()
	s.mu.Lock()
	defer s.mu.Unlock()
	if errors.Is(err, stream.ErrExhausted) {
		s.exhausted = true
		return nil, false
	}
	if err != nil {
		// A real source failure, not exhaustion: stop pulling, but surface
		// it — swallowing it here would report a truncated stream as a
		// clean drain.
		s.errCount++
		if s.err == nil {
			s.err = err
			log.Printf("tornado: feed source failed: %v", err)
		}
		s.exhausted = true
		return nil, false
	}
	s.emitted++
	return s.emitPayload(t), true
}

func (s *sourceSpout) Ack(any) {
	s.mu.Lock()
	s.acked++
	s.mu.Unlock()
}

func (s *sourceSpout) Fail(p any) {
	// Replays re-enter the queue bare: a replayed emission takes a fresh
	// sampling decision (the failed tree's trace died with the tree).
	t, _ := feedTuple(p)
	s.mu.Lock()
	s.retry = append(s.retry, t)
	s.retried++
	s.mu.Unlock()
}

func (s *sourceSpout) done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exhausted && s.retryHead >= len(s.retry) && s.acked == s.emitted
}

// AttachSource pulls tuples from src through a dataflow topology into the
// main loop with the default FeedOptions bounds. routerTasks sets the router
// bolt's parallelism (it partitions by routed vertex, so per-vertex tuple
// order is preserved). Close or exhaust the source, then Wait for full
// delivery.
func (s *System) AttachSource(src stream.Source, routerTasks int) (*Feed, error) {
	return s.AttachSourceWith(src, FeedOptions{RouterTasks: routerTasks})
}

// AttachSourceWith is AttachSource with explicit flow-control bounds.
func (s *System) AttachSourceWith(src stream.Source, opts FeedOptions) (*Feed, error) {
	opts.fill()
	topo := dataflow.NewTopology(opts.Timeout)
	if opts.MaxPending > 0 {
		if err := topo.SetMaxPending(opts.MaxPending); err != nil {
			return nil, err
		}
	}
	if opts.InboxHigh > 0 {
		if err := topo.SetInboxWatermarks(opts.InboxHigh, opts.InboxLow); err != nil {
			return nil, err
		}
	}
	spout := &sourceSpout{src: src, spans: s.hub.Spans}
	if err := topo.AddSpout("source", spout); err != nil {
		return nil, err
	}
	// The router exists to demonstrate/exercise fields grouping the way
	// Storm topologies partition ingesters' output; the sink performs the
	// actual ingest.
	router := dataflow.BoltFunc(func(t dataflow.Tuple, c *dataflow.Collector) {
		c.Emit(t.Payload)
	})
	sys := s
	sink := dataflow.BoltFunc(func(t dataflow.Tuple, _ *dataflow.Collector) {
		tup, ctx := feedTuple(t.Payload)
		sys.engine().IngestTraced(tup, ctx)
	})
	if err := topo.AddBolt("router", router, opts.RouterTasks); err != nil {
		return nil, err
	}
	if err := topo.AddBolt("ingest", sink, opts.RouterTasks); err != nil {
		return nil, err
	}
	routeKey := dataflow.Fields(func(p any) uint64 {
		t, _ := feedTuple(p)
		switch t.Kind {
		case stream.KindAddEdge, stream.KindRemoveEdge:
			return uint64(t.Src)
		default:
			return uint64(t.Dst)
		}
	})
	if err := topo.Subscribe("router", "source", routeKey); err != nil {
		return nil, err
	}
	if err := topo.Subscribe("ingest", "router", routeKey); err != nil {
		return nil, err
	}
	// Completed tuple trees feed the spout_tree stage histogram: emit-to-ack
	// wall time through the whole ingestion topology.
	if err := topo.SetTreeObserver(func(d time.Duration) {
		s.hub.ObserveStage("spout_tree", d)
	}); err != nil {
		return nil, err
	}
	if err := topo.Start(); err != nil {
		return nil, err
	}
	return &Feed{topo: topo, spout: spout}, nil
}

// Err returns the first source failure other than exhaustion, or nil. A
// feed with a non-nil Err delivered everything the source produced before
// failing, but the stream is truncated.
func (f *Feed) Err() error {
	f.spout.mu.Lock()
	defer f.spout.mu.Unlock()
	return f.spout.err
}

// Stats snapshots the feed's delivery and backpressure counters.
func (f *Feed) Stats() FeedStats {
	sp := f.spout
	sp.mu.Lock()
	st := FeedStats{
		Emitted:      sp.emitted,
		Acked:        sp.acked,
		Retried:      sp.retried,
		RetryLen:     len(sp.retry) - sp.retryHead,
		RetryCap:     cap(sp.retry),
		SourceErrors: sp.errCount,
	}
	sp.mu.Unlock()
	st.PendingTrees = f.topo.PendingTrees()
	st.SpoutPauses = f.topo.SpoutPauses()
	st.SpoutPaused = f.topo.SpoutPaused()
	return st
}

// Wait blocks until the source is exhausted and every tuple tree has been
// acknowledged (all input handed to the main loop). A source failure is
// reported after the tuples it did produce have drained.
func (f *Feed) Wait(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if f.spout.done() && f.topo.PendingTrees() == 0 {
			if err := f.Err(); err != nil {
				return fmt.Errorf("tornado: feed source failed: %w", err)
			}
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("tornado: feed did not drain within %v", timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// Stop tears the ingestion topology down. For blocking sources (such as
// stream.Queue) close the source first, or Stop will wait on the pull in
// flight.
func (f *Feed) Stop() { f.topo.Stop() }
