package tornado

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tornado/internal/algorithms"
	"tornado/internal/datasets"
	"tornado/internal/stream"
)

// TestQueryStormExactAndLeakFree fires concurrent storms of mixed
// fresh/stale/prioritized queries at two quiescent instants and asserts every
// result is the exact reference fixed point of the journal prefix it was
// forked at, then that no branch loop or snapshot pin outlives the service.
func TestQueryStormExactAndLeakFree(t *testing.T) {
	tuples := datasets.PowerLawGraph(150, 3, 33)
	extra := []stream.Tuple{
		stream.AddEdge(9001, 0, 148),
		stream.AddEdge(9002, 148, 149),
		stream.AddEdge(9003, 149, 7),
	}
	all := append(append([]stream.Tuple{}, tuples...), extra...)

	sys := newSSSP(t, Options{Processors: 3, DelayBound: 32})
	sys.IngestAll(tuples)
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}

	const stormers = 32
	storm := func() []*Result {
		t.Helper()
		results := make([]*Result, stormers)
		errs := make([]error, stormers)
		var wg sync.WaitGroup
		for i := 0; i < stormers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				spec := QuerySpec{Timeout: waitFor, Priority: i % 3}
				if i%2 == 1 {
					spec.MaxStaleDeltas = 50 // covers len(extra): may accept cache
				}
				tk, err := sys.Submit(context.Background(), spec)
				if err != nil {
					errs[i] = err
					return
				}
				qr, err := tk.Wait(context.Background())
				if err != nil {
					errs[i] = err
					return
				}
				results[i] = wrapResult(qr)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("stormer %d: %v", i, err)
			}
		}
		return results
	}

	check := func(results []*Result) {
		t.Helper()
		for _, res := range results {
			prefix := all[:res.ForkSeq()]
			want := algorithms.RefSSSP(prefix, 0, 64)
			err := res.Scan(func(id VertexID, state any) error {
				if got := state.(*algorithms.SSSPState).Length; got != want[id] {
					t.Fatalf("vertex %d: got %d, reference %d (forkSeq %d)", id, got, want[id], res.ForkSeq())
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			res.Close()
		}
	}

	check(storm())
	sys.IngestAll(extra)
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	check(storm())

	// Shut the service down (releases the result cache) and verify nothing
	// leaked: no snapshot pin and no live branch remains.
	eng := sys.Engine()
	sys.Close()
	deadline := time.Now().Add(5 * time.Second)
	for eng.PinnedForks() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d snapshot pins still held after Close", eng.PinnedForks())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// metricValue extracts the value of a Prometheus sample by name prefix
// (labels included in the match when given).
func metricValue(t *testing.T, body, name string) (float64, bool) {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest != "" && rest[0] != ' ' && rest[0] != '{' {
			continue // longer metric name sharing the prefix
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v, true
	}
	return 0, false
}

// TestQueryServiceMetricsAcceptance is the acceptance scenario: 64 concurrent
// identical queries cost at most 4 forks, a staleness-tolerant re-issue is a
// cache hit, and the serving counters are visible on /metrics and /statusz.
func TestQueryServiceMetricsAcceptance(t *testing.T) {
	sys := newSSSP(t, Options{Processors: 3, DelayBound: 32, MetricsAddr: "127.0.0.1:0"})
	sys.IngestAll(datasets.PowerLawGraph(120, 3, 44))
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}

	const clients = 64
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk, err := sys.Submit(context.Background(), QuerySpec{Timeout: waitFor})
			if err != nil {
				errs[i] = err
				return
			}
			qr, err := tk.Wait(context.Background())
			if err != nil {
				errs[i] = err
				return
			}
			qr.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	// Re-issue within the staleness bound: served from the cache.
	reissue, err := sys.QueryStale(waitFor, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !reissue.CacheHit {
		t.Fatal("re-issued query within the staleness bound missed the cache")
	}
	reissue.Close()

	resp, err := http.Get(sys.MetricsURL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	admitted, ok := metricValue(t, body, "tornado_queries_admitted_total")
	if !ok {
		t.Fatal("tornado_queries_admitted_total missing from /metrics")
	}
	if admitted > 4 {
		t.Fatalf("%d identical concurrent queries admitted %v forks; want <= 4", clients, admitted)
	}
	hits, ok := metricValue(t, body, "tornado_queries_cache_hits_total")
	if !ok || hits < 1 {
		t.Fatalf("cache hits on /metrics = %v (present %v); want >= 1", hits, ok)
	}
	submitted, ok := metricValue(t, body, "tornado_queries_submitted_total")
	if !ok || submitted < clients+1 {
		t.Fatalf("submitted on /metrics = %v (present %v); want >= %d", submitted, ok, clients+1)
	}
	for _, name := range []string{
		"tornado_query_queue_depth",
		"tornado_queries_inflight",
		"tornado_queries_shed_total",
		"tornado_queries_coalesced_total",
		"tornado_queries_expired_total",
		"tornado_query_cache_entries",
		"tornado_query_wait_seconds_count",
		"tornado_query_latency_seconds_count",
	} {
		if _, ok := metricValue(t, body, name); !ok {
			t.Fatalf("%s missing from /metrics", name)
		}
	}

	// The same counters surface as a /statusz section.
	resp, err = http.Get(sys.MetricsURL() + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var statusz map[string]any
	err = json.NewDecoder(resp.Body).Decode(&statusz)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	qs, ok := statusz["queryserv"].(map[string]any)
	if !ok {
		t.Fatalf("/statusz has no queryserv section: %v", statusz)
	}
	for _, key := range []string{"submitted", "admitted", "coalesced", "cache_hits", "shed", "queue_depth", "cached"} {
		if _, ok := qs[key]; !ok {
			t.Fatalf("/statusz queryserv section lacks %q: %v", key, qs)
		}
	}
	if got := qs["cache_hits"].(float64); got < 1 {
		t.Fatalf("/statusz cache_hits = %v; want >= 1", got)
	}
}

// TestQueryHTTPEndpoint walks the POST /query -> GET /query/{id} ->
// DELETE /query/{id} flow on the obs hub.
func TestQueryHTTPEndpoint(t *testing.T) {
	sys := newSSSP(t, Options{MetricsAddr: "127.0.0.1:0"})
	sys.IngestAll([]Tuple{
		stream.AddEdge(1, 0, 1),
		stream.AddEdge(2, 1, 2),
		stream.AddEdge(3, 2, 3),
	})
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	base := sys.MetricsURL()

	resp, err := http.Post(base+"/query", "application/json", strings.NewReader(`{"timeout_ms": 30000}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /query: %s", resp.Status)
	}
	var accepted struct {
		ID    uint64 `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&accepted)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if accepted.ID == 0 {
		t.Fatal("POST /query returned no ticket id")
	}

	var status struct {
		State    string         `json:"state"`
		Error    string         `json:"error"`
		Vertices map[string]any `json:"vertices"`
	}
	deadline := time.Now().Add(waitFor)
	for {
		resp, err = http.Get(fmt.Sprintf("%s/query/%d", base, accepted.ID))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /query/%d: %s", accepted.ID, resp.Status)
		}
		status = struct {
			State    string         `json:"state"`
			Error    string         `json:"error"`
			Vertices map[string]any `json:"vertices"`
		}{}
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if status.State == "done" || status.State == "error" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query stuck in state %q", status.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if status.State != "done" || status.Error != "" {
		t.Fatalf("query resolved state=%q error=%q", status.State, status.Error)
	}
	v3, ok := status.Vertices["3"].(map[string]any)
	if !ok {
		t.Fatalf("GET /query/%d has no vertex 3: %v", accepted.ID, status.Vertices)
	}
	if got := v3["Length"].(float64); got != 3 {
		t.Fatalf("vertex 3 distance over HTTP = %v; want 3", got)
	}

	// DELETE discards the retained result; a later GET is a 404.
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/query/%d", base, accepted.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE /query/%d: %s", accepted.ID, resp.Status)
	}
	resp, err = http.Get(fmt.Sprintf("%s/query/%d", base, accepted.ID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE: %s; want 404", resp.Status)
	}
}
