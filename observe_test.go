package tornado

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"tornado/internal/algorithms"
	"tornado/internal/obs"
	"tornado/internal/stream"
)

// TestMetricsEndpointQuickstart is the issue's acceptance scenario: a
// quickstart-style run with MetricsAddr set exposes /metrics with the main
// loop's protocol counters, the frontier gauge, and — after a query — the
// branch-loop convergence histogram; sys.Trace returns the watched vertex's
// protocol events in order.
func TestMetricsEndpointQuickstart(t *testing.T) {
	sys := newSSSP(t, Options{
		Processors:       2,
		DelayBound:       8,
		MetricsAddr:      "127.0.0.1:0",
		TraceSampleEvery: -1, // watched-only: exercises Watch below
	})
	url := sys.MetricsURL()
	if url == "" {
		t.Fatal("MetricsURL empty with MetricsAddr set")
	}

	const watched = VertexID(2)
	sys.Watch(watched)
	sys.IngestAll([]Tuple{
		stream.AddEdge(1, 0, 1),
		stream.AddEdge(2, 1, 2),
		stream.AddEdge(3, 2, 3),
		stream.AddEdge(4, 3, 0),
	})
	res, err := sys.Query(waitFor)
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	if err := sys.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}

	body := httpGet(t, url+"/metrics")
	mainSeries := `{kind="main",loop="0",program="algorithms.SSSP"}`
	for _, want := range []string{
		"# TYPE tornado_commits_total counter",
		"tornado_commits_total" + mainSeries,
		"tornado_update_msgs_total" + mainSeries,
		"tornado_prepare_msgs_total" + mainSeries,
		"tornado_ack_msgs_total" + mainSeries,
		"tornado_frontier_iteration" + mainSeries,
		`tornado_branches_total{kind="system"} 1`,
		`tornado_branch_converge_seconds_count{kind="system"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// The finished query's branch loop must not leak series.
	if strings.Contains(body, `kind="branch"`) {
		t.Errorf("closed branch loop leaked series:\n%s", body)
	}

	// /statusz carries the per-loop and system sections as JSON.
	var status map[string]any
	if err := json.Unmarshal([]byte(httpGet(t, url+"/statusz")), &status); err != nil {
		t.Fatalf("/statusz not JSON: %v", err)
	}
	if _, ok := status["loop/0"]; !ok {
		t.Errorf("/statusz missing loop/0: %v", status)
	}
	if _, ok := status["system"]; !ok {
		t.Errorf("/statusz missing system section: %v", status)
	}

	// With watched-only sampling, an unwatched vertex yields nothing while
	// the watched one shows the ordered three-phase protocol.
	if evs := sys.Trace(0); len(evs) != 0 {
		t.Errorf("unwatched vertex traced under watched-only sampling: %v", evs)
	}
	events := sys.Trace(watched)
	if len(events) == 0 {
		t.Fatal("Trace(watched) returned no events")
	}
	var lastSeq uint64
	sawCommit := false
	for i, ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("event %d out of order: %v", i, events)
		}
		lastSeq = ev.Seq
		if ev.Kind == obs.EvCommit {
			sawCommit = true
		}
	}
	if !sawCommit {
		t.Fatalf("watched vertex never committed: %v", events)
	}

	// Stats() mirrors what the endpoint exposes.
	s := sys.Stats()
	if s.Commits == 0 || s.Frontier <= 0 {
		t.Fatalf("StatsSnapshot empty after run: %+v", s)
	}
	if s.PendingPrepares != 0 {
		t.Fatalf("PendingPrepares = %d after quiescence", s.PendingPrepares)
	}
}

func TestNoMetricsAddrMeansNoServer(t *testing.T) {
	sys := newSSSP(t, Options{})
	if url := sys.MetricsURL(); url != "" {
		t.Fatalf("MetricsURL = %q without MetricsAddr; want empty", url)
	}
	if sys.Obs() == nil {
		t.Fatal("Obs hub must exist even without an endpoint")
	}
}

func TestNewRejectsBadMetricsAddr(t *testing.T) {
	_, err := New(algorithms.SSSP{Source: 0}, Options{MetricsAddr: "256.256.256.256:-1"})
	if err == nil {
		t.Fatal("want error for unusable metrics address")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
