package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind labels one protocol transition in the trace.
type EventKind uint8

const (
	// EvInput: an external stream tuple was applied to the vertex.
	EvInput EventKind = iota + 1
	// EvActivate: the vertex was re-activated (branch seed, recovery).
	EvActivate
	// EvGather: a committed update (COMMIT message) was gathered; Peer is
	// the producer, Iteration the producer's commit iteration.
	EvGather
	// EvHoldback: an update at or above the delay cap was held back until
	// the frontier advances (Section 4.4 delay bounding).
	EvHoldback
	// EvPrepareSend: phase two began; one event per consumer asked for its
	// iteration number (Peer is the consumer).
	EvPrepareSend
	// EvPrepareRecv: a producer's PREPARE arrived (Peer is the producer).
	EvPrepareRecv
	// EvAckSend: the vertex answered a PREPARE with its iteration number.
	EvAckSend
	// EvAckRecv: a consumer's ACK arrived; Iteration is the consumer's
	// iteration number folded into the negotiation.
	EvAckRecv
	// EvCommit: phase three; Iteration is the assigned iteration number τ.
	EvCommit
	// EvFrontier: the master announced iterations <= Iteration terminated.
	// Vertex is NoVertex.
	EvFrontier
)

// String returns the event kind's wire name.
func (k EventKind) String() string {
	switch k {
	case EvInput:
		return "input"
	case EvActivate:
		return "activate"
	case EvGather:
		return "gather"
	case EvHoldback:
		return "holdback"
	case EvPrepareSend:
		return "prepare-send"
	case EvPrepareRecv:
		return "prepare-recv"
	case EvAckSend:
		return "ack-send"
	case EvAckRecv:
		return "ack-recv"
	case EvCommit:
		return "commit"
	case EvFrontier:
		return "frontier"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// NoVertex marks events not tied to a vertex (frontier advances).
const NoVertex = ^uint64(0)

// Event is one recorded protocol transition.
type Event struct {
	// Seq is a global, strictly increasing sequence number; events with
	// ascending Seq happened in recording order.
	Seq uint64
	// At is the offset from the tracer's start.
	At time.Duration
	// Loop is the loop the event belongs to (storage.LoopID value).
	Loop uint64
	// Kind is the transition recorded.
	Kind EventKind
	// Vertex is the vertex the event happened at (NoVertex for frontier
	// advances).
	Vertex uint64
	// Peer is the other endpoint of a message event (0 when n/a).
	Peer uint64
	// Iteration is the iteration number carried by the transition.
	Iteration int64
}

// String renders the event for the shell's trace command.
func (e Event) String() string {
	v := fmt.Sprintf("v%d", e.Vertex)
	if e.Vertex == NoVertex {
		v = "master"
	}
	return fmt.Sprintf("#%d %9.3fms loop=%d %s %s peer=%d iter=%d",
		e.Seq, float64(e.At.Microseconds())/1000, e.Loop, v, e.Kind, e.Peer, e.Iteration)
}

// Tracer records protocol events into a fixed-capacity ring buffer. Vertices
// are sampled (1 in SampleEvery by identifier hash) so tracing a large graph
// stays cheap; individual vertices can additionally be watched, which traces
// them regardless of sampling. The hot-path contract is: call Enabled first
// (one atomic load plus a hash for sampled-out vertices) and Record only
// when it returns true. Tracer is safe for concurrent use. A nil *Tracer is
// valid and permanently disabled.
type Tracer struct {
	start     time.Time
	sampleMod atomic.Uint64
	watchN    atomic.Int64
	watch     sync.Map // uint64 -> struct{}
	recorded  atomic.Uint64

	mu   sync.Mutex
	buf  []Event
	head int // next write position
	n    int // valid entries
	seq  uint64
}

// NewTracer returns a tracer with the given ring capacity (default 8192 when
// <= 0) sampling 1 in sampleEvery vertices (1 traces every vertex; 0 uses
// the default of 64; negative disables sampling so only watched vertices are
// traced).
func NewTracer(capacity, sampleEvery int) *Tracer {
	if capacity <= 0 {
		capacity = 8192
	}
	t := &Tracer{start: time.Now(), buf: make([]Event, capacity)}
	t.SetSampleEvery(sampleEvery)
	return t
}

// SetSampleEvery adjusts the sampling rate (semantics as in NewTracer).
func (t *Tracer) SetSampleEvery(n int) {
	switch {
	case n == 0:
		t.sampleMod.Store(64)
	case n < 0:
		t.sampleMod.Store(0)
	default:
		t.sampleMod.Store(uint64(n))
	}
}

// vhash mixes a vertex ID so modulo sampling is unbiased for sequential IDs.
func vhash(v uint64) uint64 {
	v *= 0x9E3779B97F4A7C15
	v ^= v >> 32
	return v
}

// Enabled reports whether events of the given vertex are being traced.
func (t *Tracer) Enabled(vertex uint64) bool {
	if t == nil {
		return false
	}
	if t.watchN.Load() > 0 {
		if _, ok := t.watch.Load(vertex); ok {
			return true
		}
	}
	mod := t.sampleMod.Load()
	return mod != 0 && vhash(vertex)%mod == 0
}

// Watch forces tracing of one vertex regardless of sampling.
func (t *Tracer) Watch(vertex uint64) {
	if _, loaded := t.watch.LoadOrStore(vertex, struct{}{}); !loaded {
		t.watchN.Add(1)
	}
}

// Unwatch reverses Watch.
func (t *Tracer) Unwatch(vertex uint64) {
	if _, loaded := t.watch.LoadAndDelete(vertex); loaded {
		t.watchN.Add(-1)
	}
}

// Record appends one event to the ring, overwriting the oldest when full.
func (t *Tracer) Record(loop uint64, kind EventKind, vertex, peer uint64, iter int64) {
	if t == nil {
		return
	}
	at := time.Since(t.start)
	t.recorded.Add(1)
	t.mu.Lock()
	t.seq++
	t.buf[t.head] = Event{Seq: t.seq, At: at, Loop: loop, Kind: kind, Vertex: vertex, Peer: peer, Iteration: iter}
	t.head = (t.head + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	}
	t.mu.Unlock()
}

// Recorded returns the total number of events ever recorded (including ones
// the ring has since overwritten).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.recorded.Load()
}

// Len returns the number of events currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// snapshot returns the ring's contents oldest-first.
func (t *Tracer) snapshot() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	startIdx := t.head - t.n
	if startIdx < 0 {
		startIdx += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(startIdx+i)%len(t.buf)])
	}
	return out
}

// Query returns the retained events of one vertex in one loop, oldest first
// (ascending Seq).
func (t *Tracer) Query(loop, vertex uint64) []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for _, e := range t.snapshot() {
		if e.Loop == loop && e.Vertex == vertex {
			out = append(out, e)
		}
	}
	return out
}

// QueryVertex returns the retained events of one vertex across all loops.
func (t *Tracer) QueryVertex(vertex uint64) []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for _, e := range t.snapshot() {
		if e.Vertex == vertex {
			out = append(out, e)
		}
	}
	return out
}

// Recent returns the newest n retained events, oldest first.
func (t *Tracer) Recent(n int) []Event {
	if t == nil {
		return nil
	}
	all := t.snapshot()
	if n < len(all) {
		all = all[len(all)-n:]
	}
	return all
}
