package obs

import (
	"math"
	"sync"
	"testing"
)

func TestStreamHistBasics(t *testing.T) {
	h := NewStreamHist([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 3, 3, 6, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("Count = %d; want 6", got)
	}
	if got := h.Sum(); got != 114 {
		t.Fatalf("Sum = %v; want 114", got)
	}
	if got := h.Mean(); got != 19 {
		t.Fatalf("Mean = %v; want 19", got)
	}
	if got := h.Min(); got != 0.5 {
		t.Fatalf("Min = %v; want 0.5", got)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("Max = %v; want 100", got)
	}
}

func TestStreamHistQuantile(t *testing.T) {
	h := NewStreamHist(LinearBuckets(1, 1, 100))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	// With unit buckets and one sample per bucket, interpolated quantiles
	// land within one bucket width of the exact percentile.
	for _, c := range []struct{ q, want float64 }{
		{0.5, 50}, {0.9, 90}, {0.99, 99},
	} {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1.5 {
			t.Errorf("Quantile(%v) = %v; want within 1.5 of %v", c.q, got, c.want)
		}
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v; want min 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("Quantile(1) = %v; want max 100", got)
	}
}

func TestStreamHistQuantileClampedToObservedRange(t *testing.T) {
	// All mass in one wide bucket: interpolation must not extrapolate
	// past the observed min/max.
	h := NewStreamHist([]float64{1000})
	h.Observe(5)
	h.Observe(7)
	if got := h.Quantile(0.99); got < 5 || got > 7 {
		t.Fatalf("Quantile(0.99) = %v; want within [5, 7]", got)
	}
}

func TestStreamHistEmpty(t *testing.T) {
	h := NewStreamHist(nil)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty StreamHist must report zeros")
	}
}

func TestStreamHistBoundedMemory(t *testing.T) {
	h := NewStreamHist(DefaultBuckets())
	before := len(h.Snapshot().Counts)
	for i := 0; i < 100000; i++ {
		h.Observe(float64(i % 1000))
	}
	s := h.Snapshot()
	if len(s.Counts) != before {
		t.Fatalf("bucket count changed %d -> %d; memory must stay fixed", before, len(s.Counts))
	}
	if s.Count != 100000 {
		t.Fatalf("Count = %d; want 100000", s.Count)
	}
}

func TestStreamHistOverflowBucket(t *testing.T) {
	h := NewStreamHist([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(1e12) // above the last bound: lands in +Inf overflow
	s := h.Snapshot()
	if got := s.Counts[len(s.Counts)-1]; got != 1 {
		t.Fatalf("overflow bucket = %d; want 1", got)
	}
	if got := h.Max(); got != 1e12 {
		t.Fatalf("Max = %v; want 1e12", got)
	}
}

func TestStreamHistReset(t *testing.T) {
	h := NewStreamHist(nil)
	h.Observe(3)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset must clear counts and sum")
	}
}

func TestBucketBuilders(t *testing.T) {
	exp := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i, b := range exp {
		if b != want[i] {
			t.Fatalf("ExpBuckets = %v; want %v", exp, want)
		}
	}
	lin := LinearBuckets(0, 5, 3)
	wantLin := []float64{0, 5, 10}
	for i, b := range lin {
		if b != wantLin[i] {
			t.Fatalf("LinearBuckets = %v; want %v", lin, wantLin)
		}
	}
}

func TestNewStreamHistRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on non-ascending bounds")
		}
	}()
	NewStreamHist([]float64{2, 1})
}

func TestStreamHistConcurrent(t *testing.T) {
	h := NewStreamHist(DefaultBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i))
				if i%250 == 0 {
					_ = h.Quantile(0.99)
					_ = h.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("Count = %d; want 8000", got)
	}
}
