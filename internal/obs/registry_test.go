package obs

import (
	"strings"
	"sync"
	"testing"

	"tornado/internal/metrics"
)

func TestScopeCounterAndPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope(L("loop", "0"), L("kind", "main"))
	c := sc.Counter("tornado_commits_total", "committed updates")
	c.Add(7)

	g := sc.Gauge("tornado_frontier_iteration", "frontier position")
	g.Set(42)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP tornado_commits_total committed updates",
		"# TYPE tornado_commits_total counter",
		`tornado_commits_total{kind="main",loop="0"} 7`,
		"# TYPE tornado_frontier_iteration gauge",
		`tornado_frontier_iteration{kind="main",loop="0"} 42`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegisterCounterWrapsExisting(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope(L("loop", "1"))
	var raw metrics.Counter
	raw.Add(3)
	sc.RegisterCounter("tornado_update_msgs_total", "updates", &raw)
	raw.Add(2) // counts observed at scrape time, not registration time

	var b strings.Builder
	_ = r.WritePrometheus(&b)
	if want := `tornado_update_msgs_total{loop="1"} 5`; !strings.Contains(b.String(), want) {
		t.Fatalf("want %q in:\n%s", want, b.String())
	}
}

func TestGaugeFuncReadsAtScrape(t *testing.T) {
	r := NewRegistry()
	var v float64 = 1
	r.Scope().GaugeFunc("tornado_obligations", "tokens", func() float64 { return v })
	v = 9
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "tornado_obligations 9") {
		t.Fatalf("gauge func not read at scrape:\n%s", b.String())
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Scope(L("loop", "0")).Histogram("tornado_iteration_commits", "commits per iteration",
		[]float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(100)

	var b strings.Builder
	_ = r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE tornado_iteration_commits histogram",
		`tornado_iteration_commits_bucket{loop="0",le="1"} 1`,
		`tornado_iteration_commits_bucket{loop="0",le="2"} 1`,
		`tornado_iteration_commits_bucket{loop="0",le="4"} 2`,
		`tornado_iteration_commits_bucket{loop="0",le="+Inf"} 3`,
		`tornado_iteration_commits_sum{loop="0"} 104`,
		`tornado_iteration_commits_count{loop="0"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestScopeCloseUnregistersOnlyOwned(t *testing.T) {
	r := NewRegistry()
	main := r.Scope(L("loop", "0"))
	main.Counter("tornado_commits_total", "c").Inc()

	branch := r.Scope(L("loop", "7"), L("kind", "branch"))
	branch.Counter("tornado_commits_total", "c").Inc()
	branch.Close()

	var b strings.Builder
	_ = r.WritePrometheus(&b)
	out := b.String()
	if strings.Contains(out, `loop="7"`) {
		t.Errorf("branch series survived Close:\n%s", out)
	}
	if !strings.Contains(out, `tornado_commits_total{loop="0"} 1`) {
		t.Errorf("main series lost:\n%s", out)
	}
}

func TestScopeCloseIsReshardSafe(t *testing.T) {
	// A stopped engine's scope closing must not take down the series a
	// replacement engine registered under the same labels (Reshard order:
	// old Stop unregisters before new New registers; but guard the inverse
	// order too since Close only removes collectors it created).
	r := NewRegistry()
	old := r.Scope(L("loop", "0"))
	old.Counter("tornado_commits_total", "c")
	old.Close()
	nu := r.Scope(L("loop", "0"))
	c := nu.Counter("tornado_commits_total", "c")
	c.Add(5)
	old.Close() // double close: must not unregister the new collector

	var b strings.Builder
	_ = r.WritePrometheus(&b)
	if want := `tornado_commits_total{loop="0"} 5`; !strings.Contains(b.String(), want) {
		t.Fatalf("replacement series lost after stale Close:\n%s", b.String())
	}
}

func TestRegisterKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Scope().Counter("tornado_thing", "c")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on counter/gauge kind collision")
		}
	}()
	r.Scope().Gauge("tornado_thing", "g")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Scope(L("program", `alg"or\it`+"\n"+`hm`)).Counter("tornado_x_total", "c").Inc()
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	if want := `tornado_x_total{program="alg\"or\\it\nhm"} 1`; !strings.Contains(b.String(), want) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := r.Scope(L("loop", string(rune('0'+w))))
			c := sc.Counter("tornado_commits_total", "c")
			g := sc.Gauge("tornado_frontier_iteration", "g")
			h := sc.Histogram("tornado_iteration_commits", "h", []float64{1, 10, 100})
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i))
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b) // scrape while writers run
				}
			}
			if w%2 == 1 {
				sc.Close()
			}
		}(w)
	}
	wg.Wait()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `tornado_commits_total{loop="0"} 500`) {
		t.Fatalf("surviving counter wrong:\n%s", b.String())
	}
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 4000 {
		t.Fatalf("Gauge after concurrent Add = %v; want 4000", got)
	}
}
