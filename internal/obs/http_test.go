package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHubEndpoints(t *testing.T) {
	hub := NewHub(HubOptions{TraceCapacity: 16, TraceSampleEvery: 1})
	hub.Registry.Scope(L("loop", "0")).Counter("tornado_commits_total", "c").Add(11)
	hub.Tracer.Record(0, EvCommit, 3, 0, 1)
	hub.AddStatus("loop/0", func() any { return map[string]any{"frontier": 4} })

	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	get := func(path string) (int, string, http.Header) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header
	}

	code, body, hdr := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(hdr.Get("Content-Type"), "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", hdr.Get("Content-Type"))
	}
	if !strings.Contains(body, `tornado_commits_total{loop="0"} 11`) {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	code, body, _ = get("/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status %d", code)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	loop, ok := snap["loop/0"].(map[string]any)
	if !ok || loop["frontier"] != float64(4) {
		t.Errorf("/statusz loop section = %v", snap["loop/0"])
	}
	if snap["trace_events"] != float64(1) {
		t.Errorf("/statusz trace_events = %v; want 1", snap["trace_events"])
	}
	if _, ok := snap["uptime"]; !ok {
		t.Error("/statusz missing uptime")
	}

	if code, _, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, body, _ = get("/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index status %d body %q", code, body)
	}
	if code, _, _ = get("/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path status %d; want 404", code)
	}
}

func TestHubServeIdempotentAndClose(t *testing.T) {
	hub := NewHub(HubOptions{})
	addr, err := hub.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	again, err := hub.Serve("127.0.0.1:0")
	if err != nil || again != addr {
		t.Fatalf("second Serve = %q, %v; want first address %q", again, err, addr)
	}
	if hub.Addr() != addr {
		t.Fatalf("Addr = %q; want %q", hub.Addr(), addr)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET live server: %v", err)
	}
	resp.Body.Close()
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	if hub.Addr() != "" {
		t.Fatal("Addr after Close must be empty")
	}
	if err := hub.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestStatusRemove(t *testing.T) {
	hub := NewHub(HubOptions{})
	hub.AddStatus("x", func() any { return 1 })
	hub.RemoveStatus("x")
	if _, ok := hub.StatusSnapshot()["x"]; ok {
		t.Fatal("removed status section still present")
	}
}

// TestHubConcurrentScrapeAndChurn hammers the hub's HTTP surface while the
// metric and span state underneath it churns: scrapers pull /metrics, /traces
// and /statusz in tight loops while writers register and close scopes, record
// causal spans (wrapping the ring), flip status sections, and bump live
// counters. Run under -race (make race), this pins the contract that a scrape
// never observes a torn exposition, a half-registered family, or a torn span.
func TestHubConcurrentScrapeAndChurn(t *testing.T) {
	hub := NewHub(HubOptions{SpanCapacity: 64, SpanSampleRate: 1})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	get := func(path string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Errorf("GET %s: %v", path, err)
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/traces" {
			var out map[string]any
			if err := json.Unmarshal(body, &out); err != nil {
				t.Errorf("GET /traces: not JSON: %v", err)
			}
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Scrapers: each endpoint has a dedicated loop.
	for _, path := range []string{"/metrics", "/traces", "/statusz"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					get(path)
				}
			}
		}(path)
	}
	// Scope churn: families appear and disappear mid-scrape.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sc := hub.Registry.Scope(L("loop", strconv.Itoa(i%4)))
			sc.Counter("tornado_churn_total", "churn probe").Add(int64(i))
			sc.Gauge("tornado_churn_depth", "churn probe").Set(float64(i))
			sc.Histogram("tornado_churn_seconds", "churn probe", ExpBuckets(0.001, 2, 8)).Observe(float64(i))
			if i%2 == 1 {
				sc.Close()
			}
		}
	}()
	// Span writers: two tracers wrapping the 64-slot ring continuously, with
	// stage fan-in to the lazy tornado_stage_seconds families.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				now := hub.Spans.Now()
				ctx := hub.Spans.Begin(now)
				for _, stage := range []string{"spout", "gate", "inbox", "process", "commit"} {
					now++
					ctx = hub.Spans.Stage(ctx, stage, 0, 7, 0, now)
				}
			}
		}()
	}
	// Status churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := "probe/" + strconv.Itoa(i%3)
			hub.AddStatus(name, func() any { return map[string]any{"i": i} })
			hub.RemoveStatus(name)
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	// The ring must still be coherent after the churn.
	for _, sp := range hub.Spans.Snapshot() {
		if sp.Trace == 0 || sp.Stage == "" {
			t.Fatalf("torn span after churn: %+v", sp)
		}
	}
}
