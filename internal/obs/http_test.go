package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHubEndpoints(t *testing.T) {
	hub := NewHub(HubOptions{TraceCapacity: 16, TraceSampleEvery: 1})
	hub.Registry.Scope(L("loop", "0")).Counter("tornado_commits_total", "c").Add(11)
	hub.Tracer.Record(0, EvCommit, 3, 0, 1)
	hub.AddStatus("loop/0", func() any { return map[string]any{"frontier": 4} })

	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	get := func(path string) (int, string, http.Header) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header
	}

	code, body, hdr := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(hdr.Get("Content-Type"), "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", hdr.Get("Content-Type"))
	}
	if !strings.Contains(body, `tornado_commits_total{loop="0"} 11`) {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	code, body, _ = get("/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status %d", code)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	loop, ok := snap["loop/0"].(map[string]any)
	if !ok || loop["frontier"] != float64(4) {
		t.Errorf("/statusz loop section = %v", snap["loop/0"])
	}
	if snap["trace_events"] != float64(1) {
		t.Errorf("/statusz trace_events = %v; want 1", snap["trace_events"])
	}
	if _, ok := snap["uptime"]; !ok {
		t.Error("/statusz missing uptime")
	}

	if code, _, _ = get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, body, _ = get("/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index status %d body %q", code, body)
	}
	if code, _, _ = get("/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path status %d; want 404", code)
	}
}

func TestHubServeIdempotentAndClose(t *testing.T) {
	hub := NewHub(HubOptions{})
	addr, err := hub.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	again, err := hub.Serve("127.0.0.1:0")
	if err != nil || again != addr {
		t.Fatalf("second Serve = %q, %v; want first address %q", again, err, addr)
	}
	if hub.Addr() != addr {
		t.Fatalf("Addr = %q; want %q", hub.Addr(), addr)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET live server: %v", err)
	}
	resp.Body.Close()
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	if hub.Addr() != "" {
		t.Fatal("Addr after Close must be empty")
	}
	if err := hub.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestStatusRemove(t *testing.T) {
	hub := NewHub(HubOptions{})
	hub.AddStatus("x", func() any { return 1 })
	hub.RemoveStatus("x")
	if _, ok := hub.StatusSnapshot()["x"]; ok {
		t.Fatal("removed status section still present")
	}
}
