// Package obs is Tornado's runtime observability layer. It complements the
// bench-harness measurement primitives in internal/metrics with the pieces a
// long-running production loop needs:
//
//   - a Registry of named counters, gauges and histograms with labels
//     (loop, kind, program), exposable in Prometheus text format;
//   - a StreamHist, a bounded-memory streaming histogram, so main loops that
//     run for days do not accumulate raw samples;
//   - a Tracer, a sampled ring buffer of three-phase protocol events
//     (Update/Prepare/Commit/Ack transitions, iteration-number assignments,
//     progress-frontier advances) queryable per vertex;
//   - a Hub tying them together behind an HTTP exposition surface
//     (/metrics, /statusz, /debug/pprof).
//
// The registry deliberately reuses metrics.Counter as its counter primitive:
// the engine's hot-path counters register themselves, so exposition reads
// the very same atomics the engine already maintains and instrumentation
// adds no per-message cost.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"tornado/internal/metrics"
)

// Label is one key=value metric dimension.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Gauge is a settable level, safe for concurrent use. The zero value is
// ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// collectorKind distinguishes the exposition types.
type collectorKind uint8

const (
	kindCounter collectorKind = iota
	kindGauge
	kindHistogram
)

func (k collectorKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// collector is one (name, labels) time series.
type collector struct {
	labels []Label
	value  func() float64 // counter and gauge reads
	ctr    *metrics.Counter
	gauge  *Gauge
	hist   *StreamHist
}

// family groups the collectors sharing a metric name.
type family struct {
	name       string
	kind       collectorKind
	help       string
	collectors map[string]*collector // keyed by canonical label string
}

// Registry holds named metric families. All methods are safe for concurrent
// use. Collectors are created through a Scope, which carries base labels and
// can unregister everything it created (branch loops come and go; their
// series must not accumulate forever).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	aliases  map[string]string // legacy name -> canonical name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family), aliases: make(map[string]string)}
}

// Alias exposes the canonical family under a second (legacy) name for one
// release after a rename: scrapes see both names with identical series, and
// the legacy HELP text marks it deprecated. Aliasing a name that never
// registers is harmless (nothing is emitted).
func (r *Registry) Alias(legacy, canonical string) {
	r.mu.Lock()
	r.aliases[legacy] = canonical
	r.mu.Unlock()
}

// Scope returns a registration handle whose collectors all carry the given
// base labels. Closing the scope unregisters them.
func (r *Registry) Scope(base ...Label) *Scope {
	return &Scope{reg: r, base: base}
}

// labelKey canonicalizes a label set (sorted by key) for map lookup.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// register adds (or retrieves) the collector for (name, labels). A kind
// mismatch across registrations of the same name is a wiring bug and panics.
// created reports whether this call created the collector.
func (r *Registry) register(name, help string, kind collectorKind, labels []Label, mk func() *collector) (c *collector, created bool) {
	labels = sortLabels(labels)
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, help: help, collectors: make(map[string]*collector)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	if f.help == "" {
		f.help = help
	}
	if existing, ok := f.collectors[key]; ok {
		return existing, false
	}
	c = mk()
	c.labels = labels
	f.collectors[key] = c
	return c, true
}

// unregister removes one collector; empty families are dropped.
func (r *Registry) unregister(name string, labels []Label) {
	key := labelKey(sortLabels(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		delete(f.collectors, key)
		if len(f.collectors) == 0 {
			delete(r.families, name)
		}
	}
}

// Scope registers collectors under a fixed set of base labels and remembers
// them so Close can unregister the lot. Safe for concurrent use.
type Scope struct {
	reg  *Registry
	base []Label

	mu    sync.Mutex
	owned []ownedRef
}

type ownedRef struct {
	name   string
	labels []Label
}

func (s *Scope) merge(extra []Label) []Label {
	out := make([]Label, 0, len(s.base)+len(extra))
	out = append(out, s.base...)
	out = append(out, extra...)
	return out
}

func (s *Scope) own(name string, labels []Label, created bool) {
	if !created {
		return
	}
	s.mu.Lock()
	s.owned = append(s.owned, ownedRef{name: name, labels: labels})
	s.mu.Unlock()
}

// Counter returns the named counter with the scope's labels (plus extra),
// creating it on first use.
func (s *Scope) Counter(name, help string, extra ...Label) *metrics.Counter {
	labels := s.merge(extra)
	c, created := s.reg.register(name, help, kindCounter, labels, func() *collector {
		ctr := &metrics.Counter{}
		return &collector{ctr: ctr, value: func() float64 { return float64(ctr.Value()) }}
	})
	s.own(name, c.labels, created)
	return c.ctr
}

// RegisterCounter exposes an existing counter (e.g. an engine hot-path
// counter) under the scope's labels. Exposition reads the counter directly,
// so the hot path pays nothing for being observable.
func (s *Scope) RegisterCounter(name, help string, ctr *metrics.Counter, extra ...Label) {
	labels := s.merge(extra)
	c, created := s.reg.register(name, help, kindCounter, labels, func() *collector {
		return &collector{ctr: ctr, value: func() float64 { return float64(ctr.Value()) }}
	})
	s.own(name, c.labels, created)
}

// Gauge returns the named settable gauge, creating it on first use.
func (s *Scope) Gauge(name, help string, extra ...Label) *Gauge {
	labels := s.merge(extra)
	c, created := s.reg.register(name, help, kindGauge, labels, func() *collector {
		g := &Gauge{}
		return &collector{gauge: g, value: g.Value}
	})
	s.own(name, c.labels, created)
	return c.gauge
}

// GaugeFunc exposes a read-at-scrape-time gauge (frontier position, queue
// depth). fn must be safe to call from any goroutine.
func (s *Scope) GaugeFunc(name, help string, fn func() float64, extra ...Label) {
	labels := s.merge(extra)
	c, created := s.reg.register(name, help, kindGauge, labels, func() *collector {
		return &collector{value: fn}
	})
	s.own(name, c.labels, created)
}

// Histogram returns the named streaming histogram, creating it on first use
// with the given bucket upper bounds (nil = DefaultBuckets).
func (s *Scope) Histogram(name, help string, bounds []float64, extra ...Label) *StreamHist {
	labels := s.merge(extra)
	c, created := s.reg.register(name, help, kindHistogram, labels, func() *collector {
		return &collector{hist: NewStreamHist(bounds)}
	})
	s.own(name, c.labels, created)
	return c.hist
}

// Close unregisters every collector this scope created. Collectors that
// already existed (created by another scope) are untouched.
func (s *Scope) Close() {
	s.mu.Lock()
	owned := s.owned
	s.owned = nil
	s.mu.Unlock()
	for _, ref := range owned {
		s.reg.unregister(ref.name, ref.labels)
	}
}

// promLabels renders {k="v",...} with Prometheus escaping ("" when empty).
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label{}, labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in Prometheus text exposition format
// (version 0.0.4), families and series in deterministic sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	// Legacy alias names render as additional families mirroring their
	// canonical target's collectors.
	for legacy, canonical := range r.aliases {
		if r.families[canonical] != nil && r.families[legacy] == nil {
			names = append(names, legacy)
		}
	}
	sort.Strings(names)
	type snap struct {
		name string
		help string
		fam  *family
		keys []string
	}
	snaps := make([]snap, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		help := ""
		if f == nil {
			canonical := r.aliases[name]
			f = r.families[canonical]
			help = fmt.Sprintf("Deprecated alias for %s.", canonical)
		} else {
			help = f.help
		}
		keys := make([]string, 0, len(f.collectors))
		for k := range f.collectors {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		snaps = append(snaps, snap{name: name, help: help, fam: f, keys: keys})
	}
	r.mu.RUnlock()

	for _, sn := range snaps {
		f := sn.fam
		if sn.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", sn.name, sn.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", sn.name, f.kind); err != nil {
			return err
		}
		for _, k := range sn.keys {
			r.mu.RLock()
			c := f.collectors[k]
			r.mu.RUnlock()
			if c == nil {
				continue // unregistered between snapshot and render
			}
			if err := writeCollector(w, sn.name, f.kind, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCollector(w io.Writer, name string, kind collectorKind, c *collector) error {
	if kind != kindHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, promLabels(c.labels), formatValue(c.value()))
		return err
	}
	s := c.hist.Snapshot()
	cum := uint64(0)
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, promLabels(c.labels, L("le", formatValue(bound))), cum); err != nil {
			return err
		}
	}
	cum += s.Counts[len(s.Bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(c.labels, L("le", "+Inf")), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(c.labels), formatValue(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(c.labels), s.Count)
	return err
}
