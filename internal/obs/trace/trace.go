// Package trace is the causal-span pipeline behind Tornado's freshness
// accounting: it follows a sampled input delta from spout ingestion through
// the admission gate, the transport output buffer, the frame batch, the peer
// inbox, engine processing/coalescing, iteration commit, and the frontier
// advance — and, for queries, from Submit through coalesce/cache/fork to
// result delivery.
//
// The design constraints, in order:
//
//   - Hot-path cost at the default 1% sampling must be a bool/atomic check
//     per message plus one span record per sampled stage. Untraced contexts
//     are zero values that every stage call short-circuits on.
//   - Trace context rides the existing message/payload structs as plain
//     exported fields (Context below), so a future wire codec serializes it
//     for free; nothing in a Context is a pointer or an in-process handle.
//   - Sampling is head-based probabilistic (decided once per delta at
//     ingestion, carried in the Sampled bit so every stage agrees without
//     coordination) with a tail-based escalation path: degradation rungs
//     L1–L3, ErrOverloaded sheds, transport resends, and crash/recovery
//     incarnations force-retain traces by (a) recording a marker span for
//     the triggering event and (b) opening a window during which new deltas
//     are traced regardless of the head decision — up to a fixed budget per
//     window, so a resend storm under saturation cannot silently flip the
//     system to full sampling and collapse the very throughput the traces
//     are meant to explain.
//   - Batching must stay visible: when two updates coalesce, the surviving
//     payload's context carries a span *link* to the merged trace and the
//     merged trace records a terminal "coalesce" span pointing at the
//     survivor, so latency absorbed by coalescing is attributed, not lost.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage names recorded by the pipeline. They double as the `stage` label of
// the tornado_stage_seconds histogram, so they are short and low-cardinality.
const (
	StageSpout    = "spout"    // spout emission -> main-loop ingest entry
	StageGate     = "gate"     // admission-gate wait
	StageBatch    = "batch"    // transport output buffer dwell (Send -> frame seal)
	StageFrame    = "frame"    // frame transit incl. credit parking (seal -> inbox)
	StageInbox    = "inbox"    // peer inbox dwell (delivery -> dispatch)
	StageProcess  = "process"  // dispatch -> state applied / update gathered
	StageCommit   = "commit"   // apply -> three-phase commit persisted
	StageCoalesce = "coalesce" // terminal span of a trace merged into a survivor
	StageAck      = "ack"      // frame seal -> cumulative ack covered it
	StageFrontier = "frontier" // commit -> frontier watermark covered its iteration

	StageQuerySubmit   = "query_submit"   // Submit entry -> admitted to a flight
	StageQueryCache    = "query_cache"    // Submit served from the freshness-bounded cache
	StageQueryCoalesce = "query_coalesce" // Submit joined another query's flight
	StageQueryQueue    = "query_queue"    // flight queued -> worker picked it up
	StageQueryFork     = "query_fork"     // branch-loop fork call
	StageQueryWait     = "query_wait"     // fork -> branch convergence
	StageQueryServe    = "query_serve"    // convergence -> result handed out
)

// Escalation marker stages (always Forced).
const (
	MarkResend     = "resend"      // transport resent a frame carrying this trace
	MarkDeadLetter = "dead_letter" // transport gave up on a frame carrying this trace
	MarkShed       = "shed"        // query shed with ErrOverloaded
	MarkRung       = "rung"        // degradation-rung transition
	MarkRecovery   = "recovery"    // crash/recovery incarnation swap
)

// NoVertex marks spans not tied to a vertex.
const NoVertex = ^uint64(0)

// forcedBudget bounds how many traces one tail-escalation window (or rung
// transition) may force-retain: enough fully-traced deltas to reconstruct the
// incident, small enough that escalation cannot become de-facto 100% sampling
// (the trace_overhead bench gate pins the cost). Triggers landing inside an
// already-open window extend it but spend from the same budget.
const forcedBudget = 512

// maxHops bounds the spans one trace may record: Tornado's dataflow is
// cyclic and amplifying, so a fully-traced delta would otherwise follow the
// propagation forever. Past the cap the context goes quiet.
const maxHops = 192

// Context is the trace context carried by message and payload structs. The
// zero value means "not traced" and costs one bool check per stage. All
// fields are exported plain data so a wire codec can serialize the context
// unchanged across process boundaries.
type Context struct {
	// Trace identifies the delta's trace (0 = none assigned).
	Trace uint64
	// Span is the ID of the most recent span recorded for this trace; the
	// next stage records it as its parent.
	Span uint64
	// Link is a trace merged into this one by coalescing, consumed (and
	// reset) by the next recorded span.
	Link uint64
	// Stamp is the wall-clock nanosecond of the last stage boundary.
	Stamp int64
	// Hops counts recorded stages, bounding amplification (see maxHops).
	Hops uint8
	// Sampled is the head-based sampling decision; stages record only when
	// it is set.
	Sampled bool
	// Forced marks a context retained by tail escalation rather than the
	// head probability.
	Forced bool
}

// Traced reports whether stages of this context should record spans.
func (c Context) Traced() bool { return c.Sampled && c.Trace != 0 }

// Carrier is implemented by payload structs that carry a Context, letting
// the transport (which sees payloads as `any`) read and restamp contexts at
// frame boundaries without knowing concrete types. WithTraceCtx returns a
// copy of the payload with the context replaced.
type Carrier interface {
	TraceCtx() Context
	WithTraceCtx(Context) any
}

// Span is one recorded stage of a trace.
type Span struct {
	// Seq is a strictly increasing record sequence number (recording order).
	Seq uint64
	// Trace and ID identify the span; Parent is the preceding span of the
	// same trace (0 for the first).
	Trace, ID, Parent uint64
	// Link is a trace coalesced into this one at this stage (0 = none).
	Link uint64
	// Stage is the stage name (Stage* / Mark* constants).
	Stage string
	// Loop is the loop the stage ran in; Vertex/Peer locate it (NoVertex
	// when not vertex-scoped; Peer is a transport node or consumer).
	Loop, Vertex, Peer uint64
	// Start is the stage's start offset from the tracer's start; Dur is the
	// stage's duration (clamped to 1ns when below clock resolution, so a
	// recorded stage is never zero-width).
	Start, Dur time.Duration
	// Rung is the degradation rung at record time; Forced marks spans
	// retained by tail escalation.
	Rung   int32
	Forced bool
}

// Tracer records spans into a fixed-capacity ring. Writes are mutex-guarded
// so a reader can never observe a half-written span (the wraparound test in
// this package pins that contract); the hot-path discipline is to check
// Enabled()/Context.Traced() first, which costs one atomic or bool load.
// A nil *Tracer is valid and permanently disabled.
type Tracer struct {
	start     time.Time
	startNano int64

	on        atomic.Bool   // any tracing possible (rate > 0 or rung > 0)
	threshold atomic.Uint64 // head sampling: record iff vhash(trace) < threshold
	rung      atomic.Int32  // current degradation rung (L0–L3)

	nextTrace   atomic.Uint64
	nextSpan    atomic.Uint64
	recorded    atomic.Uint64
	escalations atomic.Uint64

	// escalateUntil is the tail-escalation window: while now <= this (and
	// forcedLeft holds budget), Begin samples regardless of the head
	// probability.
	escalateUntil atomic.Int64
	forcedLeft    atomic.Int64
	windowNanos   int64

	// onSpan, when set, observes every recorded span (the obs hub points it
	// at the per-stage latency histogram). Called outside the ring lock.
	onSpan atomic.Pointer[func(Span)]

	mu   sync.Mutex
	buf  []Span
	head int // next write position
	n    int // valid entries
	seq  uint64
}

// EscalationWindow is how long tail escalation forces full sampling after a
// trigger (resend, shed, rung transition, recovery).
const EscalationWindow = 2 * time.Second

// NewTracer returns a span tracer with the given ring capacity (default 4096
// when <= 0) sampling the given fraction of traces (clamped to [0, 1]).
func NewTracer(capacity int, rate float64) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	now := time.Now()
	t := &Tracer{
		start:       now,
		startNano:   now.UnixNano(),
		buf:         make([]Span, capacity),
		windowNanos: int64(EscalationWindow),
	}
	t.SetRate(rate)
	return t
}

// SetRate adjusts the head sampling probability (0 disables, 1 traces every
// delta).
func (t *Tracer) SetRate(p float64) {
	if t == nil {
		return
	}
	switch {
	case p <= 0:
		t.threshold.Store(0)
	case p >= 0.9999:
		t.threshold.Store(^uint64(0))
	default:
		t.threshold.Store(uint64(p * float64(1<<32) * float64(1<<32)))
	}
	t.refreshOn()
}

// Rate returns the head sampling probability.
func (t *Tracer) Rate() float64 {
	if t == nil {
		return 0
	}
	th := t.threshold.Load()
	if th == ^uint64(0) {
		return 1
	}
	return float64(th) / (float64(1<<32) * float64(1<<32))
}

func (t *Tracer) refreshOn() {
	t.on.Store(t.threshold.Load() > 0 || t.rung.Load() > 0)
}

// Enabled reports whether any tracing is possible; hot paths check it before
// touching contexts. One atomic load, nil-safe.
func (t *Tracer) Enabled() bool { return t != nil && t.on.Load() }

// Now returns the wall-clock nanosecond used for stamps. Callers on a hot
// path should call it once and reuse the value across Begin/Stage calls.
func (t *Tracer) Now() int64 { return time.Now().UnixNano() }

// vhash mixes an ID so threshold sampling is unbiased for sequential IDs.
func vhash(v uint64) uint64 {
	v *= 0x9E3779B97F4A7C15
	v ^= v >> 32
	return v
}

// Begin assigns a trace context to a new input delta. The head sampling
// decision is made here, once, and carried in the Sampled bit; during a tail
// escalation window (or while a degradation rung is active) every delta is
// sampled and marked Forced.
func (t *Tracer) Begin(now int64) Context {
	if !t.Enabled() {
		return Context{}
	}
	id := t.nextTrace.Add(1)
	ctx := Context{Trace: id, Stamp: now}
	if t.rung.Load() > 0 || now <= t.escalateUntil.Load() {
		if t.forcedLeft.Add(-1) >= 0 {
			ctx.Sampled, ctx.Forced = true, true
			return ctx
		}
	}
	th := t.threshold.Load()
	ctx.Sampled = th == ^uint64(0) || (th > 0 && vhash(id) < th)
	return ctx
}

// Stage records the stage that just completed for a traced context — its
// duration is now minus the context's last boundary stamp — and returns the
// context restamped at now with the new span as parent. Untraced contexts
// pass through unchanged at the cost of one bool check.
func (t *Tracer) Stage(ctx Context, stage string, loop, vertex, peer uint64, now int64) Context {
	if t == nil || !ctx.Traced() {
		return ctx
	}
	if ctx.Hops >= maxHops {
		ctx.Sampled = false
		return ctx
	}
	ctx.Hops++
	dur := now - ctx.Stamp
	if dur < 1 {
		// Below clock resolution: a recorded stage still occupied time.
		dur = 1
	}
	id := t.nextSpan.Add(1)
	t.record(Span{
		Trace: ctx.Trace, ID: id, Parent: ctx.Span, Link: ctx.Link,
		Stage: stage, Loop: loop, Vertex: vertex, Peer: peer,
		Start: time.Duration(ctx.Stamp - t.startNano), Dur: time.Duration(dur),
		Rung: t.rung.Load(), Forced: ctx.Forced,
	})
	ctx.Span = id
	ctx.Stamp = now
	ctx.Link = 0
	return ctx
}

// Escalate records a tail-escalation marker span for the triggering event
// (resend, shed, dead letter, recovery) and opens the escalation window so
// deltas beginning in the next EscalationWindow are fully traced. ctx may be
// an untraced or zero context — the marker still records against its trace
// ID (0 for system-wide events).
func (t *Tracer) Escalate(reason string, ctx Context, now int64) {
	if !t.Enabled() {
		return
	}
	if now > t.escalateUntil.Load() {
		// A fresh incident: rearm the forced-trace budget. Triggers inside an
		// open window only extend it, so a continuous storm retains at most
		// forcedBudget traces until it quiets for a full window.
		t.forcedLeft.Store(forcedBudget)
	}
	t.escalateUntil.Store(now + t.windowNanos)
	t.escalations.Add(1)
	id := t.nextSpan.Add(1)
	t.record(Span{
		Trace: ctx.Trace, ID: id, Parent: ctx.Span, Stage: reason,
		Vertex: NoVertex, Start: time.Duration(now - t.startNano),
		Rung: t.rung.Load(), Forced: true,
	})
}

// SetRung records the current degradation rung. While the rung is above
// zero, every new trace is force-retained (the L1–L3 contract) and every
// span carries the rung; a transition to a higher rung also records a marker
// span and opens the escalation window so the traces that *caused* the
// pressure are kept once the rung relaxes.
func (t *Tracer) SetRung(level int32, now int64) {
	if t == nil {
		return
	}
	old := t.rung.Swap(level)
	t.refreshOn()
	if level > 0 && level != old {
		t.forcedLeft.Store(forcedBudget)
		t.escalateUntil.Store(now + t.windowNanos)
		t.escalations.Add(1)
		id := t.nextSpan.Add(1)
		t.record(Span{
			Trace: 0, ID: id, Stage: MarkRung, Vertex: NoVertex,
			Start: time.Duration(now - t.startNano), Rung: level, Forced: true,
		})
	}
}

// Rung returns the rung last recorded via SetRung.
func (t *Tracer) Rung() int32 {
	if t == nil {
		return 0
	}
	return t.rung.Load()
}

// Escalations returns how many tail-escalation triggers fired.
func (t *Tracer) Escalations() uint64 {
	if t == nil {
		return 0
	}
	return t.escalations.Load()
}

// OnSpan installs a hook observing every recorded span (stage histograms).
// The hook runs outside the ring lock and must be safe for concurrent use.
func (t *Tracer) OnSpan(fn func(Span)) {
	if t == nil {
		return
	}
	if fn == nil {
		t.onSpan.Store(nil)
		return
	}
	t.onSpan.Store(&fn)
}

func (t *Tracer) record(sp Span) {
	t.recorded.Add(1)
	t.mu.Lock()
	t.seq++
	sp.Seq = t.seq
	t.buf[t.head] = sp
	t.head = (t.head + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	}
	t.mu.Unlock()
	if fn := t.onSpan.Load(); fn != nil {
		(*fn)(sp)
	}
}

// Recorded returns the total spans ever recorded (including overwritten).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.recorded.Load()
}

// Len returns the spans currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Snapshot returns the ring's contents oldest-first (ascending Seq).
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	start := t.head - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}
