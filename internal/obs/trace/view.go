package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Filter selects traces from the ring. The zero value matches everything
// (subject to the default limit).
type Filter struct {
	// Trace selects one trace by ID (0 = all).
	Trace uint64
	// MinDur drops traces whose wall duration (first span start to last span
	// end) is below the bound.
	MinDur time.Duration
	// MinRung drops traces none of whose spans saw at least this rung.
	MinRung int32
	// ForcedOnly keeps only traces retained by tail escalation.
	ForcedOnly bool
	// Stage keeps only traces containing a span with this stage name.
	Stage string
	// Limit caps the returned traces (most recent first; default 32).
	Limit int
}

// TraceView is one reconstructed trace: its spans in recording order plus
// roll-ups for filtering and display.
type TraceView struct {
	// Trace is the trace ID.
	Trace uint64 `json:"trace"`
	// Start is the first span's start offset from the tracer's start.
	Start time.Duration `json:"start_ns"`
	// Wall is last span end minus first span start; Busy is the sum of the
	// spans' attributed durations (Busy < Wall means time spent between
	// instrumented stages).
	Wall time.Duration `json:"wall_ns"`
	Busy time.Duration `json:"busy_ns"`
	// Rung is the highest degradation rung any span saw; Forced reports
	// tail-escalation retention.
	Rung   int32 `json:"rung"`
	Forced bool  `json:"forced"`
	// Stages lists the distinct stage names in first-seen order.
	Stages []string `json:"stages"`
	// Spans are the trace's spans, ascending Seq.
	Spans []Span `json:"spans"`
}

// Traces reconstructs traces from the retained spans, most recent first.
func (t *Tracer) Traces(f Filter) []TraceView {
	if t == nil {
		return nil
	}
	if f.Limit <= 0 {
		f.Limit = 32
	}
	byTrace := make(map[uint64]*TraceView)
	order := make([]uint64, 0, 64) // trace IDs by last activity (ascending)
	for _, sp := range t.Snapshot() {
		if sp.Trace == 0 || (f.Trace != 0 && sp.Trace != f.Trace) {
			continue
		}
		tv, ok := byTrace[sp.Trace]
		if !ok {
			tv = &TraceView{Trace: sp.Trace, Start: sp.Start}
			byTrace[sp.Trace] = tv
		} else {
			// Re-append to keep `order` sorted by last activity.
			for i, id := range order {
				if id == sp.Trace {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
		}
		order = append(order, sp.Trace)
		tv.Spans = append(tv.Spans, sp)
		if sp.Start < tv.Start {
			tv.Start = sp.Start
		}
		if end := sp.Start + sp.Dur; end > tv.Start+tv.Wall {
			tv.Wall = end - tv.Start
		}
		tv.Busy += sp.Dur
		if sp.Rung > tv.Rung {
			tv.Rung = sp.Rung
		}
		tv.Forced = tv.Forced || sp.Forced
		seen := false
		for _, s := range tv.Stages {
			if s == sp.Stage {
				seen = true
				break
			}
		}
		if !seen {
			tv.Stages = append(tv.Stages, sp.Stage)
		}
	}
	out := make([]TraceView, 0, len(order))
	for i := len(order) - 1; i >= 0 && len(out) < f.Limit; i-- {
		tv := byTrace[order[i]]
		if tv.Wall < f.MinDur || tv.Rung < f.MinRung || (f.ForcedOnly && !tv.Forced) {
			continue
		}
		if f.Stage != "" {
			found := false
			for _, s := range tv.Stages {
				if s == f.Stage {
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		out = append(out, *tv)
	}
	return out
}

// Slowest returns up to limit traces with wall duration >= minDur, slowest
// first. It is the shell's `slow` command.
func (t *Tracer) Slowest(minDur time.Duration, limit int) []TraceView {
	if limit <= 0 {
		limit = 8
	}
	// Pull everything the ring holds, then rank by wall duration.
	all := t.Traces(Filter{MinDur: minDur, Limit: 1 << 20})
	sort.SliceStable(all, func(i, j int) bool { return all[i].Wall > all[j].Wall })
	if len(all) > limit {
		all = all[:limit]
	}
	return all
}

// String renders the trace for the shell: one header line plus one line per
// span with stage-attributed durations.
func (v TraceView) String() string {
	var b strings.Builder
	flags := ""
	if v.Forced {
		flags = " forced"
	}
	if v.Rung > 0 {
		flags += fmt.Sprintf(" rung=L%d", v.Rung)
	}
	fmt.Fprintf(&b, "trace %d  wall=%.3fms busy=%.3fms stages=%s%s\n",
		v.Trace, ms(v.Wall), ms(v.Busy), strings.Join(v.Stages, ","), flags)
	for _, sp := range v.Spans {
		loc := fmt.Sprintf("loop=%d v%d", sp.Loop, sp.Vertex)
		if sp.Vertex == NoVertex {
			loc = fmt.Sprintf("loop=%d -", sp.Loop)
		}
		link := ""
		if sp.Link != 0 {
			link = fmt.Sprintf(" link=%d", sp.Link)
		}
		fmt.Fprintf(&b, "  %-13s %9.3fms +%8.3fms %s peer=%d%s\n",
			sp.Stage, ms(sp.Start), ms(sp.Dur), loc, sp.Peer, link)
	}
	return b.String()
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
