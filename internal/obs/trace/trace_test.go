package trace

import (
	"sync"
	"testing"
	"time"
)

// stageCtx runs a context through one stage with a strictly later stamp.
func stageCtx(t *Tracer, ctx Context, stage string, at int64) Context {
	return t.Stage(ctx, stage, 1, 7, 0, at)
}

func TestHeadSamplingRate(t *testing.T) {
	tr := NewTracer(64, 0)
	if tr.Enabled() {
		t.Fatal("rate 0 tracer reports enabled")
	}
	if ctx := tr.Begin(tr.Now()); ctx.Traced() {
		t.Fatal("rate 0 tracer sampled a delta")
	}
	tr.SetRate(1)
	sampled := 0
	for i := 0; i < 100; i++ {
		if tr.Begin(tr.Now()).Traced() {
			sampled++
		}
	}
	if sampled != 100 {
		t.Fatalf("rate 1 sampled %d/100", sampled)
	}
	tr.SetRate(0.01)
	sampled = 0
	for i := 0; i < 20000; i++ {
		if tr.Begin(tr.Now()).Traced() {
			sampled++
		}
	}
	// 1% of 20000 = 200 expected; accept a generous band around it.
	if sampled < 50 || sampled > 500 {
		t.Fatalf("rate 0.01 sampled %d/20000, want ~200", sampled)
	}
}

func TestStageChainParentsAndDurations(t *testing.T) {
	tr := NewTracer(64, 1)
	base := tr.Now()
	ctx := tr.Begin(base)
	ctx = stageCtx(tr, ctx, StageGate, base+10)
	ctx = stageCtx(tr, ctx, StageBatch, base+30)
	ctx = stageCtx(tr, ctx, StageInbox, base+60)
	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	wantDur := []time.Duration{10, 20, 30}
	var parent uint64
	for i, sp := range spans {
		if sp.Trace != ctx.Trace {
			t.Fatalf("span %d trace %d, want %d", i, sp.Trace, ctx.Trace)
		}
		if sp.Parent != parent {
			t.Fatalf("span %d parent %d, want %d", i, sp.Parent, parent)
		}
		if sp.Dur != wantDur[i] {
			t.Fatalf("span %d dur %v, want %v", i, sp.Dur, wantDur[i])
		}
		parent = sp.ID
	}
	// Sub-resolution stages still record non-zero width.
	ctx = stageCtx(tr, ctx, StageProcess, base+60)
	last := tr.Snapshot()[3]
	if last.Dur < 1 {
		t.Fatalf("sub-resolution stage recorded dur %v", last.Dur)
	}
}

func TestCoalesceLinkRidesNextSpan(t *testing.T) {
	tr := NewTracer(64, 1)
	base := tr.Now()
	survivor := tr.Begin(base)
	merged := tr.Begin(base)
	// The merged trace records its terminal coalesce span pointing at the
	// survivor; the survivor's context carries the link into its next span.
	merged.Link = survivor.Trace
	tr.Stage(merged, StageCoalesce, 1, 7, 0, base+5)
	survivor.Link = merged.Trace
	survivor = tr.Stage(survivor, StageCommit, 1, 7, 0, base+9)
	spans := tr.Snapshot()
	if spans[0].Stage != StageCoalesce || spans[0].Link != survivor.Trace {
		t.Fatalf("coalesce span = %+v, want link to survivor %d", spans[0], survivor.Trace)
	}
	if spans[1].Stage != StageCommit || spans[1].Link != merged.Trace {
		t.Fatalf("commit span = %+v, want link to merged %d", spans[1], merged.Trace)
	}
	if survivor.Link != 0 {
		t.Fatal("link not consumed by the recording span")
	}
}

func TestEscalationForcesSampling(t *testing.T) {
	tr := NewTracer(256, 0.0000001) // head sampling effectively never fires
	now := tr.Now()
	if tr.Begin(now).Traced() {
		t.Skip("improbable head sample")
	}
	tr.Escalate(MarkResend, Context{}, now)
	ctx := tr.Begin(now + 1)
	if !ctx.Traced() || !ctx.Forced {
		t.Fatalf("delta inside escalation window not forced: %+v", ctx)
	}
	late := tr.Begin(now + int64(EscalationWindow) + int64(time.Second))
	if late.Traced() {
		t.Fatal("delta after the window still forced")
	}
	if tr.Escalations() != 1 {
		t.Fatalf("escalations = %d, want 1", tr.Escalations())
	}
	spans := tr.Snapshot()
	if len(spans) != 1 || spans[0].Stage != MarkResend || !spans[0].Forced {
		t.Fatalf("marker span missing: %+v", spans)
	}
}

func TestRungForcesRetentionAndStamp(t *testing.T) {
	tr := NewTracer(256, 0)
	now := tr.Now()
	tr.SetRung(2, now)
	if !tr.Enabled() {
		t.Fatal("rung 2 with rate 0 should enable tracing")
	}
	ctx := tr.Begin(now + 1)
	if !ctx.Traced() || !ctx.Forced {
		t.Fatalf("delta under rung 2 not forced: %+v", ctx)
	}
	ctx = stageCtx(tr, ctx, StageGate, now+5)
	var gate Span
	for _, sp := range tr.Snapshot() {
		if sp.Stage == StageGate {
			gate = sp
		}
	}
	if gate.Rung != 2 {
		t.Fatalf("span rung %d, want 2", gate.Rung)
	}
	tr.SetRung(0, now+10)
	if tr.Enabled() {
		t.Fatal("rate 0 rung 0 tracer still enabled")
	}
	views := tr.Traces(Filter{MinRung: 2})
	if len(views) != 1 || views[0].Trace != ctx.Trace {
		t.Fatalf("MinRung filter returned %v", views)
	}
}

func TestHopCapQuietsTrace(t *testing.T) {
	tr := NewTracer(maxHops*2, 1)
	now := tr.Now()
	ctx := tr.Begin(now)
	for i := 0; i < maxHops+16; i++ {
		now++
		ctx = stageCtx(tr, ctx, StageProcess, now)
	}
	if ctx.Traced() {
		t.Fatal("context still sampled past the hop cap")
	}
	if got := tr.Len(); got != maxHops {
		t.Fatalf("recorded %d spans, want %d", got, maxHops)
	}
}

func TestTracesFilterAndSlowest(t *testing.T) {
	tr := NewTracer(256, 1)
	base := tr.Now()
	mk := func(stages int, step int64) uint64 {
		ctx := tr.Begin(base)
		at := base
		for i := 0; i < stages; i++ {
			at += step
			ctx = stageCtx(tr, ctx, StageProcess, at)
		}
		return ctx.Trace
	}
	slow := mk(4, int64(time.Millisecond)) // wall 4ms
	fast := mk(2, int64(time.Microsecond))
	views := tr.Traces(Filter{})
	if len(views) != 2 {
		t.Fatalf("got %d traces, want 2", len(views))
	}
	if views[0].Trace != fast {
		t.Fatalf("most recent trace = %d, want %d", views[0].Trace, fast)
	}
	only := tr.Traces(Filter{Trace: slow})
	if len(only) != 1 || only[0].Trace != slow || len(only[0].Spans) != 4 {
		t.Fatalf("by-id filter returned %+v", only)
	}
	min := tr.Traces(Filter{MinDur: time.Millisecond})
	if len(min) != 1 || min[0].Trace != slow {
		t.Fatalf("min-duration filter returned %d traces", len(min))
	}
	ranked := tr.Slowest(0, 10)
	if len(ranked) != 2 || ranked[0].Trace != slow {
		t.Fatalf("Slowest ranked %+v", ranked)
	}
	if ranked[0].Wall != 4*time.Millisecond || ranked[0].Busy != 4*time.Millisecond {
		t.Fatalf("wall/busy = %v/%v", ranked[0].Wall, ranked[0].Busy)
	}
}

// TestRingWraparoundNoTornSpans is the satellite guarantee: under concurrent
// writers wrapping a small ring many times over, a reader never observes a
// half-written span. Every writer records spans whose fields are a pure
// function of the span's Trace, so any interleaving of two writes would be
// detected; snapshot order must also be strictly ascending by Seq.
func TestRingWraparoundNoTornSpans(t *testing.T) {
	tr := NewTracer(32, 1) // tiny ring: ~thousands of wraparounds
	const writers = 4
	const perWriter = 8192
	check := func(sp Span) bool {
		return sp.Vertex == sp.Trace*31 &&
			sp.Peer == sp.Trace^0xABCD &&
			sp.Dur == time.Duration(sp.Trace%977+1) &&
			sp.Loop == sp.Trace%13
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := tr.nextTrace.Add(1)
				base := int64(1 << 40)
				ctx := Context{Trace: id, Stamp: base, Sampled: true}
				tr.Stage(ctx, StageProcess, id%13, id*31, id^0xABCD, base+int64(id%977+1))
			}
		}()
	}
	var torn, reads int
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := tr.Snapshot()
			reads++
			var lastSeq uint64
			for _, sp := range snap {
				if !check(sp) {
					torn++
				}
				if sp.Seq <= lastSeq {
					torn++
				}
				lastSeq = sp.Seq
			}
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()
	if torn != 0 {
		t.Fatalf("observed %d torn/misordered spans across %d snapshots", torn, reads)
	}
	if tr.Len() != 32 {
		t.Fatalf("ring len %d after wraparound, want 32", tr.Len())
	}
	if got := tr.Recorded(); got != writers*perWriter {
		t.Fatalf("recorded %d, want %d", got, writers*perWriter)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	ctx := tr.Begin(1)
	ctx = tr.Stage(ctx, StageGate, 0, 0, 0, 2)
	tr.Escalate(MarkShed, ctx, 3)
	tr.SetRung(2, 4)
	tr.SetRate(1)
	tr.OnSpan(func(Span) {})
	if tr.Len() != 0 || tr.Snapshot() != nil || tr.Traces(Filter{}) != nil {
		t.Fatal("nil tracer retained state")
	}
}

func TestOnSpanHookObservesStages(t *testing.T) {
	tr := NewTracer(16, 1)
	var mu sync.Mutex
	got := map[string]int{}
	tr.OnSpan(func(sp Span) {
		mu.Lock()
		got[sp.Stage]++
		mu.Unlock()
	})
	now := tr.Now()
	ctx := tr.Begin(now)
	ctx = stageCtx(tr, ctx, StageGate, now+1)
	stageCtx(tr, ctx, StageProcess, now+2)
	mu.Lock()
	defer mu.Unlock()
	if got[StageGate] != 1 || got[StageProcess] != 1 {
		t.Fatalf("hook observed %v", got)
	}
}
