package obs

import (
	"math"
	"sort"
	"sync"
)

// StreamHist is a bounded-memory streaming histogram: observations land in a
// fixed set of buckets with precomputed upper bounds, so memory stays
// constant no matter how long the loop runs (metrics.Histogram keeps raw
// samples, which is fine for a bench run and wrong for a main loop that
// ingests for days). Quantiles are estimated by linear interpolation inside
// the covering bucket; exact min, max, count and sum are tracked alongside.
// StreamHist is safe for concurrent use.
type StreamHist struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []uint64  // len(bounds)+1, last is the +Inf overflow bucket
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// DefaultBuckets covers latencies from 1µs to ~147s in factor-2 steps
// (in seconds), a sensible default for loop timings.
func DefaultBuckets() []float64 { return ExpBuckets(1e-6, 2, 28) }

// ExpBuckets returns n exponentially growing upper bounds starting at start
// with the given growth factor (> 1).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets requires start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 {
		panic("obs: LinearBuckets requires n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// NewStreamHist returns a histogram over the given ascending upper bounds
// (nil = DefaultBuckets). Observations above the last bound land in an
// implicit +Inf bucket.
func NewStreamHist(bounds []float64) *StreamHist {
	if bounds == nil {
		bounds = DefaultBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: StreamHist bounds must be strictly ascending")
		}
	}
	return &StreamHist{
		bounds: bounds,
		counts: make([]uint64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one sample.
func (h *StreamHist) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[idx]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *StreamHist) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *StreamHist) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *StreamHist) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation, or 0 with none.
func (h *StreamHist) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 with none.
func (h *StreamHist) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear interpolation
// within the covering bucket, clamped to the observed [min, max]. Returns 0
// with no observations.
func (h *StreamHist) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo, hi := h.bucketSpan(i)
			frac := (rank - cum) / float64(c)
			v := lo + frac*(hi-lo)
			return clamp(v, h.min, h.max)
		}
		cum = next
	}
	return h.max
}

// bucketSpan returns bucket i's value range, tightened by observed min/max
// so interpolation never invents values outside the data.
func (h *StreamHist) bucketSpan(i int) (lo, hi float64) {
	if i == 0 {
		lo = h.min
	} else {
		lo = h.bounds[i-1]
	}
	if i < len(h.bounds) {
		hi = h.bounds[i]
	} else {
		hi = h.max
	}
	return lo, hi
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// HistSnapshot is a point-in-time copy of a StreamHist for exposition.
type HistSnapshot struct {
	Bounds []float64 // upper bounds; Counts has one extra +Inf entry
	Counts []uint64  // per-bucket (non-cumulative) counts
	Count  uint64
	Sum    float64
	Min    float64
	Max    float64
}

// Snapshot copies the histogram's current state.
func (h *StreamHist) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{
		Bounds: h.bounds, // immutable after construction
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count,
		Sum:    h.sum,
	}
	copy(s.Counts, h.counts)
	if h.count > 0 {
		s.Min, s.Max = h.min, h.max
	}
	return s
}

// Reset discards all observations.
func (h *StreamHist) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count, h.sum = 0, 0
	h.min, h.max = math.Inf(1), math.Inf(-1)
}
