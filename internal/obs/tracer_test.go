package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled(1) {
		t.Fatal("nil tracer must be disabled")
	}
	tr.Record(0, EvCommit, 1, 0, 3) // must not panic
	if tr.Recorded() != 0 || tr.Len() != 0 {
		t.Fatal("nil tracer must report zero events")
	}
	if tr.Query(0, 1) != nil || tr.QueryVertex(1) != nil || tr.Recent(5) != nil {
		t.Fatal("nil tracer queries must return nil")
	}
}

func TestTracerWatchOverridesSampling(t *testing.T) {
	tr := NewTracer(64, -1) // sampling disabled: watched-only
	if tr.Enabled(7) {
		t.Fatal("unwatched vertex must be disabled with negative sampling")
	}
	tr.Watch(7)
	if !tr.Enabled(7) {
		t.Fatal("watched vertex must be enabled")
	}
	tr.Unwatch(7)
	if tr.Enabled(7) {
		t.Fatal("unwatched vertex must be disabled again")
	}
}

func TestTracerSampleAll(t *testing.T) {
	tr := NewTracer(64, 1)
	for v := uint64(0); v < 100; v++ {
		if !tr.Enabled(v) {
			t.Fatalf("sampleEvery=1 must trace every vertex, %d missing", v)
		}
	}
}

func TestTracerSamplingRate(t *testing.T) {
	tr := NewTracer(64, 8)
	hits := 0
	for v := uint64(0); v < 8000; v++ {
		if tr.Enabled(v) {
			hits++
		}
	}
	// Hash-based 1-in-8 over 8000 sequential IDs: expect ~1000, allow wide
	// slack for hash clumping.
	if hits < 500 || hits > 1500 {
		t.Fatalf("1-in-8 sampling hit %d of 8000; want roughly 1000", hits)
	}
}

func TestTracerQueryOrdering(t *testing.T) {
	tr := NewTracer(64, 1)
	tr.Record(0, EvInput, 5, 0, 0)
	tr.Record(0, EvPrepareSend, 5, 6, 2)
	tr.Record(0, EvCommit, 9, 0, 2) // other vertex: filtered out
	tr.Record(1, EvCommit, 5, 0, 2) // other loop: filtered out
	tr.Record(0, EvAckRecv, 5, 6, 2)
	tr.Record(0, EvCommit, 5, 0, 2)

	got := tr.Query(0, 5)
	wantKinds := []EventKind{EvInput, EvPrepareSend, EvAckRecv, EvCommit}
	if len(got) != len(wantKinds) {
		t.Fatalf("Query returned %d events; want %d: %v", len(got), len(wantKinds), got)
	}
	var lastSeq uint64
	for i, e := range got {
		if e.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %v; want %v", i, e.Kind, wantKinds[i])
		}
		if e.Seq <= lastSeq {
			t.Errorf("event %d out of order: seq %d after %d", i, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
	}
	if all := tr.QueryVertex(5); len(all) != 5 {
		t.Fatalf("QueryVertex(5) = %d events; want 5 across both loops", len(all))
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4, 1)
	for i := int64(0); i < 10; i++ {
		tr.Record(0, EvCommit, 1, 0, i)
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d; want capacity 4", got)
	}
	if got := tr.Recorded(); got != 10 {
		t.Fatalf("Recorded = %d; want 10", got)
	}
	events := tr.Recent(10)
	if len(events) != 4 {
		t.Fatalf("Recent = %d events; want 4", len(events))
	}
	// Ring keeps the newest 4 (iterations 6..9), oldest first.
	for i, e := range events {
		if want := int64(6 + i); e.Iteration != want {
			t.Fatalf("event %d iteration = %d; want %d", i, e.Iteration, want)
		}
	}
}

func TestEventString(t *testing.T) {
	tr := NewTracer(8, 1)
	tr.Record(2, EvPrepareSend, 5, 9, 3)
	s := tr.Recent(1)[0].String()
	for _, want := range []string{"prepare-send", "v5", "peer=9", "iter=3", "loop=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("Event.String() = %q missing %q", s, want)
		}
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(1024, 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := uint64(w)
			for i := int64(0); i < 500; i++ {
				if tr.Enabled(v) {
					tr.Record(0, EvCommit, v, 0, i)
				}
				if i%100 == 0 {
					_ = tr.Query(0, v)
					_ = tr.Recent(16)
					tr.Watch(v)
					tr.Unwatch(v)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Recorded(); got != 8*500 {
		t.Fatalf("Recorded = %d; want 4000", got)
	}
	// Per-vertex events must still be in ascending Seq order.
	for v := uint64(0); v < 8; v++ {
		var last uint64
		for _, e := range tr.QueryVertex(v) {
			if e.Seq <= last {
				t.Fatalf("vertex %d events out of order", v)
			}
			last = e.Seq
		}
	}
}
