package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"tornado/internal/obs/trace"
)

// HubOptions configure a Hub.
type HubOptions struct {
	// TraceCapacity is the tracer ring size (default 8192).
	TraceCapacity int
	// TraceSampleEvery traces 1 in N vertices (1 = all, 0 = default 64,
	// negative = only watched vertices).
	TraceSampleEvery int
	// SpanCapacity is the causal-span ring size (default 4096).
	SpanCapacity int
	// SpanSampleRate is the head-based probability of tracing an input delta
	// end to end (0 disables; tail escalation can still force tracing while
	// a degradation rung is active).
	SpanSampleRate float64
}

// Hub is one process's observability root: a Registry every loop registers
// its collectors into, a shared protocol Tracer, a causal span Tracer for
// end-to-end freshness tracing, and the HTTP exposition surface (/metrics in
// Prometheus text format, /statusz as JSON, /traces as filterable JSON span
// dumps, and /debug/pprof). Components contribute per-loop snapshots to
// /statusz via AddStatus.
type Hub struct {
	Registry *Registry
	Tracer   *Tracer
	Spans    *trace.Tracer
	start    time.Time
	build    map[string]string

	stageMu    sync.RWMutex
	stageHists map[string]*StreamHist
	stageScope *Scope

	statusMu sync.Mutex
	status   map[string]func() any

	extraMu sync.Mutex
	extra   map[string]http.Handler

	srvMu sync.Mutex
	srv   *http.Server
	lis   net.Listener
}

// NewHub returns a hub with an empty registry and running tracers.
func NewHub(opts HubOptions) *Hub {
	h := &Hub{
		Registry: NewRegistry(),
		Tracer:   NewTracer(opts.TraceCapacity, opts.TraceSampleEvery),
		Spans:    trace.NewTracer(opts.SpanCapacity, opts.SpanSampleRate),
		start:    time.Now(),
		build:    buildInfo(),
		status:   make(map[string]func() any),
	}
	h.stageHists = make(map[string]*StreamHist)
	h.stageScope = h.Registry.Scope()
	h.stageScope.GaugeFunc("tornado_trace_spans_recorded",
		"Causal spans ever recorded (including overwritten).",
		func() float64 { return float64(h.Spans.Recorded()) })
	h.stageScope.GaugeFunc("tornado_trace_escalations",
		"Tail-sampling escalation triggers (resend, shed, rung, recovery).",
		func() float64 { return float64(h.Spans.Escalations()) })
	h.stageScope.GaugeFunc("tornado_trace_sample_rate",
		"Head-based span sampling probability.",
		func() float64 { return h.Spans.Rate() })
	// Every recorded stage span feeds the per-stage latency breakdown
	// (markers carry zero width and are skipped).
	h.Spans.OnSpan(func(sp trace.Span) {
		if sp.Dur <= 0 {
			return
		}
		h.ObserveStage(sp.Stage, sp.Dur)
	})
	return h
}

// ObserveStage records one latency sample into the per-stage breakdown
// histogram tornado_stage_seconds{stage=...}. Stage families are created
// lazily on first observation.
func (h *Hub) ObserveStage(stage string, d time.Duration) {
	h.stageMu.RLock()
	hist := h.stageHists[stage]
	h.stageMu.RUnlock()
	if hist == nil {
		h.stageMu.Lock()
		hist = h.stageHists[stage]
		if hist == nil {
			hist = h.stageScope.Histogram("tornado_stage_seconds",
				"Per-stage latency breakdown of traced input deltas and queries.",
				nil, L("stage", stage))
			h.stageHists[stage] = hist
		}
		h.stageMu.Unlock()
	}
	hist.Observe(d.Seconds())
}

// buildInfo collects the process's go version and VCS stamp once.
func buildInfo() map[string]string {
	out := map[string]string{"go": runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if bi.Main.Version != "" {
		out["module_version"] = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out["vcs_revision"] = s.Value
		case "vcs.time":
			out["vcs_time"] = s.Value
		case "vcs.modified":
			out["vcs_dirty"] = s.Value
		}
	}
	return out
}

// Uptime is the time since the hub was created.
func (h *Hub) Uptime() time.Duration { return time.Since(h.start) }

// AddStatus registers a named /statusz section; fn is called at request time
// and must be safe to call from any goroutine. Re-registering a name
// replaces the previous section.
func (h *Hub) AddStatus(name string, fn func() any) {
	h.statusMu.Lock()
	h.status[name] = fn
	h.statusMu.Unlock()
}

// RemoveStatus drops a /statusz section (loops unregister when they stop).
func (h *Hub) RemoveStatus(name string) {
	h.statusMu.Lock()
	delete(h.status, name)
	h.statusMu.Unlock()
}

// StatusSnapshot evaluates every registered status section.
func (h *Hub) StatusSnapshot() map[string]any {
	h.statusMu.Lock()
	names := make([]string, 0, len(h.status))
	fns := make([]func() any, 0, len(h.status))
	for name, fn := range h.status {
		names = append(names, name)
		fns = append(fns, fn)
	}
	h.statusMu.Unlock()
	out := make(map[string]any, len(names)+4)
	for i, name := range names {
		out[name] = fns[i]()
	}
	out["uptime"] = h.Uptime().String()
	out["trace_events"] = h.Tracer.Recorded()
	out["trace_spans"] = map[string]any{
		"recorded":    h.Spans.Recorded(),
		"retained":    h.Spans.Len(),
		"escalations": h.Spans.Escalations(),
		"sample_rate": h.Spans.Rate(),
	}
	out["build"] = h.build
	out["degrade_rung"] = h.Spans.Rung()
	return out
}

// Handle registers an extra route on the exposition surface (e.g. the query
// service's /query API). Patterns use http.ServeMux syntax. Register before
// Serve: routes added later are picked up only by subsequent Handler calls.
func (h *Hub) Handle(pattern string, handler http.Handler) {
	h.extraMu.Lock()
	if h.extra == nil {
		h.extra = make(map[string]http.Handler)
	}
	h.extra[pattern] = handler
	h.extraMu.Unlock()
}

// Handler returns the exposition mux: /metrics, /statusz, /debug/pprof/...
// plus every route registered with Handle.
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", h.serveMetrics)
	mux.HandleFunc("/statusz", h.serveStatusz)
	mux.HandleFunc("/traces", h.serveTraces)
	h.extraMu.Lock()
	for pattern, handler := range h.extra {
		mux.Handle(pattern, handler)
	}
	h.extraMu.Unlock()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("tornado observability\n  /metrics\n  /statusz\n  /traces\n  /debug/pprof/\n"))
	})
	return mux
}

func (h *Hub) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = h.Registry.WritePrometheus(w)
}

// serveTraces dumps reconstructed causal traces as JSON. Query parameters:
// trace (ID), min_ms (minimum wall duration), rung (minimum degradation
// rung), forced (tail-escalated only), stage (must contain stage), limit.
func (h *Hub) serveTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var f trace.Filter
	if v := q.Get("trace"); v != "" {
		id, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		f.Trace = id
	}
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			http.Error(w, "bad min_ms", http.StatusBadRequest)
			return
		}
		f.MinDur = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("rung"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			http.Error(w, "bad rung", http.StatusBadRequest)
			return
		}
		f.MinRung = int32(n)
	}
	if v := q.Get("forced"); v == "1" || v == "true" {
		f.ForcedOnly = true
	}
	f.Stage = q.Get("stage")
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		f.Limit = n
	}
	views := h.Spans.Traces(f)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{
		"sample_rate": h.Spans.Rate(),
		"rung":        h.Spans.Rung(),
		"escalations": h.Spans.Escalations(),
		"traces":      views,
	})
}

func (h *Hub) serveStatusz(w http.ResponseWriter, _ *http.Request) {
	snap := h.StatusSnapshot()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap) // map keys marshal sorted: stable for curl | diff

}

// Serve starts the exposition server on addr (host:port; port 0 picks a free
// one) and returns the bound address. It is idempotent per hub: a second
// call returns the first server's address.
func (h *Hub) Serve(addr string) (string, error) {
	h.srvMu.Lock()
	defer h.srvMu.Unlock()
	if h.lis != nil {
		return h.lis.Addr().String(), nil
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	h.lis = lis
	h.srv = &http.Server{Handler: h.Handler()}
	go func() { _ = h.srv.Serve(lis) }()
	return lis.Addr().String(), nil
}

// Addr returns the bound exposition address, or "" when not serving.
func (h *Hub) Addr() string {
	h.srvMu.Lock()
	defer h.srvMu.Unlock()
	if h.lis == nil {
		return ""
	}
	return h.lis.Addr().String()
}

// Close stops the exposition server (a no-op when none is running).
func (h *Hub) Close() error {
	h.srvMu.Lock()
	srv := h.srv
	h.srv, h.lis = nil, nil
	h.srvMu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}
