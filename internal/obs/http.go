package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// HubOptions configure a Hub.
type HubOptions struct {
	// TraceCapacity is the tracer ring size (default 8192).
	TraceCapacity int
	// TraceSampleEvery traces 1 in N vertices (1 = all, 0 = default 64,
	// negative = only watched vertices).
	TraceSampleEvery int
}

// Hub is one process's observability root: a Registry every loop registers
// its collectors into, a shared protocol Tracer, and the HTTP exposition
// surface (/metrics in Prometheus text format, /statusz as JSON, and
// /debug/pprof). Components contribute per-loop snapshots to /statusz via
// AddStatus.
type Hub struct {
	Registry *Registry
	Tracer   *Tracer
	start    time.Time

	statusMu sync.Mutex
	status   map[string]func() any

	extraMu sync.Mutex
	extra   map[string]http.Handler

	srvMu sync.Mutex
	srv   *http.Server
	lis   net.Listener
}

// NewHub returns a hub with an empty registry and a running tracer.
func NewHub(opts HubOptions) *Hub {
	return &Hub{
		Registry: NewRegistry(),
		Tracer:   NewTracer(opts.TraceCapacity, opts.TraceSampleEvery),
		start:    time.Now(),
		status:   make(map[string]func() any),
	}
}

// Uptime is the time since the hub was created.
func (h *Hub) Uptime() time.Duration { return time.Since(h.start) }

// AddStatus registers a named /statusz section; fn is called at request time
// and must be safe to call from any goroutine. Re-registering a name
// replaces the previous section.
func (h *Hub) AddStatus(name string, fn func() any) {
	h.statusMu.Lock()
	h.status[name] = fn
	h.statusMu.Unlock()
}

// RemoveStatus drops a /statusz section (loops unregister when they stop).
func (h *Hub) RemoveStatus(name string) {
	h.statusMu.Lock()
	delete(h.status, name)
	h.statusMu.Unlock()
}

// StatusSnapshot evaluates every registered status section.
func (h *Hub) StatusSnapshot() map[string]any {
	h.statusMu.Lock()
	names := make([]string, 0, len(h.status))
	fns := make([]func() any, 0, len(h.status))
	for name, fn := range h.status {
		names = append(names, name)
		fns = append(fns, fn)
	}
	h.statusMu.Unlock()
	out := make(map[string]any, len(names)+2)
	for i, name := range names {
		out[name] = fns[i]()
	}
	out["uptime"] = h.Uptime().String()
	out["trace_events"] = h.Tracer.Recorded()
	return out
}

// Handle registers an extra route on the exposition surface (e.g. the query
// service's /query API). Patterns use http.ServeMux syntax. Register before
// Serve: routes added later are picked up only by subsequent Handler calls.
func (h *Hub) Handle(pattern string, handler http.Handler) {
	h.extraMu.Lock()
	if h.extra == nil {
		h.extra = make(map[string]http.Handler)
	}
	h.extra[pattern] = handler
	h.extraMu.Unlock()
}

// Handler returns the exposition mux: /metrics, /statusz, /debug/pprof/...
// plus every route registered with Handle.
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", h.serveMetrics)
	mux.HandleFunc("/statusz", h.serveStatusz)
	h.extraMu.Lock()
	for pattern, handler := range h.extra {
		mux.Handle(pattern, handler)
	}
	h.extraMu.Unlock()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("tornado observability\n  /metrics\n  /statusz\n  /debug/pprof/\n"))
	})
	return mux
}

func (h *Hub) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = h.Registry.WritePrometheus(w)
}

func (h *Hub) serveStatusz(w http.ResponseWriter, _ *http.Request) {
	snap := h.StatusSnapshot()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap) // map keys marshal sorted: stable for curl | diff

}

// Serve starts the exposition server on addr (host:port; port 0 picks a free
// one) and returns the bound address. It is idempotent per hub: a second
// call returns the first server's address.
func (h *Hub) Serve(addr string) (string, error) {
	h.srvMu.Lock()
	defer h.srvMu.Unlock()
	if h.lis != nil {
		return h.lis.Addr().String(), nil
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	h.lis = lis
	h.srv = &http.Server{Handler: h.Handler()}
	go func() { _ = h.srv.Serve(lis) }()
	return lis.Addr().String(), nil
}

// Addr returns the bound exposition address, or "" when not serving.
func (h *Hub) Addr() string {
	h.srvMu.Lock()
	defer h.srvMu.Unlock()
	if h.lis == nil {
		return ""
	}
	return h.lis.Addr().String()
}

// Close stops the exposition server (a no-op when none is running).
func (h *Hub) Close() error {
	h.srvMu.Lock()
	srv := h.srv
	h.srv, h.lis = nil, nil
	h.srvMu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}
