package stream

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func mkTuples(times ...Timestamp) []Tuple {
	out := make([]Tuple, len(times))
	for i, t := range times {
		out[i] = AddEdge(t, VertexID(i), VertexID(i+1))
	}
	return out
}

func TestSliceSourceReplaysInOrder(t *testing.T) {
	in := mkTuples(1, 2, 3)
	src := FromSlice(in)
	for i, want := range in {
		got, err := src.Next()
		if err != nil {
			t.Fatalf("Next #%d: %v", i, err)
		}
		if got != want {
			t.Fatalf("Next #%d = %+v; want %+v", i, got, want)
		}
	}
	if _, err := src.Next(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("after drain err = %v; want ErrExhausted", err)
	}
	if src.Remaining() != 0 {
		t.Fatalf("Remaining = %d; want 0", src.Remaining())
	}
}

func TestMergeInterleavesByTimestamp(t *testing.T) {
	a := FromSlice(mkTuples(1, 4, 5))
	b := FromSlice(mkTuples(2, 3, 6))
	m := NewMerge(a, b)
	got, err := Drain(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("drained %d tuples; want 6", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatalf("merge output not time-ordered at %d: %v", i, got)
		}
	}
}

func TestMergeStableOnTies(t *testing.T) {
	a := []Tuple{Value(5, 1, "a")}
	b := []Tuple{Value(5, 2, "b")}
	m := NewMerge(FromSlice(a), FromSlice(b))
	first, err := m.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first.Value != "a" {
		t.Fatalf("tie broken in favor of %v; want earlier source", first.Value)
	}
}

func TestMergeProperty(t *testing.T) {
	// Merging any two sorted streams yields the sorted multiset union.
	f := func(raw1, raw2 []int16) bool {
		mk := func(raw []int16) []Tuple {
			ts := make([]Timestamp, len(raw))
			for i, v := range raw {
				ts[i] = Timestamp(v)
			}
			sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
			out := make([]Tuple, len(ts))
			for i, v := range ts {
				out[i] = Value(v, 0, nil)
			}
			return out
		}
		t1, t2 := mk(raw1), mk(raw2)
		got, err := Drain(NewMerge(FromSlice(t1), FromSlice(t2)))
		if err != nil {
			return false
		}
		if len(got) != len(t1)+len(t2) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].Time < got[i-1].Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunks(t *testing.T) {
	in := mkTuples(1, 2, 3, 4, 5)
	got, err := Chunks(FromSlice(in), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || len(got[0]) != 2 || len(got[1]) != 2 || len(got[2]) != 1 {
		t.Fatalf("chunk shapes wrong: %v", got)
	}
}

func TestChunksRejectsBadSize(t *testing.T) {
	if _, err := Chunks(FromSlice(nil), 0); err == nil {
		t.Fatal("Chunks with size 0 should error")
	}
}

func TestQueueDeliversThenExhausts(t *testing.T) {
	q := NewQueue()
	q.Push(Value(1, 7, 42))
	got, err := q.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != 7 || got.Value != 42 {
		t.Fatalf("got %+v", got)
	}
	q.Push(Value(2, 8, 43))
	q.Close()
	if got, err = q.Next(); err != nil || got.Dst != 8 {
		t.Fatalf("pending tuple after Close: %+v, %v", got, err)
	}
	if _, err = q.Next(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v; want ErrExhausted", err)
	}
}

func TestQueueBlocksUntilPush(t *testing.T) {
	q := NewQueue()
	done := make(chan Tuple)
	go func() {
		tup, err := q.Next()
		if err != nil {
			t.Errorf("Next: %v", err)
		}
		done <- tup
	}()
	q.Push(Value(9, 1, "x"))
	got := <-done
	if got.Time != 9 {
		t.Fatalf("got %+v", got)
	}
}

func TestQueueConcurrentProducers(t *testing.T) {
	q := NewQueue()
	const producers, per = 4, 250
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Push(Value(Timestamp(p*per+i), VertexID(p), i))
			}
		}(p)
	}
	go func() { wg.Wait(); q.Close() }()
	n := 0
	for {
		_, err := q.Next()
		if errors.Is(err, ErrExhausted) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != producers*per {
		t.Fatalf("drained %d tuples; want %d", n, producers*per)
	}
}

func TestThrottlePacesDelivery(t *testing.T) {
	in := mkTuples(1, 2, 3, 4, 5, 6)
	src := NewThrottle(FromSlice(in), 1000) // 1ms apart
	start := time.Now()
	got, err := Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("drained %d; want %d", len(got), len(in))
	}
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Fatalf("6 tuples at 1000/s drained in %v; want >= ~5ms", elapsed)
	}
}

func TestThrottleZeroRatePassesThrough(t *testing.T) {
	in := mkTuples(1, 2, 3)
	got, err := Drain(NewThrottle(FromSlice(in), 0))
	if err != nil || len(got) != 3 {
		t.Fatalf("drained %d, %v", len(got), err)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindAddEdge:      "add-edge",
		KindRemoveEdge:   "remove-edge",
		KindValue:        "value",
		KindRetractValue: "retract-value",
		Kind(99):         "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q; want %q", k, got, want)
		}
	}
}
