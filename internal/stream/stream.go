// Package stream defines Tornado's input model: the turnstile stream of
// Section 3.1 of the paper. The input S is an unbounded sequence of stream
// tuples; each tuple δt is an update (insertion or retraction) associated
// with a timestamp t, and the value of S at an instant is the sum of all
// updates happening before it.
//
// The package also provides the Source abstraction that ingesters pull from,
// along with composable sources: slice replays, rate-limited and chunked
// replays, and deterministic merges. Workload generators for the paper's
// experiments live in internal/datasets and produce []Tuple consumed here.
package stream

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// VertexID identifies a component of the iterative computation (a vertex of
// the dependency graph). External inputs address vertices by ID.
type VertexID uint64

// Timestamp is the event time of a tuple, in opaque monotone units.
type Timestamp int64

// Kind discriminates the update carried by a Tuple.
type Kind uint8

const (
	// KindAddEdge inserts the dependency edge Src -> Dst.
	KindAddEdge Kind = iota
	// KindRemoveEdge retracts the dependency edge Src -> Dst.
	KindRemoveEdge
	// KindValue delivers an application payload to vertex Dst (for example
	// a training instance for an SGD sampler, or a point for KMeans).
	KindValue
	// KindRetractValue retracts a previously delivered payload from vertex
	// Dst. Payload equality is application-defined.
	KindRetractValue
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindAddEdge:
		return "add-edge"
	case KindRemoveEdge:
		return "remove-edge"
	case KindValue:
		return "value"
	case KindRetractValue:
		return "retract-value"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Tuple is one turnstile update δt.
type Tuple struct {
	Time  Timestamp
	Kind  Kind
	Src   VertexID // source endpoint for edge tuples; producer hint otherwise
	Dst   VertexID // destination endpoint; the vertex the tuple is routed to
	Value any      // payload for KindValue / KindRetractValue
}

// AddEdge returns an edge-insertion tuple.
func AddEdge(t Timestamp, src, dst VertexID) Tuple {
	return Tuple{Time: t, Kind: KindAddEdge, Src: src, Dst: dst}
}

// RemoveEdge returns an edge-retraction tuple.
func RemoveEdge(t Timestamp, src, dst VertexID) Tuple {
	return Tuple{Time: t, Kind: KindRemoveEdge, Src: src, Dst: dst}
}

// Value returns a payload tuple addressed to dst.
func Value(t Timestamp, dst VertexID, v any) Tuple {
	return Tuple{Time: t, Kind: KindValue, Dst: dst, Value: v}
}

// ErrExhausted is returned by Source.Next when the stream has ended.
var ErrExhausted = errors.New("stream: source exhausted")

// Source produces stream tuples in timestamp order. Sources are pulled by a
// single ingester goroutine and need not be safe for concurrent use unless
// documented otherwise.
type Source interface {
	// Next returns the next tuple, or ErrExhausted when the stream ends.
	Next() (Tuple, error)
}

// SliceSource replays a fixed tuple slice. It is not safe for concurrent use.
type SliceSource struct {
	tuples []Tuple
	pos    int
}

// FromSlice returns a Source replaying tuples in order.
func FromSlice(tuples []Tuple) *SliceSource {
	return &SliceSource{tuples: tuples}
}

// Next implements Source.
func (s *SliceSource) Next() (Tuple, error) {
	if s.pos >= len(s.tuples) {
		return Tuple{}, ErrExhausted
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, nil
}

// Remaining returns the number of tuples not yet replayed.
func (s *SliceSource) Remaining() int { return len(s.tuples) - s.pos }

// Merge interleaves several sources by timestamp (stable on ties: earlier
// source wins). All inputs must themselves be timestamp-ordered.
type Merge struct {
	srcs    []Source
	heads   []*Tuple
	drained []bool
}

// NewMerge returns a merging source over srcs.
func NewMerge(srcs ...Source) *Merge {
	return &Merge{
		srcs:    srcs,
		heads:   make([]*Tuple, len(srcs)),
		drained: make([]bool, len(srcs)),
	}
}

// Next implements Source.
func (m *Merge) Next() (Tuple, error) {
	best := -1
	for i := range m.srcs {
		if m.heads[i] == nil && !m.drained[i] {
			t, err := m.srcs[i].Next()
			if errors.Is(err, ErrExhausted) {
				m.drained[i] = true
				continue
			}
			if err != nil {
				return Tuple{}, err
			}
			tt := t
			m.heads[i] = &tt
		}
		if m.heads[i] != nil && (best < 0 || m.heads[i].Time < m.heads[best].Time) {
			best = i
		}
	}
	if best < 0 {
		return Tuple{}, ErrExhausted
	}
	t := *m.heads[best]
	m.heads[best] = nil
	return t, nil
}

// Chunks splits a source into consecutive batches of at most size tuples;
// the mini-batch baselines consume input epoch by epoch this way.
func Chunks(src Source, size int) ([][]Tuple, error) {
	if size <= 0 {
		return nil, fmt.Errorf("stream: chunk size %d must be positive", size)
	}
	var out [][]Tuple
	cur := make([]Tuple, 0, size)
	for {
		t, err := src.Next()
		if errors.Is(err, ErrExhausted) {
			break
		}
		if err != nil {
			return nil, err
		}
		cur = append(cur, t)
		if len(cur) == size {
			out = append(out, cur)
			cur = make([]Tuple, 0, size)
		}
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out, nil
}

// Drain reads every remaining tuple from src.
func Drain(src Source) ([]Tuple, error) {
	var out []Tuple
	for {
		t, err := src.Next()
		if errors.Is(err, ErrExhausted) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

// Throttle wraps a source so it yields at most perSecond tuples per second,
// modelling a controlled arrival rate (the paper's experiments feed inputs
// at fixed rates). A perSecond of zero or less passes tuples through
// unthrottled.
type Throttle struct {
	src      Source
	interval time.Duration
	next     time.Time
}

// NewThrottle returns a rate-limited view of src.
func NewThrottle(src Source, perSecond float64) *Throttle {
	t := &Throttle{src: src}
	if perSecond > 0 {
		t.interval = time.Duration(float64(time.Second) / perSecond)
	}
	return t
}

// Next implements Source, sleeping as needed to honor the rate.
func (t *Throttle) Next() (Tuple, error) {
	if t.interval > 0 {
		now := time.Now()
		if t.next.After(now) {
			time.Sleep(t.next.Sub(now))
		}
		t.next = time.Now().Add(t.interval)
	}
	return t.src.Next()
}

// Queue is an unbounded, concurrency-safe tuple queue used to feed a running
// main loop from test or benchmark code: producers Push, the ingester Pops.
// Close signals end of stream once the queue drains.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []Tuple
	closed bool
}

// NewQueue returns an empty open queue.
func NewQueue() *Queue {
	q := &Queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends tuples to the queue. Push after Close panics.
func (q *Queue) Push(tuples ...Tuple) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		panic("stream: Push on closed Queue")
	}
	q.buf = append(q.buf, tuples...)
	q.cond.Broadcast()
}

// Close marks the end of the stream. Pending tuples are still delivered.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Next implements Source, blocking until a tuple is available or the queue
// is closed and drained.
func (q *Queue) Next() (Tuple, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.buf) == 0 {
		return Tuple{}, ErrExhausted
	}
	t := q.buf[0]
	q.buf = q.buf[1:]
	return t, nil
}

// Len returns the number of queued tuples.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}
