package queryserv

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"tornado/internal/stream"
)

// API is the service's JSON-over-HTTP surface, designed to hang off the obs
// hub's exposition mux:
//
//	POST   /query       {"timeout_ms", "max_stale_deltas", "max_stale_age_ms",
//	                     "priority"}            -> {"id", "state"}
//	GET    /query/{id}                          -> status, or the converged
//	                                               states once done
//	DELETE /query/{id}                          -> cancel / discard
//
// Submission is asynchronous: POST returns a ticket ID immediately and the
// client polls GET until "state" is "done". Results submitted over HTTP are
// retained for TTL after resolving, then auto-discarded (nobody may ever
// come back for them); in-process clients hold Tickets directly and are not
// TTL'd.
type API struct {
	svc *Service
	ttl time.Duration

	mu     sync.Mutex
	expiry map[uint64]time.Time // HTTP-submitted tickets and their discard time
	stop   chan struct{}
	once   sync.Once
}

// NewAPI wraps the service; ttl bounds how long an unclaimed HTTP result is
// retained (default 2m). Call Close to stop the janitor.
func NewAPI(svc *Service, ttl time.Duration) *API {
	if ttl <= 0 {
		ttl = 2 * time.Minute
	}
	a := &API{svc: svc, ttl: ttl, expiry: make(map[uint64]time.Time), stop: make(chan struct{})}
	go a.janitor()
	return a
}

// Close stops the janitor and discards every ticket the API still tracks.
func (a *API) Close() {
	a.once.Do(func() { close(a.stop) })
	a.mu.Lock()
	ids := make([]uint64, 0, len(a.expiry))
	for id := range a.expiry {
		ids = append(ids, id)
	}
	a.expiry = make(map[uint64]time.Time)
	a.mu.Unlock()
	for _, id := range ids {
		a.svc.Cancel(id)
	}
}

func (a *API) janitor() {
	tick := time.NewTicker(a.ttl / 4)
	defer tick.Stop()
	for {
		select {
		case <-a.stop:
			return
		case now := <-tick.C:
			var drop []uint64
			a.mu.Lock()
			for id, exp := range a.expiry {
				if now.After(exp) {
					drop = append(drop, id)
					delete(a.expiry, id)
				}
			}
			a.mu.Unlock()
			for _, id := range drop {
				a.svc.Cancel(id) // cancels pending, closes uncollected results
			}
		}
	}
}

// submitRequest is the POST /query body. All fields are optional.
type submitRequest struct {
	TimeoutMS      int64  `json:"timeout_ms"`
	MaxStaleDeltas uint64 `json:"max_stale_deltas"`
	MaxStaleAgeMS  int64  `json:"max_stale_age_ms"`
	Priority       int    `json:"priority"`
}

// ticketStatus is the GET /query/{id} reply (result fields only when done).
type ticketStatus struct {
	ID            uint64         `json:"id"`
	State         string         `json:"state"`
	Error         string         `json:"error,omitempty"`
	LatencyMS     float64        `json:"latency_ms,omitempty"`
	CacheHit      bool           `json:"cache_hit,omitempty"`
	Coalesced     bool           `json:"coalesced,omitempty"`
	Staleness     uint64         `json:"staleness_deltas,omitempty"`
	ForkIteration int64          `json:"fork_iteration,omitempty"`
	Vertices      map[string]any `json:"vertices,omitempty"`
}

// SubmitHandler serves POST /query.
func (a *API) SubmitHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req submitRequest
		// An empty body is a default query; anything else must parse.
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		t, err := a.svc.Submit(context.Background(), QuerySpec{
			Timeout:        time.Duration(req.TimeoutMS) * time.Millisecond,
			MaxStaleDeltas: req.MaxStaleDeltas,
			MaxStaleAge:    time.Duration(req.MaxStaleAgeMS) * time.Millisecond,
			Priority:       req.Priority,
		})
		if err != nil {
			code := http.StatusInternalServerError
			if errors.Is(err, ErrOverloaded) {
				code = http.StatusServiceUnavailable
			} else if errors.Is(err, ErrClosed) {
				code = http.StatusGone
			}
			http.Error(w, err.Error(), code)
			return
		}
		a.mu.Lock()
		a.expiry[t.ID()] = time.Now().Add(a.ttl)
		a.mu.Unlock()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(a.status(t, false))
	})
}

// TicketHandler serves GET and DELETE /query/{id}.
func (a *API) TicketHandler(prefix string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		idStr := strings.TrimPrefix(r.URL.Path, prefix)
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			http.Error(w, "bad query id", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodDelete:
			a.mu.Lock()
			delete(a.expiry, id)
			a.mu.Unlock()
			if !a.svc.Cancel(id) {
				http.NotFound(w, r)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		case http.MethodGet:
			t, ok := a.svc.Ticket(id)
			if !ok {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = json.NewEncoder(w).Encode(a.status(t, true))
		default:
			http.Error(w, "GET or DELETE", http.StatusMethodNotAllowed)
		}
	})
}

// status renders one ticket; withStates additionally embeds the converged
// vertex states of a done ticket.
func (a *API) status(t *Ticket, withStates bool) ticketStatus {
	st := ticketStatus{ID: t.ID(), State: "pending"}
	res, err, ok := t.Poll()
	if !ok {
		return st
	}
	st.State = "done"
	if err != nil {
		st.State = "error"
		st.Error = err.Error()
		return st
	}
	st.LatencyMS = float64(res.Latency.Microseconds()) / 1000
	st.CacheHit = res.CacheHit
	st.Coalesced = res.Coalesced
	st.Staleness = res.Staleness
	st.ForkIteration = res.ForkSpec().ForkIter
	if withStates {
		st.Vertices = make(map[string]any)
		_ = res.Scan(func(id stream.VertexID, state any) error {
			st.Vertices[strconv.FormatUint(uint64(id), 10)] = state
			return nil
		})
	}
	return st
}

// Mount registers the API's routes on an obs-hub-style registrar. Call it
// before the hub starts serving.
func (a *API) Mount(handle func(pattern string, h http.Handler)) {
	handle("/query", a.SubmitHandler())
	handle("/query/", a.TicketHandler("/query/"))
}
