// Package queryserv is Tornado's query-serving front end: an asynchronous
// admission-controlled service layered over the engine's branch-loop fork
// path (Section 5.2 of the paper).
//
// The raw fork path answers one query with one branch loop. That is the
// right primitive but the wrong front door: a hundred clients asking "what
// is the answer now?" would pay a hundred independent forks, with nothing
// bounding the number of concurrent branch loops and nothing reusing a
// result that is seconds old and still exact. The service adds the three
// layers a real serving tier needs:
//
//   - Admission control. A fixed pool of workers runs branch loops; queries
//     beyond the pool wait in a bounded priority/FIFO queue and are shed
//     with ErrOverloaded when the queue is full, so overload degrades into
//     fast failures instead of unbounded fork storms.
//
//   - Coalescing. Concurrent queries whose forks would land on the same
//     frontier — same main loop, same input-journal sequence, compatible
//     configuration override — share one branch loop, and the single
//     converged result fans out to every waiter through refcounted handles.
//     N simultaneous identical clients cost one fork.
//
//   - A freshness-bounded result cache. A converged result is retained,
//     keyed by its override key and stamped with the input-journal sequence
//     it forked at. A later query declaring a staleness tolerance
//     (MaxStaleDeltas input deltas and/or MaxStaleAge wall clock) is served
//     straight from the cache when the main loop has not ingested past the
//     bound; entries are invalidated as ingestion moves on, which also
//     releases their snapshot pins so journal compaction can proceed.
//
// Results are refcounted: waiters of a coalesced flight and the cache all
// hold references to one shared branch loop, and the loop is stopped and its
// stored versions dropped only when the last reference is closed. Close is
// idempotent per handle.
package queryserv

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"tornado/internal/engine"
	"tornado/internal/obs"
	"tornado/internal/obs/trace"
	"tornado/internal/storage"
	"tornado/internal/stream"
)

// Service errors.
var (
	// ErrOverloaded is returned by Submit when the wait queue is full; the
	// query was shed without forking anything (backpressure).
	ErrOverloaded = errors.New("queryserv: overloaded, query shed")
	// ErrClosed is returned for queries submitted to (or still queued in) a
	// closed service.
	ErrClosed = errors.New("queryserv: service closed")
	// ErrCancelled resolves tickets cancelled via Cancel.
	ErrCancelled = errors.New("queryserv: query cancelled")
)

// Backend is the slice of the system the service drives. It is how the
// service stays layered strictly over the fork path without importing the
// top-level package.
type Backend struct {
	// Fork forks one branch loop from the main loop's current frontier and
	// returns the branch engine, its fork spec and the loop ID its versions
	// live under. Required.
	Fork func(override func(*engine.Config), seed func(*engine.Engine)) (*engine.Engine, engine.ForkSpec, storage.LoopID, error)
	// Drop releases a stopped branch loop's stored versions. Required.
	Drop func(storage.LoopID)
	// JournalSeq is the main loop's input-journal sequence: the number of
	// inputs ever ingested. It keys coalescing and cache freshness. Required.
	JournalSeq func() uint64
	// OnConverged, when non-nil, observes each branch loop's fork-to-
	// convergence wall time (the system-level convergence histogram).
	OnConverged func(time.Duration)
}

// Options tune a Service. The zero value is usable.
type Options struct {
	// Workers is the number of branch loops run concurrently (default 4).
	Workers int
	// QueueCap bounds the wait queue of admitted-but-not-yet-running
	// flights; Submit sheds with ErrOverloaded beyond it (default 128).
	QueueCap int
	// DefaultTimeout is the per-query convergence budget applied when a
	// QuerySpec carries none (default 1m).
	DefaultTimeout time.Duration
	// CacheCap is the maximum number of converged results retained for
	// staleness-tolerant queries (default 8; negative disables the cache).
	CacheCap int
	// CacheMaxAge invalidates cached results older than this regardless of
	// query tolerances, bounding how long a cache entry may pin its fork
	// snapshot (default 10s).
	CacheMaxAge time.Duration
	// CacheMaxDeltas invalidates cached results once the main loop has
	// ingested more than this many inputs past their fork (default 4096).
	CacheMaxDeltas uint64
	// SweepEvery is the janitor period for cache invalidation (default
	// 250ms). Invalidation also happens lazily on lookups; the janitor only
	// bounds how long an idle service pins stale snapshots.
	SweepEvery time.Duration
	// DisableCoalescing forks one branch per query even when queries could
	// share (benchmarking the sharing win).
	DisableCoalescing bool
	// DisableCache turns the result cache off (benchmarking, and tests that
	// assert branch teardown on Close).
	DisableCache bool
	// DegradeStaleDeltas is the staleness tolerance the service imposes on
	// every query while degraded (level >= 1): cache hits and running-flight
	// joins are accepted up to this many input deltas behind the present even
	// when the query asked for less, trading exactness for fork load
	// (default 1024).
	DegradeStaleDeltas uint64
	// ShedBelowPriority is the admission cut applied at degrade level >= 2:
	// queries with Priority below it are shed with ErrOverloaded before they
	// can queue a new flight (default 1, i.e. the zero/default priority is
	// the first traffic dropped).
	ShedBelowPriority int
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 128
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = time.Minute
	}
	if o.CacheCap == 0 {
		o.CacheCap = 8
	}
	if o.CacheMaxAge <= 0 {
		o.CacheMaxAge = 10 * time.Second
	}
	if o.CacheMaxDeltas == 0 {
		o.CacheMaxDeltas = 4096
	}
	if o.SweepEvery <= 0 {
		o.SweepEvery = 250 * time.Millisecond
	}
	if o.DegradeStaleDeltas == 0 {
		o.DegradeStaleDeltas = 1024
	}
	if o.ShedBelowPriority == 0 {
		o.ShedBelowPriority = 1
	}
}

// QuerySpec describes one query.
type QuerySpec struct {
	// Timeout is the convergence budget from submission to result
	// (queueing included); 0 uses the service default. The context passed
	// to Submit may impose an earlier deadline.
	Timeout time.Duration
	// MaxStaleDeltas is how many input-journal deltas the answer may lag
	// behind the main loop's present. 0 demands a result reflecting every
	// input ingested before submission (which still allows sharing a result
	// forked at the current sequence).
	MaxStaleDeltas uint64
	// MaxStaleAge additionally bounds a stale result's wall-clock age;
	// <= 0 leaves age unbounded (the delta bound alone governs).
	MaxStaleAge time.Duration
	// Priority orders the wait queue: higher runs earlier; equal priorities
	// run FIFO.
	Priority int
	// Override tweaks the branch configuration before launch (e.g. a
	// different delay bound). Two queries may share a branch only when
	// their OverrideKeys match, so a non-empty OverrideKey asserts that the
	// override is deterministic and identical for every query carrying the
	// key. A non-nil Override with an empty key is private: never coalesced,
	// never cached.
	Override func(*engine.Config)
	// OverrideKey names the override for coalescing and caching.
	OverrideKey string
	// Seed runs under the branch's bootstrap guard before it may converge
	// (e.g. activating SGD sampler vertices). Seeded queries mutate their
	// branch, so they are always private: one fork each, uncached.
	Seed func(*engine.Engine)
}

// shareKey returns the coalescing/cache key, and whether the query may share
// a branch at all.
func (q *QuerySpec) shareKey() (string, bool) {
	if q.Seed != nil {
		return "", false
	}
	if q.Override != nil && q.OverrideKey == "" {
		return "", false
	}
	return q.OverrideKey, true
}

// shared is one converged branch loop referenced by any number of Result
// handles plus possibly the cache. The branch is stopped and its versions
// dropped when the last reference is released.
type shared struct {
	br      *engine.Engine
	spec    engine.ForkSpec
	loop    storage.LoopID
	forkSeq uint64
	created time.Time
	drop    func(storage.LoopID)

	mu   sync.Mutex
	refs int
}

func (sh *shared) acquire() {
	sh.mu.Lock()
	sh.refs++
	sh.mu.Unlock()
}

// release drops one reference; the caller must not hold the service mutex
// (tearing the branch down waits for its goroutines).
func (sh *shared) release() {
	sh.mu.Lock()
	sh.refs--
	last := sh.refs == 0
	sh.mu.Unlock()
	if last {
		sh.br.Stop()
		sh.drop(sh.loop)
	}
}

// Result is one handle on a converged query result. Any number of handles
// may share one branch loop; Close is idempotent per handle and the branch
// is released when every handle (and the cache) has closed.
type Result struct {
	sh  *shared
	svc *Service

	once    sync.Once
	onClose func()

	// Latency is the submitter's end-to-end wall time, queueing included.
	Latency time.Duration
	// CacheHit reports that the result was served from the cache.
	CacheHit bool
	// Coalesced reports that the query shared another query's branch loop.
	Coalesced bool
	// Staleness is how many input deltas the main loop had ingested past
	// this result's fork when it was served (0 = exact at serve time).
	Staleness uint64
}

// Freshness is the result's staleness watermark right now: how many input
// deltas the main loop has ingested past this result's fork. Unlike the
// Staleness field (frozen at serve time) it is live — a held handle drifts
// as ingestion moves on, which is what a freshness-bounded reader polls.
func (r *Result) Freshness() uint64 {
	cur := r.svc.b.JournalSeq()
	if cur <= r.sh.forkSeq {
		return 0
	}
	return cur - r.sh.forkSeq
}

// Read returns the branch's converged state of one vertex.
func (r *Result) Read(id stream.VertexID) (any, int64, error) {
	return r.sh.br.ReadState(id, math.MaxInt64)
}

// Scan visits the branch's state of every vertex in ascending ID order.
func (r *Result) Scan(fn func(id stream.VertexID, state any) error) error {
	return r.sh.br.ScanStates(math.MaxInt64, func(id stream.VertexID, _ int64, state any) error {
		return fn(id, state)
	})
}

// Engine exposes the underlying branch engine (advanced reads, merging).
func (r *Result) Engine() *engine.Engine { return r.sh.br }

// ForkSpec returns the fork point the branch was taken at.
func (r *Result) ForkSpec() engine.ForkSpec { return r.sh.spec }

// ForkSeq returns the main loop's input-journal sequence at fork time: the
// number of ingested inputs this result reflects.
func (r *Result) ForkSeq() uint64 { return r.sh.forkSeq }

// Close releases this handle. It is idempotent; the shared branch loop is
// stopped and its versions dropped when the last handle closes.
func (r *Result) Close() {
	r.once.Do(func() {
		if r.onClose != nil {
			r.onClose()
		}
		r.sh.release()
	})
}

// ticketState is a Ticket's lifecycle phase.
type ticketState int

const (
	ticketQueued ticketState = iota
	ticketRunning
	ticketDone
)

func (s ticketState) String() string {
	switch s {
	case ticketQueued:
		return "queued"
	case ticketRunning:
		return "running"
	default:
		return "done"
	}
}

// Ticket is a submitted query's handle: non-blocking result retrieval,
// waiting, and cancellation.
type Ticket struct {
	id        uint64
	svc       *Service
	spec      QuerySpec
	submitted time.Time
	deadline  time.Time
	coalesced bool
	tctx      trace.Context

	timer *time.Timer

	// Guarded by svc.mu until done is closed; immutable afterwards.
	fl  *flight
	res *Result
	err error

	done chan struct{}
}

// ID identifies the ticket within its service.
func (t *Ticket) ID() uint64 { return t.id }

// Done is closed when the query resolves (result, error, or cancellation).
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Poll returns the outcome without blocking; ok is false while the query is
// still pending.
func (t *Ticket) Poll() (res *Result, err error, ok bool) {
	select {
	case <-t.done:
		return t.res, t.err, true
	default:
		return nil, nil, false
	}
}

// Wait blocks until the query resolves or ctx is done. A ctx expiry does not
// cancel the query; call Cancel for that.
func (t *Ticket) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-t.done:
		return t.res, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Cancel withdraws the query: queued queries leave the queue, a running
// query's branch is aborted once no other client shares it, and an already
// resolved but uncollected result is closed. Safe to call any time.
func (t *Ticket) Cancel() { t.svc.cancelTicket(t, ErrCancelled) }

// flightState is a flight's lifecycle phase.
type flightState int

const (
	flightQueued flightState = iota
	flightRunning
	flightDone
)

// flight is one (possibly shared) branch-loop execution.
type flight struct {
	seq       uint64 // FIFO tiebreak
	key       string
	shareable bool
	spec      QuerySpec
	priority  int
	enqueued  time.Time
	state     flightState
	forked    bool
	forkSeq   uint64
	waiters   []*Ticket
	index     int // heap index; -1 when not queued
	tctx      trace.Context // creator's causal span context

	abortOnce sync.Once
	abort     chan struct{}
}

func (f *flight) abortNow() {
	f.abortOnce.Do(func() { close(f.abort) })
}

// flightQueueHeap orders pending flights by priority (higher first), then
// submission order (FIFO).
type flightQueueHeap []*flight

func (h flightQueueHeap) Len() int { return len(h) }
func (h flightQueueHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h flightQueueHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *flightQueueHeap) Push(x any) {
	f := x.(*flight)
	f.index = len(*h)
	*h = append(*h, f)
}
func (h *flightQueueHeap) Pop() any {
	old := *h
	n := len(old)
	f := old[n-1]
	old[n-1] = nil
	f.index = -1
	*h = old[:n-1]
	return f
}

// cacheEntry is one retained converged result.
type cacheEntry struct {
	key string
	sh  *shared
}

// Snapshot is a point-in-time copy of the service counters and levels.
type Snapshot struct {
	Submitted, Admitted, Coalesced, CacheHits int64
	Shed, Cancelled, Expired, Failed          int64
	Completed                                 int64
	QueueDepth, Inflight, Cached, Tickets     int
	// DegradeLevel is the current graceful-degradation level (0 = exact
	// service); ShedLowPriority counts queries dropped by the level-2
	// priority cut (a subset of Shed).
	DegradeLevel    int
	ShedLowPriority int64
}

// Service is the query-serving front end. Create one with New; it owns a
// worker pool, the wait queue, the in-flight coalescing table and the
// result cache.
type Service struct {
	b    Backend
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond
	queue   flightQueueHeap
	flights map[string]*flight // shareable queued/running flights by key
	cache   map[string]*cacheEntry
	tickets map[uint64]*Ticket
	nextID  uint64
	nextSeq uint64
	running int
	closed  bool

	wg     sync.WaitGroup
	sweepC chan struct{}

	// Counters (atomic via metrics? plain under mu is enough: all paths
	// already hold mu). Exposed through Snapshot and the obs scope.
	submitted, admitted, coalesced, cacheHits int64
	shed, cancelled, expired, failed          int64
	completed, shedLowPri                     int64

	// degraded is the graceful-degradation level set by the overload
	// controller; it only widens tolerances and cuts admission, it never
	// changes what an admitted query computes.
	degraded int

	obsScope  *obs.Scope
	obsDetach func()
	waitHist  *obs.StreamHist
	e2eHist   *obs.StreamHist
	staleHist *obs.StreamHist

	// spans records causal query-path spans (submit/cache/coalesce/queue/
	// fork/wait/serve) and shed escalations; nil-safe when no hub is wired.
	spans *trace.Tracer
}

// New assembles and starts a service over the backend. hub, when non-nil,
// receives the serving metrics (queue depth, admission/coalescing/cache/shed
// counters, wait and end-to-end latency histograms) and a /statusz section.
func New(b Backend, opts Options, hub *obs.Hub) *Service {
	opts.fill()
	s := &Service{
		b:       b,
		opts:    opts,
		flights: make(map[string]*flight),
		cache:   make(map[string]*cacheEntry),
		tickets: make(map[uint64]*Ticket),
		sweepC:  make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if hub != nil {
		s.spans = hub.Spans
		s.attachObs(hub)
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.wg.Add(1)
	go s.sweeper()
	return s
}

// attachObs registers the serving metrics under kind="queryserv".
func (s *Service) attachObs(hub *obs.Hub) {
	sc := hub.Registry.Scope(obs.L("kind", "queryserv"))
	s.obsScope = sc
	counter := func(name, help string, v *int64) {
		sc.GaugeFunc(name, help, func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(*v)
		})
	}
	// Monotone counts exposed as gauges reading the mu-guarded fields; the
	// hot path pays nothing beyond the mutex it already holds.
	counter("tornado_queries_submitted_total", "Queries submitted to the query service.", &s.submitted)
	counter("tornado_queries_admitted_total", "Branch-loop flights actually forked.", &s.admitted)
	counter("tornado_queries_coalesced_total", "Queries that shared another query's branch loop.", &s.coalesced)
	counter("tornado_queries_cache_hits_total", "Queries served from the freshness-bounded result cache.", &s.cacheHits)
	counter("tornado_queries_shed_total", "Queries shed with ErrOverloaded by the bounded wait queue.", &s.shed)
	counter("tornado_queries_cancelled_total", "Queries cancelled by their clients.", &s.cancelled)
	counter("tornado_queries_expired_total", "Queries that hit their deadline before resolving.", &s.expired)
	counter("tornado_queries_failed_total", "Queries that failed (fork error or branch abort).", &s.failed)
	counter("tornado_queries_completed_total", "Queries resolved with a result.", &s.completed)
	counter("tornado_queries_shed_low_priority_total",
		"Queries shed by the degrade-level-2 priority cut (subset of shed).", &s.shedLowPri)
	sc.GaugeFunc("tornado_query_degrade_level", "Graceful-degradation level (0 = exact service).", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.degraded)
	})
	sc.GaugeFunc("tornado_query_queue_depth", "Flights waiting for a worker.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.queue))
	})
	sc.GaugeFunc("tornado_queries_inflight", "Branch-loop flights currently running.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.running)
	})
	sc.GaugeFunc("tornado_query_cache_entries", "Converged results currently cached.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.cache))
	})
	s.waitHist = sc.Histogram("tornado_query_wait_seconds",
		"Queue wait from submission to the flight's fork.", nil)
	s.e2eHist = sc.Histogram("tornado_query_latency_seconds",
		"End-to-end query latency from submission to resolution.", nil)
	s.staleHist = sc.Histogram("tornado_query_staleness_deltas",
		"Input-journal deltas between a served result's fork and the present (journal-seq age at serve time).",
		obs.ExpBuckets(1, 2, 20))
	hub.AddStatus("queryserv", func() any {
		snap := s.Snapshot()
		return map[string]any{
			"submitted":         snap.Submitted,
			"admitted":          snap.Admitted,
			"coalesced":         snap.Coalesced,
			"cache_hits":        snap.CacheHits,
			"shed":              snap.Shed,
			"cancelled":         snap.Cancelled,
			"expired":           snap.Expired,
			"failed":            snap.Failed,
			"completed":         snap.Completed,
			"queue_depth":       snap.QueueDepth,
			"inflight":          snap.Inflight,
			"cached":            snap.Cached,
			"tickets":           snap.Tickets,
			"workers":           s.opts.Workers,
			"queue_cap":         s.opts.QueueCap,
			"degrade_level":     snap.DegradeLevel,
			"shed_low_priority": snap.ShedLowPriority,
		}
	})
	s.obsDetach = func() {
		hub.RemoveStatus("queryserv")
		sc.Close()
	}
}

// Snapshot returns the current counters and levels.
func (s *Service) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Snapshot{
		Submitted: s.submitted, Admitted: s.admitted, Coalesced: s.coalesced,
		CacheHits: s.cacheHits, Shed: s.shed, Cancelled: s.cancelled,
		Expired: s.expired, Failed: s.failed, Completed: s.completed,
		QueueDepth: len(s.queue), Inflight: s.running, Cached: len(s.cache),
		Tickets: len(s.tickets), DegradeLevel: s.degraded, ShedLowPriority: s.shedLowPri,
	}
}

// SetDegraded moves the service to the given graceful-degradation level
// (clamped at 0). Level 0 is exact service; level 1 imposes
// Options.DegradeStaleDeltas as a floor on every query's staleness tolerance
// so cache hits and coalescing absorb more load; level 2 additionally sheds
// queries below Options.ShedBelowPriority with ErrOverloaded before they can
// fork. The overload controller drives this; it is also callable directly.
func (s *Service) SetDegraded(level int) {
	if level < 0 {
		level = 0
	}
	s.mu.Lock()
	s.degraded = level
	s.mu.Unlock()
}

// Degraded returns the current graceful-degradation level.
func (s *Service) Degraded() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// Submit enqueues one query and returns its ticket. The fast paths resolve
// before returning: a cache hit within the spec's staleness bound hands back
// a ready ticket without forking, and a coalescable query joins an existing
// flight. ErrOverloaded means the wait queue was full and nothing was
// enqueued. ctx cancellation and deadline apply to the query itself, not
// just the Submit call.
func (s *Service) Submit(ctx context.Context, spec QuerySpec) (*Ticket, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	timeout := spec.Timeout
	if timeout <= 0 {
		timeout = s.opts.DefaultTimeout
	}
	now := time.Now()
	deadline := now.Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	key, shareable := spec.shareKey()

	// Each query is a trace head: the sampling decision happens once here,
	// and the context follows the query through cache/coalesce/queue/fork.
	var tctx trace.Context
	if s.spans.Enabled() {
		tctx = s.spans.Begin(s.spans.Now())
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.submitted++
	s.nextID++
	t := &Ticket{
		id:        s.nextID,
		svc:       s,
		spec:      spec,
		submitted: now,
		deadline:  deadline,
		tctx:      tctx,
		done:      make(chan struct{}),
	}
	s.tickets[t.id] = t

	// While degraded the service imposes its own staleness tolerance on top
	// of the query's: answers up to DegradeStaleDeltas behind the present are
	// handed out from the cache or a running flight rather than forking,
	// which is the "widen the window" rung of the degradation ladder.
	effStale := spec.MaxStaleDeltas
	if s.degraded >= 1 && s.opts.DegradeStaleDeltas > effStale {
		effStale = s.opts.DegradeStaleDeltas
	}

	// Fast path 1: the freshness-bounded cache.
	if shareable && !s.opts.DisableCache && s.opts.CacheCap > 0 {
		if e, ok := s.cache[key]; ok {
			cur := s.b.JournalSeq()
			lag := cur - e.sh.forkSeq
			age := now.Sub(e.sh.created)
			if lag == 0 || (lag <= effStale &&
				(spec.MaxStaleAge <= 0 || age <= spec.MaxStaleAge)) {
				s.cacheHits++
				e.sh.acquire()
				res := &Result{
					sh: e.sh, svc: s, CacheHit: true, Staleness: lag,
					Latency: time.Since(now),
				}
				if t.tctx.Traced() {
					// Submit -> cache handout; the query's whole life.
					s.spans.Stage(t.tctx, trace.StageQueryCache, 0, trace.NoVertex, 0, s.spans.Now())
				}
				s.resolveLocked(t, res, nil)
				s.mu.Unlock()
				return t, nil
			}
		}
	}

	// Fast path 2: coalesce onto a queued or running flight. A queued
	// flight will fork at a sequence >= the current one, so any query may
	// join it; a running flight already forked at forkSeq and may only
	// absorb queries whose staleness tolerance covers the inputs that
	// arrived since.
	if shareable && !s.opts.DisableCoalescing {
		if f, ok := s.flights[key]; ok {
			join := false
			switch f.state {
			case flightQueued:
				join = true
			case flightRunning:
				if f.forked {
					lag := s.b.JournalSeq() - f.forkSeq
					join = lag <= effStale
				}
			}
			if join {
				s.coalesced++
				t.coalesced = true
				t.fl = f
				if t.tctx.Traced() {
					// Submit -> join, linked to the flight it rides.
					ctx := t.tctx
					ctx.Link = f.tctx.Trace
					t.tctx = s.spans.Stage(ctx, trace.StageQueryCoalesce, 0, trace.NoVertex, 0, s.spans.Now())
				}
				f.waiters = append(f.waiters, t)
				if spec.Priority > f.priority && f.index >= 0 {
					f.priority = spec.Priority
					heap.Fix(&s.queue, f.index)
				}
				s.armTicketLocked(ctx, t)
				s.mu.Unlock()
				return t, nil
			}
		}
	}

	// Slow path: a new flight through the bounded wait queue. At degrade
	// level >= 2 low-priority traffic is cut here — it may still ride the
	// free fast paths above, but it cannot cost a fork.
	if s.degraded >= 2 && spec.Priority < s.opts.ShedBelowPriority {
		s.shed++
		s.shedLowPri++
		delete(s.tickets, t.id)
		s.mu.Unlock()
		// A shed is exactly what tail sampling force-retains: mark it and
		// open the escalation window.
		s.spans.Escalate(trace.MarkShed, t.tctx, s.spans.Now())
		return nil, fmt.Errorf("%w: degraded level %d sheds priority < %d (got %d)",
			ErrOverloaded, s.degraded, s.opts.ShedBelowPriority, spec.Priority)
	}
	if len(s.queue) >= s.opts.QueueCap {
		s.shed++
		delete(s.tickets, t.id)
		s.mu.Unlock()
		s.spans.Escalate(trace.MarkShed, t.tctx, s.spans.Now())
		return nil, fmt.Errorf("%w: %d flights queued (cap %d)", ErrOverloaded, s.opts.QueueCap, s.opts.QueueCap)
	}
	if t.tctx.Traced() {
		// Submit entry -> admitted to a fresh flight.
		t.tctx = s.spans.Stage(t.tctx, trace.StageQuerySubmit, 0, trace.NoVertex, 0, s.spans.Now())
	}
	s.nextSeq++
	f := &flight{
		seq:       s.nextSeq,
		key:       key,
		shareable: shareable,
		spec:      spec,
		priority:  spec.Priority,
		enqueued:  now,
		tctx:      t.tctx,
		abort:     make(chan struct{}),
		index:     -1,
	}
	f.waiters = []*Ticket{t}
	t.fl = f
	heap.Push(&s.queue, f)
	if shareable {
		s.flights[key] = f
	}
	s.armTicketLocked(ctx, t)
	s.cond.Signal()
	s.mu.Unlock()
	return t, nil
}

// armTicketLocked installs the ticket's deadline timer and, when the context
// is cancellable, a watcher goroutine. Caller holds s.mu.
func (s *Service) armTicketLocked(ctx context.Context, t *Ticket) {
	t.timer = time.AfterFunc(time.Until(t.deadline), func() {
		s.cancelTicket(t, fmt.Errorf("queryserv: query %d: %w", t.id, context.DeadlineExceeded))
	})
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.cancelTicket(t, ctx.Err())
			case <-t.done:
			}
		}()
	}
}

// resolveLocked finishes a ticket. Caller holds s.mu. Error resolutions are
// forgotten immediately; result resolutions stay tracked until the Result
// handle is closed (so Queries and HTTP GET can find them).
func (s *Service) resolveLocked(t *Ticket, res *Result, err error) {
	select {
	case <-t.done:
		return // already resolved
	default:
	}
	if t.timer != nil {
		t.timer.Stop()
	}
	t.fl = nil
	t.res, t.err = res, err
	if res != nil {
		id := t.id
		res.Coalesced = res.Coalesced || t.coalesced
		res.onClose = func() { s.forget(id) }
		s.completed++
		if s.e2eHist != nil {
			s.e2eHist.Observe(time.Since(t.submitted).Seconds())
		}
		if s.staleHist != nil {
			s.staleHist.Observe(float64(res.Staleness))
		}
		if t.coalesced && t.tctx.Traced() {
			// A coalesced waiter's own trace closes here: join -> handout
			// (its flight's trace carries the queue/fork/wait breakdown).
			s.spans.Stage(t.tctx, trace.StageQueryServe, 0, trace.NoVertex, 0, s.spans.Now())
		}
	} else {
		delete(s.tickets, t.id)
	}
	close(t.done)
}

// forget drops a resolved ticket from the table (its result was closed).
func (s *Service) forget(id uint64) {
	s.mu.Lock()
	delete(s.tickets, id)
	s.mu.Unlock()
}

// cancelTicket withdraws a ticket with the given cause. Unresolved tickets
// detach from their flight (aborting it if they were its last client);
// resolved-but-uncollected results are closed.
func (s *Service) cancelTicket(t *Ticket, cause error) {
	s.mu.Lock()
	select {
	case <-t.done:
		res := t.res
		s.mu.Unlock()
		if res != nil {
			res.Close() // idempotent; forgets the ticket
		}
		return
	default:
	}
	if errors.Is(cause, context.DeadlineExceeded) {
		s.expired++
	} else {
		s.cancelled++
	}
	f := t.fl
	var abort *flight
	if f != nil {
		for i, w := range f.waiters {
			if w == t {
				f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
				break
			}
		}
		if len(f.waiters) == 0 {
			// Last client gone: a queued flight is skipped when popped; a
			// running flight is aborted so its branch stops and unpins its
			// snapshot promptly rather than converging for nobody.
			if f.shareable && s.flights[f.key] == f {
				delete(s.flights, f.key)
			}
			if f.state == flightRunning {
				abort = f
			}
		}
	}
	s.resolveLocked(t, nil, cause)
	s.mu.Unlock()
	if abort != nil {
		abort.abortNow()
	}
}

// Cancel withdraws the identified query; it reports whether the ticket was
// known.
func (s *Service) Cancel(id uint64) bool {
	s.mu.Lock()
	t, ok := s.tickets[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	t.Cancel()
	return true
}

// Ticket returns a live (queued, running, or uncollected) ticket by ID.
func (s *Service) Ticket(id uint64) (*Ticket, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tickets[id]
	return t, ok
}

// TicketInfo is one row of Queries.
type TicketInfo struct {
	ID        uint64
	State     string // queued | running | done
	Priority  int
	Coalesced bool
	CacheHit  bool
	Age       time.Duration
	Err       string
}

// Queries lists the live tickets, oldest first.
func (s *Service) Queries() []TicketInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TicketInfo, 0, len(s.tickets))
	for _, t := range s.tickets {
		info := TicketInfo{
			ID:        t.id,
			Priority:  t.spec.Priority,
			Coalesced: t.coalesced,
			Age:       time.Since(t.submitted),
		}
		select {
		case <-t.done:
			info.State = ticketDone.String()
			if t.err != nil {
				info.Err = t.err.Error()
			}
			if t.res != nil {
				info.CacheHit = t.res.CacheHit
			}
		default:
			info.State = ticketQueued.String()
			if t.fl != nil && t.fl.state == flightRunning {
				info.State = ticketRunning.String()
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// worker runs queued flights until the service closes.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && len(s.queue) == 0 {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		f := heap.Pop(&s.queue).(*flight)
		if len(f.waiters) == 0 {
			// Every client cancelled while it waited.
			f.state = flightDone
			if f.shareable && s.flights[f.key] == f {
				delete(s.flights, f.key)
			}
			s.mu.Unlock()
			continue
		}
		f.state = flightRunning
		s.running++
		s.mu.Unlock()
		s.execute(f)
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}
}

// execute forks and drives one flight to convergence (or abort), then fans
// the result out to every waiter and feeds the cache.
func (s *Service) execute(f *flight) {
	start := time.Now()
	if f.tctx.Traced() {
		// Queue dwell closes when a worker picks the flight up.
		f.tctx = s.spans.Stage(f.tctx, trace.StageQueryQueue, 0, trace.NoVertex, 0, s.spans.Now())
	}
	br, spec, loop, err := s.b.Fork(f.spec.Override, f.spec.Seed)
	if f.tctx.Traced() {
		f.tctx = s.spans.Stage(f.tctx, trace.StageQueryFork, 0, trace.NoVertex, uint64(loop), s.spans.Now())
	}
	s.mu.Lock()
	if err != nil {
		s.failed += int64(len(f.waiters))
		ws := f.waiters
		f.waiters = nil
		f.state = flightDone
		if f.shareable && s.flights[f.key] == f {
			delete(s.flights, f.key)
		}
		for _, w := range ws {
			s.resolveLocked(w, nil, fmt.Errorf("queryserv: fork: %w", err))
		}
		s.mu.Unlock()
		return
	}
	s.admitted++
	f.forkSeq = br.ForkJournalSeq()
	f.forked = true
	if s.waitHist != nil {
		s.waitHist.Observe(start.Sub(f.enqueued).Seconds())
	}
	s.mu.Unlock()

	select {
	case <-br.Done():
		latency := time.Since(start)
		if s.b.OnConverged != nil {
			s.b.OnConverged(latency)
		}
		if f.tctx.Traced() {
			// Fork -> branch convergence: the iterate cost of the query.
			f.tctx = s.spans.Stage(f.tctx, trace.StageQueryWait, 0, trace.NoVertex, uint64(loop), s.spans.Now())
		}
		sh := &shared{
			br: br, spec: spec, loop: loop, forkSeq: f.forkSeq,
			created: time.Now(), drop: s.b.Drop,
		}
		sh.refs = 1 // construction reference, released below
		var releases []*shared
		s.mu.Lock()
		f.state = flightDone
		if f.shareable && s.flights[f.key] == f {
			delete(s.flights, f.key)
		}
		ws := f.waiters
		f.waiters = nil
		cur := s.b.JournalSeq()
		for _, w := range ws {
			sh.acquire()
			res := &Result{
				sh: sh, svc: s,
				Latency:   time.Since(w.submitted),
				Coalesced: w.coalesced,
				Staleness: cur - f.forkSeq,
			}
			s.resolveLocked(w, res, nil)
		}
		if f.shareable && !s.opts.DisableCache && s.opts.CacheCap > 0 && !s.closed {
			releases = s.cacheInsertLocked(f.key, sh)
		}
		if f.tctx.Traced() {
			// Convergence -> every waiter resolved.
			s.spans.Stage(f.tctx, trace.StageQueryServe, 0, trace.NoVertex, uint64(loop), s.spans.Now())
		}
		s.mu.Unlock()
		for _, old := range releases {
			old.release()
		}
		sh.release() // drop the construction reference
	case <-f.abort:
		// Every client left (cancelled or expired): stop the branch now so
		// its fork pin releases and journal compaction is not held back by
		// a query nobody is waiting for.
		br.Stop()
		s.b.Drop(loop)
	}
}

// cacheInsertLocked retains sh under key, evicting the key's previous entry
// and, beyond CacheCap, the oldest entries. It returns the shares to release
// once the service mutex is dropped. Caller holds s.mu.
func (s *Service) cacheInsertLocked(key string, sh *shared) (releases []*shared) {
	if old, ok := s.cache[key]; ok {
		releases = append(releases, old.sh)
	}
	sh.acquire()
	s.cache[key] = &cacheEntry{key: key, sh: sh}
	for len(s.cache) > s.opts.CacheCap {
		oldestKey := ""
		var oldest *cacheEntry
		for k, e := range s.cache {
			if oldest == nil || e.sh.created.Before(oldest.sh.created) {
				oldestKey, oldest = k, e
			}
		}
		delete(s.cache, oldestKey)
		releases = append(releases, oldest.sh)
	}
	return releases
}

// sweeper invalidates cache entries that outlived the service staleness
// bounds, releasing their snapshot pins even when no queries arrive.
func (s *Service) sweeper() {
	defer s.wg.Done()
	tick := time.NewTicker(s.opts.SweepEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.sweepC:
			return
		case <-tick.C:
		}
		cur := s.b.JournalSeq()
		now := time.Now()
		var releases []*shared
		s.mu.Lock()
		for k, e := range s.cache {
			if now.Sub(e.sh.created) > s.opts.CacheMaxAge || cur-e.sh.forkSeq > s.opts.CacheMaxDeltas {
				delete(s.cache, k)
				releases = append(releases, e.sh)
			}
		}
		s.mu.Unlock()
		for _, sh := range releases {
			sh.release()
		}
	}
}

// Close drains the service: queued queries resolve with ErrClosed, running
// flights abort, cached results release, and the workers exit. Uncollected
// results are closed. Idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var aborts []*flight
	var results []*Result
	for _, t := range s.tickets {
		select {
		case <-t.done:
			if t.res != nil {
				results = append(results, t.res)
			}
			continue
		default:
		}
		if f := t.fl; f != nil {
			for i, w := range f.waiters {
				if w == t {
					f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
					break
				}
			}
			if len(f.waiters) == 0 && f.state == flightRunning {
				aborts = append(aborts, f)
			}
		}
		s.resolveLocked(t, nil, ErrClosed)
	}
	var releases []*shared
	for k, e := range s.cache {
		delete(s.cache, k)
		releases = append(releases, e.sh)
	}
	s.queue = nil
	s.cond.Broadcast()
	s.mu.Unlock()

	close(s.sweepC)
	for _, f := range aborts {
		f.abortNow()
	}
	for _, r := range results {
		r.Close()
	}
	for _, sh := range releases {
		sh.release()
	}
	s.wg.Wait()
	if s.obsDetach != nil {
		s.obsDetach()
	}
}
