package queryserv

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tornado/internal/algorithms"
	"tornado/internal/datasets"
	"tornado/internal/engine"
	"tornado/internal/storage"
	"tornado/internal/stream"
)

const waitFor = 30 * time.Second

// harness is a real main-loop engine plus the Backend a System would wire in.
type harness struct {
	t     *testing.T
	e     *engine.Engine
	store *storage.MemStore
	next  atomic.Uint64
	live  atomic.Int64 // branch loops forked minus dropped
}

func newHarness(t *testing.T, prog engine.Program, procs int, bound int64) *harness {
	t.Helper()
	store := storage.NewMemStore()
	e, err := engine.New(engine.Config{
		Processors: procs,
		DelayBound: bound,
		Kind:       engine.MainLoop,
		LoopID:     storage.MainLoop,
		Store:      store,
		Program:    prog,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	t.Cleanup(e.Stop)
	return &harness{t: t, e: e, store: store}
}

func (h *harness) backend() Backend {
	return Backend{
		Fork: func(override func(*engine.Config), seed func(*engine.Engine)) (*engine.Engine, engine.ForkSpec, storage.LoopID, error) {
			loop := storage.LoopID(h.next.Add(1))
			br, spec, err := h.e.ForkBranch(loop, override, seed)
			if err != nil {
				return nil, engine.ForkSpec{}, 0, err
			}
			h.live.Add(1)
			return br, spec, loop, nil
		},
		Drop: func(loop storage.LoopID) {
			_ = h.store.DropLoop(loop)
			h.live.Add(-1)
		},
		JournalSeq: h.e.JournalSeq,
	}
}

func (h *harness) newService(t *testing.T, opts Options) *Service {
	t.Helper()
	s := New(h.backend(), opts, nil)
	t.Cleanup(s.Close)
	return s
}

// checkNoLeaks asserts every branch loop was torn down and every fork pin
// released. Teardown runs asynchronously after the last handle closes, so
// poll briefly.
func (h *harness) checkNoLeaks() {
	h.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if h.live.Load() == 0 && h.e.PinnedForks() == 0 {
			return
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("leak: %d branch loops live, %d fork pins held", h.live.Load(), h.e.PinnedForks())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func sssp(t *testing.T, procs int, bound int64) (*harness, []stream.Tuple) {
	t.Helper()
	tuples := datasets.PowerLawGraph(120, 3, 21)
	h := newHarness(t, algorithms.SSSP{Source: 0}, procs, bound)
	h.e.IngestAll(tuples)
	if err := h.e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	return h, tuples
}

func checkSSSP(t *testing.T, res *Result, tuples []stream.Tuple) {
	t.Helper()
	want := algorithms.RefSSSP(tuples[:res.ForkSeq()], 0, 64)
	err := res.Scan(func(id stream.VertexID, state any) error {
		if got := state.(*algorithms.SSSPState).Length; got != want[id] {
			t.Fatalf("vertex %d: got %d, reference %d (forkSeq %d)", id, got, want[id], res.ForkSeq())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubmitMatchesReference(t *testing.T) {
	h, tuples := sssp(t, 3, 32)
	s := h.newService(t, Options{DisableCache: true})
	tk, err := s.Submit(context.Background(), QuerySpec{Timeout: waitFor})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.ForkSeq() != uint64(len(tuples)) {
		t.Fatalf("forkSeq %d; want %d", res.ForkSeq(), len(tuples))
	}
	checkSSSP(t, res, tuples)
	res.Close()
	res.Close() // idempotent
	s.Close()
	h.checkNoLeaks()
}

func TestCoalescingStorm(t *testing.T) {
	h, tuples := sssp(t, 3, 32)
	// Cache on: submits that arrive after the first flight converges are
	// lag-0 cache hits; submits during the flight coalesce onto it. Either
	// way the fork count stays tiny.
	s := h.newService(t, Options{Workers: 2})

	const clients = 64
	var wg sync.WaitGroup
	results := make([]*Result, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk, err := s.Submit(context.Background(), QuerySpec{Timeout: waitFor})
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = tk.Wait(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for _, res := range results {
		checkSSSP(t, res, tuples)
	}
	snap := s.Snapshot()
	if snap.Admitted > 4 {
		t.Fatalf("%d identical concurrent queries forked %d branches; want <= 4", clients, snap.Admitted)
	}
	if snap.Coalesced+snap.CacheHits < clients/2 {
		t.Fatalf("only %d of %d queries shared a branch (%d coalesced, %d cache hits)",
			snap.Coalesced+snap.CacheHits, clients, snap.Coalesced, snap.CacheHits)
	}
	for _, res := range results {
		res.Close()
	}
	s.Close()
	h.checkNoLeaks()
}

func TestCacheHitAndInvalidation(t *testing.T) {
	h, tuples := sssp(t, 2, 32)
	s := h.newService(t, Options{SweepEvery: time.Hour}) // no janitor interference

	tk, err := s.Submit(context.Background(), QuerySpec{Timeout: waitFor})
	if err != nil {
		t.Fatal(err)
	}
	first, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	first.Close()

	// Quiescent system: even a zero-tolerance query is a cache hit (lag 0).
	tk, err = s.Submit(context.Background(), QuerySpec{Timeout: waitFor})
	if err != nil {
		t.Fatal(err)
	}
	hit, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit || hit.Staleness != 0 {
		t.Fatalf("quiescent re-issue: CacheHit=%v Staleness=%d; want hit with 0 staleness", hit.CacheHit, hit.Staleness)
	}
	hit.Close()

	// Ingest past the fork: zero tolerance must re-fork, a declared
	// tolerance is served stale from the cache.
	extra := []stream.Tuple{stream.AddEdge(9001, 0, 117), stream.AddEdge(9002, 117, 118)}
	h.e.IngestAll(extra)
	if err := h.e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}

	tk, err = s.Submit(context.Background(), QuerySpec{Timeout: waitFor, MaxStaleDeltas: 100})
	if err != nil {
		t.Fatal(err)
	}
	stale, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !stale.CacheHit || stale.Staleness != uint64(len(extra)) {
		t.Fatalf("stale-tolerant re-issue: CacheHit=%v Staleness=%d; want hit %d deltas stale", stale.CacheHit, stale.Staleness, len(extra))
	}
	// The stale answer reflects exactly the pre-ingest prefix.
	checkSSSP(t, stale, tuples)
	stale.Close()

	tk, err = s.Submit(context.Background(), QuerySpec{Timeout: waitFor})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fresh.CacheHit {
		t.Fatal("zero-tolerance query served a stale cached result")
	}
	if fresh.ForkSeq() != uint64(len(tuples)+len(extra)) {
		t.Fatalf("fresh forkSeq %d; want %d", fresh.ForkSeq(), len(tuples)+len(extra))
	}
	checkSSSP(t, fresh, append(append([]stream.Tuple{}, tuples...), extra...))
	fresh.Close()

	snap := s.Snapshot()
	if snap.CacheHits != 2 {
		t.Fatalf("cache hits = %d; want 2", snap.CacheHits)
	}
	s.Close()
	h.checkNoLeaks()
}

func TestSeededQueriesArePrivate(t *testing.T) {
	h, _ := sssp(t, 2, 32)
	s := h.newService(t, Options{})
	for i := 0; i < 2; i++ {
		tk, err := s.Submit(context.Background(), QuerySpec{Timeout: waitFor, Seed: func(*engine.Engine) {}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHit || res.Coalesced {
			t.Fatalf("seeded query %d shared a branch: CacheHit=%v Coalesced=%v", i, res.CacheHit, res.Coalesced)
		}
		res.Close()
	}
	if snap := s.Snapshot(); snap.Admitted != 2 {
		t.Fatalf("admitted = %d; want one private fork per seeded query", snap.Admitted)
	}
	s.Close()
	h.checkNoLeaks()
}

func TestShedWhenOverloaded(t *testing.T) {
	h, _ := sssp(t, 2, 32)
	s := h.newService(t, Options{Workers: 1, QueueCap: 1, DisableCache: true})

	// Occupy the only worker with a fork whose seed hook blocks.
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	tk1, err := s.Submit(context.Background(), QuerySpec{
		Timeout: waitFor,
		Seed:    func(*engine.Engine) { once.Do(func() { close(entered) }); <-gate },
	})
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	// Fill the queue (seeded: private, cannot coalesce with anything).
	tk2, err := s.Submit(context.Background(), QuerySpec{Timeout: waitFor, Seed: func(*engine.Engine) {}})
	if err != nil {
		t.Fatal(err)
	}
	// Queue full: the third query is shed.
	if _, err := s.Submit(context.Background(), QuerySpec{Timeout: waitFor, Seed: func(*engine.Engine) {}}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit into a full queue: err = %v; want ErrOverloaded", err)
	}
	if snap := s.Snapshot(); snap.Shed != 1 {
		t.Fatalf("shed = %d; want 1", snap.Shed)
	}

	close(gate)
	for _, tk := range []*Ticket{tk1, tk2} {
		res, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		res.Close()
	}
	s.Close()
	h.checkNoLeaks()
}

func TestPriorityOrdering(t *testing.T) {
	h, _ := sssp(t, 2, 32)
	s := h.newService(t, Options{Workers: 1, DisableCache: true})

	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	blocker, err := s.Submit(context.Background(), QuerySpec{
		Timeout: waitFor,
		Seed:    func(*engine.Engine) { once.Do(func() { close(entered) }); <-gate },
	})
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	// Three private queries queued behind the blocker; their seed hooks
	// record fork order.
	var mu sync.Mutex
	var order []int
	tks := make([]*Ticket, 0, 3)
	for _, prio := range []int{1, 5, 3} {
		p := prio
		tk, err := s.Submit(context.Background(), QuerySpec{
			Timeout:  waitFor,
			Priority: p,
			Seed: func(*engine.Engine) {
				mu.Lock()
				order = append(order, p)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}

	close(gate)
	for _, tk := range append([]*Ticket{blocker}, tks...) {
		res, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		res.Close()
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != 5 || order[1] != 3 || order[2] != 1 {
		t.Fatalf("fork order %v; want [5 3 1] (priority desc)", order)
	}
	s.Close()
	h.checkNoLeaks()
}

func TestCancelQueued(t *testing.T) {
	h, _ := sssp(t, 2, 32)
	s := h.newService(t, Options{Workers: 1, DisableCache: true})

	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	blocker, err := s.Submit(context.Background(), QuerySpec{
		Timeout: waitFor,
		Seed:    func(*engine.Engine) { once.Do(func() { close(entered) }); <-gate },
	})
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	victim, err := s.Submit(context.Background(), QuerySpec{Timeout: waitFor, Seed: func(*engine.Engine) {}})
	if err != nil {
		t.Fatal(err)
	}
	victim.Cancel()
	if _, err := victim.Wait(context.Background()); !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled ticket resolved with %v; want ErrCancelled", err)
	}
	if !s.Cancel(victim.ID()) {
		// Already forgotten: also fine — Cancel by ID on an unknown ticket
		// must simply report false, not panic.
		t.Log("ticket already forgotten after cancellation")
	}

	close(gate)
	res, err := blocker.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	// The cancelled flight must be skipped, not forked.
	if snap := s.Snapshot(); snap.Admitted != 1 || snap.Cancelled != 1 {
		t.Fatalf("admitted=%d cancelled=%d; want 1 and 1", snap.Admitted, snap.Cancelled)
	}
	s.Close()
	h.checkNoLeaks()
}

func TestContextCancelPropagates(t *testing.T) {
	h, _ := sssp(t, 2, 32)
	s := h.newService(t, Options{Workers: 1, DisableCache: true})

	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	blocker, err := s.Submit(context.Background(), QuerySpec{
		Timeout: waitFor,
		Seed:    func(*engine.Engine) { once.Do(func() { close(entered) }); <-gate },
	})
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	queued, err := s.Submit(ctx, QuerySpec{Timeout: waitFor, Seed: func(*engine.Engine) {}})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := queued.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("ctx-cancelled ticket resolved with %v; want context.Canceled", err)
	}

	close(gate)
	res, err := blocker.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	s.Close()
	h.checkNoLeaks()
}

// babbler never quiesces: every gather re-scatters, so a branch forked from
// it can never converge and queries against it must time out.
type babbler struct{}

type babblerState struct{ N int64 }

func init() { engine.RegisterStateType(&babblerState{}) }

func (babbler) Init(ctx engine.Context)              { ctx.SetState(&babblerState{}) }
func (babbler) OnInput(engine.Context, stream.Tuple) {}
func (babbler) Gather(ctx engine.Context, _ stream.VertexID, _ int64, _ any) {
	ctx.State().(*babblerState).N++
}
func (babbler) Scatter(ctx engine.Context) {
	st := ctx.State().(*babblerState)
	for _, t := range ctx.Targets() {
		ctx.Emit(t, st.N)
	}
}

func TestDeadlineAbortReleasesPins(t *testing.T) {
	h := newHarness(t, babbler{}, 1, 4)
	h.e.Ingest(stream.AddEdge(1, 0, 1))
	h.e.Ingest(stream.AddEdge(2, 1, 0))
	time.Sleep(20 * time.Millisecond)

	s := h.newService(t, Options{DisableCache: true})
	tk, err := s.Submit(context.Background(), QuerySpec{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("non-converging query resolved with %v; want DeadlineExceeded", err)
	}
	// The expired query was its branch's only client: the abort must stop
	// the branch and release its snapshot pin promptly, well before the
	// query's nominal convergence budget would have elapsed.
	h.checkNoLeaks()
	if snap := s.Snapshot(); snap.Expired != 1 {
		t.Fatalf("expired = %d; want 1", snap.Expired)
	}
	s.Close()
}

func TestCloseResolvesQueued(t *testing.T) {
	h, _ := sssp(t, 2, 32)
	s := New(h.backend(), Options{Workers: 1, DisableCache: true}, nil)

	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	blocker, err := s.Submit(context.Background(), QuerySpec{
		Timeout: waitFor,
		Seed:    func(*engine.Engine) { once.Do(func() { close(entered) }); <-gate },
	})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	queued, err := s.Submit(context.Background(), QuerySpec{Timeout: waitFor, Seed: func(*engine.Engine) {}})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	if _, err := queued.Wait(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("queued ticket at Close resolved with %v; want ErrClosed", err)
	}
	if _, err := blocker.Wait(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("running ticket at Close resolved with %v; want ErrClosed", err)
	}
	close(gate) // let the blocked fork finish so Close can drain
	<-done
	if _, err := s.Submit(context.Background(), QuerySpec{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: %v; want ErrClosed", err)
	}
	h.checkNoLeaks()
}

// TestDegradedWidensStaleness: at degrade level 1 the service imposes its own
// staleness floor, so a query demanding exactness is served from a cache
// entry the main loop has already moved past instead of costing a fork.
func TestDegradedWidensStaleness(t *testing.T) {
	h, tuples := sssp(t, 3, 32)
	s := h.newService(t, Options{DegradeStaleDeltas: 1 << 20})

	ingest := func(seed int64) {
		extra := datasets.PowerLawGraph(120, 2, seed)
		tuples = append(tuples, extra...)
		h.e.IngestAll(extra)
		if err := h.e.WaitQuiesce(waitFor); err != nil {
			t.Fatal(err)
		}
	}

	submitExact := func() *Result {
		tk, err := s.Submit(context.Background(), QuerySpec{Timeout: waitFor})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Seed the cache, then move the main loop past it.
	res1 := submitExact()
	res1.Close()
	ingest(71)

	// Level 0: an exact query must refork — the cached answer is stale.
	res2 := submitExact()
	if res2.CacheHit {
		t.Fatal("exact query at level 0 served a stale cache entry")
	}
	checkSSSP(t, res2, tuples)
	res2.Close()
	ingest(73)

	// Level 1: the same exact query now rides the stale cache entry.
	s.SetDegraded(1)
	if s.Degraded() != 1 {
		t.Fatalf("Degraded = %d, want 1", s.Degraded())
	}
	res3 := submitExact()
	if !res3.CacheHit {
		t.Fatal("degraded level 1 did not widen the staleness window to the cache")
	}
	if res3.Staleness == 0 {
		t.Fatal("degraded cache hit reports zero staleness; the loop had moved on")
	}
	checkSSSP(t, res3, tuples)
	res3.Close()

	// Level 2 still serves low-priority queries from the cache: the priority
	// cut guards the fork path, not the free paths.
	s.SetDegraded(2)
	tk, err := s.Submit(context.Background(), QuerySpec{Timeout: waitFor, Priority: 0})
	if err != nil {
		t.Fatalf("cache-servable low-priority query shed at level 2: %v", err)
	}
	res4, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res4.CacheHit {
		t.Fatal("level-2 low-priority query forked instead of hitting the cache")
	}
	res4.Close()

	s.SetDegraded(-3) // clamps to 0
	if s.Degraded() != 0 {
		t.Fatalf("Degraded after clamp = %d, want 0", s.Degraded())
	}
	s.Close()
	h.checkNoLeaks()
}

// TestDegradedShedsLowPriority: at level 2 queries below ShedBelowPriority
// are refused with ErrOverloaded before they can fork, higher priorities are
// served, and relaxing back to level 0 restores full admission.
func TestDegradedShedsLowPriority(t *testing.T) {
	h, tuples := sssp(t, 2, 32)
	s := h.newService(t, Options{DisableCache: true, DisableCoalescing: true})

	s.SetDegraded(2)
	if _, err := s.Submit(context.Background(), QuerySpec{Timeout: waitFor}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("priority-0 submit at level 2 = %v, want ErrOverloaded", err)
	}
	snap := s.Snapshot()
	if snap.ShedLowPriority != 1 || snap.Shed != 1 {
		t.Fatalf("ShedLowPriority = %d Shed = %d, want 1 and 1", snap.ShedLowPriority, snap.Shed)
	}
	if snap.DegradeLevel != 2 {
		t.Fatalf("DegradeLevel = %d, want 2", snap.DegradeLevel)
	}

	tk, err := s.Submit(context.Background(), QuerySpec{Timeout: waitFor, Priority: 1})
	if err != nil {
		t.Fatalf("priority-1 submit at level 2: %v", err)
	}
	res, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, res, tuples)
	res.Close()

	s.SetDegraded(0)
	tk, err = s.Submit(context.Background(), QuerySpec{Timeout: waitFor})
	if err != nil {
		t.Fatalf("priority-0 submit after relaxing: %v", err)
	}
	res, err = tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	if got := s.Snapshot().ShedLowPriority; got != 1 {
		t.Fatalf("ShedLowPriority after relax = %d, want still 1", got)
	}
	s.Close()
	h.checkNoLeaks()
}

// TestResultFreshnessTracksLag pins Result.Freshness(): a held result's
// staleness watermark is live — it reads 0 while the main loop sits at the
// fork's journal sequence and grows by exactly the number of inputs ingested
// afterwards (the slow-consumer case: the handle outlives its exactness).
func TestResultFreshnessTracksLag(t *testing.T) {
	h, tuples := sssp(t, 3, 32)
	s := h.newService(t, Options{DisableCache: true})
	tk, err := s.Submit(context.Background(), QuerySpec{Timeout: waitFor})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if got := res.Freshness(); got != 0 {
		t.Fatalf("Freshness() = %d right after an exact serve; want 0", got)
	}
	if res.Staleness != 0 {
		t.Fatalf("Staleness = %d at serve; want 0", res.Staleness)
	}

	// The slow consumer holds the handle while the main loop moves on.
	const extra = 37
	more := make([]stream.Tuple, 0, extra)
	for i := 0; i < extra; i++ {
		more = append(more, stream.AddEdge(stream.Timestamp(10_000+i),
			stream.VertexID(i%50), stream.VertexID((i+7)%50)))
	}
	h.e.IngestAll(more)
	if got := res.Freshness(); got != extra {
		t.Fatalf("Freshness() = %d after %d more inputs; want %d", got, extra, extra)
	}
	if want := h.e.JournalSeq() - res.ForkSeq(); res.Freshness() != want {
		t.Fatalf("Freshness() = %d; JournalSeq-ForkSeq = %d", res.Freshness(), want)
	}
	if err := h.e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	_ = tuples
}
