package sampling

import (
	"math"
	"testing"
)

func TestFillPhaseKeepsEverything(t *testing.T) {
	r := NewReservoir[int](5, 1)
	for i := 0; i < 5; i++ {
		if !r.Offer(i) {
			t.Fatalf("Offer(%d) during fill phase rejected", i)
		}
	}
	if r.Len() != 5 || r.Seen() != 5 {
		t.Fatalf("Len=%d Seen=%d; want 5, 5", r.Len(), r.Seen())
	}
	got := map[int]bool{}
	for _, v := range r.Sample() {
		got[v] = true
	}
	for i := 0; i < 5; i++ {
		if !got[i] {
			t.Fatalf("item %d missing after fill phase: %v", i, r.Sample())
		}
	}
}

func TestSizeNeverExceedsCapacity(t *testing.T) {
	r := NewReservoir[int](8, 2)
	for i := 0; i < 1000; i++ {
		r.Offer(i)
		if r.Len() > 8 {
			t.Fatalf("reservoir grew to %d > capacity 8", r.Len())
		}
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d; want 8", r.Len())
	}
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d; want 8", r.Cap())
	}
}

// TestUniformity checks the defining property: after streaming n items
// through a size-k reservoir, each item survives with probability ~k/n,
// regardless of arrival position. This is what makes reservoir-sampled SGD a
// valid initial guess per Section 3.2 of the paper.
func TestUniformity(t *testing.T) {
	const (
		k      = 10
		n      = 200
		trials = 4000
	)
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir[int](k, int64(trial))
		for i := 0; i < n; i++ {
			r.Offer(i)
		}
		for _, v := range r.Sample() {
			counts[v]++
		}
	}
	want := float64(trials) * k / n // expected survivals per item
	// Compare the average survival rate of the oldest and newest deciles;
	// biased sampling (the failure mode the paper warns about) would skew
	// these badly.
	decile := n / 10
	var old, fresh float64
	for i := 0; i < decile; i++ {
		old += float64(counts[i])
		fresh += float64(counts[n-1-i])
	}
	old /= float64(decile)
	fresh /= float64(decile)
	if math.Abs(old-want)/want > 0.15 || math.Abs(fresh-want)/want > 0.15 {
		t.Fatalf("survival rates: oldest decile %.1f, newest decile %.1f; want ~%.1f each", old, fresh, want)
	}
}

func TestSnapshotIndependent(t *testing.T) {
	r := NewReservoir[int](2, 3)
	r.Offer(1)
	r.Offer(2)
	snap := r.Snapshot()
	for i := 0; i < 100; i++ {
		r.Offer(100 + i)
	}
	if snap[0] != 1 || snap[1] != 2 {
		t.Fatalf("snapshot mutated by later offers: %v", snap)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := NewReservoir[int](4, 42)
	b := NewReservoir[int](4, 42)
	for i := 0; i < 500; i++ {
		a.Offer(i)
		b.Offer(i)
	}
	sa, sb := a.Sample(), b.Sample()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("same seed diverged: %v vs %v", sa, sb)
		}
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewReservoir(0) should panic")
		}
	}()
	NewReservoir[int](0, 1)
}
