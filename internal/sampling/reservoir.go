// Package sampling implements reservoir sampling (Vitter's Algorithm R).
//
// Section 3.2 of the paper: for SGD over an evolving instance stream, the
// main loop's approximation is only a *valid* initial guess (correctness
// condition) if instances are sampled uniformly regardless of arrival time.
// Plain random sampling over-weights old instances; reservoir sampling keeps
// every instance in the sample with identical probability k/n.
package sampling

import "math/rand"

// Reservoir maintains a uniform sample of size at most k over a stream of
// items. It is not safe for concurrent use; each sampler vertex owns one.
type Reservoir[T any] struct {
	k     int
	n     int64 // items offered so far
	items []T
	rng   *rand.Rand
}

// NewReservoir returns a reservoir of capacity k drawing randomness from the
// given seed. k must be positive.
func NewReservoir[T any](k int, seed int64) *Reservoir[T] {
	if k <= 0 {
		panic("sampling: reservoir capacity must be positive")
	}
	return &Reservoir[T]{
		k:     k,
		items: make([]T, 0, k),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Offer presents one stream item to the reservoir. It reports whether the
// item was admitted (either appended, or replacing an earlier sample).
func (r *Reservoir[T]) Offer(item T) bool {
	r.n++
	if len(r.items) < r.k {
		r.items = append(r.items, item)
		return true
	}
	j := r.rng.Int63n(r.n)
	if j < int64(r.k) {
		r.items[j] = item
		return true
	}
	return false
}

// Sample returns the current sample. The returned slice aliases the
// reservoir's storage and is invalidated by the next Offer; copy it if it
// must outlive the call.
func (r *Reservoir[T]) Sample() []T { return r.items }

// Snapshot returns an independent copy of the current sample.
func (r *Reservoir[T]) Snapshot() []T {
	out := make([]T, len(r.items))
	copy(out, r.items)
	return out
}

// Len returns the current sample size (min(k, items seen)).
func (r *Reservoir[T]) Len() int { return len(r.items) }

// Seen returns the number of items offered so far.
func (r *Reservoir[T]) Seen() int64 { return r.n }

// Cap returns the reservoir capacity k.
func (r *Reservoir[T]) Cap() int { return r.k }
