// Package wirenode runs a minimal distributed SSSP directly on the wire
// transport: one master process (NodeID 0) and N worker processes joined by
// real sockets. It exists to exercise the socket substrate the way the paper
// deploys Tornado — as separate OS processes whose only shared state is the
// wire — and is the engine room of cmd/tornado-node and the multi-process
// chaos soak.
//
// The protocol is deliberately tiny:
//
//   - a worker listens on its own port, dials the master's seed address and
//     sends Hello from a self-chosen temporary NodeID;
//   - the master assigns dense worker IDs 1..N and broadcasts the full
//     address table (Assign), then ships each worker its partition of the
//     edge list (Load/LoadDone) — vertex v is owned by worker 1 + v mod N;
//   - workers relax distances asynchronously, sending Relax messages to the
//     owners of boundary targets; the transport's cumulative-ack/resend
//     machinery makes every message exactly-once end to end, so the
//     Chandy-Lamport-style double probe (Probe/ProbeAck: matching global
//     sent/received counts and idle inboxes in two consecutive rounds)
//     detects termination exactly;
//   - the master fetches per-worker distance maps (Fetch/Result) and sends
//     Quit.
//
// Socket-level chaos (drop, duplicate, corrupt) can be injected per process
// through transport.WireFaults; the run must still terminate with the exact
// fixed point because corruption is detected (CRC) and repaired (resend).
package wirenode

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"os"
	"sync"
	"time"

	"tornado/internal/transport"
)

// Edge is one weighted directed edge of the shipped graph.
type Edge struct {
	Src, Dst uint64
	W        int64
}

// Protocol messages. Everything crosses the wire in gob, so every field is
// exported and every type registered.
type (
	// Hello announces a joining worker and the address it listens on.
	Hello struct{ Addr string }
	// Assign gives a worker its dense ID and the full cluster table.
	Assign struct {
		ID      int32
		Workers int32
		Table   map[int32]string
	}
	// Load ships one chunk of the worker's edge partition.
	Load struct{ Edges []Edge }
	// LoadDone ends partition shipping and names the SSSP source.
	LoadDone struct{ Source uint64 }
	// Relax proposes a tentative distance for a vertex.
	Relax struct {
		Dst  uint64
		Dist int64
	}
	// Probe asks a worker for its termination counters.
	Probe struct{ Epoch int64 }
	// ProbeAck reports them: Relax messages sent and received so far. A
	// Relax still in flight (or parked in an inbox behind the probe) was
	// counted by its sender but not yet by its receiver, so the global sums
	// disagree and termination is not declared.
	ProbeAck struct {
		Epoch      int64
		Sent, Recv int64
	}
	// Fetch asks for the worker's distance map; Result returns it.
	Fetch  struct{}
	Result struct{ Dists map[uint64]int64 }
	// Quit tells the worker to exit.
	Quit struct{}
)

func init() {
	gob.Register(Hello{})
	gob.Register(Assign{})
	gob.Register(Load{})
	gob.Register(LoadDone{})
	gob.Register(Relax{})
	gob.Register(Probe{})
	gob.Register(ProbeAck{})
	gob.Register(Fetch{})
	gob.Register(Result{})
	gob.Register(Quit{})
}

const masterID transport.NodeID = 0

// owner maps a vertex to the worker that holds it.
func owner(v uint64, workers int32) transport.NodeID {
	return transport.NodeID(1 + v%uint64(workers))
}

// table is the shared NodeID -> wire address map behind Resolve. Acks to a
// not-yet-learned temporary ID shed at the wire and are repaired by the
// sender's resend, so learning an address late is safe.
type table struct {
	mu sync.Mutex
	m  map[transport.NodeID]string
}

func newTable() *table { return &table{m: make(map[transport.NodeID]string)} }

func (t *table) set(id transport.NodeID, addr string) {
	t.mu.Lock()
	t.m[id] = addr
	t.mu.Unlock()
}

func (t *table) resolve(id transport.NodeID) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[id]
}

// newNet assembles a Network whose wire listens on listenAddr and resolves
// remote peers through tab. faults may be nil.
func newNet(listenAddr string, tab *table, faults *transport.WireFaults, seed int64) (*transport.Network, error) {
	ln, err := transport.ListenTCP(listenAddr)
	if err != nil {
		return nil, fmt.Errorf("wirenode: listen: %w", err)
	}
	n := transport.NewNetwork(transport.Options{
		ResendAfter: 5 * time.Millisecond,
		MaxBatch:    64,
		DropSeed:    seed,
		Wire: &transport.WireConfig{
			Listener: ln,
			Dialer:   transport.TCPDialer{},
			Codec:    transport.GobPayloadCodec{},
			Resolve:  tab.resolve,
			Faults:   faults,
		},
	})
	return n, nil
}

// tempID derives a worker's pre-assignment NodeID from its process identity
// and listen address: unique enough for a handshake, far above the dense
// worker range.
func tempID(addr string) transport.NodeID {
	h := fnv.New32a()
	_, _ = h.Write([]byte(addr))
	fmt.Fprintf(h, "|%d", os.Getpid())
	return transport.NodeID(1<<20 + int32(h.Sum32()%(1<<20)))
}

// MasterConfig configures RunMaster.
type MasterConfig struct {
	// ListenAddr is the seed address workers dial (e.g. "127.0.0.1:7070";
	// ":0" picks a port — read it back with Network.WireAddr before
	// starting workers, via the OnListen hook).
	ListenAddr string
	// Workers is the number of worker processes to wait for.
	Workers int
	// Edges is the full graph; Source the SSSP source vertex.
	Edges  []Edge
	Source uint64
	// Faults optionally injects socket chaos on the master's connections.
	Faults *transport.WireFaults
	// OnListen, when non-nil, receives the bound seed address before any
	// worker is awaited (used by tests that spawn workers afterwards).
	OnListen func(addr string)
	// ProbeEvery is the termination-probe period (default 10ms).
	ProbeEvery time.Duration
	// Timeout bounds the whole run (default 2m).
	Timeout time.Duration
}

// RunMaster drives one distributed SSSP to completion and returns the final
// distance map (only vertices with a finite distance appear).
func RunMaster(cfg MasterConfig) (map[uint64]int64, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("wirenode: need at least one worker")
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 10 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Minute
	}
	tab := newTable()
	net, err := newNet(cfg.ListenAddr, tab, cfg.Faults, 1)
	if err != nil {
		return nil, err
	}
	defer net.Close()
	ep := net.Register(masterID)
	if cfg.OnListen != nil {
		cfg.OnListen(net.WireAddr())
	}
	deadline := time.Now().Add(cfg.Timeout)

	// Phase 1: admit workers. Join order assigns dense IDs.
	workers := int32(cfg.Workers)
	temps := make(map[transport.NodeID]int32) // temp -> assigned
	addrs := make(map[int32]string)
	for int32(len(addrs)) < workers {
		env, err := recvDeadline(ep, deadline)
		if err != nil {
			return nil, fmt.Errorf("wirenode: waiting for %d workers, have %d: %w",
				workers, len(addrs), err)
		}
		h, ok := env.Payload.(Hello)
		if !ok {
			continue // late ProbeAck from a previous run, etc.
		}
		if _, seen := temps[env.From]; seen {
			continue // duplicate Hello from a resend before our ack landed
		}
		id := int32(len(addrs)) + 1
		temps[env.From] = id
		addrs[id] = h.Addr
		tab.set(env.From, h.Addr)
		tab.set(transport.NodeID(id), h.Addr)
	}
	full := map[int32]string{0: net.WireAddr()}
	for id, a := range addrs {
		full[id] = a
	}
	for temp, id := range temps {
		ep.Send(temp, Assign{ID: id, Workers: workers, Table: full})
	}
	ep.Flush()

	// Phase 2: ship partitions, chunked so no frame nears the size cap.
	const chunk = 512
	parts := make(map[transport.NodeID][]Edge)
	for _, e := range cfg.Edges {
		o := owner(e.Src, workers)
		parts[o] = append(parts[o], e)
		if len(parts[o]) == chunk {
			ep.Send(o, Load{Edges: parts[o]})
			parts[o] = nil
		}
	}
	for o, rest := range parts {
		if len(rest) > 0 {
			ep.Send(o, Load{Edges: rest})
		}
	}
	for id := int32(1); id <= workers; id++ {
		ep.Send(transport.NodeID(id), LoadDone{Source: cfg.Source})
	}
	ep.Flush()

	// Phase 3: double probe until global quiescence. Termination holds when
	// two consecutive epochs agree on the same sent==recv totals with every
	// inbox idle — no Relax in flight anywhere.
	acks := make(map[int32]ProbeAck)
	var epoch int64
	var prevSent, prevRecv int64 = -1, -2
	var stable bool
	ticker := time.NewTicker(cfg.ProbeEvery)
	defer ticker.Stop()
	for !stable {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("wirenode: termination probe timed out (epoch %d)", epoch)
		}
		epoch++
		for id := int32(1); id <= workers; id++ {
			ep.Send(transport.NodeID(id), Probe{Epoch: epoch})
		}
		ep.Flush()
		for have := 0; have < cfg.Workers; {
			env, err := recvDeadline(ep, deadline)
			if err != nil {
				return nil, fmt.Errorf("wirenode: probe epoch %d: %w", epoch, err)
			}
			if a, ok := env.Payload.(ProbeAck); ok && a.Epoch == epoch {
				if _, dup := acks[int32(env.From)]; !dup {
					acks[int32(env.From)] = a
					have++
				}
			}
		}
		var sent, recv int64
		for _, a := range acks {
			sent += a.Sent
			recv += a.Recv
		}
		if sent == recv && sent == prevSent && recv == prevRecv {
			stable = true
		}
		prevSent, prevRecv = sent, recv
		for k := range acks {
			delete(acks, k)
		}
		if !stable {
			<-ticker.C
		}
	}

	// Phase 4: collect and dismiss.
	for id := int32(1); id <= workers; id++ {
		ep.Send(transport.NodeID(id), Fetch{})
	}
	ep.Flush()
	dists := make(map[uint64]int64)
	for have := 0; have < cfg.Workers; {
		env, err := recvDeadline(ep, deadline)
		if err != nil {
			return nil, fmt.Errorf("wirenode: collecting results: %w", err)
		}
		if r, ok := env.Payload.(Result); ok {
			for v, d := range r.Dists {
				dists[v] = d
			}
			have++
		}
	}
	for id := int32(1); id <= workers; id++ {
		ep.Send(transport.NodeID(id), Quit{})
	}
	ep.Flush()
	// Give the quit frames a moment to flush before the deferred Close
	// tears the wire down; workers also exit on their read deadline.
	time.Sleep(20 * time.Millisecond)
	return dists, nil
}

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// MasterAddr is the master's seed address.
	MasterAddr string
	// ListenAddr is this worker's own listener (default "127.0.0.1:0").
	ListenAddr string
	// Faults optionally injects socket chaos on this worker's connections.
	Faults *transport.WireFaults
	// Timeout bounds the whole run (default 2m).
	Timeout time.Duration
}

// RunWorker joins the master, computes its share of the fixed point, serves
// the result and returns when dismissed.
func RunWorker(cfg WorkerConfig) error {
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Minute
	}
	tab := newTable()
	tab.set(masterID, cfg.MasterAddr)
	net, err := newNet(cfg.ListenAddr, tab, cfg.Faults, int64(os.Getpid()))
	if err != nil {
		return err
	}
	defer net.Close()
	self := net.WireAddr()
	temp := net.Register(tempID(self))
	temp.Send(masterID, Hello{Addr: self})
	temp.Flush()
	deadline := time.Now().Add(cfg.Timeout)

	var assign Assign
	for {
		env, err := recvDeadline(temp, deadline)
		if err != nil {
			return fmt.Errorf("wirenode: waiting for assignment: %w", err)
		}
		if a, ok := env.Payload.(Assign); ok {
			assign = a
			break
		}
	}
	for id, addr := range assign.Table {
		tab.set(transport.NodeID(id), addr)
	}
	ep := net.Register(transport.NodeID(assign.ID))

	adj := make(map[uint64][]Edge)
	dist := make(map[uint64]int64)
	var sent, recv int64
	for {
		env, err := recvDeadline(ep, deadline)
		if err != nil {
			return fmt.Errorf("wirenode: worker %d: %w", assign.ID, err)
		}
		switch m := env.Payload.(type) {
		case Load:
			for _, e := range m.Edges {
				adj[e.Src] = append(adj[e.Src], e)
				// The wire dedups but does not reorder: a Relax can arrive
				// before this chunk (another worker loaded faster), and a
				// resent chunk can arrive after LoadDone. Either way e.Src
				// may already hold a settled distance whose relaxation never
				// saw this edge — propagate over it now, or the subgraph
				// behind it silently drops out of the fixed point while the
				// probe counters still balance.
				if d, ok := dist[e.Src]; ok {
					nd := d + e.W
					if owner(e.Dst, assign.Workers) == transport.NodeID(assign.ID) {
						relaxLocal(&dist, adj, e.Dst, nd, assign, ep, &sent)
					} else {
						sent++
						ep.Send(transport.NodeID(owner(e.Dst, assign.Workers)), Relax{Dst: e.Dst, Dist: nd})
					}
				}
			}
			ep.Flush()
		case LoadDone:
			if owner(m.Source, assign.Workers) == transport.NodeID(assign.ID) {
				relaxLocal(&dist, adj, m.Source, 0, assign, ep, &sent)
				ep.Flush()
			}
		case Relax:
			recv++
			relaxLocal(&dist, adj, m.Dst, m.Dist, assign, ep, &sent)
			ep.Flush()
		case Probe:
			ep.SendNow(masterID, ProbeAck{Epoch: m.Epoch, Sent: sent, Recv: recv})
		case Fetch:
			ep.Send(masterID, Result{Dists: dist})
			ep.Flush()
		case Quit:
			return nil
		}
	}
}

// relaxLocal is the iterative relaxation core: a worklist of (vertex,
// distance) pairs drained depth-first, sending cross-partition improvements
// and applying local ones in place.
func relaxLocal(dist *map[uint64]int64, adj map[uint64][]Edge, v uint64, d int64,
	assign Assign, ep *transport.Endpoint, sent *int64) {
	type item struct {
		v uint64
		d int64
	}
	work := []item{{v, d}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		if old, ok := (*dist)[it.v]; ok && old <= it.d {
			continue
		}
		(*dist)[it.v] = it.d
		for _, e := range adj[it.v] {
			nd := it.d + e.W
			if owner(e.Dst, assign.Workers) == transport.NodeID(assign.ID) {
				if old, ok := (*dist)[e.Dst]; !ok || nd < old {
					work = append(work, item{e.Dst, nd})
				}
			} else {
				*sent++
				ep.Send(transport.NodeID(owner(e.Dst, assign.Workers)), Relax{Dst: e.Dst, Dist: nd})
			}
		}
	}
}

// recvDeadline is Recv with an absolute deadline, polled coarsely: the
// transport has no native timed receive, and a 1ms poll is far below every
// timescale that matters here.
func recvDeadline(ep *transport.Endpoint, deadline time.Time) (transport.Envelope, error) {
	for {
		if env, ok := ep.TryRecv(); ok {
			return env, nil
		}
		if time.Now().After(deadline) {
			return transport.Envelope{}, fmt.Errorf("deadline exceeded")
		}
		time.Sleep(time.Millisecond)
	}
}
