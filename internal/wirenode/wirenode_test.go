package wirenode

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"tornado/internal/datasets"
	"tornado/internal/stream"
	"tornado/internal/transport"
)

// The worker side of the multi-process tests: when the test binary is
// re-executed with TORNADO_WIRENODE_JOIN set, it becomes a worker process
// instead of running the test suite. Workers therefore carry the same build
// (and race instrumentation) as the master.
func TestMain(m *testing.M) {
	if addr := os.Getenv("TORNADO_WIRENODE_JOIN"); addr != "" {
		var faults *transport.WireFaults
		if r := os.Getenv("TORNADO_WIRENODE_CHAOS"); r != "" {
			rate, err := strconv.ParseFloat(r, 64)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bad TORNADO_WIRENODE_CHAOS:", err)
				os.Exit(1)
			}
			faults = transport.NewWireFaults(int64(os.Getpid()))
			faults.SetLoss(rate, rate)
			faults.SetCorrupt(rate)
		}
		err := RunWorker(WorkerConfig{MasterAddr: addr, Faults: faults, Timeout: time.Minute})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func demoEdges(n int, seed int64) []Edge {
	var edges []Edge
	for _, t := range datasets.PowerLawGraph(n, 3, seed) {
		if t.Kind == stream.KindAddEdge {
			edges = append(edges, Edge{Src: uint64(t.Src), Dst: uint64(t.Dst), W: 1})
		}
	}
	return edges
}

// refSSSP is the single-process reference: BFS layers (all weights are 1).
func refSSSP(edges []Edge, source uint64) map[uint64]int64 {
	adj := make(map[uint64][]uint64)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	dist := map[uint64]int64{source: 0}
	frontier := []uint64{source}
	for d := int64(1); len(frontier) > 0; d++ {
		var next []uint64
		for _, v := range frontier {
			for _, t := range adj[v] {
				if _, seen := dist[t]; !seen {
					dist[t] = d
					next = append(next, t)
				}
			}
		}
		frontier = next
	}
	return dist
}

// runCluster starts a master in-process and n workers as real OS processes
// over real sockets, and returns the converged distance map.
func runCluster(t *testing.T, edges []Edge, workers int, chaos string) map[uint64]int64 {
	t.Helper()
	self, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	procs := make(chan *exec.Cmd, workers)
	go func() {
		addr := <-addrCh
		for i := 0; i < workers; i++ {
			cmd := exec.Command(self, "-test.run=TestMain")
			cmd.Env = append(os.Environ(), "TORNADO_WIRENODE_JOIN="+addr)
			if chaos != "" {
				cmd.Env = append(cmd.Env, "TORNADO_WIRENODE_CHAOS="+chaos)
			}
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				t.Errorf("starting worker %d: %v", i, err)
				return
			}
			procs <- cmd
		}
	}()
	defer func() {
		close(procs)
		for cmd := range procs {
			// Workers exit on Quit; Wait reaps them. Kill stragglers so a
			// failed run cannot leak processes.
			done := make(chan error, 1)
			go func() { done <- cmd.Wait() }()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				_ = cmd.Process.Kill()
				<-done
			}
		}
	}()
	dists, err := RunMaster(MasterConfig{
		ListenAddr: "127.0.0.1:0",
		Workers:    workers,
		Edges:      edges,
		Source:     0,
		OnListen:   func(a string) { addrCh <- a },
		Timeout:    time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	return dists
}

func checkExact(t *testing.T, got, want map[uint64]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("reachable set: got %d vertices, want %d", len(got), len(want))
	}
	for v, d := range want {
		if got[v] != d {
			t.Fatalf("vertex %d: got distance %d, want %d", v, got[v], d)
		}
	}
}

// TestMultiProcessSSSP runs the full distributed fixed point as one master
// plus three worker OS processes over TCP loopback and demands the exact
// reference answer.
func TestMultiProcessSSSP(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	edges := demoEdges(400, 11)
	got := runCluster(t, edges, 3, "")
	checkExact(t, got, refSSSP(edges, 0))
}

// TestMultiProcessSSSPChaos is the same run with every worker process
// dropping, duplicating AND byte-corrupting 2% of its frames: corruption is
// caught by the CRC and repaired — with reconnects — by the resend ledger,
// so the fixed point is still exact.
func TestMultiProcessSSSPChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	edges := demoEdges(300, 23)
	got := runCluster(t, edges, 2, "0.02")
	checkExact(t, got, refSSSP(edges, 0))
}
