// Package delta defines the delta-accumulative execution model (Maiter/REX
// style): instead of gathering full upstream values into state and
// recomputing on every commit, a delta program folds *changes* into a
// per-vertex pending-delta slot merged by a commutative-associative
// accumulator, and only vertices whose accumulated pending is significant
// (priority >= threshold) are activated. On skewed graphs this slashes the
// number of updates to convergence: low-impact dust parks in the pending
// slot instead of triggering commits, and the engine's coalescing path
// merges in-flight deltas with the same accumulator.
//
// Exactness under an at-least-once, reordering transport is the subtle
// part. The engine discards stale gathers per producer (monotonic iteration
// watermark), so a *pure* delta message that loses the race is dropped and
// its mass is gone forever. Programs therefore ship per-(producer,consumer)
// CUMULATIVE values via Context.EmitCum: the consumer's Gather diffs the
// received cumulative value against its own per-producer record to
// synthesize the delta locally. Duplicates diff to zero, reordered sends
// collapse to the newest value, and a resend after loss telescopes the
// missing mass back in — the delta is exact no matter what the wire did.
// Plain Context.Emit is still available for genuinely delta-natured
// messages when the program can tolerate (or dedup) replays itself.
package delta

import (
	"math/rand"

	"tornado/internal/stream"
)

// Context is the engine-provided view of the vertex a program callback is
// operating on. It is the delta-mode twin of the value-mode engine.Context:
// the same restrictions apply (Emit/EmitCum only inside Update, targets
// mutable only inside OnInput/Init).
type Context interface {
	// ID returns the vertex this callback operates on.
	ID() stream.VertexID
	// Iteration returns the vertex's current Lamport iteration.
	Iteration() int64
	// State returns the vertex state set by SetState.
	State() any
	// SetState replaces the vertex state.
	SetState(s any)
	// Emit sends a plain delta value to a target vertex. Deltas shipped
	// this way are accumulated as-is on receipt; the program must be
	// robust to the transport dropping stale duplicates (see package doc).
	Emit(to stream.VertexID, value any)
	// EmitCum sends a cumulative per-(producer,consumer) value: the
	// receiver's Gather is handed cum=true and is expected to diff it
	// against its own record of this producer. This is the exact-delivery
	// workhorse (package doc).
	EmitCum(to stream.VertexID, value any)
	// AddTarget registers an out-edge (valid in Init/OnInput only).
	AddTarget(to stream.VertexID)
	// RemoveTarget retracts an out-edge (valid in Init/OnInput only).
	RemoveTarget(to stream.VertexID)
	// Targets returns the current out-edge set, sorted.
	Targets() []stream.VertexID
	// AddedTargets returns targets added since the last commit.
	AddedTargets() []stream.VertexID
	// RemovedTargets returns targets removed since the last commit.
	RemovedTargets() []stream.VertexID
	// ReportProgress feeds the loop's progress metric (Section 4.3).
	ReportProgress(v float64)
	// Activated reports whether this commit was forced by an activation
	// (recovery replay, branch seed, explicit Activate) — programs should
	// re-emit their full cumulative outputs when set.
	Activated() bool
	// Rand returns the vertex's deterministic per-vertex RNG.
	Rand() *rand.Rand
}

// Program is the delta-accumulative counterpart of engine.Program. The
// engine drives it as: OnInput mutates topology/state, Gather turns each
// incoming message into a local delta, Accumulate folds concurrent deltas
// into one pending slot, Priority ranks pendings for selective activation,
// and Update consumes the pending at commit time and emits downstream.
//
// Accumulate must be commutative and associative over the program's delta
// domain, with Identity as its unit: the engine folds deltas in arrival
// order on the owning processor, merges in-flight coalesced updates with
// the same function, and persists unconsumed pendings in checkpoints — all
// three paths must agree on the result regardless of grouping.
type Program interface {
	// Identity returns the accumulator's unit element: Accumulate(Identity(), d) == d.
	// The engine passes it to Update for commits that consume no pending.
	Identity() any
	// Accumulate merges two deltas into one. Must be commutative and
	// associative. When a program mixes Emit and EmitCum, Accumulate may
	// also be asked to fold a delta into a cumulative value (coalescing
	// keeps the older message's cum flag); programs that only EmitCum
	// never see that case.
	Accumulate(a, b any) any
	// Priority scores a pending delta's impact; higher runs first.
	// Pendings scoring below Threshold are parked, not scheduled.
	Priority(ctx Context, pending any) float64
	// Threshold is the base significance threshold. The engine may raise
	// the effective threshold under overload (SetDeltaBoost) and lower it
	// back, rescanning parked pendings — convergence only requires that
	// every above-threshold pending is eventually consumed.
	Threshold() float64
	// Init seeds a new vertex's state (targets may be added here).
	Init(ctx Context)
	// OnInput applies one input tuple (edge/value changes) to the vertex.
	OnInput(ctx Context, t stream.Tuple)
	// Gather converts an incoming message from src into a local delta.
	// cum reports whether the value is cumulative (EmitCum) — if so the
	// program diffs it against its per-producer record inside its state.
	// ok=false means the message changed nothing (duplicate, no-op) and
	// no pending is accumulated.
	Gather(ctx Context, src stream.VertexID, value any, cum bool) (delta any, ok bool)
	// Update folds the pending delta into the vertex state at commit time
	// and emits downstream. pending is Identity() when the commit was
	// triggered without a significant pending (input, activation replay);
	// Update must then still honor Activated/Added/RemovedTargets.
	Update(ctx Context, pending any)
}
