package delta

import "tornado/internal/stream"

// Item is one queued activation: a vertex with a significant pending delta,
// plus the progress token the engine parked with it (released when the
// activation is drained or the entry merged away).
type Item struct {
	ID       stream.VertexID
	Priority float64
	Token    int64
}

// Queue is an indexed max-heap of pending activations, one entry per
// vertex. The index makes merge-in-place O(log n): when a new delta
// arrives for an already-queued vertex the engine recomputes the merged
// pending's priority and calls Update instead of pushing a duplicate, so
// an activation is never lost and never doubled. Not safe for concurrent
// use; each processor owns one.
type Queue struct {
	items []Item
	pos   map[stream.VertexID]int
}

// NewQueue returns an empty activation queue.
func NewQueue() *Queue {
	return &Queue{pos: make(map[stream.VertexID]int)}
}

// Len returns the number of queued activations.
func (q *Queue) Len() int { return len(q.items) }

// Priority returns the queued priority of id, if present.
func (q *Queue) Priority(id stream.VertexID) (float64, bool) {
	i, ok := q.pos[id]
	if !ok {
		return 0, false
	}
	return q.items[i].Priority, true
}

// Push queues a new activation. The vertex must not already be queued
// (callers check Priority first and Update instead); pushing a duplicate
// panics, because it would leak the held token of one of the entries.
func (q *Queue) Push(id stream.VertexID, prio float64, token int64) {
	if _, ok := q.pos[id]; ok {
		panic("delta: Push of already-queued vertex")
	}
	q.items = append(q.items, Item{ID: id, Priority: prio, Token: token})
	q.pos[id] = len(q.items) - 1
	q.up(len(q.items) - 1)
}

// Update re-scores an already-queued vertex (after its pending absorbed
// another delta) and restores the heap order. Reports whether the vertex
// was queued.
func (q *Queue) Update(id stream.VertexID, prio float64) bool {
	i, ok := q.pos[id]
	if !ok {
		return false
	}
	old := q.items[i].Priority
	q.items[i].Priority = prio
	if prio > old {
		q.up(i)
	} else if prio < old {
		q.down(i)
	}
	return true
}

// PopMax removes and returns the highest-priority activation.
func (q *Queue) PopMax() (Item, bool) {
	if len(q.items) == 0 {
		return Item{}, false
	}
	top := q.items[0]
	q.swap(0, len(q.items)-1)
	q.items = q.items[:len(q.items)-1]
	delete(q.pos, top.ID)
	if len(q.items) > 0 {
		q.down(0)
	}
	return top, true
}

// Remove deletes a queued activation by vertex, returning the removed item
// (so the caller can release its token).
func (q *Queue) Remove(id stream.VertexID) (Item, bool) {
	i, ok := q.pos[id]
	if !ok {
		return Item{}, false
	}
	it := q.items[i]
	last := len(q.items) - 1
	q.swap(i, last)
	q.items = q.items[:last]
	delete(q.pos, id)
	if i < last {
		// The displaced element may need to move either direction.
		q.down(i)
		q.up(i)
	}
	return it, true
}

func (q *Queue) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.pos[q.items[i].ID] = i
	q.pos[q.items[j].ID] = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if q.items[parent].Priority >= q.items[i].Priority {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		max := i
		if l < n && q.items[l].Priority > q.items[max].Priority {
			max = l
		}
		if r < n && q.items[r].Priority > q.items[max].Priority {
			max = r
		}
		if max == i {
			return
		}
		q.swap(i, max)
		i = max
	}
}
