package delta

import (
	"math/rand"
	"sort"
	"testing"

	"tornado/internal/stream"
)

// checkInvariants verifies the heap property and the position index after
// every mutation: items[parent] >= items[child], and pos maps every queued
// vertex to its actual slot (and nothing else).
func checkInvariants(t *testing.T, q *Queue) {
	t.Helper()
	for i := 1; i < len(q.items); i++ {
		parent := (i - 1) / 2
		if q.items[parent].Priority < q.items[i].Priority {
			t.Fatalf("heap violation: items[%d].Priority=%v < items[%d].Priority=%v",
				parent, q.items[parent].Priority, i, q.items[i].Priority)
		}
	}
	if len(q.pos) != len(q.items) {
		t.Fatalf("pos has %d entries, items has %d", len(q.pos), len(q.items))
	}
	for i, it := range q.items {
		if q.pos[it.ID] != i {
			t.Fatalf("pos[%d]=%d but vertex sits at slot %d", it.ID, q.pos[it.ID], i)
		}
	}
}

// ref is the trivially-correct model the queue is checked against: a map
// from vertex to its current (priority, token).
type ref map[stream.VertexID]Item

func (r ref) popMax() (Item, bool) {
	best, ok := Item{}, false
	for _, it := range r {
		if !ok || it.Priority > best.Priority || (it.Priority == best.Priority && it.ID < best.ID) {
			best, ok = it, true
		}
	}
	if ok {
		delete(r, best.ID)
	}
	return best, ok
}

// TestQueueRandomOps drives random push/update/pop/remove interleavings
// against the reference model, checking heap + index invariants after every
// operation and that pops come out in non-increasing priority order between
// mutations.
func TestQueueRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 50; round++ {
		q := NewQueue()
		model := ref{}
		var nextTok int64
		for op := 0; op < 400; op++ {
			id := stream.VertexID(rng.Intn(40))
			switch rng.Intn(5) {
			case 0, 1: // push-or-update, the engine's deltaSchedule shape
				prio := float64(rng.Intn(100)) / 4
				if _, queued := q.Priority(id); queued {
					if !q.Update(id, prio) {
						t.Fatal("Update returned false for a queued vertex")
					}
					it := model[id]
					it.Priority = prio
					model[id] = it
				} else {
					nextTok++
					q.Push(id, prio, nextTok)
					model[id] = Item{ID: id, Priority: prio, Token: nextTok}
				}
			case 2: // pop
				got, ok := q.PopMax()
				want, wok := model.popMax()
				if ok != wok {
					t.Fatalf("PopMax ok=%v, model ok=%v", ok, wok)
				}
				if ok && got.Priority != want.Priority {
					t.Fatalf("PopMax priority=%v, model max=%v", got.Priority, want.Priority)
				}
				if ok {
					// Ties may pop a different vertex; put the model's choice
					// back and take the heap's, so tokens stay matched.
					if got.ID != want.ID {
						model[want.ID] = want
						want = model[got.ID]
						delete(model, got.ID)
					}
					if got.Token != want.Token {
						t.Fatalf("PopMax token=%d, model=%d: token lost or swapped", got.Token, want.Token)
					}
				}
			case 3: // remove
				got, ok := q.Remove(id)
				want, wok := model[id]
				if ok != wok {
					t.Fatalf("Remove(%d) ok=%v, model ok=%v", id, ok, wok)
				}
				if ok {
					delete(model, id)
					if got.Token != want.Token || got.Priority != want.Priority {
						t.Fatalf("Remove(%d)=%+v, model=%+v", id, got, want)
					}
				}
			case 4: // read-only probe
				p, ok := q.Priority(id)
				want, wok := model[id]
				if ok != wok || (ok && p != want.Priority) {
					t.Fatalf("Priority(%d)=(%v,%v), model=(%v,%v)", id, p, ok, want.Priority, wok)
				}
			}
			checkInvariants(t, q)
		}
		// Drain: priorities must come out sorted descending and the token
		// multiset must match the model exactly (no token leaked or doubled).
		var gotToks, wantToks []int64
		last := float64(1 << 30)
		for {
			it, ok := q.PopMax()
			if !ok {
				break
			}
			if it.Priority > last {
				t.Fatalf("drain out of order: %v after %v", it.Priority, last)
			}
			last = it.Priority
			gotToks = append(gotToks, it.Token)
		}
		for _, it := range model {
			wantToks = append(wantToks, it.Token)
		}
		sort.Slice(gotToks, func(i, j int) bool { return gotToks[i] < gotToks[j] })
		sort.Slice(wantToks, func(i, j int) bool { return wantToks[i] < wantToks[j] })
		if len(gotToks) != len(wantToks) {
			t.Fatalf("drained %d tokens, model holds %d", len(gotToks), len(wantToks))
		}
		for i := range gotToks {
			if gotToks[i] != wantToks[i] {
				t.Fatalf("token multiset mismatch at %d: %d vs %d", i, gotToks[i], wantToks[i])
			}
		}
	}
}

// TestQueueMergeKeepsActivation is the no-lost-activation regression: when a
// delta arrives for a vertex already queued, the engine calls Update (never
// a second Push), and the single entry must survive with the new priority
// and the ORIGINAL token — raising, lowering, and equal re-scores included.
func TestQueueMergeKeepsActivation(t *testing.T) {
	q := NewQueue()
	q.Push(7, 1.0, 41)
	q.Push(3, 5.0, 42)
	q.Push(9, 3.0, 43)

	// Merge raises vertex 7 above everything.
	if !q.Update(7, 9.5) {
		t.Fatal("Update lost the queued vertex")
	}
	checkInvariants(t, q)
	if p, ok := q.Priority(7); !ok || p != 9.5 {
		t.Fatalf("Priority(7) = %v,%v after merge; want 9.5", p, ok)
	}
	it, ok := q.PopMax()
	if !ok || it.ID != 7 || it.Token != 41 {
		t.Fatalf("PopMax = %+v; want vertex 7 with its original token 41", it)
	}

	// Merge lowers vertex 3 below vertex 9; both still drain exactly once.
	if !q.Update(3, 0.5) {
		t.Fatal("Update lost vertex 3")
	}
	checkInvariants(t, q)
	first, _ := q.PopMax()
	second, _ := q.PopMax()
	if first.ID != 9 || second.ID != 3 || second.Token != 42 {
		t.Fatalf("drain after lowering = %+v, %+v; want 9 then 3 (token 42)", first, second)
	}
	if _, ok := q.PopMax(); ok {
		t.Fatal("queue not empty after draining both entries")
	}

	// A duplicate Push for a queued vertex must panic loudly (it would leak
	// a held token), never silently shadow the existing activation.
	q.Push(4, 2.0, 44)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Push did not panic")
		}
	}()
	q.Push(4, 3.0, 45)
}

// FuzzQueueOps feeds byte-driven operation sequences through the queue,
// checking structural invariants and conservation of entries throughout.
func FuzzQueueOps(f *testing.F) {
	f.Add([]byte{0, 10, 1, 20, 2, 0, 30, 3})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 1, 2, 3})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		q := NewQueue()
		live := map[stream.VertexID]bool{}
		var tok int64
		for i := 0; i+1 < len(ops); i += 2 {
			id := stream.VertexID(ops[i+1] % 16)
			prio := float64(ops[i+1] % 32)
			switch ops[i] % 4 {
			case 0:
				if _, queued := q.Priority(id); queued {
					q.Update(id, prio)
				} else {
					tok++
					q.Push(id, prio, tok)
					live[id] = true
				}
			case 1:
				if it, ok := q.PopMax(); ok {
					delete(live, it.ID)
				}
			case 2:
				if _, ok := q.Remove(id); ok {
					delete(live, id)
				}
			case 3:
				q.Update(id, prio) // no-op unless queued
			}
			if q.Len() != len(live) {
				t.Fatalf("Len=%d but model holds %d", q.Len(), len(live))
			}
			for j := 1; j < len(q.items); j++ {
				if q.items[(j-1)/2].Priority < q.items[j].Priority {
					t.Fatalf("heap violation at %d", j)
				}
			}
			for j, it := range q.items {
				if q.pos[it.ID] != j {
					t.Fatalf("index desync at %d", j)
				}
			}
		}
	})
}
