package optimizer

import (
	"math"
	"testing"
)

func TestStatic(t *testing.T) {
	s := NewStatic(0.5)
	s.Observe(100)
	s.Observe(1)
	if s.Rate() != 0.5 {
		t.Fatalf("static rate changed to %v", s.Rate())
	}
	if s.Name() != "static" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestBoldDriverDecaysOnRegression(t *testing.T) {
	b := NewBoldDriver(0.1)
	b.Observe(10) // baseline
	b.Observe(11) // objective grew
	if got := b.Rate(); math.Abs(got-0.09) > 1e-12 {
		t.Fatalf("rate after regression = %v; want 0.09", got)
	}
}

func TestBoldDriverGrowsOnSlowProgress(t *testing.T) {
	b := NewBoldDriver(0.1)
	b.Observe(10)
	b.Observe(9.999) // decreased by 0.01% < 1% threshold
	if got := b.Rate(); math.Abs(got-0.11) > 1e-12 {
		t.Fatalf("rate after slow progress = %v; want 0.11", got)
	}
}

func TestBoldDriverHoldsOnGoodProgress(t *testing.T) {
	b := NewBoldDriver(0.1)
	b.Observe(10)
	b.Observe(5) // 50% decrease: healthy, keep rate
	if got := b.Rate(); got != 0.1 {
		t.Fatalf("rate after good progress = %v; want 0.1", got)
	}
}

func TestBoldDriverClamps(t *testing.T) {
	b := NewBoldDriver(0.1)
	b.MinEta = 0.05
	b.MaxEta = 0.2
	obj := 1.0
	for i := 0; i < 100; i++ {
		b.Observe(obj)
		obj *= 2 // always regressing
	}
	if b.Rate() < 0.05 {
		t.Fatalf("rate %v fell below MinEta", b.Rate())
	}
	b2 := NewBoldDriver(0.1)
	b2.MaxEta = 0.2
	obj = 1.0
	for i := 0; i < 100; i++ {
		b2.Observe(obj)
		obj *= 0.9999 // always slow progress
	}
	if b2.Rate() > 0.2 {
		t.Fatalf("rate %v exceeded MaxEta", b2.Rate())
	}
}

func TestBoldDriverFirstObservationIsBaseline(t *testing.T) {
	b := NewBoldDriver(0.1)
	b.Observe(math.Inf(1)) // ignored as baseline
	if b.Rate() != 0.1 {
		t.Fatalf("rate changed on baseline observation: %v", b.Rate())
	}
}

func TestAdaGradDecreases(t *testing.T) {
	a := NewAdaGrad(1.0)
	prev := a.Rate()
	for i := 0; i < 50; i++ {
		a.ObserveGradient(1.0)
		cur := a.Rate()
		if cur > prev {
			t.Fatalf("AdaGrad rate increased: %v -> %v", prev, cur)
		}
		prev = cur
	}
	if prev > 0.15 {
		t.Fatalf("AdaGrad rate after 50 unit gradients = %v; want ~1/sqrt(50)", prev)
	}
}

func TestAdaDeltaBounded(t *testing.T) {
	a := NewAdaDelta()
	for i := 0; i < 100; i++ {
		a.ObserveGradient(1.0)
		if r := a.Rate(); math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			t.Fatalf("AdaDelta rate invalid: %v", r)
		}
	}
}

func TestNames(t *testing.T) {
	if NewBoldDriver(1).Name() != "bold-driver" ||
		NewAdaGrad(1).Name() != "adagrad" ||
		NewAdaDelta().Name() != "adadelta" {
		t.Fatal("schedule names wrong")
	}
}
