// Package optimizer provides descent-rate schedules for the SGD workloads.
//
// Section 6.2.2 of the paper studies the trade-off between approximation
// error and adaption rate: a large static rate adapts quickly but plateaus
// at high error; a small one reaches low error but cannot follow input
// drift. Classical adaptive schedules (AdaGrad, AdaDelta) produce a
// decreasing rate sequence and therefore also fail to track drift. Tornado's
// main loop instead uses the bold-driver heuristic: shrink the rate when the
// objective grows, grow it when the objective decreases too slowly.
package optimizer

import "math"

// Schedule produces the descent rate for each step, optionally observing the
// objective value to adapt.
type Schedule interface {
	// Rate returns the descent rate to use for the next step.
	Rate() float64
	// Observe feeds the objective value reached after the last step.
	// Schedules that do not adapt ignore it.
	Observe(objective float64)
	// Name identifies the schedule in benchmark output.
	Name() string
}

// Static is a constant-rate schedule.
type Static struct {
	Eta float64
}

// NewStatic returns a schedule with the fixed rate eta.
func NewStatic(eta float64) *Static { return &Static{Eta: eta} }

// Rate implements Schedule.
func (s *Static) Rate() float64 { return s.Eta }

// Observe implements Schedule (no-op).
func (s *Static) Observe(float64) {}

// Name implements Schedule.
func (s *Static) Name() string { return "static" }

// BoldDriver adapts the rate from the objective trajectory: when the
// objective increases, the rate is decreased by DecayFactor; when it
// decreases by less than SlowThreshold (relatively), the rate is increased
// by GrowthFactor. The paper uses 10% steps and a 1% slow threshold.
type BoldDriver struct {
	// Eta is the current rate.
	Eta float64
	// GrowthFactor multiplies Eta on slow progress (default 1.10).
	GrowthFactor float64
	// DecayFactor multiplies Eta on regression (default 0.90).
	DecayFactor float64
	// SlowThreshold is the relative decrease below which progress counts as
	// slow (default 0.01).
	SlowThreshold float64
	// MinEta / MaxEta clamp the adapted rate.
	MinEta, MaxEta float64

	prev    float64
	hasPrev bool
}

// NewBoldDriver returns a bold-driver schedule with the paper's parameters
// (±10%, 1% slow threshold) starting from eta.
func NewBoldDriver(eta float64) *BoldDriver {
	return &BoldDriver{
		Eta:           eta,
		GrowthFactor:  1.10,
		DecayFactor:   0.90,
		SlowThreshold: 0.01,
		MinEta:        1e-8,
		MaxEta:        10,
	}
}

// Rate implements Schedule.
func (b *BoldDriver) Rate() float64 { return b.Eta }

// Observe implements Schedule.
func (b *BoldDriver) Observe(objective float64) {
	if !b.hasPrev {
		b.prev, b.hasPrev = objective, true
		return
	}
	switch {
	case objective > b.prev:
		b.Eta *= b.DecayFactor
	case b.prev != 0 && (b.prev-objective)/math.Abs(b.prev) < b.SlowThreshold:
		b.Eta *= b.GrowthFactor
	}
	if b.Eta < b.MinEta {
		b.Eta = b.MinEta
	}
	if b.Eta > b.MaxEta {
		b.Eta = b.MaxEta
	}
	b.prev = objective
}

// Name implements Schedule.
func (b *BoldDriver) Name() string { return "bold-driver" }

// AdaGrad implements the Adagrad schedule (Duchi et al., 2011) over a scalar
// proxy: rate_t = eta0 / sqrt(sum of squared gradient norms). It is included
// to demonstrate the paper's point that decreasing schedules cannot track an
// evolving model; ObserveGradient must be called with each step's gradient
// norm.
type AdaGrad struct {
	Eta0    float64
	Epsilon float64
	sumSq   float64
}

// NewAdaGrad returns an AdaGrad schedule starting from eta0.
func NewAdaGrad(eta0 float64) *AdaGrad {
	return &AdaGrad{Eta0: eta0, Epsilon: 1e-8}
}

// Rate implements Schedule.
func (a *AdaGrad) Rate() float64 {
	return a.Eta0 / math.Sqrt(a.sumSq+a.Epsilon)
}

// Observe implements Schedule (objective values are ignored; AdaGrad adapts
// on gradients via ObserveGradient).
func (a *AdaGrad) Observe(float64) {}

// ObserveGradient accumulates a gradient norm.
func (a *AdaGrad) ObserveGradient(norm float64) { a.sumSq += norm * norm }

// Name implements Schedule.
func (a *AdaGrad) Name() string { return "adagrad" }

// AdaDelta implements the AdaDelta schedule (Zeiler, 2012) over scalar
// proxies with decay rho.
type AdaDelta struct {
	Rho     float64
	Epsilon float64
	avgSqG  float64
	avgSqDx float64
}

// NewAdaDelta returns an AdaDelta schedule with the usual rho=0.95.
func NewAdaDelta() *AdaDelta {
	return &AdaDelta{Rho: 0.95, Epsilon: 1e-6}
}

// Rate implements Schedule.
func (a *AdaDelta) Rate() float64 {
	return math.Sqrt(a.avgSqDx+a.Epsilon) / math.Sqrt(a.avgSqG+a.Epsilon)
}

// Observe implements Schedule (no-op; AdaDelta adapts on gradients).
func (a *AdaDelta) Observe(float64) {}

// ObserveGradient accumulates a gradient norm and the implied update.
func (a *AdaDelta) ObserveGradient(norm float64) {
	a.avgSqG = a.Rho*a.avgSqG + (1-a.Rho)*norm*norm
	dx := a.Rate() * norm
	a.avgSqDx = a.Rho*a.avgSqDx + (1-a.Rho)*dx*dx
}

// Name implements Schedule.
func (a *AdaDelta) Name() string { return "adadelta" }
