package transport

import (
	"runtime"
	"testing"
	"time"
)

// checkGoroutines asserts the goroutine count returns to its baseline after
// fn, retrying for a grace period (conn teardown and pool cleanup are
// asynchronous by design).
func checkGoroutines(t *testing.T, fn func()) {
	t.Helper()
	runtime.GC()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestNoLeakPlainNetworkClose(t *testing.T) {
	checkGoroutines(t, func() {
		n := NewNetwork(Options{ResendAfter: 5 * time.Millisecond, MaxBatch: 8})
		a := n.Register(1)
		b := n.Register(2)
		for i := 0; i < 100; i++ {
			a.Send(2, i)
		}
		for i := 0; i < 100; i++ {
			if _, ok := b.Recv(); !ok {
				t.Fatal("closed early")
			}
		}
		n.Close()
	})
}

func TestNoLeakWireForceLoopClose(t *testing.T) {
	checkGoroutines(t, func() {
		mw := NewMemWire()
		ln, err := mw.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		n := NewNetwork(Options{
			ResendAfter: 5 * time.Millisecond,
			Wire:        &WireConfig{Listener: ln, Dialer: mw.Dialer(), ForceLoop: true},
		})
		a := n.Register(1)
		b := n.Register(2)
		for i := 0; i < 100; i++ {
			a.Send(2, i)
		}
		collect(t, b, 100)
		n.Close()
	})
}

func TestNoLeakWireTCPClose(t *testing.T) {
	checkGoroutines(t, func() {
		ln, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		n := NewNetwork(Options{
			ResendAfter: 5 * time.Millisecond,
			Wire:        &WireConfig{Listener: ln, Dialer: TCPDialer{}, ForceLoop: true},
		})
		a := n.Register(1)
		b := n.Register(2)
		for i := 0; i < 50; i++ {
			a.Send(2, i)
		}
		collect(t, b, 50)
		n.Close()
	})
}

func TestNoLeakWireAbort(t *testing.T) {
	checkGoroutines(t, func() {
		mw := NewMemWire()
		ln, err := mw.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		n := NewNetwork(Options{
			ResendAfter: 5 * time.Millisecond,
			Wire:        &WireConfig{Listener: ln, Dialer: mw.Dialer(), ForceLoop: true},
		})
		a := n.Register(1)
		n.Register(2)
		for i := 0; i < 50; i++ {
			a.Send(2, i)
		}
		n.Abort() // mid-flight teardown: queued wire frames die with the host
	})
}

func TestNoLeakWireDialFailure(t *testing.T) {
	checkGoroutines(t, func() {
		mw := NewMemWire()
		ln, err := mw.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		// Resolve to an address nothing listens on: the peer writer spins in
		// its dial backoff until close, then must exit promptly.
		n := NewNetwork(Options{
			ResendAfter: 5 * time.Millisecond,
			Wire: &WireConfig{
				Listener: ln,
				Dialer:   mw.Dialer(),
				Resolve:  func(NodeID) string { return "mem-nowhere" },
			},
		})
		a := n.Register(1)
		a.Send(99, "into the void")
		time.Sleep(30 * time.Millisecond) // let the dial loop start failing
		n.Close()
	})
}

func TestNoLeakWirePartitionedClose(t *testing.T) {
	checkGoroutines(t, func() {
		mw := NewMemWire()
		ln, err := mw.Listen("")
		if err != nil {
			t.Fatal(err)
		}
		faults := NewWireFaults(3)
		faults.SetPartition(true)
		n := NewNetwork(Options{
			ResendAfter: 5 * time.Millisecond,
			Wire:        &WireConfig{Listener: ln, Dialer: mw.Dialer(), ForceLoop: true, Faults: faults},
		})
		a := n.Register(1)
		n.Register(2)
		for i := 0; i < 50; i++ {
			a.Send(2, i)
		}
		time.Sleep(20 * time.Millisecond)
		n.Close() // close during an unhealed partition must not wedge
	})
}
