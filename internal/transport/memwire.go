// In-memory wire: a loopback Dialer/Listener pair over channels. It moves
// the same encoded frame bytes the TCP wire does — every frame still pays
// encode, CRC and decode — without sockets, so the supervision and codec
// machinery can be unit-tested hermetically and deterministically.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// errMemClosed is returned by mem wire operations after Close.
var errMemClosed = errors.New("transport: mem wire closed")

// MemWire is an in-process address space of wire listeners. Addresses are
// arbitrary strings; a MemWire is typically shared by the two (or N) sides
// of a test topology.
type MemWire struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	next      int
}

// NewMemWire returns an empty in-memory wire address space.
func NewMemWire() *MemWire {
	return &MemWire{listeners: make(map[string]*memListener)}
}

// Listen opens a listener on addr; an empty addr allocates "mem-N".
func (w *MemWire) Listen(addr string) (Listener, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if addr == "" {
		w.next++
		addr = fmt.Sprintf("mem-%d", w.next)
	}
	if _, ok := w.listeners[addr]; ok {
		return nil, fmt.Errorf("transport: mem address %q already listening", addr)
	}
	l := &memListener{wire: w, addr: addr, accept: make(chan *memConn, 8)}
	w.listeners[addr] = l
	return l, nil
}

// Dialer returns a Dialer resolving addresses within this MemWire.
func (w *MemWire) Dialer() Dialer { return memDialer{wire: w} }

type memDialer struct{ wire *MemWire }

// Dial implements Dialer: it creates a paired conn and hands the far end to
// the listener's accept queue.
func (d memDialer) Dial(addr string) (Conn, error) {
	d.wire.mu.Lock()
	l := d.wire.listeners[addr]
	d.wire.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("transport: mem dial %q: connection refused", addr)
	}
	a, b := newMemConnPair(addr)
	if err := l.deliver(b); err != nil {
		a.Close()
		return nil, err
	}
	return a, nil
}

type memListener struct {
	wire   *MemWire
	addr   string
	accept chan *memConn

	mu     sync.Mutex
	closed bool
}

// deliver enqueues the far end of a dialed pair. The send happens under
// l.mu, the same lock Close sets closed under before closing the channel,
// so a dial can never race the close of the accept queue.
func (l *memListener) deliver(c *memConn) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("transport: mem dial %q: connection refused", l.addr)
	}
	select {
	case l.accept <- c:
		return nil
	default:
		return fmt.Errorf("transport: mem dial %q: accept queue full", l.addr)
	}
}

// Accept implements Listener.
func (l *memListener) Accept() (Conn, error) {
	c, ok := <-l.accept
	if !ok {
		return nil, errMemClosed
	}
	return c, nil
}

// Addr implements Listener.
func (l *memListener) Addr() string { return l.addr }

// Close implements Listener.
func (l *memListener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		l.wire.mu.Lock()
		delete(l.wire.listeners, l.addr)
		l.wire.mu.Unlock()
		close(l.accept)
	}
	return nil
}

// memConn is one direction pair of an in-memory connection. Frames cross as
// copied byte slices over a buffered channel.
type memConn struct {
	peer   string
	out    chan<- []byte
	in     <-chan []byte
	closed chan struct{}
	once   *sync.Once // shared: closing either end severs both
}

func newMemConnPair(addr string) (*memConn, *memConn) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	closed := make(chan struct{})
	once := new(sync.Once)
	a := &memConn{peer: addr, out: ab, in: ba, closed: closed, once: once}
	b := &memConn{peer: "dialer", out: ba, in: ab, closed: closed, once: once}
	return a, b
}

// WriteFrame implements Conn (mem conns have no buffering stage: each frame
// is its own copy).
func (c *memConn) WriteFrame(frame []byte) error {
	b := make([]byte, len(frame))
	copy(b, frame)
	select {
	case c.out <- b:
		return nil
	case <-c.closed:
		return errMemClosed
	}
}

// Flush implements Conn (no-op).
func (c *memConn) Flush() error {
	select {
	case <-c.closed:
		return errMemClosed
	default:
		return nil
	}
}

// ReadFrame implements Conn.
func (c *memConn) ReadFrame([]byte) ([]byte, error) {
	select {
	case b := <-c.in:
		return b, nil
	case <-c.closed:
		// Drain what was in flight before reporting the close, so a
		// graceful shutdown does not tear frames already "on the wire".
		select {
		case b := <-c.in:
			return b, nil
		default:
			return nil, errMemClosed
		}
	}
}

// SetReadDeadline implements Conn (mem conns ignore deadlines; tests use
// fault wrappers for stuck-peer scenarios).
func (c *memConn) SetReadDeadline(time.Time) error { return nil }

// RemoteAddr implements Conn.
func (c *memConn) RemoteAddr() string { return c.peer }

// Close implements Conn: severs both directions.
func (c *memConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}
