// TCP wire: the real-socket implementation of the Dialer/Listener/Conn
// abstraction. Frames cross the socket as a uint32 big-endian length prefix
// followed by the codec bytes (version, CRC32, header, payloads — see
// wirecodec.go). Reads and writes go through bufio so the supervised writer
// can coalesce several frames into one syscall and Flush at queue-empty
// boundaries, preserving the batching layer's syscall economy.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Conn is one bidirectional frame pipe of the wire layer. WriteFrame may
// buffer; Flush pushes everything buffered onto the medium. ReadFrame
// returns the next frame's codec bytes, reusing the caller's buffer when it
// is large enough. Implementations must make Close unblock concurrent reads
// and writes.
type Conn interface {
	WriteFrame(frame []byte) error
	Flush() error
	ReadFrame(reuse []byte) ([]byte, error)
	SetReadDeadline(t time.Time) error
	RemoteAddr() string
	Close() error
}

// Dialer opens connections to remote listeners.
type Dialer interface {
	Dial(addr string) (Conn, error)
}

// Listener accepts connections from remote dialers.
type Listener interface {
	Accept() (Conn, error)
	Addr() string
	Close() error
}

// TCPDialer dials real TCP sockets. The zero value is ready to use.
type TCPDialer struct {
	// Timeout bounds one dial attempt (default 2s).
	Timeout time.Duration
	// WriteTimeout bounds one buffered write flush; a peer that stops
	// draining its socket (stuck-peer) fails the write and triggers the
	// supervisor's reconnect instead of wedging the writer goroutine
	// (default 10s).
	WriteTimeout time.Duration
}

// Dial implements Dialer.
func (d TCPDialer) Dial(addr string) (Conn, error) {
	to := d.Timeout
	if to <= 0 {
		to = 2 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, to)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return newTCPConn(c, d.WriteTimeout), nil
}

// TCPListener wraps a net.Listener into the wire Listener.
type TCPListener struct {
	ln net.Listener
	// WriteTimeout is applied to accepted conns (acks and credit flow back
	// on them); see TCPDialer.WriteTimeout.
	WriteTimeout time.Duration
}

// ListenTCP opens a wire listener on addr ("127.0.0.1:0" picks a free
// port; read the bound address from Addr).
func ListenTCP(addr string) (*TCPListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPListener{ln: ln}, nil
}

// Accept implements Listener.
func (l *TCPListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return newTCPConn(c, l.WriteTimeout), nil
}

// Addr implements Listener.
func (l *TCPListener) Addr() string { return l.ln.Addr().String() }

// Close implements Listener.
func (l *TCPListener) Close() error { return l.ln.Close() }

// tcpConn frames a net.Conn. The write side is mutex-guarded (writer
// goroutine plus the occasional Close); the read side is owned by a single
// reader goroutine by construction.
type tcpConn struct {
	c  net.Conn
	wt time.Duration

	wmu sync.Mutex
	bw  *writeBuffer

	rbuf [4]byte
}

// writeBuffer is a minimal bufio.Writer substitute that lets WriteFrame
// assemble the length prefix and frame bytes without intermediate copies.
type writeBuffer struct {
	buf []byte
}

const tcpWriteBufCap = 64 << 10

func newTCPConn(c net.Conn, writeTimeout time.Duration) *tcpConn {
	if writeTimeout <= 0 {
		writeTimeout = 10 * time.Second
	}
	return &tcpConn{c: c, wt: writeTimeout, bw: &writeBuffer{buf: make([]byte, 0, tcpWriteBufCap)}}
}

// WriteFrame buffers one frame (length prefix + bytes). Frames larger than
// the buffer flush through directly.
func (t *tcpConn) WriteFrame(frame []byte) error {
	if len(frame) > MaxFrameBytes {
		return fmt.Errorf("transport: frame of %d bytes exceeds wire maximum", len(frame))
	}
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if len(t.bw.buf)+4+len(frame) > tcpWriteBufCap && len(t.bw.buf) > 0 {
		if err := t.flushLocked(); err != nil {
			return err
		}
	}
	t.bw.buf = binary.BigEndian.AppendUint32(t.bw.buf, uint32(len(frame)))
	t.bw.buf = append(t.bw.buf, frame...)
	if len(t.bw.buf) >= tcpWriteBufCap {
		return t.flushLocked()
	}
	return nil
}

// Flush implements Conn.
func (t *tcpConn) Flush() error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	return t.flushLocked()
}

func (t *tcpConn) flushLocked() error {
	if len(t.bw.buf) == 0 {
		return nil
	}
	_ = t.c.SetWriteDeadline(time.Now().Add(t.wt))
	_, err := t.c.Write(t.bw.buf)
	t.bw.buf = t.bw.buf[:0]
	return err
}

// ReadFrame reads one length-prefixed frame. A length prefix beyond
// MaxFrameBytes is corruption: no allocation happens and the caller is
// expected to drop the connection.
func (t *tcpConn) ReadFrame(reuse []byte) ([]byte, error) {
	if _, err := io.ReadFull(t.c, t.rbuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(t.rbuf[:])
	if n == 0 || n > MaxFrameBytes {
		return nil, fmt.Errorf("transport: wire length prefix %d: %w", n, errWireLength)
	}
	buf := reuse
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(t.c, buf); err != nil {
		// A short body after a valid prefix is a torn frame (peer died or
		// stalled mid-write).
		return nil, fmt.Errorf("transport: torn frame: %w", err)
	}
	return buf, nil
}

// SetReadDeadline implements Conn.
func (t *tcpConn) SetReadDeadline(d time.Time) error { return t.c.SetReadDeadline(d) }

// RemoteAddr implements Conn.
func (t *tcpConn) RemoteAddr() string { return t.c.RemoteAddr().String() }

// Close implements Conn.
func (t *tcpConn) Close() error { return t.c.Close() }
