package transport

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzDecodeFrame feeds arbitrary bytes to the frame decoder. The contract
// under fuzz: decodeFrame either returns a frame or an error — it never
// panics and never allocates proportionally to a declared (attacker-
// controlled) length rather than to the input itself. To reach the payload
// parsing code past the CRC gate, inputs that carry the version byte get a
// second pass with their checksum fixed up — that simulates a corrupt frame
// whose CRC happens to validate, exercising the length-table defenses.
func FuzzDecodeFrame(f *testing.F) {
	pc := GobPayloadCodec{}

	// Valid encodings seed the corpus so mutation starts near the format.
	for _, fr := range []frame{
		{from: 1, to: 2, seq: 1, payloads: []any{"seed", int64(7)}},
		{from: 3, to: 4, seq: 9, ack: true, ackUpTo: 9},
		{from: 0, to: 0, seq: 0},
		{from: 5, to: 6, seq: 2, urgent: true, payloads: []any{[]byte{0, 1, 2, 3}}},
	} {
		enc, err := encodeFrame(nil, &fr, pc)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	// Adversarial seeds: truncated header, hostile payload count, hostile
	// per-payload length, trailing garbage.
	f.Add([]byte{wireVersion})
	f.Add(make([]byte, wireHeaderLen-1))
	hostileCount := make([]byte, wireHeaderLen)
	hostileCount[0] = wireVersion
	binary.BigEndian.PutUint32(hostileCount[30:34], 0xffffffff)
	binary.BigEndian.PutUint32(hostileCount[1:5], crc32.ChecksumIEEE(hostileCount[5:]))
	f.Add(hostileCount)
	hostileLen := make([]byte, wireHeaderLen+4)
	hostileLen[0] = wireVersion
	binary.BigEndian.PutUint32(hostileLen[30:34], 1)
	binary.BigEndian.PutUint32(hostileLen[wireHeaderLen:], 0x7fffffff)
	binary.BigEndian.PutUint32(hostileLen[1:5], crc32.ChecksumIEEE(hostileLen[5:]))
	f.Add(hostileLen)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := decodeFrame(data, pc)
		if err == nil {
			// Anything accepted must re-encode (modulo payload bytes the gob
			// codec may normalize) without violating the frame invariants.
			if len(fr.payloads) > maxWirePayloads {
				t.Fatalf("accepted frame with %d payloads", len(fr.payloads))
			}
		}
		if len(data) >= wireHeaderLen && data[0] == wireVersion {
			// Second pass with a valid CRC: the length-table checks, not the
			// checksum, must hold the line.
			fixed := make([]byte, len(data))
			copy(fixed, data)
			binary.BigEndian.PutUint32(fixed[1:5], crc32.ChecksumIEEE(fixed[5:]))
			fr2, err := decodeFrame(fixed, pc)
			if err == nil && len(fr2.payloads) > maxWirePayloads {
				t.Fatalf("accepted fixed-CRC frame with %d payloads", len(fr2.payloads))
			}
		}
	})
}
