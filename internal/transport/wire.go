// Wire host: attaches a real (or in-memory) socket substrate to a Network.
//
// The in-process transport delivers frames by calling the destination
// endpoint's deliver method directly. With a wire configured, that final hop
// is replaced by serialization: the frame is encoded (wirecodec.go), queued
// on a supervised per-peer connection, crosses a Conn (TCP or mem), and the
// receiving host's reader decodes it and hands it to the local destination
// endpoint's deliver — the exact same at-least-once frame/batch/ack protocol,
// now surviving real sockets.
//
// Two deployment shapes share the machinery:
//
//   - ForceLoop: every frame of a single-process Network detours through a
//     connection to the host's own listener. All endpoints stay local, but
//     each frame pays encode → socket → decode, so the chaos suites and
//     benchmarks exercise an honest wire without a cluster.
//   - Remote resolve: Resolve maps NodeIDs that are not registered locally
//     to peer addresses, so several processes each hosting a Network slice
//     form one topology (cmd/tornado-node).
//
// The connection is a supervised object. Each peer address owns one writer
// goroutine with a bounded frame queue: it dials with exponential backoff
// plus jitter, encodes and coalesces queued frames into batched writes, and
// on any write error drops the conn and redials. Frames lost in the gap are
// not the wire's problem: the sender's cumulative-ack/resend ledger already
// holds everything unacknowledged, so reconnection replays exactly the
// frames the receiver has not folded into its watermark — no loss, and no
// duplication past the ack watermark. Readers drop a connection on any
// checksum failure or torn frame instead of delivering garbage, and an
// optional read-idle deadline evicts stuck peers so silence turns into the
// missed heartbeats the PR 2 failure detector already knows how to judge.
package transport

import (
	"errors"
	"hash/fnv"
	"io"
	"math/rand"
	"sync"
	"time"
)

// WireConfig attaches a socket substrate to a Network via Options.Wire.
type WireConfig struct {
	// Listener accepts inbound peer connections. Required.
	Listener Listener
	// Dialer opens outbound peer connections. Required.
	Dialer Dialer
	// Codec serializes frame payloads (default GobPayloadCodec).
	Codec PayloadCodec
	// Resolve maps a NodeID with no local endpoint to its host's wire
	// address ("" = unknown, the frame is dropped). Unused in ForceLoop
	// mode, where every endpoint is local.
	Resolve func(NodeID) string
	// ForceLoop detours every frame — even between two endpoints of this
	// same Network — through a connection to the host's own listener, so a
	// single process exercises the full serialize/socket/decode path.
	ForceLoop bool
	// Faults, when non-nil, wraps every dialed conn with socket-level fault
	// injection (latency, loss, corruption, partition, slow-drip).
	Faults *WireFaults
	// DialBackoff / MaxDialBackoff bound the supervised reconnect loop
	// (defaults 5ms / 1s; each failed dial doubles the wait, with up to
	// 25% jitter so a restarted hub is not hit by a thundering herd).
	DialBackoff    time.Duration
	MaxDialBackoff time.Duration
	// ReadIdle, when positive, drops a peer connection that delivers
	// nothing for this long. A stuck or silently dead peer then stops
	// occupying a reader, and the resulting missed heartbeats feed the
	// engine's failure detector. Size it well above the heartbeat interval.
	ReadIdle time.Duration
	// QueueLen bounds each peer's outbound frame queue (default 1024).
	// Frames arriving at a full queue are shed — the resend ledger
	// retransmits them once the writer catches up.
	QueueLen int
	// OnPeerDown, when non-nil, is called whenever a peer connection is
	// dropped (dial failure storms excluded): once per established conn
	// that dies, with the peer address and cause.
	OnPeerDown func(addr string, err error)
	// ObserveFlush, when non-nil, receives the number of frames coalesced
	// into each socket flush (the frames-per-encode histogram).
	ObserveFlush func(frames int)
}

func (c *WireConfig) fill() {
	if c.Codec == nil {
		c.Codec = GobPayloadCodec{}
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = 5 * time.Millisecond
	}
	if c.MaxDialBackoff <= 0 {
		c.MaxDialBackoff = time.Second
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
}

// wireHost is the per-Network wire runtime: the accept/reader side plus the
// supervised outbound peers.
type wireHost struct {
	net  *Network
	cfg  WireConfig
	self string

	mu     sync.Mutex
	peers  map[string]*wirePeer
	conns  map[Conn]struct{} // accepted conns, for teardown
	closed bool
	wg     sync.WaitGroup
}

func newWireHost(n *Network, cfg WireConfig) *wireHost {
	cfg.fill()
	h := &wireHost{
		net:   n,
		cfg:   cfg,
		self:  cfg.Listener.Addr(),
		peers: make(map[string]*wirePeer),
		conns: make(map[Conn]struct{}),
	}
	h.wg.Add(1)
	go h.acceptLoop()
	return h
}

// Addr returns the listener's bound address (the host's wire identity).
func (h *wireHost) Addr() string { return h.self }

// send routes one frame over the wire. ForceLoop frames go to the host's
// own listener; otherwise the destination resolves through cfg.Resolve.
// Never blocks: a full peer queue sheds the frame (resend recovers it).
func (h *wireHost) send(f frame) {
	addr := h.self
	if !h.cfg.ForceLoop {
		if h.cfg.Resolve == nil {
			h.net.Stats.WireShed.Inc()
			return
		}
		addr = h.cfg.Resolve(f.to)
		if addr == "" {
			h.net.Stats.WireShed.Inc()
			return
		}
	}
	// Urgent control traffic (heartbeats, halt votes) rides a dedicated
	// control-plane connection per peer: with a shared socket a heartbeat
	// written after a replay storm of data frames sits behind megabytes of
	// bytes the receiver must decode first, and the starved failure detector
	// declares the peer dead — a recovery livelock. A separate conn gives
	// control frames their own socket and their own reader. A full urgent
	// lane sheds — urgent payloads are refreshed every interval.
	p := h.peer(addr, f.urgent)
	if p == nil {
		h.net.Stats.WireShed.Inc()
		return
	}
	select {
	case p.q <- f:
	default:
		if f.urgent {
			h.net.Stats.UrgentShed.Inc()
		} else {
			h.net.Stats.WireShed.Inc()
		}
	}
}

// peer returns (creating on first use) the supervised connection to addr.
// Each peer address has up to two lanes — bulk data and urgent control —
// each a wirePeer with its own conn, queue, and reconnect supervision.
func (h *wireHost) peer(addr string, urgent bool) *wirePeer {
	key := addr
	qlen := h.cfg.QueueLen
	if urgent {
		key = "\x00u|" + addr // NUL prefix cannot collide with a real address
		qlen = 64             // low-rate refreshable control traffic
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	p := h.peers[key]
	if p == nil {
		p = &wirePeer{
			host: h,
			addr: addr,
			q:    make(chan frame, qlen),
			stop: make(chan struct{}),
			rng:  rand.New(rand.NewSource(h.net.opts.DropSeed ^ int64(addrHash(key)))),
		}
		h.peers[key] = p
		h.wg.Add(1)
		go p.run()
	}
	return p
}

func addrHash(addr string) uint32 {
	fh := fnv.New32a()
	_, _ = fh.Write([]byte(addr))
	return fh.Sum32()
}

// acceptLoop owns the listener: every inbound conn gets a reader goroutine.
func (h *wireHost) acceptLoop() {
	defer h.wg.Done()
	for {
		c, err := h.cfg.Listener.Accept()
		if err != nil {
			return // listener closed
		}
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			_ = c.Close()
			return
		}
		h.conns[c] = struct{}{}
		h.wg.Add(1)
		h.mu.Unlock()
		go h.readLoop(c)
	}
}

// readLoop decodes inbound frames and hands them to local endpoints. Any
// corruption — checksum mismatch, torn frame, malformed lengths — drops the
// whole connection: delivering a frame that fails verification is never an
// option, and the peer's resend ledger replays what was lost.
func (h *wireHost) readLoop(c Conn) {
	defer h.wg.Done()
	defer func() {
		h.mu.Lock()
		delete(h.conns, c)
		h.mu.Unlock()
		_ = c.Close()
	}()
	var buf []byte
	for {
		if h.cfg.ReadIdle > 0 {
			_ = c.SetReadDeadline(time.Now().Add(h.cfg.ReadIdle))
		}
		b, err := c.ReadFrame(buf)
		if err != nil {
			h.connDown(c, err, isTornRead(err))
			return
		}
		buf = b
		h.net.Stats.WireRxBytes.Add(int64(len(b) + 4))
		f, err := decodeFrame(b, h.cfg.Codec)
		if err != nil {
			if errors.Is(err, errWireChecksum) {
				h.net.Stats.WireChecksumFailures.Inc()
			} else {
				h.net.Stats.WireTornFrames.Inc()
			}
			h.connDown(c, err, false)
			return
		}
		h.net.Stats.WireRxFrames.Inc()
		if ep := h.net.endpoint(f.to); ep != nil {
			ep.deliver(f)
			// deliver copies payload references into the inbox; the slice
			// itself is ours to recycle.
			putPayloadSlice(f.payloads)
		} else {
			h.net.Stats.WireShed.Inc()
		}
	}
}

// isTornRead classifies read failures that indicate a frame died mid-write —
// a corrupt length prefix or a body cut short — as opposed to a clean close
// or an idle eviction.
func isTornRead(err error) bool {
	return errors.Is(err, errWireLength) || errors.Is(err, io.ErrUnexpectedEOF)
}

// connDown records one dead connection and notifies the supervisor hook.
func (h *wireHost) connDown(c Conn, err error, torn bool) {
	if torn {
		h.net.Stats.WireTornFrames.Inc()
	}
	h.mu.Lock()
	closed := h.closed
	h.mu.Unlock()
	if !closed && h.cfg.OnPeerDown != nil {
		h.cfg.OnPeerDown(c.RemoteAddr(), err)
	}
}

// close tears the wire down: listener, accepted conns, peer writers.
func (h *wireHost) close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	peers := make([]*wirePeer, 0, len(h.peers))
	for _, p := range h.peers {
		peers = append(peers, p)
	}
	conns := make([]Conn, 0, len(h.conns))
	for c := range h.conns {
		conns = append(conns, c)
	}
	h.mu.Unlock()
	_ = h.cfg.Listener.Close()
	for _, p := range peers {
		p.stopOnce.Do(func() { close(p.stop) })
	}
	for _, c := range conns {
		_ = c.Close()
	}
	h.wg.Wait()
}

// wirePeer is one supervised outbound connection: a bounded frame queue
// drained by a writer goroutine that dials, batches, and reconnects.
type wirePeer struct {
	host     *wireHost
	addr     string
	q        chan frame
	stop     chan struct{}
	stopOnce sync.Once
	rng      *rand.Rand
}

// run is the writer loop. One live conn at a time; any error tears it down
// and the next frame triggers a redial with exponential backoff + jitter.
func (p *wirePeer) run() {
	defer p.host.wg.Done()
	var conn Conn
	var established int
	encBuf := make([]byte, 0, 16<<10)
	defer func() {
		if conn != nil {
			_ = conn.Close()
		}
	}()
	for {
		var f frame
		select {
		case <-p.stop:
			return
		case f = <-p.q:
		}
		if conn == nil {
			conn = p.dial(&established)
			if conn == nil {
				return // host closing; queued frames die, resend recovers
			}
		}
		// Encode the frame plus everything else already queued, then flush
		// once: frames-per-flush is the wire's batching ratio.
		frames := 0
		var werr error
		encBuf, werr = p.writeOne(conn, encBuf, f)
		if werr == nil {
			frames++
		drain:
			for {
				select {
				case f2 := <-p.q:
					encBuf, werr = p.writeOne(conn, encBuf, f2)
					if werr != nil {
						break drain
					}
					frames++
				default:
					break drain
				}
			}
		}
		if werr == nil {
			werr = conn.Flush()
		}
		if frames > 0 && p.host.cfg.ObserveFlush != nil {
			p.host.cfg.ObserveFlush(frames)
		}
		if werr != nil {
			// The conn is gone. Everything already dequeued but unflushed is
			// lost here — and recovered by the cumulative-ack/resend path,
			// which still holds every unacknowledged frame.
			_ = conn.Close()
			conn = nil
			p.host.connDown2(p.addr, werr)
		}
	}
}

// writeOne encodes one frame into scratch and writes it. Encode failures
// (an unregistered payload type, typically) skip the frame and count it;
// they are a programming error, not a connection fault.
func (p *wirePeer) writeOne(conn Conn, scratch []byte, f frame) ([]byte, error) {
	b, err := encodeFrame(scratch[:0], &f, p.host.cfg.Codec)
	if err != nil {
		p.host.net.Stats.WireEncodeErrors.Inc()
		return scratch, nil
	}
	if err := conn.WriteFrame(b); err != nil {
		return b, err
	}
	p.host.net.Stats.WireTxFrames.Inc()
	p.host.net.Stats.WireTxBytes.Add(int64(len(b) + 4))
	return b, nil
}

// connDown2 is connDown for the writer side, where only the address is
// known.
func (h *wireHost) connDown2(addr string, err error) {
	h.mu.Lock()
	closed := h.closed
	h.mu.Unlock()
	if !closed && h.cfg.OnPeerDown != nil {
		h.cfg.OnPeerDown(addr, err)
	}
}

// dial establishes the peer conn, backing off exponentially with jitter
// between attempts. Returns nil only when the host shuts down.
func (p *wirePeer) dial(established *int) Conn {
	backoff := p.host.cfg.DialBackoff
	for {
		select {
		case <-p.stop:
			return nil
		default:
		}
		d := p.host.cfg.Dialer
		if p.host.cfg.Faults != nil {
			d = FaultDialer{Dialer: d, Faults: p.host.cfg.Faults}
		}
		c, err := d.Dial(p.addr)
		if err == nil {
			if *established > 0 {
				p.host.net.Stats.WireReconnects.Inc()
			}
			*established++
			return c
		}
		jitter := time.Duration(p.rng.Int63n(int64(backoff)/4 + 1))
		select {
		case <-p.stop:
			return nil
		case <-time.After(backoff + jitter):
		}
		if backoff *= 2; backoff > p.host.cfg.MaxDialBackoff {
			backoff = p.host.cfg.MaxDialBackoff
		}
	}
}
