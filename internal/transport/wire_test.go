package transport

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- codec ---

func TestWireCodecRoundTrip(t *testing.T) {
	pc := GobPayloadCodec{}
	cases := []frame{
		{from: 1, to: 2, seq: 7, payloads: []any{"hello", int64(42), []byte{1, 2, 3}}},
		{from: 3, to: 4, seq: 9, ack: true, ackUpTo: 8},
		{from: 0, to: 1, seq: 0, urgent: true, traced: true, payloads: []any{"hb"}},
		{from: 5, to: 6, seq: 1, payloads: []any{}},
	}
	var buf []byte
	for i, want := range cases {
		var err error
		buf, err = encodeFrame(buf[:0], &want, pc)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		got, err := decodeFrame(buf, pc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.from != want.from || got.to != want.to || got.seq != want.seq ||
			got.ack != want.ack || got.ackUpTo != want.ackUpTo ||
			got.urgent != want.urgent || got.traced != want.traced {
			t.Fatalf("case %d: header round-trip: got %+v want %+v", i, got, want)
		}
		if len(got.payloads) != len(want.payloads) {
			t.Fatalf("case %d: payload count %d want %d", i, len(got.payloads), len(want.payloads))
		}
		for j := range want.payloads {
			switch w := want.payloads[j].(type) {
			case []byte:
				g, ok := got.payloads[j].([]byte)
				if !ok || string(g) != string(w) {
					t.Fatalf("case %d payload %d: got %#v want %#v", i, j, got.payloads[j], w)
				}
			default:
				if got.payloads[j] != w {
					t.Fatalf("case %d payload %d: got %#v want %#v", i, j, got.payloads[j], w)
				}
			}
		}
	}
}

// Every single-bit flip anywhere in a valid encoding must fail decode — the
// CRC spans everything after itself, and the CRC bytes themselves then
// disagree with the recomputation.
func TestWireCodecRejectsBitFlips(t *testing.T) {
	pc := GobPayloadCodec{}
	f := frame{from: 1, to: 2, seq: 3, payloads: []any{"payload", int64(-1)}}
	enc, err := encodeFrame(nil, &f, pc)
	if err != nil {
		t.Fatal(err)
	}
	mangled := make([]byte, len(enc))
	for at := 0; at < len(enc); at++ {
		for bit := 0; bit < 8; bit++ {
			copy(mangled, enc)
			mangled[at] ^= 1 << bit
			if _, err := decodeFrame(mangled, pc); err == nil {
				t.Fatalf("flip byte %d bit %d: decode accepted corrupt frame", at, bit)
			}
		}
	}
	// And truncations at every length.
	for n := 0; n < len(enc); n++ {
		if _, err := decodeFrame(enc[:n], pc); err == nil {
			t.Fatalf("truncation to %d bytes: decode accepted torn frame", n)
		}
	}
}

func TestWireCodecBufferReuse(t *testing.T) {
	pc := GobPayloadCodec{}
	buf := make([]byte, 0, 4096)
	for i := 0; i < 100; i++ {
		f := frame{from: 1, to: 2, seq: uint64(i), payloads: []any{int64(i)}}
		out, err := encodeFrame(buf[:0], &f, pc)
		if err != nil {
			t.Fatal(err)
		}
		g, err := decodeFrame(out, pc)
		if err != nil {
			t.Fatal(err)
		}
		if g.seq != uint64(i) || g.payloads[0] != int64(i) {
			t.Fatalf("iteration %d: round-trip mismatch: %+v", i, g)
		}
		buf = out
	}
}

// --- wired networks ---

// memWireNet builds a Network listening on the shared MemWire.
func memWireNet(t *testing.T, mw *MemWire, addr string, cfg WireConfig, opts Options) *Network {
	t.Helper()
	ln, err := mw.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Listener = ln
	cfg.Dialer = mw.Dialer()
	opts.Wire = &cfg
	return NewNetwork(opts)
}

// collect receives n payloads and asserts each expected int arrives exactly
// once (the transport's exactly-once-to-app guarantee over a lossy wire).
func collect(t *testing.T, ep *Endpoint, n int) {
	t.Helper()
	seen := make(map[int]bool, n)
	for len(seen) < n {
		env, ok := ep.Recv()
		if !ok {
			t.Fatalf("endpoint closed after %d/%d distinct payloads", len(seen), n)
		}
		v, ok := env.Payload.(int)
		if !ok {
			t.Fatalf("unexpected payload %#v", env.Payload)
		}
		if seen[v] {
			t.Fatalf("duplicate delivery of %d", v)
		}
		seen[v] = true
	}
}

func TestWireForceLoopDelivery(t *testing.T) {
	mw := NewMemWire()
	n := memWireNet(t, mw, "", WireConfig{ForceLoop: true}, Options{ResendAfter: 20 * time.Millisecond})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	const msgs = 200
	go func() {
		for i := 0; i < msgs; i++ {
			a.Send(2, i)
		}
	}()
	collect(t, b, msgs)
	if n.Stats.WireTxFrames.Value() == 0 || n.Stats.WireRxFrames.Value() == 0 {
		t.Fatalf("ForceLoop moved no wire frames: tx=%d rx=%d",
			n.Stats.WireTxFrames.Value(), n.Stats.WireRxFrames.Value())
	}
	if n.Stats.WireTxBytes.Value() == 0 || n.Stats.WireRxBytes.Value() == 0 {
		t.Fatalf("wire byte counters empty: tx=%d rx=%d",
			n.Stats.WireTxBytes.Value(), n.Stats.WireRxBytes.Value())
	}
}

func TestWireForceLoopOrderPreserved(t *testing.T) {
	mw := NewMemWire()
	n := memWireNet(t, mw, "", WireConfig{ForceLoop: true}, Options{ResendAfter: 50 * time.Millisecond})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	const msgs = 100
	go func() {
		for i := 0; i < msgs; i++ {
			a.Send(2, i)
		}
	}()
	// In-order per sender pair survives serialization (single peer queue,
	// single conn, in-order dedup fold on the receiver).
	for i := 0; i < msgs; i++ {
		env, ok := b.Recv()
		if !ok || env.Payload != i {
			t.Fatalf("message %d: got %+v, %v", i, env, ok)
		}
	}
}

func TestWireTCPRemoteDelivery(t *testing.T) {
	lnA, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrA, addrB := lnA.Addr(), lnB.Addr()
	resolve := func(self string) func(NodeID) string {
		return func(id NodeID) string {
			switch id {
			case 1:
				return addrA
			case 2:
				return addrB
			}
			_ = self
			return ""
		}
	}
	netA := NewNetwork(Options{
		ResendAfter: 20 * time.Millisecond,
		Wire:        &WireConfig{Listener: lnA, Dialer: TCPDialer{}, Resolve: resolve(addrA)},
	})
	defer netA.Close()
	netB := NewNetwork(Options{
		ResendAfter: 20 * time.Millisecond,
		Wire:        &WireConfig{Listener: lnB, Dialer: TCPDialer{}, Resolve: resolve(addrB)},
	})
	defer netB.Close()

	a := netA.Register(1)
	b := netB.Register(2)
	const msgs = 300
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			a.Send(2, i)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			b.Send(1, i)
		}
	}()
	collect(t, b, msgs)
	collect(t, a, msgs)
	wg.Wait()
	if netA.WireAddr() != addrA {
		t.Fatalf("WireAddr = %q want %q", netA.WireAddr(), addrA)
	}
}

// A corrupting wire: every corrupted frame must surface as a checksum
// failure and a dropped conn — never as a delivered frame — and the
// supervised reconnect plus the resend ledger must still get every payload
// through exactly once.
func TestWireCorruptionTriggersReconnectNoLoss(t *testing.T) {
	mw := NewMemWire()
	faults := NewWireFaults(42)
	faults.SetCorrupt(0.05)
	n := memWireNet(t, mw, "", WireConfig{ForceLoop: true, Faults: faults},
		Options{ResendAfter: 10 * time.Millisecond, DropSeed: 7})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	const msgs = 400
	go func() {
		for i := 0; i < msgs; i++ {
			a.Send(2, i)
		}
	}()
	collect(t, b, msgs)
	if n.Stats.WireChecksumFailures.Value() == 0 {
		t.Fatal("corrupting wire produced no checksum failures")
	}
	if n.Stats.WireReconnects.Value() == 0 {
		t.Fatal("dropped conns produced no reconnects")
	}
}

// A hard partition mid-stream: frames vanish while it holds, and healing
// replays everything past the ack watermark exactly once.
func TestWirePartitionHealNoLossNoDup(t *testing.T) {
	mw := NewMemWire()
	faults := NewWireFaults(1)
	n := memWireNet(t, mw, "", WireConfig{ForceLoop: true, Faults: faults},
		Options{ResendAfter: 10 * time.Millisecond})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	const msgs = 300
	go func() {
		for i := 0; i < msgs; i++ {
			if i == msgs/3 {
				faults.SetPartition(true)
			}
			if i == 2*msgs/3 {
				faults.SetPartition(false)
			}
			a.Send(2, i)
		}
	}()
	collect(t, b, msgs)
}

// An idle peer connection is evicted by the read deadline and the next frame
// redials transparently.
func TestWireIdleEviction(t *testing.T) {
	ln, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var downs atomic.Int64
	n := NewNetwork(Options{
		ResendAfter: 20 * time.Millisecond,
		Wire: &WireConfig{
			Listener:  ln,
			Dialer:    TCPDialer{},
			ForceLoop: true,
			ReadIdle:  50 * time.Millisecond,
			OnPeerDown: func(addr string, err error) {
				downs.Add(1)
			},
		},
	})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	a.Send(2, 1)
	if env, ok := b.Recv(); !ok || env.Payload != 1 {
		t.Fatalf("first delivery: %+v, %v", env, ok)
	}
	// Let the inbound conn idle out, then send again: the writer's conn was
	// severed server-side, so the write fails and the supervisor redials.
	deadline := time.Now().Add(5 * time.Second)
	for downs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle eviction never fired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	a.Send(2, 2)
	if env, ok := b.Recv(); !ok || env.Payload != 2 {
		t.Fatalf("post-eviction delivery: %+v, %v", env, ok)
	}
}

// Unresolvable destinations are shed and counted, not silently leaked or
// blocked on.
func TestWireUnroutableShed(t *testing.T) {
	mw := NewMemWire()
	n := memWireNet(t, mw, "", WireConfig{Resolve: func(NodeID) string { return "" }},
		Options{ResendAfter: 0})
	defer n.Close()
	a := n.Register(1)
	a.Send(99, "void")
	waitCounter(t, &n.Stats.WireShed, 1)
}

// ForceLoop keeps Kill/Recover partition semantics: frames to a killed
// endpoint cross the wire but are not delivered, and recovery replays them.
func TestWireForceLoopKillRecover(t *testing.T) {
	mw := NewMemWire()
	n := memWireNet(t, mw, "", WireConfig{ForceLoop: true},
		Options{ResendAfter: 10 * time.Millisecond})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	n.Kill(2)
	const msgs = 50
	go func() {
		for i := 0; i < msgs; i++ {
			a.Send(2, i)
		}
	}()
	time.Sleep(30 * time.Millisecond)
	n.Recover(2)
	collect(t, b, msgs)
}

func waitCounter(t *testing.T, c interface{ Value() int64 }, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %d, want >= %d", c.Value(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Encode failures (unregistered payload type) are counted and skipped — the
// connection survives and later frames still flow.
func TestWireEncodeErrorSkipsFrame(t *testing.T) {
	type unregistered struct{ X int }
	mw := NewMemWire()
	n := memWireNet(t, mw, "", WireConfig{ForceLoop: true},
		Options{ResendAfter: 0})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	a.Send(2, unregistered{X: 1})
	waitCounter(t, &n.Stats.WireEncodeErrors, 1)
	a.Send(2, 7)
	if env, ok := b.Recv(); !ok || env.Payload != 7 {
		t.Fatalf("delivery after encode error: %+v, %v", env, ok)
	}
}

func TestTCPConnRejectsOversizedPrefix(t *testing.T) {
	ln, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		_, err = c.ReadFrame(nil)
		done <- err
	}()
	c, err := (TCPDialer{}).Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A hostile length prefix (4GB frame) must be rejected without
	// allocation. Write the raw prefix through the conn's own buffer by
	// claiming a giant frame: WriteFrame refuses it locally, so poke the
	// bytes in via a tiny frame whose *content* is irrelevant — instead use
	// the raw net.Conn path: encode prefix manually.
	tc := c.(*tcpConn)
	if _, err := tc.c.Write([]byte{0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	err = <-done
	if err == nil {
		t.Fatal("oversized prefix accepted")
	}
	if !strings.Contains(err.Error(), "length prefix") {
		t.Fatalf("unexpected error: %v", err)
	}
}
