package transport

import (
	"sync"
	"testing"
	"time"
)

func TestBasicDelivery(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	a.Send(2, "hello")
	env, ok := b.Recv()
	if !ok || env.From != 1 || env.Payload != "hello" {
		t.Fatalf("Recv = %+v, %v", env, ok)
	}
}

func TestOrderPreservedPerSender(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	for i := 0; i < 100; i++ {
		a.Send(2, i)
	}
	for i := 0; i < 100; i++ {
		env, ok := b.Recv()
		if !ok || env.Payload != i {
			t.Fatalf("message %d: got %+v, %v", i, env, ok)
		}
	}
}

func TestRecvUnblocksOnClose(t *testing.T) {
	n := NewNetwork(Options{})
	a := n.Register(1)
	done := make(chan bool)
	go func() {
		_, ok := a.Recv()
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	a.Close()
	if ok := <-done; ok {
		t.Fatal("Recv on closed endpoint returned ok=true")
	}
}

func TestTryRecv(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	if _, ok := b.TryRecv(); ok {
		t.Fatal("TryRecv on empty inbox returned ok")
	}
	a.Send(2, 42)
	env, ok := b.TryRecv()
	if !ok || env.Payload != 42 {
		t.Fatalf("TryRecv = %+v, %v", env, ok)
	}
}

func TestDoubleRegisterPanics(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	n.Register(1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register should panic")
		}
	}()
	n.Register(1)
}

func TestResendRecoversDroppedMessages(t *testing.T) {
	n := NewNetwork(Options{ResendAfter: 5 * time.Millisecond, DropSeed: 1})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	n.SetFaults(0.5, 0) // half of all data frames are lost in flight
	const total = 200
	for i := 0; i < total; i++ {
		a.Send(2, i)
	}
	got := make(map[int]bool)
	deadline := time.After(5 * time.Second)
	for len(got) < total {
		ch := make(chan Envelope, 1)
		go func() {
			if env, ok := b.Recv(); ok {
				ch <- env
			}
		}()
		select {
		case env := <-ch:
			got[env.Payload.(int)] = true
		case <-deadline:
			t.Fatalf("only %d/%d messages recovered under 50%% drop", len(got), total)
		}
	}
	n.SetFaults(0, 0)
	waitZeroUnacked(t, a)
}

func TestDuplicatesSuppressed(t *testing.T) {
	n := NewNetwork(Options{ResendAfter: 5 * time.Millisecond, DropSeed: 2})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	n.SetFaults(0, 1.0) // every frame duplicated in flight
	const total = 50
	for i := 0; i < total; i++ {
		a.Send(2, i)
	}
	for i := 0; i < total; i++ {
		env, ok := b.Recv()
		if !ok || env.Payload != i {
			t.Fatalf("message %d: got %+v, %v", i, env, ok)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if p := b.Pending(); p != 0 {
		t.Fatalf("%d duplicate messages leaked into inbox", p)
	}
}

func TestKillAndRecover(t *testing.T) {
	n := NewNetwork(Options{ResendAfter: 5 * time.Millisecond})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)

	n.Kill(2)
	a.Send(2, "while-down")
	time.Sleep(15 * time.Millisecond)
	if _, ok := b.TryRecv(); ok {
		t.Fatal("dead node received a message")
	}

	n.Recover(2)
	env, ok := b.Recv() // retransmission must arrive
	if !ok || env.Payload != "while-down" {
		t.Fatalf("after recovery got %+v, %v", env, ok)
	}
	waitZeroUnacked(t, a)
}

func TestDeadNodeCannotSend(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	n.Kill(1)
	a.Send(2, "ghost")
	time.Sleep(5 * time.Millisecond)
	if _, ok := b.TryRecv(); ok {
		t.Fatal("killed node's send was delivered")
	}
}

func TestCountersTrackTraffic(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Register(1)
	n.Register(2).Close() // closed endpoints drop deliveries
	c := n.Register(3)
	a.Send(3, 1)
	a.Send(3, 2)
	c.Recv()
	c.Recv()
	if n.Stats.Sent.Value() != 2 {
		t.Fatalf("Sent = %d; want 2", n.Stats.Sent.Value())
	}
	if n.Stats.Delivered.Value() != 2 {
		t.Fatalf("Delivered = %d; want 2", n.Stats.Delivered.Value())
	}
}

func TestSharedStatsSurviveRebuild(t *testing.T) {
	st := &Stats{}
	n1 := NewNetwork(Options{Stats: st})
	a := n1.Register(1)
	n1.Register(2)
	a.Send(2, "x")
	n1.Abort()
	n2 := NewNetwork(Options{Stats: st})
	defer n2.Close()
	b := n2.Register(1)
	n2.Register(2)
	b.Send(2, "y")
	if st.Sent.Value() != 2 {
		t.Fatalf("shared Sent = %d across rebuild; want 2", st.Sent.Value())
	}
}

func TestResendBackoffCapDeadLetters(t *testing.T) {
	n := NewNetwork(Options{ResendAfter: 2 * time.Millisecond, MaxResends: 3, DropSeed: 7})
	defer n.Close()
	a := n.Register(1)
	n.Register(2).Crash() // dead forever: every frame to it is undeliverable
	const total = 5
	for i := 0; i < total; i++ {
		a.Send(2, i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for n.Stats.DeadLetters.Value() < total {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d frames dead-lettered", n.Stats.DeadLetters.Value(), total)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitZeroUnacked(t, a) // abandoned frames must leave the send buffer
	if r := n.Stats.Resent.Value(); r != total*3 {
		t.Fatalf("Resent = %d; want exactly MaxResends per frame (%d)", r, total*3)
	}
}

func TestResendBacksOffExponentially(t *testing.T) {
	const after = 4 * time.Millisecond
	n := NewNetwork(Options{ResendAfter: after, DropSeed: 3})
	defer n.Close()
	a := n.Register(1)
	n.Register(2)
	n.Kill(2) // frames to it vanish but stay buffered at the sender
	a.Send(2, "slow")
	// With doubling backoff the first ~90ms allow at most attempts at
	// 4, 8+j, 16+j, 32+j, 64+j ms — i.e. no more than 5; a fixed-interval
	// retransmitter would have fired ~22 times.
	time.Sleep(90 * time.Millisecond)
	if r := n.Stats.Resent.Value(); r > 6 {
		t.Fatalf("Resent = %d after 90ms; backoff is not exponential", r)
	}
}

func TestCrashDiscardsState(t *testing.T) {
	n := NewNetwork(Options{ResendAfter: 5 * time.Millisecond})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	a.Send(2, "queued")
	time.Sleep(10 * time.Millisecond) // let it arrive in b's inbox
	b.Crash()
	if _, ok := b.TryRecv(); ok {
		t.Fatal("crashed endpoint still delivered queued input")
	}
	if _, ok := b.Recv(); ok {
		t.Fatal("Recv on crashed endpoint did not unblock with false")
	}
	if !b.Crashed() {
		t.Fatal("Crashed() = false after Crash")
	}
	// Sends from a crashed endpoint are suppressed.
	b.Send(1, "ghost")
	time.Sleep(5 * time.Millisecond)
	if _, ok := a.TryRecv(); ok {
		t.Fatal("crashed endpoint's send was delivered")
	}
}

func TestConcurrentSenders(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	const senders, per = 8, 200
	dst := n.Register(0)
	var wg sync.WaitGroup
	for s := 1; s <= senders; s++ {
		ep := n.Register(NodeID(s))
		wg.Add(1)
		go func(ep *Endpoint) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ep.Send(0, i)
			}
		}(ep)
	}
	wg.Wait()
	counts := make(map[NodeID]int)
	for i := 0; i < senders*per; i++ {
		env, ok := dst.Recv()
		if !ok {
			t.Fatal("Recv closed early")
		}
		// Per-sender FIFO: payload must equal that sender's count so far.
		if env.Payload != counts[env.From] {
			t.Fatalf("sender %d out of order: got %v want %d", env.From, env.Payload, counts[env.From])
		}
		counts[env.From]++
	}
}

func TestSendToUnknownNodeIsNoop(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Register(1)
	a.Send(99, "void") // must not panic or block
}

func waitZeroUnacked(t *testing.T, e *Endpoint) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if e.Unacked() == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("endpoint still has %d unacked frames", e.Unacked())
}
