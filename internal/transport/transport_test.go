package transport

import (
	"sync"
	"testing"
	"time"
)

func TestBasicDelivery(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	a.Send(2, "hello")
	env, ok := b.Recv()
	if !ok || env.From != 1 || env.Payload != "hello" {
		t.Fatalf("Recv = %+v, %v", env, ok)
	}
}

func TestOrderPreservedPerSender(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	for i := 0; i < 100; i++ {
		a.Send(2, i)
	}
	for i := 0; i < 100; i++ {
		env, ok := b.Recv()
		if !ok || env.Payload != i {
			t.Fatalf("message %d: got %+v, %v", i, env, ok)
		}
	}
}

func TestRecvUnblocksOnClose(t *testing.T) {
	n := NewNetwork(Options{})
	a := n.Register(1)
	done := make(chan bool)
	go func() {
		_, ok := a.Recv()
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	a.Close()
	if ok := <-done; ok {
		t.Fatal("Recv on closed endpoint returned ok=true")
	}
}

func TestTryRecv(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	if _, ok := b.TryRecv(); ok {
		t.Fatal("TryRecv on empty inbox returned ok")
	}
	a.Send(2, 42)
	env, ok := b.TryRecv()
	if !ok || env.Payload != 42 {
		t.Fatalf("TryRecv = %+v, %v", env, ok)
	}
}

func TestDoubleRegisterPanics(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	n.Register(1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register should panic")
		}
	}()
	n.Register(1)
}

func TestResendRecoversDroppedMessages(t *testing.T) {
	n := NewNetwork(Options{ResendAfter: 5 * time.Millisecond, DropSeed: 1})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	n.SetFaults(0.5, 0) // half of all data frames are lost in flight
	const total = 200
	for i := 0; i < total; i++ {
		a.Send(2, i)
	}
	got := make(map[int]bool)
	deadline := time.After(5 * time.Second)
	for len(got) < total {
		ch := make(chan Envelope, 1)
		go func() {
			if env, ok := b.Recv(); ok {
				ch <- env
			}
		}()
		select {
		case env := <-ch:
			got[env.Payload.(int)] = true
		case <-deadline:
			t.Fatalf("only %d/%d messages recovered under 50%% drop", len(got), total)
		}
	}
	n.SetFaults(0, 0)
	waitZeroUnacked(t, a)
}

func TestDuplicatesSuppressed(t *testing.T) {
	n := NewNetwork(Options{ResendAfter: 5 * time.Millisecond, DropSeed: 2})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	n.SetFaults(0, 1.0) // every frame duplicated in flight
	const total = 50
	for i := 0; i < total; i++ {
		a.Send(2, i)
	}
	for i := 0; i < total; i++ {
		env, ok := b.Recv()
		if !ok || env.Payload != i {
			t.Fatalf("message %d: got %+v, %v", i, env, ok)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if p := b.Pending(); p != 0 {
		t.Fatalf("%d duplicate messages leaked into inbox", p)
	}
}

func TestKillAndRecover(t *testing.T) {
	n := NewNetwork(Options{ResendAfter: 5 * time.Millisecond})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)

	n.Kill(2)
	a.Send(2, "while-down")
	time.Sleep(15 * time.Millisecond)
	if _, ok := b.TryRecv(); ok {
		t.Fatal("dead node received a message")
	}

	n.Recover(2)
	env, ok := b.Recv() // retransmission must arrive
	if !ok || env.Payload != "while-down" {
		t.Fatalf("after recovery got %+v, %v", env, ok)
	}
	waitZeroUnacked(t, a)
}

func TestDeadNodeCannotSend(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	n.Kill(1)
	a.Send(2, "ghost")
	time.Sleep(5 * time.Millisecond)
	if _, ok := b.TryRecv(); ok {
		t.Fatal("killed node's send was delivered")
	}
}

func TestCountersTrackTraffic(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Register(1)
	n.Register(2).Close() // closed endpoints drop deliveries
	c := n.Register(3)
	a.Send(3, 1)
	a.Send(3, 2)
	c.Recv()
	c.Recv()
	if n.Sent.Value() != 2 {
		t.Fatalf("Sent = %d; want 2", n.Sent.Value())
	}
	if n.Delivered.Value() != 2 {
		t.Fatalf("Delivered = %d; want 2", n.Delivered.Value())
	}
}

func TestConcurrentSenders(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	const senders, per = 8, 200
	dst := n.Register(0)
	var wg sync.WaitGroup
	for s := 1; s <= senders; s++ {
		ep := n.Register(NodeID(s))
		wg.Add(1)
		go func(ep *Endpoint) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ep.Send(0, i)
			}
		}(ep)
	}
	wg.Wait()
	counts := make(map[NodeID]int)
	for i := 0; i < senders*per; i++ {
		env, ok := dst.Recv()
		if !ok {
			t.Fatal("Recv closed early")
		}
		// Per-sender FIFO: payload must equal that sender's count so far.
		if env.Payload != counts[env.From] {
			t.Fatalf("sender %d out of order: got %v want %d", env.From, env.Payload, counts[env.From])
		}
		counts[env.From]++
	}
}

func TestSendToUnknownNodeIsNoop(t *testing.T) {
	n := NewNetwork(Options{})
	defer n.Close()
	a := n.Register(1)
	a.Send(99, "void") // must not panic or block
}

func waitZeroUnacked(t *testing.T, e *Endpoint) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if e.Unacked() == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("endpoint still has %d unacked frames", e.Unacked())
}
