// Wire frame codec: the length-prefixed binary representation of a frame on
// a real connection. The in-process transport hands frames between endpoints
// as Go values; the wire layer serializes the exact same frame/batch/ack
// structure so nothing above the transport can tell the substrates apart.
//
// Layout of one encoded frame (the Conn implementations additionally prefix
// the whole blob with a uint32 length when the medium is a byte stream):
//
//	[0]     version byte (wireVersion)
//	[1:5]   CRC32 (IEEE) of everything after this field, big endian
//	[5]     flags: bit0 ack, bit1 urgent, bit2 traced
//	[6:10]  from NodeID (uint32)
//	[10:14] to NodeID (uint32)
//	[14:22] seq (uint64)
//	[22:30] ackUpTo (uint64)
//	[30:34] payload count (uint32)
//	then per payload: uint32 length + that many payload-codec bytes
//
// Corruption defense is layered: a frame whose version byte, CRC, count or
// any declared length disagrees with the bytes on hand decodes to an error —
// never a panic, never a delivery, and never an allocation sized by
// attacker-controlled lengths (every declared length is validated against
// the bytes actually present before anything is allocated). The connection
// that produced such a frame is dropped by the reader; the cumulative-ack /
// resend machinery re-delivers whatever was in flight after the reconnect.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
)

// wireVersion is the current frame format version. A peer speaking a
// different version is dropped at decode (forward compatibility is a
// reconnect-and-upgrade story, not a mixed-version one).
const wireVersion = 1

// MaxFrameBytes bounds one encoded frame (and therefore every read buffer a
// conn allocates). A length prefix beyond it is treated as corruption.
const MaxFrameBytes = 16 << 20

// maxWirePayloads bounds the payload count one frame may declare. The
// batching layer seals frames at MaxBatch payloads (default 64), so a frame
// claiming more than this is adversarial or corrupt.
const maxWirePayloads = 1 << 16

const wireHeaderLen = 34 // version..count, before the payload section

const (
	wireFlagAck    = 1 << 0
	wireFlagUrgent = 1 << 1
	wireFlagTraced = 1 << 2
)

// Frame decode errors. errWireChecksum is special-cased by readers: it is
// counted as a checksum failure, every other decode error as a torn frame.
var (
	errWireShort    = errors.New("transport: frame truncated")
	errWireVersion  = errors.New("transport: unknown wire version")
	errWireChecksum = errors.New("transport: frame checksum mismatch")
	errWireLength   = errors.New("transport: frame length field exceeds data")
)

// PayloadCodec serializes the opaque payloads a frame carries. Encode
// appends to buf (reuse across calls keeps the encode path allocation-flat)
// and Decode must tolerate arbitrary bytes by returning an error.
type PayloadCodec interface {
	EncodePayload(buf []byte, p any) ([]byte, error)
	DecodePayload(data []byte) (any, error)
}

// encodeFrame appends the wire encoding of f to dst and returns the extended
// slice. Payloads are serialized through pc.
func encodeFrame(dst []byte, f *frame, pc PayloadCodec) ([]byte, error) {
	base := len(dst)
	var flags byte
	if f.ack {
		flags |= wireFlagAck
	}
	if f.urgent {
		flags |= wireFlagUrgent
	}
	if f.traced {
		flags |= wireFlagTraced
	}
	dst = append(dst, wireVersion, 0, 0, 0, 0, flags)
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.from))
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.to))
	dst = binary.BigEndian.AppendUint64(dst, f.seq)
	dst = binary.BigEndian.AppendUint64(dst, f.ackUpTo)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.payloads)))
	for _, p := range f.payloads {
		// Reserve the length field, encode in place, then backfill it.
		lenAt := len(dst)
		dst = append(dst, 0, 0, 0, 0)
		var err error
		dst, err = pc.EncodePayload(dst, p)
		if err != nil {
			return dst[:base], fmt.Errorf("transport: encode payload: %w", err)
		}
		binary.BigEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	}
	if len(dst)-base > MaxFrameBytes {
		return dst[:base], fmt.Errorf("transport: frame exceeds %d bytes", MaxFrameBytes)
	}
	binary.BigEndian.PutUint32(dst[base+1:], crc32.ChecksumIEEE(dst[base+5:]))
	return dst, nil
}

// decodeFrame parses one encoded frame. Payload bytes are decoded through pc
// into fresh values (the input buffer is the conn's and will be reused).
// Every failure mode — truncation, bad version, checksum mismatch, a length
// or count field larger than the data present — returns an error; no input
// can panic or force an allocation bigger than the input itself.
func decodeFrame(data []byte, pc PayloadCodec) (frame, error) {
	var f frame
	if len(data) < wireHeaderLen {
		return f, errWireShort
	}
	if len(data) > MaxFrameBytes {
		return f, errWireLength
	}
	if data[0] != wireVersion {
		return f, errWireVersion
	}
	if crc32.ChecksumIEEE(data[5:]) != binary.BigEndian.Uint32(data[1:5]) {
		return f, errWireChecksum
	}
	flags := data[5]
	f.ack = flags&wireFlagAck != 0
	f.urgent = flags&wireFlagUrgent != 0
	f.traced = flags&wireFlagTraced != 0
	f.from = NodeID(binary.BigEndian.Uint32(data[6:10]))
	f.to = NodeID(binary.BigEndian.Uint32(data[10:14]))
	f.seq = binary.BigEndian.Uint64(data[14:22])
	f.ackUpTo = binary.BigEndian.Uint64(data[22:30])
	count := binary.BigEndian.Uint32(data[30:34])
	rest := data[wireHeaderLen:]
	if count == 0 {
		if len(rest) != 0 {
			return f, errWireLength
		}
		return f, nil
	}
	// A payload costs at least its 4-byte length field, so the count can be
	// sanity-checked against the bytes on hand before any slice is sized.
	if count > maxWirePayloads || int(count) > len(rest)/4 {
		return f, errWireLength
	}
	f.payloads = getPayloadSlice()
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			putPayloadSlice(f.payloads)
			f.payloads = nil
			return f, errWireShort
		}
		n := binary.BigEndian.Uint32(rest[:4])
		rest = rest[4:]
		if uint64(n) > uint64(len(rest)) {
			putPayloadSlice(f.payloads)
			f.payloads = nil
			return f, errWireLength
		}
		p, err := pc.DecodePayload(rest[:n])
		if err != nil {
			putPayloadSlice(f.payloads)
			f.payloads = nil
			return f, fmt.Errorf("transport: decode payload: %w", err)
		}
		f.payloads = append(f.payloads, p)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		putPayloadSlice(f.payloads)
		f.payloads = nil
		return f, errWireLength
	}
	return f, nil
}

// payloadHolder wraps a payload for gob so the dynamic type round-trips
// through the interface field (concrete types must be gob-registered, which
// the engine does for its message vocabulary).
type payloadHolder struct {
	V any
}

// Scalar payloads ride the wire without user registration; anything richer
// is the application's vocabulary to register.
func init() {
	gob.Register("")
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register(uint64(0))
	gob.Register(float64(0))
	gob.Register(false)
	gob.Register([]byte(nil))
}

// gobState pools the buffer+encoder pairs the gob payload codec reuses.
// A gob.Encoder is bound to its writer, so buffer and encoder recycle
// together; each Encode call on a fresh encoder re-emits type definitions,
// which is the price of per-payload framing (measured by BENCH_wire).
type gobState struct {
	buf bytes.Buffer
}

var gobPool = sync.Pool{New: func() any { return new(gobState) }}

// GobPayloadCodec is the default PayloadCodec: encoding/gob with an
// interface wrapper. It is symmetric with engine.GobCodec's state
// serialization, so one registration (gob.Register / RegisterStateType)
// covers checkpoints and the wire alike.
type GobPayloadCodec struct{}

// EncodePayload implements PayloadCodec.
func (GobPayloadCodec) EncodePayload(buf []byte, p any) ([]byte, error) {
	st := gobPool.Get().(*gobState)
	st.buf.Reset()
	err := gob.NewEncoder(&st.buf).Encode(&payloadHolder{V: p})
	if err == nil {
		buf = append(buf, st.buf.Bytes()...)
	}
	gobPool.Put(st)
	if err != nil {
		return buf, err
	}
	return buf, nil
}

// DecodePayload implements PayloadCodec. Gob decoding of hostile bytes
// returns an error; the decoder additionally refuses inputs whose decoded
// size would dwarf the input (gob's own allocation limits apply).
func (GobPayloadCodec) DecodePayload(data []byte) (any, error) {
	var h payloadHolder
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&h); err != nil {
		return nil, err
	}
	return h.V, nil
}
