// Socket-level fault injection: a Conn wrapper that mangles outbound
// traffic the way a real flaky link would — added latency, silent drops,
// duplicated frames, flipped bytes, hard partitions and slow-drip writes.
// The wire host wraps every dialed conn with one shared WireFaults, so the
// chaos API can flip faults on a running topology; inbound traffic is the
// remote side's outbound, so wrapping dialers covers every direction of a
// symmetric deployment.
//
// Byte corruption is the interesting one: the flipped byte invalidates the
// frame CRC, the receiving reader counts a checksum failure and drops the
// connection rather than delivering garbage, and the cumulative-ack/resend
// machinery re-delivers everything unacknowledged over the next conn — the
// end-to-end defense the codec fuzz target and the wire chaos soaks pin.
package transport

import (
	"math/rand"
	"sync"
	"time"
)

// WireFaults is the shared, runtime-adjustable fault state of a wire. All
// methods are safe for concurrent use; the zero value injects nothing.
type WireFaults struct {
	mu        sync.Mutex
	rng       *rand.Rand
	latency   time.Duration
	dropRate  float64
	dupRate   float64
	corrupt   float64
	slowDrip  time.Duration
	partition bool
}

// NewWireFaults returns a fault state drawing from the given seed.
func NewWireFaults(seed int64) *WireFaults {
	return &WireFaults{rng: rand.New(rand.NewSource(seed))}
}

// SetLatency adds d of delay before every frame write (0 clears).
func (w *WireFaults) SetLatency(d time.Duration) { w.mu.Lock(); w.latency = d; w.mu.Unlock() }

// SetLoss makes each outbound frame dropped with probability drop and
// duplicated with probability dup.
func (w *WireFaults) SetLoss(drop, dup float64) {
	w.mu.Lock()
	w.dropRate, w.dupRate = drop, dup
	w.mu.Unlock()
}

// SetCorrupt flips one byte of each outbound frame with probability rate.
// The receiver's CRC check turns every corruption into a dropped connection,
// never a delivered frame.
func (w *WireFaults) SetCorrupt(rate float64) { w.mu.Lock(); w.corrupt = rate; w.mu.Unlock() }

// SetSlowDrip stretches every frame write by d (a pathologically slow
// sender; pair with a read-idle deadline on the receiver to exercise
// stuck-peer eviction). 0 clears.
func (w *WireFaults) SetSlowDrip(d time.Duration) { w.mu.Lock(); w.slowDrip = d; w.mu.Unlock() }

// SetPartition hard-partitions the wire: every outbound frame vanishes
// until the partition heals. Senders keep frames on their resend ledgers,
// so healing replays everything past the ack watermark exactly once.
func (w *WireFaults) SetPartition(on bool) { w.mu.Lock(); w.partition = on; w.mu.Unlock() }

// Partitioned reports the current partition state.
func (w *WireFaults) Partitioned() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.partition
}

// plan draws the per-frame fault decisions in one critical section.
type faultPlan struct {
	latency  time.Duration
	slowDrip time.Duration
	drop     bool
	dup      bool
	corrupt  bool
}

func (w *WireFaults) plan() faultPlan {
	w.mu.Lock()
	defer w.mu.Unlock()
	p := faultPlan{latency: w.latency, slowDrip: w.slowDrip}
	if w.partition {
		p.drop = true
		return p
	}
	if w.rng == nil {
		w.rng = rand.New(rand.NewSource(1))
	}
	if w.dropRate > 0 && w.rng.Float64() < w.dropRate {
		p.drop = true
	}
	if w.dupRate > 0 && w.rng.Float64() < w.dupRate {
		p.dup = true
	}
	if w.corrupt > 0 && w.rng.Float64() < w.corrupt {
		p.corrupt = true
	}
	return p
}

// corruptByte picks the flip position deterministically from the rng.
func (w *WireFaults) corruptByte(n int) (int, byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.rng == nil {
		w.rng = rand.New(rand.NewSource(1))
	}
	return w.rng.Intn(n), byte(1 << w.rng.Intn(8))
}

// FaultConn wraps a Conn with a WireFaults policy. Reads pass through
// untouched (the remote side's faults shape what arrives).
type FaultConn struct {
	Conn
	Faults *WireFaults
}

// WriteFrame implements Conn, applying the fault plan to the outbound
// frame. Corruption operates on a copy: the caller's buffer (and any resend
// ledger aliasing it) stays pristine.
func (f *FaultConn) WriteFrame(frame []byte) error {
	p := f.Faults.plan()
	if p.latency > 0 {
		time.Sleep(p.latency)
	}
	if p.slowDrip > 0 {
		// A slow-drip sender holds the line busy far longer than the frame
		// warrants; the receiver's idle deadline is the defense.
		time.Sleep(p.slowDrip)
	}
	if p.drop {
		return nil // vanished in flight; resend recovers
	}
	if p.corrupt && len(frame) > 0 {
		mangled := make([]byte, len(frame))
		copy(mangled, frame)
		at, bit := f.Faults.corruptByte(len(mangled))
		mangled[at] ^= bit
		frame = mangled
	}
	if err := f.Conn.WriteFrame(frame); err != nil {
		return err
	}
	if p.dup {
		return f.Conn.WriteFrame(frame)
	}
	return nil
}

// FaultDialer wraps every dialed conn with the shared fault state.
type FaultDialer struct {
	Dialer
	Faults *WireFaults
}

// Dial implements Dialer.
func (d FaultDialer) Dial(addr string) (Conn, error) {
	c, err := d.Dialer.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &FaultConn{Conn: c, Faults: d.Faults}, nil
}
