// Package transport is Tornado's transportation layer (Section 5.1): it
// moves messages between the nodes of a topology (ingesters, processors,
// master) and ensures they are delivered without error.
//
// The package provides an in-process Network of Endpoints. Delivery is
// at-least-once: every frame carries a sequence number, receivers
// acknowledge, senders retransmit unacknowledged frames after a timeout,
// and receivers drop duplicates (Section 5.3: "When a sent message is not
// acknowledged in certain time, it will be resent to ensure at-least-once
// message passing"). Exactly-once is deliberately NOT promised — the engine
// layer above tolerates duplicates through the causality rule (stale updates
// are discarded).
//
// # Batching
//
// The unit of transmission is a frame carrying one or more payloads. With
// MaxBatch > 1 each endpoint keeps a per-destination output buffer: Send
// appends to it, and the buffer ships as one multi-payload frame when it
// reaches MaxBatch, when the sender calls Flush, or when the FlushInterval
// ticker fires (the latency backstop). SendNow bypasses the buffer for
// latency-critical traffic (heartbeats) while still draining the buffer
// first so per-destination order is preserved. Receivers drain their whole
// inbox under a single lock with RecvBatch, recycling the caller's previous
// batch slice so the steady state allocates nothing.
//
// Acks are cumulative: an ack frame carries both the acked sequence and the
// receiver's contiguous watermark (every sequence below it has been
// delivered). Senders compact their unacked map against the watermark, and
// receivers keep dedup state only for out-of-order sequences above it, so
// neither side's bookkeeping grows with the life of the connection. In
// batched mode receivers additionally defer acks for in-order frames
// (sending one every few frames plus a ticker sweep), which suppresses most
// ack traffic; duplicates and out-of-order frames are always acked
// immediately.
//
// Retransmission backs off exponentially with jitter so a dead peer is not
// hammered at a fixed rate, and an optional MaxResends cap moves frames that
// can never be delivered to a dead-letter counter instead of retrying
// forever.
//
// Fault injection hooks reproduce the paper's failure experiments (Figures
// 8c and 8d) deterministically, at two severities:
//
//   - Kill/Recover pause a node: frames to it vanish but senders keep them
//     buffered, so recovery replays everything (a network partition).
//   - Crash tears a node down: its inbox, dedup state and send buffers are
//     discarded and its sequence state is gone — exactly what a process
//     crash loses. Recovery of crashed state is the engine layer's job
//     (restart from the last terminated-iteration checkpoint).
package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"tornado/internal/metrics"
	"tornado/internal/obs/trace"
)

// NodeID identifies an endpoint of the network.
type NodeID int32

// Envelope is a delivered message as seen by the receiver.
type Envelope struct {
	From    NodeID
	Payload any
}

// frame is the wire representation: a batch of payloads (data) or an ack.
type frame struct {
	from, to NodeID
	seq      uint64
	ack      bool
	// ackUpTo is the receiver's contiguous watermark on ack frames: every
	// data sequence below it has been delivered, so the sender may discard
	// all of them even if their dedicated acks were lost.
	ackUpTo  uint64
	payloads []any // data frames: one or more payloads, in send order
	// urgent marks SendNow traffic: it bypasses sender-side credit parking,
	// and a watermark-full receiver sheds (acks without enqueueing) it
	// rather than growing without bound — urgent payloads are refreshable
	// control signals, not data.
	urgent bool
	// traced marks a frame carrying at least one causally-traced payload, so
	// the receive path pays the per-payload trace.Carrier assertion only for
	// the rare sampled frame.
	traced bool
}

// Stats are the network's delivery counters. The engine owns one Stats and
// threads it through every Network it builds, so counts survive the network
// teardown/rebuild a crash recovery performs.
type Stats struct {
	// Sent counts every data frame accepted for transmission (including
	// resends and duplicates); Payloads counts the payloads inside
	// first-transmission frames (so Payloads/(Sent−Resent) is the average
	// batch size); Delivered counts payloads handed to live receivers after
	// dedup.
	Sent      metrics.Counter
	Payloads  metrics.Counter
	Delivered metrics.Counter
	// Resent counts retransmissions after the ack timeout; AckFrames counts
	// acknowledgement frames sent by receivers; Dropped and Duplicated count
	// fault-injected in-flight losses and duplications.
	Resent     metrics.Counter
	AckFrames  metrics.Counter
	Dropped    metrics.Counter
	Duplicated metrics.Counter
	// DeadLetters counts frames abandoned after MaxResends retransmission
	// attempts — typically traffic addressed to a crashed endpoint.
	DeadLetters metrics.Counter
	// Stalls counts inbox high-watermark crossings (a receiver withdrew
	// delivery credit); HeldFrames counts data frames senders parked while
	// waiting for that credit to come back; UrgentShed counts SendNow frames
	// a watermark-full receiver acknowledged without enqueueing, plus urgent
	// frames shed at a full wire priority lane (both are refreshable).
	Stalls     metrics.Counter
	HeldFrames metrics.Counter
	UrgentShed metrics.Counter
	// Wire counters, all zero unless Options.Wire attaches a socket
	// substrate. WireTxFrames/WireRxFrames count frames serialized onto and
	// decoded off the wire; WireTxBytes/WireRxBytes count the encoded bytes
	// (length prefix included). WireReconnects counts supervised re-dials
	// after an established peer connection died. WireChecksumFailures counts
	// frames whose CRC did not match (each one drops its connection);
	// WireTornFrames counts framing damage short of a CRC mismatch —
	// truncated bodies, corrupt length prefixes, malformed payload tables.
	// WireShed counts frames dropped before the socket (full peer queue,
	// unresolvable destination) and inbound frames for unknown endpoints;
	// WireEncodeErrors counts payloads the codec refused (an unregistered
	// type — a programming error surfaced as a counter, not a panic).
	WireTxFrames         metrics.Counter
	WireRxFrames         metrics.Counter
	WireTxBytes          metrics.Counter
	WireRxBytes          metrics.Counter
	WireReconnects       metrics.Counter
	WireChecksumFailures metrics.Counter
	WireTornFrames       metrics.Counter
	WireShed             metrics.Counter
	WireEncodeErrors     metrics.Counter
}

// Options configure a Network.
type Options struct {
	// ResendAfter is how long a message may stay unacknowledged before it is
	// first retransmitted. Zero disables retransmission (exact-once
	// channels). Subsequent retransmissions of the same frame back off
	// exponentially (doubling, with up to 25% jitter) capped at MaxBackoff.
	ResendAfter time.Duration
	// MaxBackoff caps the per-frame retransmission interval (default
	// 64 × ResendAfter).
	MaxBackoff time.Duration
	// MaxResends caps retransmission attempts per frame; a frame exceeding
	// it is abandoned and counted in Stats.DeadLetters. Zero means
	// unlimited (legacy behavior).
	MaxResends int
	// MaxBatch is the per-destination output buffer size: Send buffers
	// payloads and ships a multi-payload frame when the buffer fills (or on
	// Flush / the FlushInterval tick). Zero or one sends every payload as
	// its own frame immediately (legacy behavior).
	MaxBatch int
	// FlushInterval bounds how long a buffered payload or a deferred ack may
	// wait before a background tick ships it. Only meaningful with
	// MaxBatch > 1 (default 2ms there).
	FlushInterval time.Duration
	// DisableRouteCache forces every frame through the global endpoint table
	// lookup instead of the per-endpoint peer cache (benchmark baseline).
	DisableRouteCache bool
	// InboxHigh bounds every endpoint's inbox with credit-based flow
	// control: once an inbox holds this many envelopes the receiver
	// withdraws delivery credit and senders park further data frames
	// locally (they never block) until the receiver drains back to
	// InboxLow. Control traffic — acks and SendNow frames — is never
	// parked, so heartbeats and failure detection are immune to data
	// congestion; a SendNow frame arriving at an inbox already holding
	// InboxHigh envelopes is instead shed (acknowledged but not enqueued,
	// counted in Stats.UrgentShed), so a starved consumer's control backlog
	// stays bounded too — urgent payloads are refreshed every interval, so
	// dropping the excess loses nothing a later beat does not restate.
	// Zero leaves inboxes unbounded (legacy behavior). The bound is on
	// envelopes, not frames: a frame already in flight when the watermark
	// trips still lands whole, so momentary overshoot is at most one
	// MaxBatch frame per concurrent sender.
	InboxHigh int
	// InboxLow is the drain watermark that restores credit to a stalled
	// inbox (default InboxHigh/2). The hysteresis gap keeps senders from
	// thrashing between parked and draining one envelope at a time.
	InboxLow int
	// DropSeed seeds the fault-injection and jitter RNGs.
	DropSeed int64
	// Stats, when non-nil, receives the network's counters; otherwise the
	// network allocates its own.
	Stats *Stats
	// Spans, when non-nil, records causal stage spans for traced payloads
	// riding through the transport: output-buffer dwell (batch), frame
	// transit including credit parking (frame), and escalation markers for
	// resends and dead letters. Payloads participate by implementing
	// trace.Carrier.
	Spans *trace.Tracer
	// SpanLoop labels this network's spans with the owning loop's ID.
	SpanLoop uint64
	// Wire, when non-nil, attaches a socket substrate (see WireConfig): in
	// ForceLoop mode every frame between local endpoints detours through a
	// real connection; otherwise frames addressed to NodeIDs with no local
	// endpoint are resolved to peer addresses and shipped remotely. Wire
	// deployments should set ResendAfter > 0 — the wire sheds frames freely
	// (reconnects, full queues, partitions) and relies on the resend ledger
	// for recovery.
	Wire *WireConfig
}

// ackEvery is the in-order ack sampling rate in batched mode: one immediate
// cumulative ack per this many frames, the rest deferred to the flush tick.
const ackEvery = 4

// Network connects a set of endpoints. Create one per topology (or per loop
// incarnation: a crash recovery tears the old network down and builds a
// fresh one over the same Stats).
type Network struct {
	mu        sync.Mutex
	endpoints map[NodeID]*Endpoint
	opts      Options
	closed    bool

	// Fault injection lives behind its own mutex plus an atomic gate so the
	// steady-state transmit path (faults off) takes no lock at all.
	faulty   atomic.Bool
	faultMu  sync.Mutex
	rng      *rand.Rand
	dropRate float64 // probability of dropping a data frame in flight
	dupRate  float64 // probability of duplicating a data frame in flight

	// Stats holds the delivery counters (shared with the creator when
	// Options.Stats was set).
	Stats *Stats

	// wire is the socket substrate, nil for pure in-process networks.
	wire *wireHost
}

// NewNetwork returns an empty network.
func NewNetwork(opts Options) *Network {
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 64 * opts.ResendAfter
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 1
	}
	if opts.MaxBatch > 1 && opts.FlushInterval <= 0 {
		opts.FlushInterval = 2 * time.Millisecond
	}
	if opts.InboxHigh > 0 && (opts.InboxLow <= 0 || opts.InboxLow >= opts.InboxHigh) {
		opts.InboxLow = opts.InboxHigh / 2
	}
	st := opts.Stats
	if st == nil {
		st = &Stats{}
	}
	n := &Network{
		endpoints: make(map[NodeID]*Endpoint),
		opts:      opts,
		rng:       rand.New(rand.NewSource(opts.DropSeed)),
		Stats:     st,
	}
	if opts.Wire != nil {
		n.wire = newWireHost(n, *opts.Wire)
	}
	return n
}

// WireAddr returns the bound wire listener address, or "" when the network
// has no wire attached.
func (n *Network) WireAddr() string {
	if n.wire == nil {
		return ""
	}
	return n.wire.Addr()
}

// SetFaults configures in-flight fault injection: each data frame is dropped
// with probability drop and duplicated with probability dup.
func (n *Network) SetFaults(drop, dup float64) {
	n.faultMu.Lock()
	n.dropRate, n.dupRate = drop, dup
	n.faultMu.Unlock()
	n.faulty.Store(drop > 0 || dup > 0)
}

// rollFaults draws the drop/duplicate decision for one data frame.
func (n *Network) rollFaults() (drop, dup bool) {
	n.faultMu.Lock()
	roll, roll2 := n.rng.Float64(), n.rng.Float64()
	drop = roll < n.dropRate
	dup = roll2 < n.dupRate
	n.faultMu.Unlock()
	return drop, dup
}

// Register creates the endpoint for id. Registering the same id twice panics
// (topology wiring bugs should fail loudly), which is also what makes the
// per-endpoint peer cache sound: a NodeID can never be rebound to a
// different Endpoint within one Network.
func (n *Network) Register(id NodeID) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.endpoints[id]; ok {
		panic(fmt.Sprintf("transport: node %d registered twice", id))
	}
	ep := &Endpoint{
		id:        id,
		net:       n,
		nextSeq:   make(map[NodeID]uint64),
		outbuf:    make(map[NodeID][]any),
		outTraced: make(map[NodeID]bool),
		unacked:   make(map[NodeID]map[uint64]*pending),
		recv:      make(map[NodeID]*recvState),
		rng:       rand.New(rand.NewSource(n.opts.DropSeed ^ int64(id)<<17 ^ 0x5bf03635)),
	}
	ep.cond = sync.NewCond(&ep.mu)
	n.endpoints[id] = ep
	if n.opts.ResendAfter > 0 {
		ep.resendStop = make(chan struct{})
		go ep.resendLoop(n.opts.ResendAfter)
	}
	if n.opts.MaxBatch > 1 {
		ep.flushStop = make(chan struct{})
		go ep.flushLoop(n.opts.FlushInterval)
	}
	return ep
}

// Kill simulates a network partition of node id: frames to it vanish
// (senders keep them buffered for retransmission), and its own sends are
// suppressed. State is preserved; Recover undoes it.
func (n *Network) Kill(id NodeID) {
	if ep := n.endpoint(id); ep != nil {
		ep.setDead(true)
		n.invalidateRoutes(id)
	}
}

// Recover reverses Kill: the node receives again, and retransmissions of
// frames lost while it was down will reach it.
func (n *Network) Recover(id NodeID) {
	if ep := n.endpoint(id); ep != nil {
		ep.setDead(false)
		n.invalidateRoutes(id)
	}
}

// Crash tears node id down with true crash semantics: its inbox (delivered
// but unprocessed messages), send buffers (buffered and unacknowledged
// frames) and dedup state are discarded, and blocked Recv calls return false
// immediately. The endpoint cannot be revived — recovery means building a
// new topology.
func (n *Network) Crash(id NodeID) {
	if ep := n.endpoint(id); ep != nil {
		ep.Crash()
		n.invalidateRoutes(id)
	}
}

// invalidateRoutes drops id from every endpoint's peer cache. Correctness
// does not depend on it (deliver checks the destination's own liveness
// flags), but fault transitions are rare and this keeps caches minimal.
func (n *Network) invalidateRoutes(id NodeID) {
	for _, ep := range n.list() {
		ep.peers.Delete(id)
	}
}

func (n *Network) endpoint(id NodeID) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.endpoints[id]
}

// Close shuts down every endpoint gracefully: buffered frames flush and
// receivers may drain their remaining inboxes. The wire (if any) comes down
// last, after the endpoints have flushed through it.
func (n *Network) Close() {
	for _, ep := range n.snapshotEndpoints() {
		ep.Close()
	}
	if n.wire != nil {
		n.wire.close()
	}
}

// Abort crashes every endpoint: all in-flight and queued traffic is
// discarded and receivers unblock immediately. The engine uses it to tear a
// failed loop incarnation down before restarting from a checkpoint.
func (n *Network) Abort() {
	for _, ep := range n.snapshotEndpoints() {
		ep.Crash()
	}
	if n.wire != nil {
		n.wire.close()
	}
}

func (n *Network) snapshotEndpoints() []*Endpoint {
	n.mu.Lock()
	eps := make([]*Endpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.closed = true
	n.mu.Unlock()
	return eps
}

// list snapshots the endpoint set without closing the network.
func (n *Network) list() []*Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	eps := make([]*Endpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	return eps
}

// MapSizes sums the per-endpoint bookkeeping maps: dedup entries beyond the
// cumulative-ack watermark and unacknowledged outgoing frames. Both are
// bounded by the in-flight window, not by connection lifetime — the soak
// benchmark asserts this.
func (n *Network) MapSizes() (seen, unacked int) {
	for _, ep := range n.list() {
		seen += ep.SeenSize()
		unacked += ep.Unacked()
	}
	return seen, unacked
}

// pending is an unacknowledged outgoing frame with its retransmission state.
type pending struct {
	f        frame
	nextAt   time.Time     // earliest next retransmission
	backoff  time.Duration // current retransmission interval
	attempts int           // retransmissions so far
}

// recvState is the per-sender receive ledger: next is the contiguous
// watermark (every sequence below it delivered), ahead holds only the
// out-of-order sequences above it, and ackDirty marks a deferred cumulative
// ack owed at the next flush tick.
type recvState struct {
	next     uint64
	ahead    map[uint64]struct{}
	ackDirty bool
}

// payloadPool recycles the per-frame payload slices on paths where the frame
// is not retained for retransmission.
var payloadPool = sync.Pool{New: func() any { return make([]any, 0, 64) }}

func getPayloadSlice() []any {
	return payloadPool.Get().([]any)[:0]
}

func putPayloadSlice(s []any) {
	if cap(s) == 0 || cap(s) > 1024 {
		return
	}
	for i := range s {
		s[i] = nil
	}
	payloadPool.Put(s[:0]) //nolint:staticcheck // slice header boxing is fine here
}

// Endpoint is one node's attachment to the network. Send and Recv are safe
// for concurrent use.
type Endpoint struct {
	id  NodeID
	net *Network

	// peers caches destination endpoints so the steady-state transmit path
	// never takes the global Network mutex. Sound because NodeIDs are never
	// rebound (Register panics on reuse); invalidated on fault transitions
	// anyway.
	peers sync.Map // NodeID → *Endpoint

	mu      sync.Mutex
	cond    *sync.Cond
	inbox   []Envelope
	closed  bool
	dead    bool
	crashed bool
	nextSeq map[NodeID]uint64
	outbuf  map[NodeID][]any
	// outTraced marks destinations whose output buffer holds at least one
	// causally-traced payload; the seal pays the per-payload restamp walk
	// only for those. Guarded by mu, entries consumed by sealLocked.
	outTraced map[NodeID]bool
	unacked   map[NodeID]map[uint64]*pending
	recv      map[NodeID]*recvState
	rng       *rand.Rand // jitter; guarded by mu

	// stalled is the receiver-side credit flag: set (under mu, in deliver)
	// once the inbox reaches the high watermark, cleared once a drain takes
	// it to the low watermark. Atomic so senders can consult it without the
	// receiver's lock.
	stalled atomic.Bool
	// held and draining are the sender side of flow control: frames parked
	// per destination while its credit is withdrawn, and the flag marking an
	// in-progress credit-grant replay (new frames park behind it to keep
	// per-pair order). Both guarded by mu, allocated lazily.
	held     map[NodeID][]frame
	draining map[NodeID]bool

	resendStop chan struct{}
	flushStop  chan struct{}
}

// ID returns the endpoint's node ID.
func (e *Endpoint) ID() NodeID { return e.id }

// Send transmits payload to node to, buffering it when batching is on. It
// never blocks. Messages from a dead (killed) node are silently suppressed;
// messages to a dead node stay buffered and are retransmitted after the node
// recovers (when the network has a resend timeout).
func (e *Endpoint) Send(to NodeID, payload any) {
	maxBatch := e.net.opts.MaxBatch
	// One atomic load decides whether the trace machinery is consulted at
	// all; only then is the payload's carrier interface inspected.
	traced := false
	if e.net.opts.Spans.Enabled() {
		if c, ok := payload.(trace.Carrier); ok && c.TraceCtx().Traced() {
			traced = true
		}
	}
	e.mu.Lock()
	if e.closed || e.dead {
		e.mu.Unlock()
		return
	}
	if traced {
		e.outTraced[to] = true
	}
	if maxBatch <= 1 {
		f := e.sealLocked(to, append(getPayloadSlice(), payload))
		e.mu.Unlock()
		e.transmitData(f)
		return
	}
	buf := e.outbuf[to]
	if buf == nil {
		buf = getPayloadSlice()
	}
	buf = append(buf, payload)
	if len(buf) >= maxBatch {
		delete(e.outbuf, to)
		f := e.sealLocked(to, buf)
		e.mu.Unlock()
		e.transmitData(f)
		return
	}
	e.outbuf[to] = buf
	e.mu.Unlock()
}

// SendNow transmits payload immediately, bypassing the batch buffer (after
// draining any buffered payloads for the same destination, so per-pair order
// is preserved). Heartbeats and other latency-critical control traffic use
// it so batching cannot delay them.
func (e *Endpoint) SendNow(to NodeID, payload any) {
	e.mu.Lock()
	if e.closed || e.dead {
		e.mu.Unlock()
		return
	}
	var pre frame
	hasPre := false
	if buf := e.outbuf[to]; len(buf) > 0 {
		delete(e.outbuf, to)
		pre = e.sealLocked(to, buf)
		hasPre = true
	}
	f := e.sealLocked(to, append(getPayloadSlice(), payload))
	f.urgent = true
	if m := e.unacked[to]; m != nil {
		if p := m[f.seq]; p != nil {
			p.f.urgent = true // resends of an urgent frame stay sheddable
		}
	}
	e.mu.Unlock()
	// SendNow traffic skips the credit check (see transmitDataNow). The
	// drained buffer rides the same bypass: holding it while the urgent
	// frame jumps ahead would reorder the pair.
	if hasPre {
		e.transmitDataNow(pre)
	}
	e.transmitDataNow(f)
}

// Flush seals every non-empty output buffer into a frame and transmits it.
// Senders call it at protocol boundaries (end of a dispatch window, frontier
// notifications); the FlushInterval ticker is only the latency backstop.
func (e *Endpoint) Flush() {
	e.mu.Lock()
	var frames []frame
	if !e.closed && !e.dead {
		frames = e.sealOutbufLocked()
	}
	e.mu.Unlock()
	for _, f := range frames {
		e.transmitData(f)
	}
}

// sealLocked assigns the next sequence number for to, builds the frame and
// registers it for retransmission. Caller holds e.mu. Traced payloads record
// their output-buffer dwell here and are restamped at seal time, so the
// receive side measures pure frame transit (including credit parking).
func (e *Endpoint) sealLocked(to NodeID, payloads []any) frame {
	wasTraced := e.outTraced[to]
	if wasTraced {
		delete(e.outTraced, to)
		if sp := e.net.opts.Spans; sp.Enabled() {
			now := sp.Now()
			for i, pl := range payloads {
				c, ok := pl.(trace.Carrier)
				if !ok {
					continue
				}
				ctx := c.TraceCtx()
				if !ctx.Traced() {
					continue
				}
				payloads[i] = c.WithTraceCtx(sp.Stage(ctx, trace.StageBatch,
					e.net.opts.SpanLoop, trace.NoVertex, uint64(to), now))
			}
		} else {
			wasTraced = false
		}
	}
	seq := e.nextSeq[to]
	e.nextSeq[to] = seq + 1
	f := frame{from: e.id, to: to, seq: seq, payloads: payloads, traced: wasTraced}
	if after := e.net.opts.ResendAfter; after > 0 {
		m := e.unacked[to]
		if m == nil {
			m = make(map[uint64]*pending)
			e.unacked[to] = m
		}
		m[seq] = &pending{f: f, nextAt: time.Now().Add(after), backoff: after}
	}
	return f
}

// sealOutbufLocked seals every buffered destination. Caller holds e.mu.
func (e *Endpoint) sealOutbufLocked() []frame {
	if len(e.outbuf) == 0 {
		return nil
	}
	frames := make([]frame, 0, len(e.outbuf))
	for to, buf := range e.outbuf {
		delete(e.outbuf, to)
		frames = append(frames, e.sealLocked(to, buf))
	}
	return frames
}

// transmitData counts and transmits a first-transmission data frame, and
// recycles its payload slice when the frame is neither retained for resend
// nor parked awaiting credit.
func (e *Endpoint) transmitData(f frame) {
	e.net.Stats.Sent.Inc()
	e.net.Stats.Payloads.Add(int64(len(f.payloads)))
	if e.holdOrTransmit(f) {
		return // parked; the credit grant transmits (and recycles) it later
	}
	if e.net.recycleAfterTransmit() {
		putPayloadSlice(f.payloads)
	}
}

// recycleAfterTransmit reports whether a transmitted frame's payload slice
// can be recycled by the sender. With resends off and no wire, transmit
// delivers synchronously and retains nothing. A wire makes transmit
// asynchronous — the frame sits in a peer queue still referencing the slice —
// so wire frames are left to the garbage collector instead (wire deployments
// run with resends on anyway, where the ledger owns the slice).
func (n *Network) recycleAfterTransmit() bool {
	return n.opts.ResendAfter <= 0 && n.wire == nil
}

// transmitDataNow is transmitData without the credit check: SendNow traffic
// (heartbeats, failure detection) must reach a congested receiver — acks
// don't queue in the inbox, and one control envelope past the watermark is
// harmless, whereas a parked heartbeat is a false crash suspicion.
func (e *Endpoint) transmitDataNow(f frame) {
	e.net.Stats.Sent.Inc()
	e.net.Stats.Payloads.Add(int64(len(f.payloads)))
	e.transmit(f)
	if e.net.recycleAfterTransmit() {
		putPayloadSlice(f.payloads)
	}
}

// holdOrTransmit implements the sender half of credit-based flow control:
// a data frame whose destination has withdrawn credit — or that would
// overtake frames already parked for it — is queued locally instead of
// delivered, and replayed in order when the receiver grants credit again.
// Reports whether the frame was parked.
func (e *Endpoint) holdOrTransmit(f frame) bool {
	if e.net.opts.InboxHigh <= 0 {
		e.transmit(f)
		return false
	}
	dst := e.peer(f.to)
	if dst == nil {
		// Unregistered destination: transmit handles the wire detour (remote
		// peers are outside the credit domain — their flow control is the
		// bounded peer queue plus the resend ledger) or drops the frame.
		e.transmit(f)
		return false
	}
	e.mu.Lock()
	if !e.closed && !e.crashed && (dst.stalled.Load() || len(e.held[f.to]) > 0 || e.draining[f.to]) {
		if e.held == nil {
			e.held = make(map[NodeID][]frame)
		}
		e.held[f.to] = append(e.held[f.to], f)
		e.net.Stats.HeldFrames.Inc()
		e.mu.Unlock()
		// The receiver may have granted credit between our stall check and
		// the append; re-check so a frame can never be parked forever.
		if !dst.stalled.Load() {
			e.releaseHeld(f.to)
		}
		return true
	}
	e.mu.Unlock()
	e.transmitTo(dst, f)
	return false
}

// grantCredits replays frames parked for destination to across every
// endpoint. The receiver calls it (with no locks held) after draining below
// its low watermark; crash and close transitions call it too, so parked
// frames can never outlive their destination's stall.
func (n *Network) grantCredits(to NodeID) {
	for _, ep := range n.list() {
		ep.releaseHeld(to)
	}
}

// releaseHeld transmits this endpoint's parked frames for destination to,
// oldest first. The draining flag keeps per-pair order: concurrent sends
// park behind the replay and the loop picks them up, and a second grant
// returns immediately rather than interleaving.
func (e *Endpoint) releaseHeld(to NodeID) {
	e.mu.Lock()
	if len(e.held[to]) == 0 || e.draining[to] {
		e.mu.Unlock()
		return
	}
	if e.draining == nil {
		e.draining = make(map[NodeID]bool)
	}
	e.draining[to] = true
	recycle := e.net.recycleAfterTransmit()
	for len(e.held[to]) > 0 {
		frames := e.held[to]
		delete(e.held, to)
		e.mu.Unlock()
		dst := e.peer(to)
		stopped := -1
		for i, f := range frames {
			if dst != nil && dst.stalled.Load() {
				stopped = i
				break
			}
			e.transmit(f)
			if recycle {
				putPayloadSlice(f.payloads)
			}
		}
		e.mu.Lock()
		if stopped >= 0 {
			// The destination stalled again mid-replay: park the remainder
			// ahead of anything that arrived while we were draining.
			rest := frames[stopped:]
			merged := make([]frame, 0, len(rest)+len(e.held[to]))
			merged = append(merged, rest...)
			merged = append(merged, e.held[to]...)
			e.held[to] = merged
			break
		}
	}
	delete(e.draining, to)
	e.mu.Unlock()
}

// transmit hands a frame to the destination endpoint, applying fault
// injection to data frames. The peer cache keeps the global Network mutex
// off this path. A destination with no local endpoint routes over the wire
// when one is attached (remote deployments); without a wire it is dropped,
// matching the legacy unregistered-destination behavior.
func (e *Endpoint) transmit(f frame) {
	dst := e.peer(f.to)
	if dst == nil {
		if w := e.net.wire; w != nil && !w.cfg.ForceLoop {
			w.send(f)
		}
		return
	}
	e.transmitTo(dst, f)
}

// transmitTo is transmit with the destination already resolved.
func (e *Endpoint) transmitTo(dst *Endpoint, f frame) {
	if !f.ack && e.net.faulty.Load() {
		drop, dup := e.net.rollFaults()
		if drop {
			e.net.Stats.Dropped.Inc()
			return // lost in flight; the resend loop will retry
		}
		e.net.dispatch(dst, f)
		if dup {
			e.net.Stats.Duplicated.Inc()
			e.net.dispatch(dst, f) // duplicated in flight; receiver must dedup
		}
		return
	}
	e.net.dispatch(dst, f)
}

// dispatch is the final hop of a locally-addressed frame: the destination
// endpoint's deliver, or — in ForceLoop wire mode — a detour through the
// host's own listener so the frame pays the full serialize/socket/decode
// path first.
func (n *Network) dispatch(dst *Endpoint, f frame) {
	if w := n.wire; w != nil && w.cfg.ForceLoop {
		w.send(f)
		return
	}
	dst.deliver(f)
}

// peer resolves the destination endpoint through the per-endpoint cache.
func (e *Endpoint) peer(to NodeID) *Endpoint {
	if e.net.opts.DisableRouteCache {
		return e.net.endpoint(to)
	}
	if v, ok := e.peers.Load(to); ok {
		return v.(*Endpoint)
	}
	dst := e.net.endpoint(to)
	if dst != nil {
		e.peers.Store(to, dst)
	}
	return dst
}

// deliver is called by a sending endpoint with an incoming frame.
func (e *Endpoint) deliver(f frame) {
	e.mu.Lock()
	if e.closed || e.dead {
		e.mu.Unlock()
		return
	}
	if f.ack {
		if m := e.unacked[f.from]; m != nil {
			delete(m, f.seq)
			// Cumulative compaction: everything below the watermark is
			// delivered even if its dedicated ack was lost or deferred.
			if f.ackUpTo > 0 {
				for seq := range m {
					if seq < f.ackUpTo {
						delete(m, seq)
					}
				}
			}
		}
		e.mu.Unlock()
		return
	}
	st := e.recv[f.from]
	if st == nil {
		st = &recvState{}
		e.recv[f.from] = st
	}
	var dup, inOrder, shed bool
	switch {
	case f.seq < st.next:
		dup = true
	case st.ahead != nil:
		_, dup = st.ahead[f.seq]
	}
	if !dup {
		if f.seq == st.next {
			inOrder = true
			st.next++
			// Fold now-contiguous out-of-order arrivals into the watermark;
			// this is what keeps the dedup map bounded by the reorder window.
			for len(st.ahead) > 0 {
				if _, ok := st.ahead[st.next]; !ok {
					break
				}
				delete(st.ahead, st.next)
				st.next++
			}
		} else {
			if st.ahead == nil {
				st.ahead = make(map[uint64]struct{})
			}
			st.ahead[f.seq] = struct{}{}
		}
		// An urgent frame meeting a watermark-full inbox is shed: the seq
		// bookkeeping above stands and the ack below confirms it, but the
		// payloads are not enqueued — its sender refreshes them every
		// interval, and appending would grow a starved consumer's backlog
		// without bound (urgent traffic is exempt from sender-side parking).
		if high := e.net.opts.InboxHigh; f.urgent && high > 0 && len(e.inbox) >= high {
			shed = true
		} else {
			sp := e.net.opts.Spans
			spanNow := int64(0)
			if f.traced && sp.Enabled() {
				spanNow = sp.Now()
			}
			for _, pl := range f.payloads {
				if spanNow != 0 {
					// Frame transit closes here: seal -> inbox, credit
					// parking included. Restamp so inbox dwell starts now.
					// The local pl copy is restamped (never f.payloads, which
					// the sender may still hold for retransmission).
					if c, ok := pl.(trace.Carrier); ok {
						if ctx := c.TraceCtx(); ctx.Traced() {
							pl = c.WithTraceCtx(sp.Stage(ctx, trace.StageFrame,
								e.net.opts.SpanLoop, trace.NoVertex, uint64(f.from), spanNow))
						}
					}
				}
				e.inbox = append(e.inbox, Envelope{From: f.from, Payload: pl})
			}
			e.cond.Broadcast()
		}
	}
	stalledNow := false
	if high := e.net.opts.InboxHigh; high > 0 && len(e.inbox) >= high && !e.stalled.Load() {
		e.stalled.Store(true)
		stalledNow = true
	}
	ackNow := true
	if e.net.opts.MaxBatch > 1 && inOrder && st.next%ackEvery != 0 {
		// Defer the ack: a later frame's cumulative watermark (or the flush
		// tick) covers this one. Duplicates and out-of-order frames are
		// acked immediately — the sender is demonstrably missing state.
		st.ackDirty = true
		ackNow = false
	}
	ackUpTo := st.next
	e.mu.Unlock()
	if stalledNow {
		e.net.Stats.Stalls.Inc()
	}
	if shed {
		e.net.Stats.UrgentShed.Inc()
	} else if !dup {
		e.net.Stats.Delivered.Add(int64(len(f.payloads)))
	}
	if ackNow && e.net.opts.ResendAfter > 0 {
		e.net.Stats.AckFrames.Inc()
		e.transmit(frame{from: e.id, to: f.from, seq: f.seq, ack: true, ackUpTo: ackUpTo})
	}
}

// drainedLocked re-evaluates the stall flag after the inbox shrank; caller
// holds mu. When it reports true the caller must, after releasing every
// lock, call e.net.grantCredits(e.id) so parked senders resume.
func (e *Endpoint) drainedLocked() bool {
	if e.stalled.Load() && len(e.inbox) <= e.net.opts.InboxLow {
		e.stalled.Store(false)
		return true
	}
	return false
}

// Recv blocks until a message arrives or the endpoint closes. The second
// result is false once the endpoint is closed and drained (or crashed).
func (e *Endpoint) Recv() (Envelope, bool) {
	e.mu.Lock()
	for len(e.inbox) == 0 && !e.closed {
		e.cond.Wait()
	}
	if len(e.inbox) == 0 {
		e.mu.Unlock()
		return Envelope{}, false
	}
	env := e.inbox[0]
	e.inbox = e.inbox[1:]
	grant := e.drainedLocked()
	e.mu.Unlock()
	if grant {
		e.net.grantCredits(e.id)
	}
	return env, true
}

// TryRecv returns the next message without blocking.
func (e *Endpoint) TryRecv() (Envelope, bool) {
	e.mu.Lock()
	if len(e.inbox) == 0 {
		e.mu.Unlock()
		return Envelope{}, false
	}
	env := e.inbox[0]
	e.inbox = e.inbox[1:]
	grant := e.drainedLocked()
	e.mu.Unlock()
	if grant {
		e.net.grantCredits(e.id)
	}
	return env, true
}

// RecvBatch blocks until at least one message arrives, then drains the whole
// inbox under a single lock acquisition. The caller passes the slice the
// previous RecvBatch returned (or nil); its capacity becomes the endpoint's
// next inbox, so a steady-state receive loop ping-pongs two slices and
// allocates nothing. The second result is false once the endpoint is closed
// and drained (or crashed).
func (e *Endpoint) RecvBatch(reuse []Envelope) ([]Envelope, bool) {
	for i := range reuse {
		reuse[i] = Envelope{} // drop payload references before reuse
	}
	e.mu.Lock()
	for len(e.inbox) == 0 && !e.closed {
		e.cond.Wait()
	}
	if len(e.inbox) == 0 {
		e.mu.Unlock()
		return nil, false
	}
	batch := e.inbox
	e.inbox = reuse[:0]
	grant := e.drainedLocked()
	e.mu.Unlock()
	if grant {
		e.net.grantCredits(e.id)
	}
	return batch, true
}

// Pending returns the number of queued incoming messages.
func (e *Endpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.inbox)
}

// Close shuts the endpoint down gracefully; buffered outgoing frames are
// flushed first and blocked Recv calls return false after the inbox drains.
func (e *Endpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	var frames []frame
	if !e.dead {
		frames = e.sealOutbufLocked()
	}
	e.closed = true
	if e.resendStop != nil {
		close(e.resendStop)
	}
	if e.flushStop != nil {
		close(e.flushStop)
	}
	e.cond.Broadcast()
	e.mu.Unlock()
	for _, f := range frames {
		e.transmitData(f)
	}
	// Frames other endpoints parked for us would otherwise wait for a drain
	// that may never happen; release them now — deliver drops traffic to a
	// closed endpoint, so this empties sender queues without side effects.
	if e.net.opts.InboxHigh > 0 {
		e.stalled.Store(false)
		e.net.grantCredits(e.id)
	}
}

// Crash tears the endpoint down with true crash semantics: queued incoming
// messages, buffered and unacknowledged outgoing frames and dedup state are
// all discarded, as a process crash would lose them. Blocked Recv calls
// return false immediately (nothing is drained). Idempotent.
func (e *Endpoint) Crash() {
	e.mu.Lock()
	if e.crashed {
		e.mu.Unlock()
		return
	}
	e.crashed = true
	e.dead = true
	e.inbox = nil
	e.outbuf = make(map[NodeID][]any)
	e.outTraced = make(map[NodeID]bool)
	e.unacked = make(map[NodeID]map[uint64]*pending)
	e.recv = make(map[NodeID]*recvState)
	e.held = nil // our own parked frames die with us
	if !e.closed {
		e.closed = true
		if e.resendStop != nil {
			close(e.resendStop)
		}
		if e.flushStop != nil {
			close(e.flushStop)
		}
	}
	e.cond.Broadcast()
	e.mu.Unlock()
	// A crashed inbox will never drain: clear the stall and let senders
	// replay their parked frames into deliver's closed-endpoint drop, so
	// their held queues cannot leak (or park new traffic forever).
	if e.net.opts.InboxHigh > 0 {
		e.stalled.Store(false)
		e.net.grantCredits(e.id)
	}
}

// Crashed reports whether the endpoint was torn down by Crash.
func (e *Endpoint) Crashed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashed
}

func (e *Endpoint) setDead(dead bool) {
	e.mu.Lock()
	e.dead = dead
	e.mu.Unlock()
}

// flushLoop is the batching latency backstop: it ships buffers and deferred
// acks that no explicit Flush picked up within FlushInterval.
func (e *Endpoint) flushLoop(interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-e.flushStop:
			return
		case <-tick.C:
		}
		e.mu.Lock()
		var frames []frame
		var acks []frame
		if !e.closed && !e.dead {
			frames = e.sealOutbufLocked()
			for from, st := range e.recv {
				if st.ackDirty {
					st.ackDirty = false
					acks = append(acks, frame{from: e.id, to: from, seq: st.next - 1, ack: true, ackUpTo: st.next})
				}
			}
		}
		e.mu.Unlock()
		for _, f := range frames {
			e.transmitData(f)
		}
		for _, f := range acks {
			e.net.Stats.AckFrames.Inc()
			e.transmit(f)
		}
	}
}

// resendLoop periodically retransmits unacknowledged frames. Each frame
// backs off exponentially (doubling with up to 25% jitter, capped at
// MaxBackoff); frames exceeding MaxResends attempts are dead-lettered.
func (e *Endpoint) resendLoop(after time.Duration) {
	tick := time.NewTicker(after / 2)
	defer tick.Stop()
	maxResends := e.net.opts.MaxResends
	maxBackoff := e.net.opts.MaxBackoff
	for {
		select {
		case <-e.resendStop:
			return
		case <-tick.C:
		}
		now := time.Now()
		var retry []frame
		var deadTraced []frame
		dead := 0
		e.mu.Lock()
		if e.dead || e.closed {
			e.mu.Unlock()
			continue
		}
		for to, m := range e.unacked {
			// Frames parked for this destination were never delivered;
			// retransmitting them here would race the credit-grant replay
			// and deliver a second copy out of order. The resend clock
			// resumes once the grant empties the queue.
			if len(e.held[to]) > 0 {
				continue
			}
			for seq, p := range m {
				if now.Before(p.nextAt) {
					continue
				}
				if maxResends > 0 && p.attempts >= maxResends {
					delete(m, seq)
					dead++
					if p.f.traced {
						deadTraced = append(deadTraced, p.f)
					}
					continue
				}
				p.attempts++
				p.backoff *= 2
				if p.backoff > maxBackoff {
					p.backoff = maxBackoff
				}
				// Jitter desynchronizes retransmission bursts after a
				// recovery (up to +25% of the interval).
				jitter := time.Duration(e.rng.Int63n(int64(p.backoff)/4 + 1))
				p.nextAt = now.Add(p.backoff + jitter)
				retry = append(retry, p.f)
			}
		}
		e.mu.Unlock()
		for i := 0; i < dead; i++ {
			e.net.Stats.DeadLetters.Inc()
		}
		for _, f := range retry {
			e.net.Stats.Sent.Inc()
			e.net.Stats.Resent.Inc()
			e.transmit(f)
		}
		// A retried or abandoned traced frame is exactly the anomaly tail
		// sampling exists for: record the marker against the trace and open
		// the escalation window so the aftermath is fully traced.
		if sp := e.net.opts.Spans; sp.Enabled() && (len(deadTraced) > 0 || len(retry) > 0) {
			spanNow := sp.Now()
			for _, f := range deadTraced {
				sp.Escalate(trace.MarkDeadLetter, frameTraceCtx(f), spanNow)
			}
			for _, f := range retry {
				if f.traced {
					sp.Escalate(trace.MarkResend, frameTraceCtx(f), spanNow)
				}
			}
		}
	}
}

// frameTraceCtx extracts the first traced payload context of a frame, for
// attributing resend/dead-letter escalation markers to a concrete trace.
func frameTraceCtx(f frame) trace.Context {
	for _, pl := range f.payloads {
		if c, ok := pl.(trace.Carrier); ok {
			if ctx := c.TraceCtx(); ctx.Traced() {
				return ctx
			}
		}
	}
	return trace.Context{}
}

// Unacked reports how many frames this endpoint is still waiting to have
// acknowledged (diagnostics and tests).
func (e *Endpoint) Unacked() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, m := range e.unacked {
		n += len(m)
	}
	return n
}

// SeenSize reports how many dedup entries this endpoint holds beyond the
// cumulative-ack watermarks (out-of-order sequences only). Bounded by the
// reorder window, not by traffic volume.
func (e *Endpoint) SeenSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, st := range e.recv {
		n += len(st.ahead)
	}
	return n
}

// Buffered reports how many payloads are waiting in output buffers
// (diagnostics and tests).
func (e *Endpoint) Buffered() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, buf := range e.outbuf {
		n += len(buf)
	}
	return n
}

// Stalled reports whether this endpoint's inbox has withdrawn delivery
// credit (at or above the high watermark, not yet drained to the low one).
func (e *Endpoint) Stalled() bool { return e.stalled.Load() }

// HeldFrames reports how many outgoing data frames this endpoint has parked
// waiting for destination credit.
func (e *Endpoint) HeldFrames() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, fs := range e.held {
		n += len(fs)
	}
	return n
}

// QueueDepths is the network-wide flow-control snapshot: the deepest and
// total inbox depth, how many endpoints are currently withholding credit,
// and how many frames senders have parked. The /statusz flow section and
// the watermark tests read it.
func (n *Network) QueueDepths() (maxDepth, total, stalled, held int) {
	for _, ep := range n.list() {
		d := ep.Pending()
		if d > maxDepth {
			maxDepth = d
		}
		total += d
		if ep.Stalled() {
			stalled++
		}
		held += ep.HeldFrames()
	}
	return maxDepth, total, stalled, held
}
