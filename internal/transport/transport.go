// Package transport is Tornado's transportation layer (Section 5.1): it
// moves messages between the nodes of a topology (ingesters, processors,
// master) and ensures they are delivered without error.
//
// The package provides an in-process Network of Endpoints. Delivery is
// at-least-once: every message carries a sequence number, receivers
// acknowledge, senders retransmit unacknowledged messages after a timeout,
// and receivers drop duplicates (Section 5.3: "When a sent message is not
// acknowledged in certain time, it will be resent to ensure at-least-once
// message passing"). Exactly-once is deliberately NOT promised — the engine
// layer above tolerates duplicates through the causality rule (stale updates
// are discarded).
//
// Retransmission backs off exponentially with jitter so a dead peer is not
// hammered at a fixed rate, and an optional MaxResends cap moves frames that
// can never be delivered to a dead-letter counter instead of retrying
// forever.
//
// Fault injection hooks reproduce the paper's failure experiments (Figures
// 8c and 8d) deterministically, at two severities:
//
//   - Kill/Recover pause a node: frames to it vanish but senders keep them
//     buffered, so recovery replays everything (a network partition).
//   - Crash tears a node down: its inbox, dedup state and send buffers are
//     discarded and its sequence state is gone — exactly what a process
//     crash loses. Recovery of crashed state is the engine layer's job
//     (restart from the last terminated-iteration checkpoint).
package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tornado/internal/metrics"
)

// NodeID identifies an endpoint of the network.
type NodeID int32

// Envelope is a delivered message as seen by the receiver.
type Envelope struct {
	From    NodeID
	Payload any
}

// frame is the wire representation (data or ack).
type frame struct {
	from, to NodeID
	seq      uint64
	ack      bool
	payload  any
}

// Stats are the network's delivery counters. The engine owns one Stats and
// threads it through every Network it builds, so counts survive the network
// teardown/rebuild a crash recovery performs.
type Stats struct {
	// Sent counts every frame accepted for transmission (including resends
	// and duplicates); Delivered counts frames handed to live receivers.
	Sent      metrics.Counter
	Delivered metrics.Counter
	// Resent counts retransmissions after the ack timeout; AckFrames counts
	// acknowledgement frames sent by receivers; Dropped and Duplicated count
	// fault-injected in-flight losses and duplications.
	Resent     metrics.Counter
	AckFrames  metrics.Counter
	Dropped    metrics.Counter
	Duplicated metrics.Counter
	// DeadLetters counts frames abandoned after MaxResends retransmission
	// attempts — typically traffic addressed to a crashed endpoint.
	DeadLetters metrics.Counter
}

// Options configure a Network.
type Options struct {
	// ResendAfter is how long a message may stay unacknowledged before it is
	// first retransmitted. Zero disables retransmission (exact-once
	// channels). Subsequent retransmissions of the same frame back off
	// exponentially (doubling, with up to 25% jitter) capped at MaxBackoff.
	ResendAfter time.Duration
	// MaxBackoff caps the per-frame retransmission interval (default
	// 64 × ResendAfter).
	MaxBackoff time.Duration
	// MaxResends caps retransmission attempts per frame; a frame exceeding
	// it is abandoned and counted in Stats.DeadLetters. Zero means
	// unlimited (legacy behavior).
	MaxResends int
	// DropSeed seeds the fault-injection and jitter RNGs.
	DropSeed int64
	// Stats, when non-nil, receives the network's counters; otherwise the
	// network allocates its own.
	Stats *Stats
}

// Network connects a set of endpoints. Create one per topology (or per loop
// incarnation: a crash recovery tears the old network down and builds a
// fresh one over the same Stats).
type Network struct {
	mu        sync.Mutex
	endpoints map[NodeID]*Endpoint
	opts      Options
	rng       *rand.Rand
	dropRate  float64 // probability of dropping a data frame in flight
	dupRate   float64 // probability of duplicating a data frame in flight
	closed    bool

	// Stats holds the delivery counters (shared with the creator when
	// Options.Stats was set).
	Stats *Stats
}

// NewNetwork returns an empty network.
func NewNetwork(opts Options) *Network {
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 64 * opts.ResendAfter
	}
	st := opts.Stats
	if st == nil {
		st = &Stats{}
	}
	return &Network{
		endpoints: make(map[NodeID]*Endpoint),
		opts:      opts,
		rng:       rand.New(rand.NewSource(opts.DropSeed)),
		Stats:     st,
	}
}

// SetFaults configures in-flight fault injection: each data frame is dropped
// with probability drop and duplicated with probability dup.
func (n *Network) SetFaults(drop, dup float64) {
	n.mu.Lock()
	n.dropRate, n.dupRate = drop, dup
	n.mu.Unlock()
}

// Register creates the endpoint for id. Registering the same id twice panics
// (topology wiring bugs should fail loudly).
func (n *Network) Register(id NodeID) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.endpoints[id]; ok {
		panic(fmt.Sprintf("transport: node %d registered twice", id))
	}
	ep := &Endpoint{
		id:      id,
		net:     n,
		nextSeq: make(map[NodeID]uint64),
		unacked: make(map[NodeID]map[uint64]*pending),
		seen:    make(map[NodeID]map[uint64]bool),
		rng:     rand.New(rand.NewSource(n.opts.DropSeed ^ int64(id)<<17 ^ 0x5bf03635)),
	}
	ep.cond = sync.NewCond(&ep.mu)
	n.endpoints[id] = ep
	if n.opts.ResendAfter > 0 {
		ep.resendStop = make(chan struct{})
		go ep.resendLoop(n.opts.ResendAfter)
	}
	return ep
}

// Kill simulates a network partition of node id: frames to it vanish
// (senders keep them buffered for retransmission), and its own sends are
// suppressed. State is preserved; Recover undoes it.
func (n *Network) Kill(id NodeID) {
	if ep := n.endpoint(id); ep != nil {
		ep.setDead(true)
	}
}

// Recover reverses Kill: the node receives again, and retransmissions of
// frames lost while it was down will reach it.
func (n *Network) Recover(id NodeID) {
	if ep := n.endpoint(id); ep != nil {
		ep.setDead(false)
	}
}

// Crash tears node id down with true crash semantics: its inbox (delivered
// but unprocessed messages), send buffers (unacknowledged frames) and dedup
// state are discarded, and blocked Recv calls return false immediately. The
// endpoint cannot be revived — recovery means building a new topology.
func (n *Network) Crash(id NodeID) {
	if ep := n.endpoint(id); ep != nil {
		ep.Crash()
	}
}

func (n *Network) endpoint(id NodeID) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.endpoints[id]
}

// Close shuts down every endpoint gracefully: receivers may drain their
// remaining inboxes.
func (n *Network) Close() {
	for _, ep := range n.snapshotEndpoints() {
		ep.Close()
	}
}

// Abort crashes every endpoint: all in-flight and queued traffic is
// discarded and receivers unblock immediately. The engine uses it to tear a
// failed loop incarnation down before restarting from a checkpoint.
func (n *Network) Abort() {
	for _, ep := range n.snapshotEndpoints() {
		ep.Crash()
	}
}

func (n *Network) snapshotEndpoints() []*Endpoint {
	n.mu.Lock()
	eps := make([]*Endpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.closed = true
	n.mu.Unlock()
	return eps
}

// route hands a frame to the destination endpoint, applying fault injection.
func (n *Network) route(f frame) {
	n.mu.Lock()
	dst := n.endpoints[f.to]
	drop, dup := n.dropRate, n.dupRate
	var roll, roll2 float64
	if drop > 0 || dup > 0 {
		roll, roll2 = n.rng.Float64(), n.rng.Float64()
	}
	n.mu.Unlock()
	if dst == nil {
		return
	}
	if !f.ack && drop > 0 && roll < drop {
		n.Stats.Dropped.Inc()
		return // lost in flight; the resend loop will retry
	}
	dst.deliver(f)
	if !f.ack && dup > 0 && roll2 < dup {
		n.Stats.Duplicated.Inc()
		dst.deliver(f) // duplicated in flight; receiver must dedup
	}
}

// pending is an unacknowledged outgoing frame with its retransmission state.
type pending struct {
	f        frame
	nextAt   time.Time     // earliest next retransmission
	backoff  time.Duration // current retransmission interval
	attempts int           // retransmissions so far
}

// Endpoint is one node's attachment to the network. Send and Recv are safe
// for concurrent use.
type Endpoint struct {
	id  NodeID
	net *Network

	mu      sync.Mutex
	cond    *sync.Cond
	inbox   []Envelope
	closed  bool
	dead    bool
	crashed bool
	nextSeq map[NodeID]uint64
	unacked map[NodeID]map[uint64]*pending
	seen    map[NodeID]map[uint64]bool
	rng     *rand.Rand // jitter; guarded by mu

	resendStop chan struct{}
}

// ID returns the endpoint's node ID.
func (e *Endpoint) ID() NodeID { return e.id }

// Send transmits payload to node to. It never blocks. Messages from a dead
// (killed) node are silently suppressed; messages to a dead node stay
// buffered and are retransmitted after the node recovers (when the network
// has a resend timeout).
func (e *Endpoint) Send(to NodeID, payload any) {
	e.mu.Lock()
	if e.closed || e.dead {
		e.mu.Unlock()
		return
	}
	seq := e.nextSeq[to]
	e.nextSeq[to] = seq + 1
	f := frame{from: e.id, to: to, seq: seq, payload: payload}
	if after := e.net.opts.ResendAfter; after > 0 {
		m := e.unacked[to]
		if m == nil {
			m = make(map[uint64]*pending)
			e.unacked[to] = m
		}
		m[seq] = &pending{f: f, nextAt: time.Now().Add(after), backoff: after}
	}
	e.mu.Unlock()
	e.net.Stats.Sent.Inc()
	e.net.route(f)
}

// deliver is called by the network with an incoming frame.
func (e *Endpoint) deliver(f frame) {
	e.mu.Lock()
	if e.closed || e.dead {
		e.mu.Unlock()
		return
	}
	if f.ack {
		if m := e.unacked[f.from]; m != nil {
			delete(m, f.seq)
		}
		e.mu.Unlock()
		return
	}
	// Dedup, then ack.
	s := e.seen[f.from]
	if s == nil {
		s = make(map[uint64]bool)
		e.seen[f.from] = s
	}
	dup := s[f.seq]
	if !dup {
		s[f.seq] = true
		e.inbox = append(e.inbox, Envelope{From: f.from, Payload: f.payload})
		e.cond.Broadcast()
	}
	e.mu.Unlock()
	if !dup {
		e.net.Stats.Delivered.Inc()
	}
	if e.net.opts.ResendAfter > 0 {
		e.net.Stats.AckFrames.Inc()
		e.net.route(frame{from: e.id, to: f.from, seq: f.seq, ack: true})
	}
}

// Recv blocks until a message arrives or the endpoint closes. The second
// result is false once the endpoint is closed and drained (or crashed).
func (e *Endpoint) Recv() (Envelope, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.inbox) == 0 && !e.closed {
		e.cond.Wait()
	}
	if len(e.inbox) == 0 {
		return Envelope{}, false
	}
	env := e.inbox[0]
	e.inbox = e.inbox[1:]
	return env, true
}

// TryRecv returns the next message without blocking.
func (e *Endpoint) TryRecv() (Envelope, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.inbox) == 0 {
		return Envelope{}, false
	}
	env := e.inbox[0]
	e.inbox = e.inbox[1:]
	return env, true
}

// Pending returns the number of queued incoming messages.
func (e *Endpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.inbox)
}

// Close shuts the endpoint down gracefully; blocked Recv calls return false
// after the inbox drains.
func (e *Endpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	if e.resendStop != nil {
		close(e.resendStop)
	}
	e.cond.Broadcast()
	e.mu.Unlock()
}

// Crash tears the endpoint down with true crash semantics: queued incoming
// messages, unacknowledged outgoing frames and dedup state are all
// discarded, as a process crash would lose them. Blocked Recv calls return
// false immediately (nothing is drained). Idempotent.
func (e *Endpoint) Crash() {
	e.mu.Lock()
	if e.crashed {
		e.mu.Unlock()
		return
	}
	e.crashed = true
	e.dead = true
	e.inbox = nil
	e.unacked = make(map[NodeID]map[uint64]*pending)
	e.seen = make(map[NodeID]map[uint64]bool)
	if !e.closed {
		e.closed = true
		if e.resendStop != nil {
			close(e.resendStop)
		}
	}
	e.cond.Broadcast()
	e.mu.Unlock()
}

// Crashed reports whether the endpoint was torn down by Crash.
func (e *Endpoint) Crashed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashed
}

func (e *Endpoint) setDead(dead bool) {
	e.mu.Lock()
	e.dead = dead
	e.mu.Unlock()
}

// resendLoop periodically retransmits unacknowledged frames. Each frame
// backs off exponentially (doubling with up to 25% jitter, capped at
// MaxBackoff); frames exceeding MaxResends attempts are dead-lettered.
func (e *Endpoint) resendLoop(after time.Duration) {
	tick := time.NewTicker(after / 2)
	defer tick.Stop()
	maxResends := e.net.opts.MaxResends
	maxBackoff := e.net.opts.MaxBackoff
	for {
		select {
		case <-e.resendStop:
			return
		case <-tick.C:
		}
		now := time.Now()
		var retry []frame
		dead := 0
		e.mu.Lock()
		if e.dead || e.closed {
			e.mu.Unlock()
			continue
		}
		for _, m := range e.unacked {
			for seq, p := range m {
				if now.Before(p.nextAt) {
					continue
				}
				if maxResends > 0 && p.attempts >= maxResends {
					delete(m, seq)
					dead++
					continue
				}
				p.attempts++
				p.backoff *= 2
				if p.backoff > maxBackoff {
					p.backoff = maxBackoff
				}
				// Jitter desynchronizes retransmission bursts after a
				// recovery (up to +25% of the interval).
				jitter := time.Duration(e.rng.Int63n(int64(p.backoff)/4 + 1))
				p.nextAt = now.Add(p.backoff + jitter)
				retry = append(retry, p.f)
			}
		}
		e.mu.Unlock()
		for i := 0; i < dead; i++ {
			e.net.Stats.DeadLetters.Inc()
		}
		for _, f := range retry {
			e.net.Stats.Sent.Inc()
			e.net.Stats.Resent.Inc()
			e.net.route(f)
		}
	}
}

// Unacked reports how many frames this endpoint is still waiting to have
// acknowledged (diagnostics and tests).
func (e *Endpoint) Unacked() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, m := range e.unacked {
		n += len(m)
	}
	return n
}
