// Package transport is Tornado's transportation layer (Section 5.1): it
// moves messages between the nodes of a topology (ingesters, processors,
// master) and ensures they are delivered without error.
//
// The package provides an in-process Network of Endpoints. Delivery is
// at-least-once: every message carries a sequence number, receivers
// acknowledge, senders retransmit unacknowledged messages after a timeout,
// and receivers drop duplicates (Section 5.3: "When a sent message is not
// acknowledged in certain time, it will be resent to ensure at-least-once
// message passing"). Exactly-once is deliberately NOT promised — the engine
// layer above tolerates duplicates through the causality rule (stale updates
// are discarded).
//
// Fault injection hooks (Kill, Recover, DropRate) let the benchmark harness
// reproduce the paper's failure experiments (Figures 8c and 8d)
// deterministically.
package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tornado/internal/metrics"
)

// NodeID identifies an endpoint of the network.
type NodeID int32

// Envelope is a delivered message as seen by the receiver.
type Envelope struct {
	From    NodeID
	Payload any
}

// frame is the wire representation (data or ack).
type frame struct {
	from, to NodeID
	seq      uint64
	ack      bool
	payload  any
}

// Options configure a Network.
type Options struct {
	// ResendAfter is how long a message may stay unacknowledged before it is
	// retransmitted. Zero disables retransmission (exact-once channels).
	ResendAfter time.Duration
	// DropSeed seeds the fault-injection RNG.
	DropSeed int64
}

// Network connects a set of endpoints. Create one per topology.
type Network struct {
	mu        sync.Mutex
	endpoints map[NodeID]*Endpoint
	opts      Options
	rng       *rand.Rand
	dropRate  float64 // probability of dropping a data frame in flight
	dupRate   float64 // probability of duplicating a data frame in flight
	closed    bool

	// Sent counts every frame accepted for transmission (including resends
	// and duplicates); Delivered counts frames handed to live receivers.
	Sent      metrics.Counter
	Delivered metrics.Counter
	// Resent counts retransmissions after the ack timeout; AckFrames counts
	// acknowledgement frames sent by receivers; Dropped and Duplicated count
	// fault-injected in-flight losses and duplications. All are observability
	// counters the engine exposes through its registry scope.
	Resent     metrics.Counter
	AckFrames  metrics.Counter
	Dropped    metrics.Counter
	Duplicated metrics.Counter
}

// NewNetwork returns an empty network.
func NewNetwork(opts Options) *Network {
	return &Network{
		endpoints: make(map[NodeID]*Endpoint),
		opts:      opts,
		rng:       rand.New(rand.NewSource(opts.DropSeed)),
	}
}

// SetFaults configures in-flight fault injection: each data frame is dropped
// with probability drop and duplicated with probability dup.
func (n *Network) SetFaults(drop, dup float64) {
	n.mu.Lock()
	n.dropRate, n.dupRate = drop, dup
	n.mu.Unlock()
}

// Register creates the endpoint for id. Registering the same id twice panics
// (topology wiring bugs should fail loudly).
func (n *Network) Register(id NodeID) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.endpoints[id]; ok {
		panic(fmt.Sprintf("transport: node %d registered twice", id))
	}
	ep := &Endpoint{
		id:      id,
		net:     n,
		nextSeq: make(map[NodeID]uint64),
		unacked: make(map[NodeID]map[uint64]*pending),
		seen:    make(map[NodeID]map[uint64]bool),
	}
	ep.cond = sync.NewCond(&ep.mu)
	n.endpoints[id] = ep
	if n.opts.ResendAfter > 0 {
		ep.resendStop = make(chan struct{})
		go ep.resendLoop(n.opts.ResendAfter)
	}
	return ep
}

// Kill simulates a crash of node id: frames to it vanish (senders keep them
// buffered for retransmission), and its own sends are suppressed.
func (n *Network) Kill(id NodeID) {
	n.mu.Lock()
	ep := n.endpoints[id]
	n.mu.Unlock()
	if ep != nil {
		ep.setDead(true)
	}
}

// Recover reverses Kill: the node receives again, and retransmissions of
// frames lost while it was down will reach it.
func (n *Network) Recover(id NodeID) {
	n.mu.Lock()
	ep := n.endpoints[id]
	n.mu.Unlock()
	if ep != nil {
		ep.setDead(false)
	}
}

// Close shuts down every endpoint.
func (n *Network) Close() {
	n.mu.Lock()
	eps := make([]*Endpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.closed = true
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
}

// route hands a frame to the destination endpoint, applying fault injection.
func (n *Network) route(f frame) {
	n.mu.Lock()
	dst := n.endpoints[f.to]
	drop, dup := n.dropRate, n.dupRate
	var roll, roll2 float64
	if drop > 0 || dup > 0 {
		roll, roll2 = n.rng.Float64(), n.rng.Float64()
	}
	n.mu.Unlock()
	if dst == nil {
		return
	}
	if !f.ack && drop > 0 && roll < drop {
		n.Dropped.Inc()
		return // lost in flight; the resend loop will retry
	}
	dst.deliver(f)
	if !f.ack && dup > 0 && roll2 < dup {
		n.Duplicated.Inc()
		dst.deliver(f) // duplicated in flight; receiver must dedup
	}
}

// pending is an unacknowledged outgoing frame.
type pending struct {
	f      frame
	sentAt time.Time
}

// Endpoint is one node's attachment to the network. Send and Recv are safe
// for concurrent use.
type Endpoint struct {
	id  NodeID
	net *Network

	mu      sync.Mutex
	cond    *sync.Cond
	inbox   []Envelope
	closed  bool
	dead    bool
	nextSeq map[NodeID]uint64
	unacked map[NodeID]map[uint64]*pending
	seen    map[NodeID]map[uint64]bool

	resendStop chan struct{}
}

// ID returns the endpoint's node ID.
func (e *Endpoint) ID() NodeID { return e.id }

// Send transmits payload to node to. It never blocks. Messages from a dead
// (killed) node are silently suppressed; messages to a dead node stay
// buffered and are retransmitted after the node recovers (when the network
// has a resend timeout).
func (e *Endpoint) Send(to NodeID, payload any) {
	e.mu.Lock()
	if e.closed || e.dead {
		e.mu.Unlock()
		return
	}
	seq := e.nextSeq[to]
	e.nextSeq[to] = seq + 1
	f := frame{from: e.id, to: to, seq: seq, payload: payload}
	if e.net.opts.ResendAfter > 0 {
		m := e.unacked[to]
		if m == nil {
			m = make(map[uint64]*pending)
			e.unacked[to] = m
		}
		m[seq] = &pending{f: f, sentAt: time.Now()}
	}
	e.mu.Unlock()
	e.net.Sent.Inc()
	e.net.route(f)
}

// deliver is called by the network with an incoming frame.
func (e *Endpoint) deliver(f frame) {
	e.mu.Lock()
	if e.closed || e.dead {
		e.mu.Unlock()
		return
	}
	if f.ack {
		if m := e.unacked[f.from]; m != nil {
			delete(m, f.seq)
		}
		e.mu.Unlock()
		return
	}
	// Dedup, then ack.
	s := e.seen[f.from]
	if s == nil {
		s = make(map[uint64]bool)
		e.seen[f.from] = s
	}
	dup := s[f.seq]
	if !dup {
		s[f.seq] = true
		e.inbox = append(e.inbox, Envelope{From: f.from, Payload: f.payload})
		e.cond.Broadcast()
	}
	e.mu.Unlock()
	if !dup {
		e.net.Delivered.Inc()
	}
	if e.net.opts.ResendAfter > 0 {
		e.net.AckFrames.Inc()
		e.net.route(frame{from: e.id, to: f.from, seq: f.seq, ack: true})
	}
}

// Recv blocks until a message arrives or the endpoint closes. The second
// result is false once the endpoint is closed and drained.
func (e *Endpoint) Recv() (Envelope, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.inbox) == 0 && !e.closed {
		e.cond.Wait()
	}
	if len(e.inbox) == 0 {
		return Envelope{}, false
	}
	env := e.inbox[0]
	e.inbox = e.inbox[1:]
	return env, true
}

// TryRecv returns the next message without blocking.
func (e *Endpoint) TryRecv() (Envelope, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.inbox) == 0 {
		return Envelope{}, false
	}
	env := e.inbox[0]
	e.inbox = e.inbox[1:]
	return env, true
}

// Pending returns the number of queued incoming messages.
func (e *Endpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.inbox)
}

// Close shuts the endpoint down; blocked Recv calls return false.
func (e *Endpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	if e.resendStop != nil {
		close(e.resendStop)
	}
	e.cond.Broadcast()
	e.mu.Unlock()
}

func (e *Endpoint) setDead(dead bool) {
	e.mu.Lock()
	e.dead = dead
	e.mu.Unlock()
}

// resendLoop periodically retransmits unacknowledged frames.
func (e *Endpoint) resendLoop(after time.Duration) {
	tick := time.NewTicker(after / 2)
	defer tick.Stop()
	for {
		select {
		case <-e.resendStop:
			return
		case <-tick.C:
		}
		now := time.Now()
		var retry []frame
		e.mu.Lock()
		if e.dead || e.closed {
			e.mu.Unlock()
			continue
		}
		for _, m := range e.unacked {
			for _, p := range m {
				if now.Sub(p.sentAt) >= after {
					retry = append(retry, p.f)
					p.sentAt = now
				}
			}
		}
		e.mu.Unlock()
		for _, f := range retry {
			e.net.Sent.Inc()
			e.net.Resent.Inc()
			e.net.route(f)
		}
	}
}

// Unacked reports how many frames this endpoint is still waiting to have
// acknowledged (diagnostics and tests).
func (e *Endpoint) Unacked() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, m := range e.unacked {
		n += len(m)
	}
	return n
}
