package transport

import (
	"testing"
	"time"
)

// TestInboxWatermarkParksSender: a receiver that never drains must cap its
// inbox at the high watermark while the sender parks the rest, and a drain
// must replay every parked frame in order.
func TestInboxWatermarkParksSender(t *testing.T) {
	net := NewNetwork(Options{InboxHigh: 8, InboxLow: 2})
	src := net.Register(1)
	dst := net.Register(2)

	const total = 100
	for i := 0; i < total; i++ {
		src.Send(2, i)
	}
	if got := dst.Pending(); got > 8 {
		t.Fatalf("inbox depth %d exceeds high watermark 8", got)
	}
	if !dst.Stalled() {
		t.Fatal("receiver not stalled at the high watermark")
	}
	if held := src.HeldFrames(); held != total-8 {
		t.Fatalf("sender parked %d frames, want %d", held, total-8)
	}
	if net.Stats.Stalls.Value() == 0 {
		t.Fatal("stall not counted")
	}
	if net.Stats.HeldFrames.Value() == 0 {
		t.Fatal("held frames not counted")
	}

	// Drain everything; parked frames must follow, in send order.
	for i := 0; i < total; i++ {
		env, ok := recvWithin(t, dst, time.Second)
		if !ok {
			t.Fatalf("receiver starved after %d messages", i)
		}
		if env.Payload.(int) != i {
			t.Fatalf("message %d arrived out of order: got %v", i, env.Payload)
		}
	}
	if held := src.HeldFrames(); held != 0 {
		t.Fatalf("%d frames still parked after full drain", held)
	}
	if dst.Stalled() {
		t.Fatal("receiver still stalled after full drain")
	}
}

// recvWithin polls TryRecv so the test never wedges on a flow-control bug.
func recvWithin(t *testing.T, e *Endpoint, d time.Duration) (Envelope, bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if env, ok := e.TryRecv(); ok {
			return env, true
		}
		time.Sleep(100 * time.Microsecond)
	}
	return Envelope{}, false
}

// TestInboxWatermarkBoundWhileDraining keeps a slow consumer running and
// asserts the inbox never exceeds the watermark plus the documented
// overshoot (one in-flight frame per sender).
func TestInboxWatermarkBoundWhileDraining(t *testing.T) {
	const high = 16
	net := NewNetwork(Options{InboxHigh: high, InboxLow: 4})
	src := net.Register(1)
	dst := net.Register(2)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			src.Send(2, i)
		}
	}()
	peak := 0
	for got := 0; got < 2000; {
		if d := dst.Pending(); d > peak {
			peak = d
		}
		if _, ok := dst.TryRecv(); ok {
			got++
		}
	}
	<-done
	// One sender, unbatched: a single frame may land after the watermark
	// check, so the ceiling is high + 1.
	if peak > high+1 {
		t.Fatalf("inbox peaked at %d, want <= %d", peak, high+1)
	}
}

// TestSendNowBypassesStall: control traffic must reach a stalled receiver.
func TestSendNowBypassesStall(t *testing.T) {
	net := NewNetwork(Options{InboxHigh: 4, InboxLow: 1})
	src := net.Register(1)
	dst := net.Register(2)

	for i := 0; i < 10; i++ {
		src.Send(2, i)
	}
	if !dst.Stalled() {
		t.Fatal("receiver not stalled")
	}
	// At the watermark the urgent frame is shed, not parked and not queued:
	// the control backlog of a starved consumer must stay bounded too.
	before := dst.Pending()
	src.SendNow(2, "heartbeat")
	if got := dst.Pending(); got != before {
		t.Fatalf("urgent frame queued into a watermark-full inbox: %d, want %d", got, before)
	}
	if got := net.Stats.UrgentShed.Value(); got != 1 {
		t.Fatalf("UrgentShed = %d, want 1", got)
	}
	// Below the watermark — even while still stalled — urgent traffic passes.
	if _, ok := dst.TryRecv(); !ok {
		t.Fatal("TryRecv failed on a full inbox")
	}
	if !dst.Stalled() {
		t.Fatal("receiver unstalled above the low watermark")
	}
	before = dst.Pending()
	src.SendNow(2, "heartbeat")
	if got := dst.Pending(); got != before+1 {
		t.Fatalf("SendNow payload parked below the watermark: inbox %d, want %d", got, before+1)
	}
	if got := net.Stats.UrgentShed.Value(); got != 1 {
		t.Fatalf("UrgentShed = %d after a deliverable urgent frame, want still 1", got)
	}
}

// TestBatchedStallAndResume exercises the watermark with batching and
// reliability on: every payload must arrive exactly once despite the parked
// window, the resend loop, and the deferred-ack machinery.
func TestBatchedStallAndResume(t *testing.T) {
	net := NewNetwork(Options{
		InboxHigh:     32,
		InboxLow:      8,
		MaxBatch:      4,
		FlushInterval: time.Millisecond,
		ResendAfter:   5 * time.Millisecond,
	})
	src := net.Register(1)
	dst := net.Register(2)

	const total = 500
	go func() {
		for i := 0; i < total; i++ {
			src.Send(2, i)
		}
		src.Flush()
	}()

	seen := make(map[int]int, total)
	deadline := time.Now().Add(10 * time.Second)
	for len(seen) < total && time.Now().Before(deadline) {
		if env, ok := dst.TryRecv(); ok {
			seen[env.Payload.(int)]++
			continue
		}
		time.Sleep(200 * time.Microsecond)
	}
	if len(seen) != total {
		t.Fatalf("delivered %d distinct payloads, want %d", len(seen), total)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("payload %d delivered %d times", k, c)
		}
	}
}

// TestCrashReleasesHeldFrames: when the stalled destination crashes, parked
// frames must drain out of sender queues instead of leaking.
func TestCrashReleasesHeldFrames(t *testing.T) {
	net := NewNetwork(Options{InboxHigh: 4, InboxLow: 1})
	src := net.Register(1)
	dst := net.Register(2)

	for i := 0; i < 50; i++ {
		src.Send(2, i)
	}
	if src.HeldFrames() == 0 {
		t.Fatal("test needs parked frames before the crash")
	}
	net.Crash(2)
	deadline := time.Now().Add(time.Second)
	for src.HeldFrames() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if held := src.HeldFrames(); held != 0 {
		t.Fatalf("%d frames still parked after destination crash", held)
	}
	if dst.Pending() != 0 {
		t.Fatal("crashed endpoint accepted deliveries")
	}
}

// TestQueueDepthsSnapshot sanity-checks the aggregate flow view.
func TestQueueDepthsSnapshot(t *testing.T) {
	net := NewNetwork(Options{InboxHigh: 4, InboxLow: 1})
	src := net.Register(1)
	net.Register(2)

	for i := 0; i < 10; i++ {
		src.Send(2, i)
	}
	maxDepth, total, stalled, held := net.QueueDepths()
	if maxDepth != 4 || total != 4 {
		t.Fatalf("depths = (%d, %d), want (4, 4)", maxDepth, total)
	}
	if stalled != 1 {
		t.Fatalf("stalled = %d, want 1", stalled)
	}
	if held != 6 {
		t.Fatalf("held = %d, want 6", held)
	}
}
