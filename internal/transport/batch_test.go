package transport

import (
	"testing"
	"time"
)

// TestBatchedFlushShipsOneFrame: buffered sends ship as a single
// multi-payload frame on Flush, preserving order.
func TestBatchedFlushShipsOneFrame(t *testing.T) {
	n := NewNetwork(Options{MaxBatch: 8, FlushInterval: time.Hour})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	for i := 0; i < 5; i++ {
		a.Send(2, i)
	}
	if got := a.Buffered(); got != 5 {
		t.Fatalf("Buffered = %d before flush; want 5", got)
	}
	if _, ok := b.TryRecv(); ok {
		t.Fatal("payload delivered before flush")
	}
	a.Flush()
	for i := 0; i < 5; i++ {
		env, ok := b.Recv()
		if !ok || env.Payload != i {
			t.Fatalf("payload %d: got %+v, %v", i, env, ok)
		}
	}
	if sent, payloads := n.Stats.Sent.Value(), n.Stats.Payloads.Value(); sent != 1 || payloads != 5 {
		t.Fatalf("Sent = %d, Payloads = %d; want 1 frame carrying 5 payloads", sent, payloads)
	}
}

// TestBatchFullShipsWithoutFlush: a buffer reaching MaxBatch ships on its
// own.
func TestBatchFullShipsWithoutFlush(t *testing.T) {
	n := NewNetwork(Options{MaxBatch: 4, FlushInterval: time.Hour})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	for i := 0; i < 4; i++ {
		a.Send(2, i)
	}
	for i := 0; i < 4; i++ {
		env, ok := b.Recv()
		if !ok || env.Payload != i {
			t.Fatalf("payload %d: got %+v, %v", i, env, ok)
		}
	}
	if a.Buffered() != 0 {
		t.Fatalf("Buffered = %d after the buffer filled", a.Buffered())
	}
}

// TestFlushIntervalBackstop: a lone buffered payload ships within the
// background flush interval even if nobody calls Flush.
func TestFlushIntervalBackstop(t *testing.T) {
	n := NewNetwork(Options{MaxBatch: 64, FlushInterval: 2 * time.Millisecond})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	a.Send(2, "lonely")
	done := make(chan Envelope, 1)
	go func() {
		if env, ok := b.Recv(); ok {
			done <- env
		}
	}()
	select {
	case env := <-done:
		if env.Payload != "lonely" {
			t.Fatalf("got %+v", env)
		}
	case <-time.After(time.Second):
		t.Fatal("buffered payload never shipped by the flush ticker")
	}
}

// TestSendNowBypassesBuffer: SendNow ships immediately, draining the
// destination's buffer first so per-pair order survives.
func TestSendNowBypassesBuffer(t *testing.T) {
	n := NewNetwork(Options{MaxBatch: 64, FlushInterval: time.Hour})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	a.Send(2, 0)
	a.Send(2, 1)
	a.SendNow(2, 2)
	for i := 0; i < 3; i++ {
		env, ok := b.TryRecv()
		if !ok || env.Payload != i {
			t.Fatalf("payload %d: got %+v, %v", i, env, ok)
		}
	}
}

// TestBatchedOrderUnderDropDupResend: multi-payload frames plus cumulative
// acks must deliver every payload exactly once under heavy drop and
// duplication faults.
func TestBatchedOrderUnderDropDupResend(t *testing.T) {
	n := NewNetwork(Options{
		ResendAfter: 5 * time.Millisecond, MaxBatch: 8,
		FlushInterval: time.Millisecond, DropSeed: 11,
	})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	n.SetFaults(0.3, 0.3)
	const total = 500
	for i := 0; i < total; i++ {
		a.Send(2, i)
	}
	a.Flush()
	got := make(map[int]int)
	deadline := time.After(10 * time.Second)
	for len(got) < total {
		ch := make(chan Envelope, 1)
		go func() {
			if env, ok := b.Recv(); ok {
				ch <- env
			}
		}()
		select {
		case env := <-ch:
			got[env.Payload.(int)]++
		case <-deadline:
			t.Fatalf("only %d/%d payloads recovered under faults", len(got), total)
		}
	}
	for v, c := range got {
		if c != 1 {
			t.Fatalf("payload %d delivered %d times", v, c)
		}
	}
	n.SetFaults(0, 0)
	waitZeroUnacked(t, a)
}

// TestCumulativeAckCompactsMaps is the bounded-memory regression test: the
// dedup and unacked maps must not grow with the number of frames sent (the
// pre-cumulative-ack implementation kept one seen entry per frame forever).
func TestCumulativeAckCompactsMaps(t *testing.T) {
	n := NewNetwork(Options{
		ResendAfter: 5 * time.Millisecond, MaxBatch: 4,
		FlushInterval: time.Millisecond, DropSeed: 13,
	})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	n.SetFaults(0.2, 0) // drops force out-of-order arrivals worth deduping
	const total = 4000
	go func() {
		for i := 0; i < total; i++ {
			a.Send(2, i)
		}
		a.Flush()
	}()
	received := 0
	deadline := time.After(15 * time.Second)
	for received < total {
		ch := make(chan struct{}, 1)
		go func() {
			if _, ok := b.Recv(); ok {
				ch <- struct{}{}
			}
		}()
		select {
		case <-ch:
			received++
		case <-deadline:
			t.Fatalf("only %d/%d payloads received", received, total)
		}
	}
	n.SetFaults(0, 0)
	waitZeroUnacked(t, a)
	// Once retransmission fills every gap, the watermark covers all traffic:
	// the receiver retains no dedup entries and the sender no pending frames.
	waitCondition(t, func() bool {
		seen, unacked := n.MapSizes()
		return seen == 0 && unacked == 0
	}, "seen/unacked maps did not compact to zero")
}

// TestLegacySeenCompacts: cumulative compaction also bounds the legacy
// unbatched path (frames arrive in order, so the watermark covers them all
// immediately).
func TestLegacySeenCompacts(t *testing.T) {
	n := NewNetwork(Options{ResendAfter: 5 * time.Millisecond})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	const total = 1000
	for i := 0; i < total; i++ {
		a.Send(2, i)
	}
	for i := 0; i < total; i++ {
		if _, ok := b.Recv(); !ok {
			t.Fatal("Recv closed early")
		}
	}
	if s := b.SeenSize(); s != 0 {
		t.Fatalf("SeenSize = %d after in-order delivery; want 0 (the map leaked)", s)
	}
	waitZeroUnacked(t, a)
}

// TestDeferredAcksSuppressAckTraffic: in batched mode receivers ack a
// fraction of data frames immediately (the rest ride later watermarks or the
// flush tick), so ack frames stay well below data frames.
func TestDeferredAcksSuppressAckTraffic(t *testing.T) {
	n := NewNetwork(Options{
		ResendAfter: 50 * time.Millisecond, MaxBatch: 8,
		FlushInterval: 2 * time.Millisecond,
	})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	const frames = 40
	for f := 0; f < frames; f++ {
		for i := 0; i < 8; i++ {
			a.Send(2, f*8+i)
		}
	}
	for i := 0; i < frames*8; i++ {
		if _, ok := b.Recv(); !ok {
			t.Fatal("Recv closed early")
		}
	}
	waitZeroUnacked(t, a)
	sent, acks := n.Stats.Sent.Value(), n.Stats.AckFrames.Value()
	if acks >= sent {
		t.Fatalf("AckFrames = %d >= Sent = %d; deferred acks are not suppressing traffic", acks, sent)
	}
}

// TestBatchedKillRecover: frames buffered or lost while the destination is
// partitioned replay after recovery.
func TestBatchedKillRecover(t *testing.T) {
	n := NewNetwork(Options{
		ResendAfter: 5 * time.Millisecond, MaxBatch: 4,
		FlushInterval: time.Millisecond,
	})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	n.Kill(2)
	for i := 0; i < 10; i++ {
		a.Send(2, i)
	}
	a.Flush()
	time.Sleep(15 * time.Millisecond)
	if _, ok := b.TryRecv(); ok {
		t.Fatal("partitioned node received a frame")
	}
	n.Recover(2)
	got := make(map[int]bool)
	deadline := time.After(5 * time.Second)
	for len(got) < 10 {
		ch := make(chan Envelope, 1)
		go func() {
			if env, ok := b.Recv(); ok {
				ch <- env
			}
		}()
		select {
		case env := <-ch:
			got[env.Payload.(int)] = true
		case <-deadline:
			t.Fatalf("only %d/10 payloads after recovery", len(got))
		}
	}
	waitZeroUnacked(t, a)
}

// TestCrashDiscardsOutputBuffer: a crash loses buffered payloads, exactly as
// a process crash would.
func TestCrashDiscardsOutputBuffer(t *testing.T) {
	n := NewNetwork(Options{MaxBatch: 64, FlushInterval: time.Hour})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	a.Send(2, "doomed")
	a.Crash()
	if a.Buffered() != 0 {
		t.Fatalf("Buffered = %d after crash", a.Buffered())
	}
	a.Flush()
	time.Sleep(5 * time.Millisecond)
	if _, ok := b.TryRecv(); ok {
		t.Fatal("crashed endpoint's buffered payload was delivered")
	}
}

// TestCloseFlushesBuffers: graceful shutdown ships what was buffered so
// receivers can drain it.
func TestCloseFlushesBuffers(t *testing.T) {
	n := NewNetwork(Options{MaxBatch: 64, FlushInterval: time.Hour})
	a := n.Register(1)
	b := n.Register(2)
	a.Send(2, "parting")
	a.Close()
	env, ok := b.Recv()
	if !ok || env.Payload != "parting" {
		t.Fatalf("after Close got %+v, %v", env, ok)
	}
	b.Close()
}

// TestRecvBatchDrainsInbox: RecvBatch returns everything queued in order and
// recycles the caller's previous slice as the next inbox.
func TestRecvBatchDrainsInbox(t *testing.T) {
	n := NewNetwork(Options{MaxBatch: 16, FlushInterval: time.Hour})
	defer n.Close()
	a := n.Register(1)
	b := n.Register(2)
	for i := 0; i < 10; i++ {
		a.Send(2, i)
	}
	a.Flush()
	waitCondition(t, func() bool { return b.Pending() == 10 }, "payloads did not arrive")
	batch, ok := b.RecvBatch(nil)
	if !ok || len(batch) != 10 {
		t.Fatalf("RecvBatch = %d msgs, %v; want 10", len(batch), ok)
	}
	for i, env := range batch {
		if env.Payload != i {
			t.Fatalf("batch[%d] = %+v", i, env)
		}
	}
	// Second round reuses the first batch's backing array.
	for i := 0; i < 3; i++ {
		a.Send(2, 100+i)
	}
	a.Flush()
	waitCondition(t, func() bool { return b.Pending() == 3 }, "second round did not arrive")
	batch2, ok := b.RecvBatch(batch)
	if !ok || len(batch2) != 3 {
		t.Fatalf("second RecvBatch = %d msgs, %v; want 3", len(batch2), ok)
	}
	for i, env := range batch2 {
		if env.Payload != 100+i {
			t.Fatalf("batch2[%d] = %+v", i, env)
		}
	}
}

// TestRecvBatchUnblocksOnClose mirrors the Recv close contract.
func TestRecvBatchUnblocksOnClose(t *testing.T) {
	n := NewNetwork(Options{MaxBatch: 16})
	a := n.Register(1)
	done := make(chan bool)
	go func() {
		_, ok := a.RecvBatch(nil)
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	a.Close()
	if ok := <-done; ok {
		t.Fatal("RecvBatch on closed endpoint returned ok=true")
	}
}

func waitCondition(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
}
