package engine

import (
	"sync/atomic"
	"testing"
	"time"

	"tornado/internal/datasets"
	"tornado/internal/storage"
	"tornado/internal/stream"
)

// newFlowSSSPEngine builds an SSSP engine with the full backpressure stack
// on: ingest admission gate and transport inbox watermarks.
func newFlowSSSPEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Program == nil {
		cfg.Program = ssspProg{source: 0}
	}
	cfg.Kind = MainLoop
	cfg.LoopID = storage.MainLoop
	if cfg.Store == nil {
		cfg.Store = storage.NewMemStore()
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSlowConsumerBoundedInbox is the slow-consumer regression (run under
// -race via make chaos): one processor sleeps in its update hook while the
// rest of the loop runs full speed. The transport inbox must stay at the
// watermark — plus the documented frame-granularity overshoot (one in-flight
// frame per sending goroutine) — instead of absorbing the whole backlog, and
// the throttled run must still reach the exact reference fixed point.
func TestSlowConsumerBoundedInbox(t *testing.T) {
	const (
		procs     = 4
		inboxHigh = 128
		maxBatch  = 8
	)
	tuples := datasets.PowerLawGraph(300, 3, 55)
	e := newFlowSSSPEngine(t, Config{
		Processors:       procs,
		DelayBound:       16,
		Seed:             55,
		MaxBatch:         maxBatch,
		MaxPendingInputs: 256,
		InboxHigh:        inboxHigh,
		InboxLow:         32,
	})
	e.Start()
	defer e.Stop()

	// Processor 1 sleeps in its update hook (commit) — the slow consumer.
	e.SlowProcessor(1, 200*time.Microsecond)

	var peak atomic.Int64
	stopSampling := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-stopSampling:
				return
			default:
			}
			if m := int64(e.FlowSnapshot().InboxMax); m > peak.Load() {
				peak.Store(m)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Waves without quiesce barriers: the ingest side pushes as hard as the
	// admission gate lets it while processor 1 crawls.
	for w := 0; w < 3; w++ {
		e.IngestAll(tuples)
	}
	e.SlowProcessor(1, 0) // let the run finish promptly
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	close(stopSampling)
	<-samplerDone

	// Overshoot bound: the stall flag is set after the frame that crosses the
	// watermark lands, so each concurrently sending goroutine (processors,
	// master, ingester, plus their flush tickers) may land one more frame of
	// up to MaxBatch envelopes.
	margin := 2 * (procs + 2) * maxBatch
	if p := int(peak.Load()); p > inboxHigh+margin {
		t.Fatalf("inbox peaked at %d, want <= watermark %d + overshoot margin %d", p, inboxHigh, margin)
	}
	fs := e.FlowSnapshot()
	if fs.Stalls == 0 {
		t.Fatal("slow consumer never tripped the inbox watermark; the test lost its teeth")
	}
	if fs.GateDepth != 0 {
		t.Fatalf("gate depth %d after quiesce, want 0 (admission credits leaked)", fs.GateDepth)
	}
	checkSSSP(t, e, tuples)
}

// TestIngestGateBoundsPendingInputs: the admission ledger must never exceed
// its capacity, block the producer when full, and drain back to zero.
func TestIngestGateBoundsPendingInputs(t *testing.T) {
	tuples := datasets.PowerLawGraph(200, 3, 9)
	e := newFlowSSSPEngine(t, Config{
		Processors:       3,
		DelayBound:       16,
		Seed:             9,
		MaxPendingInputs: 64,
	})
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	fs := e.FlowSnapshot()
	if fs.GatePeak > 64 {
		t.Fatalf("gate peak %d exceeds MaxPendingInputs 64", fs.GatePeak)
	}
	if fs.GateDepth != 0 {
		t.Fatalf("gate depth %d after quiesce, want 0", fs.GateDepth)
	}
	if len(tuples) > 64 && fs.GateWaits == 0 {
		t.Fatal("ingest of a gate-exceeding batch never blocked; admission control is not engaging")
	}
	checkSSSP(t, e, tuples)
}

// TestSetDelayBoundClamps: the dynamic B must stay inside
// [DelayBound, DelayBoundCeiling] and be a no-op without a ceiling.
func TestSetDelayBoundClamps(t *testing.T) {
	e := newFlowSSSPEngine(t, Config{
		Processors:        2,
		DelayBound:        8,
		DelayBoundCeiling: 32,
		Seed:              1,
	})
	defer e.Stop()
	e.Start()
	if got := e.SetDelayBound(1); got != 8 {
		t.Fatalf("SetDelayBound(1) = %d, want clamp to configured bound 8", got)
	}
	if got := e.SetDelayBound(1 << 40); got != 32 {
		t.Fatalf("SetDelayBound(huge) = %d, want clamp to ceiling 32", got)
	}
	if got := e.SetDelayBound(16); got != 16 || e.DelayBound() != 16 {
		t.Fatalf("SetDelayBound(16) = %d (DelayBound %d), want 16", got, e.DelayBound())
	}

	noCeiling := newFlowSSSPEngine(t, Config{Processors: 2, DelayBound: 8, Seed: 1,
		Store: storage.NewMemStore()})
	defer noCeiling.Stop()
	noCeiling.Start()
	if got := noCeiling.SetDelayBound(1 << 20); got != 8 {
		t.Fatalf("SetDelayBound without ceiling = %d, want pinned at 8", got)
	}
}

// TestDynamicDelayBoundConverges: raising B mid-run (the L2 degradation
// rung) must not break the fixed point.
func TestDynamicDelayBoundConverges(t *testing.T) {
	tuples := datasets.PowerLawGraph(200, 3, 33)
	e := newFlowSSSPEngine(t, Config{
		Processors:        4,
		DelayBound:        4,
		DelayBoundCeiling: 64,
		Seed:              33,
	})
	e.Start()
	defer e.Stop()
	half := len(tuples) / 2
	e.IngestAll(tuples[:half])
	e.SetDelayBound(64) // widen under (simulated) overload
	e.IngestAll(tuples[half:])
	e.SetDelayBound(4) // relax back while work is still in flight
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
}

// TestFaultPlanSlowProcessor: the chaos schedule's slow-consumer fault must
// engage (and clear) through the plan machinery.
func TestFaultPlanSlowProcessor(t *testing.T) {
	tuples := datasets.PowerLawGraph(150, 3, 21)
	e := newFlowSSSPEngine(t, Config{
		Processors: 3,
		DelayBound: 16,
		Seed:       21,
	})
	e.InjectFaultPlan(FaultPlan{Faults: []Fault{
		{Kind: FaultSlowProcessor, Proc: 1, Delay: 100 * time.Microsecond, AtIteration: 1},
	}})
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples)
	waitUntil(t, waitFor, func() bool { return e.slow[1].Load() > 0 },
		"FaultSlowProcessor never fired")
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	e.SlowProcessor(1, 0)
	if e.slow[1].Load() != 0 {
		t.Fatal("SlowProcessor(1, 0) did not clear the injected delay")
	}
	checkSSSP(t, e, tuples)
}

// TestIngestUnblocksOnStop: a producer parked at a saturated admission gate
// must exit when the engine stops instead of deadlocking shutdown.
func TestIngestUnblocksOnStop(t *testing.T) {
	e := newFlowSSSPEngine(t, Config{
		Processors:       1,
		DelayBound:       4,
		Seed:             3,
		MaxPendingInputs: 2,
	})
	e.Start()
	e.PauseProcessor(0) // nothing drains: the gate will saturate
	done := make(chan struct{})
	go func() {
		defer close(done)
		ts := stream.Timestamp(0)
		for i := 0; i < 100; i++ {
			e.Ingest(stream.AddEdge(ts, stream.VertexID(i), stream.VertexID(i+1)))
			ts++
		}
	}()
	select {
	case <-done:
		t.Fatal("100 ingests into a paused single processor never blocked; gate not engaging")
	case <-time.After(50 * time.Millisecond):
	}
	e.Stop()
	select {
	case <-done:
	case <-time.After(waitFor):
		t.Fatal("producer still parked after Stop")
	}
}
