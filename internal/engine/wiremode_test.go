package engine

import (
	"strings"
	"testing"
	"time"

	"tornado/internal/datasets"
	"tornado/internal/obs"
	"tornado/internal/storage"
	"tornado/internal/stream"
	"tornado/internal/transport"
)

// Fast hermetic wire-mode tests (not -short-skipped): the full engine over
// the in-memory wire substrate, where every frame still pays encode, CRC and
// decode. The TCP variants of the chaos soaks live in soak_test.go.

func TestWireModeSSSPExact(t *testing.T) {
	tuples := datasets.PowerLawGraph(150, 3, 99)
	e, err := New(Config{
		Processors: 3,
		DelayBound: 8,
		Kind:       MainLoop,
		LoopID:     storage.MainLoop,
		Store:      storage.NewMemStore(),
		Program:    ssspProg{source: 0},
		Seed:       99,
		Wire:       &WireSpec{Mem: transport.NewMemWire()},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
	s := e.StatsSnapshot()
	if s.WireTxFrames == 0 || s.WireRxFrames == 0 {
		t.Fatalf("wire mode moved no frames: tx=%d rx=%d", s.WireTxFrames, s.WireRxFrames)
	}
	if s.WireTxBytes == 0 || s.WireRxBytes == 0 {
		t.Fatalf("wire byte counters empty: tx=%d rx=%d", s.WireTxBytes, s.WireRxBytes)
	}
	if s.WireChecksumFailures != 0 || s.WireTornFrames != 0 {
		t.Fatalf("clean wire counted corruption: checksum=%d torn=%d",
			s.WireChecksumFailures, s.WireTornFrames)
	}
	if e.WireAddr() == "" {
		t.Fatal("WireAddr empty in wire mode")
	}
}

func TestWireModeTCPDefaultsResend(t *testing.T) {
	// A wire spec without ResendAfter must default it on: the wire sheds
	// frames freely and relies on the resend ledger.
	e, err := New(Config{
		Processors: 2,
		DelayBound: 4,
		Kind:       MainLoop,
		LoopID:     storage.MainLoop,
		Store:      storage.NewMemStore(),
		Program:    ssspProg{source: 0},
		Seed:       1,
		Wire:       &WireSpec{}, // TCP on a fresh loopback port
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.ResendAfter <= 0 {
		t.Fatal("Wire config did not default ResendAfter > 0")
	}
	e.Start()
	defer e.Stop()
	tuples := datasets.PowerLawGraph(60, 2, 5)
	e.IngestAll(tuples)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
	if !strings.Contains(e.WireAddr(), "127.0.0.1:") {
		t.Fatalf("WireAddr = %q, want a loopback TCP address", e.WireAddr())
	}
}

// Crash recovery in wire mode: the incarnation teardown closes the old
// listener and connections, the new incarnation builds a fresh wire, and the
// recovered run still lands on the exact fixed point.
func TestWireModeCrashRecovery(t *testing.T) {
	tuples := datasets.PowerLawGraph(120, 3, 31)
	e, err := New(Config{
		Processors: 3,
		DelayBound: 8,
		Kind:       MainLoop,
		LoopID:     storage.MainLoop,
		Store:      storage.NewMemStore(),
		Program:    ssspProg{source: 0},
		Seed:       31,
		// A 300ms suspicion window: wide enough that race-detector
		// scheduling stalls don't trigger spurious suspicion storms
		// (recover → stall → re-suspect, forever), still sub-second
		// detection of the injected crash.
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectAfter:      30,
		RestartBackoff:    time.Millisecond,
		Wire:              &WireSpec{Mem: transport.NewMemWire()},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	half := len(tuples) / 2
	e.IngestAll(tuples[:half])
	waitUntil(t, waitFor, func() bool { return e.Notified() >= 1 }, "no progress before crash")
	e.CrashProcessor(1)
	e.IngestAll(tuples[half:])
	waitUntil(t, waitFor, func() bool { return e.StatsSnapshot().Recoveries >= 1 },
		"crash never recovered in wire mode")
	if err := e.WaitSettled(waitFor); err != nil {
		t.Fatalf("%v (recoveries=%d notified=%d)", err, e.StatsSnapshot().Recoveries, e.Notified())
	}
	checkSSSP(t, e, tuples)
}

// A mid-run wire partition stalls progress but loses nothing: healing
// replays the resend backlog and the run converges exactly.
func TestWireModePartitionHeal(t *testing.T) {
	tuples := datasets.PowerLawGraph(120, 3, 63)
	e, err := New(Config{
		Processors: 3,
		DelayBound: 8,
		Kind:       MainLoop,
		LoopID:     storage.MainLoop,
		Store:      storage.NewMemStore(),
		Program:    ssspProg{source: 0},
		Seed:       63,
		Wire:       &WireSpec{Mem: transport.NewMemWire()},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples[:len(tuples)/2])
	if !e.SetWirePartition(true) {
		t.Fatal("SetWirePartition reported no wire")
	}
	e.IngestAll(tuples[len(tuples)/2:])
	time.Sleep(20 * time.Millisecond)
	e.SetWirePartition(false)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
	var sawFault, sawHeal bool
	for _, ev := range e.RecoveryLog() {
		switch ev.Kind {
		case EventWireFault:
			sawFault = true
		case EventWireHeal:
			sawHeal = true
		}
	}
	if !sawFault || !sawHeal {
		t.Fatalf("recovery log missing wire fault/heal events: %+v", e.RecoveryLog())
	}
}

// Wire metrics register under the hub and the statusz section carries the
// wire block.
func TestWireModeObservability(t *testing.T) {
	hub := obs.NewHub(obs.HubOptions{})
	e, err := New(Config{
		Processors: 2,
		DelayBound: 4,
		Kind:       MainLoop,
		LoopID:     storage.MainLoop,
		Store:      storage.NewMemStore(),
		Program:    ssspProg{source: 0},
		Seed:       7,
		Obs:        hub,
		Wire:       &WireSpec{Mem: transport.NewMemWire()},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	e.IngestAll(ringTuples(12))
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := hub.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"tornado_wire_frames_total",
		`dir="tx"`,
		`dir="rx"`,
		"tornado_wire_bytes_total",
		"tornado_wire_reconnects_total",
		"tornado_wire_checksum_failures_total",
		"tornado_wire_frames_per_flush",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	st, ok := e.statusz().(map[string]any)
	if !ok {
		t.Fatal("statusz did not return a map")
	}
	wireSec, ok := st["wire"].(map[string]any)
	if !ok {
		t.Fatalf("statusz missing wire section: %v", st["wire"])
	}
	if wireSec["addr"] == "" {
		t.Error("statusz wire section missing addr")
	}
	if v, ok := wireSec["tx_frames"].(int64); !ok || v == 0 {
		t.Errorf("statusz wire tx_frames = %v, want > 0", wireSec["tx_frames"])
	}
}

// Branch fork and merge-back ride the wire too: the branch engine inherits
// no wire (branches are in-process scratch loops), but the main loop's
// message plane stays serialized throughout.
func TestWireModeBranchForkMerge(t *testing.T) {
	tuples := datasets.PowerLawGraph(100, 3, 12)
	e, err := New(Config{
		Processors: 3,
		DelayBound: 8,
		Kind:       MainLoop,
		LoopID:     storage.MainLoop,
		Store:      storage.NewMemStore(),
		Program:    ssspProg{source: 0},
		Seed:       12,
		Wire:       &WireSpec{Mem: transport.NewMemWire()},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples)
	if err := e.WaitSettled(waitFor); err != nil {
		t.Fatal(err)
	}
	br, _, err := e.ForkBranch(storage.LoopID(200), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := br.WaitDone(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, br, tuples)
	if err := e.AdoptBranch(br); err != nil {
		t.Fatal(err)
	}
	br.Stop()
	checkSSSP(t, e, tuples)
}

var _ = stream.VertexID(0)
