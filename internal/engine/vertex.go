package engine

import (
	"fmt"
	"math/rand"
	"sort"

	"tornado/internal/lamport"
	"tornado/internal/obs/trace"
	"tornado/internal/stream"
)

// vertex is the engine-side state of one component. All access happens on
// the owning processor's goroutine.
type vertex struct {
	id         stream.VertexID
	iter       int64 // τ(x)
	lastCommit int64 // iteration of the last committed update; -1 if none
	state      any   // application state

	targets map[stream.VertexID]struct{} // current consumers (out-edges)
	added   map[stream.VertexID]struct{} // targets added since last commit
	removed map[stream.VertexID]struct{} // targets removed since last commit
	// targetClock holds the event time of the latest edge operation applied
	// per target. Under at-least-once transport a dropped-and-retransmitted
	// add can arrive after the remove that supersedes it; gating edge
	// mutations on event time keeps topology application commutative.
	targetClock map[stream.VertexID]stream.Timestamp
	// gatherSeen holds the highest update iteration gathered per producer.
	// Retransmission can reorder two updates from one producer; a producer's
	// commit iterations are strictly increasing, so discarding updates at or
	// below the last gathered iteration restores program order (the paper's
	// Section 5.3 stale-update discard).
	gatherSeen map[stream.VertexID]int64

	// Three-phase protocol state.
	prepareList map[stream.VertexID]struct{} // producers currently preparing
	stamp       lamport.Stamp                // non-zero while preparing own update
	waiting     map[stream.VertexID]struct{} // consumers owing an ACK
	pendingAcks []stream.VertexID            // producers whose PREPARE was deferred

	dirty      bool
	dirtyToken int64 // iteration of the held dirty token; -1 if none
	activated  bool  // this update was triggered by an explicit activation
	progress   float64
	holdInput  []heldWork // inputs/activations deferred while preparing
	emits      []emission // values emitted by the current Scatter
	rng        *rand.Rand

	// Delta mode (cfg.Delta != nil): gathered messages accumulate into
	// pending instead of being folded into state; the next consuming commit
	// hands the accumulated delta to Program.Update. hasPending
	// distinguishes "no pending" from a pending that happens to equal the
	// accumulator identity.
	pending    any
	hasPending bool

	// tctx is the causal span context of the traced delta that most recently
	// dirtied this vertex; the next commit records against it and propagates
	// it to consumers. Batch-aware: a second traced delta arriving before the
	// commit coalesces the first into a span link (see adoptTraceCtx).
	tctx trace.Context
}

type emission struct {
	to    stream.VertexID
	value any
	cum   bool // EmitCum: value is cumulative per (producer,consumer), not a delta
}

type heldWork struct {
	tuple    stream.Tuple
	token    int64
	activate bool
	jseq     uint64
	hasJSeq  bool
	tctx     trace.Context
}

func newVertex(id stream.VertexID, seed int64) *vertex {
	return &vertex{
		id:          id,
		lastCommit:  -1,
		dirtyToken:  -1,
		targets:     make(map[stream.VertexID]struct{}),
		added:       make(map[stream.VertexID]struct{}),
		removed:     make(map[stream.VertexID]struct{}),
		targetClock: make(map[stream.VertexID]stream.Timestamp),
		gatherSeen:  make(map[stream.VertexID]int64),
		prepareList: make(map[stream.VertexID]struct{}),
		waiting:     make(map[stream.VertexID]struct{}),
		rng:         rand.New(rand.NewSource(seed ^ int64(uint64(id)*0x9E3779B97F4A7C15))),
	}
}

// preparing reports whether the vertex is between phases two and three.
func (v *vertex) preparing() bool { return !v.stamp.IsZero() }

// effectiveConsumers returns current targets plus recently removed ones (the
// paper's SSSP emits tombstones to removed targets during the commit that
// detaches them).
func (v *vertex) effectiveConsumers() []stream.VertexID {
	out := make([]stream.VertexID, 0, len(v.targets)+len(v.removed))
	for t := range v.targets {
		out = append(out, t)
	}
	for t := range v.removed {
		if _, cur := v.targets[t]; !cur {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// vertexBlob is the stored representation of a vertex version: application
// state plus the dependency edges (and their event clocks), so a snapshot
// carries the full input graph.
type vertexBlob struct {
	State       any
	Targets     []stream.VertexID
	TargetClock map[stream.VertexID]stream.Timestamp
	// Pending persists an unconsumed accumulated delta alongside the state
	// (delta mode): a commit that does not consume a sub-threshold pending
	// must not strand its mass, because the gathers that produced it already
	// mutated the persisted per-producer records — recovery re-sends would
	// diff to zero. Persisting (state, pending) pairs keeps recovery and
	// branch forks exact (DESIGN.md §13).
	Pending    any
	HasPending bool
}

func init() {
	RegisterStateType(vertexBlob{})
}

// vertexContext implements Context for one program callback invocation.
type vertexContext struct {
	p           *processor
	v           *vertex
	allowEmit   bool
	allowTarget bool
}

func (c *vertexContext) ID() stream.VertexID { return c.v.id }
func (c *vertexContext) Iteration() int64    { return c.v.iter }
func (c *vertexContext) Loop() LoopKind      { return c.p.eng.cfg.Kind }
func (c *vertexContext) State() any          { return c.v.state }
func (c *vertexContext) SetState(s any)      { c.v.state = s }
func (c *vertexContext) Rand() *rand.Rand    { return c.v.rng }

func (c *vertexContext) Emit(to stream.VertexID, value any) {
	if !c.allowEmit {
		panic(fmt.Sprintf("engine: vertex %d Emit outside Scatter", c.v.id))
	}
	if _, ok := c.v.targets[to]; !ok {
		if _, wasRemoved := c.v.removed[to]; !wasRemoved {
			panic(fmt.Sprintf("engine: vertex %d Emit to %d, which is not a target", c.v.id, to))
		}
	}
	if c.p != nil { // contexts built without a processor (tests) skip stats
		c.p.eng.stats.Emits.Inc()
	}
	c.v.emits = append(c.v.emits, emission{to: to, value: value})
}

// EmitCum emits a cumulative per-(producer,consumer) value (delta mode):
// the receiver's Gather is told cum=true and diffs it against its record of
// this producer, which keeps deltas exact under the at-least-once
// transport's reordering and duplication (see package delta).
func (c *vertexContext) EmitCum(to stream.VertexID, value any) {
	if !c.allowEmit {
		panic(fmt.Sprintf("engine: vertex %d EmitCum outside Update", c.v.id))
	}
	if _, ok := c.v.targets[to]; !ok {
		if _, wasRemoved := c.v.removed[to]; !wasRemoved {
			panic(fmt.Sprintf("engine: vertex %d EmitCum to %d, which is not a target", c.v.id, to))
		}
	}
	if c.p != nil {
		c.p.eng.stats.Emits.Inc()
	}
	c.v.emits = append(c.v.emits, emission{to: to, value: value, cum: true})
}

func (c *vertexContext) AddTarget(to stream.VertexID) {
	if !c.allowTarget {
		panic(fmt.Sprintf("engine: vertex %d AddTarget during Scatter", c.v.id))
	}
	if _, ok := c.v.targets[to]; ok {
		return
	}
	c.v.targets[to] = struct{}{}
	c.v.added[to] = struct{}{}
	delete(c.v.removed, to)
}

func (c *vertexContext) RemoveTarget(to stream.VertexID) {
	if !c.allowTarget {
		panic(fmt.Sprintf("engine: vertex %d RemoveTarget during Scatter", c.v.id))
	}
	if _, ok := c.v.targets[to]; !ok {
		return
	}
	delete(c.v.targets, to)
	delete(c.v.added, to)
	c.v.removed[to] = struct{}{}
}

func (c *vertexContext) Targets() []stream.VertexID {
	return sortedIDs(c.v.targets)
}

func (c *vertexContext) AddedTargets() []stream.VertexID {
	return sortedIDs(c.v.added)
}

func (c *vertexContext) RemovedTargets() []stream.VertexID {
	return sortedIDs(c.v.removed)
}

func (c *vertexContext) ReportProgress(val float64) {
	c.v.progress += val
}

func (c *vertexContext) Activated() bool { return c.v.activated }

// cloneClock copies a target clock for persistence (nil when empty, to keep
// blobs of clock-less vertices compact).
func cloneClock(in map[stream.VertexID]stream.Timestamp) map[stream.VertexID]stream.Timestamp {
	if len(in) == 0 {
		return nil
	}
	out := make(map[stream.VertexID]stream.Timestamp, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func sortedIDs(set map[stream.VertexID]struct{}) []stream.VertexID {
	out := make([]stream.VertexID, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
