package engine

import (
	"errors"
	"fmt"
	"math"
	"time"

	"tornado/internal/stream"
)

// msgAdopt instructs a vertex to replace its state with a merged branch
// result, committed at the given iteration. It is the merge counterpart of a
// commit: the version is persisted, but nothing is scattered (the adopted
// state is already a fixed point, so consumers hold consistent values).
type msgAdopt struct {
	To          stream.VertexID
	State       any
	Targets     []stream.VertexID
	TargetClock map[stream.VertexID]stream.Timestamp
	Iteration   int64
	Token       int64
}

// ErrMergeConflict is returned by AdoptBranch when the main loop received
// new inputs while the merge was in flight; per Section 5.2 the merge is
// only valid "if there are no inputs gathered during the computation of the
// branch loop".
var ErrMergeConflict = errors.New("engine: inputs arrived during branch merge")

// AdoptBranch merges a converged branch loop's results back into this (main)
// loop, improving its approximation (Section 5.2): the branch's states are
// written at iteration lastTerminated + B, so no in-flight version can
// overwrite them (update iterations never exceed the cap). The caller must
// pause ingestion around the call; if the loop is not quiescent before and
// after the merge, the merge is aborted with ErrMergeConflict and the main
// loop continues unchanged (its own states were not touched yet).
func (e *Engine) AdoptBranch(br *Engine) error {
	if e.cfg.Kind != MainLoop {
		return errors.New("engine: AdoptBranch target must be a main loop")
	}
	select {
	case <-br.done:
	default:
		return errors.New("engine: branch has not converged")
	}
	// Snapshot the incarnation once: if a crash recovery replaces it while
	// the merge is in flight, the adoptions land on dead endpoints and the
	// post-merge quiescence check runs against the new incarnation, which has
	// recomputed its pre-merge state — the merge simply degrades to a no-op
	// or a conflict, never to corruption.
	inc := e.cur()
	if !inc.tracker.Settled() {
		return fmt.Errorf("%w: loop not quiescent at merge start", ErrMergeConflict)
	}
	// The merge is valid only if no inputs arrived since the FORK (not just
	// since the merge started): anything newer would be overwritten by the
	// branch's older fixed point.
	journalBefore := br.forkJournalSeq
	if e.journalSeq() != journalBefore {
		return ErrMergeConflict
	}

	// Use the effective (possibly controller-raised) B: adopted versions must
	// land above anything an in-flight commit could still write under it.
	mergeIter := inc.tracker.Notified() + e.delayBound.Load()
	release := e.HoldQuiesce()
	defer release()

	// Collect the branch's full overlay (its own commits over the fork
	// snapshot) and hand each vertex its merged state.
	type adoption struct {
		id      stream.VertexID
		state   any
		targets []stream.VertexID
		clock   map[stream.VertexID]stream.Timestamp
	}
	var adoptions []adoption
	err := br.scanBlobs(math.MaxInt64, func(id stream.VertexID, blob vertexBlob) error {
		adoptions = append(adoptions, adoption{id: id, state: blob.State, targets: blob.Targets, clock: blob.TargetClock})
		return nil
	})
	if err != nil {
		return err
	}
	if e.journalSeq() != journalBefore {
		return ErrMergeConflict
	}
	for _, a := range adoptions {
		tok := inc.tracker.AcquireFloor(mergeIter)
		inc.ingestE.Send(inc.route(a.id), msgAdopt{
			To: a.id, State: a.state, Targets: a.targets, TargetClock: a.clock,
			Iteration: mergeIter, Token: tok,
		})
	}
	inc.ingestE.Flush()
	release()
	if err := e.WaitQuiesce(time.Minute); err != nil {
		return err
	}
	if e.journalSeq() != journalBefore {
		return ErrMergeConflict
	}
	return nil
}

// JournalSeq returns the number of inputs ever ingested (main loops only;
// zero otherwise). It is the freshness clock of the query service: a branch
// forked at sequence S reflects exactly the first S inputs.
func (e *Engine) JournalSeq() uint64 { return e.journalSeq() }

// journalSeq returns the number of inputs ever ingested (main loops only).
func (e *Engine) journalSeq() uint64 {
	if e.journal == nil {
		return 0
	}
	e.journal.mu.Lock()
	defer e.journal.mu.Unlock()
	return e.journal.nextSeq
}

// scanBlobs visits the freshest stored blob (state + targets) of every
// vertex at or below maxIter, overlaying this loop's commits onto its
// snapshot source.
func (e *Engine) scanBlobs(maxIter int64, fn func(id stream.VertexID, blob vertexBlob) error) error {
	return e.ScanStates(maxIter, func(id stream.VertexID, _ int64, _ any) error {
		blob, err := e.readBlob(id, maxIter)
		if err != nil {
			return err
		}
		return fn(id, blob)
	})
}

// readBlob reads the freshest stored blob of a vertex, falling back to the
// snapshot source like ReadState.
func (e *Engine) readBlob(id stream.VertexID, maxIter int64) (vertexBlob, error) {
	data, _, err := e.cfg.Store.Latest(e.cfg.LoopID, id, maxIter)
	if snap := e.snapshot(); err != nil && snap != nil {
		data, _, err = e.cfg.Store.Latest(snap.Loop, id, snap.UpTo)
	}
	if err != nil {
		return vertexBlob{}, err
	}
	decoded, err := e.cfg.Codec.Decode(data)
	if err != nil {
		return vertexBlob{}, err
	}
	blob, ok := decoded.(vertexBlob)
	if !ok {
		return vertexBlob{}, fmt.Errorf("engine: stored version of vertex %d is %T", id, decoded)
	}
	return blob, nil
}

// handleAdopt applies a merged state on the owning processor.
func (p *processor) handleAdopt(m msgAdopt) {
	if p.migrating(m.To) {
		p.mig.journal = append(p.mig.journal, m)
		return
	}
	if p.bounce(m.To, m) {
		return
	}
	v := p.ensure(m.To)
	// A dirty or preparing vertex means inputs raced the merge; skip the
	// adoption for this vertex — the merge driver detects the conflict via
	// the journal and reports it.
	if !v.dirty && !v.preparing() && len(v.prepareList) == 0 {
		v.state = m.State
		if p.dp != nil {
			// The adopted state is the branch's fixed point over its own
			// gathered inputs; a pending accumulated against the PRE-merge
			// per-producer records would double-count when folded into it.
			// Drop it (and its queued activation, releasing the parked
			// token) — producers re-sending cumulative values after the
			// merge diff against the adopted records exactly.
			v.pending, v.hasPending = nil, false
			if it, ok := p.actQ.Remove(v.id); ok {
				p.deltaDepth.Add(-1)
				p.tk.Release(it.Token)
			}
		}
		for t := range v.targets {
			delete(v.targets, t)
		}
		for _, t := range m.Targets {
			v.targets[t] = struct{}{}
		}
		for t, ts := range m.TargetClock {
			v.targetClock[t] = ts
		}
		clear(v.added)
		clear(v.removed)
		if m.Iteration > v.iter {
			v.iter = m.Iteration
		}
		v.lastCommit = m.Iteration
		blob := vertexBlob{State: v.state, Targets: m.Targets, TargetClock: cloneClock(v.targetClock)}
		data, err := p.eng.cfg.Codec.Encode(blob)
		if err != nil {
			panic(fmt.Sprintf("engine: encode merged vertex %d: %v", v.id, err))
		}
		if err := p.eng.cfg.Store.Put(p.eng.cfg.LoopID, v.id, m.Iteration, data); err != nil {
			panic(fmt.Sprintf("engine: persist merged vertex %d: %v", v.id, err))
		}
		p.tk.RecordCommit(m.Iteration, 0)
		p.eng.stats.Commits.Inc()
		p.shareMu.Lock()
		p.commitLog[v.id] = m.Iteration
		p.shareMu.Unlock()
	}
	p.tk.Release(m.Token)
}
