package engine

import (
	"errors"
	"math"
	"testing"

	"tornado/internal/datasets"
	"tornado/internal/storage"
	"tornado/internal/stream"
)

func TestAdoptBranchImprovesApproximation(t *testing.T) {
	tuples := datasets.PowerLawGraph(100, 3, 47)
	e := newSSSPEngine(t, 3, 16, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples)
	if err := e.WaitSettled(waitFor); err != nil {
		t.Fatal(err)
	}
	br, _, err := e.ForkBranch(storage.LoopID(1), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Stop()
	if err := br.WaitDone(waitFor); err != nil {
		t.Fatal(err)
	}
	notifiedBefore := e.Notified()
	if err := e.AdoptBranch(br); err != nil {
		t.Fatal(err)
	}
	// The merged versions are stamped above the old frontier, at
	// lastTerminated + B.
	_, iter, err := e.ReadState(0, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if iter != notifiedBefore+16 {
		t.Fatalf("merged version at iteration %d; want %d", iter, notifiedBefore+16)
	}
	// Main-loop state still matches the reference after the merge, and the
	// loop keeps working on further input.
	checkSSSP(t, e, tuples)
	e.Ingest(stream.AddEdge(1<<40, 0, 99))
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	all := append(append([]stream.Tuple{}, tuples...), stream.AddEdge(1<<40, 0, 99))
	checkSSSP(t, e, all)
}

func TestAdoptBranchRejectsUnconvergedBranch(t *testing.T) {
	e := newSSSPEngine(t, 2, 8, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.Ingest(stream.AddEdge(1, 0, 1))
	if err := e.WaitSettled(waitFor); err != nil {
		t.Fatal(err)
	}
	// Build a branch but don't wait for it; with empty work it may finish
	// fast, so use a fresh engine that never ran as the "branch".
	cfg := e.Config()
	cfg.Kind = BranchLoop
	cfg.LoopID = storage.LoopID(7)
	br, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Stop()
	if err := e.AdoptBranch(br); err == nil {
		t.Fatal("adopting an unconverged branch should fail")
	}
}

func TestAdoptBranchRequiresMainLoop(t *testing.T) {
	e := newSSSPEngine(t, 2, 8, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.Ingest(stream.AddEdge(1, 0, 1))
	if err := e.WaitSettled(waitFor); err != nil {
		t.Fatal(err)
	}
	br, _, err := e.ForkBranch(storage.LoopID(1), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Stop()
	if err := br.WaitDone(waitFor); err != nil {
		t.Fatal(err)
	}
	if err := br.AdoptBranch(br); err == nil {
		t.Fatal("branch loops must not accept merges")
	}
}

func TestAdoptBranchDetectsConflictingIngest(t *testing.T) {
	tuples := datasets.PowerLawGraph(60, 3, 53)
	e := newSSSPEngine(t, 2, 8, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples)
	if err := e.WaitSettled(waitFor); err != nil {
		t.Fatal(err)
	}
	br, _, err := e.ForkBranch(storage.LoopID(1), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Stop()
	if err := br.WaitDone(waitFor); err != nil {
		t.Fatal(err)
	}
	// New input after the branch converged but before the merge: the merge
	// must refuse rather than clobber fresher state.
	e.Ingest(stream.AddEdge(1<<40, 0, 59))
	err = e.AdoptBranch(br)
	if err == nil {
		t.Fatal("merge with concurrent ingest should fail")
	}
	if !errors.Is(err, ErrMergeConflict) {
		t.Fatalf("err = %v; want ErrMergeConflict", err)
	}
	// The loop is still correct afterwards.
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	all := append(append([]stream.Tuple{}, tuples...), stream.AddEdge(1<<40, 0, 59))
	checkSSSP(t, e, all)
}
