package engine

import (
	"math"
	"testing"

	"tornado/internal/datasets"
	"tornado/internal/storage"
	"tornado/internal/stream"
)

func TestReshardResumesInPlace(t *testing.T) {
	tuples := datasets.PowerLawGraph(120, 3, 61)
	half := len(tuples) / 2
	store := storage.NewMemStore()
	e := newSSSPEngine(t, 2, 16, store, storage.MainLoop)
	e.Start()
	e.IngestAll(tuples[:half])

	ne, err := Reshard(e, 5, nil, waitFor)
	if err != nil {
		t.Fatal(err)
	}
	defer ne.Stop()
	// The resharded engine answers for the pre-reshard input...
	checkSSSP(t, ne, tuples[:half])
	// ...continues ingesting on the new partitioning...
	ne.IngestAll(tuples[half:])
	if err := ne.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, ne, tuples)
	// ...and stamps new versions above the resumed history.
	if got := ne.Notified(); got <= 0 {
		t.Fatalf("resharded loop never advanced: notified=%d", got)
	}
	loads := ne.LoadStats()
	if len(loads) != 5 {
		t.Fatalf("LoadStats reported %d processors; want 5", len(loads))
	}
	active := 0
	for _, n := range loads {
		if n > 0 {
			active++
		}
	}
	if active < 4 {
		t.Fatalf("vertices did not spread across the new processors: %v", loads)
	}
}

func TestReshardRejectsBranch(t *testing.T) {
	e := newSSSPEngine(t, 2, 8, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.Ingest(stream.AddEdge(1, 0, 1))
	if err := e.WaitSettled(waitFor); err != nil {
		t.Fatal(err)
	}
	br, _, err := e.ForkBranch(storage.LoopID(1), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Stop()
	if err := br.WaitDone(waitFor); err != nil {
		t.Fatal(err)
	}
	if _, err := Reshard(br, 4, nil, waitFor); err == nil {
		t.Fatal("resharding a branch should fail")
	}
}

func TestReshardCustomPartition(t *testing.T) {
	tuples := datasets.PowerLawGraph(80, 3, 67)
	e := newSSSPEngine(t, 2, 16, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	e.IngestAll(tuples)
	// Route everything to processor 1 — a degenerate but legal scheme.
	ne, err := Reshard(e, 3, func(stream.VertexID, int) int { return 1 }, waitFor)
	if err != nil {
		t.Fatal(err)
	}
	defer ne.Stop()
	ne.Ingest(stream.AddEdge(1<<40, 0, 79))
	if err := ne.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	all := append(append([]stream.Tuple{}, tuples...), stream.AddEdge(1<<40, 0, 79))
	checkSSSP(t, ne, all)
	loads := ne.LoadStats()
	if loads[0] != 0 || loads[2] != 0 || loads[1] == 0 {
		t.Fatalf("custom partition ignored: %v", loads)
	}
}

func TestCompactionBoundsMainLoopVersions(t *testing.T) {
	tuples := datasets.PowerLawGraph(100, 3, 71)
	store := storage.NewMemStore()
	e, err := New(Config{
		Processors: 2, DelayBound: 4, Kind: MainLoop,
		LoopID: storage.MainLoop, Store: store,
		Program: ssspProg{source: 0}, Seed: 42,
		CompactEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples)
	if err := e.WaitSettled(waitFor); err != nil {
		t.Fatal(err)
	}
	versions := store.NumVersions(storage.MainLoop)
	commits := int(e.StatsSnapshot().Commits)
	// Without compaction every commit would be a retained version; with it
	// the store holds roughly one version per vertex plus a small tail.
	if versions >= commits/2 {
		t.Fatalf("compaction ineffective: %d versions retained of %d commits", versions, commits)
	}
	checkSSSP(t, e, tuples)
}

func TestCompactionSparesPinnedForks(t *testing.T) {
	tuples := datasets.PowerLawGraph(100, 3, 73)
	half := len(tuples) / 2
	store := storage.NewMemStore()
	e, err := New(Config{
		Processors: 2, DelayBound: 4, Kind: MainLoop,
		LoopID: storage.MainLoop, Store: store,
		Program: ssspProg{source: 0}, Seed: 42,
		CompactEvery: 2, // aggressive
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples[:half])
	if err := e.WaitSettled(waitFor); err != nil {
		t.Fatal(err)
	}
	// Fork, then keep the main loop running hard before the branch reads
	// anything: the pin must keep the snapshot readable.
	br, _, err := e.ForkBranch(storage.LoopID(1), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Stop()
	e.IngestAll(tuples[half:])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	if err := br.WaitDone(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, br, tuples[:half])
	checkSSSP(t, e, tuples)
}

// TestReshardPinsResumeView: a Reshard replacement bootstraps lazily over
// its own history for as long as it runs, so Reshard must take a store pin
// at the resume iteration (on every backend, not just Snapshotter ones).
// An aggressive Compact while the replacement lives is clamped at resume —
// every vertex's resume-view version stays readable — and once the
// replacement stops the pin is released and the same compact reclaims.
func TestReshardPinsResumeView(t *testing.T) {
	tuples := datasets.PowerLawGraph(120, 3, 77)
	half := len(tuples) / 2
	store := storage.NewMemStore()
	e := newSSSPEngine(t, 2, 16, store, storage.MainLoop)
	e.Start()
	e.IngestAll(tuples[:half])

	ne, err := Reshard(e, 3, nil, waitFor)
	if err != nil {
		t.Fatal(err)
	}
	resume := ne.Config().StartIteration - 1
	var atResume []stream.VertexID
	if err := store.Scan(storage.MainLoop, resume, func(r storage.Record) error {
		atResume = append(atResume, r.Vertex)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(atResume) == 0 {
		t.Fatal("no versions at the resume iteration; test needs pre-reshard state")
	}
	// Commit new versions above resume, then compact with an unbounded
	// floor: the pin must clamp it at resume.
	ne.IngestAll(tuples[half:])
	if err := ne.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	if err := store.Compact(storage.MainLoop, math.MaxInt64); err != nil {
		t.Fatal(err)
	}
	for _, v := range atResume {
		if _, _, err := store.Latest(storage.MainLoop, v, resume); err != nil {
			t.Fatalf("resume-view version of vertex %d dropped while the replacement lives: %v", v, err)
		}
	}
	checkSSSP(t, ne, tuples)

	ne.Stop()
	if err := store.Compact(storage.MainLoop, math.MaxInt64); err != nil {
		t.Fatal(err)
	}
	reclaimed := false
	for _, v := range atResume {
		if _, _, err := store.Latest(storage.MainLoop, v, resume); err != nil {
			reclaimed = true
			break
		}
	}
	if !reclaimed {
		t.Fatal("pin outlived the resharded engine: no resume-view version was reclaimed")
	}
}
