package engine

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"tornado/internal/datasets"
	"tornado/internal/obs"
	"tornado/internal/storage"
	"tornado/internal/stream"
)

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCrashDiscardsStateManualRecovery checks true crash semantics without a
// supervisor: a crashed processor's in-memory state and pending inputs are
// really gone (the loop cannot quiesce — the dead tokens pin the frontier),
// and a manual RecoverFromCheckpoint restarts from the last terminated
// iteration and still reaches the exact fixed point.
func TestCrashDiscardsStateManualRecovery(t *testing.T) {
	tuples := datasets.PowerLawGraph(300, 3, 11)
	store := storage.NewMemStore()
	e := newSSSPEngine(t, 4, 8, store, storage.MainLoop)
	e.Start()
	defer e.Stop()

	half := len(tuples) / 2
	e.IngestAll(tuples[:half])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}

	// Pause processor 2, queue inputs against it, then crash it: the queued
	// inputs (and their obligation tokens) deterministically die with it.
	e.PauseProcessor(2)
	e.IngestAll(tuples[half:])
	e.CrashProcessor(2)

	if err := e.WaitQuiesce(300 * time.Millisecond); err == nil {
		t.Fatal("loop quiesced despite a crashed processor holding obligations")
	}
	if s := e.StatsSnapshot(); s.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", s.Crashes)
	}

	if !e.RecoverFromCheckpoint() {
		t.Fatal("RecoverFromCheckpoint declined")
	}
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
	s := e.StatsSnapshot()
	if s.Recoveries != 1 || s.Generation != 1 {
		t.Fatalf("Recoveries = %d, Generation = %d, want 1, 1", s.Recoveries, s.Generation)
	}

	// The recovered loop keeps working: more inputs land correctly.
	extra := datasets.PowerLawGraph(40, 2, 12)
	for i := range extra {
		extra[i].Src += 5000
		extra[i].Dst += 5000
	}
	e.IngestAll(extra)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, append(append([]stream.Tuple{}, tuples...), extra...))
}

// TestSupervisorAutoRecovery crashes a processor mid-run and asserts the
// heartbeat supervisor detects the failure and restarts the loop from the
// checkpoint without any manual intervention — and that the whole episode is
// visible in the /metrics exposition (recoveries counter, MTTR histogram).
func TestSupervisorAutoRecovery(t *testing.T) {
	tuples := datasets.PowerLawGraph(300, 3, 21)
	hub := obs.NewHub(obs.HubOptions{})
	e, err := New(Config{
		Processors:        4,
		DelayBound:        8,
		Kind:              MainLoop,
		LoopID:            storage.MainLoop,
		Store:             storage.NewMemStore(),
		Program:           ssspProg{source: 0},
		Seed:              21,
		HeartbeatInterval: 2 * time.Millisecond,
		Obs:               hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()

	half := len(tuples) / 2
	e.IngestAll(tuples[:half])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	e.PauseProcessor(1)
	e.IngestAll(tuples[half:])
	e.CrashProcessor(1)

	// No manual recovery: quiescence is only reachable through the
	// supervisor detecting the missed heartbeats and restarting the loop.
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
	s := e.StatsSnapshot()
	if s.Recoveries < 1 || s.Generation < 1 {
		t.Fatalf("Recoveries = %d, Generation = %d, want >= 1", s.Recoveries, s.Generation)
	}

	// The recovery log tells the story: crash, suspicion, recovery.
	kinds := make(map[string]int)
	for _, ev := range e.RecoveryLog() {
		kinds[ev.Kind]++
	}
	for _, k := range []string{EventCrash, EventSuspect, EventRecovery} {
		if kinds[k] == 0 {
			t.Fatalf("recovery log has no %q event: %+v", k, e.RecoveryLog())
		}
	}

	var buf bytes.Buffer
	if err := hub.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp := buf.String()
	for _, metric := range []string{"tornado_crashes_total", "tornado_recoveries_total", "tornado_quarantined_processors", "tornado_recovery_seconds"} {
		if !strings.Contains(exp, metric) {
			t.Fatalf("/metrics lacks %s:\n%s", metric, exp)
		}
	}
	// The MTTR histogram must have observed the recovery.
	sawObservation := false
	for _, line := range strings.Split(exp, "\n") {
		if strings.HasPrefix(line, "tornado_recovery_seconds_count") && !strings.HasSuffix(line, " 0") {
			sawObservation = true
		}
	}
	if !sawObservation {
		t.Fatalf("tornado_recovery_seconds histogram recorded nothing:\n%s", exp)
	}
}

// TestSupervisorRecoversCrashedMaster crashes the master: termination
// notifications stop, so a bounded loop eventually stalls; the supervisor
// must notice the silent master and restart the loop.
func TestSupervisorRecoversCrashedMaster(t *testing.T) {
	tuples := datasets.PowerLawGraph(200, 3, 31)
	e, err := New(Config{
		Processors:        3,
		DelayBound:        4,
		Kind:              MainLoop,
		LoopID:            storage.MainLoop,
		Store:             storage.NewMemStore(),
		Program:           ssspProg{source: 0},
		Seed:              31,
		HeartbeatInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()

	half := len(tuples) / 2
	e.IngestAll(tuples[:half])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	e.CrashMaster()
	e.IngestAll(tuples[half:])
	if err := e.WaitSettled(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
	if s := e.StatsSnapshot(); s.Recoveries < 1 {
		t.Fatalf("Recoveries = %d, want >= 1", s.Recoveries)
	}
}

// TestFlappingProcessorQuarantined crashes the same processor repeatedly;
// after MaxRestarts restarts inside the window the supervisor must quarantine
// it, remap its partition onto the survivors, and the loop must still reach
// the exact fixed point without it.
func TestFlappingProcessorQuarantined(t *testing.T) {
	tuples := datasets.PowerLawGraph(300, 3, 41)
	e, err := New(Config{
		Processors:        4,
		DelayBound:        8,
		Kind:              MainLoop,
		LoopID:            storage.MainLoop,
		Store:             storage.NewMemStore(),
		Program:           ssspProg{source: 0},
		Seed:              41,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectAfter:      5,
		MaxRestarts:       2,
		RestartWindow:     time.Minute,
		RestartBackoff:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()

	half := len(tuples) / 2
	e.IngestAll(tuples[:half])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}

	// Crash processor 2 once per recovered incarnation until it exceeds its
	// restart budget.
	for round := 0; round < 3; round++ {
		before := e.StatsSnapshot().Recoveries
		e.CrashProcessor(2)
		waitUntil(t, waitFor, func() bool { return e.StatsSnapshot().Recoveries > before },
			fmt.Sprintf("round %d: supervisor never recovered the crash", round))
	}

	quarantined := e.Quarantined()
	found := false
	for _, i := range quarantined {
		if i == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("processor 2 not quarantined after 3 crashes (quarantined: %v)", quarantined)
	}
	if s := e.StatsSnapshot(); s.Quarantined < 1 {
		t.Fatalf("StatsSnapshot.Quarantined = %d, want >= 1", s.Quarantined)
	}

	// The survivors absorb the quarantined partition and finish the job.
	e.IngestAll(tuples[half:])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
	if load := e.LoadStats(); load[2] != 0 {
		t.Fatalf("quarantined processor reports load %d, want 0 (loads: %v)", load[2], load)
	}
	kinds := make(map[string]int)
	for _, ev := range e.RecoveryLog() {
		kinds[ev.Kind]++
	}
	if kinds[EventQuarantine] == 0 {
		t.Fatalf("no quarantine event in recovery log: %+v", e.RecoveryLog())
	}
}

// TestFaultPlanSchedule arms a deterministic chaos schedule — crash a
// processor at iteration 1, the master at iteration 3, and a processor in
// the middle of a branch fork — and asserts both the main loop and the
// branch end at the exact fixed point.
func TestFaultPlanSchedule(t *testing.T) {
	tuples := datasets.PowerLawGraph(300, 3, 51)
	e, err := New(Config{
		Processors:        4,
		DelayBound:        8,
		Kind:              MainLoop,
		LoopID:            storage.MainLoop,
		Store:             storage.NewMemStore(),
		Program:           ssspProg{source: 0},
		Seed:              51,
		HeartbeatInterval: 2 * time.Millisecond,
		RestartBackoff:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.InjectFaultPlan(FaultPlan{Faults: []Fault{
		{Kind: FaultCrashProcessor, Proc: 1, AtIteration: 1},
		{Kind: FaultCrashMaster, AtIteration: 3},
	}})
	e.Start()
	defer e.Stop()

	e.IngestAll(tuples)
	if err := e.WaitSettled(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
	// Both faults fire, but recovery is loop-granular: deaths noticed in
	// the same detection window legitimately share one restart.
	s := e.StatsSnapshot()
	if s.Crashes < 2 || s.Recoveries < 1 {
		t.Fatalf("Crashes = %d, Recoveries = %d, want >= 2, >= 1", s.Crashes, s.Recoveries)
	}

	// Crash mid-branch-fork: the fork spec is captured before the fault
	// fires, so the branch still converges to the fixed point while the
	// parent recovers underneath it.
	e.InjectFaultPlan(FaultPlan{Faults: []Fault{
		{Kind: FaultCrashProcessor, Proc: 0, OnFork: true},
	}})
	br, _, err := e.ForkBranch(storage.LoopID(100), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := br.WaitDone(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, br, tuples)
	br.Stop()
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
}
