package engine

import (
	"testing"

	"tornado/internal/stream"
)

// Context misuse must fail loudly: these tests drive vertexContext directly
// (same package) to pin the guard rails without crashing a live processor.

func newTestCtx(allowEmit, allowTarget bool) *vertexContext {
	v := newVertex(7, 1)
	v.targets[9] = struct{}{}
	return &vertexContext{v: v, allowEmit: allowEmit, allowTarget: allowTarget}
}

func expectPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s should panic", what)
		}
	}()
	fn()
}

func TestEmitOutsideScatterPanics(t *testing.T) {
	ctx := newTestCtx(false, true)
	expectPanic(t, "Emit outside Scatter", func() { ctx.Emit(9, 1) })
}

func TestEmitToNonTargetPanics(t *testing.T) {
	ctx := newTestCtx(true, false)
	expectPanic(t, "Emit to non-target", func() { ctx.Emit(42, 1) })
}

func TestEmitToRemovedTargetAllowed(t *testing.T) {
	ctx := newTestCtx(true, true)
	ctx.RemoveTarget(9)
	ctx.allowEmit = true
	ctx.Emit(9, "tombstone") // must not panic
	if len(ctx.v.emits) != 1 {
		t.Fatalf("emits = %d; want 1", len(ctx.v.emits))
	}
}

func TestTargetMutationDuringScatterPanics(t *testing.T) {
	ctx := newTestCtx(true, false)
	expectPanic(t, "AddTarget during Scatter", func() { ctx.AddTarget(1) })
	expectPanic(t, "RemoveTarget during Scatter", func() { ctx.RemoveTarget(9) })
}

func TestTargetBookkeeping(t *testing.T) {
	ctx := newTestCtx(false, true)
	ctx.AddTarget(3)
	ctx.AddTarget(5)
	ctx.AddTarget(3) // duplicate is a no-op
	ctx.RemoveTarget(9)
	if got := ctx.Targets(); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("Targets = %v; want [3 5]", got)
	}
	if got := ctx.AddedTargets(); len(got) != 2 {
		t.Fatalf("AddedTargets = %v", got)
	}
	if got := ctx.RemovedTargets(); len(got) != 1 || got[0] != 9 {
		t.Fatalf("RemovedTargets = %v", got)
	}
	// Re-adding a just-removed target cancels the removal.
	ctx.AddTarget(9)
	if got := ctx.RemovedTargets(); len(got) != 0 {
		t.Fatalf("RemovedTargets after re-add = %v", got)
	}
	// Removing a just-added target cancels the addition.
	ctx.RemoveTarget(5)
	for _, id := range ctx.AddedTargets() {
		if id == 5 {
			t.Fatal("AddedTargets still lists a removed target")
		}
	}
}

func TestContextActivatedFlag(t *testing.T) {
	ctx := newTestCtx(true, false)
	if ctx.Activated() {
		t.Fatal("fresh vertex reports Activated")
	}
	ctx.v.activated = true
	if !ctx.Activated() {
		t.Fatal("Activated flag not surfaced")
	}
}

func TestContextStateAndProgress(t *testing.T) {
	ctx := newTestCtx(false, false)
	if ctx.State() != nil {
		t.Fatal("fresh vertex has non-nil state")
	}
	ctx.SetState("hello")
	if ctx.State() != "hello" {
		t.Fatal("SetState did not stick")
	}
	ctx.ReportProgress(1.5)
	ctx.ReportProgress(2.5)
	if ctx.v.progress != 4.0 {
		t.Fatalf("progress = %v; want 4.0", ctx.v.progress)
	}
	if ctx.ID() != 7 {
		t.Fatalf("ID = %d; want 7", ctx.ID())
	}
	if ctx.Rand() == nil {
		t.Fatal("Rand is nil")
	}
}

func TestEffectiveConsumersIncludesRemoved(t *testing.T) {
	v := newVertex(1, 1)
	v.targets[5] = struct{}{}
	v.removed[3] = struct{}{}
	v.removed[5] = struct{}{} // removed AND re-added: count once
	got := v.effectiveConsumers()
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("effectiveConsumers = %v; want [3 5]", got)
	}
}

func TestTrackerSettledAndFrontier(t *testing.T) {
	tr := NewTracker(0)
	if !tr.Settled() {
		t.Fatal("fresh tracker should be settled")
	}
	tr.AcquireFloor(3)
	if tr.Settled() {
		t.Fatal("tracker with a live token cannot be settled")
	}
	if got := tr.Frontier(); got != 3 {
		t.Fatalf("Frontier = %d; want 3", got)
	}
	tr.Release(3)
	if tr.Settled() {
		t.Fatal("quiescent but unannounced tracker must not be settled")
	}
	if _, to, _, ok := tr.Advance(); !ok || to != 3 {
		t.Fatalf("Advance -> %d, %v", to, ok)
	}
	if !tr.Settled() {
		t.Fatal("announced tracker should be settled")
	}
	if got := tr.Frontier(); got != 4 {
		t.Fatalf("Frontier after settle = %d; want 4", got)
	}
}

func TestTrackerBaseIteration(t *testing.T) {
	tr := NewTracker(100)
	if got := tr.AcquireFloor(5); got != 100 {
		t.Fatalf("AcquireFloor(5) with base 100 = %d; want 100", got)
	}
	tr.Release(100)
	if got := tr.Notified(); got != 99 {
		t.Fatalf("Notified = %d; want 99", got)
	}
}

func TestLoopKindString(t *testing.T) {
	if MainLoop.String() != "main" || BranchLoop.String() != "branch" {
		t.Fatal("LoopKind names wrong")
	}
}

func TestRouteVertex(t *testing.T) {
	if routeVertex(stream.AddEdge(1, 3, 4)) != 3 {
		t.Fatal("edge tuples route to the producer endpoint")
	}
	if routeVertex(stream.RemoveEdge(1, 3, 4)) != 3 {
		t.Fatal("removals route to the producer endpoint")
	}
	if routeVertex(stream.Value(1, 9, nil)) != 9 {
		t.Fatal("value tuples route to their destination")
	}
}
