package engine

import (
	"strconv"
	"sync"
	"time"

	"tornado/internal/metrics"
	"tornado/internal/obs"
	"tornado/internal/storage"
	"tornado/internal/stream"
)

// attachObs hooks the engine into an observability hub: the hot-path
// counters register themselves with the hub's registry under per-loop labels
// (exposition reads the very atomics the engine already maintains, so the
// protocol pays nothing extra), gauges read the tracker at scrape time, and
// the shared protocol tracer is installed for the processors.
// Branch loops are the exception: they fork per query and live for
// milliseconds, so no scrape could ever observe their series, while
// registering (and unregistering) the full collector set would dominate the
// fork fast path (~2x on the fork/converge/close cycle). They therefore
// register nothing — zero new registry families per fork — and instead join
// their parent's pooled branchObs aggregate, whose fixed tornado_branch_*
// families sum live and retired branches at scrape time.
func (e *Engine) attachObs(hub *obs.Hub) {
	e.tracer = hub.Tracer
	if e.cfg.Kind == BranchLoop {
		if bo := e.cfg.branchObs; bo != nil {
			bo.attach(e)
			e.obsDetach = func() { bo.detach(e) }
		}
		return
	}
	loopStr := strconv.FormatUint(uint64(e.cfg.LoopID), 10)
	sc := hub.Registry.Scope(
		obs.L("loop", loopStr),
		obs.L("kind", e.cfg.Kind.String()),
		obs.L("program", e.progLabel()),
	)
	e.obsScope = sc

	sc.RegisterCounter("tornado_commits_total",
		"Vertex updates committed (phase three of the update protocol).", &e.stats.Commits)
	sc.RegisterCounter("tornado_update_msgs_total",
		"COMMIT (update) messages sent to consumers.", &e.stats.UpdateMsgs)
	sc.RegisterCounter("tornado_prepare_msgs_total",
		"PREPARE messages sent (phase two iteration negotiation).", &e.stats.PrepareMsgs)
	sc.RegisterCounter("tornado_ack_msgs_total",
		"ACK messages sent answering prepares.", &e.stats.AckMsgs)
	sc.RegisterCounter("tornado_input_msgs_total",
		"External stream tuples applied to vertices.", &e.stats.InputMsgs)
	sc.RegisterCounter("tornado_emits_total",
		"Values emitted by program Scatter calls.", &e.stats.Emits)
	sc.RegisterCounter("tornado_coalesced_updates_total",
		"Update messages merged into a newer same-pair update before leaving the processor.", &e.stats.Coalesced)

	if e.cfg.Delta != nil {
		sc.RegisterCounter("tornado_delta_merged_total",
			"Deltas accumulated into an already-pending slot (one fewer commit each).", &e.stats.DeltaMerged)
		sc.RegisterCounter("tornado_delta_activations_skipped_total",
			"Sub-threshold pendings parked instead of scheduled (selective activation).", &e.stats.DeltaSkipped)
		sc.RegisterCounter("tornado_delta_applied_total",
			"Pending deltas consumed by commits.", &e.stats.DeltaApplied)
		sc.GaugeFunc("tornado_delta_activation_queue_depth",
			"Summed per-processor activation-queue depth (drained to zero at every receive-window end).",
			func() float64 {
				e.genMu.RLock()
				defer e.genMu.RUnlock()
				var n int64
				for _, p := range e.inc.procs {
					if p != nil {
						n += p.deltaDepth.Load()
					}
				}
				return float64(n)
			})
		sc.GaugeFunc("tornado_delta_threshold_boost",
			"Significance-threshold multiplier (1.0 at rest; raised by the overload ladder).",
			func() float64 { return e.DeltaBoost() })
		// Shorthand spellings stay scrapeable as deprecated aliases so every
		// delta series resolves under the canonical tornado_delta_* names.
		hub.Registry.Alias("tornado_deltas_merged_total", "tornado_delta_merged_total")
		hub.Registry.Alias("tornado_delta_skipped_total", "tornado_delta_activations_skipped_total")
		hub.Registry.Alias("tornado_delta_queue_depth", "tornado_delta_activation_queue_depth")
	}

	sc.RegisterCounter("tornado_transport_sent_total",
		"Data frames accepted for transmission, including resends and duplicates.", &e.netStats.Sent)
	sc.RegisterCounter("tornado_transport_payloads_total",
		"Payloads carried by first-transmission data frames (payloads/frame = payloads / (sent - resent)).", &e.netStats.Payloads)
	sc.RegisterCounter("tornado_transport_delivered_total",
		"Payloads handed to live receivers after frame deduplication.", &e.netStats.Delivered)
	sc.RegisterCounter("tornado_transport_resent_total",
		"Frames retransmitted after the at-least-once ack timeout.", &e.netStats.Resent)
	sc.RegisterCounter("tornado_transport_ack_frames_total",
		"Acknowledgement frames sent by receivers.", &e.netStats.AckFrames)
	sc.RegisterCounter("tornado_transport_dropped_total",
		"Data frames dropped in flight by fault injection.", &e.netStats.Dropped)
	sc.RegisterCounter("tornado_transport_duplicated_total",
		"Data frames duplicated in flight by fault injection.", &e.netStats.Duplicated)
	sc.RegisterCounter("tornado_transport_dead_letters_total",
		"Frames abandoned after exhausting the retransmission budget.", &e.netStats.DeadLetters)

	sc.RegisterCounter("tornado_wire_frames_total",
		"Frames serialized onto the wire substrate.", &e.netStats.WireTxFrames, obs.L("dir", "tx"))
	sc.RegisterCounter("tornado_wire_frames_total",
		"Frames decoded off the wire substrate.", &e.netStats.WireRxFrames, obs.L("dir", "rx"))
	sc.RegisterCounter("tornado_wire_bytes_total",
		"Encoded bytes written to the wire (length prefixes included).", &e.netStats.WireTxBytes, obs.L("dir", "tx"))
	sc.RegisterCounter("tornado_wire_bytes_total",
		"Encoded bytes read from the wire (length prefixes included).", &e.netStats.WireRxBytes, obs.L("dir", "rx"))
	sc.RegisterCounter("tornado_wire_reconnects_total",
		"Supervised re-dials after an established peer connection died.", &e.netStats.WireReconnects)
	sc.RegisterCounter("tornado_wire_checksum_failures_total",
		"Frames whose CRC32 failed verification; each drops its connection, none are delivered.", &e.netStats.WireChecksumFailures)
	sc.RegisterCounter("tornado_wire_torn_frames_total",
		"Frames with framing damage short of a CRC mismatch (truncated bodies, corrupt length prefixes).", &e.netStats.WireTornFrames)
	sc.RegisterCounter("tornado_wire_shed_frames_total",
		"Frames shed before the socket (full peer queue, unresolvable destination) or inbound for unknown endpoints.", &e.netStats.WireShed)

	sc.RegisterCounter("tornado_crashes_total",
		"Processor and master crashes injected (API or fault plan).", &e.crashes)
	sc.RegisterCounter("tornado_recoveries_total",
		"Completed checkpoint restarts (supervisor-driven or manual).", &e.recoveries)
	sc.GaugeFunc("tornado_quarantined_processors",
		"Processors removed from rotation after exceeding the restart budget.",
		func() float64 {
			e.genMu.RLock()
			defer e.genMu.RUnlock()
			return float64(len(e.quarantined))
		})
	sc.GaugeFunc("tornado_incarnation_generation",
		"Loop incarnation number (0 = never recovered).",
		func() float64 { return float64(e.Generation()) })

	// Elastic repartitioning (DESIGN.md §16): plan epoch, active width, and
	// the live-migration counters.
	sc.RegisterCounter("tornado_elastic_migrations_total",
		"Live vertex-range migrations completed (plan epoch published).", &e.migrations)
	sc.RegisterCounter("tornado_elastic_migrated_vertices_total",
		"Vertices shipped between processors by live migrations.", &e.migratedVerts)
	sc.RegisterCounter("tornado_elastic_migration_aborts_total",
		"Live migrations aborted before their cutover (crash or shutdown mid-migration).", &e.migAborts)
	sc.RegisterCounter("tornado_elastic_bounced_frames_total",
		"Vertex-addressed messages re-routed through the plan after arriving at a non-owner.", &e.migBounced)
	sc.GaugeFunc("tornado_elastic_plan_epoch",
		"Partition-plan epoch (bumped by every migration cutover).",
		func() float64 { return float64(e.PlanEpoch()) })
	sc.GaugeFunc("tornado_elastic_active_processors",
		"Processor slots currently owning part of the partition plan.",
		func() float64 { return float64(e.plan.Load().ActiveCount()) })
	e.migDurHist = sc.Histogram("tornado_elastic_migration_seconds",
		"Wall-clock time from freeze to cutover of one live migration.", nil)

	sc.GaugeFunc("tornado_frontier_iteration",
		"Smallest iteration still holding an obligation token (progress frontier).",
		func() float64 { return float64(e.cur().tracker.Frontier()) })
	sc.GaugeFunc("tornado_notified_iteration",
		"Highest iteration announced terminated by the master.",
		func() float64 { return float64(e.cur().tracker.Notified()) })
	sc.GaugeFunc("tornado_frontier_lag_iterations",
		"Distance between the frontier and the highest iteration that ever held a token; compare against the delay bound B when tuning bounded asynchrony.",
		func() float64 { return float64(e.cur().tracker.FrontierLag()) })
	sc.GaugeFunc("tornado_obligations",
		"Outstanding obligation tokens: in-flight inputs, dirty vertices and undelivered updates.",
		func() float64 { return float64(e.cur().tracker.TokenCount()) })
	sc.GaugeFunc("tornado_pending_prepares",
		"PREPARE messages still awaiting their ACK.",
		func() float64 { return float64(e.pendingPrepares.Load()) })

	sc.RegisterCounter("tornado_flow_stalls_total",
		"Transport inbox high-watermark crossings (delivery credit withdrawn).", &e.netStats.Stalls)
	sc.RegisterCounter("tornado_flow_frames_held_total",
		"Data frames senders parked while a receiver withheld credit.", &e.netStats.HeldFrames)
	sc.RegisterCounter("tornado_flow_urgent_shed_total",
		"Stall-exempt control frames shed (acked, not enqueued) by watermark-full receivers.", &e.netStats.UrgentShed)
	sc.GaugeFunc("tornado_flow_inbox_depth_max",
		"Deepest transport inbox right now (compare against the InboxHigh watermark).",
		func() float64 { m, _, _, _ := e.cur().net.QueueDepths(); return float64(m) })
	sc.GaugeFunc("tornado_flow_stalled_endpoints",
		"Endpoints currently withholding delivery credit.",
		func() float64 { _, _, s, _ := e.cur().net.QueueDepths(); return float64(s) })
	sc.GaugeFunc("tornado_flow_held_frames",
		"Frames currently parked at senders waiting for credit.",
		func() float64 { _, _, _, h := e.cur().net.QueueDepths(); return float64(h) })
	sc.GaugeFunc("tornado_flow_delay_bound",
		"Effective delay bound B (above the configured value while degraded).",
		func() float64 { return float64(e.delayBound.Load()) })
	if g := e.ingestGate; g != nil {
		sc.GaugeFunc("tornado_flow_ingest_gate_depth",
			"Inputs admitted but not yet applied to a vertex.",
			func() float64 { return float64(g.Depth()) })
		sc.GaugeFunc("tornado_flow_ingest_gate_capacity",
			"Admission-gate capacity (Config.MaxPendingInputs).",
			func() float64 { return float64(g.Capacity()) })
		// Renamed: the _total suffix wrongly implied a Prometheus counter
		// type for what is exposed as a gauge. The old name stays readable
		// as a deprecated alias for one release.
		sc.GaugeFunc("tornado_flow_ingest_pause_seconds",
			"Cumulative wall-clock time producers spent blocked at the admission gate.",
			func() float64 { return g.WaitTime().Seconds() })
		hub.Registry.Alias("tornado_flow_ingest_pause_seconds_total", "tornado_flow_ingest_pause_seconds")
	}

	// Freshness watermarks: how far each partition's committed work runs
	// ahead of the terminated frontier, and how many journaled inputs have
	// not yet committed (the query path exposes its own journal-seq age).
	for i := 0; i < e.cfg.MaxProcessors; i++ {
		proc := i
		sc.GaugeFunc("tornado_partition_frontier_lag_iterations",
			"Iterations between a partition's newest commit and the terminated frontier (per-partition staleness watermark).",
			func() float64 { return float64(e.partitionLag(proc)) },
			obs.L("proc", strconv.Itoa(proc)))
	}
	if e.journal != nil {
		sc.GaugeFunc("tornado_input_journal_uncommitted",
			"Journaled inputs not yet covered by a vertex commit (ingest-side freshness debt).",
			func() float64 { u, _ := e.journal.Size(); return float64(u) })
	}

	// Versioned-store residency, exported only when the backend accounts
	// itself (the MVCC store does; map/disk backends register nothing).
	// The gauges answer the capacity questions a long-running evolving
	// stream raises: is compaction keeping up (live_versions, resident
	// bytes), is it running at all (compactions_total), and is anything
	// pinning history alive (pinned_snapshots, snapshot_age).
	if sp, ok := e.cfg.Store.(storage.StatsProvider); ok {
		sc.GaugeFunc("tornado_store_live_versions",
			"Versions reachable from the store's live roots across all loops.",
			func() float64 { return float64(sp.StoreStats().LiveVersions) })
		sc.GaugeFunc("tornado_store_resident_bytes",
			"Payload bytes held by live versions (excludes handle-retained epochs, which die with their handles).",
			func() float64 { return float64(sp.StoreStats().ResidentBytes) })
		sc.GaugeFunc("tornado_store_compactions_total",
			"Compaction passes run (engine-driven and background).",
			func() float64 { return float64(sp.StoreStats().Compactions) })
		sc.GaugeFunc("tornado_store_pinned_snapshots",
			"Unreleased snapshot handles plus live fork pins; nonzero with no branches running means a leaked fork.",
			func() float64 { return float64(sp.StoreStats().PinnedSnapshots) })
		sc.GaugeFunc("tornado_store_snapshot_age_seconds",
			"Age of the oldest unreleased snapshot handle (bounds how much superseded history compaction must retain).",
			func() float64 { return sp.StoreStats().OldestSnapshotAge.Seconds() })
	}

	// Branch loops pool their series here instead of registering families.
	e.branchObs = newBranchObs()
	e.branchObs.register(sc)

	e.iterCommitsHist = sc.Histogram("tornado_iteration_commits",
		"Vertex commits per terminated iteration.", obs.ExpBuckets(1, 2, 24))
	e.advanceGapHist = sc.Histogram("tornado_frontier_advance_seconds",
		"Wall-clock gap between consecutive frontier advances.", nil)
	e.mttrHist = sc.Histogram("tornado_recovery_seconds",
		"Time from failure detection to the recovered incarnation running (MTTR).", nil)
	if e.cfg.Wire != nil {
		e.wireFlushHist = sc.Histogram("tornado_wire_frames_per_flush",
			"Frames coalesced into one wire socket flush (the wire's batching ratio).",
			obs.ExpBuckets(1, 2, 12))
	}

	statusName := "loop/" + loopStr
	hub.AddStatus(statusName, e.statusz)
	e.obsDetach = func() {
		hub.RemoveStatus(statusName)
		sc.Close()
	}
}

// statusz is the engine's per-loop /statusz section.
func (e *Engine) statusz() any {
	s := e.StatsSnapshot()
	fs := e.FlowSnapshot()
	tracker := e.cur().tracker
	uptime := time.Since(e.created)
	m := map[string]any{
		"kind":        e.cfg.Kind.String(),
		"program":     e.progLabel(),
		"mode":        e.execMode(),
		"delay_bound": e.cfg.DelayBound,
		"flow": map[string]any{
			"delay_bound_effective": fs.DelayBound,
			"gate_depth":            fs.GateDepth,
			"gate_capacity":         fs.GateCapacity,
			"gate_saturated":        fs.GateSaturated,
			"gate_peak":             fs.GatePeak,
			"gate_waits":            fs.GateWaits,
			"ingest_pause":          fs.GateWaitTime.String(),
			"gate_resets":           fs.GateResets,
			"inbox_max":             fs.InboxMax,
			"inbox_total":           fs.InboxTotal,
			"stalled_endpoints":     fs.StalledEndpoints,
			"held_frames":           fs.HeldFrames,
			"stalls":                fs.Stalls,
			"frames_held":           fs.FramesHeld,
			"urgent_shed":           fs.UrgentShed,
		},
		"processors":         e.cfg.Processors,
		"frontier":           s.Frontier,
		"notified":           s.Notified,
		"frontier_lag":       tracker.FrontierLag(),
		"obligations":        tracker.TokenCount(),
		"pending_prepares":   s.PendingPrepares,
		"generation":         s.Generation,
		"crashes":            s.Crashes,
		"recoveries":         s.Recoveries,
		"quarantined":        s.Quarantined,
		"dead_letters":       s.TransportDeadLetters,
		"commits":            s.Commits,
		"update_msgs":        s.UpdateMsgs,
		"prepare_msgs":       s.PrepareMsgs,
		"ack_msgs":           s.AckMsgs,
		"input_msgs":         s.InputMsgs,
		"emits":              s.Emits,
		"coalesced":          s.Coalesced,
		"frames":             s.TransportSent,
		"payloads":           s.TransportPayloads,
		"payloads_per_frame": ratio(s.TransportPayloads, s.TransportSent-s.TransportResent),
		"acks_per_payload":   ratio(s.TransportAckFrames, s.TransportPayloads),
		"ingest_rate":        rate(s.InputMsgs, uptime),
		"commit_rate":        rate(s.Commits, uptime),
		"uptime":             uptime.String(),
	}
	ps := e.PlanStats()
	m["elastic"] = map[string]any{
		"plan_epoch":        ps.Epoch,
		"base_processors":   ps.BaseProcessors,
		"max_processors":    ps.MaxProcessors,
		"active_processors": activeCount(ps.Active),
		"overrides":         len(ps.Overrides),
		"migrations":        ps.Migrations,
		"migrated_vertices": ps.MigratedVertices,
		"aborts":            ps.Aborts,
	}
	if e.cfg.Delta != nil {
		m["delta"] = map[string]any{
			"merged":              s.DeltaMerged,
			"activations_skipped": s.DeltaSkipped,
			"applied":             s.DeltaApplied,
			"queue_depth":         s.DeltaQueueDepth,
			"threshold_boost":     e.DeltaBoost(),
		}
	}
	if sp, ok := e.cfg.Store.(storage.StatsProvider); ok {
		st := sp.StoreStats()
		m["store"] = map[string]any{
			"loops":              st.Loops,
			"live_versions":      st.LiveVersions,
			"resident_bytes":     st.ResidentBytes,
			"compactions":        st.Compactions,
			"reclaimed_versions": st.ReclaimedVersions,
			"pinned_snapshots":   st.PinnedSnapshots,
			"oldest_snapshot":    st.OldestSnapshotAge.String(),
		}
	}
	if e.cfg.Wire != nil {
		m["wire"] = map[string]any{
			"addr":              e.WireAddr(),
			"tx_frames":         s.WireTxFrames,
			"rx_frames":         s.WireRxFrames,
			"tx_bytes":          s.WireTxBytes,
			"rx_bytes":          s.WireRxBytes,
			"reconnects":        s.WireReconnects,
			"checksum_failures": s.WireChecksumFailures,
			"torn_frames":       s.WireTornFrames,
			"bytes_per_frame":   ratio(s.WireTxBytes, s.WireTxFrames),
		}
	}
	return m
}

// activeCount counts true entries of a PlanStats.Active slice.
func activeCount(active []bool) int {
	n := 0
	for _, a := range active {
		if a {
			n++
		}
	}
	return n
}

// ratio divides, returning 0 for an empty denominator.
func ratio(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func rate(n int64, over time.Duration) float64 {
	if sec := over.Seconds(); sec > 0 {
		return float64(n) / sec
	}
	return 0
}

// Trace returns the tracer's retained protocol events for one vertex of this
// loop, oldest first (nil without an attached hub). Sampled-out vertices
// yield nothing; Watch them first.
func (e *Engine) Trace(id stream.VertexID) []obs.Event {
	if e.tracer == nil {
		return nil
	}
	return e.tracer.Query(uint64(e.cfg.LoopID), uint64(id))
}

// Watch forces tracing of one vertex regardless of the sampling rate.
func (e *Engine) Watch(id stream.VertexID) {
	if e.tracer != nil {
		e.tracer.Watch(uint64(id))
	}
}

// Unwatch reverses Watch.
func (e *Engine) Unwatch(id stream.VertexID) {
	if e.tracer != nil {
		e.tracer.Unwatch(uint64(id))
	}
}

// partitionLag is the per-partition staleness watermark: the distance between
// the partition's newest committed iteration and the loop's terminated
// frontier. Zero for quarantined or not-yet-committed partitions.
func (e *Engine) partitionLag(proc int) int64 {
	e.genMu.RLock()
	inc := e.inc
	e.genMu.RUnlock()
	if proc >= len(inc.procs) || inc.procs[proc] == nil {
		return 0
	}
	lag := inc.procs[proc].maxCommit.Load() - inc.tracker.Notified()
	if lag < 0 {
		return 0
	}
	return lag
}

// branchTotals accumulates the counters branch loops contribute in aggregate.
type branchTotals struct {
	commits, updates, inputs, emits, coalesced int64
}

func (t *branchTotals) add(e *Engine) {
	t.commits += e.stats.Commits.Value()
	t.updates += e.stats.UpdateMsgs.Value()
	t.inputs += e.stats.InputMsgs.Value()
	t.emits += e.stats.Emits.Value()
	t.coalesced += e.stats.Coalesced.Value()
}

// branchObs pools branch-loop metric series into a fixed family set owned by
// the parent main loop. A fork's entire registration cost is one map insert
// under a mutex (and a delete on stop): no registry families are created or
// destroyed per query, which is what keeps the fork fast path flat — the
// observe-package benchmark and family-count guard pin this. Scrapes sum the
// live branches' hot-path atomics plus the retired accumulator.
type branchObs struct {
	forks metrics.Counter

	mu      sync.Mutex
	live    map[*Engine]struct{}
	retired branchTotals
}

func newBranchObs() *branchObs {
	return &branchObs{live: make(map[*Engine]struct{})}
}

// attach registers a live branch engine into the pool.
func (b *branchObs) attach(br *Engine) {
	if b == nil {
		return
	}
	b.forks.Inc()
	b.mu.Lock()
	b.live[br] = struct{}{}
	b.mu.Unlock()
}

// detach retires a stopping branch: its final counter values fold into the
// accumulator so aggregate totals never move backwards.
func (b *branchObs) detach(br *Engine) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if _, ok := b.live[br]; ok {
		delete(b.live, br)
		b.retired.add(br)
	}
	b.mu.Unlock()
}

// totals sums retired branches and a snapshot of the live ones.
func (b *branchObs) totals() branchTotals {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.retired
	for br := range b.live {
		t.add(br)
	}
	return t
}

// register creates the aggregate families once, on the owning main loop's
// scope. Values are read at scrape time.
func (b *branchObs) register(sc *obs.Scope) {
	sc.RegisterCounter("tornado_branch_forks_total",
		"Branch loops forked from this main loop.", &b.forks)
	sc.GaugeFunc("tornado_branch_loops_live",
		"Branch loops currently running.",
		func() float64 { b.mu.Lock(); n := len(b.live); b.mu.Unlock(); return float64(n) })
	sc.GaugeFunc("tornado_branch_commits_total",
		"Vertex commits across all branch loops, live and retired.",
		func() float64 { return float64(b.totals().commits) })
	sc.GaugeFunc("tornado_branch_update_msgs_total",
		"Update messages across all branch loops, live and retired.",
		func() float64 { return float64(b.totals().updates) })
	sc.GaugeFunc("tornado_branch_input_msgs_total",
		"Residual/seed inputs applied across all branch loops.",
		func() float64 { return float64(b.totals().inputs) })
	sc.GaugeFunc("tornado_branch_emits_total",
		"Program emissions across all branch loops.",
		func() float64 { return float64(b.totals().emits) })
	sc.GaugeFunc("tornado_branch_coalesced_updates_total",
		"Updates coalesced across all branch loops.",
		func() float64 { return float64(b.totals().coalesced) })
}
