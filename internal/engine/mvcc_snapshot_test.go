package engine

import (
	"math"
	"sync"
	"testing"
	"time"

	"tornado/internal/datasets"
	"tornado/internal/storage"
	"tornado/internal/stream"
)

// TestForkBranchExactSnapshotUnderCompaction is the tentpole's isolation
// guarantee end to end: a branch forked off an MVCC-backed main loop must
// keep reading its exact fork-time prefix while the parent keeps committing
// and the store is compacted aggressively — including direct Compact calls
// at keepFrom far above the fork iteration, which only the store-level pin
// clamp and the pinned handle can survive.
func TestForkBranchExactSnapshotUnderCompaction(t *testing.T) {
	store := storage.NewMVCCStore()
	defer store.Close()
	tuples := datasets.PowerLawGraph(250, 3, 17)
	e := newSSSPEngine(t, 3, 8, store, storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}

	// Capture the fork-time truth, then fork.
	want := make(map[stream.VertexID]int64)
	if err := e.ScanStates(math.MaxInt64, func(id stream.VertexID, _ int64, s any) error {
		want[id] = s.(*ssspState).Length
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	br, _, err := e.ForkBranch(7, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Stop()
	if err := br.WaitDone(waitFor); err != nil {
		t.Fatal(err)
	}

	// Evolve the parent past the fork (new edges shorten distances) while a
	// compactor hammers the store with floors far above the fork iteration.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := store.Compact(storage.MainLoop, math.MaxInt64/2); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	extra := datasets.PowerLawGraph(250, 2, 99)
	e.IngestAll(extra)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}

	// The branch must still read the exact fork-time snapshot: its own
	// converged commits overlay the pinned parent prefix, and neither the
	// parent's new versions nor the compactions may show through.
	got := make(map[stream.VertexID]int64)
	if err := br.ScanStates(math.MaxInt64, func(id stream.VertexID, _ int64, s any) error {
		got[id] = s.(*ssspState).Length
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	for v, w := range want {
		if g, ok := got[v]; !ok || g != w {
			t.Fatalf("vertex %d: branch reads %d (present=%v), fork-time value %d", v, g, ok, w)
		}
	}
	for v := range got {
		if _, ok := want[v]; !ok {
			t.Fatalf("vertex %d appeared in the branch but not in the fork-time snapshot", v)
		}
	}
}

// TestCrashRecoveryMVCCStore reruns supervised master-crash recovery on the
// MVCC backend: the rollback (Truncate), handle-pinned checkpoint bootstrap,
// and post-recovery commits must reach the exact fixed point, with an
// aggressive background compactor running the whole time.
func TestCrashRecoveryMVCCStore(t *testing.T) {
	store := storage.NewMVCCStore(storage.AutoCompact(time.Millisecond))
	defer store.Close()
	tuples := datasets.PowerLawGraph(200, 3, 31)
	e, err := New(Config{
		Processors:        3,
		DelayBound:        4,
		Kind:              MainLoop,
		LoopID:            storage.MainLoop,
		Store:             store,
		Program:           ssspProg{source: 0},
		Seed:              31,
		HeartbeatInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()

	half := len(tuples) / 2
	e.IngestAll(tuples[:half])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	e.CrashMaster()
	e.IngestAll(tuples[half:])
	if err := e.WaitSettled(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
	if s := e.StatsSnapshot(); s.Recoveries < 1 {
		t.Fatalf("Recoveries = %d, want >= 1", s.Recoveries)
	}
}

// TestForkPinsReleasedMVCC asserts the full fork lifecycle returns the
// store to zero pinned snapshots — the leak check behind the
// tornado_store_pinned_snapshots gauge.
func TestForkPinsReleasedMVCC(t *testing.T) {
	store := storage.NewMVCCStore()
	defer store.Close()
	e := newSSSPEngine(t, 2, 4, store, storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.IngestAll(datasets.PowerLawGraph(60, 2, 5))
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		br, _, err := e.ForkBranch(storage.LoopID(10+i), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := br.WaitDone(waitFor); err != nil {
			t.Fatal(err)
		}
		if st := store.StoreStats(); st.PinnedSnapshots < 1 {
			t.Fatalf("fork %d: no pinned snapshot while branch lives: %+v", i, st)
		}
		br.Stop()
	}
	if st := store.StoreStats(); st.PinnedSnapshots != 0 {
		t.Fatalf("pins leaked after all branches stopped: %+v", st)
	}
	if n := e.PinnedForks(); n != 0 {
		t.Fatalf("engine pins leaked: %d", n)
	}
}
