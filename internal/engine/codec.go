package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// GobCodec serializes vertex states with encoding/gob. Concrete state types
// must be registered with RegisterStateType (or gob.Register) before use.
// The zero value is ready to use.
type GobCodec struct{}

// Encode implements Codec.
func (GobCodec) Encode(state any) ([]byte, error) {
	var buf bytes.Buffer
	// Encode through an interface wrapper so Decode can recover the dynamic
	// type without the caller knowing it.
	holder := stateHolder{State: state}
	if err := gob.NewEncoder(&buf).Encode(&holder); err != nil {
		return nil, fmt.Errorf("engine: encode state: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode implements Codec.
func (GobCodec) Decode(data []byte) (any, error) {
	var holder stateHolder
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&holder); err != nil {
		return nil, fmt.Errorf("engine: decode state: %w", err)
	}
	return holder.State, nil
}

type stateHolder struct {
	State any
}

// RegisterStateType registers a concrete state type with gob so GobCodec can
// round-trip it. Call it from the algorithm package's init.
func RegisterStateType(v any) {
	gob.Register(v)
}
