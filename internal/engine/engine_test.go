package engine

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"tornado/internal/datasets"
	"tornado/internal/graph"
	"tornado/internal/storage"
	"tornado/internal/stream"
)

const (
	inf     = int64(1) << 40
	maxHops = 64
	waitFor = 30 * time.Second
)

// ssspState is the test vertex state: the paper's Appendix B program with a
// per-producer length map, a hop cap (so retractions terminate), and full
// recomputation at scatter so the fixed point is schedule-independent.
type ssspState struct {
	Length  int64
	Sent    int64
	SrcLens map[stream.VertexID]int64
}

type ssspProg struct {
	source stream.VertexID
}

func init() {
	RegisterStateType(&ssspState{})
}

func (p ssspProg) Init(ctx Context) {
	l := inf
	if ctx.ID() == p.source {
		l = 0
	}
	ctx.SetState(&ssspState{Length: l, Sent: inf, SrcLens: make(map[stream.VertexID]int64)})
}

func (p ssspProg) OnInput(Context, stream.Tuple) {}

func (p ssspProg) Gather(ctx Context, src stream.VertexID, _ int64, value any) {
	st := ctx.State().(*ssspState)
	st.SrcLens[src] = value.(int64)
}

func (p ssspProg) Scatter(ctx Context) {
	st := ctx.State().(*ssspState)
	l := inf
	if ctx.ID() == p.source {
		l = 0
	}
	for _, v := range st.SrcLens {
		if v+1 < l {
			l = v + 1
		}
	}
	if l > maxHops {
		l = inf
	}
	st.Length = l
	for _, t := range ctx.RemovedTargets() {
		ctx.Emit(t, inf) // tombstone: retracted producers contribute nothing
	}
	// Re-activations (branch seeds, recovery) must re-deliver the value.
	if l != st.Sent || ctx.Activated() {
		st.Sent = l
		for _, t := range ctx.Targets() {
			ctx.Emit(t, l)
		}
		return
	}
	if l < inf {
		for _, t := range ctx.AddedTargets() {
			ctx.Emit(t, l)
		}
	}
}

// refSSSP computes capped hop distances over the materialized tuple stream.
func refSSSP(tuples []stream.Tuple, source stream.VertexID) map[stream.VertexID]int64 {
	g := graph.New()
	g.ApplyAll(tuples)
	dist := make(map[stream.VertexID]int64, g.NumVertices())
	for _, v := range g.Vertices() {
		dist[v] = inf
	}
	if _, ok := dist[source]; !ok {
		dist[source] = inf
	}
	dist[source] = 0
	frontier := []stream.VertexID{source}
	for d := int64(1); len(frontier) > 0 && d <= maxHops; d++ {
		var next []stream.VertexID
		for _, u := range frontier {
			for _, w := range g.Out(u) {
				if dist[w] > d {
					dist[w] = d
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return dist
}

func newSSSPEngine(t *testing.T, procs int, bound int64, store storage.Store, loop storage.LoopID) *Engine {
	t.Helper()
	e, err := New(Config{
		Processors: procs,
		DelayBound: bound,
		Kind:       MainLoop,
		LoopID:     loop,
		Store:      store,
		Program:    ssspProg{source: 0},
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// checkSSSP compares every vertex's engine state to the reference.
func checkSSSP(t *testing.T, e *Engine, tuples []stream.Tuple) {
	t.Helper()
	want := refSSSP(tuples, 0)
	got := make(map[stream.VertexID]int64)
	err := e.ScanStates(math.MaxInt64, func(id stream.VertexID, _ int64, state any) error {
		got[id] = state.(*ssspState).Length
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, w := range want {
		g, ok := got[v]
		if !ok {
			// Vertices that never commit (untouched) default to their init
			// value; only the source starts at 0.
			if w == inf || (v == 0 && w == 0) {
				continue
			}
			t.Fatalf("vertex %d missing from engine results (want %d)", v, w)
		}
		if g != w {
			t.Fatalf("vertex %d: engine length %d, reference %d", v, g, w)
		}
	}
}

func TestSSSPMatrixMatchesReference(t *testing.T) {
	tuples := datasets.PowerLawGraph(120, 3, 7)
	for _, procs := range []int{1, 4} {
		for _, bound := range []int64{1, 4, 1 << 40} {
			name := fmt.Sprintf("procs=%d/B=%d", procs, bound)
			t.Run(name, func(t *testing.T) {
				e := newSSSPEngine(t, procs, bound, storage.NewMemStore(), storage.MainLoop)
				e.Start()
				defer e.Stop()
				e.IngestAll(tuples)
				if err := e.WaitQuiesce(waitFor); err != nil {
					t.Fatal(err)
				}
				checkSSSP(t, e, tuples)
			})
		}
	}
}

func TestSSSPIncrementalAndRemovals(t *testing.T) {
	base := datasets.PowerLawGraph(100, 3, 3)
	all := datasets.WithRemovals(base, 0.25, 5)
	half := len(all) / 2
	for _, bound := range []int64{1, 1 << 40} {
		t.Run(fmt.Sprintf("B=%d", bound), func(t *testing.T) {
			e := newSSSPEngine(t, 3, bound, storage.NewMemStore(), storage.MainLoop)
			e.Start()
			defer e.Stop()
			e.IngestAll(all[:half])
			if err := e.WaitQuiesce(waitFor); err != nil {
				t.Fatal(err)
			}
			checkSSSP(t, e, all[:half])
			e.IngestAll(all[half:])
			if err := e.WaitQuiesce(waitFor); err != nil {
				t.Fatal(err)
			}
			checkSSSP(t, e, all)
		})
	}
}

func TestEdgeRemovalRaisesDistance(t *testing.T) {
	// 0 -> 1 -> 2 and a long detour 0 -> 3 -> 4 -> 2. Removing 1 -> 2 must
	// raise vertex 2's distance from 2 to 3.
	edges := []stream.Tuple{
		stream.AddEdge(1, 0, 1), stream.AddEdge(2, 1, 2),
		stream.AddEdge(3, 0, 3), stream.AddEdge(4, 3, 4), stream.AddEdge(5, 4, 2),
	}
	e := newSSSPEngine(t, 2, 8, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.IngestAll(edges)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	st, _, err := e.ReadState(2, math.MaxInt64)
	if err != nil || st.(*ssspState).Length != 2 {
		t.Fatalf("before removal: dist(2) = %v, %v; want 2", st, err)
	}
	e.Ingest(stream.RemoveEdge(6, 1, 2))
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	st, _, err = e.ReadState(2, math.MaxInt64)
	if err != nil || st.(*ssspState).Length != 3 {
		t.Fatalf("after removal: dist(2) = %v, %v; want 3", st, err)
	}
}

func TestSynchronousLoopSendsNoPrepares(t *testing.T) {
	tuples := datasets.PowerLawGraph(80, 3, 11)
	e := newSSSPEngine(t, 4, 1, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	s := e.StatsSnapshot()
	if s.PrepareMsgs != 0 {
		t.Fatalf("B=1 sent %d PREPARE messages; synchronous execution must send none (Table 2)", s.PrepareMsgs)
	}
	if s.Commits == 0 || s.UpdateMsgs == 0 {
		t.Fatalf("loop did no work: %+v", s)
	}
}

func TestAsynchronousLoopUsesPrepares(t *testing.T) {
	tuples := datasets.PowerLawGraph(80, 3, 11)
	e := newSSSPEngine(t, 4, 1<<40, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	s := e.StatsSnapshot()
	if s.PrepareMsgs == 0 {
		t.Fatal("unbounded loop sent no PREPARE messages; expected consumer-driven iteration assignment")
	}
}

func TestSyncNeedsFewerIterationsThanAsync(t *testing.T) {
	tuples := datasets.PowerLawGraph(150, 3, 13)
	iters := func(bound int64) int64 {
		e := newSSSPEngine(t, 4, bound, storage.NewMemStore(), storage.MainLoop)
		e.Start()
		defer e.Stop()
		e.IngestAll(tuples)
		if err := e.WaitQuiesce(waitFor); err != nil {
			t.Fatal(err)
		}
		return e.Notified()
	}
	sync := iters(1)
	async := iters(1 << 40)
	if sync >= async {
		t.Fatalf("sync used %d iterations, async %d; the paper's Table 2 shape (sync needs fewest) is violated", sync, async)
	}
}

func TestBranchForkAfterQuiesce(t *testing.T) {
	tuples := datasets.PowerLawGraph(100, 3, 17)
	half := len(tuples) / 2
	store := storage.NewMemStore()
	e := newSSSPEngine(t, 3, 16, store, storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples[:half])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	br, spec, err := e.ForkBranch(storage.LoopID(1), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Stop()
	if err := br.WaitDone(waitFor); err != nil {
		t.Fatal(err)
	}
	if len(spec.Residual) != 0 {
		t.Fatalf("quiesced fork has %d residual inputs; want 0", len(spec.Residual))
	}
	checkSSSP(t, br, tuples[:half])
	// The main loop keeps working independently afterwards.
	e.IngestAll(tuples[half:])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
}

func TestBranchForkWhileRunningIsExact(t *testing.T) {
	// Fork mid-flight: everything ingested before Fork must be reflected in
	// the branch's fixed point (snapshot + seeds + residual replay).
	tuples := datasets.PowerLawGraph(100, 3, 19)
	cut := 2 * len(tuples) / 3
	e := newSSSPEngine(t, 3, 64, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples[:cut])
	// No quiesce: fork immediately while the cascade runs.
	br, _, err := e.ForkBranch(storage.LoopID(2), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Stop()
	if err := br.WaitDone(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, br, tuples[:cut])
	// Ingesting after the fork must not perturb the branch's results.
	e.IngestAll(tuples[cut:])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, br, tuples[:cut])
	checkSSSP(t, e, tuples)
}

func TestConcurrentBranches(t *testing.T) {
	tuples := datasets.PowerLawGraph(80, 3, 23)
	e := newSSSPEngine(t, 2, 32, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	var branches []*Engine
	for i := 1; i <= 3; i++ {
		br, _, err := e.ForkBranch(storage.LoopID(i), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		branches = append(branches, br)
	}
	for _, br := range branches {
		if err := br.WaitDone(waitFor); err != nil {
			t.Fatal(err)
		}
		checkSSSP(t, br, tuples)
		br.Stop()
	}
}

func TestMasterPauseStallsSyncLoop(t *testing.T) {
	// A long path graph makes the cascade last many iterations.
	var tuples []stream.Tuple
	for i := 0; i < 400; i++ {
		tuples = append(tuples, stream.AddEdge(stream.Timestamp(i+1), stream.VertexID(i), stream.VertexID(i+1)))
	}
	e := newSSSPEngine(t, 2, 1, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples)
	time.Sleep(20 * time.Millisecond)
	e.PauseMaster()
	// Let the in-flight work settle: wait until the commit counter has been
	// stable for a while (fixed sleeps flake under -race scheduling).
	deadline := time.Now().Add(5 * time.Second)
	before := e.StatsSnapshot().Commits
	stableSince := time.Now()
	for time.Since(stableSince) < 150*time.Millisecond {
		if time.Now().After(deadline) {
			t.Fatal("commits never settled after master pause")
		}
		time.Sleep(5 * time.Millisecond)
		if cur := e.StatsSnapshot().Commits; cur != before {
			before, stableSince = cur, time.Now()
		}
	}
	after := e.StatsSnapshot().Commits
	if after != before {
		t.Fatalf("synchronous loop kept committing (%d -> %d) with the master dead", before, after)
	}
	e.ResumeMaster()
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
}

func TestMasterPauseDoesNotStallUnboundedLoop(t *testing.T) {
	var tuples []stream.Tuple
	for i := 0; i < 400; i++ {
		tuples = append(tuples, stream.AddEdge(stream.Timestamp(i+1), stream.VertexID(i), stream.VertexID(i+1)))
	}
	e := newSSSPEngine(t, 2, 1<<40, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.PauseMaster() // dead from the start: termination detection never runs
	e.IngestAll(tuples)
	deadline := time.Now().Add(waitFor)
	// The full cascade must complete purely on consumer-driven iteration
	// numbers: one commit per path vertex at least.
	for e.StatsSnapshot().Commits < 401 {
		if time.Now().After(deadline) {
			t.Fatalf("unbounded loop stalled with dead master after %d commits", e.StatsSnapshot().Commits)
		}
		time.Sleep(time.Millisecond)
	}
	e.ResumeMaster()
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
}

func TestProcessorPauseStallsAndResumes(t *testing.T) {
	tuples := datasets.PowerLawGraph(100, 3, 29)
	e := newSSSPEngine(t, 4, 16, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.PauseProcessor(2)
	e.IngestAll(tuples)
	if err := e.WaitQuiesce(300 * time.Millisecond); err == nil {
		t.Fatal("loop quiesced with a dead processor owning a quarter of the vertices")
	}
	e.ResumeProcessor(2)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
}

func TestRecoveryFromCheckpoint(t *testing.T) {
	tuples := datasets.PowerLawGraph(100, 3, 31)
	half := len(tuples) / 2
	store := storage.NewMemStore()
	e := newSSSPEngine(t, 3, 8, store, storage.MainLoop)
	e.Start()
	e.IngestAll(tuples[:half])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	e.Stop() // simulated crash after the checkpoint
	ckpt, err := store.LastCheckpoint(storage.MainLoop)
	if err != nil {
		t.Fatal(err)
	}

	r, err := New(Config{
		Processors: 3,
		DelayBound: 8,
		Kind:       MainLoop,
		LoopID:     storage.LoopID(9),
		Store:      store,
		Program:    ssspProg{source: 0},
		Snapshot:   &SnapshotSource{Loop: storage.MainLoop, UpTo: ckpt},
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Stop()
	release := r.HoldQuiesce()
	if err := r.ActivateStored(); err != nil {
		t.Fatal(err)
	}
	release()
	if err := r.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, r, tuples[:half])
	// The recovered loop continues with the rest of the stream.
	r.IngestAll(tuples[half:])
	if err := r.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, r, tuples)
}

func TestAtLeastOnceTransportStillConverges(t *testing.T) {
	tuples := datasets.PowerLawGraph(60, 3, 37)
	e, err := New(Config{
		Processors:  3,
		DelayBound:  16,
		Kind:        MainLoop,
		LoopID:      storage.MainLoop,
		Store:       storage.NewMemStore(),
		Program:     ssspProg{source: 0},
		ResendAfter: 5 * time.Millisecond,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
}

func TestMaxIterationsHaltsLoop(t *testing.T) {
	// A two-vertex cycle with a program that always re-emits runs forever;
	// MaxIterations must stop it.
	e, err := New(Config{
		Processors:    1,
		DelayBound:    4,
		Kind:          MainLoop,
		LoopID:        storage.MainLoop,
		Store:         storage.NewMemStore(),
		Program:       chatterProg{},
		MaxIterations: 50,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	e.Ingest(stream.AddEdge(1, 0, 1))
	e.Ingest(stream.AddEdge(2, 1, 0))
	if err := e.WaitDone(waitFor); err != nil {
		t.Fatal(err)
	}
}

func TestConvergePredicateHaltsLoop(t *testing.T) {
	stopAt := int64(20)
	e, err := New(Config{
		Processors: 2,
		DelayBound: 4,
		Kind:       MainLoop,
		LoopID:     storage.MainLoop,
		Store:      storage.NewMemStore(),
		Program:    chatterProg{},
		Converge:   func(iter, _ int64, _ float64) bool { return iter >= stopAt },
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	e.Ingest(stream.AddEdge(1, 0, 1))
	e.Ingest(stream.AddEdge(2, 1, 0))
	if err := e.WaitDone(waitFor); err != nil {
		t.Fatal(err)
	}
	log := e.IterationLog()
	if len(log) == 0 {
		t.Fatal("no iteration records")
	}
}

// chatterProg re-emits forever: used to exercise halting.
type chatterProg struct{}

type chatterState struct{ N int64 }

func init() { RegisterStateType(&chatterState{}) }

func (chatterProg) Init(ctx Context) { ctx.SetState(&chatterState{}) }

func (chatterProg) OnInput(Context, stream.Tuple) {}

func (chatterProg) Gather(ctx Context, _ stream.VertexID, _ int64, _ any) {
	ctx.State().(*chatterState).N++
}

func (chatterProg) Scatter(ctx Context) {
	st := ctx.State().(*chatterState)
	for _, t := range ctx.Targets() {
		ctx.Emit(t, st.N)
	}
}

func TestIterationLogMonotone(t *testing.T) {
	tuples := datasets.PowerLawGraph(60, 3, 41)
	e := newSSSPEngine(t, 2, 4, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples)
	if err := e.WaitSettled(waitFor); err != nil {
		t.Fatal(err)
	}
	// The tracker settles before the master finishes appending the final
	// records; wait for the log to catch up with the frontier.
	deadline := time.Now().Add(waitFor)
	var log []IterationRecord
	for {
		log = e.IterationLog()
		if len(log) > 0 && log[len(log)-1].Iteration == e.Notified() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("iteration log never caught up: %d records, notified %d", len(log), e.Notified())
		}
		time.Sleep(time.Millisecond)
	}
	var commits int64
	for i := 1; i < len(log); i++ {
		if log[i].Iteration != log[i-1].Iteration+1 {
			t.Fatalf("iteration records not contiguous: %d then %d", log[i-1].Iteration, log[i].Iteration)
		}
		if log[i].At < log[i-1].At {
			t.Fatal("iteration termination times not monotone")
		}
	}
	for _, r := range log {
		commits += r.Commits
	}
	if got := e.StatsSnapshot().Commits; commits != got {
		t.Fatalf("sum of per-iteration commits %d != total commits %d", commits, got)
	}
}

func TestConfigValidation(t *testing.T) {
	store := storage.NewMemStore()
	cases := []Config{
		{Processors: 0, DelayBound: 1, Store: store, Program: ssspProg{}},
		{Processors: 1, DelayBound: 0, Store: store, Program: ssspProg{}},
		{Processors: 1, DelayBound: 1, Program: ssspProg{}},
		{Processors: 1, DelayBound: 1, Store: store},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should have been rejected", i)
		}
	}
}

func TestGobCodecRoundTrip(t *testing.T) {
	c := GobCodec{}
	blob := vertexBlob{
		State:   &ssspState{Length: 7, Sent: 7, SrcLens: map[stream.VertexID]int64{3: 6}},
		Targets: []stream.VertexID{1, 2, 3},
	}
	data, err := c.Encode(blob)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.(vertexBlob)
	if !ok {
		t.Fatalf("decoded %T", out)
	}
	st := got.State.(*ssspState)
	if st.Length != 7 || st.SrcLens[3] != 6 || len(got.Targets) != 3 {
		t.Fatalf("round trip mangled blob: %+v", got)
	}
}

func TestGobCodecRejectsGarbage(t *testing.T) {
	c := GobCodec{}
	if _, err := c.Decode([]byte("not gob")); err == nil {
		t.Fatal("Decode of garbage should error")
	}
}

func TestTrackerAdvanceAndQuiesce(t *testing.T) {
	tr := NewTracker(0)
	if !tr.Quiesced() {
		t.Fatal("fresh tracker should be quiescent")
	}
	a := tr.AcquireFloor(0)
	b := tr.AcquireFloor(5)
	if a != 0 || b != 5 {
		t.Fatalf("placements = %d, %d; want 0, 5", a, b)
	}
	tr.Release(0)
	from, to, quiesced, ok := tr.Advance()
	if !ok || from != 0 || to != 4 || quiesced {
		t.Fatalf("Advance = (%d, %d, %v, %v); want (0, 4, false, true)", from, to, quiesced, ok)
	}
	if tr.Notified() != 4 {
		t.Fatalf("Notified = %d; want 4", tr.Notified())
	}
	// Floor now prevents placements below 5.
	if got := tr.AcquireFloor(2); got != 5 {
		t.Fatalf("AcquireFloor(2) after notify 4 = %d; want 5", got)
	}
	tr.Release(5)
	tr.Release(5)
	from, to, quiesced, ok = tr.Advance()
	if !ok || !quiesced || to != 5 || from != 5 {
		t.Fatalf("Advance = (%d, %d, %v, %v); want (5, 5, true, true)", from, to, quiesced, ok)
	}
}

func TestTrackerReleaseWithoutAcquirePanics(t *testing.T) {
	tr := NewTracker(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire should panic")
		}
	}()
	tr.Release(3)
}

func TestTrackerCommitStats(t *testing.T) {
	tr := NewTracker(0)
	tr.AcquireFloor(2)
	tr.RecordCommit(2, 1.5)
	tr.RecordCommit(2, 2.5)
	c, p := tr.IterStats(2)
	if c != 2 || p != 4.0 {
		t.Fatalf("IterStats = (%d, %v); want (2, 4.0)", c, p)
	}
	tr.DropStatsThrough(2)
	if c, _ := tr.IterStats(2); c != 0 {
		t.Fatal("DropStatsThrough did not drop")
	}
	tr.Release(2)
}

func TestTrackerCloseUnblocksAdvance(t *testing.T) {
	tr := NewTracker(0)
	tr.AcquireFloor(0)
	// Consume the initial quiesce report is not applicable (token held);
	// Advance would block forever without Close.
	done := make(chan bool)
	go func() {
		_, _, _, ok := tr.Advance()
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	tr.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Advance after Close returned ok")
		}
	case <-time.After(time.Second):
		t.Fatal("Advance did not unblock on Close")
	}
}

func TestJournalLifecycle(t *testing.T) {
	j := newInputJournal()
	t1 := stream.AddEdge(1, 1, 2)
	t2 := stream.AddEdge(2, 3, 4)
	t3 := stream.AddEdge(3, 5, 6)
	s1 := j.Ingested(t1)
	s2 := j.Ingested(t2)
	j.Ingested(t3) // stays in flight

	j.Applied(s1, 1)
	j.Applied(s2, 3)
	j.Committed(1, 10) // t1 reflected at iteration 10

	// Fork at 5: t1 committed later than 5, t2 applied-uncommitted, t3 in
	// flight -> all three are residual, in ingest order.
	res := j.Residual(5)
	if len(res) != 3 || res[0] != t1 || res[1] != t2 || res[2] != t3 {
		t.Fatalf("Residual(5) = %+v", res)
	}
	// Fork at 10: t1 is reflected.
	res = j.Residual(10)
	if len(res) != 2 || res[0] != t2 || res[1] != t3 {
		t.Fatalf("Residual(10) = %+v", res)
	}
	j.Prune(10)
	res = j.Residual(10)
	if len(res) != 2 {
		t.Fatalf("after Prune Residual(10) = %+v", res)
	}
	un, com := j.Size()
	if un != 2 || com != 0 {
		t.Fatalf("Size = (%d, %d); want (2, 0)", un, com)
	}
}

func TestReadStateNotFound(t *testing.T) {
	e := newSSSPEngine(t, 1, 1, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	defer e.Stop()
	if _, _, err := e.ReadState(99, math.MaxInt64); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("ReadState of unknown vertex: %v; want ErrNotFound", err)
	}
}

func TestDiskBackedEngine(t *testing.T) {
	dir := t.TempDir()
	store, err := storage.OpenDisk(dir + "/log")
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	tuples := datasets.PowerLawGraph(60, 3, 43)
	e := newSSSPEngine(t, 2, 8, store, storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
	if _, err := store.LastCheckpoint(storage.MainLoop); err != nil {
		t.Fatalf("disk engine produced no checkpoint: %v", err)
	}
}
