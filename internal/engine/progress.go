package engine

import (
	"fmt"
	"sync"
)

// Tracker implements iteration termination detection (Section 4.3).
//
// Every pending obligation of the loop holds a token at the lowest iteration
// whose termination it must block:
//
//   - an external input accepted by the ingester holds a token at the
//     current frontier until the destination vertex applies it;
//   - a dirty vertex (one that gathered something and will commit) holds a
//     token at the lower bound of its future commit iteration;
//   - an in-flight committed update stamped i holds a token at i+1 (its
//     consequences — the consumer's gather and subsequent commit — happen at
//     iterations > i).
//
// Obligations acquire their consequence tokens before releasing their cause
// tokens, so the frontier (the smallest iteration holding a token) can never
// advance past hidden work: when no tokens at or below k remain, iteration k
// has terminated exactly in the paper's sense — all preceding iterations
// have terminated and every vertex has proceeded beyond it. When no tokens
// remain at all the loop is quiescent, which for a branch loop (whose input
// is frozen) means convergence.
//
// AcquireFloor places tokens at max(requested, lastTerminated+1), never
// inside an already-announced iteration, keeping terminated iterations
// immutable (they are checkpoints and fork points).
type Tracker struct {
	mu   sync.Mutex
	cond *sync.Cond

	counts          map[int64]int64 // active tokens per iteration
	notified        int64           // highest iteration announced terminated
	maxSeen         int64           // highest iteration that ever held a token
	closed          bool
	quiesceReported bool // quiescence already surfaced to the master

	commits  map[int64]int64   // vertex updates committed per iteration
	progress map[int64]float64 // user progress aggregate per iteration
}

// NewTracker returns a tracker whose first live iteration is base (pass 0
// for a fresh loop; a resumed loop passes its last terminated iteration + 1
// so new commits stamp above its history).
func NewTracker(base int64) *Tracker {
	t := &Tracker{
		counts:   make(map[int64]int64),
		notified: base - 1,
		maxSeen:  base - 1,
		commits:  make(map[int64]int64),
		progress: make(map[int64]float64),
	}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// AcquireFloor places one token at max(iter, lastTerminated+1) and returns
// the placement.
func (t *Tracker) AcquireFloor(iter int64) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if iter <= t.notified {
		iter = t.notified + 1
	}
	t.quiesceReported = false
	t.counts[iter]++
	if iter > t.maxSeen {
		t.maxSeen = iter
	}
	return iter
}

// Release removes one token at iter. Releasing a token that was never
// acquired is an accounting bug and panics.
func (t *Tracker) Release(iter int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.counts[iter]
	if !ok || n <= 0 {
		panic(fmt.Sprintf("engine: token release at iteration %d without acquire", iter))
	}
	if n == 1 {
		delete(t.counts, iter)
		t.cond.Broadcast() // the frontier may have moved
	} else {
		t.counts[iter] = n - 1
	}
}

// RecordCommit accumulates one committed vertex update (and its progress
// contribution) into iteration iter's statistics. It must be called while
// the committing vertex still holds a token at or below iter, which the
// processor guarantees by recording before releasing.
func (t *Tracker) RecordCommit(iter int64, progress float64) {
	t.mu.Lock()
	t.commits[iter]++
	t.progress[iter] += progress
	t.mu.Unlock()
}

// Notified returns the highest iteration announced terminated (-1 if none).
func (t *Tracker) Notified() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.notified
}

// Quiesced reports whether no obligations remain anywhere in the loop.
func (t *Tracker) Quiesced() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.counts) == 0
}

// Settled reports whether the loop is quiescent AND the master has announced
// every iteration that ever held a token — i.e. the frontier has fully
// caught up with the computation. Fork call sites that want a minimal seed
// set wait for this, not just for quiescence.
func (t *Tracker) Settled() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.counts) == 0 && t.notified >= t.maxSeen
}

// IterStats returns the commit count and progress aggregate of iteration k.
func (t *Tracker) IterStats(k int64) (commits int64, progress float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.commits[k], t.progress[k]
}

// DropStatsThrough forgets per-iteration statistics up to and including k
// (the master prunes after consuming them).
func (t *Tracker) DropStatsThrough(k int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.commits {
		if i <= k {
			delete(t.commits, i)
		}
	}
	for i := range t.progress {
		if i <= k {
			delete(t.progress, i)
		}
	}
}

// Advance is the master's blocking call: it waits until at least one new
// iteration can be terminated (or the loop quiesces with unterminated
// iterations outstanding, or Close is called), marks those iterations
// terminated, and returns the inclusive range [from, to] plus whether the
// loop is quiescent. ok is false when the tracker was closed with nothing
// left to announce.
func (t *Tracker) Advance() (from, to int64, quiesced, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		upTo, quiet := t.pollLocked()
		if upTo > t.notified {
			from = t.notified + 1
			t.notified = upTo
			if quiet {
				t.quiesceReported = true
			}
			return from, upTo, quiet, true
		}
		if t.closed {
			return 0, 0, quiet, false
		}
		if quiet && !t.quiesceReported {
			// Quiescence with nothing new to announce is surfaced exactly
			// once so the master can evaluate convergence without spinning.
			t.quiesceReported = true
			return t.notified + 1, t.notified, true, true
		}
		t.cond.Wait()
	}
}

// pollLocked returns the largest terminable iteration and quiescence.
func (t *Tracker) pollLocked() (int64, bool) {
	if len(t.counts) == 0 {
		return t.maxSeen, true
	}
	min := int64(1<<63 - 1)
	for k := range t.counts {
		if k < min {
			min = k
		}
	}
	return min - 1, false
}

// Frontier returns the smallest iteration currently holding a token, or
// lastTerminated+1 when quiescent.
func (t *Tracker) Frontier() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	upTo, quiet := t.pollLocked()
	if quiet {
		return t.notified + 1
	}
	return upTo + 1
}

// TokenCount returns the total number of outstanding obligation tokens:
// in-flight inputs, dirty vertices, and committed-but-ungathered updates.
// It is an observability gauge (zero exactly when Quiesced).
func (t *Tracker) TokenCount() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, c := range t.counts {
		n += c
	}
	return n
}

// FrontierLag returns how many iterations the frontier trails the highest
// iteration that ever held a token (0 when fully settled). Under bounded
// asynchrony the lag cannot exceed the delay bound B; watching it against B
// is how the bound is tuned.
func (t *Tracker) FrontierLag() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	upTo, quiet := t.pollLocked()
	frontier := upTo + 1
	if quiet {
		frontier = t.notified + 1
	}
	lag := t.maxSeen - frontier + 1
	if lag < 0 {
		lag = 0
	}
	return lag
}

// Close unblocks Advance.
func (t *Tracker) Close() {
	t.mu.Lock()
	t.closed = true
	t.cond.Broadcast()
	t.mu.Unlock()
}
