//go:build race

package engine

// raceStretch widens wire-soak failure-detection windows when the race
// detector is on: instrumentation multiplies the CPU cost of serializing
// every frame, and on a small box that stretches replay storms and GC
// pauses past windows that comfortably hold in normal builds. Deployments
// tune detection to transport latency; tests must tune it to the build.
const raceStretch = 3
