package engine

// Supervised crash recovery (Section 5.3).
//
// The paper's recovery protocol falls out of termination detection for free:
// every terminated iteration was flushed before it was announced, so the
// store always holds a consistent checkpoint at the last terminated
// iteration, and "the computation will restart from the last terminated
// iteration" after a failure. This file supplies the machinery around that
// guarantee:
//
//   - true crash semantics (CrashProcessor / CrashMaster): the target's
//     endpoint is torn down and its goroutine exits, discarding all
//     in-memory vertex state, in-flight frames and unreleased tokens —
//     unlike PauseProcessor, which merely models a partition;
//   - a supervisor goroutine per incarnation that watches heartbeats from
//     every processor and the master, declares a node dead after
//     SuspectAfter missed beats, and restarts the loop from the checkpoint;
//   - exponential backoff with jitter between successive restarts, and
//     quarantine of processors that crash more than MaxRestarts times in
//     RestartWindow (their partition is remapped onto the survivors);
//   - a deterministic fault-plan API for chaos tests (crash processor i at
//     iteration k, crash the master, crash in the middle of a branch fork).
//
// Because obligation tokens are anonymous (the tracker counts them per
// iteration, it does not know who holds them), a single processor cannot be
// restarted in place: the tokens that died with it can never be released, so
// the old tracker's frontier is pinned forever. Recovery therefore replaces
// the whole incarnation — network, tracker, processors — and recomputes from
// the checkpoint, which is exactly the paper's loop-granularity restart.

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"tornado/internal/obs/trace"
	"tornado/internal/storage"
	"tornado/internal/stream"
	"tornado/internal/transport"
)

// Recovery event kinds recorded in the engine's recovery log.
const (
	EventCrash      = "crash"      // a crash was injected (API or fault plan)
	EventSuspect    = "suspect"    // the supervisor declared a node dead
	EventRecovery   = "recovery"   // a checkpoint restart completed
	EventQuarantine = "quarantine" // a flapping processor left the rotation
)

// RecoveryEvent is one entry of the engine's recovery log.
type RecoveryEvent struct {
	Time time.Time
	// Kind is one of the Event* constants.
	Kind string
	// Proc is the processor index the event refers to (-1 = master, -2 =
	// the loop as a whole).
	Proc int
	// Gen is the incarnation generation the event refers to.
	Gen int
	// Resume is the checkpoint iteration a recovery restarted from
	// (recovery events only).
	Resume int64
	Detail string
}

func (e *Engine) recordEvent(ev RecoveryEvent) {
	ev.Time = time.Now()
	e.recMu.Lock()
	e.recoveryLog = append(e.recoveryLog, ev)
	e.recMu.Unlock()
}

// RecoveryLog returns a copy of the recovery event log (crashes, suspicions,
// restarts, quarantines) in chronological order.
func (e *Engine) RecoveryLog() []RecoveryEvent {
	e.recMu.Lock()
	defer e.recMu.Unlock()
	out := make([]RecoveryEvent, len(e.recoveryLog))
	copy(out, e.recoveryLog)
	return out
}

// CrashProcessor crashes processor i with true crash semantics: its endpoint
// is torn down (in-flight frames, dedup state and unsent acks are gone), its
// goroutine exits, and every in-memory vertex state and unreleased token it
// held is lost. Without a supervisor the loop is stuck afterwards — tokens
// that died with the processor pin the frontier — until
// RecoverFromCheckpoint is called. Idempotent; a no-op for quarantined or
// out-of-range indexes.
func (e *Engine) CrashProcessor(i int) {
	e.genMu.RLock()
	inc := e.inc
	var p *processor
	if i >= 0 && i < len(inc.procs) {
		p = inc.procs[i]
	}
	e.genMu.RUnlock()
	if p == nil || p.ep.Crashed() {
		return
	}
	p.ep.Crash()
	p.setPaused(false) // a paused goroutine must wake to observe the crash
	e.crashes.Inc()
	e.recordEvent(RecoveryEvent{Kind: EventCrash, Proc: i, Gen: inc.gen})
}

// CrashMaster crashes the master with true crash semantics: its endpoint is
// torn down and the master goroutine exits, so termination notifications
// stop and no further checkpoints are taken. Idempotent.
func (e *Engine) CrashMaster() {
	e.genMu.RLock()
	inc := e.inc
	e.genMu.RUnlock()
	if inc.masterCrashed.Swap(true) {
		return
	}
	inc.masterE.Crash()
	e.masterPaused.Store(false)
	e.crashes.Inc()
	e.recordEvent(RecoveryEvent{Kind: EventCrash, Proc: -1, Gen: inc.gen})
}

// RecoverFromCheckpoint manually restarts the loop from the last terminated
// iteration's checkpoint (the unsupervised counterpart of the supervisor's
// automatic recovery). It returns false when there is nothing to do: the
// engine is stopped, or a concurrent recovery already replaced the
// incarnation.
func (e *Engine) RecoverFromCheckpoint() bool {
	return e.doRecover(e.cur(), time.Now(), nil, false, "manual")
}

// heartbeatRun sends liveness beats for one node (proc >= 0, or -1 for the
// master) to the supervisor endpoint. A crashed endpoint silently drops the
// sends, which is precisely how the supervisor learns of the crash. Note a
// paused node still beats: a pause models a partition of the data plane, not
// a process death.
func (e *Engine) heartbeatRun(inc *incarnation, proc int, ep *transport.Endpoint) {
	defer inc.wg.Done()
	sup := e.supNode()
	t := time.NewTicker(e.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-inc.stop:
			return
		case <-t.C:
			// SendNow bypasses the batch buffer: a beat delayed behind a
			// filling data frame would look like a missed heartbeat.
			ep.SendNow(sup, msgHeartbeat{Proc: proc})
		}
	}
}

// superviseRun is the failure detector of one incarnation. It drains
// heartbeats from the supervisor endpoint, declares any node silent for more
// than SuspectAfter intervals dead, backs off exponentially on repeated
// restarts, and triggers the checkpoint recovery. It exits after one
// recovery attempt — the next incarnation starts its own supervisor.
func (e *Engine) superviseRun(inc *incarnation) {
	defer e.supWG.Done()
	// Detection only starts once the incarnation is fully bootstrapped: the
	// residual replay of a recovery can monopolize the CPU for longer than
	// the suspect window, and judging heartbeats during it livelocks
	// recovery on its own false suspicions.
	select {
	case <-inc.stop:
		return
	case <-inc.ready:
	}
	hb := e.cfg.HeartbeatInterval
	suspect := time.Duration(e.cfg.SuspectAfter)*hb + hb/2
	rng := rand.New(rand.NewSource(e.cfg.Seed ^ int64(inc.gen)<<21 ^ 0x7ee1))
	start := time.Now()
	last := make([]time.Time, len(inc.procs))
	for i := range last {
		last[i] = start
	}
	masterLast := start
	prevTick := start
	tick := time.NewTicker(hb)
	defer tick.Stop()
	for {
		select {
		case <-inc.stop:
			return
		case <-tick.C:
		}
		for {
			env, ok := inc.supE.TryRecv()
			if !ok {
				break
			}
			if m, ok := env.Payload.(msgHeartbeat); ok {
				if m.Proc < 0 {
					masterLast = time.Now()
				} else if m.Proc < len(last) {
					last[m.Proc] = time.Now()
				}
			}
		}
		now := time.Now()
		// Starvation guard: when the detector itself missed a whole suspect
		// window (GC pause, CPU saturation), sender silence over that gap
		// proves nothing — the heartbeat goroutines were likely starved by
		// the same cause. Re-baseline and keep watching; a real crash stays
		// silent and is caught on the next smooth window.
		if now.Sub(prevTick) > suspect {
			for i := range last {
				last[i] = now
			}
			masterLast = now
			prevTick = now
			continue
		}
		prevTick = now
		var dead []int
		for i, p := range inc.procs {
			if p == nil {
				continue
			}
			if now.Sub(last[i]) > suspect {
				dead = append(dead, i)
			}
		}
		deadMaster := now.Sub(masterLast) > suspect
		if len(dead) == 0 && !deadMaster {
			continue
		}
		for _, i := range dead {
			e.recordEvent(RecoveryEvent{Kind: EventSuspect, Proc: i, Gen: inc.gen,
				Detail: fmt.Sprintf("no heartbeat for %v", now.Sub(last[i]).Round(time.Millisecond))})
		}
		if deadMaster {
			e.recordEvent(RecoveryEvent{Kind: EventSuspect, Proc: -1, Gen: inc.gen,
				Detail: fmt.Sprintf("no heartbeat for %v", now.Sub(masterLast).Round(time.Millisecond))})
		}
		if d := e.restartDelay(rng); d > 0 {
			select {
			case <-inc.stop:
				return
			case <-time.After(d):
			}
		}
		e.doRecover(inc, now, dead, deadMaster, "heartbeat timeout")
		return
	}
}

// restartDelay computes the exponential backoff before the next restart:
// zero for a first failure, then RestartBackoff doubled per restart observed
// within RestartWindow (capped at 64x) plus up to 25% jitter.
func (e *Engine) restartDelay(rng *rand.Rand) time.Duration {
	e.genMu.RLock()
	cutoff := time.Now().Add(-e.cfg.RestartWindow)
	n := 0
	for _, ts := range e.restartLog {
		for _, t := range ts {
			if t.After(cutoff) {
				n++
			}
		}
	}
	base := e.cfg.RestartBackoff
	e.genMu.RUnlock()
	if n == 0 || base <= 0 {
		return 0
	}
	if n > 6 {
		n = 6
	}
	d := base << uint(n)
	return d + time.Duration(rng.Int63n(int64(d)/4+1))
}

// doRecover is the checkpoint restart (Section 5.3): it tears down the
// incarnation `from` wholesale, rolls the store back to the last terminated
// iteration, and builds and starts the next incarnation resuming above it.
// It returns false when the engine is stopped or `from` is no longer
// current (a concurrent recovery won). deadProcs feeds the quarantine
// bookkeeping; detected is when the failure was noticed (for the MTTR
// histogram).
func (e *Engine) doRecover(from *incarnation, detected time.Time, deadProcs []int, deadMaster bool, reason string) bool {
	e.genMu.Lock()
	if e.stopped || e.inc != from {
		e.genMu.Unlock()
		return false
	}
	old := e.inc

	// Tear the old incarnation down wholesale. Closing the tracker unblocks
	// the master's Advance; aborting the network crashes every endpoint so
	// processor Recv loops exit; unpausing wakes goroutines parked in the
	// pause condition. The wait cannot deadlock: none of these goroutines
	// ever takes the generation lock (processors captured their tracker,
	// route and snapshot at construction).
	old.stopNow()
	old.tracker.Close()
	old.net.Abort()
	for _, p := range old.procs {
		if p != nil {
			p.setPaused(false)
		}
	}
	e.masterPaused.Store(false)
	old.wg.Wait()

	// Every in-flight input of the dead incarnation is now either applied
	// (its credit already released) or discarded with the incarnation.
	// Discard the admission ledger to match: the journal replay below
	// re-acquires for everything the checkpoint does not cover. Between the
	// reset and the replay the bound is briefly soft — stragglers that
	// released before the reset cannot double-count, Release clamps at zero.
	if e.ingestGate != nil {
		e.ingestGate.Reset()
	}

	// The last terminated iteration is the checkpoint: everything at or
	// below it was flushed before it was announced. Read it only after the
	// old master has exited — a closing tracker can hand the master one
	// final advance, and reading earlier would race its flush and journal
	// prune, losing the inputs committed in between.
	resume := old.tracker.Notified()

	// Quarantine bookkeeping: a processor that crashed more than MaxRestarts
	// times within RestartWindow leaves the rotation, and the route remaps
	// its partition onto the survivors. At least one processor always stays.
	now := time.Now()
	cutoff := now.Add(-e.cfg.RestartWindow)
	var quarantinedNow []int
	for _, i := range deadProcs {
		log := e.restartLog[i][:0]
		for _, t := range e.restartLog[i] {
			if t.After(cutoff) {
				log = append(log, t)
			}
		}
		log = append(log, now)
		e.restartLog[i] = log
		if e.cfg.MaxRestarts > 0 && len(log) > e.cfg.MaxRestarts &&
			len(e.quarantined) < e.cfg.MaxProcessors-1 {
			if _, q := e.quarantined[i]; !q {
				e.quarantined[i] = struct{}{}
				quarantinedNow = append(quarantinedNow, i)
			}
		}
	}
	if deadMaster {
		e.restartLog[-1] = append(e.restartLog[-1], now)
	}

	// Extract the inputs whose effects the checkpoint does not cover; the
	// new incarnation re-ingests them. Then roll the store back: versions
	// above the checkpoint are incomplete work of unterminated iterations
	// and must not shadow the recomputed state.
	var residual []stream.Tuple
	if e.journal != nil {
		residual = e.journal.RecoverResidual(resume)
	}
	if err := e.cfg.Store.Truncate(e.cfg.LoopID, resume); err != nil {
		panic(fmt.Sprintf("engine: roll store back for recovery: %v", err))
	}
	e.pendingPrepares.Store(0)

	// The new incarnation bootstraps every vertex from the checkpoint and
	// commits strictly above it, so recovered versions supersede the old.
	// On snapshotting backends the recovered view is a pinned handle taken
	// right after the rollback (reads stay bounded by resume, so post-crash
	// commits landing in the live tree are never shadowed and never leak
	// in); the handle the engine read through before — a fork's, or a
	// previous recovery's — is released, idempotently.
	e.cfg.Snapshot.release()
	e.cfg.Snapshot = &SnapshotSource{Loop: e.cfg.LoopID, UpTo: resume}
	if sn, ok := e.cfg.Store.(storage.Snapshotter); ok {
		e.cfg.Snapshot.Handle = sn.Snapshot(e.cfg.LoopID)
	}
	e.cfg.StartIteration = resume + 1
	ninc := e.buildIncarnation(old.gen + 1)
	// Hold a quiescence guard across the handoff: the new tracker is born
	// empty, so without it a concurrent WaitQuiesce could succeed in the
	// instant before the checkpoint re-activation lands.
	guard := ninc.tracker.AcquireFloor(0)
	e.inc = ninc
	e.genMu.Unlock()

	e.startIncarnation(ninc)
	// Re-activate everything at or below the checkpoint and replay the
	// residual inputs: any work lost in the crash is recomputed.
	if err := e.ActivateStored(); err != nil {
		panic(fmt.Sprintf("engine: re-activate checkpoint state: %v", err))
	}
	e.IngestAll(residual)
	// Count the recovery before dropping the quiescence guard: once the
	// guard is gone a WaitQuiesce may succeed, and an observer reading the
	// stats right after must already see this restart.
	e.recoveries.Inc()
	if e.mttrHist != nil {
		e.mttrHist.Observe(time.Since(detected).Seconds())
	}
	// A recovered incarnation is exactly the window tail sampling wants
	// traced: mark the event and force-retain the aftermath.
	e.spans.Escalate(trace.MarkRecovery, trace.Context{}, e.spans.Now())
	ninc.tracker.Release(guard)
	ninc.markReady()
	for _, i := range quarantinedNow {
		e.recordEvent(RecoveryEvent{Kind: EventQuarantine, Proc: i, Gen: ninc.gen,
			Detail: fmt.Sprintf("crashed >%d times in %v; partition reassigned", e.cfg.MaxRestarts, e.cfg.RestartWindow)})
	}
	e.recordEvent(RecoveryEvent{Kind: EventRecovery, Proc: -2, Gen: ninc.gen, Resume: resume,
		Detail: fmt.Sprintf("%s; replayed %d inputs", reason, len(residual))})
	return true
}

// Quarantined returns the indexes of quarantined processors in ascending
// order.
func (e *Engine) Quarantined() []int {
	e.genMu.RLock()
	defer e.genMu.RUnlock()
	out := make([]int, 0, len(e.quarantined))
	for i := range e.quarantined {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// FaultKind selects what a planned fault does.
type FaultKind int

const (
	// FaultCrashProcessor crashes processor Proc.
	FaultCrashProcessor FaultKind = iota
	// FaultCrashMaster crashes the master.
	FaultCrashMaster
	// FaultSlowProcessor injects Delay of latency into every commit of
	// processor Proc (the slow-consumer fault; Delay 0 clears it). The
	// slowdown survives recoveries — a restarted processor stays slow.
	FaultSlowProcessor
	// FaultWirePartition hard-partitions the socket substrate (no-op
	// without Config.Wire): outbound frames vanish for Delay, then the
	// partition heals (Delay 0 = until healed manually). Resend ledgers
	// replay the backlog exactly once past the ack watermark.
	FaultWirePartition
	// FaultWireCorrupt flips one byte in each outbound wire frame with
	// probability Rate (default 0.02) for Delay, then heals (Delay 0 =
	// until healed manually). Every corruption is caught by the frame CRC
	// and drops its connection; nothing corrupt is ever delivered.
	FaultWireCorrupt
	// FaultCrashDuringMigration arms a crash of processor Proc that fires in
	// the middle of the next live migration: after the coordinator freezes
	// the moving range, before the cutover. The migration must abort to the
	// pre-epoch plan and the supervised recovery restore exactness.
	FaultCrashDuringMigration
)

// Fault is one entry of a deterministic chaos schedule.
type Fault struct {
	Kind FaultKind
	// Proc is the target processor (FaultCrashProcessor and
	// FaultSlowProcessor).
	Proc int
	// Delay is the injected per-commit latency (FaultSlowProcessor) or the
	// fault window before auto-heal (wire faults).
	Delay time.Duration
	// Rate is the per-frame corruption probability (FaultWireCorrupt only;
	// 0 means the 0.02 default).
	Rate float64
	// AtIteration fires the fault once the terminated frontier reaches this
	// iteration (ignored when OnFork is set).
	AtIteration int64
	// OnFork fires the fault in the middle of the next ForkBranch instead:
	// after the fork spec is captured, before the branch engine exists.
	OnFork bool
}

// FaultPlan is a deterministic chaos schedule: crash processor i at
// iteration k, crash the master, crash mid-branch-fork. Faults fire at most
// once, in the order their conditions are met.
type FaultPlan struct {
	Faults []Fault
}

// InjectFaultPlan arms a chaos schedule. Iteration-triggered faults fire
// from a watcher polling the terminated frontier; OnFork faults fire inside
// the next ForkBranch call. Plans accumulate.
func (e *Engine) InjectFaultPlan(plan FaultPlan) {
	if len(plan.Faults) == 0 {
		return
	}
	e.faultMu.Lock()
	e.pendingFaults = append(e.pendingFaults, plan.Faults...)
	startWatcher := !e.watcherOn
	if startWatcher {
		e.watcherOn = true
	}
	e.faultMu.Unlock()
	if startWatcher {
		e.supWG.Add(1)
		go e.faultWatcherRun()
	}
}

func (e *Engine) applyFault(f Fault) {
	switch f.Kind {
	case FaultCrashProcessor:
		e.CrashProcessor(f.Proc)
	case FaultCrashMaster:
		e.CrashMaster()
	case FaultSlowProcessor:
		e.SlowProcessor(f.Proc, f.Delay)
	case FaultCrashDuringMigration:
		e.migCrashArm.Store(int64(f.Proc) + 1)
	case FaultWirePartition:
		e.SetWirePartition(true)
		if f.Delay > 0 {
			time.AfterFunc(f.Delay, func() { e.SetWirePartition(false) })
		}
	case FaultWireCorrupt:
		rate := f.Rate
		if rate <= 0 {
			rate = 0.02
		}
		e.SetWireCorrupt(rate)
		if f.Delay > 0 {
			time.AfterFunc(f.Delay, func() { e.SetWireCorrupt(0) })
		}
	}
}

// faultWatcherRun fires iteration-triggered faults as the terminated
// frontier passes them and exits once none remain (OnFork faults are left
// for ForkBranch).
func (e *Engine) faultWatcherRun() {
	defer e.supWG.Done()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for range tick.C {
		e.genMu.RLock()
		stopped := e.stopped
		notified := e.inc.tracker.Notified()
		e.genMu.RUnlock()
		if stopped {
			e.faultMu.Lock()
			e.watcherOn = false
			e.faultMu.Unlock()
			return
		}
		var fire []Fault
		pendingForks := 0
		e.faultMu.Lock()
		rest := e.pendingFaults[:0]
		for _, f := range e.pendingFaults {
			switch {
			case f.OnFork:
				rest = append(rest, f)
				pendingForks++
			case notified >= f.AtIteration:
				fire = append(fire, f)
			default:
				rest = append(rest, f)
			}
		}
		e.pendingFaults = rest
		e.faultMu.Unlock()
		for _, f := range fire {
			e.applyFault(f)
		}
		e.faultMu.Lock()
		if len(e.pendingFaults) == pendingForks {
			// Only OnFork faults (or nothing) left: ForkBranch handles those.
			e.watcherOn = false
			e.faultMu.Unlock()
			return
		}
		e.faultMu.Unlock()
	}
}

// fireForkFaults fires all armed OnFork faults; ForkBranch calls it between
// capturing the fork spec and building the branch engine.
func (e *Engine) fireForkFaults() {
	e.faultMu.Lock()
	var fire []Fault
	rest := e.pendingFaults[:0]
	for _, f := range e.pendingFaults {
		if f.OnFork {
			fire = append(fire, f)
		} else {
			rest = append(rest, f)
		}
	}
	e.pendingFaults = rest
	e.faultMu.Unlock()
	for _, f := range fire {
		e.applyFault(f)
	}
}
