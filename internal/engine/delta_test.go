package engine

import (
	"math"
	"testing"
	"time"

	"tornado/internal/datasets"
	"tornado/internal/delta"
	"tornado/internal/storage"
	"tornado/internal/stream"
)

// dssspState / dssspProg: a delta-accumulative SSSP for engine-internal
// tests (which cannot import internal/algorithms), mirroring
// algorithms.DeltaSSSP: per-producer cumulative lengths, locally synthesized
// newest-wins pendings, full recomputation at Update.
type dssspState struct {
	Length  int64
	Sent    int64
	SrcLens map[stream.VertexID]int64
	Seq     uint64
}

type dssspDelta struct {
	Seq uint64
	Len int64
}

type dssspProg struct {
	source stream.VertexID
}

func init() {
	RegisterStateType(&dssspState{})
	RegisterStateType(dssspDelta{})
	RegisterStateType(&dsumState{})
}

func (dssspProg) Identity() any { return dssspDelta{} }

func (dssspProg) Accumulate(a, b any) any {
	x, y := a.(dssspDelta), b.(dssspDelta)
	if x.Seq > y.Seq || (x.Seq == y.Seq && x.Len < y.Len) {
		return x
	}
	return y
}

func (dssspProg) Priority(ctx delta.Context, pending any) float64 {
	st := ctx.State().(*dssspState)
	return math.Abs(float64(pending.(dssspDelta).Len - st.Length))
}

func (dssspProg) Threshold() float64 { return 0.5 }

func (p dssspProg) Init(ctx delta.Context) {
	l := inf
	if ctx.ID() == p.source {
		l = 0
	}
	ctx.SetState(&dssspState{Length: l, Sent: inf, SrcLens: make(map[stream.VertexID]int64)})
}

func (dssspProg) OnInput(delta.Context, stream.Tuple) {}

func (p dssspProg) recompute(ctx delta.Context, st *dssspState) int64 {
	l := inf
	if ctx.ID() == p.source {
		l = 0
	}
	for _, v := range st.SrcLens {
		if v+1 < l {
			l = v + 1
		}
	}
	if l > maxHops {
		l = inf
	}
	return l
}

func (p dssspProg) Gather(ctx delta.Context, src stream.VertexID, value any, _ bool) (any, bool) {
	st := ctx.State().(*dssspState)
	st.SrcLens[src] = value.(int64)
	l := p.recompute(ctx, st)
	if l == st.Length {
		return nil, false
	}
	st.Seq++
	return dssspDelta{Seq: st.Seq, Len: l}, true
}

func (p dssspProg) Update(ctx delta.Context, _ any) {
	st := ctx.State().(*dssspState)
	l := p.recompute(ctx, st)
	if l != st.Length {
		ctx.ReportProgress(1)
	}
	st.Length = l
	for _, t := range ctx.RemovedTargets() {
		ctx.EmitCum(t, inf)
	}
	if l != st.Sent || ctx.Activated() {
		st.Sent = l
		for _, t := range ctx.Targets() {
			ctx.EmitCum(t, l)
		}
		return
	}
	if l < inf {
		for _, t := range ctx.AddedTargets() {
			ctx.EmitCum(t, l)
		}
	}
}

// checkDSSSP asserts a delta-mode loop sits at the exact reference fixed
// point (the delta twin of checkSSSP).
func checkDSSSP(t *testing.T, e *Engine, tuples []stream.Tuple) {
	t.Helper()
	want := refSSSP(tuples, 0)
	got := make(map[stream.VertexID]int64)
	err := e.ScanStates(math.MaxInt64, func(id stream.VertexID, _ int64, state any) error {
		got[id] = state.(*dssspState).Length
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, w := range want {
		g, ok := got[v]
		if !ok {
			if w == inf || (v == 0 && w == 0) {
				continue
			}
			t.Fatalf("vertex %d missing from engine results (want %d)", v, w)
		}
		if g != w {
			t.Fatalf("vertex %d: engine length %d, reference %d", v, g, w)
		}
	}
}

// TestDeltaChaosSoakRecovery is the delta-mode twin of TestChaosSoakRecovery:
// the same crash schedule (a planned processor crash, a direct one, then the
// master) over a lossy, duplicating transport, with the pending-delta table
// riding in every checkpoint. Convergence to the exact reference fixed point
// proves checkpointed (state, pending) pairs survive incarnation restarts
// with no delta lost or double-applied. Skipped with -short.
func TestDeltaChaosSoakRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	tuples := datasets.WithRemovals(datasets.PowerLawGraph(600, 3, 77), 0.1, 7)
	e, err := New(Config{
		Processors:        5,
		DelayBound:        16,
		Kind:              MainLoop,
		LoopID:            storage.MainLoop,
		Store:             storage.NewMemStore(),
		Delta:             dssspProg{source: 0},
		ResendAfter:       5 * time.Millisecond,
		Seed:              77,
		HeartbeatInterval: heartbeatFor(nil),
		SuspectAfter:      suspectAfterFor(nil),
		RestartBackoff:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.InjectTransportFaults(0.02, 0.02)
	e.InjectFaultPlan(FaultPlan{Faults: []Fault{
		{Kind: FaultCrashProcessor, Proc: 1, AtIteration: 1},
	}})
	e.Start()
	defer e.Stop()

	waves := 4
	per := len(tuples) / waves
	for w := 0; w < waves; w++ {
		lo, hi := w*per, (w+1)*per
		if w == waves-1 {
			hi = len(tuples)
		}
		e.IngestAll(tuples[lo:hi])
		switch w {
		case 1:
			waitUntil(t, soakWait(nil), func() bool { return e.StatsSnapshot().Recoveries >= 1 },
				"planned crash of processor 1 never recovered")
			e.CrashProcessor(3)
		case 2:
			waitUntil(t, soakWait(nil), func() bool { return e.StatsSnapshot().Recoveries >= 2 },
				"crash of processor 3 never recovered")
			e.CrashMaster()
		}
	}
	if err := e.WaitSettled(soakWait(nil)); err != nil {
		s := e.StatsSnapshot()
		t.Fatalf("%v (gen=%d crashes=%d recoveries=%d frontier=%d notified=%d log tail: %+v)",
			err, s.Generation, s.Crashes, s.Recoveries, s.Frontier, s.Notified, tail(e.RecoveryLog(), 6))
	}
	checkDSSSP(t, e, tuples)
	s := e.StatsSnapshot()
	if s.Crashes < 3 || s.Recoveries < 3 {
		t.Fatalf("Crashes = %d, Recoveries = %d, want >= 3 each (log: %+v)",
			s.Crashes, s.Recoveries, e.RecoveryLog())
	}
	if s.DeltaQueueDepth != 0 {
		t.Fatalf("DeltaQueueDepth = %d after settling, want 0", s.DeltaQueueDepth)
	}
}

// TestDeltaBranchForkAndAdopt forks a branch off a delta-mode main loop
// (branch seeding activates every vertex, which must consume any restored
// pending), checks it against the reference, merges it back (handleAdopt
// must invalidate stale in-memory pendings), and keeps streaming.
func TestDeltaBranchForkAndAdopt(t *testing.T) {
	tuples := datasets.WithRemovals(datasets.PowerLawGraph(200, 3, 31), 0.15, 9)
	e, err := New(Config{
		Processors: 4,
		DelayBound: 16,
		Kind:       MainLoop,
		LoopID:     storage.MainLoop,
		Store:      storage.NewMemStore(),
		Delta:      dssspProg{source: 0},
		Seed:       31,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	half := len(tuples) / 2
	e.IngestAll(tuples[:half])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	br, _, err := e.ForkBranch(storage.LoopID(100), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := br.WaitDone(waitFor); err != nil {
		t.Fatal(err)
	}
	checkDSSSP(t, br, tuples[:half])
	if err := e.AdoptBranch(br); err != nil {
		t.Fatal(err)
	}
	br.Stop()
	checkDSSSP(t, e, tuples[:half])
	e.IngestAll(tuples[half:])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkDSSSP(t, e, tuples)
}

// dsumState / dsumProg is the minimal additive delta program used by the
// coalescing probe: pendings are float64 increments summed by Accumulate.
type dsumState struct {
	Total float64
}

type dsumProg struct{}

func (dsumProg) Identity() any                       { return 0.0 }
func (dsumProg) Accumulate(a, b any) any             { return a.(float64) + b.(float64) }
func (dsumProg) Threshold() float64                  { return 0.5 }
func (dsumProg) Init(ctx delta.Context)              { ctx.SetState(&dsumState{}) }
func (dsumProg) OnInput(delta.Context, stream.Tuple) {}
func (dsumProg) Priority(_ delta.Context, pending any) float64 {
	return math.Abs(pending.(float64))
}
func (dsumProg) Gather(_ delta.Context, _ stream.VertexID, value any, _ bool) (any, bool) {
	return value, true
}
func (dsumProg) Update(ctx delta.Context, pending any) {
	ctx.State().(*dsumState).Total += pending.(float64)
}

// TestDeltaCoalesceAccumulates drives the out-queue directly in delta mode:
// in-flight same-pair deltas must merge through the program's accumulator
// (not last-writer), a newer cumulative value must supersede outright, and a
// delta folding into a pending cumulative value must keep the cum flag.
func TestDeltaCoalesceAccumulates(t *testing.T) {
	e, err := New(Config{
		Processors: 1,
		DelayBound: 8,
		Kind:       MainLoop,
		LoopID:     storage.MainLoop,
		Store:      storage.NewMemStore(),
		Delta:      dsumProg{},
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Stop)
	p := e.proc(0)
	if p == nil || !p.batch {
		t.Fatalf("batched dispatch not enabled by default (proc=%v)", p)
	}

	// Two plain deltas accumulate: 5 + 3 = 8.
	tok1 := p.tk.AcquireFloor(1)
	p.sendVertex(2, msgUpdate{From: 1, To: 2, Iteration: 1, Token: tok1, Value: 5.0, HasValue: true})
	tok2 := p.tk.AcquireFloor(2)
	p.sendVertex(2, msgUpdate{From: 1, To: 2, Iteration: 2, Token: tok2, Value: 3.0, HasValue: true})
	if len(p.outQ) != 1 {
		t.Fatalf("outQ has %d entries after same-pair deltas; want 1", len(p.outQ))
	}
	m := p.outQ[0].payload.(msgUpdate)
	if m.Iteration != 2 || !m.HasValue || m.Cum || m.Value.(float64) != 8.0 {
		t.Fatalf("merged delta = %+v; want iteration 2, accumulated value 8, cum=false", m)
	}
	if n := p.tk.TokenCount(); n != 1 {
		t.Fatalf("TokenCount = %d after coalescing; want 1 (superseded token released)", n)
	}

	// A newer cumulative value supersedes the accumulated deltas outright.
	tok3 := p.tk.AcquireFloor(3)
	p.sendVertex(2, msgUpdate{From: 1, To: 2, Iteration: 3, Token: tok3, Value: 7.0, HasValue: true, Cum: true})
	m = p.outQ[0].payload.(msgUpdate)
	if len(p.outQ) != 1 || m.Iteration != 3 || !m.Cum || m.Value.(float64) != 7.0 {
		t.Fatalf("cum supersede = %+v (outQ len %d); want iteration 3, value 7, cum=true", m, len(p.outQ))
	}

	// A plain delta folds INTO the pending cumulative value, keeping cum.
	tok4 := p.tk.AcquireFloor(4)
	p.sendVertex(2, msgUpdate{From: 1, To: 2, Iteration: 4, Token: tok4, Value: 2.0, HasValue: true})
	m = p.outQ[0].payload.(msgUpdate)
	if len(p.outQ) != 1 || m.Iteration != 4 || !m.Cum || m.Value.(float64) != 9.0 {
		t.Fatalf("delta-into-cum = %+v (outQ len %d); want iteration 4, value 9, cum=true", m, len(p.outQ))
	}
	if c := e.stats.Coalesced.Value(); c != 3 {
		t.Fatalf("Coalesced = %d; want 3", c)
	}
}
