package engine

import (
	"strings"
	"testing"

	"tornado/internal/datasets"
	"tornado/internal/obs"
	"tornado/internal/storage"
)

// countFamilies parses a Prometheus exposition and counts distinct metric
// families (one "# TYPE" line each).
func countFamilies(t *testing.T, hub *obs.Hub) (int, string) {
	t.Helper()
	var b strings.Builder
	if err := hub.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	return strings.Count(out, "# TYPE "), out
}

// TestForkRegistersNoNewFamilies is the guard for the pooled branch-loop
// accounting: forking a branch must not create (and stopping it must not
// destroy) a single registry family — a fork's observability cost is one map
// insert into the parent's branchObs pool. Branch activity must still be
// visible in aggregate through the fixed tornado_branch_* families.
func TestForkRegistersNoNewFamilies(t *testing.T) {
	hub := obs.NewHub(obs.HubOptions{})
	e, err := New(Config{
		Processors: 2,
		DelayBound: 8,
		Kind:       MainLoop,
		LoopID:     storage.MainLoop,
		Store:      storage.NewMemStore(),
		Program:    ssspProg{source: 0},
		Seed:       7,
		Obs:        hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	e.IngestAll(datasets.PowerLawGraph(60, 3, 11))
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}

	before, _ := countFamilies(t, hub)
	if before == 0 {
		t.Fatal("main loop registered no families; scrape is broken")
	}

	// Seed each branch with fresh edges so it has real work to converge (a
	// fork of a quiesced loop with no residual commits nothing), keeping the
	// aggregate families observably non-zero.
	const forks = 3
	branches := make([]*Engine, 0, forks)
	for i := 1; i <= forks; i++ {
		br, _, err := e.ForkBranch(storage.LoopID(i), nil, func(br *Engine) {
			br.IngestAll(ringTuples(8))
		})
		if err != nil {
			t.Fatal(err)
		}
		branches = append(branches, br)
	}
	for _, br := range branches {
		if err := br.WaitDone(waitFor); err != nil {
			t.Fatal(err)
		}
	}

	during, out := countFamilies(t, hub)
	if during != before {
		t.Fatalf("live branches changed the family count: %d -> %d\n%s", before, during, out)
	}
	if !strings.Contains(out, "tornado_branch_forks_total") {
		t.Fatalf("aggregate branch families missing from exposition:\n%s", out)
	}

	// The pool sees every fork, live, and the work they did.
	if got := e.branchObs.forks.Value(); got != forks {
		t.Fatalf("branchObs.forks = %d; want %d", got, forks)
	}
	e.branchObs.mu.Lock()
	liveN := len(e.branchObs.live)
	e.branchObs.mu.Unlock()
	if liveN != forks {
		t.Fatalf("branchObs.live = %d; want %d", liveN, forks)
	}
	liveTotals := e.branchObs.totals()
	if liveTotals.commits == 0 {
		t.Fatal("converged branches contributed no commits to the aggregate")
	}

	// Stopping branches folds their counters into the retired accumulator:
	// totals never move backwards, families never disappear.
	for _, br := range branches {
		br.Stop()
	}
	after, out := countFamilies(t, hub)
	if after != before {
		t.Fatalf("stopping branches changed the family count: %d -> %d\n%s", before, after, out)
	}
	retiredTotals := e.branchObs.totals()
	if retiredTotals.commits < liveTotals.commits {
		t.Fatalf("aggregate commits moved backwards on branch stop: %d -> %d",
			liveTotals.commits, retiredTotals.commits)
	}
	e.branchObs.mu.Lock()
	liveN = len(e.branchObs.live)
	e.branchObs.mu.Unlock()
	if liveN != 0 {
		t.Fatalf("branchObs.live = %d after stops; want 0", liveN)
	}
}

// benchFork runs the fork/converge/stop cycle the query fast path pays.
func benchFork(b *testing.B, hub *obs.Hub) {
	cfg := Config{
		Processors: 2,
		DelayBound: 8,
		Kind:       MainLoop,
		LoopID:     storage.MainLoop,
		Store:      storage.NewMemStore(),
		Program:    ssspProg{source: 0},
		Seed:       7,
		Obs:        hub,
	}
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	e.IngestAll(datasets.PowerLawGraph(60, 3, 11))
	if err := e.WaitQuiesce(waitFor); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br, _, err := e.ForkBranch(storage.LoopID(i+1), nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := br.WaitDone(waitFor); err != nil {
			b.Fatal(err)
		}
		br.Stop()
	}
}

// BenchmarkForkBranch / BenchmarkForkBranchWithHub pin the PR-1 wart fix:
// with a hub attached a fork pays only the shared protocol tracer plus one
// pool insert — not the per-fork collector registration that used to ~2x the
// fork/converge/close cycle. Compare the two to see the residual hub cost.
func BenchmarkForkBranch(b *testing.B)        { benchFork(b, nil) }
func BenchmarkForkBranchWithHub(b *testing.B) { benchFork(b, obs.NewHub(obs.HubOptions{})) }
