// Package engine implements Tornado's iteration model: the session layer of
// the paper's processors (Section 5.1) running the bounded asynchronous
// iteration model of Section 4.
//
// Components (vertices) are partitioned across processor goroutines and
// communicate only by message passing. Every vertex update is assigned an
// iteration number derived from the iteration numbers of its consumers via
// the three-phase Update/Prepare/Commit protocol (Figure 3 of the paper),
// with Lamport clocks ordering concurrent preparations so that deadlock and
// starvation are impossible even while the dependency graph evolves.
//
// Iteration termination is detected with a conservative token frontier: every
// pending obligation (an in-flight update, an unapplied input, a dirty
// vertex) holds a token at the lowest iteration it could still affect; an
// iteration terminates when no tokens at or below it remain. Terminated
// iterations are checkpoints: all of their versions are in the store before
// the master announces them. Delays are bounded by B: updates committed at
// the cap iteration (lastTerminated + B) are held back by receivers until
// the frontier advances, which with B = 1 degenerates to synchronous BSP
// execution (Section 2.3).
package engine

import (
	"math/rand"

	"tornado/internal/stream"
)

// LoopKind distinguishes the main loop from branch loops (Section 3.3).
type LoopKind uint8

const (
	// MainLoop continuously gathers inputs and maintains the approximation.
	MainLoop LoopKind = iota
	// BranchLoop is forked from the main loop and iterates to convergence
	// over a frozen snapshot of the input.
	BranchLoop
)

// String returns the loop kind's name.
func (k LoopKind) String() string {
	if k == MainLoop {
		return "main"
	}
	return "branch"
}

// Context is the engine-provided view a vertex program uses to inspect and
// affect its vertex. A Context is only valid for the duration of the program
// callback it is passed to.
type Context interface {
	// ID returns the vertex's identifier.
	ID() stream.VertexID

	// Iteration returns the vertex's current iteration number τ(x).
	Iteration() int64

	// Loop reports whether the vertex runs in the main loop or a branch.
	Loop() LoopKind

	// State returns the vertex's application state (nil before Init sets it).
	State() any

	// SetState replaces the vertex's application state.
	SetState(s any)

	// Emit sends a value to a target vertex. Valid only inside Scatter; the
	// target must be a current target or one removed since the last commit
	// (so programs can send tombstone values to retracted edges, as the
	// paper's SSSP does).
	Emit(to stream.VertexID, value any)

	// AddTarget adds a dependency edge from this vertex to `to` (this vertex
	// becomes a producer of `to`). Valid inside Init, OnInput and Gather.
	AddTarget(to stream.VertexID)

	// RemoveTarget retracts the dependency edge to `to`. Valid inside Init,
	// OnInput and Gather.
	RemoveTarget(to stream.VertexID)

	// Targets returns the current targets in ascending order.
	Targets() []stream.VertexID

	// AddedTargets returns targets added since the last commit, ascending.
	AddedTargets() []stream.VertexID

	// RemovedTargets returns targets removed since the last commit,
	// ascending. They may still be Emitted to during the next Scatter.
	RemovedTargets() []stream.VertexID

	// ReportProgress accumulates v into the progress aggregate of the
	// iteration this update commits in. The master hands per-iteration
	// aggregates to the convergence predicate.
	ReportProgress(v float64)

	// Activated reports, during Scatter, whether this commit was triggered
	// by an explicit re-activation (branch seeding, recovery). Programs
	// that suppress redundant emissions MUST re-emit their current values
	// when activated: the activation exists precisely because a consumer
	// may never have received them.
	Activated() bool

	// Rand returns a deterministic per-vertex random source.
	Rand() *rand.Rand
}

// Program defines the behavior of every vertex, mirroring the paper's
// graph-parallel model (Appendix B): init / gather / scatter plus explicit
// dependency maintenance. One Program instance serves all vertices; per-
// vertex data lives in the Context state.
type Program interface {
	// Init is called once when the vertex is created (first message routed
	// to it). It should SetState.
	Init(ctx Context)

	// OnInput delivers an external stream tuple routed to this vertex
	// (KindValue / KindRetractValue; edge tuples are applied by the engine
	// itself through AddTarget/RemoveTarget before OnInput is invoked with
	// them for observation).
	OnInput(ctx Context, tuple stream.Tuple)

	// Gather delivers a committed update from producer src, stamped with the
	// producer's commit iteration.
	Gather(ctx Context, src stream.VertexID, iteration int64, value any)

	// Scatter is called when the vertex commits; it may Emit values to
	// targets. A vertex that Emits nothing and receives nothing afterwards
	// quiesces, which is how loops converge.
	Scatter(ctx Context)
}

// Combiner is an optional Program extension enabling update coalescing:
// when two updates from the same producer to the same consumer are pending
// in one flush window, the engine merges them into a single message whose
// value is Combine(to, old, new) at the newer update's iteration.
//
// Programs that do not implement Combiner get last-writer coalescing (the
// older value is simply dropped). That default is safe for exactly the
// programs the engine already supports: per-producer monotonic discard
// (Section 5.3) means a consumer may observe only the newest of a producer's
// consecutive updates anyway — retransmission reordering drops the older one
// as stale — so coalescing merely realizes an already-permitted schedule.
// Implement Combiner only to preserve information across the merge (e.g. an
// accumulative program summing deltas would return old + new).
type Combiner interface {
	Combine(to stream.VertexID, old, new any) any
}

// Codec serializes vertex states for the versioned store and checkpoints.
type Codec interface {
	Encode(state any) ([]byte, error)
	Decode(data []byte) (any, error)
}
