package engine

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tornado/internal/delta"
	"tornado/internal/flow"
	"tornado/internal/lamport"
	"tornado/internal/metrics"
	"tornado/internal/obs"
	"tornado/internal/obs/trace"
	"tornado/internal/storage"
	"tornado/internal/stream"
	"tornado/internal/transport"
)

// SnapshotSource tells a new engine to bootstrap vertices from the versions
// of another loop (branch forking, Section 5.2, and checkpoint recovery,
// Section 5.3).
type SnapshotSource struct {
	Loop storage.LoopID
	UpTo int64
	// Handle, when non-nil, is a pinned point-in-time view of Loop captured
	// at fork/recovery time (storage.Snapshotter backends): snapshot reads
	// go through it instead of the live store, so no concurrent compaction,
	// truncation, or drop of the source loop can narrow what this engine
	// sees. Reads stay bounded by UpTo either way. The engine that owns the
	// source releases it on Stop.
	Handle storage.Snapshot
}

// latest reads the freshest snapshot version of vertex <= maxIter: through
// the pinned handle when present, else from the live store (whose Pin clamp
// is then the only thing standing between the read and a compaction).
func (s *SnapshotSource) latest(st storage.Store, vertex stream.VertexID, maxIter int64) ([]byte, int64, error) {
	if s.Handle != nil {
		return s.Handle.Latest(vertex, maxIter)
	}
	return st.Latest(s.Loop, vertex, maxIter)
}

// scan visits the freshest snapshot version <= maxIter of every vertex.
func (s *SnapshotSource) scan(st storage.Store, maxIter int64, fn func(storage.Record) error) error {
	if s.Handle != nil {
		return s.Handle.Scan(maxIter, fn)
	}
	return st.Scan(s.Loop, maxIter, fn)
}

// release drops the pinned handle, if any. Idempotent (handles are).
func (s *SnapshotSource) release() {
	if s != nil && s.Handle != nil {
		s.Handle.Release()
	}
}

// Config assembles an Engine.
type Config struct {
	// Processors is the number of processor goroutines the base partition
	// spreads vertices over (>= 1).
	Processors int
	// MaxProcessors is the slot ceiling elastic scaling may grow into
	// (default Processors — no spares). Slots Processors..MaxProcessors-1
	// run idle processor goroutines that own no vertices until a
	// hot-partition split migrates a range onto them (Migrate/ScaleOut).
	MaxProcessors int
	// DelayBound is B, the bound on iteration delays (>= 1). B = 1 yields
	// synchronous (BSP) execution.
	DelayBound int64
	// Kind distinguishes the main loop from branch loops.
	Kind LoopKind
	// LoopID namespaces this loop's versions in the store.
	LoopID storage.LoopID
	// Store holds the versioned vertex states. Required.
	Store storage.Store
	// Codec serializes vertex states; defaults to GobCodec.
	Codec Codec
	// Program defines vertex behavior (value mode). Exactly one of Program
	// and Delta is required.
	Program Program
	// Delta, when non-nil, runs the loop in delta-accumulative mode
	// (Maiter/REX style, DESIGN.md §13): gathered messages fold into
	// per-vertex pending-delta slots via the program's accumulator, a
	// per-processor priority queue schedules the most significant pendings
	// first, sub-threshold pendings park without committing, and
	// checkpoints persist (state, pending) pairs.
	Delta delta.Program
	// Snapshot, when non-nil, bootstraps unseen vertices from another
	// loop's versions instead of Program.Init.
	Snapshot *SnapshotSource
	// StartIteration is the first iteration this loop may commit in
	// (default 0). A loop resuming in place over its own history (Reshard,
	// in-place recovery) starts above its last terminated iteration so new
	// versions supersede old ones.
	StartIteration int64
	// MaxIterations halts the loop once that many iterations terminated
	// (0 = unlimited).
	MaxIterations int64
	// Converge, when non-nil, is evaluated by the master for every
	// terminated iteration; returning true halts the loop.
	Converge func(iter, commits int64, progress float64) bool
	// Partition maps vertices to processors; defaults to modulo.
	Partition func(stream.VertexID, int) int
	// ResendAfter enables at-least-once delivery with the given
	// retransmission timeout (0 = trusted in-process channels).
	ResendAfter time.Duration
	// MaxResends caps transport retransmission attempts per frame; frames
	// exceeding it are dead-lettered (visible as dead_letters in /metrics).
	// 0 retries forever. Leave it 0 unless a supervisor is running: a
	// dead-lettered frame to a live processor leaks its obligation token,
	// which only a checkpoint recovery can reclaim.
	MaxResends int
	// MaxBatch is the transport's per-destination output buffer size:
	// messages accumulate into multi-payload frames shipped at protocol
	// boundaries (or when the buffer fills). Default 64; values <= 1 send
	// every message as its own frame.
	MaxBatch int
	// FlushInterval is the transport's latency backstop: buffered frames and
	// deferred acks older than this are shipped by a background tick even if
	// no protocol boundary flushed them (default 2ms when batching).
	FlushInterval time.Duration
	// DisableBatching reverts the message plane to the unbatched baseline:
	// one frame per message, an ack per data frame, no update coalescing and
	// no transport route cache (benchmark comparisons).
	DisableBatching bool
	// CommitDelay, when non-nil, injects per-commit latency into a
	// processor (straggler and I/O-cost modelling in the experiments).
	CommitDelay func(proc int) time.Duration
	// Wire, when non-nil, runs the loop's message plane over a real socket
	// substrate (see WireSpec): every frame is serialized through the
	// CRC32-framed binary codec and crosses a supervised connection to the
	// process's own listener. Implies ResendAfter > 0 (defaulted to 5ms if
	// unset) — the wire sheds frames on reconnects and relies on the resend
	// ledger for recovery.
	Wire *WireSpec

	// Flow control (all zero = unbounded legacy behavior).

	// MaxPendingInputs bounds the external inputs admitted into the loop but
	// not yet applied to a vertex: Ingest and IngestAll block the caller —
	// parking the upstream spout — once this many are in flight. A crash
	// recovery resets the ledger (the discarded incarnation's in-flight
	// inputs die with it) and the journal replay re-acquires. 0 disables
	// admission control.
	MaxPendingInputs int
	// InboxHigh / InboxLow are the transport's per-endpoint inbox
	// watermarks (see transport.Options): at InboxHigh a receiver withdraws
	// delivery credit and senders park frames until it drains to InboxLow.
	// 0 leaves inboxes unbounded.
	InboxHigh int
	InboxLow  int
	// DelayBoundCeiling lets the overload controller raise the effective
	// delay bound B at runtime (SetDelayBound) up to this value: a larger B
	// lets processors run further ahead of termination notifications,
	// trading result staleness for ingest headroom. 0 pins B at DelayBound.
	DelayBoundCeiling int64
	// Seed drives all engine-internal randomness.
	Seed int64
	// CompactEvery makes the master compact the store every N terminated
	// iterations, dropping versions superseded below the frontier (forks
	// always happen at or above it, so they are unreachable). 0 disables
	// compaction; the default for main loops is 64.
	CompactEvery int64
	// Obs, when non-nil, attaches the loop to an observability hub: protocol
	// counters and frontier gauges register under per-loop labels, the
	// three-phase protocol flows events into the hub's tracer, and the loop
	// contributes a /statusz section. Branch loops forked from an observed
	// main loop inherit only the tracer (see attachObs): they are too
	// short-lived to scrape, and per-query collector registration would
	// dominate the fork fast path.
	Obs *obs.Hub
	// branchObs is set by ForkBranch on branch configs: the parent main
	// loop's pooled aggregate the branch joins instead of registering its
	// own metric families (see observe.go).
	branchObs *branchObs

	// Supervision (main loops only; all zero = no supervisor).

	// HeartbeatInterval makes every processor and the master send liveness
	// beats to a supervisor at this interval; the supervisor restarts the
	// loop from the last terminated-iteration checkpoint when beats stop.
	// 0 disables supervision (crashes must be recovered manually with
	// RecoverFromCheckpoint).
	HeartbeatInterval time.Duration
	// SuspectAfter is how many consecutive missed beats declare a node dead
	// (default 3).
	SuspectAfter int
	// MaxRestarts is how many times one processor may crash within
	// RestartWindow before it is quarantined and its partition reassigned
	// to the survivors (default 5).
	MaxRestarts int
	// RestartWindow is the sliding window for MaxRestarts (default 1m).
	RestartWindow time.Duration
	// RestartBackoff is the base of the exponential restart backoff
	// (default HeartbeatInterval).
	RestartBackoff time.Duration

	// Ablation switches (benchmarking only; both default off = optimized).

	// DisablePrepareSkip makes vertices at the delay cap run the prepare
	// phase anyway (the paper's Section 4.4 optimization turned off).
	DisablePrepareSkip bool
	// DisableJournalPrune keeps every committed input in the fork journal
	// instead of pruning entries below the terminated frontier.
	DisableJournalPrune bool
}

func (c *Config) validate() error {
	if c.Processors < 1 {
		return errors.New("engine: Processors must be >= 1")
	}
	if c.DelayBound < 1 {
		return errors.New("engine: DelayBound must be >= 1")
	}
	if c.MaxProcessors == 0 {
		c.MaxProcessors = c.Processors
	}
	if c.MaxProcessors < c.Processors {
		return errors.New("engine: MaxProcessors must be 0 or >= Processors")
	}
	if c.Store == nil {
		return errors.New("engine: Store is required")
	}
	if (c.Program == nil) == (c.Delta == nil) {
		return errors.New("engine: exactly one of Program and Delta is required")
	}
	if c.Codec == nil {
		c.Codec = GobCodec{}
	}
	if c.Partition == nil {
		c.Partition = func(id stream.VertexID, n int) int { return int(id % stream.VertexID(n)) }
	}
	if c.CompactEvery == 0 && c.Kind == MainLoop {
		c.CompactEvery = 64
	}
	if c.DisableBatching {
		c.MaxBatch = 1
	} else if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.MaxBatch > 1 && c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Millisecond
	}
	if c.Wire != nil && c.ResendAfter <= 0 {
		c.ResendAfter = 5 * time.Millisecond
	}
	if c.DelayBoundCeiling < 0 || (c.DelayBoundCeiling > 0 && c.DelayBoundCeiling < c.DelayBound) {
		return errors.New("engine: DelayBoundCeiling must be 0 or >= DelayBound")
	}
	if c.InboxHigh > 0 && (c.InboxLow <= 0 || c.InboxLow >= c.InboxHigh) {
		c.InboxLow = c.InboxHigh / 2
	}
	if c.HeartbeatInterval > 0 {
		if c.SuspectAfter < 1 {
			c.SuspectAfter = 3
		}
		if c.MaxRestarts < 1 {
			c.MaxRestarts = 5
		}
		if c.RestartWindow <= 0 {
			c.RestartWindow = time.Minute
		}
		if c.RestartBackoff <= 0 {
			c.RestartBackoff = c.HeartbeatInterval
		}
	}
	return nil
}

// IterationRecord is the master's log entry for one terminated iteration.
type IterationRecord struct {
	Iteration int64
	// At is the wall-clock offset from engine start when the iteration's
	// termination was announced.
	At time.Duration
	// Commits is the number of vertex updates committed in the iteration.
	Commits int64
	// Progress is the iteration's aggregated ReportProgress value.
	Progress float64
}

// Stats are the engine's live counters.
type Stats struct {
	Commits     metrics.Counter
	UpdateMsgs  metrics.Counter
	PrepareMsgs metrics.Counter
	AckMsgs     metrics.Counter
	InputMsgs   metrics.Counter
	Emits       metrics.Counter
	// Coalesced counts update messages merged into a newer update for the
	// same (producer, consumer) pair before leaving the processor.
	Coalesced metrics.Counter
	// Delta-mode counters (static zero in value mode). DeltaMerged counts
	// deltas accumulated into an already-pending slot, DeltaSkipped counts
	// sub-threshold pendings parked instead of scheduled (selective
	// activation), DeltaApplied counts pendings consumed by commits.
	DeltaMerged  metrics.Counter
	DeltaSkipped metrics.Counter
	DeltaApplied metrics.Counter
}

// StatsSnapshot is a point-in-time copy of the counters.
type StatsSnapshot struct {
	Commits, UpdateMsgs, PrepareMsgs, AckMsgs, InputMsgs int64
	Emits                                                int64
	// Coalesced is the number of update messages merged away before send;
	// UpdateMsgs counts updates as produced, so the wire carried
	// UpdateMsgs − Coalesced of them.
	Coalesced                                          int64
	TransportSent, TransportDelivered, TransportResent int64
	// TransportPayloads counts payloads inside first-transmission frames, so
	// TransportPayloads/(TransportSent−TransportResent) is the average batch
	// size and TransportAckFrames/TransportPayloads the ack suppression
	// ratio.
	TransportPayloads, TransportAckFrames int64
	TransportDeadLetters                  int64
	// Wire counters (all zero without Config.Wire): frames and bytes
	// serialized onto / decoded off the socket substrate, supervised
	// reconnects after dead connections, and corrupt frames caught by the
	// CRC (checksum mismatches) or the framing layer (torn frames) — caught
	// frames drop their connection and are never delivered.
	WireTxFrames, WireRxFrames           int64
	WireTxBytes, WireRxBytes             int64
	WireReconnects                       int64
	WireChecksumFailures, WireTornFrames int64
	// Delta-mode counters (all zero in value mode): deltas merged into
	// pending slots, sub-threshold activations skipped, pendings consumed
	// by commits, and the current summed activation-queue depth.
	DeltaMerged, DeltaSkipped, DeltaApplied int64
	DeltaQueueDepth                         int64
	Notified                                int64
	// Frontier is the smallest iteration still holding an obligation token.
	Frontier int64
	// PendingPrepares is the number of PREPARE messages awaiting their ACK.
	PendingPrepares int64
	// Crashes and Recoveries count injected crashes and completed
	// checkpoint restarts; Quarantined is the number of processors removed
	// from rotation after exceeding MaxRestarts.
	Crashes, Recoveries, Quarantined int64
	// Generation counts loop incarnations (0 = never recovered).
	Generation int64
}

// incarnation is one generation of the loop's running topology: network,
// tracker, processors and control endpoints. A crash recovery tears the
// current incarnation down wholesale and builds the next one from the last
// terminated-iteration checkpoint; everything durable (store, journal,
// counters, Lamport clock) lives on the Engine and survives.
type incarnation struct {
	gen     int
	net     *transport.Network
	tracker *Tracker
	procs   []*processor // nil entries are quarantined processors
	masterE *transport.Endpoint
	ingestE *transport.Endpoint
	supE    *transport.Endpoint // heartbeat sink; nil when unsupervised
	migE    *transport.Endpoint // migration-coordinator endpoint (elastic.go)
	route   func(stream.VertexID) transport.NodeID

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// ready is closed once the incarnation is fully bootstrapped (checkpoint
	// re-activation and residual replay done). The supervisor waits for it
	// before it starts judging heartbeats: the replay storm of a large
	// recovery can starve the sender goroutines long enough to look like
	// death, and suspecting during it livelocks recovery.
	ready     chan struct{}
	readyOnce sync.Once

	masterCrashed atomic.Bool
}

func (inc *incarnation) stopNow() {
	inc.stopOnce.Do(func() { close(inc.stop) })
}

func (inc *incarnation) markReady() {
	inc.readyOnce.Do(func() { close(inc.ready) })
}

// Engine runs one loop (main or branch) of the iterative computation.
type Engine struct {
	// genMu guards the current incarnation and the per-incarnation parts of
	// cfg (Snapshot, StartIteration), plus the quarantine and restart
	// bookkeeping. Processor goroutines never take it: they capture their
	// incarnation's tracker/route/snapshot at construction, so a recovery
	// holding the write lock can wait for them to drain without deadlock.
	genMu       sync.RWMutex
	cfg         Config
	inc         *incarnation
	quarantined map[int]struct{}
	restartLog  map[int][]time.Time // per-processor restart times (-1 = master)
	stopped     bool

	clock    lamport.Clock
	journal  *inputJournal // main loops only
	stats    Stats
	netStats *transport.Stats // shared across incarnations
	start    time.Time
	created  time.Time

	// Flow control. ingestGate (nil when MaxPendingInputs == 0) is the
	// admission ledger: Ingest acquires before touching the incarnation —
	// blocking under genMu would deadlock the recovery that needs the write
	// lock to unwedge the very consumer being waited on — and applyWork
	// releases as inputs land on vertices. delayBound is the effective B,
	// raised at runtime by SetDelayBound within the configured ceiling.
	// slow is per-processor injected commit latency (FaultSlowProcessor);
	// it survives incarnations so a recovered processor stays slow.
	ingestGate *flow.Gate
	delayBound atomic.Int64
	slow       []atomic.Int64
	// deltaBoost is the overload multiplier on the delta significance
	// threshold (Float64bits; 1.0 at rest). Raised by the degradation
	// ladder: commits get rarer, pendings keep absorbing arrivals, and
	// convergence quality degrades instead of input being dropped.
	deltaBoost atomic.Uint64

	// Elastic repartitioning (plan.go, elastic.go). plan is the current
	// partition-plan epoch, read atomically by every route call and replaced
	// only by a migration's cutover publish; it lives on the Engine so plans
	// survive crash recoveries. migMu serializes migrations (one at a time).
	plan          atomic.Pointer[PartitionPlan]
	migMu         sync.Mutex
	migActive     bool
	migSeq        int64
	migCrashArm   atomic.Int64 // proc+1 of an armed FaultCrashDuringMigration
	migrations    metrics.Counter
	migratedVerts metrics.Counter
	migAborts     metrics.Counter
	migBounced    metrics.Counter
	migDurHist    *obs.StreamHist

	// Supervision counters and event log.
	crashes     metrics.Counter
	recoveries  metrics.Counter
	recMu       sync.Mutex
	recoveryLog []RecoveryEvent

	// Fault injection (chaos schedules + transport faults, re-applied to
	// every incarnation's network). wireFaults is the socket-level analogue:
	// one shared fault state wrapping every wire connection of every
	// incarnation (nil without Config.Wire); lastWireDown rate-limits
	// wire-down recovery events.
	faultMu       sync.Mutex
	faultDrop     float64
	faultDup      float64
	pendingFaults []Fault
	watcherOn     bool
	wireFaults    *transport.WireFaults
	lastWireDown  atomic.Int64

	// Observability (nil / zero unless Config.Obs was set).
	obsScope        *obs.Scope
	obsDetach       func()
	tracer          *obs.Tracer
	spans           *trace.Tracer
	pendingPrepares atomic.Int64
	iterCommitsHist *obs.StreamHist
	advanceGapHist  *obs.StreamHist
	mttrHist        *obs.StreamHist
	wireFlushHist   *obs.StreamHist
	lastAdvance     time.Time // master goroutine only

	// branchObs pools the branch-loop metric series (main loops own one;
	// branches register into their parent's instead of creating families).
	branchObs *branchObs

	// traceCommits holds traced commits awaiting frontier coverage: when the
	// watermark advances past a commit's iteration, its trace records the
	// "frontier" stage. Bounded; oldest entries drop under pressure.
	traceCommitMu sync.Mutex
	traceCommits  []tracedCommit

	iterMu   sync.Mutex
	iterLog  []IterationRecord
	haltSent bool

	masterPaused atomic.Bool
	done         chan struct{}
	doneOnce     sync.Once
	stopOnce     sync.Once
	supWG        sync.WaitGroup
	started      atomic.Bool

	// pins holds the fork iterations of live branches; compaction never
	// drops versions a pinned snapshot may still lazily read.
	pinMu sync.Mutex
	pins  map[int64]int

	// onStop runs after the engine stops (branch engines release their
	// parent's fork pin here; a Reshard replacement releases its resume
	// pin).
	onStop func()
	// forkJournalSeq is, on a branch engine, the parent's input-journal
	// sequence at fork time; AdoptBranch uses it to detect inputs that
	// arrived after the fork (Section 5.2's merge precondition).
	forkJournalSeq uint64
}

// New assembles an engine; call Start to run it.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:         cfg,
		netStats:    &transport.Stats{},
		quarantined: make(map[int]struct{}),
		restartLog:  make(map[int][]time.Time),
		created:     time.Now(),
		done:        make(chan struct{}),
		pins:        make(map[int64]int),
		slow:        make([]atomic.Int64, cfg.MaxProcessors),
	}
	e.plan.Store(basePlan(cfg.Processors, cfg.MaxProcessors))
	e.delayBound.Store(cfg.DelayBound)
	e.deltaBoost.Store(math.Float64bits(1))
	if cfg.MaxPendingInputs > 0 {
		e.ingestGate = flow.NewGate(cfg.MaxPendingInputs, 0)
	}
	if cfg.Kind == MainLoop {
		e.journal = newInputJournal()
	}
	if cfg.Wire != nil {
		e.wireFaults = transport.NewWireFaults(cfg.Seed ^ 0x5719e)
	}
	if cfg.Obs != nil {
		e.tracer = cfg.Obs.Tracer // before the processors: they cache it
		e.spans = cfg.Obs.Spans
	}
	e.inc = e.buildIncarnation(0)
	if cfg.Obs != nil {
		e.attachObs(cfg.Obs)
	}
	return e, nil
}

// supervised reports whether this engine runs a heartbeat supervisor.
func (e *Engine) supervised() bool {
	return e.cfg.Kind == MainLoop && e.cfg.HeartbeatInterval > 0
}

// Node-ID layout: processor slots occupy 0..MaxProcessors-1 (spares above
// Config.Processors idle until a migration lands on them); the control
// endpoints sit above the slot ceiling.
func (e *Engine) masterNode() transport.NodeID { return transport.NodeID(e.cfg.MaxProcessors) }
func (e *Engine) ingestNode() transport.NodeID { return transport.NodeID(e.cfg.MaxProcessors + 1) }
func (e *Engine) supNode() transport.NodeID    { return transport.NodeID(e.cfg.MaxProcessors + 2) }
func (e *Engine) migNode() transport.NodeID    { return transport.NodeID(e.cfg.MaxProcessors + 3) }

// buildIncarnation assembles generation gen's topology from the engine's
// current configuration and quarantine set. Caller holds genMu (or is New).
func (e *Engine) buildIncarnation(gen int) *incarnation {
	inc := &incarnation{gen: gen, stop: make(chan struct{}), ready: make(chan struct{})}
	var wire *transport.WireConfig
	if e.cfg.Wire != nil {
		wire = e.buildWire(gen)
	}
	inc.net = transport.NewNetwork(transport.Options{
		ResendAfter:       e.cfg.ResendAfter,
		MaxResends:        e.cfg.MaxResends,
		MaxBatch:          e.cfg.MaxBatch,
		FlushInterval:     e.cfg.FlushInterval,
		DisableRouteCache: e.cfg.DisableBatching,
		InboxHigh:         e.cfg.InboxHigh,
		InboxLow:          e.cfg.InboxLow,
		DropSeed:          e.cfg.Seed,
		Stats:             e.netStats,
		Spans:             e.spans,
		SpanLoop:          uint64(e.cfg.LoopID),
		Wire:              wire,
	})
	e.faultMu.Lock()
	if e.faultDrop > 0 || e.faultDup > 0 {
		inc.net.SetFaults(e.faultDrop, e.faultDup)
	}
	e.faultMu.Unlock()
	inc.tracker = NewTracker(e.cfg.StartIteration)
	inc.route = e.routeFn()
	// Every slot up to MaxProcessors runs a processor goroutine: spares idle
	// on Recv until a migration moves a range onto them, so scaling out never
	// has to mutate a live incarnation's topology.
	inc.procs = make([]*processor, e.cfg.MaxProcessors)
	for i := 0; i < e.cfg.MaxProcessors; i++ {
		if _, q := e.quarantined[i]; q {
			continue
		}
		ep := inc.net.Register(transport.NodeID(i))
		inc.procs[i] = newProcessor(i, e, ep, inc.tracker, e.cfg.Snapshot, inc.route, e.cfg.StartIteration)
	}
	inc.masterE = inc.net.Register(e.masterNode())
	inc.ingestE = inc.net.Register(e.ingestNode())
	if e.supervised() {
		inc.supE = inc.net.Register(e.supNode())
	}
	inc.migE = inc.net.Register(e.migNode())
	return inc
}

// routeFn builds the effective vertex→node mapping: the current partition
// plan (base partition folded through published migrations, read atomically
// per call so a cutover takes effect everywhere at once), with quarantined
// processors remapped onto the survivors. Caller holds genMu (or is New).
func (e *Engine) routeFn() func(stream.VertexID) transport.NodeID {
	base := e.cfg.Partition
	if len(e.quarantined) == 0 {
		return func(id stream.VertexID) transport.NodeID {
			return transport.NodeID(e.plan.Load().Owner(id, base))
		}
	}
	bad := make(map[int]struct{}, len(e.quarantined))
	for i := range e.quarantined {
		bad[i] = struct{}{}
	}
	var survivors []int
	for i := 0; i < e.cfg.MaxProcessors; i++ {
		if _, q := bad[i]; !q {
			survivors = append(survivors, i)
		}
	}
	return func(id stream.VertexID) transport.NodeID {
		p := e.plan.Load().Owner(id, base)
		if _, q := bad[p]; q {
			p = survivors[int(uint64(id)%uint64(len(survivors)))]
		}
		return transport.NodeID(p)
	}
}

// startIncarnation launches an incarnation's goroutines: processors, master,
// and (when supervised) heartbeat senders plus the supervisor.
func (e *Engine) startIncarnation(inc *incarnation) {
	for _, p := range inc.procs {
		if p == nil {
			continue
		}
		inc.wg.Add(1)
		go func(p *processor) {
			defer inc.wg.Done()
			p.run()
		}(p)
	}
	inc.wg.Add(1)
	go func() {
		defer inc.wg.Done()
		e.masterRun(inc)
	}()
	if e.supervised() && inc.supE != nil {
		for i, p := range inc.procs {
			if p == nil {
				continue
			}
			inc.wg.Add(1)
			go e.heartbeatRun(inc, i, p.ep)
		}
		inc.wg.Add(1)
		go e.heartbeatRun(inc, -1, inc.masterE)
		e.supWG.Add(1)
		go e.superviseRun(inc)
	}
}

// cur returns the current incarnation (a snapshot: a recovery may replace it
// at any time; stale incarnations stay safe to poke, their tracker and
// endpoints are simply inert).
func (e *Engine) cur() *incarnation {
	e.genMu.RLock()
	defer e.genMu.RUnlock()
	return e.inc
}

// snapshot returns the engine's current snapshot source (recovery rewrites
// it).
func (e *Engine) snapshot() *SnapshotSource {
	e.genMu.RLock()
	defer e.genMu.RUnlock()
	return e.cfg.Snapshot
}

// Start launches the processors and the master. It may be called once.
func (e *Engine) Start() {
	if !e.started.CompareAndSwap(false, true) {
		panic("engine: Start called twice")
	}
	e.start = time.Now()
	inc := e.cur()
	e.startIncarnation(inc)
	inc.markReady()
}

// Ingest routes one external tuple into the loop. It acquires the input's
// obligation token before returning, so a subsequent WaitQuiesce cannot miss
// the pending work. Holding the incarnation read lock across the acquire and
// the send keeps the input atomic with respect to recovery: either it lands
// in the old incarnation (and the journal replays it) or in the new one.
func (e *Engine) Ingest(t stream.Tuple) {
	e.IngestTraced(t, trace.Context{})
}

// IngestTraced is Ingest for deltas that already carry a span context (a
// traced spout hands its context over here, closing the "spout" stage). A
// zero context makes the engine the trace head: the head-based sampling
// decision happens here, once per delta.
func (e *Engine) IngestTraced(t stream.Tuple, ctx trace.Context) {
	traceOn := e.spans.Enabled()
	if traceOn {
		now := e.spans.Now()
		if ctx.Trace == 0 {
			ctx = e.spans.Begin(now)
		} else if ctx.Traced() {
			// Duration since the spout stamped the context = the spout stage
			// (emission, routing, and topology transit).
			ctx = e.spans.Stage(ctx, trace.StageSpout, uint64(e.cfg.LoopID), uint64(routeVertex(t)), 0, now)
		}
	}
	if g := e.ingestGate; g != nil {
		if traceOn && ctx.Traced() {
			g.Acquire() // before genMu: see the ingestGate field comment
			ctx = e.spans.Stage(ctx, trace.StageGate, uint64(e.cfg.LoopID), uint64(routeVertex(t)), 0, e.spans.Now())
		} else {
			g.Acquire()
		}
	}
	e.genMu.RLock()
	defer e.genMu.RUnlock()
	inc := e.inc
	tok := inc.tracker.AcquireFloor(0)
	m := msgInput{Tuple: t, Token: tok, Ctx: ctx}
	if e.journal != nil {
		m.JSeq, m.HasJSeq = e.journal.Ingested(t), true
	}
	inc.ingestE.Send(inc.route(routeVertex(t)), m)
	inc.ingestE.Flush()
}

// IngestAll ingests a tuple slice in order, in admission-gate-sized chunks:
// each chunk rides under one incarnation lock and one transport flush, in a
// handful of multi-payload frames instead of one frame per tuple. With
// MaxPendingInputs set the call blocks — parking the upstream source —
// whenever the loop already holds a full window of unapplied inputs.
func (e *Engine) IngestAll(ts []stream.Tuple) {
	if e.ingestGate == nil {
		e.ingestChunk(ts)
		return
	}
	for len(ts) > 0 {
		n := e.ingestGate.AcquireUpTo(len(ts))
		e.ingestChunk(ts[:n])
		ts = ts[n:]
	}
}

// ingestChunk sends one pre-admitted slice of tuples into the loop.
func (e *Engine) ingestChunk(ts []stream.Tuple) {
	traceOn := e.spans.Enabled()
	var now int64
	if traceOn {
		now = e.spans.Now() // one clock read per chunk keeps the hot path cheap
	}
	e.genMu.RLock()
	defer e.genMu.RUnlock()
	inc := e.inc
	for _, t := range ts {
		tok := inc.tracker.AcquireFloor(0)
		m := msgInput{Tuple: t, Token: tok}
		if traceOn {
			m.Ctx = e.spans.Begin(now)
		}
		if e.journal != nil {
			m.JSeq, m.HasJSeq = e.journal.Ingested(t), true
		}
		inc.ingestE.Send(inc.route(routeVertex(t)), m)
	}
	inc.ingestE.Flush()
}

// Activate re-activates vertices: each becomes dirty and re-scatters its
// current state. Branch loops are seeded this way; recovery re-activates
// snapshot vertices.
func (e *Engine) Activate(ids ...stream.VertexID) {
	e.genMu.RLock()
	defer e.genMu.RUnlock()
	inc := e.inc
	for _, id := range ids {
		tok := inc.tracker.AcquireFloor(0)
		inc.ingestE.Send(inc.route(id), msgActivate{To: id, Token: tok})
	}
	inc.ingestE.Flush()
}

// masterRun is the master node of one incarnation: it advances the iteration
// frontier, flushes checkpoints, publishes termination notifications, records
// statistics, and detects convergence. A crashed master (CrashMaster) simply
// exits; the supervisor notices the missing beats and restarts the loop.
func (e *Engine) masterRun(inc *incarnation) {
	for {
		// A paused master (Figure 8c) stops advancing the frontier; the
		// tracker keeps accumulating and the announcement happens wholesale
		// after it resumes.
		for e.masterPaused.Load() {
			select {
			case <-inc.stop:
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
		if inc.masterCrashed.Load() {
			return
		}
		from, to, quiesced, ok := inc.tracker.Advance()
		if !ok {
			return
		}
		if inc.masterCrashed.Load() {
			return
		}
		if to >= from {
			// Flush before announcing: a terminated iteration is a
			// checkpoint (Section 5.3).
			if err := e.cfg.Store.Flush(e.cfg.LoopID, to); err != nil {
				panic(fmt.Sprintf("engine: checkpoint flush: %v", err))
			}
			at := time.Since(e.start)
			halt := false
			e.iterMu.Lock()
			for k := from; k <= to; k++ {
				commits, progress := inc.tracker.IterStats(k)
				e.iterLog = append(e.iterLog, IterationRecord{Iteration: k, At: at, Commits: commits, Progress: progress})
				if e.iterCommitsHist != nil {
					e.iterCommitsHist.Observe(float64(commits))
				}
				if e.cfg.Converge != nil && e.cfg.Converge(k, commits, progress) {
					halt = true
				}
			}
			e.iterMu.Unlock()
			e.observeAdvance(to)
			inc.tracker.DropStatsThrough(to)
			if e.journal != nil && !e.cfg.DisableJournalPrune {
				e.journal.Prune(to)
			}
			if n := e.cfg.CompactEvery; n > 0 && to/n > (from-1)/n {
				if err := e.cfg.Store.Compact(e.cfg.LoopID, e.compactFloor(to)); err != nil {
					panic(fmt.Sprintf("engine: compact store: %v", err))
				}
			}
			e.broadcast(inc, msgFrontier{Notified: to})
			if e.cfg.MaxIterations > 0 && to+1 >= e.cfg.MaxIterations {
				halt = true
			}
			if halt {
				e.halt(inc)
				return
			}
		}
		if quiesced && e.cfg.Kind == BranchLoop {
			// Frozen input and no obligations left: the branch converged.
			e.halt(inc)
			return
		}
	}
}

// observeAdvance records one frontier advance with the hub: a trace event
// (frontier advances are rare, so they are never sampled out) and the
// inter-advance gap histogram. Master goroutine only.
func (e *Engine) observeAdvance(to int64) {
	if e.tracer != nil {
		e.tracer.Record(uint64(e.cfg.LoopID), obs.EvFrontier, obs.NoVertex, 0, to)
	}
	if e.advanceGapHist != nil {
		now := time.Now()
		if !e.lastAdvance.IsZero() {
			e.advanceGapHist.Observe(now.Sub(e.lastAdvance).Seconds())
		}
		e.lastAdvance = now
	}
	e.traceFrontier(to)
}

// tracedCommit is a sampled commit awaiting coverage by the iteration
// frontier; its trace's "frontier" stage is the commit-to-watermark latency
// — the freshness cost the paper's progress frontier puts a bound on.
type tracedCommit struct {
	ctx  trace.Context
	iter int64
}

// maxTracedCommits bounds the pending list; at the cap the oldest entry is
// dropped (its trace simply lacks a frontier span).
const maxTracedCommits = 512

// noteTracedCommit registers a traced commit for frontier attribution.
// Called by processors only for sampled contexts.
func (e *Engine) noteTracedCommit(ctx trace.Context, iter int64) {
	e.traceCommitMu.Lock()
	if len(e.traceCommits) >= maxTracedCommits {
		e.traceCommits = append(e.traceCommits[:0], e.traceCommits[1:]...)
	}
	e.traceCommits = append(e.traceCommits, tracedCommit{ctx: ctx, iter: iter})
	e.traceCommitMu.Unlock()
}

// traceFrontier closes the "frontier" stage of every traced commit the
// advanced watermark now covers.
func (e *Engine) traceFrontier(to int64) {
	if !e.spans.Enabled() {
		return
	}
	e.traceCommitMu.Lock()
	var covered []tracedCommit
	kept := e.traceCommits[:0]
	for _, tc := range e.traceCommits {
		if tc.iter <= to {
			covered = append(covered, tc)
		} else {
			kept = append(kept, tc)
		}
	}
	e.traceCommits = kept
	e.traceCommitMu.Unlock()
	if len(covered) == 0 {
		return
	}
	now := e.spans.Now()
	for _, tc := range covered {
		e.spans.Stage(tc.ctx, trace.StageFrontier, uint64(e.cfg.LoopID), trace.NoVertex, uint64(tc.iter), now)
	}
}

// broadcast sends a control message to every live processor and flushes, so
// frontier notifications and halts are never delayed by batching.
func (e *Engine) broadcast(inc *incarnation, payload any) {
	for i, p := range inc.procs {
		if p == nil {
			continue
		}
		inc.masterE.Send(transport.NodeID(i), payload)
	}
	inc.masterE.Flush()
}

// halt stops the processors and signals completion.
func (e *Engine) halt(inc *incarnation) {
	e.iterMu.Lock()
	if !e.haltSent {
		e.haltSent = true
		e.iterMu.Unlock()
		e.broadcast(inc, msgHalt{})
	} else {
		e.iterMu.Unlock()
	}
	e.doneOnce.Do(func() { close(e.done) })
}

// Done is closed when the loop converges (branch quiescence, the Converge
// predicate, or MaxIterations).
func (e *Engine) Done() <-chan struct{} { return e.done }

// WaitDone blocks until the loop completes or the timeout expires.
func (e *Engine) WaitDone(timeout time.Duration) error {
	select {
	case <-e.done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("engine: loop %d did not complete within %v", e.cfg.LoopID, timeout)
	}
}

// WaitQuiesce blocks until no obligations remain (all ingested inputs fully
// processed and propagated) or the timeout expires. It is the main loop's
// synchronization point for tests and fork call sites that want exact
// results. It follows the live incarnation: tokens lost in a crash pin the
// old tracker forever, so quiescence is only ever reached by the incarnation
// that finishes the work.
func (e *Engine) WaitQuiesce(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if e.cur().tracker.Quiesced() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("engine: loop %d did not quiesce within %v", e.cfg.LoopID, timeout)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// WaitSettled blocks until the loop is quiescent and the master has
// announced the termination of every iteration that ran (so a fork taken now
// snapshots everything and needs no seeds).
func (e *Engine) WaitSettled(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if e.cur().tracker.Settled() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("engine: loop %d did not settle within %v", e.cfg.LoopID, timeout)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Stop tears the engine down. It is idempotent and safe to call on a
// completed engine.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() {
		if e.ingestGate != nil {
			e.ingestGate.Close() // producers blocked in Ingest must exit
		}
		e.genMu.Lock()
		e.stopped = true
		inc := e.inc
		e.genMu.Unlock()
		inc.stopNow()
		inc.tracker.Close()
		e.broadcast(inc, msgHalt{})
		e.doneOnce.Do(func() { close(e.done) })
		for _, p := range inc.procs {
			if p != nil {
				p.setPaused(false) // a paused goroutine must wake to exit
			}
		}
		inc.net.Close()
		inc.wg.Wait()
		e.supWG.Wait()
		if e.obsDetach != nil {
			e.obsDetach() // unregister per-loop series and status section
		}
		if e.onStop != nil {
			e.onStop()
		}
		// Drop the snapshot handle this engine reads through (recovery and
		// Reshard grab one on self-bootstrapping loops; for branches this
		// doubles the onStop release, which is idempotent).
		e.snapshot().release()
	})
}

// pinFork registers a live snapshot at iter and returns its release.
func (e *Engine) pinFork(iter int64) func() {
	e.pinMu.Lock()
	e.pins[iter]++
	e.pinMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			e.pinMu.Lock()
			if e.pins[iter]--; e.pins[iter] <= 0 {
				delete(e.pins, iter)
			}
			e.pinMu.Unlock()
		})
	}
}

// PinnedForks returns the number of live fork pins: snapshots of this loop
// still held by running branch loops or retained query results. Compaction
// never drops versions a pinned snapshot may read, so a nonzero count after
// every query closed indicates a leak.
func (e *Engine) PinnedForks() int {
	e.pinMu.Lock()
	defer e.pinMu.Unlock()
	n := 0
	for _, c := range e.pins {
		n += c
	}
	return n
}

// ForkJournalSeq returns, on a branch engine, the parent main loop's
// input-journal sequence at fork time: the number of ingested inputs this
// branch's fixed point reflects.
func (e *Engine) ForkJournalSeq() uint64 { return e.forkJournalSeq }

// compactFloor caps a compaction at the oldest pinned fork iteration.
func (e *Engine) compactFloor(to int64) int64 {
	e.pinMu.Lock()
	defer e.pinMu.Unlock()
	for iter := range e.pins {
		if iter < to {
			to = iter
		}
	}
	return to
}

// FlowSnapshot is a point-in-time view of the loop's backpressure state:
// the ingest admission ledger, the effective delay bound, and the transport
// inbox watermark machinery.
type FlowSnapshot struct {
	// GateDepth / GateCapacity are the admission ledger: inputs admitted
	// but not yet applied, against MaxPendingInputs (both zero when
	// admission control is off). GatePeak is the high-water mark.
	// GateSaturated reports the gate is currently withholding credits
	// (producers park until the ledger drains to the low watermark), which
	// can hold with GateDepth below GateCapacity.
	GateDepth, GateCapacity, GatePeak int
	GateSaturated                     bool
	// GateWaits counts producer blocks at the admission gate; GateWaitTime
	// is their cumulative pause — how long sources were parked.
	GateWaits    int64
	GateWaitTime time.Duration
	// GateResets counts crash recoveries that discarded the ledger.
	GateResets int64
	// DelayBound is the effective B (>= Config.DelayBound when the
	// overload controller raised it).
	DelayBound int64
	// InboxMax / InboxTotal are the deepest and summed transport inbox
	// depths; StalledEndpoints and HeldFrames are the receivers currently
	// withholding credit and the frames senders have parked for them.
	InboxMax, InboxTotal         int
	StalledEndpoints, HeldFrames int
	// Stalls and FramesHeld are the cumulative transport counters;
	// UrgentShed counts stall-exempt control frames a watermark-full
	// receiver acknowledged without enqueueing.
	Stalls, FramesHeld, UrgentShed int64
}

// FlowSnapshot captures the engine's current backpressure state.
func (e *Engine) FlowSnapshot() FlowSnapshot {
	s := FlowSnapshot{DelayBound: e.delayBound.Load()}
	if g := e.ingestGate; g != nil {
		s.GateDepth = g.Depth()
		s.GateCapacity = g.Capacity()
		s.GatePeak = g.Peak()
		s.GateSaturated = g.Saturated()
		s.GateWaits = g.Waits()
		s.GateWaitTime = g.WaitTime()
		s.GateResets = g.Resets()
	}
	s.InboxMax, s.InboxTotal, s.StalledEndpoints, s.HeldFrames = e.cur().net.QueueDepths()
	s.Stalls = e.netStats.Stalls.Value()
	s.FramesHeld = e.netStats.HeldFrames.Value()
	s.UrgentShed = e.netStats.UrgentShed.Value()
	return s
}

// DelayBound returns the effective delay bound B; SetDelayBound may have
// raised it above the configured value.
func (e *Engine) DelayBound() int64 { return e.delayBound.Load() }

// SetDelayBound adjusts the effective B, clamped to
// [Config.DelayBound, Config.DelayBoundCeiling], and returns the value
// adopted. With no ceiling configured it is a no-op pinned at the
// configured bound. Raising B is the L2 degradation rung: in-flight work
// may run further ahead of termination notifications, absorbing an ingest
// surge at the price of staler approximations. Any value already admitted
// under a larger B stays valid when B is lowered again — the delay bound
// only gates new holdbacks, so correctness is that of the largest B used.
func (e *Engine) SetDelayBound(b int64) int64 {
	lo, hi := e.cfg.DelayBound, e.cfg.DelayBoundCeiling
	if hi < lo {
		hi = lo
	}
	if b < lo {
		b = lo
	}
	if b > hi {
		b = hi
	}
	e.delayBound.Store(b)
	return b
}

// progLabel names the running program for metric labels and statusz: the
// value program's type in value mode, the delta program's in delta mode.
func (e *Engine) progLabel() string {
	if e.cfg.Delta != nil {
		return fmt.Sprintf("%T", e.cfg.Delta)
	}
	return fmt.Sprintf("%T", e.cfg.Program)
}

// execMode reports the execution mode for statusz.
func (e *Engine) execMode() string {
	if e.cfg.Delta != nil {
		return "delta"
	}
	return "value"
}

// DeltaBoost returns the current significance-threshold multiplier (1.0 at
// rest; delta mode only).
func (e *Engine) DeltaBoost() float64 {
	return math.Float64frombits(e.deltaBoost.Load())
}

// SetDeltaBoost adjusts the delta-mode significance threshold multiplier
// (clamped to >= 1) and returns the value adopted; a no-op returning 1 in
// value mode. Raising the boost is a degradation rung: pendings keep
// accumulating exactly (nothing is dropped), but fewer clear the bar, so
// commit work shrinks and the loop's answer coarsens toward
// threshold-sized dust. Lowering it rescans every parked pending — any that
// became significant again are re-queued, so convergence to the base
// threshold's fixed point is preserved once the overload passes.
func (e *Engine) SetDeltaBoost(mult float64) float64 {
	if e.cfg.Delta == nil {
		return 1
	}
	if mult < 1 || math.IsNaN(mult) {
		mult = 1
	}
	old := math.Float64frombits(e.deltaBoost.Load())
	e.deltaBoost.Store(math.Float64bits(mult))
	if mult < old {
		e.genMu.RLock()
		defer e.genMu.RUnlock()
		inc := e.inc
		for i, p := range inc.procs {
			if p == nil {
				continue
			}
			tok := inc.tracker.AcquireFloor(0)
			inc.ingestE.Send(transport.NodeID(i), msgRescan{Token: tok})
		}
		inc.ingestE.Flush()
	}
	return mult
}

// SlowProcessor injects d of extra latency into every commit of processor i
// (0 clears it). Unlike Config.CommitDelay it can be toggled on a running
// engine and survives crash recoveries, which makes it the slow-consumer
// chaos primitive behind FaultSlowProcessor.
func (e *Engine) SlowProcessor(i int, d time.Duration) {
	if i >= 0 && i < len(e.slow) {
		e.slow[i].Store(int64(d))
	}
}

// TransportMapSizes sums the current incarnation's transport bookkeeping:
// dedup entries beyond the cumulative-ack watermarks and unacknowledged
// outgoing frames. Both are bounded by the in-flight window; the throughput
// soak asserts they do not grow with traffic volume.
func (e *Engine) TransportMapSizes() (seen, unacked int) {
	return e.cur().net.MapSizes()
}

// Notified returns the highest terminated iteration.
func (e *Engine) Notified() int64 { return e.cur().tracker.Notified() }

// Quiesced reports whether the loop currently has no pending obligations.
func (e *Engine) Quiesced() bool { return e.cur().tracker.Quiesced() }

// Generation returns the loop's incarnation number (0 = never recovered).
func (e *Engine) Generation() int {
	e.genMu.RLock()
	defer e.genMu.RUnlock()
	return e.inc.gen
}

// StatsSnapshot returns a copy of the live counters.
func (e *Engine) StatsSnapshot() StatsSnapshot {
	e.genMu.RLock()
	tracker := e.inc.tracker
	gen := e.inc.gen
	quarantined := len(e.quarantined)
	var queueDepth int64
	for _, p := range e.inc.procs {
		if p != nil {
			queueDepth += p.deltaDepth.Load()
		}
	}
	e.genMu.RUnlock()
	return StatsSnapshot{
		DeltaMerged:          e.stats.DeltaMerged.Value(),
		DeltaSkipped:         e.stats.DeltaSkipped.Value(),
		DeltaApplied:         e.stats.DeltaApplied.Value(),
		DeltaQueueDepth:      queueDepth,
		Commits:              e.stats.Commits.Value(),
		UpdateMsgs:           e.stats.UpdateMsgs.Value(),
		PrepareMsgs:          e.stats.PrepareMsgs.Value(),
		AckMsgs:              e.stats.AckMsgs.Value(),
		InputMsgs:            e.stats.InputMsgs.Value(),
		Emits:                e.stats.Emits.Value(),
		Coalesced:            e.stats.Coalesced.Value(),
		TransportSent:        e.netStats.Sent.Value(),
		TransportDelivered:   e.netStats.Delivered.Value(),
		TransportResent:      e.netStats.Resent.Value(),
		TransportPayloads:    e.netStats.Payloads.Value(),
		TransportAckFrames:   e.netStats.AckFrames.Value(),
		TransportDeadLetters: e.netStats.DeadLetters.Value(),
		WireTxFrames:         e.netStats.WireTxFrames.Value(),
		WireRxFrames:         e.netStats.WireRxFrames.Value(),
		WireTxBytes:          e.netStats.WireTxBytes.Value(),
		WireRxBytes:          e.netStats.WireRxBytes.Value(),
		WireReconnects:       e.netStats.WireReconnects.Value(),
		WireChecksumFailures: e.netStats.WireChecksumFailures.Value(),
		WireTornFrames:       e.netStats.WireTornFrames.Value(),
		Notified:             tracker.Notified(),
		Frontier:             tracker.Frontier(),
		PendingPrepares:      e.pendingPrepares.Load(),
		Crashes:              e.crashes.Value(),
		Recoveries:           e.recoveries.Value(),
		Quarantined:          int64(quarantined),
		Generation:           int64(gen),
	}
}

// IterationLog returns a copy of the per-iteration termination records.
func (e *Engine) IterationLog() []IterationRecord {
	e.iterMu.Lock()
	defer e.iterMu.Unlock()
	out := make([]IterationRecord, len(e.iterLog))
	copy(out, e.iterLog)
	return out
}

// ReadState returns the freshest stored application state of a vertex at or
// below maxIter (use MaxInt64 for the newest). For a loop bootstrapped from
// a snapshot (branch loops, recovery), vertices the loop never committed
// fall back to the snapshot version — the branch's logical state is the
// snapshot overlaid with its own commits.
func (e *Engine) ReadState(id stream.VertexID, maxIter int64) (any, int64, error) {
	data, iter, err := e.cfg.Store.Latest(e.cfg.LoopID, id, maxIter)
	if snap := e.snapshot(); errors.Is(err, storage.ErrNotFound) && snap != nil {
		data, iter, err = snap.latest(e.cfg.Store, id, snap.UpTo)
	}
	if err != nil {
		return nil, 0, err
	}
	return e.decodeState(id, data, iter)
}

func (e *Engine) decodeState(id stream.VertexID, data []byte, iter int64) (any, int64, error) {
	decoded, err := e.cfg.Codec.Decode(data)
	if err != nil {
		return nil, 0, err
	}
	blob, ok := decoded.(vertexBlob)
	if !ok {
		return nil, 0, fmt.Errorf("engine: stored version of vertex %d is %T", id, decoded)
	}
	return blob.State, iter, nil
}

// ScanStates visits the freshest stored state of every vertex at or below
// maxIter in ascending vertex order, overlaying this loop's commits onto its
// snapshot source (if any).
func (e *Engine) ScanStates(maxIter int64, fn func(id stream.VertexID, iter int64, state any) error) error {
	own := make(map[stream.VertexID]storage.Record)
	if err := e.cfg.Store.Scan(e.cfg.LoopID, maxIter, func(r storage.Record) error {
		own[r.Vertex] = r
		return nil
	}); err != nil {
		return err
	}
	merged := make([]storage.Record, 0, len(own))
	if snap := e.snapshot(); snap != nil {
		if err := snap.scan(e.cfg.Store, snap.UpTo, func(r storage.Record) error {
			if _, overlaid := own[r.Vertex]; !overlaid {
				merged = append(merged, r)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	for _, r := range own {
		merged = append(merged, r)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Vertex < merged[j].Vertex })
	for _, r := range merged {
		state, iter, err := e.decodeState(r.Vertex, r.Data, r.Iteration)
		if err != nil {
			return err
		}
		if err := fn(r.Vertex, iter, state); err != nil {
			return err
		}
	}
	return nil
}

// ForkSpec describes a consistent fork point of a running main loop.
type ForkSpec struct {
	// ForkIter is the iteration the snapshot is taken at (the frontier at
	// fork time).
	ForkIter int64
	// Seeds are the vertices whose effects are newer than the snapshot;
	// the branch re-activates them.
	Seeds []stream.VertexID
	// Residual are the gathered inputs not reflected in the snapshot; the
	// branch replays them.
	Residual []stream.Tuple
}

// Fork captures a fork specification at the current frontier: snapshot
// iteration, seed set and residual inputs (Section 5.2). The main loop keeps
// running; terminated iterations are immutable, which is what makes the
// snapshot consistent without a pause.
func (e *Engine) Fork() ForkSpec {
	e.genMu.RLock()
	defer e.genMu.RUnlock()
	return e.forkLocked()
}

// forkLocked captures the fork spec; caller holds genMu.
func (e *Engine) forkLocked() ForkSpec {
	inc := e.inc
	// Quiescence is sampled before the scans: if nothing was pending at
	// this point, any activity the scans pick up afterwards stems from
	// post-fork inputs, which the fork instant may legitimately exclude.
	quiesced := inc.tracker.Quiesced()
	forkIter := inc.tracker.Notified()
	seedSet := make(map[stream.VertexID]struct{})
	above := false
	for _, p := range inc.procs {
		if p == nil {
			continue
		}
		for _, id := range p.forkScan(forkIter) {
			seedSet[id] = struct{}{}
		}
		if len(p.forkScan(forkIter+1)) > 0 {
			above = true
		}
	}
	spec := ForkSpec{ForkIter: forkIter, Seeds: sortedIDs(seedSet)}
	if e.journal != nil {
		spec.Residual = e.journal.Residual(forkIter)
	}
	// Fast path for forks from a fully absorbed main loop: with no pending
	// obligations, no commits above the fork iteration and no residual
	// inputs, the snapshot alone is the complete fixed point — the branch
	// needs no re-activation at all.
	if quiesced && !above && len(spec.Residual) == 0 {
		spec.Seeds = nil
	}
	return spec
}

// JournalSize returns the fork journal's (uncommitted, committed-retained)
// entry counts (main loops only; zeros otherwise).
func (e *Engine) JournalSize() (int, int) {
	if e.journal == nil {
		return 0, 0
	}
	return e.journal.Size()
}

// InjectTransportFaults makes the engine's transport drop and duplicate
// data frames with the given probabilities (fault-tolerance experiments;
// requires ResendAfter > 0 or dropped work is lost forever). The rates are
// remembered and re-applied to every incarnation a recovery builds.
func (e *Engine) InjectTransportFaults(drop, dup float64) {
	e.faultMu.Lock()
	e.faultDrop, e.faultDup = drop, dup
	e.faultMu.Unlock()
	e.cur().net.SetFaults(drop, dup)
}

// ForkBranch forks a branch loop from the current frontier (Section 5.2):
// it captures a ForkSpec, assembles a branch engine reading its initial
// vertex states from this loop's snapshot and writing to branchLoop, starts
// it, seeds it with the spec's activations, and replays the residual inputs.
// The branch signals Done when it converges. The caller owns the returned
// engine (Stop it after reading results). Override lets the caller tweak the
// branch configuration (e.g. a different delay bound) before launch; seed,
// when non-nil, runs extra activations under the branch's bootstrap guard —
// use it instead of post-fork Activate calls, which can race an empty
// branch's instant convergence.
func (e *Engine) ForkBranch(branchLoop storage.LoopID, override func(*Config), seed func(*Engine)) (*Engine, ForkSpec, error) {
	// Pin before capturing the spec so a concurrent compaction can never
	// drop versions between the snapshot decision and the pin. The pinned
	// iteration is at most the spec's fork iteration (the frontier only
	// advances), which keeps the pin conservative and safe. The pin is
	// taken twice on purpose: engine-side (compactFloor, for this engine's
	// own periodic compaction) and store-side (the Store.Pin clamp, which
	// also covers direct Compact calls and background compactors the
	// engine never sees).
	e.genMu.RLock()
	pinIter := e.inc.tracker.Notified()
	enginePin := e.pinFork(pinIter)
	storePin := e.cfg.Store.Pin(e.cfg.LoopID, pinIter)
	forkSeq := e.journalSeq() // before the spec: conservative for merges
	spec := e.forkLocked()
	cfg := e.cfg
	e.genMu.RUnlock()
	// Chaos schedules may target the fork instant (crash mid-branch-fork).
	e.fireForkFaults()
	cfg.Kind = BranchLoop
	cfg.LoopID = branchLoop
	cfg.branchObs = e.branchObs
	// An MVCC-style backend upgrades the fork to an O(1) pinned handle: the
	// grab is safe here, after the spec, because the pins above already
	// clamp any compaction below the fork iteration. From now on the branch
	// reads an immutable root instead of racing the parent's live tree.
	var handle storage.Snapshot
	if sn, ok := cfg.Store.(storage.Snapshotter); ok {
		handle = sn.Snapshot(e.cfg.LoopID)
	}
	cfg.Snapshot = &SnapshotSource{Loop: e.cfg.LoopID, UpTo: spec.ForkIter, Handle: handle}
	cfg.Converge = nil
	cfg.MaxIterations = 0
	cfg.StartIteration = 0
	// Branches are short-lived in-process scratch loops: they never ride the
	// wire even when the parent does (override can opt back in).
	cfg.Wire = nil
	if override != nil {
		override(&cfg)
	}
	unpin := func() {
		enginePin()
		storePin()
		if handle != nil {
			handle.Release()
		}
	}
	br, err := New(cfg)
	if err != nil {
		unpin()
		return nil, ForkSpec{}, err
	}
	// Keep the snapshot's versions alive in the parent store until the
	// branch is stopped (lazy snapshot reads happen throughout its life).
	br.onStop = unpin
	br.forkJournalSeq = forkSeq
	br.Start()
	// Guard against the empty instant between Start and the first seed, in
	// which the branch would otherwise appear quiescent and converge with no
	// work done.
	release := br.HoldQuiesce()
	br.Activate(spec.Seeds...)
	br.IngestAll(spec.Residual)
	if seed != nil {
		seed(br)
	}
	release()
	return br, spec, nil
}

// HoldQuiesce acquires an obligation that keeps the loop from being
// considered quiescent (and a branch loop from converging) until the
// returned release function is called. Use it to bracket multi-step seeding.
func (e *Engine) HoldQuiesce() (release func()) {
	tracker := e.cur().tracker
	tok := tracker.AcquireFloor(0)
	var once sync.Once
	return func() { once.Do(func() { tracker.Release(tok) }) }
}

// ActivateStored re-activates every vertex present in the engine's snapshot
// source (checkpoint recovery: after restarting from the last terminated
// iteration, all vertices re-scatter so any work lost in the crash is
// recomputed).
func (e *Engine) ActivateStored() error {
	snap := e.snapshot()
	if snap == nil {
		return errors.New("engine: ActivateStored requires a snapshot source")
	}
	var ids []stream.VertexID
	if err := snap.scan(e.cfg.Store, snap.UpTo, func(r storage.Record) error {
		ids = append(ids, r.Vertex)
		return nil
	}); err != nil {
		return err
	}
	e.Activate(ids...)
	return nil
}

// Reshard stops a settled main loop and returns a replacement running
// newProcs processors (and newPartition, when non-nil) that resumes in place
// over the same store and loop ID. This is the paper's load rebalancing
// (Section 5.1): "the master stops the computation before the modification
// to the partitioning scheme; after the partitioning scheme is modified, the
// computation will restart from the last terminated iteration." The caller
// must pause ingestion around the call; the old engine is stopped on
// success.
func Reshard(e *Engine, newProcs int, newPartition func(stream.VertexID, int) int, settleTimeout time.Duration) (*Engine, error) {
	if e.cfg.Kind != MainLoop {
		return nil, errors.New("engine: Reshard applies to main loops")
	}
	// The documented precondition, enforced: admitted-but-unapplied inputs
	// ride the incarnation that dies with Stop below, and nothing replays
	// them (Reshard is not a crash recovery). Callers must drain or pause
	// the spout first — or use live migration (Migrate), which needs no
	// pause at all.
	if d := e.FlowSnapshot().GateDepth; d > 0 {
		return nil, fmt.Errorf("%w: %d admitted inputs not yet applied", ErrIngestionActive, d)
	}
	if err := e.WaitSettled(settleTimeout); err != nil {
		return nil, err
	}
	resume := e.Notified()
	e.Stop()
	cfg := e.Config()
	cfg.Processors = newProcs
	if cfg.MaxProcessors < newProcs {
		// The replacement re-defaults its slot ceiling: a reshard that grows
		// past the old ceiling should not fail validation, and the old
		// ceiling (defaulted from the old width) carries no intent.
		cfg.MaxProcessors = 0
	}
	if newPartition != nil {
		cfg.Partition = newPartition
	}
	cfg.Snapshot = &SnapshotSource{Loop: cfg.LoopID, UpTo: resume}
	// Resuming over own history: pin the view like a fork would, so the
	// replacement's lazy bootstrap reads are immune to compaction. The
	// Store.Pin clamp covers every backend (MemStore and DiskStore have no
	// handles, only the pin registry); on Snapshotter backends the handle
	// additionally makes the view immutable. The old engine is already
	// stopped, so the grab sees all its commits.
	storePin := cfg.Store.Pin(cfg.LoopID, resume)
	if sn, ok := cfg.Store.(storage.Snapshotter); ok {
		cfg.Snapshot.Handle = sn.Snapshot(cfg.LoopID)
	}
	cfg.StartIteration = resume + 1
	ne, err := New(cfg)
	if err != nil {
		cfg.Snapshot.release()
		storePin()
		return nil, err
	}
	// Held until the replacement stops: its lazy bootstrap reads span its
	// whole life, exactly like a branch's.
	ne.onStop = storePin
	ne.Start()
	return ne, nil
}

// LoadStats returns the number of vertices each processor currently hosts,
// the signal the paper's master uses to decide when to rebalance
// (quarantined processors report zero).
func (e *Engine) LoadStats() []int {
	e.genMu.RLock()
	defer e.genMu.RUnlock()
	out := make([]int, len(e.inc.procs))
	for i, p := range e.inc.procs {
		if p == nil {
			continue
		}
		p.shareMu.Lock()
		out[i] = len(p.commitLog)
		p.shareMu.Unlock()
	}
	return out
}

// PauseProcessor pauses processor i (Figure 8d's fault injection as a
// network partition): its partition stops updating while messages to it
// accumulate, and all in-memory state survives. Use CrashProcessor for true
// crash semantics.
func (e *Engine) PauseProcessor(i int) {
	if p := e.proc(i); p != nil {
		p.setPaused(true)
	}
}

// ResumeProcessor resumes a paused processor.
func (e *Engine) ResumeProcessor(i int) {
	if p := e.proc(i); p != nil {
		p.setPaused(false)
	}
}

// PauseMaster pauses the master (Figure 8c): termination notifications stop,
// so synchronous loops stall immediately and bounded-asynchronous loops run
// until the delay bound is exhausted. State survives; use CrashMaster for
// true crash semantics.
func (e *Engine) PauseMaster() { e.masterPaused.Store(true) }

// ResumeMaster resumes a paused master.
func (e *Engine) ResumeMaster() { e.masterPaused.Store(false) }

// proc returns processor i of the current incarnation (nil when out of range
// or quarantined).
func (e *Engine) proc(i int) *processor {
	e.genMu.RLock()
	defer e.genMu.RUnlock()
	if i < 0 || i >= len(e.inc.procs) {
		return nil
	}
	return e.inc.procs[i]
}

// Config returns a copy of the engine's configuration.
func (e *Engine) Config() Config {
	e.genMu.RLock()
	defer e.genMu.RUnlock()
	return e.cfg
}
