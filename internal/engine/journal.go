package engine

import (
	"sort"
	"sync"

	"tornado/internal/stream"
)

// inputJournal tracks, for the main loop, which external inputs are not yet
// reflected in the snapshot at a given iteration. Entries move through three
// states:
//
//	ingested  — accepted by the ingester, still in flight to the processor
//	applied   — gathered by the destination vertex, commit pending
//	committed — the vertex committed at some iteration; the input's effect
//	            is in the store from that iteration on
//
// A branch forked at iteration i must replay every input that is not
// committed at or before i (Section 5.2: the branch computes over the full
// gathered input even though the approximation lags behind). Inputs replayed
// while still in flight in the main loop are applied by both loops, which is
// consistent: the fork instant includes everything ingested before it.
type inputJournal struct {
	mu        sync.Mutex
	nextSeq   uint64
	entries   map[uint64]*journalEntry
	byVertex  map[stream.VertexID][]uint64 // applied but uncommitted, per vertex
	committed []journalEntry               // committed, retained until pruned
}

type journalEntry struct {
	seq   uint64
	iter  int64 // commit iteration once committed
	tuple stream.Tuple
}

func newInputJournal() *inputJournal {
	return &inputJournal{
		entries:  make(map[uint64]*journalEntry),
		byVertex: make(map[stream.VertexID][]uint64),
	}
}

// Ingested registers a new input and returns its journal sequence.
func (j *inputJournal) Ingested(tuple stream.Tuple) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	seq := j.nextSeq
	j.nextSeq++
	j.entries[seq] = &journalEntry{seq: seq, tuple: tuple}
	return seq
}

// Applied records that vertex v gathered the input with the given sequence.
func (j *inputJournal) Applied(seq uint64, v stream.VertexID) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.entries[seq]; ok {
		j.byVertex[v] = append(j.byVertex[v], seq)
	}
}

// Committed stamps all of v's applied-but-uncommitted inputs with v's commit
// iteration.
func (j *inputJournal) Committed(v stream.VertexID, iter int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	seqs := j.byVertex[v]
	if len(seqs) == 0 {
		return
	}
	delete(j.byVertex, v)
	for _, seq := range seqs {
		if e, ok := j.entries[seq]; ok {
			e.iter = iter
			j.committed = append(j.committed, *e)
			delete(j.entries, seq)
		}
	}
}

// Residual returns, in ingest order, every input not reflected in the
// snapshot at forkIter: in-flight and applied inputs, plus inputs committed
// after forkIter.
func (j *inputJournal) Residual(forkIter int64) []stream.Tuple {
	j.mu.Lock()
	var picked []journalEntry
	for _, e := range j.entries {
		picked = append(picked, *e)
	}
	for _, e := range j.committed {
		if e.iter > forkIter {
			picked = append(picked, e)
		}
	}
	j.mu.Unlock()
	sort.Slice(picked, func(a, b int) bool { return picked[a].seq < picked[b].seq })
	out := make([]stream.Tuple, len(picked))
	for i, e := range picked {
		out[i] = e.tuple
	}
	return out
}

// Prune drops committed inputs stamped at or before k. Every future fork
// happens at an iteration >= k (forks happen at the frontier, which only
// advances), so those inputs are in every future snapshot.
func (j *inputJournal) Prune(k int64) {
	j.mu.Lock()
	kept := j.committed[:0]
	for _, e := range j.committed {
		if e.iter > k {
			kept = append(kept, e)
		}
	}
	j.committed = kept
	j.mu.Unlock()
}

// RecoverResidual extracts, in ingest order, every input whose effect is not
// covered by the checkpoint at resume: all in-flight and applied entries
// (their tokens died with the crashed incarnation) plus inputs committed
// above resume (those versions are truncated before the restart). The
// extracted entries are removed — the recovered incarnation re-ingests them,
// which journals them afresh. Inputs committed at or below resume stay
// retained for future forks.
func (j *inputJournal) RecoverResidual(resume int64) []stream.Tuple {
	j.mu.Lock()
	var picked []journalEntry
	for _, e := range j.entries {
		picked = append(picked, *e)
	}
	j.entries = make(map[uint64]*journalEntry)
	j.byVertex = make(map[stream.VertexID][]uint64)
	kept := j.committed[:0]
	for _, e := range j.committed {
		if e.iter > resume {
			picked = append(picked, e)
		} else {
			kept = append(kept, e)
		}
	}
	j.committed = kept
	j.mu.Unlock()
	sort.Slice(picked, func(a, b int) bool { return picked[a].seq < picked[b].seq })
	out := make([]stream.Tuple, len(picked))
	for i, e := range picked {
		out[i] = e.tuple
	}
	return out
}

// Size returns (uncommitted, committed-retained) entry counts.
func (j *inputJournal) Size() (int, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries), len(j.committed)
}
