package engine

import (
	"testing"
	"time"

	"tornado/internal/datasets"
	"tornado/internal/storage"
	"tornado/internal/stream"
)

// TestSoakEverythingAtOnce is the kitchen-sink integration run: a larger
// evolving graph with removals streamed in waves, concurrent branch queries,
// failure injection, lossy transport, merge-back and a final reshard — ending
// at the exact reference fixed point. Skipped with -short.
func TestSoakEverythingAtOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	tuples := datasets.WithRemovals(datasets.PowerLawGraph(800, 3, 2016), 0.1, 17)
	store := storage.NewMemStore()
	e, err := New(Config{
		Processors:   6,
		DelayBound:   32,
		Kind:         MainLoop,
		LoopID:       storage.MainLoop,
		Store:        store,
		Program:      ssspProg{source: 0},
		ResendAfter:  5 * time.Millisecond,
		Seed:         2016,
		CompactEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.InjectTransportFaults(0.02, 0.02)

	e.Start()
	waves := 5
	per := len(tuples) / waves
	branchID := storage.LoopID(100)
	for w := 0; w < waves; w++ {
		lo, hi := w*per, (w+1)*per
		if w == waves-1 {
			hi = len(tuples)
		}
		e.IngestAll(tuples[lo:hi])
		switch w {
		case 1:
			// Query mid-flight; must be exact for everything ingested so far.
			br, _, err := e.ForkBranch(branchID, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := br.WaitDone(waitFor); err != nil {
				t.Fatal(err)
			}
			checkSSSP(t, br, tuples[:hi])
			br.Stop()
			branchID++
		case 2:
			e.KillProcessor(3)
			time.Sleep(5 * time.Millisecond)
			e.RecoverProcessor(3)
		case 3:
			e.KillMaster()
			time.Sleep(5 * time.Millisecond)
			e.RecoverMaster()
		}
	}
	if err := e.WaitSettled(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)

	// Merge a converged query back, then reshard and keep going.
	br, _, err := e.ForkBranch(branchID, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := br.WaitDone(waitFor); err != nil {
		t.Fatal(err)
	}
	if err := e.AdoptBranch(br); err != nil {
		t.Fatal(err)
	}
	br.Stop()
	checkSSSP(t, e, tuples)

	ne, err := Reshard(e, 3, nil, waitFor)
	if err != nil {
		t.Fatal(err)
	}
	defer ne.Stop()
	extra := datasets.PowerLawGraph(50, 2, 404)
	// Shift the extra vertices into a fresh ID range so they extend rather
	// than duplicate the main graph, then connect them to it.
	for i := range extra {
		extra[i].Src += 10000
		extra[i].Dst += 10000
	}
	ne.IngestAll(extra)
	ne.IngestAll(datasets.PowerLawGraph(0, 0, 1)) // no-op guard
	ne.Ingest(tuples[0])                          // duplicate input: idempotent per-source gathers
	if err := ne.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	all := append(append([]stream.Tuple{}, tuples...), extra...)
	all = append(all, tuples[0])
	checkSSSP(t, ne, all)
}
