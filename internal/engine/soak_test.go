package engine

import (
	"testing"
	"time"

	"tornado/internal/datasets"
	"tornado/internal/storage"
	"tornado/internal/stream"
)

// TestSoakEverythingAtOnce is the kitchen-sink integration run: a larger
// evolving graph with removals streamed in waves, concurrent branch queries,
// failure injection, lossy transport, merge-back and a final reshard — ending
// at the exact reference fixed point. Skipped with -short.
func TestSoakEverythingAtOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	tuples := datasets.WithRemovals(datasets.PowerLawGraph(800, 3, 2016), 0.1, 17)
	store := storage.NewMemStore()
	e, err := New(Config{
		Processors:   6,
		DelayBound:   32,
		Kind:         MainLoop,
		LoopID:       storage.MainLoop,
		Store:        store,
		Program:      ssspProg{source: 0},
		ResendAfter:  5 * time.Millisecond,
		Seed:         2016,
		CompactEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.InjectTransportFaults(0.02, 0.02)

	e.Start()
	waves := 5
	per := len(tuples) / waves
	branchID := storage.LoopID(100)
	for w := 0; w < waves; w++ {
		lo, hi := w*per, (w+1)*per
		if w == waves-1 {
			hi = len(tuples)
		}
		e.IngestAll(tuples[lo:hi])
		switch w {
		case 1:
			// Query mid-flight; must be exact for everything ingested so far.
			br, _, err := e.ForkBranch(branchID, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := br.WaitDone(waitFor); err != nil {
				t.Fatal(err)
			}
			checkSSSP(t, br, tuples[:hi])
			br.Stop()
			branchID++
		case 2:
			e.PauseProcessor(3)
			time.Sleep(5 * time.Millisecond)
			e.ResumeProcessor(3)
		case 3:
			e.PauseMaster()
			time.Sleep(5 * time.Millisecond)
			e.ResumeMaster()
		}
	}
	if err := e.WaitSettled(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)

	// Merge a converged query back, then reshard and keep going.
	br, _, err := e.ForkBranch(branchID, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := br.WaitDone(waitFor); err != nil {
		t.Fatal(err)
	}
	if err := e.AdoptBranch(br); err != nil {
		t.Fatal(err)
	}
	br.Stop()
	checkSSSP(t, e, tuples)

	ne, err := Reshard(e, 3, nil, waitFor)
	if err != nil {
		t.Fatal(err)
	}
	defer ne.Stop()
	extra := datasets.PowerLawGraph(50, 2, 404)
	// Shift the extra vertices into a fresh ID range so they extend rather
	// than duplicate the main graph, then connect them to it.
	for i := range extra {
		extra[i].Src += 10000
		extra[i].Dst += 10000
	}
	ne.IngestAll(extra)
	ne.IngestAll(datasets.PowerLawGraph(0, 0, 1)) // no-op guard
	ne.Ingest(tuples[0])                          // duplicate input: idempotent per-source gathers
	if err := ne.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	all := append(append([]stream.Tuple{}, tuples...), extra...)
	all = append(all, tuples[0])
	checkSSSP(t, ne, all)
}

func tail(evs []RecoveryEvent, n int) []RecoveryEvent {
	if len(evs) > n {
		return evs[len(evs)-n:]
	}
	return evs
}

// TestChaosSoakRecovery is the crash-recovery soak: a seeded fault plan
// crashes two processors and the master at fixed iterations while the
// transport drops and duplicates frames, all under the heartbeat supervisor.
// The run must still end at the exact reference fixed point, with every
// injected crash recovered. Skipped with -short.
func TestChaosSoakRecovery(t *testing.T) {
	runChaosSoakRecovery(t, nil)
}

// TestChaosSoakRecoveryWire is the same crash-recovery soak run over the TCP
// loopback wire: every frame is serialized, CRC-framed and crosses a real
// socket, with socket-level chaos (a hard partition and a byte-corruption
// window) layered on top of the crash schedule and the frame-level
// drop/duplicate faults. Convergence to the exact reference fixed point
// proves zero lost and zero duplicated committed updates across reconnects.
func TestChaosSoakRecoveryWire(t *testing.T) {
	runChaosSoakRecovery(t, &WireSpec{})
}

// heartbeatFor and suspectAfterFor tune the failure detector to the
// transport under test. The in-memory plane delivers by function call, so a
// 5ms beat and a tight 6-interval window hold even mid-replay; the wire adds
// per-frame serialization, CRC and socket hops that — on a small or
// race-instrumented box — stretch heartbeat latency far past that window
// during replay storms, livelocking recovery on false suspicions. Real
// deployments tune detection windows to transport latency for exactly this
// reason: beat slower (less serialization load) and judge over a wider
// window (~400ms — times raceStretch when instrumentation slows every
// serialization further) so only genuine silence trips recovery.
func heartbeatFor(wire *WireSpec) time.Duration {
	if wire != nil {
		return 20 * time.Millisecond * raceStretch
	}
	return 5 * time.Millisecond
}

func suspectAfterFor(wire *WireSpec) int {
	if wire != nil {
		return 20
	}
	return 6
}

// soakWait scales the soak deadlines to the transport: the wire pays gob,
// CRC and a socket hop per frame, which on a one-core or race-instrumented
// box stretches an in-memory seconds-long soak into minutes.
func soakWait(wire *WireSpec) time.Duration {
	if wire != nil {
		return 5 * time.Minute
	}
	return waitFor
}

func runChaosSoakRecovery(t *testing.T, wire *WireSpec) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	// The wire variant runs the same chaos schedule on a smaller graph: it
	// tests the socket machinery (codec, reconnect supervision, corruption
	// defense), not scale — the in-memory variant covers scale — and every
	// recovery replays the whole input log through gob+CRC, so the replay
	// storm must fit the detection window even on one instrumented core.
	vertices := 600
	if wire != nil {
		vertices = 300
	}
	tuples := datasets.WithRemovals(datasets.PowerLawGraph(vertices, 3, 77), 0.1, 7)
	e, err := New(Config{
		Processors:        5,
		DelayBound:        16,
		Kind:              MainLoop,
		LoopID:            storage.MainLoop,
		Store:             storage.NewMemStore(),
		Program:           ssspProg{source: 0},
		ResendAfter:       5 * time.Millisecond,
		Seed:              77,
		HeartbeatInterval: heartbeatFor(wire),
		SuspectAfter:      suspectAfterFor(wire),
		RestartBackoff:    time.Millisecond,
		Wire:              wire,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.InjectTransportFaults(0.02, 0.02)
	plan := []Fault{
		{Kind: FaultCrashProcessor, Proc: 1, AtIteration: 1},
	}
	if wire != nil {
		// Socket-level chaos on top: a hard partition window (every frame
		// vanishes; resend ledgers replay on heal) and a corruption window
		// (every hit is a checksum failure and a dropped conn, never a
		// delivery).
		plan = append(plan,
			Fault{Kind: FaultWirePartition, AtIteration: 2, Delay: 30 * time.Millisecond},
			Fault{Kind: FaultWireCorrupt, AtIteration: 3, Rate: 0.05, Delay: 50 * time.Millisecond},
		)
	}
	e.InjectFaultPlan(FaultPlan{Faults: plan})
	e.Start()
	defer e.Stop()

	// Stream in waves with a crash per wave, each recovered before the next
	// strikes: a planned processor crash, a direct processor crash, then the
	// master — all while the transport keeps dropping and duplicating.
	waves := 4
	per := len(tuples) / waves
	for w := 0; w < waves; w++ {
		lo, hi := w*per, (w+1)*per
		if w == waves-1 {
			hi = len(tuples)
		}
		e.IngestAll(tuples[lo:hi])
		switch w {
		case 1:
			waitUntil(t, soakWait(wire), func() bool { return e.StatsSnapshot().Recoveries >= 1 },
				"planned crash of processor 1 never recovered")
			e.CrashProcessor(3)
		case 2:
			waitUntil(t, soakWait(wire), func() bool { return e.StatsSnapshot().Recoveries >= 2 },
				"crash of processor 3 never recovered")
			e.CrashMaster()
		}
	}
	if wire != nil && e.StatsSnapshot().WireChecksumFailures == 0 {
		// The scheduled FaultWireCorrupt window is only 50ms long and races
		// the box's scheduler — on a slow or instrumented machine it can
		// elapse while no frame is in flight (or while the partition window
		// is still eating frames before they can be corrupted). The
		// corruption *defense* must be exercised deterministically: corrupt
		// half of everything — heartbeats flow constantly — until the CRC
		// catches one, then heal and settle as usual.
		e.SetWireCorrupt(0.5)
		waitUntil(t, soakWait(wire), func() bool {
			return e.StatsSnapshot().WireChecksumFailures > 0
		}, "corruption burst never caught by the CRC")
		e.SetWireCorrupt(0)
	}
	if err := e.WaitSettled(soakWait(wire)); err != nil {
		s := e.StatsSnapshot()
		t.Fatalf("%v (gen=%d crashes=%d recoveries=%d events=%d frontier=%d notified=%d log tail: %+v)",
			err, s.Generation, s.Crashes, s.Recoveries, len(e.RecoveryLog()), s.Frontier, s.Notified, tail(e.RecoveryLog(), 6))
	}
	checkSSSP(t, e, tuples)
	s := e.StatsSnapshot()
	if s.Crashes < 3 || s.Recoveries < 3 {
		t.Fatalf("Crashes = %d, Recoveries = %d, want >= 3 each (log: %+v)",
			s.Crashes, s.Recoveries, e.RecoveryLog())
	}
	if wire != nil {
		if s.WireTxFrames == 0 || s.WireRxFrames == 0 {
			t.Fatalf("wire soak moved no wire frames: tx=%d rx=%d", s.WireTxFrames, s.WireRxFrames)
		}
		if s.WireChecksumFailures == 0 {
			t.Fatalf("corruption window produced no checksum failures (tx=%d)", s.WireTxFrames)
		}
		if s.WireReconnects == 0 {
			t.Fatal("dropped connections produced no supervised reconnects")
		}
	}
}

// TestChaosSoakSurgeOverload is the overload soak: a 10x ingest surge slams
// into a deliberately slowed processor with the whole backpressure stack on
// (admission gate + inbox watermarks), and a planned crash lands mid-surge.
// The queues must stay bounded while the supervisor recovers, and the run
// must still end at the exact reference fixed point — backpressure may delay
// tuples but must never lose or double-apply one, even across an
// incarnation change. Skipped with -short.
func TestChaosSoakSurgeOverload(t *testing.T) {
	runChaosSoakSurgeOverload(t, nil)
}

// TestChaosSoakSurgeOverloadWire reruns the overload soak with the message
// plane on the TCP loopback wire: the surge, the slow processor, the
// mid-surge crash and the backpressure stack all operate across real
// sockets, and the bounded-queue and exact-fixed-point assertions must hold
// unchanged.
func TestChaosSoakSurgeOverloadWire(t *testing.T) {
	runChaosSoakSurgeOverload(t, &WireSpec{})
}

func runChaosSoakSurgeOverload(t *testing.T, wire *WireSpec) {
	if testing.Short() {
		t.Skip("overload soak skipped in -short mode")
	}
	const (
		procs     = 5
		inboxHigh = 256
		maxBatch  = 16
		// wireQueueLen caps each wire peer connection's outbound frame
		// queue for this test, bounding the socket pipeline so the inbox
		// overshoot assertion below can account for it.
		wireQueueLen = 64
	)
	if wire != nil {
		wire.QueueLen = wireQueueLen
	}
	base := datasets.PowerLawGraph(400, 3, 404)
	// As in the recovery soak, the wire variant surges a smaller graph:
	// the bounded-queue and exactness assertions are size-independent, and
	// the serialized replay after the mid-surge crash must fit the failure
	// detection window on an instrumented one-core box.
	surgeVertices := 4000
	if wire != nil {
		surgeVertices = 1600
	}
	surge := datasets.WithRemovals(datasets.PowerLawGraph(surgeVertices, 3, 405), 0.05, 11)
	// Shift the surge into a fresh ID range so it extends the base graph.
	for i := range surge {
		surge[i].Src += 20000
		surge[i].Dst += 20000
	}
	e, err := New(Config{
		Processors:        procs,
		DelayBound:        16,
		DelayBoundCeiling: 64,
		Kind:              MainLoop,
		LoopID:            storage.MainLoop,
		Store:             storage.NewMemStore(),
		Program:           ssspProg{source: 0},
		ResendAfter:       5 * time.Millisecond,
		Seed:              404,
		MaxBatch:          maxBatch,
		MaxPendingInputs:  512,
		InboxHigh:         inboxHigh,
		InboxLow:          64,
		HeartbeatInterval: heartbeatFor(wire),
		SuspectAfter:      suspectAfterFor(wire),
		RestartBackoff:    time.Millisecond,
		Wire:              wire,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.InjectFaultPlan(FaultPlan{Faults: []Fault{
		{Kind: FaultSlowProcessor, Proc: 2, Delay: 100 * time.Microsecond, AtIteration: 1},
		{Kind: FaultCrashProcessor, Proc: 3, AtIteration: 4},
	}})
	e.Start()
	defer e.Stop()

	// Track the deepest inbox seen across the whole run (incarnations
	// included: FlowSnapshot reads the current one).
	peakInbox := make(chan int, 1)
	stopSampling := make(chan struct{})
	go func() {
		peak := 0
		for {
			select {
			case <-stopSampling:
				peakInbox <- peak
				return
			default:
			}
			if m := e.FlowSnapshot().InboxMax; m > peak {
				peak = m
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	// Baseline trickle, then the 10x surge in back-to-back waves with no
	// quiesce barriers — the gate and watermarks are all that stand between
	// the burst and the slow processor 2, while processor 3 crashes mid-way.
	e.IngestAll(base)
	per := len(surge) / 4
	for w := 0; w < 4; w++ {
		lo, hi := w*per, (w+1)*per
		if w == 3 {
			hi = len(surge)
		}
		e.IngestAll(surge[lo:hi])
	}
	waitUntil(t, soakWait(wire), func() bool { return e.StatsSnapshot().Recoveries >= 1 },
		"planned crash of processor 3 never recovered")
	e.SlowProcessor(2, 0) // clear the slowdown so settling is prompt

	if err := e.WaitSettled(soakWait(wire)); err != nil {
		s := e.StatsSnapshot()
		t.Fatalf("%v (gen=%d crashes=%d recoveries=%d frontier=%d notified=%d log tail: %+v)",
			err, s.Generation, s.Crashes, s.Recoveries, s.Frontier, s.Notified, tail(e.RecoveryLog(), 6))
	}
	close(stopSampling)
	peak := <-peakInbox

	// Bounded queues: watermark plus the frame-granularity overshoot (one
	// in-flight MaxBatch frame per sending goroutine), never the ~13k-tuple
	// backlog an unbounded run would buffer.
	margin := 2 * (procs + 2) * maxBatch
	if wire != nil {
		// Credit withdrawal is synchronous shared state for in-memory
		// senders, but frames already serialized into the wire peer queue
		// and kernel socket buffers are beyond recall when the watermark
		// trips: the wire's overshoot legitimately includes that pipeline.
		// The peer queue is capped above so the pipeline stays bounded —
		// the claim is still "watermark + bounded pipeline", never the
		// ~13k-tuple backlog of an unthrottled run.
		margin += wireQueueLen * maxBatch
	}
	if peak > inboxHigh+margin {
		t.Fatalf("inbox peaked at %d during surge, want <= watermark %d + overshoot margin %d",
			peak, inboxHigh, margin)
	}
	fs := e.FlowSnapshot()
	if fs.GateDepth != 0 {
		t.Fatalf("gate depth %d after settling, want 0 (admission credits leaked across recovery)", fs.GateDepth)
	}
	if fs.GatePeak > 512 {
		t.Fatalf("gate peak %d exceeds MaxPendingInputs 512", fs.GatePeak)
	}

	// No tuple lost or double-applied: the throttled, crashed run must land
	// on the same fixed point as an unthrottled reference.
	all := append(append([]stream.Tuple{}, base...), surge...)
	checkSSSP(t, e, all)
	s := e.StatsSnapshot()
	if s.Recoveries < 1 {
		t.Fatalf("Recoveries = %d, want >= 1 (log: %+v)", s.Recoveries, e.RecoveryLog())
	}
}
