package engine

import (
	"tornado/internal/lamport"
	"tornado/internal/obs/trace"
	"tornado/internal/stream"
)

// Messages exchanged over the transport. Processors are nodes 0..P-1, the
// master is node P, the ingester node P+1.

// msgInput carries one external stream tuple to the processor owning the
// routed vertex. Token is the tracker token held on the input's behalf; the
// processor releases it after the destination vertex applies the tuple (and
// has acquired its own dirty token).
type msgInput struct {
	Tuple stream.Tuple
	Token int64
	// JSeq is the input-journal sequence number (main loops only; branches
	// leave it zero and set HasJSeq false).
	JSeq    uint64
	HasJSeq bool
	// Ctx is the causal span context of a sampled delta (zero when the delta
	// is untraced). Exported plain data: a wire codec serializes it as-is.
	Ctx trace.Context
}

// TraceCtx / WithTraceCtx implement trace.Carrier so the transport can
// attribute output-buffer and frame latency without knowing engine types.
func (m msgInput) TraceCtx() trace.Context { return m.Ctx }
func (m msgInput) WithTraceCtx(c trace.Context) any {
	m.Ctx = c
	return m
}

// msgActivate re-activates a vertex without delivering data: the vertex
// becomes dirty and will commit (re-scattering its current state). Branch
// loops are seeded with activations; crash recovery re-activates snapshot
// vertices.
type msgActivate struct {
	To    stream.VertexID
	Token int64
}

// msgUpdate is a committed update (the COMMIT message of the three-phase
// protocol). It is sent to every effective consumer of the committing
// vertex; HasValue is false for consumers the program did not Emit to (they
// only clear their prepare-list entry). Token is held at Iteration+1 until
// the receiver gathers the message.
type msgUpdate struct {
	From, To  stream.VertexID
	Iteration int64
	Token     int64
	Value     any
	HasValue  bool
	// Cum marks a delta-mode cumulative value (EmitCum): the receiver diffs
	// it against its per-producer record instead of accumulating it as-is.
	Cum bool
	// Ctx propagates the causal span context of the traced input delta that
	// (most recently) dirtied the producer; coalesced-away updates leave a
	// span link in the survivor's context (see processor.coalesceUpdate).
	Ctx trace.Context
}

// TraceCtx / WithTraceCtx implement trace.Carrier (see msgInput).
func (m msgUpdate) TraceCtx() trace.Context { return m.Ctx }
func (m msgUpdate) WithTraceCtx(c trace.Context) any {
	m.Ctx = c
	return m
}

// msgPrepare asks a consumer for its iteration number (phase two).
type msgPrepare struct {
	From, To stream.VertexID
	Stamp    lamport.Stamp
}

// msgAck answers a prepare with the consumer's iteration number.
type msgAck struct {
	From, To  stream.VertexID
	Iteration int64
}

// msgFrontier announces that all iterations <= Notified have terminated.
// Processors advance their delay-bound cap and release held-back updates.
type msgFrontier struct {
	Notified int64
}

// msgHalt stops a processor (loop converged or engine stopping).
type msgHalt struct{}

// msgRescan asks a delta-mode processor to re-examine parked pending
// deltas after the effective significance threshold was LOWERED (overload
// boost relaxing): pendings that became significant again are enqueued for
// activation. Raising the threshold needs no message — queued entries are
// simply consumed under the old score.
type msgRescan struct {
	Token int64
}

// msgHeartbeat is a liveness beat sent to the supervisor endpoint (node P+2)
// by every processor (Proc = index) and by the master (Proc = -1). A crashed
// endpoint cannot send, so missed beats are how the supervisor detects
// failures.
type msgHeartbeat struct {
	Proc int
}

// Live-migration protocol (elastic.go). The coordinator — the Migrate caller
// itself, receiving on the incarnation's migration endpoint — freezes the
// moving range at its sources, waits for state to ship and install, then
// publishes the next plan epoch (the cutover) and releases everyone.

// msgMigFreeze tells one source processor to freeze the migrating range:
// owned vertices in R stop starting new commits, vertex-addressed messages
// for them are journaled (tokens held), and once none is mid-prepare the
// source ships their state to Dest.
type msgMigFreeze struct {
	Seq        int64
	R          VertexRange
	From       int // owner filter (-1 = any); matches PlanOverride.From
	Dest       int
	NumSources int // how many msgMigState the destination should expect
}

// MigVertex is one vertex's complete in-memory state crossing processors in
// a msgMigState. State and Pending ride as `any` — programs already
// gob-register their state types (RegisterStateType) for checkpoints, so
// the same registrations cover the wire here.
type MigVertex struct {
	ID          stream.VertexID
	State       any
	Targets     []stream.VertexID
	Added       []stream.VertexID
	Removed     []stream.VertexID
	TargetClock map[stream.VertexID]stream.Timestamp
	GatherSeen  map[stream.VertexID]int64
	PrepareList []stream.VertexID
	Iter        int64
	LastCommit  int64
	Progress    float64
	Dirty       bool
	Activated   bool
	Pending     any
	HasPending  bool
}

// msgMigState ships one source's frozen vertices to the destination
// processor. The source has released the vertices' dirty tokens; the
// coordinator's floor-0 token pins the frontier until the destination
// re-acquires them at install.
type msgMigState struct {
	Seq        int64
	Source     int
	NumSources int
	Vs         []MigVertex
}

// msgMigShipped reports a source's ship to the coordinator.
type msgMigShipped struct {
	Seq    int64
	Source int
	Count  int
}

// msgMigInstalled reports that the destination installed every source's
// state (dirty tokens re-acquired, nothing activated yet).
type msgMigInstalled struct {
	Seq   int64
	Count int
}

// msgMigCutover tells a source the new plan epoch is published: forward the
// freeze journal to the new owner, drop tombstones, and release the range.
type msgMigCutover struct {
	Seq int64
}

// msgMigActivate tells the destination to start the installed vertices
// (dirty ones into the protocol, parked pendings through the delta
// scheduler). Token is the coordinator's frontier pin, handed over so the
// activation can never be passed by termination detection; the destination
// releases it after scheduling.
type msgMigActivate struct {
	Seq   int64
	Token int64
}
