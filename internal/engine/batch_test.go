package engine

import (
	"math"
	"testing"
	"time"

	"tornado/internal/storage"
	"tornado/internal/stream"
)

// countState counts value tuples applied to one vertex.
type countState struct {
	N int64
}

// countProg is a pure input-counting program: no targets, no emissions. Every
// KindValue tuple must be counted exactly once, which makes it a sharp probe
// for duplicate or lost inputs across crash recovery.
type countProg struct{}

func init() {
	RegisterStateType(&countState{})
	RegisterStateType(&sumState{})
}

func (countProg) Init(ctx Context)                            { ctx.SetState(&countState{}) }
func (countProg) Gather(Context, stream.VertexID, int64, any) {}
func (countProg) Scatter(Context)                             {}
func (countProg) OnInput(ctx Context, t stream.Tuple) {
	if t.Kind == stream.KindValue {
		ctx.State().(*countState).N++
	}
}

// sumState/sumProg exercise the Combiner extension: values accumulate, so
// coalescing must sum rather than keep the last writer.
type sumState struct {
	Total int64
}

type sumProg struct{}

func (sumProg) Init(ctx Context)                            { ctx.SetState(&sumState{}) }
func (sumProg) OnInput(Context, stream.Tuple)               {}
func (sumProg) Gather(Context, stream.VertexID, int64, any) {}
func (sumProg) Scatter(Context)                             {}
func (sumProg) Combine(_ stream.VertexID, old, new any) any { return old.(int64) + new.(int64) }

// newBatchProbe builds an engine whose processors exist but never run, so a
// test can drive sendVertex directly and inspect the out-queue.
func newBatchProbe(t *testing.T, prog Program) (*Engine, *processor) {
	t.Helper()
	e, err := New(Config{
		Processors: 1,
		DelayBound: 8,
		Kind:       MainLoop,
		LoopID:     storage.MainLoop,
		Store:      storage.NewMemStore(),
		Program:    prog,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Stop)
	p := e.proc(0)
	if p == nil || !p.batch {
		t.Fatalf("batched dispatch not enabled by default (proc=%v)", p)
	}
	return e, p
}

// TestCoalesceQueueMergesUpdates drives the out-queue directly: consecutive
// same-pair updates must merge in place (newest iteration wins, last-writer
// value, superseded token released), while other pairs and message kinds
// keep their own slots and relative order.
func TestCoalesceQueueMergesUpdates(t *testing.T) {
	e, p := newBatchProbe(t, ssspProg{source: 0})

	tok1 := p.tk.AcquireFloor(1)
	p.sendVertex(2, msgUpdate{From: 1, To: 2, Iteration: 1, Token: tok1, Value: int64(5), HasValue: true})
	tok2 := p.tk.AcquireFloor(2)
	p.sendVertex(2, msgUpdate{From: 1, To: 2, Iteration: 2, Token: tok2, Value: int64(3), HasValue: true})

	if len(p.outQ) != 1 {
		t.Fatalf("outQ has %d entries after same-pair updates; want 1", len(p.outQ))
	}
	m := p.outQ[0].payload.(msgUpdate)
	if m.Iteration != 2 || !m.HasValue || m.Value.(int64) != 3 {
		t.Fatalf("merged update = %+v; want iteration 2, last-writer value 3", m)
	}
	if n := p.tk.TokenCount(); n != 1 {
		t.Fatalf("TokenCount = %d after coalescing; want 1 (superseded token released)", n)
	}
	if c := e.stats.Coalesced.Value(); c != 1 {
		t.Fatalf("Coalesced = %d; want 1", c)
	}

	// A valueless newer update carries the older value forward.
	tok3 := p.tk.AcquireFloor(3)
	p.sendVertex(2, msgUpdate{From: 1, To: 2, Iteration: 3, Token: tok3})
	m = p.outQ[0].payload.(msgUpdate)
	if len(p.outQ) != 1 || m.Iteration != 3 || !m.HasValue || m.Value.(int64) != 3 {
		t.Fatalf("valueless merge = %+v (outQ len %d); want iteration 3 carrying value 3", m, len(p.outQ))
	}

	// A different producer pair gets its own slot; a non-update message is
	// never coalesced; and the original pair still merges into its old slot
	// without disturbing either.
	tok4 := p.tk.AcquireFloor(3)
	p.sendVertex(2, msgUpdate{From: 9, To: 2, Iteration: 3, Token: tok4, Value: int64(1), HasValue: true})
	p.sendVertex(2, msgPrepare{From: 1, To: 2})
	tok5 := p.tk.AcquireFloor(4)
	p.sendVertex(2, msgUpdate{From: 1, To: 2, Iteration: 4, Token: tok5, Value: int64(8), HasValue: true})
	if len(p.outQ) != 3 {
		t.Fatalf("outQ has %d entries; want 3 (merged update, other pair, prepare)", len(p.outQ))
	}
	m = p.outQ[0].payload.(msgUpdate)
	if m.Iteration != 4 || m.Value.(int64) != 8 {
		t.Fatalf("slot 0 after third merge = %+v; want iteration 4 value 8", m)
	}
	if _, ok := p.outQ[2].payload.(msgPrepare); !ok {
		t.Fatalf("slot 2 is %T; prepares must keep their queue position", p.outQ[2].payload)
	}

	// flushOut empties the queue and the index.
	p.flushOut()
	if len(p.outQ) != 0 || len(p.outIdx) != 0 {
		t.Fatalf("flushOut left outQ=%d outIdx=%d", len(p.outQ), len(p.outIdx))
	}
}

// TestCoalesceCombiner: a program implementing Combiner replaces last-writer
// with its own merge function.
func TestCoalesceCombiner(t *testing.T) {
	_, p := newBatchProbe(t, sumProg{})
	if p.combiner == nil {
		t.Fatal("combiner not detected on a Combiner program")
	}
	tok1 := p.tk.AcquireFloor(1)
	p.sendVertex(2, msgUpdate{From: 1, To: 2, Iteration: 1, Token: tok1, Value: int64(5), HasValue: true})
	tok2 := p.tk.AcquireFloor(2)
	p.sendVertex(2, msgUpdate{From: 1, To: 2, Iteration: 2, Token: tok2, Value: int64(3), HasValue: true})
	m := p.outQ[0].payload.(msgUpdate)
	if m.Value.(int64) != 8 {
		t.Fatalf("combined value = %v; want 5+3=8", m.Value)
	}
}

// TestCrashMidFlushExactInputCounts crashes a processor while batched frames
// are in flight and asserts exactly-once input application after supervised
// recovery: the journal must replay everything the crash destroyed (buffered
// frames included) and nothing twice (runs under -race via make chaos).
func TestCrashMidFlushExactInputCounts(t *testing.T) {
	const (
		vertices = 50
		total    = 2000
	)
	e, err := New(Config{
		Processors:        3,
		DelayBound:        8,
		Kind:              MainLoop,
		LoopID:            storage.MainLoop,
		Store:             storage.NewMemStore(),
		Program:           countProg{},
		Seed:              31,
		HeartbeatInterval: 5 * time.Millisecond,
		ResendAfter:       10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()

	tuples := make([]stream.Tuple, total)
	for i := range tuples {
		tuples[i] = stream.Value(stream.Timestamp(i), stream.VertexID(i%vertices), int64(1))
	}

	// First wave lands, then the crash hits while the second wave's frames
	// are still buffering and flushing. The final chunk is held back and
	// ingested only after the crash: its frames land on the dead endpoint, so
	// the run cannot quiesce without an actual supervised recovery — on a
	// fast machine the concurrent waves alone can drain before the crash
	// bites, which used to make this test flaky.
	const tail = 100
	e.IngestAll(tuples[:total/4])
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := total / 4; i < total-tail; i += 100 {
			end := i + 100
			if end > total-tail {
				end = total - tail
			}
			e.IngestAll(tuples[i:end])
		}
	}()
	time.Sleep(2 * time.Millisecond)
	e.CrashProcessor(1)
	<-done
	e.IngestAll(tuples[total-tail:])

	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	var sum int64
	err = e.ScanStates(math.MaxInt64, func(_ stream.VertexID, _ int64, state any) error {
		sum += state.(*countState).N
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != total {
		t.Fatalf("counted %d inputs after crash recovery; want exactly %d", sum, total)
	}
	if s := e.StatsSnapshot(); s.Crashes < 1 || s.Recoveries < 1 {
		t.Fatalf("Crashes = %d, Recoveries = %d; the crash was not exercised", s.Crashes, s.Recoveries)
	}
}

// TestBatchingDisabledStillCorrect pins the escape hatch: DisableBatching
// must reproduce the legacy unbatched behavior and the same fixed point.
func TestBatchingDisabledStillCorrect(t *testing.T) {
	e, err := New(Config{
		Processors:      2,
		DelayBound:      8,
		Kind:            MainLoop,
		LoopID:          storage.MainLoop,
		Store:           storage.NewMemStore(),
		Program:         ssspProg{source: 0},
		Seed:            5,
		DisableBatching: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := e.proc(0); p.batch {
		t.Fatal("DisableBatching left batched dispatch on")
	}
	e.Start()
	defer e.Stop()
	var tuples []stream.Tuple
	for i := 0; i < 40; i++ {
		tuples = append(tuples, stream.AddEdge(stream.Timestamp(i), stream.VertexID(i%8), stream.VertexID((i+1)%8)))
	}
	e.IngestAll(tuples)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
	if c := e.StatsSnapshot().Coalesced; c != 0 {
		t.Fatalf("Coalesced = %d with batching disabled; want 0", c)
	}
}
