package engine

// Elastic partition plans (ROADMAP item 4).
//
// The paper's load rebalancing (Section 5.1) stops the world: Reshard
// replaces the engine wholesale. A PartitionPlan instead versions the
// vertex→processor mapping at runtime: routing reads the current plan
// through one atomic pointer per call, and a live migration (elastic.go)
// publishes the next epoch only after the moved range's state is installed
// at its new owner — the publish IS the cutover. Plans survive crash
// recoveries (they live on the Engine, not the incarnation), so a recovered
// loop re-activates its checkpoint under the elastic routing in force when
// it crashed.

import (
	"math"

	"tornado/internal/stream"
)

// VertexRange is a half-open-ended inclusive range [Lo, Hi] of vertex IDs.
// FullRange covers every vertex.
type VertexRange struct {
	Lo, Hi stream.VertexID
}

// FullRange covers the whole vertex ID space.
func FullRange() VertexRange {
	return VertexRange{Lo: 0, Hi: stream.VertexID(math.MaxUint64)}
}

// Contains reports whether id falls inside the range.
func (r VertexRange) Contains(id stream.VertexID) bool {
	return id >= r.Lo && id <= r.Hi
}

// PlanOverride is one migration's routing delta: vertices inside Range whose
// owner (under every preceding override) is From move to Dest. From < 0
// matches any owner, which is what a plain range migration uses; a scale-in
// uses (FullRange, retiring processor, survivor).
type PlanOverride struct {
	Range VertexRange
	From  int
	Dest  int
}

// PartitionPlan is one epoch of the elastic vertex→processor mapping: the
// configured base partition over BaseN processors, folded through the
// overrides in migration order. Plans are immutable; a migration publishes a
// copy-on-write successor through the engine's atomic pointer.
type PartitionPlan struct {
	// Epoch counts plan publications (0 = the configured base partition).
	Epoch int64
	// BaseN is the processor count the base partition function is evaluated
	// with (Config.Processors; spare slots above it start unused).
	BaseN int
	// Active flags which of the engine's MaxProcessors slots currently own
	// any part of the plan (spares are false until a split lands on them,
	// retired processors false again after a drain-and-merge).
	Active []int8
	// Overrides is the fold of every migration published so far, oldest
	// first. Override lists stay short — one entry per surviving migration —
	// so Owner is a tiny linear pass, not a search structure.
	Overrides []PlanOverride
}

// basePlan is epoch 0: the configured partition, processors 0..baseN-1
// active, spares idle.
func basePlan(baseN, maxP int) *PartitionPlan {
	p := &PartitionPlan{BaseN: baseN, Active: make([]int8, maxP)}
	for i := 0; i < baseN; i++ {
		p.Active[i] = 1
	}
	return p
}

// Owner resolves a vertex to its processor slot under this plan: the base
// partition, then each override applied in publication order.
func (p *PartitionPlan) Owner(id stream.VertexID, base func(stream.VertexID, int) int) int {
	own := base(id, p.BaseN)
	for _, ov := range p.Overrides {
		if ov.Range.Contains(id) && (ov.From < 0 || ov.From == own) {
			own = ov.Dest
		}
	}
	return own
}

// withMove returns the successor plan with one more override. retire marks
// the From processor inactive (drain-and-merge); Dest always becomes active.
func (p *PartitionPlan) withMove(r VertexRange, from, dest int, retire bool) *PartitionPlan {
	next := &PartitionPlan{
		Epoch:     p.Epoch + 1,
		BaseN:     p.BaseN,
		Active:    append([]int8(nil), p.Active...),
		Overrides: append(append([]PlanOverride(nil), p.Overrides...), PlanOverride{Range: r, From: from, Dest: dest}),
	}
	if dest >= 0 && dest < len(next.Active) {
		next.Active[dest] = 1
	}
	if retire && from >= 0 && from < len(next.Active) {
		next.Active[from] = 0
	}
	return next
}

// ActiveCount returns the number of active processor slots.
func (p *PartitionPlan) ActiveCount() int {
	n := 0
	for _, a := range p.Active {
		if a != 0 {
			n++
		}
	}
	return n
}

// PlanStats is a point-in-time view of the elastic routing state for
// observability and the shell's `partitions` command.
type PlanStats struct {
	// Epoch is the current plan epoch (0 = never migrated).
	Epoch int64
	// BaseProcessors / MaxProcessors are the configured partition width and
	// the slot ceiling migrations may scale into.
	BaseProcessors, MaxProcessors int
	// Active flags each slot's plan membership.
	Active []bool
	// Overrides is a copy of the plan's migration fold.
	Overrides []PlanOverride
	// Migrations / MigratedVertices / Aborts are lifetime totals.
	Migrations, MigratedVertices, Aborts int64
}

// PlanStats returns the engine's current elastic routing state.
func (e *Engine) PlanStats() PlanStats {
	p := e.plan.Load()
	s := PlanStats{
		Epoch:            p.Epoch,
		BaseProcessors:   p.BaseN,
		MaxProcessors:    len(p.Active),
		Active:           make([]bool, len(p.Active)),
		Overrides:        append([]PlanOverride(nil), p.Overrides...),
		Migrations:       e.migrations.Value(),
		MigratedVertices: e.migratedVerts.Value(),
		Aborts:           e.migAborts.Value(),
	}
	for i, a := range p.Active {
		s.Active[i] = a != 0
	}
	return s
}

// PlanEpoch returns the current partition-plan epoch.
func (e *Engine) PlanEpoch() int64 { return e.plan.Load().Epoch }
