package engine

import (
	"errors"
	"testing"
	"time"

	"tornado/internal/datasets"
	"tornado/internal/storage"
	"tornado/internal/stream"
)

// newElasticSSSP builds a value-mode SSSP engine with spare processor slots.
func newElasticSSSP(t *testing.T, procs, maxProcs int, seed int64) *Engine {
	t.Helper()
	e, err := New(Config{
		Processors:    procs,
		MaxProcessors: maxProcs,
		DelayBound:    8,
		Kind:          MainLoop,
		LoopID:        storage.MainLoop,
		Store:         storage.NewMemStore(),
		Program:       ssspProg{source: 0},
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestLiveMigrationUnderIngestion is the tentpole acceptance test (value
// mode): half the vertex ID space migrates onto a spare slot WHILE the loop
// keeps ingesting, and the result is still the exact reference fixed point.
// A second migration moves the range again, exercising override folding.
func TestLiveMigrationUnderIngestion(t *testing.T) {
	tuples := datasets.WithRemovals(datasets.PowerLawGraph(240, 3, 83), 0.1, 11)
	e := newElasticSSSP(t, 2, 4, 83)
	e.Start()
	defer e.Stop()

	third := len(tuples) / 3
	e.IngestAll(tuples[:third])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.IngestAll(tuples[third:])
	}()
	if err := e.Migrate(VertexRange{Lo: 0, Hi: 119}, 2); err != nil {
		t.Fatal(err)
	}
	<-done
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)

	st := e.PlanStats()
	if st.Epoch != 1 || st.Migrations != 1 {
		t.Fatalf("PlanStats epoch=%d migrations=%d; want 1/1", st.Epoch, st.Migrations)
	}
	if !st.Active[2] {
		t.Fatalf("destination slot not active in plan: %+v", st.Active)
	}
	if st.MigratedVertices == 0 {
		t.Fatal("migration moved no vertices")
	}
	if loads := e.PartitionLoads(); loads[2].Vertices == 0 {
		t.Fatalf("destination hosts no vertices after migration: %+v", loads)
	}

	// Move the same range again (sources now include the previous
	// destination) and keep streaming: still exact.
	if err := e.Migrate(VertexRange{Lo: 0, Hi: 119}, 1); err != nil {
		t.Fatal(err)
	}
	extra := datasets.PowerLawGraph(240, 1, 85)
	e.IngestAll(extra)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, append(append([]stream.Tuple{}, tuples...), extra...))
	if got := e.PlanEpoch(); got != 2 {
		t.Fatalf("plan epoch %d after two migrations; want 2", got)
	}
}

// TestLiveMigrationDeltaUnderIngestion is the delta-mode twin: pending
// accumulators and the selective-activation queue must survive the hand-off
// mid-stream.
func TestLiveMigrationDeltaUnderIngestion(t *testing.T) {
	tuples := datasets.WithRemovals(datasets.PowerLawGraph(240, 3, 87), 0.1, 13)
	e, err := New(Config{
		Processors:    2,
		MaxProcessors: 4,
		DelayBound:    8,
		Kind:          MainLoop,
		LoopID:        storage.MainLoop,
		Store:         storage.NewMemStore(),
		Delta:         dssspProg{source: 0},
		Seed:          87,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()

	third := len(tuples) / 3
	e.IngestAll(tuples[:third])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.IngestAll(tuples[third:])
	}()
	if err := e.Migrate(VertexRange{Lo: 0, Hi: 119}, 2); err != nil {
		t.Fatal(err)
	}
	<-done
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkDSSSP(t, e, tuples)
	if got := e.PlanEpoch(); got != 1 {
		t.Fatalf("plan epoch %d; want 1", got)
	}
	if s := e.StatsSnapshot(); s.DeltaQueueDepth != 0 {
		t.Fatalf("DeltaQueueDepth = %d after quiesce, want 0", s.DeltaQueueDepth)
	}
}

// TestScaleOutScaleIn exercises the split/merge operations end to end: a
// hot partition splits onto a spare (plan grows), the drained slot retires
// (plan shrinks), spares exhaust with a typed error, and the answer stays
// exact throughout.
func TestScaleOutScaleIn(t *testing.T) {
	tuples := datasets.PowerLawGraph(200, 3, 89)
	e := newElasticSSSP(t, 2, 4, 89)
	e.Start()
	defer e.Stop()

	half := len(tuples) / 2
	e.IngestAll(tuples[:half])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}

	spare, err := e.ScaleOut(-1)
	if err != nil {
		t.Fatal(err)
	}
	if spare != 2 {
		t.Fatalf("ScaleOut picked slot %d; want first spare 2", spare)
	}
	st := e.PlanStats()
	if n := activePlanSlots(st); n != 3 {
		t.Fatalf("%d active slots after scale-out; want 3", n)
	}
	if loads := e.PartitionLoads(); loads[spare].Vertices == 0 {
		t.Fatalf("scaled-out slot hosts no vertices: %+v", loads)
	}
	e.IngestAll(tuples[half:])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)

	if err := e.ScaleIn(spare); err != nil {
		t.Fatal(err)
	}
	st = e.PlanStats()
	if n := activePlanSlots(st); n != 2 || st.Active[spare] {
		t.Fatalf("scale-in did not retire slot %d: %+v", spare, st.Active)
	}
	// The cutover message that clears the drained slot's share entries is
	// processed asynchronously after ScaleIn returns.
	waitUntil(t, waitFor, func() bool { return e.PartitionLoads()[spare].Vertices == 0 },
		"retired slot never released its hosted vertices")
	checkSSSP(t, e, tuples)

	// Exhaust the spare slots: two more splits fit, the third has nowhere
	// to go.
	if _, err := e.ScaleOut(-1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ScaleOut(-1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ScaleOut(-1); !errors.Is(err, ErrNoSpare) {
		t.Fatalf("ScaleOut with a full plan returned %v; want ErrNoSpare", err)
	}
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
}

func activePlanSlots(st PlanStats) int {
	n := 0
	for _, a := range st.Active {
		if a {
			n++
		}
	}
	return n
}

// TestMigrationCrashAborts is the chaos acceptance test: a processor crash
// armed via FaultCrashDuringMigration fires after the freeze and before the
// cutover. The migration must abort with the pre-epoch plan intact, the
// supervised recovery must restore the loop, and the fixed point must stay
// exact — after which a retry of the same migration succeeds.
func TestMigrationCrashAborts(t *testing.T) {
	tuples := datasets.PowerLawGraph(160, 3, 97)
	e, err := New(Config{
		Processors:        3,
		DelayBound:        8,
		Kind:              MainLoop,
		LoopID:            storage.MainLoop,
		Store:             storage.NewMemStore(),
		Program:           ssspProg{source: 0},
		Seed:              97,
		HeartbeatInterval: heartbeatFor(nil),
		SuspectAfter:      suspectAfterFor(nil),
		RestartBackoff:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()

	half := len(tuples) / 2
	e.IngestAll(tuples[:half])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}

	e.InjectFaultPlan(FaultPlan{Faults: []Fault{
		{Kind: FaultCrashDuringMigration, Proc: 1},
	}})
	waitUntil(t, waitFor, func() bool { return e.migCrashArm.Load() > 0 },
		"FaultCrashDuringMigration never armed")

	err = e.Migrate(VertexRange{Lo: 80, Hi: FullRange().Hi}, 2)
	if !errors.Is(err, ErrMigrationAborted) {
		t.Fatalf("Migrate with a mid-flight crash returned %v; want ErrMigrationAborted", err)
	}
	if got := e.PlanEpoch(); got != 0 {
		t.Fatalf("plan epoch %d after aborted migration; want 0 (pre-epoch plan)", got)
	}
	if err := e.WaitSettled(waitFor); err != nil {
		s := e.StatsSnapshot()
		t.Fatalf("%v (gen=%d crashes=%d recoveries=%d log tail: %+v)",
			err, s.Generation, s.Crashes, s.Recoveries, tail(e.RecoveryLog(), 6))
	}
	if s := e.StatsSnapshot(); s.Recoveries < 1 {
		t.Fatalf("Recoveries = %d after injected crash; want >= 1", s.Recoveries)
	}
	abortLogged := false
	for _, ev := range e.RecoveryLog() {
		if ev.Kind == EventMigrationAbort {
			abortLogged = true
		}
	}
	if !abortLogged {
		t.Fatalf("recovery log has no %q event: %+v", EventMigrationAbort, tail(e.RecoveryLog(), 8))
	}

	// The recovered loop still answers exactly...
	e.IngestAll(tuples[half:])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)

	// ...and the same migration, retried without the fault, lands.
	if err := e.Migrate(VertexRange{Lo: 80, Hi: FullRange().Hi}, 2); err != nil {
		t.Fatal(err)
	}
	if got := e.PlanEpoch(); got != 1 {
		t.Fatalf("plan epoch %d after retried migration; want 1", got)
	}
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
}

// TestDeltaParkedPendingSurvivesHandoff pins the selective-activation
// contract across a migration: pendings parked below the (boosted)
// significance threshold must travel with their vertices and stay parked at
// the new owner, then surface through the rescan when the threshold relaxes.
// Losing a parked pending would leave the loop at a wrong fixed point.
func TestDeltaParkedPendingSurvivesHandoff(t *testing.T) {
	tuples := datasets.PowerLawGraph(160, 3, 101)
	e, err := New(Config{
		Processors:    2,
		MaxProcessors: 3,
		DelayBound:    8,
		Kind:          MainLoop,
		LoopID:        storage.MainLoop,
		Store:         storage.NewMemStore(),
		Delta:         dssspProg{source: 0},
		Seed:          101,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()

	half := len(tuples) / 2
	e.IngestAll(tuples[:half])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}

	// Boost the threshold sky-high: every delta from the second ingestion
	// wave parks instead of committing.
	skippedBefore := e.stats.DeltaSkipped.Value()
	e.SetDeltaBoost(1e12)
	e.IngestAll(tuples[half:])
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	if e.stats.DeltaSkipped.Value() == skippedBefore {
		t.Fatal("no pendings parked under boost; the hand-off test is vacuous")
	}

	// Migrate the upper half of the ID space — parked pendings included —
	// onto the spare while the threshold is still boosted.
	if err := e.Migrate(VertexRange{Lo: 80, Hi: FullRange().Hi}, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	if loads := e.PartitionLoads(); loads[2].Vertices == 0 {
		t.Fatalf("spare hosts no vertices after migration: %+v", loads)
	}

	// Relax the threshold: the rescan must find the parked pendings on the
	// NEW owner and drive the loop to the exact base fixed point.
	e.SetDeltaBoost(1)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkDSSSP(t, e, tuples)
}

// TestReshardRejectsActiveIngestion is the regression test for the typed
// Reshard precondition: with admitted-but-unapplied inputs in the admission
// gate, the stop-the-world Reshard must refuse with ErrIngestionActive
// instead of silently dropping the backlog; once the backlog drains the
// same call succeeds.
func TestReshardRejectsActiveIngestion(t *testing.T) {
	tuples := datasets.PowerLawGraph(120, 3, 103)
	e, err := New(Config{
		Processors:       2,
		DelayBound:       8,
		Kind:             MainLoop,
		LoopID:           storage.MainLoop,
		Store:            storage.NewMemStore(),
		Program:          ssspProg{source: 0},
		Seed:             103,
		MaxPendingInputs: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()

	// Pause one processor so its share of the ingested inputs stays
	// admitted-but-unapplied: the gate provably holds depth.
	e.PauseProcessor(1)
	e.IngestAll(tuples)
	waitUntil(t, waitFor, func() bool { return e.FlowSnapshot().GateDepth > 0 },
		"admission gate never held depth with a paused processor")

	if _, err := Reshard(e, 4, nil, waitFor); !errors.Is(err, ErrIngestionActive) {
		t.Fatalf("Reshard over a live ingestion backlog returned %v; want ErrIngestionActive", err)
	}

	e.ResumeProcessor(1)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	ne, err := Reshard(e, 4, nil, waitFor)
	if err != nil {
		t.Fatal(err)
	}
	defer ne.Stop()
	checkSSSP(t, ne, tuples)
}

// TestMigrateRejectsConcurrent pins the one-at-a-time coordinator guard and
// the destination bounds check.
func TestMigrateRejectsConcurrent(t *testing.T) {
	e := newElasticSSSP(t, 2, 3, 107)
	e.Start()
	defer e.Stop()
	e.Ingest(stream.AddEdge(1, 0, 1))
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	if err := e.Migrate(FullRange(), 5); err == nil {
		t.Fatal("Migrate to an out-of-range slot succeeded")
	}
	e.migMu.Lock()
	e.migActive = true
	e.migMu.Unlock()
	if err := e.Migrate(FullRange(), 2); !errors.Is(err, ErrMigrationActive) {
		t.Fatalf("concurrent Migrate returned %v; want ErrMigrationActive", err)
	}
	e.migMu.Lock()
	e.migActive = false
	e.migMu.Unlock()
}
