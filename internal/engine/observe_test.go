package engine

import (
	"fmt"
	"strings"
	"testing"

	"tornado/internal/obs"
	"tornado/internal/storage"
	"tornado/internal/stream"
)

// ringTuples builds a directed cycle 0 -> 1 -> ... -> n-1 -> 0. Every vertex
// has exactly one consumer, which makes the protocol-counter reconciliation
// below exact: each committed update sends at least one COMMIT message.
func ringTuples(n int) []stream.Tuple {
	out := make([]stream.Tuple, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, stream.AddEdge(stream.Timestamp(i+1),
			stream.VertexID(i), stream.VertexID((i+1)%n)))
	}
	return out
}

func TestObservabilityReconciliationAndTrace(t *testing.T) {
	hub := obs.NewHub(obs.HubOptions{TraceCapacity: 1 << 16, TraceSampleEvery: 1})
	e, err := New(Config{
		Processors: 3,
		DelayBound: 4,
		Kind:       MainLoop,
		LoopID:     storage.MainLoop,
		Store:      storage.NewMemStore(),
		Program:    ssspProg{source: 0},
		Seed:       42,
		Obs:        hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	const watched = stream.VertexID(1)
	e.Watch(watched)
	e.Start()
	e.IngestAll(ringTuples(16))
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}

	// Protocol-counter reconciliation after convergence: over trusted
	// channels every PREPARE is answered by exactly one ACK, and on a graph
	// where every vertex has a consumer each commit sent at least one
	// COMMIT (update) message.
	s := e.StatsSnapshot()
	if s.Commits == 0 || s.UpdateMsgs == 0 {
		t.Fatalf("converged run recorded no work: %+v", s)
	}
	if s.AckMsgs != s.PrepareMsgs {
		t.Errorf("AckMsgs = %d, PrepareMsgs = %d; must match after quiescence", s.AckMsgs, s.PrepareMsgs)
	}
	if s.UpdateMsgs < s.Commits {
		t.Errorf("UpdateMsgs = %d < Commits = %d; every ring commit sends an update", s.UpdateMsgs, s.Commits)
	}
	if s.PendingPrepares != 0 {
		t.Errorf("PendingPrepares = %d after quiescence; want 0", s.PendingPrepares)
	}
	if s.Frontier <= 0 {
		t.Errorf("Frontier = %d after converged run; want > 0", s.Frontier)
	}
	if s.Emits == 0 {
		t.Error("Emits = 0; scatter emissions were not counted")
	}

	// The watched vertex's trace shows the three-phase protocol in order:
	// it received or sent a PREPARE before its first COMMIT, with strictly
	// ascending sequence numbers throughout.
	events := e.Trace(watched)
	if len(events) == 0 {
		t.Fatal("Trace(watched) returned no events")
	}
	var lastSeq uint64
	firstPrepare, firstCommit := -1, -1
	for i, ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("event %d out of order: seq %d after %d", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Kind {
		case obs.EvPrepareSend, obs.EvPrepareRecv:
			if firstPrepare < 0 {
				firstPrepare = i
			}
		case obs.EvCommit:
			if firstCommit < 0 {
				firstCommit = i
			}
		}
	}
	if firstCommit < 0 {
		t.Fatalf("trace has no commit event: %v", events)
	}
	if firstPrepare < 0 || firstPrepare > firstCommit {
		t.Fatalf("prepare phase (idx %d) must precede commit (idx %d): %v", firstPrepare, firstCommit, events)
	}

	// Frontier advances are traced against the NoVertex sentinel.
	if adv := hub.Tracer.QueryVertex(obs.NoVertex); len(adv) == 0 {
		t.Error("no frontier-advance events recorded")
	}

	// The registry exposes the per-loop series, reading the live counters.
	var b strings.Builder
	if err := hub.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	series := `{kind="main",loop="0",program="engine.ssspProg"}`
	for _, name := range []string{
		"tornado_commits_total", "tornado_update_msgs_total",
		"tornado_frontier_iteration", "tornado_pending_prepares",
	} {
		if !strings.Contains(out, name+series) {
			t.Errorf("exposition missing %s%s:\n%s", name, series, out)
		}
	}
	if !strings.Contains(out, fmt.Sprintf("tornado_commits_total%s %d", series, s.Commits)) {
		t.Errorf("exposed commits do not match StatsSnapshot (%d):\n%s", s.Commits, out)
	}
	if !strings.Contains(out, "tornado_iteration_commits_count"+series) {
		t.Errorf("iteration-commits histogram missing:\n%s", out)
	}

	// The per-loop /statusz section reports the same snapshot.
	status := hub.StatusSnapshot()
	loop, ok := status["loop/0"].(map[string]any)
	if !ok {
		t.Fatalf("statusz missing loop/0 section: %v", status)
	}
	if got := loop["commits"].(int64); got != s.Commits {
		t.Errorf("statusz commits = %d; want %d", got, s.Commits)
	}

	// Stopping the loop unregisters its series and status section, so
	// ephemeral branch loops cannot leak into the exposition.
	e.Stop()
	b.Reset()
	_ = hub.Registry.WritePrometheus(&b)
	if strings.Contains(b.String(), series) {
		t.Errorf("stopped loop's series leaked:\n%s", b.String())
	}
	if _, ok := hub.StatusSnapshot()["loop/0"]; ok {
		t.Error("stopped loop's statusz section leaked")
	}
}

func TestEngineWithoutHubHasNoObsOverhead(t *testing.T) {
	e := newSSSPEngine(t, 2, 4, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.IngestAll(ringTuples(8))
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	if got := e.Trace(1); got != nil {
		t.Fatalf("Trace without hub = %v; want nil", got)
	}
	e.Watch(1)   // must be a no-op, not a panic
	e.Unwatch(1) // ditto
	s := e.StatsSnapshot()
	if s.Commits == 0 {
		t.Fatal("engine without hub did not run")
	}
}
