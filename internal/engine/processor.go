package engine

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"tornado/internal/delta"
	"tornado/internal/lamport"
	"tornado/internal/obs"
	"tornado/internal/obs/trace"
	"tornado/internal/storage"
	"tornado/internal/stream"
	"tornado/internal/transport"
)

// processor owns a partition of the vertices and runs the session layer: the
// three-phase update protocol, delay bounding and input application. All
// vertex state is confined to the processor goroutine; the only shared
// structures are the tracker (tokens), the store, and a small mutex-guarded
// share used by fork scans.
type processor struct {
	idx int
	eng *Engine
	ep  *transport.Endpoint

	// tk, snap and route are this incarnation's tracker, snapshot source and
	// vertex→node mapping, captured at construction. Processors never read
	// them through the engine: a crash recovery replaces them under the
	// engine's generation lock while waiting for the old processors to drain,
	// and that wait must not depend on the lock.
	tk    *Tracker
	snap  *SnapshotSource
	route func(stream.VertexID) transport.NodeID

	// tr is the engine's protocol tracer (nil when unobserved), cached here
	// with the numeric loop ID so the hot path pays one nil check plus, for
	// sampled-out vertices, one hash.
	tr    *obs.Tracer
	loopU uint64
	// sp is the engine's causal span tracer (nil-safe); message contexts are
	// checked with one bool load before any call touches it.
	sp *trace.Tracer

	vertices   map[stream.VertexID]*vertex
	notified   int64 // highest iteration the master announced terminated
	holdback   map[int64][]msgUpdate
	capBlocked map[stream.VertexID]struct{}

	// Batched dispatch (nil/false when Config.DisableBatching): outgoing
	// vertex messages queue here during one receive window and flush as
	// multi-payload frames at its end. outIdx locates the pending msgUpdate
	// for a (producer, consumer) pair so a newer update coalesces into it in
	// place — in-place merging is what keeps the legacy per-destination send
	// order intact for every other message type.
	batch    bool
	combiner Combiner // non-nil when the program customizes coalescing
	outQ     []outEntry
	outIdx   map[pairKey]int

	// Delta mode (cfg.Delta != nil): gathered messages fold into per-vertex
	// pending slots, and actQ orders vertices with significant pendings so
	// the highest-impact activation commits first. The queue is drained to
	// empty at the end of every receive window, so entries never outlive a
	// window — its depth (deltaDepth, read by the scrape-time gauge) measures
	// in-window scheduling pressure. deltaBase caches dp.Threshold(); the
	// effective threshold multiplies in the engine's overload boost.
	dp         delta.Program
	deltaBase  float64
	actQ       *delta.Queue
	deltaDepth atomic.Int64

	pauseMu   sync.Mutex
	pauseCond *sync.Cond
	paused    bool

	// maxCommit is the highest iteration this partition has committed;
	// written only by the processor goroutine, read by the per-partition
	// frontier-lag gauge at scrape time.
	maxCommit atomic.Int64

	// share exposes commit/dirty information to fork scans (Section 5.2).
	shareMu   sync.Mutex
	commitLog map[stream.VertexID]int64
	dirtySet  map[stream.VertexID]struct{}

	// Live migration (migrate.go): mig is the source-side freeze state,
	// migIn the destination-side install state. Both confined to the
	// processor goroutine.
	mig   *migSource
	migIn *migDest

	// Lifetime load counters read by PartitionLoads (elastic planner).
	commitCount atomic.Int64
	updateCount atomic.Int64
}

// outEntry is one queued outgoing vertex message of the current window.
type outEntry struct {
	node    transport.NodeID
	payload any
}

// pairKey identifies a (producer, consumer) update stream for coalescing.
type pairKey struct {
	from, to stream.VertexID
}

func newProcessor(idx int, eng *Engine, ep *transport.Endpoint, tk *Tracker, snap *SnapshotSource, route func(stream.VertexID) transport.NodeID, startIter int64) *processor {
	p := &processor{
		idx:        idx,
		eng:        eng,
		ep:         ep,
		tk:         tk,
		snap:       snap,
		route:      route,
		tr:         eng.tracer,
		loopU:      uint64(eng.cfg.LoopID),
		sp:         eng.spans,
		vertices:   make(map[stream.VertexID]*vertex),
		notified:   startIter - 1,
		holdback:   make(map[int64][]msgUpdate, 16),
		capBlocked: make(map[stream.VertexID]struct{}, 16),
		commitLog:  make(map[stream.VertexID]int64, 256),
		dirtySet:   make(map[stream.VertexID]struct{}, 64),
		batch:      eng.cfg.MaxBatch > 1,
	}
	if p.batch {
		p.combiner, _ = eng.cfg.Program.(Combiner)
		p.outIdx = make(map[pairKey]int, 64)
	}
	if eng.cfg.Delta != nil {
		p.dp = eng.cfg.Delta
		p.deltaBase = p.dp.Threshold()
		p.actQ = delta.NewQueue()
	}
	p.pauseCond = sync.NewCond(&p.pauseMu)
	return p
}

// effDeltaThreshold is the significance bar a pending delta must clear to be
// scheduled: the program's base threshold times the engine's overload boost
// (>= 1; raised by the degradation ladder, lowered back with a rescan).
func (p *processor) effDeltaThreshold() float64 {
	return p.deltaBase * math.Float64frombits(p.eng.deltaBoost.Load())
}

// cap returns the highest iteration updates may currently commit in:
// lastTerminated + B (Section 4.4). B is read through the engine's dynamic
// bound so the overload controller can widen it mid-run.
func (p *processor) cap() int64 {
	return p.notified + p.eng.delayBound.Load()
}

func (p *processor) run() {
	if p.batch {
		p.runBatched()
		return
	}
	for {
		p.maybePause()
		env, ok := p.ep.Recv()
		if !ok {
			return
		}
		p.maybePause()
		if !p.dispatch(env) {
			return
		}
		p.drainActQ()
		p.migMaybeShip()
	}
}

// runBatched is the vectorized run loop: drain the whole inbox under one
// lock, dispatch every message, then flush the out-queue before blocking
// again. The flush window is therefore exactly one receive window — under
// load the inbox refills while the previous window is processed, so windows
// (and with them frame sizes and coalescing opportunities) grow with
// saturation, while an idle processor flushes immediately and adds no
// latency.
func (p *processor) runBatched() {
	var buf []transport.Envelope
	for {
		p.maybePause()
		batch, ok := p.ep.RecvBatch(buf)
		if !ok {
			return
		}
		for i := range batch {
			p.maybePause()
			if !p.dispatch(batch[i]) {
				return
			}
		}
		// Delta mode: consume the window's significant pendings in priority
		// order before the flush, so the highest-impact activations commit
		// (and coalesce) within the same frame window.
		p.drainActQ()
		p.migMaybeShip()
		p.flushOut()
		buf = batch
	}
}

// dispatch routes one message to its handler; false means halt.
func (p *processor) dispatch(env transport.Envelope) bool {
	switch m := env.Payload.(type) {
	case msgInput:
		p.handleInput(m)
	case msgActivate:
		p.handleActivate(m)
	case msgUpdate:
		p.handleUpdate(m)
	case msgPrepare:
		p.handlePrepare(m)
	case msgAck:
		p.handleAck(m)
	case msgAdopt:
		p.handleAdopt(m)
	case msgFrontier:
		p.handleFrontier(m)
	case msgRescan:
		p.handleRescan(m)
	case msgMigFreeze:
		p.handleMigFreeze(m)
	case msgMigState:
		p.handleMigState(m)
	case msgMigCutover:
		p.handleMigCutover(m)
	case msgMigActivate:
		p.handleMigActivate(m)
	case msgHalt:
		return false
	default:
		panic(fmt.Sprintf("engine: processor %d: unknown message %T", p.idx, env.Payload))
	}
	return true
}

// trace records one protocol event when the vertex is sampled or watched.
func (p *processor) trace(kind obs.EventKind, vertex, peer stream.VertexID, iter int64) {
	if t := p.tr; t != nil && t.Enabled(uint64(vertex)) {
		t.Record(p.loopU, kind, uint64(vertex), uint64(peer), iter)
	}
}

func (p *processor) maybePause() {
	p.pauseMu.Lock()
	for p.paused {
		p.pauseCond.Wait()
	}
	p.pauseMu.Unlock()
}

func (p *processor) setPaused(paused bool) {
	p.pauseMu.Lock()
	p.paused = paused
	p.pauseCond.Broadcast()
	p.pauseMu.Unlock()
}

// ensure returns the vertex, creating it on first touch. New vertices of a
// branch (or recovering) engine bootstrap from the configured snapshot; all
// others run the program's Init.
func (p *processor) ensure(id stream.VertexID) *vertex {
	if v, ok := p.vertices[id]; ok {
		return v
	}
	v := newVertex(id, p.eng.cfg.Seed)
	p.vertices[id] = v
	if snap := p.snap; snap != nil {
		data, _, err := snap.latest(p.eng.cfg.Store, id, snap.UpTo)
		if err == nil {
			decoded, derr := p.eng.cfg.Codec.Decode(data)
			if derr != nil {
				panic(fmt.Sprintf("engine: decode snapshot of vertex %d: %v", id, derr))
			}
			blob, ok := decoded.(vertexBlob)
			if !ok {
				panic(fmt.Sprintf("engine: snapshot of vertex %d is %T, not vertexBlob", id, decoded))
			}
			v.state = blob.State
			for _, t := range blob.Targets {
				v.targets[t] = struct{}{}
			}
			for t, ts := range blob.TargetClock {
				v.targetClock[t] = ts
			}
			if p.dp != nil && blob.HasPending {
				// A persisted unconsumed pending rides the checkpoint; if it
				// is significant under the current threshold (e.g. the boost
				// relaxed since it was parked), re-queue it so recovery and
				// branch forks never strand real mass.
				v.pending, v.hasPending = blob.Pending, true
				p.deltaSchedule(v, p.tk.AcquireFloor(v.iter))
			}
			return v
		}
		if !errors.Is(err, storage.ErrNotFound) {
			panic(fmt.Sprintf("engine: read snapshot of vertex %d: %v", id, err))
		}
	}
	ctx := &vertexContext{p: p, v: v, allowTarget: true}
	if p.dp != nil {
		p.dp.Init(ctx)
	} else {
		p.eng.cfg.Program.Init(ctx)
	}
	return v
}

// deltaSchedule decides what to do with a vertex whose pending slot may have
// changed, taking ownership of tok (a held tracker token): park it with the
// queue entry, or release it when the vertex needs no (new) activation.
func (p *processor) deltaSchedule(v *vertex, tok int64) {
	if !v.hasPending || v.dirty {
		// Nothing pending, or an already-scheduled commit will consume the
		// pending under its own dirty token.
		p.tk.Release(tok)
		return
	}
	prio := p.dp.Priority(&vertexContext{p: p, v: v}, v.pending)
	if _, queued := p.actQ.Priority(v.id); queued {
		// Merged into an existing activation: re-score it in place and keep
		// the OLDER queued token (it sits at the lower floor, so the merged
		// activation still cannot be passed by the frontier).
		p.actQ.Update(v.id, prio)
		p.tk.Release(tok)
		return
	}
	if prio >= p.effDeltaThreshold() {
		p.actQ.Push(v.id, prio, tok)
		p.deltaDepth.Add(1)
		return
	}
	// Sub-threshold: park the pending (selective activation). The token is
	// released, so a loop whose remaining pendings are all insignificant
	// quiesces — that is the delta-mode convergence criterion.
	p.eng.stats.DeltaSkipped.Inc()
	p.tk.Release(tok)
}

// drainActQ consumes the activation queue in priority order: each popped
// vertex is marked dirty (acquiring its own commit token before the queue
// token is released) and offered to the three-phase protocol. Runs at the
// end of every receive window, so the queue is empty whenever the processor
// blocks — scheduling never delays quiescence.
func (p *processor) drainActQ() {
	if p.dp == nil {
		return
	}
	for {
		it, ok := p.actQ.PopMax()
		if !ok {
			return
		}
		p.deltaDepth.Add(-1)
		v := p.vertices[it.ID]
		p.markDirty(v)
		p.tk.Release(it.Token)
		p.maybeStart(v)
	}
}

// handleRescan re-examines parked pendings after the effective threshold was
// lowered; newly significant ones are queued with fresh tokens (acquired
// before the rescan token is released, preserving acquire-before-release).
func (p *processor) handleRescan(m msgRescan) {
	if p.dp != nil {
		for _, v := range p.vertices {
			if !v.hasPending || v.dirty {
				continue
			}
			if _, queued := p.actQ.Priority(v.id); queued {
				continue
			}
			prio := p.dp.Priority(&vertexContext{p: p, v: v}, v.pending)
			if prio >= p.effDeltaThreshold() {
				lower := v.iter
				if v.lastCommit+1 > lower {
					lower = v.lastCommit + 1
				}
				p.actQ.Push(v.id, prio, p.tk.AcquireFloor(lower))
				p.deltaDepth.Add(1)
			}
		}
	}
	p.tk.Release(m.Token)
}

// markDirty acquires the vertex's dirty token at the lower bound of its
// future commit iteration. The vertex's iteration is raised to the token's
// placement so the commit can never land inside a terminated iteration.
func (p *processor) markDirty(v *vertex) {
	if v.dirty {
		return
	}
	v.dirty = true
	lower := v.iter
	if v.lastCommit+1 > lower {
		lower = v.lastCommit + 1
	}
	v.dirtyToken = p.tk.AcquireFloor(lower)
	if v.dirtyToken > v.iter {
		v.iter = v.dirtyToken
	}
	p.shareMu.Lock()
	p.dirtySet[v.id] = struct{}{}
	p.shareMu.Unlock()
}

func (p *processor) handleInput(m msgInput) {
	p.eng.stats.InputMsgs.Inc()
	id := routeVertex(m.Tuple)
	if p.migrating(id) {
		p.mig.journal = append(p.mig.journal, m)
		return
	}
	if p.bounce(id, m) {
		return
	}
	v := p.ensure(id)
	p.trace(obs.EvInput, v.id, 0, v.iter)
	if m.Ctx.Traced() {
		// Inbox dwell closes at dispatch (delivery -> this handler).
		m.Ctx = p.sp.Stage(m.Ctx, trace.StageInbox, p.loopU, uint64(v.id), 0, p.sp.Now())
	}
	work := heldWork{tuple: m.Tuple, token: m.Token, jseq: m.JSeq, hasJSeq: m.HasJSeq, tctx: m.Ctx}
	if v.preparing() {
		v.holdInput = append(v.holdInput, work)
		return
	}
	p.applyWork(v, work)
	p.maybeStart(v)
}

func (p *processor) handleActivate(m msgActivate) {
	if p.migrating(m.To) {
		p.mig.journal = append(p.mig.journal, m)
		return
	}
	if p.bounce(m.To, m) {
		return
	}
	v := p.ensure(m.To)
	p.trace(obs.EvActivate, v.id, 0, v.iter)
	work := heldWork{token: m.Token, activate: true}
	if v.preparing() {
		v.holdInput = append(v.holdInput, work)
		return
	}
	p.applyWork(v, work)
	p.maybeStart(v)
}

// applyWork applies one input or activation: graph deltas mutate the target
// set, payloads go to the program, and the vertex becomes dirty. The work's
// token is released only after the dirty token is acquired, so the frontier
// never passes over the pending commit.
func (p *processor) applyWork(v *vertex, w heldWork) {
	if w.activate {
		v.activated = true
		p.markDirty(v)
	} else {
		ctx := &vertexContext{p: p, v: v, allowTarget: true}
		stale := false
		switch w.tuple.Kind {
		case stream.KindAddEdge, stream.KindRemoveEdge:
			// Event-time gate: a retransmitted edge operation must not
			// override a newer one for the same target (at-least-once
			// delivery does not preserve order across retransmissions).
			if last, seen := v.targetClock[w.tuple.Dst]; seen && w.tuple.Time < last {
				stale = true
				break
			}
			v.targetClock[w.tuple.Dst] = w.tuple.Time
			if w.tuple.Kind == stream.KindAddEdge {
				ctx.AddTarget(w.tuple.Dst)
			} else {
				ctx.RemoveTarget(w.tuple.Dst)
			}
		}
		if !stale {
			if p.dp != nil {
				p.dp.OnInput(ctx, w.tuple)
			} else {
				p.eng.cfg.Program.OnInput(ctx, w.tuple)
			}
			p.markDirty(v)
		}
		if w.tctx.Traced() {
			// The delta's state change has landed: close the process stage
			// and park the context on the vertex for commit attribution.
			p.adoptTraceCtx(v, p.sp.Stage(w.tctx, trace.StageProcess,
				p.loopU, uint64(v.id), 0, p.sp.Now()))
		}
		if p.eng.journal != nil && w.hasJSeq {
			p.eng.journal.Applied(w.jseq, v.id)
		}
		// The input has landed on its vertex: hand the admission credit back
		// so the gate tracks unapplied inputs, not unterminated iterations.
		if g := p.eng.ingestGate; g != nil {
			g.Release(1)
		}
	}
	p.tk.Release(w.token)
}

func (p *processor) handleUpdate(m msgUpdate) {
	p.updateCount.Add(1)
	if p.migrating(m.To) {
		p.mig.journal = append(p.mig.journal, m)
		return
	}
	if p.bounce(m.To, m) {
		return
	}
	// Delay bounding (Section 4.4): updates committed at the cap iteration
	// are not gathered until the frontier advances. The producer has
	// committed either way, so it stops blocking our own update immediately
	// — only the observation of its value is delayed. Without this split a
	// consumer waiting on a held-back producer could pin the frontier below
	// the cap forever.
	if m.Iteration >= p.cap() {
		v := p.ensure(m.To)
		p.trace(obs.EvHoldback, v.id, m.From, m.Iteration)
		delete(v.prepareList, m.From)
		p.holdback[m.Iteration] = append(p.holdback[m.Iteration], m)
		p.maybeStart(v)
		return
	}
	p.gatherUpdate(m)
}

func (p *processor) gatherUpdate(m msgUpdate) {
	v := p.ensure(m.To)
	p.trace(obs.EvGather, v.id, m.From, m.Iteration)
	if m.Ctx.Traced() {
		// Inbox dwell (including delay-bound holdback) closes at gather.
		m.Ctx = p.sp.Stage(m.Ctx, trace.StageInbox, p.loopU, uint64(m.To), uint64(m.From), p.sp.Now())
	}
	// Causality (Eq. 1): observing an update stamped i forces τ(x) > i.
	if m.Iteration+1 > v.iter {
		v.iter = m.Iteration + 1
	}
	// The producer has committed: it no longer blocks our own update.
	delete(v.prepareList, m.From)
	// Per-producer monotonicity: a producer's commits carry strictly
	// increasing iterations, so an update at or below the last gathered one
	// is a retransmission-reordered stale value and must be discarded
	// (Section 5.3).
	if m.HasValue {
		if last, seen := v.gatherSeen[m.From]; !seen || m.Iteration > last {
			v.gatherSeen[m.From] = m.Iteration
			ctx := &vertexContext{p: p, v: v}
			if p.dp != nil {
				// Delta mode: the message becomes a local delta (diffed
				// against the per-producer record when cumulative) and folds
				// into the pending slot instead of dirtying the vertex; the
				// scheduler decides whether the merged pending is worth an
				// activation.
				if d, ok := p.dp.Gather(ctx, m.From, m.Value, m.Cum); ok {
					if v.hasPending {
						v.pending = p.dp.Accumulate(v.pending, d)
						p.eng.stats.DeltaMerged.Inc()
					} else {
						v.pending, v.hasPending = d, true
					}
					if m.Ctx.Traced() {
						p.adoptTraceCtx(v, p.sp.Stage(m.Ctx, trace.StageProcess,
							p.loopU, uint64(m.To), uint64(m.From), p.sp.Now()))
					}
				}
				// Significant pendings commit through the activation queue in
				// priority order. Everything else must STILL commit this
				// window: Gather may rewrite the per-producer record even when
				// it yields no delta, and a parked pending has to reach the
				// blob — quiescent checkpoints must equal in-memory state or
				// branch forks and adoption silently lose records. The no-op
				// commit emits nothing, so selective activation still saves
				// its update messages. markDirty acquires its commit token
				// before the message token is released.
				if !v.dirty && v.hasPending {
					prio := p.dp.Priority(ctx, v.pending)
					if _, queued := p.actQ.Priority(v.id); queued {
						// Merged into an existing activation: re-score it in
						// place; the queued (older) token keeps the floor.
						p.actQ.Update(v.id, prio)
						p.tk.Release(m.Token)
					} else if prio >= p.effDeltaThreshold() {
						p.actQ.Push(v.id, prio, m.Token)
						p.deltaDepth.Add(1)
					} else {
						// Sub-threshold: park the pending (selective
						// activation) but persist it and the gathered record.
						p.eng.stats.DeltaSkipped.Inc()
						p.markDirty(v)
						p.tk.Release(m.Token)
					}
				} else {
					if !v.dirty {
						p.markDirty(v)
					}
					p.tk.Release(m.Token)
				}
				p.maybeStart(v)
				return
			}
			p.eng.cfg.Program.Gather(ctx, m.From, m.Iteration, m.Value)
			p.markDirty(v)
			if m.Ctx.Traced() {
				p.adoptTraceCtx(v, p.sp.Stage(m.Ctx, trace.StageProcess,
					p.loopU, uint64(m.To), uint64(m.From), p.sp.Now()))
			}
		}
	}
	p.tk.Release(m.Token)
	p.maybeStart(v)
}

// adoptTraceCtx parks a traced context on the vertex so the next commit is
// attributed to it. When a different trace already sits there, the older one
// is coalesced: it records its terminal span linking to the newcomer, and the
// newcomer carries a link back — latency absorbed by batching stays visible.
func (p *processor) adoptTraceCtx(v *vertex, ctx trace.Context) {
	if !ctx.Traced() {
		return
	}
	if v.tctx.Traced() && v.tctx.Trace != ctx.Trace {
		old := v.tctx
		old.Link = ctx.Trace
		p.sp.Stage(old, trace.StageCoalesce, p.loopU, uint64(v.id), 0, p.sp.Now())
		ctx.Link = old.Trace
	}
	v.tctx = ctx
}

func (p *processor) handlePrepare(m msgPrepare) {
	// A prepare for a vertex that already shipped is answered from its
	// tombstone: the reply carries the ship-time iteration, which the real
	// owner can only have raised since — indistinguishable from an ack
	// legally racing the consumer's own commit.
	if mig := p.mig; mig != nil && mig.shipped {
		if iter, gone := mig.tomb[m.To]; gone {
			p.eng.clock.Witness(m.Stamp.Time)
			p.eng.stats.AckMsgs.Inc()
			p.sendVertex(m.From, msgAck{From: m.To, To: m.From, Iteration: iter})
			return
		}
	}
	if p.bounce(m.To, m) {
		return
	}
	v := p.ensure(m.To)
	p.trace(obs.EvPrepareRecv, v.id, m.From, v.iter)
	p.eng.clock.Witness(m.Stamp.Time)
	v.prepareList[m.From] = struct{}{}
	// Only acknowledge producers whose update happened before our own
	// in-flight update; later ones wait until we commit (Figure 3,
	// OnReceivePrepare). The Lamport order makes this deadlock-free.
	if !v.preparing() || m.Stamp.Before(v.stamp) {
		p.eng.stats.AckMsgs.Inc()
		p.trace(obs.EvAckSend, v.id, m.From, v.iter)
		p.sendVertex(m.From, msgAck{From: v.id, To: m.From, Iteration: v.iter})
	} else {
		v.pendingAcks = append(v.pendingAcks, m.From)
	}
}

func (p *processor) handleAck(m msgAck) {
	if p.bounce(m.To, m) {
		return
	}
	v, ok := p.vertices[m.To]
	if !ok || !v.preparing() {
		return // stale ack (e.g. duplicate delivery)
	}
	p.trace(obs.EvAckRecv, v.id, m.From, m.Iteration)
	if m.Iteration > v.iter {
		v.iter = m.Iteration
	}
	if _, owed := v.waiting[m.From]; owed {
		delete(v.waiting, m.From)
		p.eng.pendingPrepares.Add(-1)
	}
	if len(v.waiting) == 0 {
		p.commit(v)
	}
}

func (p *processor) handleFrontier(m msgFrontier) {
	if m.Notified <= p.notified {
		return
	}
	// Flush before raising the cap: updates queued so far committed under
	// the old cap, and a coalescing window must never span a cap change
	// (DESIGN §8) — the delay bound's accounting assumes a frame's updates
	// were all admissible when they were committed.
	if p.batch {
		p.flushOut()
	}
	p.notified = m.Notified
	c := p.cap()
	// Release held-back updates that are now below the cap.
	for iter, msgs := range p.holdback {
		if iter < c {
			delete(p.holdback, iter)
			for _, u := range msgs {
				p.gatherUpdate(u)
			}
		}
	}
	// Retry vertices whose commit was blocked by the old cap.
	if len(p.capBlocked) > 0 {
		blocked := make([]stream.VertexID, 0, len(p.capBlocked))
		for id := range p.capBlocked {
			blocked = append(blocked, id)
		}
		for _, id := range blocked {
			delete(p.capBlocked, id)
			p.maybeStart(p.vertices[id])
		}
	}
}

// maybeStart begins the vertex's update (phase two, or a direct commit) when
// permitted: the vertex must be dirty, must not already be preparing, and
// must not be involved in any producer's preparation.
func (p *processor) maybeStart(v *vertex) {
	if v == nil || v.preparing() || !v.dirty || len(v.prepareList) > 0 {
		return
	}
	// A frozen migrating vertex must not start a new commit: it ships as
	// dirty and the new owner starts it after the cutover.
	if p.migrating(v.id) {
		return
	}
	lower := v.iter
	if v.lastCommit+1 > lower {
		lower = v.lastCommit + 1
	}
	c := p.cap()
	if lower > c {
		p.capBlocked[v.id] = struct{}{}
		return
	}
	cons := v.effectiveConsumers()
	// A vertex committing at the cap can skip the prepare phase: no consumer
	// iteration can exceed the cap (Section 4.4). So can a vertex with no
	// consumers.
	if (lower == c && !p.eng.cfg.DisablePrepareSkip) || len(cons) == 0 {
		v.stamp = lamport.Stamp{Time: p.eng.clock.Tick(), Owner: uint64(v.id)}
		p.commit(v)
		return
	}
	v.stamp = lamport.Stamp{Time: p.eng.clock.Tick(), Owner: uint64(v.id)}
	for _, t := range cons {
		v.waiting[t] = struct{}{}
	}
	p.eng.stats.PrepareMsgs.Add(int64(len(cons)))
	p.eng.pendingPrepares.Add(int64(len(cons)))
	for _, t := range cons {
		p.trace(obs.EvPrepareSend, v.id, t, lower)
		p.sendVertex(t, msgPrepare{From: v.id, To: t, Stamp: v.stamp})
	}
}

// commit is phase three: fix the iteration number, run the user Scatter,
// persist the new version, propagate COMMIT messages, answer deferred
// prepares, and finally apply inputs that arrived during the preparation.
func (p *processor) commit(v *vertex) {
	tau := v.iter
	if v.lastCommit+1 > tau {
		tau = v.lastCommit + 1
	}
	// tau may exceed this processor's cap view when an ACK arrived from a
	// consumer whose processor has already observed a newer frontier; it is
	// still bounded by the global cap (consumer iterations never exceed it)
	// and cannot fall into a terminated iteration (the dirty token pins the
	// global frontier at or below it).
	if d := p.eng.cfg.CommitDelay; d != nil {
		if delay := d(p.idx); delay > 0 {
			time.Sleep(delay)
		}
	}
	if ns := p.eng.slow[p.idx].Load(); ns > 0 {
		time.Sleep(time.Duration(ns)) // injected slow-consumer fault
	}
	v.iter = tau
	v.lastCommit = tau
	if tau > p.maxCommit.Load() {
		p.maxCommit.Store(tau)
	}
	p.trace(obs.EvCommit, v.id, 0, tau)

	// User scatter collects emissions.
	v.emits = v.emits[:0]
	ctx := &vertexContext{p: p, v: v, allowEmit: true}
	if p.dp != nil {
		// A queued activation for this vertex is satisfied by this commit
		// (and consuming the pending would strand the entry): drop it and
		// release its parked token — the dirty token is still held.
		if it, ok := p.actQ.Remove(v.id); ok {
			p.deltaDepth.Add(-1)
			p.tk.Release(it.Token)
		}
		// Consume the pending if it is significant or the commit was forced
		// by an activation (recovery replay, branch seed — those must fold
		// everything for exactness). A sub-threshold pending stays parked
		// and is persisted with the state below.
		pend := p.dp.Identity()
		if v.hasPending && (v.activated ||
			p.dp.Priority(&vertexContext{p: p, v: v}, v.pending) >= p.effDeltaThreshold()) {
			pend = v.pending
			v.pending, v.hasPending = nil, false
			p.eng.stats.DeltaApplied.Inc()
		}
		p.dp.Update(ctx, pend)
	} else {
		p.eng.cfg.Program.Scatter(ctx)
	}

	// Persist before propagating: when the iteration terminates, all of its
	// versions are already in the store (checkpoint property, Section 5.3).
	blob := vertexBlob{State: v.state, Targets: sortedIDs(v.targets), TargetClock: cloneClock(v.targetClock),
		Pending: v.pending, HasPending: v.hasPending}
	data, err := p.eng.cfg.Codec.Encode(blob)
	if err != nil {
		panic(fmt.Sprintf("engine: encode vertex %d: %v", v.id, err))
	}
	if err := p.eng.cfg.Store.Put(p.eng.cfg.LoopID, v.id, tau, data); err != nil {
		panic(fmt.Sprintf("engine: persist vertex %d: %v", v.id, err))
	}
	p.tk.RecordCommit(tau, v.progress)
	v.progress = 0
	p.eng.stats.Commits.Inc()
	p.commitCount.Add(1)
	if p.eng.journal != nil {
		p.eng.journal.Committed(v.id, tau)
	}

	// Close the traced delta's commit stage (apply -> version persisted) and
	// register the commit for frontier-lag attribution. The restamped context
	// is handed to exactly ONE outgoing update (the first, below): a trace is
	// a causal path through the propagation, not the delta's whole cone —
	// with fanout f a cone-traced commit would amplify into ~f^depth traced
	// messages and 1% head sampling would degenerate into tracing half the
	// message plane (the trace_overhead bench gate pins this).
	var tctx trace.Context
	if v.tctx.Traced() {
		tctx = p.sp.Stage(v.tctx, trace.StageCommit, p.loopU, uint64(v.id), 0, p.sp.Now())
		p.eng.noteTracedCommit(tctx, tau)
		v.tctx = trace.Context{}
	}

	// Propagate: every effective consumer gets a COMMIT message; those the
	// program emitted to carry the value. Message tokens live at tau+1 and
	// are acquired before the dirty token is released.
	cons := v.effectiveConsumers()
	carried := make(map[stream.VertexID]bool, len(v.emits))
	nmsgs := 0
	for _, e := range v.emits {
		tok := p.tk.AcquireFloor(tau + 1)
		p.sendVertex(e.to, msgUpdate{From: v.id, To: e.to, Iteration: tau, Token: tok, Value: e.value, HasValue: true, Cum: e.cum, Ctx: tctx})
		tctx = trace.Context{}
		carried[e.to] = true
		nmsgs++
	}
	for _, t := range cons {
		if !carried[t] {
			tok := p.tk.AcquireFloor(tau + 1)
			p.sendVertex(t, msgUpdate{From: v.id, To: t, Iteration: tau, Token: tok, Ctx: tctx})
			tctx = trace.Context{}
			nmsgs++
		}
	}
	p.eng.stats.UpdateMsgs.Add(int64(nmsgs))

	// Close out the update.
	v.emits = nil
	clear(v.added)
	clear(v.removed)
	v.dirty = false
	v.activated = false
	v.stamp = lamport.Stamp{}
	p.shareMu.Lock()
	delete(p.dirtySet, v.id)
	p.commitLog[v.id] = tau
	p.shareMu.Unlock()
	if v.dirtyToken >= 0 {
		p.tk.Release(v.dirtyToken)
		v.dirtyToken = -1
	}

	// Answer prepares deferred during our update (Figure 3, OnCommitUpdate).
	if len(v.pendingAcks) > 0 {
		p.eng.stats.AckMsgs.Add(int64(len(v.pendingAcks)))
		for _, producer := range v.pendingAcks {
			p.trace(obs.EvAckSend, v.id, producer, v.iter)
			p.sendVertex(producer, msgAck{From: v.id, To: producer, Iteration: v.iter})
		}
		v.pendingAcks = v.pendingAcks[:0]
	}

	// Gather the inputs that arrived during the preparation; they may make
	// the vertex dirty again and trigger the protocol anew.
	if len(v.holdInput) > 0 {
		held := v.holdInput
		v.holdInput = nil
		for _, w := range held {
			p.applyWork(v, w)
		}
		p.maybeStart(v)
	}
}

// sendVertex routes a vertex-addressed message to its owning processor:
// immediately in legacy mode, via the out-queue in batched mode. A queued
// msgUpdate superseded by a newer one for the same (producer, consumer) pair
// coalesces into the earlier queue slot.
func (p *processor) sendVertex(to stream.VertexID, payload any) {
	if !p.batch {
		p.ep.Send(p.route(to), payload)
		return
	}
	if m, ok := payload.(msgUpdate); ok {
		key := pairKey{from: m.From, to: m.To}
		if i, pending := p.outIdx[key]; pending {
			old := p.outQ[i].payload.(msgUpdate)
			p.outQ[i].payload = p.coalesceUpdate(old, m)
			return
		}
		p.outIdx[key] = len(p.outQ)
	}
	p.outQ = append(p.outQ, outEntry{node: p.route(to), payload: payload})
}

// coalesceUpdate merges a pending update with a newer one from the same
// producer to the same consumer. The merged message carries the newer commit
// iteration; the value is the program's Combine when it implements Combiner,
// otherwise last-writer (safe because per-producer monotonic discard already
// lets a consumer observe only the newest of consecutive updates — dropping
// the older one realizes a schedule retransmission reordering could have
// produced anyway). A valueless newer update (consumer fell out of the emit
// set) carries the older value forward: a no-value COMMIT only clears
// prepare state, which the merged update does regardless.
//
// Token discipline: the newer token sits at the newer tau+1 >= the older
// token's placement, and both are held at this instant, so releasing the
// older one preserves the tracker's acquire-before-release invariant.
func (p *processor) coalesceUpdate(old, next msgUpdate) msgUpdate {
	merged := next
	if old.HasValue {
		switch {
		case !next.HasValue:
			merged.Value, merged.HasValue, merged.Cum = old.Value, true, old.Cum
		case p.dp != nil:
			if next.Cum {
				// A newer cumulative value supersedes whatever preceded it
				// (it already embodies every earlier delta): last-writer.
			} else {
				// A plain delta folds into the pending message with the
				// program's accumulator — delta merge IS the combiner. The
				// merged value keeps the older message's cumulative flag
				// (cum ⊕ delta is the newer cumulative value).
				merged.Value = p.dp.Accumulate(old.Value, next.Value)
				merged.Cum = old.Cum
			}
		case p.combiner != nil:
			merged.Value = p.combiner.Combine(next.To, old.Value, next.Value)
		}
	}
	// Trace batching visibility: the coalesced-away update's trace records
	// its terminal span linking to the survivor, and the survivor's context
	// carries a link back; a traced old context survives into an untraced
	// newer update outright.
	if old.Ctx.Traced() {
		if merged.Ctx.Traced() && merged.Ctx.Trace != old.Ctx.Trace {
			oc := old.Ctx
			oc.Link = merged.Ctx.Trace
			p.sp.Stage(oc, trace.StageCoalesce, p.loopU, uint64(next.To), uint64(next.From), p.sp.Now())
			merged.Ctx.Link = old.Ctx.Trace
		} else if !merged.Ctx.Traced() {
			merged.Ctx = old.Ctx
		}
	}
	p.tk.Release(old.Token)
	p.eng.stats.Coalesced.Inc()
	return merged
}

// flushOut ships the window's queued messages in order and flushes the
// endpoint's transport buffers. Called at the end of every receive window
// (so the processor never blocks on an unflushed queue) and before applying
// a frontier advance (so no coalesced update ever merges commits made under
// different iteration caps).
func (p *processor) flushOut() {
	if len(p.outQ) == 0 {
		return // every processor send funnels through the queue, so the transport buffer is empty too
	}
	for i := range p.outQ {
		p.ep.Send(p.outQ[i].node, p.outQ[i].payload)
		p.outQ[i] = outEntry{}
	}
	p.outQ = p.outQ[:0]
	clear(p.outIdx)
	p.ep.Flush()
}

// forkScan returns the fork seed set of this partition: vertices whose last
// commit is at or after forkIter, plus currently dirty vertices. Together
// with the journal residual these cover every effect missing from the
// snapshot at forkIter.
func (p *processor) forkScan(forkIter int64) []stream.VertexID {
	p.shareMu.Lock()
	defer p.shareMu.Unlock()
	seen := make(map[stream.VertexID]struct{})
	for id, lc := range p.commitLog {
		if lc >= forkIter {
			seen[id] = struct{}{}
		}
	}
	for id := range p.dirtySet {
		seen[id] = struct{}{}
	}
	return sortedIDs(seen)
}

// routeVertex returns the vertex an input tuple is routed to: edge tuples go
// to the producer endpoint (the owner of the out-edge list), payloads to
// their destination.
func routeVertex(t stream.Tuple) stream.VertexID {
	switch t.Kind {
	case stream.KindAddEdge, stream.KindRemoveEdge:
		return t.Src
	default:
		return t.Dst
	}
}
