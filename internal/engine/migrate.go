package engine

// Processor-side live migration machinery (the coordinator lives in
// elastic.go). A source freezes the moving range, journals traffic for it,
// drains in-flight prepares, ships state, answers post-ship prepares from
// tombstones, and forwards the journal to the new owner at cutover. The
// destination installs shipped state without activating it, then starts it
// when the coordinator confirms the plan flipped.

import (
	"sort"

	"tornado/internal/stream"
	"tornado/internal/transport"
)

// migSource is a source processor's freeze state: set by msgMigFreeze,
// cleared by msgMigCutover (or dropped with the incarnation on abort — the
// journaled inputs were never marked applied, so crash recovery replays
// them from the input journal).
type migSource struct {
	seq        int64
	r          VertexRange
	dest       int
	numSources int
	shipped    bool
	// journal holds vertex-addressed messages (msgInput, msgActivate,
	// msgUpdate, msgAdopt) for migrating vertices, tokens still held inside
	// the messages; forwarded to the new owner at cutover.
	journal []any
	// tomb maps each shipped vertex to its iteration at ship time, so
	// prepares arriving after the state left are still answered (the reply
	// is indistinguishable from an ack legally racing a consumer commit).
	tomb map[stream.VertexID]int64
}

// migDest is a destination processor's install state: created by the first
// msgMigState of a migration, cleared by msgMigActivate.
type migDest struct {
	seq    int64
	expect int
	got    int
	ids    []stream.VertexID
}

// migrating reports whether id is a frozen-but-still-owned vertex of the
// in-flight migration: traffic for it is journaled. Once the plan flips the
// route check fails and the same traffic bounces to the new owner instead.
func (p *processor) migrating(id stream.VertexID) bool {
	return p.mig != nil && p.mig.r.Contains(id) && p.route(id) == transport.NodeID(p.idx)
}

// bounce re-routes a vertex-addressed message this processor does not own
// through the current plan (an in-flight frame overtaken by a cutover, or a
// retransmission addressed to a pre-migration owner). Returns true when the
// message was forwarded. Running before ensure() is what prevents
// misdirected frames from ghost-creating vertices on the old owner.
func (p *processor) bounce(id stream.VertexID, m any) bool {
	if p.route(id) == transport.NodeID(p.idx) {
		return false
	}
	p.eng.migBounced.Inc()
	p.sendVertex(id, m)
	return true
}

func (p *processor) handleMigFreeze(m msgMigFreeze) {
	p.mig = &migSource{seq: m.Seq, r: m.R, dest: m.Dest, numSources: m.NumSources,
		tomb: make(map[stream.VertexID]int64)}
	// Held-back updates addressed to migrating vertices move to the journal
	// now: handleFrontier must never gather into a frozen vertex, and the
	// new owner applies them under its own cap after the hand-off.
	for iter, msgs := range p.holdback {
		keep := msgs[:0]
		for _, u := range msgs {
			if p.migrating(u.To) {
				p.mig.journal = append(p.mig.journal, u)
			} else {
				keep = append(keep, u)
			}
		}
		if len(keep) == 0 {
			delete(p.holdback, iter)
		} else {
			p.holdback[iter] = keep
		}
	}
	p.migMaybeShip()
}

// migMaybeShip ships the frozen range once it is drained: no migrating
// vertex is mid-prepare as a producer. Called after the freeze lands and at
// the end of every receive window (a drain completes when the last pending
// commit's ack arrives and the window closes).
func (p *processor) migMaybeShip() {
	mig := p.mig
	if mig == nil || mig.shipped {
		return
	}
	var moving []*vertex
	for id, v := range p.vertices {
		if !p.migrating(id) {
			continue
		}
		if v.preparing() {
			return // still draining
		}
		moving = append(moving, v)
	}
	sort.Slice(moving, func(i, j int) bool { return moving[i].id < moving[j].id })

	// In batched mode flush the window's queued vertex messages first so
	// nothing this source already committed can arrive at the destination
	// after the state that reflects it.
	if p.batch {
		p.flushOut()
	}

	vs := make([]MigVertex, 0, len(moving))
	for _, v := range moving {
		// A queued activation travels as the pending slot itself: drop the
		// entry and release its parked token (the coordinator's floor-0 pin
		// covers the gap until the destination re-schedules).
		if p.actQ != nil {
			if it, ok := p.actQ.Remove(v.id); ok {
				p.deltaDepth.Add(-1)
				p.tk.Release(it.Token)
			}
		}
		vs = append(vs, MigVertex{
			ID:          v.id,
			State:       v.state,
			Targets:     sortedIDs(v.targets),
			Added:       sortedIDs(v.added),
			Removed:     sortedIDs(v.removed),
			TargetClock: cloneClock(v.targetClock),
			GatherSeen:  cloneSeen(v.gatherSeen),
			PrepareList: sortedIDs(v.prepareList),
			Iter:        v.iter,
			LastCommit:  v.lastCommit,
			Progress:    v.progress,
			Dirty:       v.dirty,
			Activated:   v.activated,
			Pending:     v.pending,
			HasPending:  v.hasPending,
		})
		mig.tomb[v.id] = v.iter
		if v.dirtyToken >= 0 {
			p.tk.Release(v.dirtyToken)
			v.dirtyToken = -1
		}
		delete(p.vertices, v.id)
		delete(p.capBlocked, v.id)
		// commitLog/dirtySet entries stay until cutover: a branch fork
		// scanning mid-migration must still see these vertices as part of
		// its seed set on SOME live processor.
	}
	mig.shipped = true
	p.ep.Send(transport.NodeID(mig.dest),
		msgMigState{Seq: mig.seq, Source: p.idx, NumSources: mig.numSources, Vs: vs})
	p.ep.Send(p.eng.migNode(), msgMigShipped{Seq: mig.seq, Source: p.idx, Count: len(vs)})
	p.ep.Flush()
}

// handleMigState installs one source's shipped vertices. Dirty vertices
// re-acquire dirty tokens (the coordinator's pin guarantees the floor has
// not passed their commit iterations), but NOTHING is activated: until the
// plan flips, protocol messages these vertices emit would route back to the
// old owner.
func (p *processor) handleMigState(m msgMigState) {
	if p.migIn == nil || p.migIn.seq != m.Seq {
		p.migIn = &migDest{seq: m.Seq, expect: m.NumSources}
	}
	for _, mv := range m.Vs {
		v := newVertex(mv.ID, p.eng.cfg.Seed)
		v.state = mv.State
		for _, t := range mv.Targets {
			v.targets[t] = struct{}{}
		}
		for _, t := range mv.Added {
			v.added[t] = struct{}{}
		}
		for _, t := range mv.Removed {
			v.removed[t] = struct{}{}
		}
		for t, ts := range mv.TargetClock {
			v.targetClock[t] = ts
		}
		for t, it := range mv.GatherSeen {
			v.gatherSeen[t] = it
		}
		for _, t := range mv.PrepareList {
			v.prepareList[t] = struct{}{}
		}
		v.iter = mv.Iter
		v.lastCommit = mv.LastCommit
		v.progress = mv.Progress
		v.activated = mv.Activated
		v.pending, v.hasPending = mv.Pending, mv.HasPending
		p.vertices[mv.ID] = v
		p.migIn.ids = append(p.migIn.ids, mv.ID)
		if mv.Dirty {
			// Re-acquire the dirty token the source released at ship,
			// exactly as markDirty would place it.
			v.dirty = true
			lower := v.iter
			if v.lastCommit+1 > lower {
				lower = v.lastCommit + 1
			}
			v.dirtyToken = p.tk.AcquireFloor(lower)
			if v.dirtyToken > v.iter {
				v.iter = v.dirtyToken
			}
		}
		p.shareMu.Lock()
		if mv.Dirty {
			p.dirtySet[v.id] = struct{}{}
		}
		if mv.LastCommit >= 0 {
			p.commitLog[v.id] = mv.LastCommit
		}
		p.shareMu.Unlock()
	}
	p.migIn.got++
	if p.migIn.got >= p.migIn.expect {
		p.ep.Send(p.eng.migNode(), msgMigInstalled{Seq: m.Seq, Count: len(p.migIn.ids)})
		p.ep.Flush()
	}
}

// handleMigCutover releases a source: the new plan epoch is published, so
// the journal forwards through sendVertex (which now routes the moved range
// to its new owner), tombstones drop, and the frozen range's share entries
// leave the fork-scan surface.
func (p *processor) handleMigCutover(m msgMigCutover) {
	mig := p.mig
	if mig == nil || mig.seq != m.Seq {
		return
	}
	p.mig = nil
	for _, e := range mig.journal {
		switch j := e.(type) {
		case msgInput:
			p.sendVertex(routeVertex(j.Tuple), j)
		case msgActivate:
			p.sendVertex(j.To, j)
		case msgUpdate:
			p.sendVertex(j.To, j)
		case msgAdopt:
			p.sendVertex(j.To, j)
		}
	}
	p.shareMu.Lock()
	for id := range mig.tomb {
		delete(p.commitLog, id)
		delete(p.dirtySet, id)
	}
	p.shareMu.Unlock()
	if p.batch {
		p.flushOut()
	} else {
		p.ep.Flush()
	}
}

// handleMigActivate starts the installed vertices on the destination: dirty
// ones enter the three-phase protocol, parked delta pendings go through the
// scheduler (significant ones re-queue with fresh tokens, sub-threshold
// ones park — selective activation survives the hand-off). The message
// carries the coordinator's frontier pin, released only after every fresh
// token is acquired.
func (p *processor) handleMigActivate(m msgMigActivate) {
	in := p.migIn
	if in != nil && in.seq == m.Seq {
		p.migIn = nil
		for _, id := range in.ids {
			v := p.vertices[id]
			if v == nil {
				continue
			}
			if v.dirty {
				p.maybeStart(v)
			} else if p.dp != nil && v.hasPending {
				lower := v.iter
				if v.lastCommit+1 > lower {
					lower = v.lastCommit + 1
				}
				p.deltaSchedule(v, p.tk.AcquireFloor(lower))
			}
		}
	}
	p.tk.Release(m.Token)
}

// cloneSeen copies a per-producer gather watermark map.
func cloneSeen(m map[stream.VertexID]int64) map[stream.VertexID]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[stream.VertexID]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
