package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"tornado/internal/datasets"
	"tornado/internal/storage"
	"tornado/internal/stream"
)

// TestLossyTransportStillConverges exercises the at-least-once path hard:
// data frames are dropped and duplicated in flight, retransmission recovers
// them, and the loop still reaches the sequential reference fixed point.
func TestLossyTransportStillConverges(t *testing.T) {
	tuples := datasets.PowerLawGraph(60, 3, 77)
	cases := []struct{ drop, dup float64 }{
		{0.10, 0}, {0, 0.25}, {0.10, 0.10},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("drop=%.2f/dup=%.2f", c.drop, c.dup), func(t *testing.T) {
			e, err := New(Config{
				Processors:  3,
				DelayBound:  16,
				Kind:        MainLoop,
				LoopID:      storage.MainLoop,
				Store:       storage.NewMemStore(),
				Program:     ssspProg{source: 0},
				ResendAfter: 2 * time.Millisecond,
				Seed:        42,
			})
			if err != nil {
				t.Fatal(err)
			}
			e.Start()
			defer e.Stop()
			e.InjectTransportFaults(c.drop, c.dup)
			e.IngestAll(tuples)
			if err := e.WaitQuiesce(waitFor); err != nil {
				t.Fatal(err)
			}
			checkSSSP(t, e, tuples)
		})
	}
}

// TestLossyTransportBranchFork forks a branch while frames are being dropped
// in the main loop; both must still be exact.
func TestLossyTransportBranchFork(t *testing.T) {
	tuples := datasets.PowerLawGraph(50, 3, 79)
	e, err := New(Config{
		Processors:  2,
		DelayBound:  32,
		Kind:        MainLoop,
		LoopID:      storage.MainLoop,
		Store:       storage.NewMemStore(),
		Program:     ssspProg{source: 0},
		ResendAfter: 2 * time.Millisecond,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	e.InjectTransportFaults(0.05, 0.05)
	e.IngestAll(tuples)
	br, _, err := e.ForkBranch(storage.LoopID(1), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Stop()
	if err := br.WaitDone(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, br, tuples)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
}

// TestRandomizedConfigurations is a property-style sweep: random graphs with
// removals, random processor counts, delay bounds, commit jitter and split
// points — every configuration must converge to the sequential reference.
func TestRandomizedConfigurations(t *testing.T) {
	rng := rand.New(rand.NewSource(2016))
	for trial := 0; trial < 12; trial++ {
		trial := trial
		n := 40 + rng.Intn(80)
		procs := 1 + rng.Intn(5)
		bound := []int64{1, 2, 3, 8, 64, 1 << 30}[rng.Intn(6)]
		removeFrac := float64(rng.Intn(3)) * 0.1
		jitter := time.Duration(rng.Intn(3)) * 50 * time.Microsecond
		seed := rng.Int63()
		tuples := datasets.WithRemovals(datasets.PowerLawGraph(n, 3, seed), removeFrac, seed+1)
		cut := 1 + rng.Intn(len(tuples)-1)
		name := fmt.Sprintf("trial=%d/n=%d/procs=%d/B=%d", trial, n, procs, bound)
		t.Run(name, func(t *testing.T) {
			cfg := Config{
				Processors: procs,
				DelayBound: bound,
				Kind:       MainLoop,
				LoopID:     storage.MainLoop,
				Store:      storage.NewMemStore(),
				Program:    ssspProg{source: 0},
				Seed:       seed,
			}
			if jitter > 0 {
				cfg.CommitDelay = func(p int) time.Duration {
					if p == 0 {
						return jitter
					}
					return 0
				}
			}
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			e.Start()
			defer e.Stop()
			e.IngestAll(tuples[:cut])
			if err := e.WaitQuiesce(waitFor); err != nil {
				t.Fatal(err)
			}
			checkSSSP(t, e, tuples[:cut])
			e.IngestAll(tuples[cut:])
			if err := e.WaitQuiesce(waitFor); err != nil {
				t.Fatal(err)
			}
			checkSSSP(t, e, tuples)
		})
	}
}

// TestRepeatedPauseResumeCycles hammers the failure path: several
// pause/resume cycles of processors and the master while a stream is being
// absorbed; the final state must still be exact.
func TestRepeatedPauseResumeCycles(t *testing.T) {
	tuples := datasets.PowerLawGraph(120, 3, 83)
	e := newSSSPEngine(t, 4, 16, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	defer e.Stop()
	chunk := len(tuples) / 6
	for i := 0; i < 6; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if i == 5 {
			hi = len(tuples)
		}
		e.IngestAll(tuples[lo:hi])
		switch i % 3 {
		case 0:
			e.PauseProcessor(i % 4)
			time.Sleep(2 * time.Millisecond)
			e.ResumeProcessor(i % 4)
		case 1:
			e.PauseMaster()
			time.Sleep(2 * time.Millisecond)
			e.ResumeMaster()
		}
	}
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
}

// TestStaleEdgeOpIsIgnored pins the event-time gate: when an edge insertion
// arrives AFTER the removal that supersedes it (as happens when a dropped
// frame is retransmitted under at-least-once delivery), the removal must
// win — topology application is commutative in event time.
func TestStaleEdgeOpIsIgnored(t *testing.T) {
	e := newSSSPEngine(t, 2, 8, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.Ingest(stream.AddEdge(1, 0, 1))
	e.Ingest(stream.RemoveEdge(3, 0, 1)) // remove, stamped t=3...
	e.Ingest(stream.AddEdge(2, 0, 1))    // ...then the older add arrives late
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	st, _, err := e.ReadState(1, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.(*ssspState).Length; got != inf {
		t.Fatalf("dist(1) = %d; the stale re-add resurrected a removed edge", got)
	}
	// A genuinely NEWER add must still apply.
	e.Ingest(stream.AddEdge(4, 0, 1))
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	st, _, err = e.ReadState(1, math.MaxInt64)
	if err != nil || st.(*ssspState).Length != 1 {
		t.Fatalf("dist(1) = %v, %v; want 1 after fresh re-add", st, err)
	}
}

// TestDuplicateActivationsAreIdempotent re-activates vertices repeatedly; the
// fixed point must be unaffected (re-scattering a fixed point is a no-op).
func TestDuplicateActivationsAreIdempotent(t *testing.T) {
	tuples := datasets.PowerLawGraph(60, 3, 89)
	e := newSSSPEngine(t, 2, 8, storage.NewMemStore(), storage.MainLoop)
	e.Start()
	defer e.Stop()
	e.IngestAll(tuples)
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for v := stream.VertexID(0); v < 60; v += 7 {
			e.Activate(v)
		}
	}
	if err := e.WaitQuiesce(waitFor); err != nil {
		t.Fatal(err)
	}
	checkSSSP(t, e, tuples)
}
