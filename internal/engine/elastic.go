package engine

// Live vertex-range migration and elastic scaling (ROADMAP item 4).
//
// Reshard (engine.go) reproduces the paper's stop-the-world rebalancing.
// Migrate changes the partition map WITHOUT stopping the main loop:
//
//  1. The coordinator (the Migrate caller itself, receiving on the
//     incarnation's migration endpoint) acquires a floor-0 tracker token —
//     pinning the iteration frontier for the duration — and sends
//     msgMigFreeze to every source processor.
//  2. A frozen source stops starting commits for owned vertices in the
//     range, journals vertex-addressed messages for them (tokens held), and
//     once none of them is mid-prepare ships their full state (msgMigState)
//     to the destination, releasing their dirty tokens (the coordinator's
//     pin covers the gap) and keeping per-vertex tombstones so prepares
//     from producers are still answered.
//  3. The destination installs the state, re-acquiring dirty tokens, and
//     reports msgMigInstalled. Nothing is activated yet: until the plan
//     flips, acks and updates it emitted would be misrouted.
//  4. When every source shipped and the destination installed, the
//     coordinator publishes the next PartitionPlan epoch through the
//     engine's atomic pointer — that store is the cutover: every subsequent
//     route call anywhere resolves the range to the new owner. It then
//     tells sources to forward their freeze journals to the new owner
//     (msgMigCutover) and the destination to start the moved vertices
//     (msgMigActivate, carrying the coordinator's pin token so activation
//     cannot be passed by termination detection).
//
// In-flight frames addressed to the old owner after the cutover bounce:
// every vertex-addressed handler re-routes messages it does not own through
// the (new) plan instead of ghost-creating the vertex (processor.go).
//
// Crash semantics: a migration lives entirely inside one incarnation. If
// any participant dies, the supervisor tears the incarnation down, which
// crashes the coordinator's endpoint mid-Recv — the migration aborts before
// the publish, so the plan pointer still holds the pre-epoch plan, and the
// checkpoint recovery (which replays under that plan) restores exactness.
// After the publish the new plan simply stays: recovery re-activates the
// checkpoint under it, which is just as correct a mapping as the old one.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"tornado/internal/stream"
	"tornado/internal/transport"
)

// Typed preconditions surfaced by the elastic API (and Reshard).
var (
	// ErrIngestionActive is returned by Reshard when the admission gate
	// still holds admitted-but-unapplied inputs: stopping the loop then
	// would silently lose them.
	ErrIngestionActive = errors.New("engine: ingestion still active")
	// ErrMigrationActive is returned when a migration is already running
	// (one at a time).
	ErrMigrationActive = errors.New("engine: a migration is already in flight")
	// ErrNoSpare is returned by ScaleOut when no inactive processor slot
	// remains below MaxProcessors.
	ErrNoSpare = errors.New("engine: no spare processor slot")
	// ErrMigrationAborted is returned when the incarnation died (crash
	// recovery or Stop) mid-migration; the plan is unchanged.
	ErrMigrationAborted = errors.New("engine: migration aborted")
)

// Elastic recovery-log event kinds.
const (
	EventMigration      = "migration"
	EventMigrationAbort = "migration-abort"
)

// PartitionLoad is one processor slot's live load accounting: the signals
// the split/merge planner weighs.
type PartitionLoad struct {
	Proc        int
	Active      bool // owns part of the current plan
	Quarantined bool
	// Vertices is the number of vertices the slot currently hosts.
	Vertices int
	// Commits / Updates are lifetime totals for this slot (reset by crash
	// recoveries with the incarnation); samplers take deltas.
	Commits int64
	Updates int64
	// QueueDepth is the slot's delta activation-queue depth (0 in value
	// mode).
	QueueDepth int64
}

// PartitionLoads returns per-slot load accounting for every processor slot.
func (e *Engine) PartitionLoads() []PartitionLoad {
	plan := e.plan.Load()
	e.genMu.RLock()
	defer e.genMu.RUnlock()
	out := make([]PartitionLoad, len(e.inc.procs))
	for i, p := range e.inc.procs {
		out[i] = PartitionLoad{Proc: i}
		if i < len(plan.Active) && plan.Active[i] != 0 {
			out[i].Active = true
		}
		if p == nil {
			out[i].Quarantined = true
			continue
		}
		p.shareMu.Lock()
		out[i].Vertices = len(p.commitLog)
		p.shareMu.Unlock()
		out[i].Commits = p.commitCount.Load()
		out[i].Updates = p.updateCount.Load()
		out[i].QueueDepth = p.deltaDepth.Load()
	}
	return out
}

// Migrate moves the vertex range r onto processor dest without stopping the
// loop: state ships live, in-flight traffic journal-forwards, and the
// cutover is one atomic plan publish. It blocks until the migration
// completes (or aborts with the plan unchanged). Any current owner of a
// vertex in r is a source; vertices already owned by dest stay put.
func (e *Engine) Migrate(r VertexRange, dest int) error {
	return e.migrate(r, -1, dest, false)
}

// ScaleOut splits the hot processor's partition onto the first spare slot:
// the upper half (by vertex ID) of the vertices it hosts migrates live, and
// the spare joins the plan. hot < 0 picks the active slot hosting the most
// vertices. It returns the slot scaled onto.
func (e *Engine) ScaleOut(hot int) (int, error) {
	plan := e.plan.Load()
	loads := e.PartitionLoads()
	spare := -1
	for _, l := range loads {
		if !l.Active && !l.Quarantined {
			spare = l.Proc
			break
		}
	}
	if spare < 0 {
		return -1, ErrNoSpare
	}
	if hot < 0 {
		for _, l := range loads {
			if l.Active && !l.Quarantined && (hot < 0 || l.Vertices > loads[hot].Vertices) {
				hot = l.Proc
			}
		}
	}
	if hot < 0 || hot >= len(plan.Active) || plan.Active[hot] == 0 {
		return -1, fmt.Errorf("engine: no splittable hot partition (hot=%d)", hot)
	}
	ids := e.hostedIDs(hot)
	if len(ids) < 2 {
		return -1, fmt.Errorf("engine: partition %d hosts %d vertices; nothing to split", hot, len(ids))
	}
	// Split at the median hosted ID: the upper half moves. Range-partitioned
	// deployments get a true range split; hash-partitioned ones still shed
	// roughly half the hot partition's vertices.
	mid := ids[len(ids)/2]
	r := VertexRange{Lo: mid, Hi: FullRange().Hi}
	if err := e.migrate(r, hot, spare, false); err != nil {
		return -1, err
	}
	return spare, nil
}

// ScaleIn drains processor slot s live — everything it owns migrates to the
// least-loaded other active slot — and retires it from the plan.
func (e *Engine) ScaleIn(s int) error {
	plan := e.plan.Load()
	if s < 0 || s >= len(plan.Active) || plan.Active[s] == 0 {
		return fmt.Errorf("engine: slot %d is not active", s)
	}
	dest := -1
	loads := e.PartitionLoads()
	for _, l := range loads {
		if l.Proc == s || !l.Active || l.Quarantined {
			continue
		}
		if dest < 0 || l.Vertices < loads[dest].Vertices {
			dest = l.Proc
		}
	}
	if dest < 0 {
		return errors.New("engine: no surviving active slot to drain onto")
	}
	return e.migrate(FullRange(), s, dest, true)
}

// hostedIDs returns the sorted vertex IDs slot proc currently hosts (per
// its commit/dirty share, filtered by live ownership).
func (e *Engine) hostedIDs(proc int) []stream.VertexID {
	p := e.proc(proc)
	if p == nil {
		return nil
	}
	set := make(map[stream.VertexID]struct{})
	p.shareMu.Lock()
	for id := range p.commitLog {
		set[id] = struct{}{}
	}
	for id := range p.dirtySet {
		set[id] = struct{}{}
	}
	p.shareMu.Unlock()
	route := e.cur().route
	ids := make([]stream.VertexID, 0, len(set))
	for id := range set {
		if route(id) == transport.NodeID(proc) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// migrate runs one live migration synchronously: the calling goroutine is
// the coordinator. from filters sources to one owner (-1 = every owner);
// retire removes from from the plan after the cutover (scale-in).
func (e *Engine) migrate(r VertexRange, from, dest int, retire bool) error {
	if e.cfg.Kind != MainLoop {
		return errors.New("engine: Migrate applies to main loops")
	}
	if dest < 0 || dest >= e.cfg.MaxProcessors {
		return fmt.Errorf("engine: migration destination %d out of range [0,%d)", dest, e.cfg.MaxProcessors)
	}
	e.migMu.Lock()
	if e.migActive {
		e.migMu.Unlock()
		return ErrMigrationActive
	}
	e.migActive = true
	e.migSeq++
	seq := e.migSeq
	e.migMu.Unlock()
	defer func() {
		e.migMu.Lock()
		e.migActive = false
		e.migMu.Unlock()
	}()

	e.genMu.RLock()
	inc := e.inc
	stopped := e.stopped
	var destProc *processor
	if dest < len(inc.procs) {
		destProc = inc.procs[dest]
	}
	e.genMu.RUnlock()
	if stopped {
		return errors.New("engine: migrate on a stopped engine")
	}
	if destProc == nil {
		return fmt.Errorf("engine: migration destination %d is quarantined", dest)
	}
	var sources []int
	for i, p := range inc.procs {
		if p == nil || i == dest {
			continue
		}
		if from >= 0 && i != from {
			continue
		}
		sources = append(sources, i)
	}
	if len(sources) == 0 {
		return errors.New("engine: no live source processors")
	}

	start := time.Now()
	// Pin the frontier for the whole migration: no iteration can terminate
	// while the pin is held, so the dirty tokens sources release at ship
	// cannot be passed by termination before the destination re-acquires
	// them at install, and the cutover can never land inside a checkpoint.
	pin := inc.tracker.AcquireFloor(0)
	abort := func(why string) error {
		inc.tracker.Release(pin)
		e.migAborts.Inc()
		e.recordEvent(RecoveryEvent{Kind: EventMigrationAbort, Proc: dest, Gen: inc.gen,
			Detail: fmt.Sprintf("seq %d [%d,%d]→%d: %s", seq, r.Lo, r.Hi, dest, why)})
		return fmt.Errorf("%w: %s", ErrMigrationAborted, why)
	}

	freeze := msgMigFreeze{Seq: seq, R: r, From: from, Dest: dest, NumSources: len(sources)}
	for _, s := range sources {
		inc.migE.Send(transport.NodeID(s), freeze)
	}
	inc.migE.Flush()

	// Chaos hook: an armed FaultCrashDuringMigration fires here — the range
	// is frozen, state is about to ship, the cutover has not happened.
	if arm := e.migCrashArm.Swap(0); arm > 0 {
		e.CrashProcessor(int(arm - 1))
	}

	// Collect ships and the install. Stale or duplicate frames (earlier
	// seqs, at-least-once redelivery) are filtered by seq and idempotent
	// counting. A dead incarnation crashes the endpoint and aborts here.
	shipped := make(map[int]bool, len(sources))
	installed := false
	moved := 0
	for len(shipped) < len(sources) || !installed {
		env, ok := inc.migE.Recv()
		if !ok {
			return abort("incarnation torn down before cutover")
		}
		switch m := env.Payload.(type) {
		case msgMigShipped:
			if m.Seq == seq && !shipped[m.Source] {
				shipped[m.Source] = true
				moved += m.Count
			}
		case msgMigInstalled:
			if m.Seq == seq {
				installed = true
			}
		}
	}

	// THE cutover: one atomic pointer store. Every route call after this —
	// any processor, the ingester, recovery's ActivateStored — resolves the
	// range to dest.
	next := e.plan.Load().withMove(r, from, dest, retire)
	e.plan.Store(next)

	for _, s := range sources {
		inc.migE.Send(transport.NodeID(s), msgMigCutover{Seq: seq})
	}
	// The pin token rides to the destination: it is released there after
	// the moved vertices are scheduled, so the loop can never look
	// quiescent with a significant migrated pending not yet queued.
	inc.migE.Send(transport.NodeID(dest), msgMigActivate{Seq: seq, Token: pin})
	inc.migE.Flush()

	e.migrations.Inc()
	e.migratedVerts.Add(int64(moved))
	if e.migDurHist != nil {
		e.migDurHist.Observe(time.Since(start).Seconds())
	}
	e.recordEvent(RecoveryEvent{Kind: EventMigration, Proc: dest, Gen: inc.gen,
		Detail: fmt.Sprintf("seq %d epoch %d: [%d,%d] from %d → %d (%d vertices, %d sources)",
			seq, next.Epoch, r.Lo, r.Hi, from, dest, moved, len(sources))})
	return nil
}
