package engine

import (
	"math/rand"
	"sort"
	"testing"

	"tornado/internal/stream"
)

// TestJournalAgainstModel drives the input journal with random operation
// sequences and checks Residual against a brute-force model for every fork
// iteration. This is the invariant branch exactness rests on: an input is
// residual at fork iteration i exactly when it is not committed at or below
// i.
func TestJournalAgainstModel(t *testing.T) {
	type entry struct {
		seq       uint64
		vertex    stream.VertexID
		committed bool
		iter      int64
		pruned    bool
	}
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		j := newInputJournal()
		var model []entry
		applied := map[stream.VertexID][]int{} // vertex -> model indices applied, uncommitted
		nextIter := int64(0)
		pruneFloor := int64(-1)

		for op := 0; op < 200; op++ {
			switch rng.Intn(4) {
			case 0: // ingest + apply to a random vertex
				v := stream.VertexID(rng.Intn(8))
				tup := stream.Value(stream.Timestamp(op), v, op)
				seq := j.Ingested(tup)
				j.Applied(seq, v)
				model = append(model, entry{seq: seq, vertex: v})
				applied[v] = append(applied[v], len(model)-1)
			case 1: // ingest only (still in flight)
				v := stream.VertexID(rng.Intn(8))
				tup := stream.Value(stream.Timestamp(op), v, op)
				seq := j.Ingested(tup)
				model = append(model, entry{seq: seq, vertex: v})
			case 2: // commit a random vertex at the next iteration
				v := stream.VertexID(rng.Intn(8))
				nextIter++
				j.Committed(v, nextIter)
				for _, idx := range applied[v] {
					model[idx].committed = true
					model[idx].iter = nextIter
				}
				delete(applied, v)
			case 3: // prune at a random terminated iteration
				if nextIter > 0 {
					k := rng.Int63n(nextIter + 1)
					if k > pruneFloor {
						pruneFloor = k
					}
					j.Prune(pruneFloor)
					for i := range model {
						if model[i].committed && model[i].iter <= pruneFloor {
							model[i].pruned = true
						}
					}
				}
			}
			// Check residual at a random fork iteration at or above the
			// prune floor (forks only happen at the advancing frontier).
			forkIter := pruneFloor
			if nextIter > forkIter {
				forkIter += rng.Int63n(nextIter - pruneFloor + 1)
			}
			var want []uint64
			for _, e := range model {
				if e.pruned {
					continue // retained only if newer than every prune
				}
				if !e.committed || e.iter > forkIter {
					want = append(want, e.seq)
				}
			}
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			got := j.Residual(forkIter)
			if len(got) != len(want) {
				t.Fatalf("trial %d op %d forkIter %d: residual %d entries; model wants %d",
					trial, op, forkIter, len(got), len(want))
			}
			for i, tup := range got {
				if tup.Value.(int) < 0 {
					t.Fatalf("bogus tuple %v", tup)
				}
				_ = i
			}
		}
	}
}
