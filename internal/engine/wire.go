package engine

// Wire mode: running the loop's transport over real sockets.
//
// Config.Wire puts the incarnation's Network into ForceLoop wire mode: every
// frame between the loop's processors, master, ingester and supervisor is
// serialized through the CRC32-framed binary codec, crosses a connection
// dialed to the process's own listener (TCP by default, an in-memory wire
// for hermetic tests), and is decoded back before delivery. All protocol
// state stays in-process — what changes is that the message plane now pays,
// and survives, everything a real deployment does: serialization, partial
// writes, torn frames, corrupted bytes, connection loss and reconnection.
// The chaos suites run their crash/recovery schedules on top of this
// substrate, and the socket-level fault API below adds wire faults
// (partition, corruption, latency, loss) to the chaos vocabulary.
//
// Wire faults live on the Engine, not the incarnation: like the frame-level
// drop/dup rates, they survive crash recoveries — a new incarnation's
// connections come up as faulty as the old ones', because real networks do
// not heal to honor a process restart.

import (
	"encoding/gob"
	"fmt"
	"time"

	"tornado/internal/transport"
)

// The engine's message vocabulary must be gob-registered to ride the wire
// (the transport registers plain scalars; stream.Tuple and trace.Context are
// plain exported data carried inside these structs).
func init() {
	gob.Register(msgInput{})
	gob.Register(msgActivate{})
	gob.Register(msgUpdate{})
	gob.Register(msgPrepare{})
	gob.Register(msgAck{})
	gob.Register(msgFrontier{})
	gob.Register(msgHalt{})
	gob.Register(msgHeartbeat{})
	gob.Register(msgAdopt{})
	gob.Register(msgMigFreeze{})
	gob.Register(msgMigState{})
	gob.Register(msgMigShipped{})
	gob.Register(msgMigInstalled{})
	gob.Register(msgMigCutover{})
	gob.Register(msgMigActivate{})
}

// WireSpec configures wire mode (Config.Wire). The zero value of a non-nil
// spec means: TCP on a fresh loopback port each incarnation, no idle
// deadline, default queue depth.
type WireSpec struct {
	// Addr is the TCP listen address (default "127.0.0.1:0" — a fresh port
	// per incarnation; fixed ports risk rebind races during recovery).
	Addr string
	// Mem, when non-nil, replaces TCP with an in-memory wire: the same
	// codec, supervision and fault machinery without sockets (hermetic unit
	// tests).
	Mem *transport.MemWire
	// ReadIdle evicts peer connections silent for this long (0 = never).
	// Size it well above the heartbeat interval: with supervision on,
	// steady-state beats keep healthy connections alive, so only genuinely
	// stuck peers trip it.
	ReadIdle time.Duration
	// QueueLen bounds each peer connection's outbound frame queue
	// (default 1024).
	QueueLen int
}

// Wire-related recovery event kinds (see RecoveryEvent.Kind).
const (
	// EventWireDown records a dropped peer connection (rate-limited to one
	// event per second; the tornado_wire_reconnects counter has the truth).
	EventWireDown = "wire-down"
	// EventWireFault and EventWireHeal bracket injected wire faults
	// (partition, corruption).
	EventWireFault = "wire-fault"
	EventWireHeal  = "wire-heal"
)

// buildWire assembles one incarnation's transport.WireConfig. Called from
// buildIncarnation (caller holds genMu or is New); gen is captured so the
// hooks never need engine locks.
func (e *Engine) buildWire(gen int) *transport.WireConfig {
	ws := e.cfg.Wire
	var (
		ln  transport.Listener
		d   transport.Dialer
		err error
	)
	if ws.Mem != nil {
		ln, err = ws.Mem.Listen("")
		d = ws.Mem.Dialer()
	} else {
		addr := ws.Addr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		// A fixed-port rebind can race the dying incarnation's listener
		// through TIME_WAIT-ish states; retry briefly before giving up.
		for attempt := 0; ; attempt++ {
			var tl *transport.TCPListener
			tl, err = transport.ListenTCP(addr)
			if err == nil {
				ln = tl
				break
			}
			if attempt >= 10 {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		d = transport.TCPDialer{}
	}
	if err != nil {
		// No listener means no message plane at all: this is a bind/config
		// failure (bad Addr, exhausted fds), not a runtime fault to degrade
		// around.
		panic(fmt.Sprintf("engine: wire listen: %v", err))
	}
	return &transport.WireConfig{
		Listener:  ln,
		Dialer:    d,
		ForceLoop: true,
		Faults:    e.wireFaults,
		ReadIdle:  ws.ReadIdle,
		QueueLen:  ws.QueueLen,
		OnPeerDown: func(addr string, cause error) {
			e.noteWireDown(gen, addr, cause)
		},
		ObserveFlush: func(frames int) {
			if h := e.wireFlushHist; h != nil {
				h.Observe(float64(frames))
			}
		},
	}
}

// noteWireDown records a dropped wire connection in the recovery log, rate
// limited to one event per second — a corruption storm drops connections per
// frame, and the counters already carry the volume.
func (e *Engine) noteWireDown(gen int, addr string, cause error) {
	const minGap = int64(time.Second)
	now := time.Now().UnixNano()
	last := e.lastWireDown.Load()
	if now-last < minGap || !e.lastWireDown.CompareAndSwap(last, now) {
		return
	}
	e.recordEvent(RecoveryEvent{
		Kind:   EventWireDown,
		Proc:   -2,
		Gen:    gen,
		Detail: fmt.Sprintf("%s: %v", addr, cause),
	})
}

// WireAddr returns the bound wire listener address of the current
// incarnation ("" when the engine runs without a wire).
func (e *Engine) WireAddr() string {
	return e.cur().net.WireAddr()
}

// SetWirePartition hard-partitions (or heals) the wire: while set, every
// outbound frame on every connection vanishes. Senders keep everything on
// their resend ledgers, so healing replays the backlog exactly once past the
// ack watermark. No-op without Config.Wire; reports whether a wire exists.
func (e *Engine) SetWirePartition(on bool) bool {
	if e.wireFaults == nil {
		return false
	}
	e.wireFaults.SetPartition(on)
	kind := EventWireHeal
	detail := "partition healed"
	if on {
		kind = EventWireFault
		detail = "partition"
	}
	e.recordEvent(RecoveryEvent{Kind: kind, Proc: -2, Gen: e.Generation(), Detail: detail})
	return true
}

// SetWireCorrupt makes each outbound wire frame suffer a flipped byte with
// the given probability (0 heals). Every corruption becomes a checksum
// failure and a dropped connection on the receive side — never a delivered
// frame. No-op without Config.Wire.
func (e *Engine) SetWireCorrupt(rate float64) bool {
	if e.wireFaults == nil {
		return false
	}
	e.wireFaults.SetCorrupt(rate)
	kind, detail := EventWireFault, fmt.Sprintf("corrupt %.3f", rate)
	if rate <= 0 {
		kind, detail = EventWireHeal, "corruption healed"
	}
	e.recordEvent(RecoveryEvent{Kind: kind, Proc: -2, Gen: e.Generation(), Detail: detail})
	return true
}

// SetWireLoss sets per-frame socket-level drop and duplicate probabilities
// (independent of the frame-level InjectTransportFaults rates, which apply
// before serialization). No-op without Config.Wire.
func (e *Engine) SetWireLoss(drop, dup float64) bool {
	if e.wireFaults == nil {
		return false
	}
	e.wireFaults.SetLoss(drop, dup)
	return true
}

// SetWireLatency adds fixed per-frame latency on the wire (0 clears). No-op
// without Config.Wire.
func (e *Engine) SetWireLatency(d time.Duration) bool {
	if e.wireFaults == nil {
		return false
	}
	e.wireFaults.SetLatency(d)
	return true
}
