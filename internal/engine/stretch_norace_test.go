//go:build !race

package engine

// raceStretch widens wire-soak failure-detection windows under the race
// detector (see stretch_race_test.go); 1 = no stretch in normal builds.
const raceStretch = 1
