// Package metrics provides the measurement primitives used by the Tornado
// benchmark harness: counters, duration histograms with percentile queries
// (the paper reports 99th-percentile latencies), rate meters for message
// throughput (Figure 9b), and time-series recorders for every
// quantity-versus-time figure (Figures 6-8).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter safe for concurrent use.
// The zero value is ready to use.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Reset sets the counter back to zero and returns the previous value.
func (c *Counter) Reset() int64 { return c.n.Swap(0) }

// Histogram accumulates float64 observations and answers percentile queries.
// It stores raw samples (the experiments record at most a few hundred
// thousand observations), which keeps percentiles exact. The zero value is
// ready to use. Histogram is safe for concurrent use.
//
// For unbounded runs that must not grow with observation count, use the
// bounded-memory obs.StreamHist instead.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	// sorted caches an ascending copy of samples; Observe invalidates it,
	// so a burst of percentile queries (Min, Max, p50, p99 in one report
	// row) sorts once instead of once per call.
	sorted []float64
	sum    float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sorted = nil
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the arithmetic mean of the samples, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Stddev returns the population standard deviation of the samples.
func (h *Histogram) Stddev() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	mean := h.sum / float64(n)
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using the
// nearest-rank method, or 0 with no samples.
func (h *Histogram) Percentile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	sorted := h.sortedLocked()
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// sortedLocked returns the cached ascending view, rebuilding it after an
// invalidating Observe. Callers must hold h.mu.
func (h *Histogram) sortedLocked() []float64 {
	if h.sorted == nil {
		h.sorted = make([]float64, len(h.samples))
		copy(h.sorted, h.samples)
		sort.Float64s(h.sorted)
	}
	return h.sorted
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 { return h.Percentile(0) }

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 { return h.Percentile(100) }

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sorted = nil
	h.sum = 0
	h.mu.Unlock()
}

// Point is one (time, value) observation in a Series.
type Point struct {
	At    time.Duration // offset from the series' start
	Value float64
}

// Series records a quantity over time, relative to a fixed origin. It backs
// the quantity-versus-time figures. Series is safe for concurrent use.
type Series struct {
	mu     sync.Mutex
	origin time.Time
	points []Point
}

// NewSeries returns a Series whose time origin is now.
func NewSeries() *Series {
	return &Series{origin: time.Now()}
}

// NewSeriesAt returns a Series with an explicit time origin.
func NewSeriesAt(origin time.Time) *Series {
	return &Series{origin: origin}
}

// Record appends an observation at the current wall time.
func (s *Series) Record(v float64) {
	s.RecordAt(time.Since(s.origin), v)
}

// RecordAt appends an observation at an explicit offset. Offsets need not be
// monotone; Points sorts before returning.
func (s *Series) RecordAt(at time.Duration, v float64) {
	s.mu.Lock()
	s.points = append(s.points, Point{At: at, Value: v})
	s.mu.Unlock()
}

// Points returns a copy of the recorded observations sorted by time.
func (s *Series) Points() []Point {
	s.mu.Lock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Len returns the number of recorded observations.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}

// Last returns the most recently recorded value, or 0 if empty.
func (s *Series) Last() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.points) == 0 {
		return 0
	}
	return s.points[len(s.points)-1].Value
}

// Bucketize aggregates the series into fixed-width time buckets, returning
// one point per non-empty bucket whose value is the sum of the bucket's
// observations divided by the bucket width in seconds (i.e. a rate), which is
// how Figure 8c/8d plot "#updates per second".
//
// Contract: buckets with no observations are SKIPPED, not emitted as zeros —
// each returned Point.At is the start offset of a bucket that actually
// received data, and consecutive points may be more than one width apart. A
// plot that connects consecutive points therefore interpolates across the
// dead air (a stall reads as a line, not a drop to zero). When downstream
// consumers need an explicit zero for every silent bucket, use
// BucketizeFilled.
func (s *Series) Bucketize(width time.Duration) []Point {
	return s.bucketize(width, false)
}

// BucketizeFilled is Bucketize with gap filling: every bucket from the first
// observation through the last emits a point, empty ones with rate 0, so
// rate plots show stalls as drops to zero instead of interpolating across
// them.
func (s *Series) BucketizeFilled(width time.Duration) []Point {
	return s.bucketize(width, true)
}

func (s *Series) bucketize(width time.Duration, fillGaps bool) []Point {
	pts := s.Points()
	if len(pts) == 0 || width <= 0 {
		return nil
	}
	out := []Point{}
	cur := pts[0].At / width * width
	var sum float64
	var any bool
	flush := func() {
		if any || fillGaps {
			out = append(out, Point{At: cur, Value: sum / width.Seconds()})
		}
		sum, any = 0, false
	}
	for _, p := range pts {
		b := p.At / width * width
		for b != cur {
			flush()
			if fillGaps {
				cur += width // emit every silent bucket up to b
			} else {
				cur = b
			}
		}
		sum += p.Value
		any = true
	}
	flush()
	return out
}

// Meter measures event rates: a counter plus the wall-clock window it covers.
type Meter struct {
	c     Counter
	start time.Time
}

// NewMeter returns a started Meter.
func NewMeter() *Meter { return &Meter{start: time.Now()} }

// Mark records n events.
func (m *Meter) Mark(n int64) { m.c.Add(n) }

// Rate returns events per second since the meter started.
func (m *Meter) Rate() float64 {
	el := time.Since(m.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.c.Value()) / el
}

// Count returns the total number of marked events.
func (m *Meter) Count() int64 { return m.c.Value() }

// FormatDuration renders a duration the way the paper's tables do
// (e.g. "87.13s", "0.141s").
func FormatDuration(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}
