package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("Counter = %d; want 8000", got)
	}
	if got := c.Reset(); got != 8000 {
		t.Fatalf("Reset returned %d; want 8000", got)
	}
	if got := c.Value(); got != 0 {
		t.Fatalf("after Reset Value = %d; want 0", got)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 50}, {99, 99}, {100, 100}, {1, 1},
	}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v; want %v", c.p, got, c.want)
		}
	}
	if got := h.Mean(); got != 50.5 {
		t.Errorf("Mean = %v; want 50.5", got)
	}
	if got := h.Count(); got != 100 {
		t.Errorf("Count = %v; want 100", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Percentile(99) != 0 || h.Mean() != 0 || h.Stddev() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramStddev(t *testing.T) {
	var h Histogram
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(v)
	}
	if got := h.Stddev(); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("Stddev = %v; want 2", got)
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	// Property: for any sample set and percentile, the result is one of the
	// samples, and percentile is monotone in p.
	f := func(raw []float64, p1, p2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		present := make(map[float64]bool)
		for _, v := range raw {
			if math.IsNaN(v) {
				v = 0
			}
			h.Observe(v)
			present[v] = true
		}
		p1 = math.Abs(math.Mod(p1, 101))
		p2 = math.Abs(math.Mod(p2, 101))
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := h.Percentile(p1), h.Percentile(p2)
		return present[v1] && present[v2] && v1 <= v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesSortedPoints(t *testing.T) {
	s := NewSeries()
	s.RecordAt(3*time.Second, 30)
	s.RecordAt(1*time.Second, 10)
	s.RecordAt(2*time.Second, 20)
	pts := s.Points()
	if len(pts) != 3 {
		t.Fatalf("len = %d; want 3", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].At < pts[i-1].At {
			t.Fatalf("points not sorted: %v", pts)
		}
	}
	if s.Last() != 20 {
		t.Fatalf("Last = %v; want 20 (insertion order)", s.Last())
	}
}

func TestSeriesBucketize(t *testing.T) {
	s := NewSeries()
	// 4 events in [0,1s), 2 events in [2s,3s).
	s.RecordAt(100*time.Millisecond, 1)
	s.RecordAt(200*time.Millisecond, 1)
	s.RecordAt(300*time.Millisecond, 1)
	s.RecordAt(900*time.Millisecond, 1)
	s.RecordAt(2500*time.Millisecond, 1)
	s.RecordAt(2600*time.Millisecond, 1)
	got := s.Bucketize(time.Second)
	if len(got) != 2 {
		t.Fatalf("buckets = %v; want 2 buckets", got)
	}
	if got[0].Value != 4 || got[1].Value != 2 {
		t.Fatalf("bucket rates = %v, %v; want 4, 2", got[0].Value, got[1].Value)
	}
	if got[1].At != 2*time.Second {
		t.Fatalf("second bucket at %v; want 2s", got[1].At)
	}
}

func TestSeriesBucketizeEmpty(t *testing.T) {
	s := NewSeries()
	if got := s.Bucketize(time.Second); got != nil {
		t.Fatalf("Bucketize on empty series = %v; want nil", got)
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Mark(10)
	if m.Count() != 10 {
		t.Fatalf("Count = %d; want 10", m.Count())
	}
	time.Sleep(10 * time.Millisecond)
	if m.Rate() <= 0 {
		t.Fatal("Rate should be positive after events")
	}
}

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(87130 * time.Millisecond); got != "87.130s" {
		t.Fatalf("FormatDuration = %q; want 87.130s", got)
	}
}
