package metrics

import (
	"testing"
	"time"
)

// TestHistogramPercentileCacheInvalidation exercises the sorted-view cache:
// queries between observes must reflect every sample recorded so far, not a
// stale sorted copy.
func TestHistogramPercentileCacheInvalidation(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(20)
	if got := h.Max(); got != 20 {
		t.Fatalf("Max = %v; want 20", got)
	}
	// The cache is now populated; a new extreme sample must invalidate it.
	h.Observe(5)
	if got := h.Min(); got != 5 {
		t.Fatalf("Min after cache-invalidating Observe = %v; want 5", got)
	}
	h.Observe(100)
	if got := h.Percentile(100); got != 100 {
		t.Fatalf("Percentile(100) = %v; want 100", got)
	}
	if got := h.Percentile(50); got != 10 { // nearest-rank of {5,10,20,100}
		t.Fatalf("Percentile(50) = %v; want 10", got)
	}
	h.Reset()
	h.Observe(7)
	if got := h.Max(); got != 7 {
		t.Fatalf("Max after Reset = %v; want 7", got)
	}
}

func TestBucketizeSkipsEmptyBuckets(t *testing.T) {
	s := NewSeries()
	w := time.Second
	s.RecordAt(100*time.Millisecond, 2)  // bucket 0
	s.RecordAt(3500*time.Millisecond, 4) // bucket 3; buckets 1 and 2 silent
	pts := s.Bucketize(w)
	if len(pts) != 2 {
		t.Fatalf("Bucketize = %d points; want 2 (empty buckets skipped): %v", len(pts), pts)
	}
	if pts[0].At != 0 || pts[1].At != 3*time.Second {
		t.Fatalf("bucket starts = %v, %v; want 0s, 3s", pts[0].At, pts[1].At)
	}
	if pts[0].Value != 2 || pts[1].Value != 4 {
		t.Fatalf("rates = %v, %v; want 2, 4", pts[0].Value, pts[1].Value)
	}
}

func TestBucketizeFilledEmitsZeros(t *testing.T) {
	s := NewSeries()
	w := time.Second
	s.RecordAt(100*time.Millisecond, 2)
	s.RecordAt(3500*time.Millisecond, 4)
	pts := s.BucketizeFilled(w)
	if len(pts) != 4 {
		t.Fatalf("BucketizeFilled = %d points; want 4 (gaps filled): %v", len(pts), pts)
	}
	wantAt := []time.Duration{0, time.Second, 2 * time.Second, 3 * time.Second}
	wantVal := []float64{2, 0, 0, 4}
	for i, p := range pts {
		if p.At != wantAt[i] || p.Value != wantVal[i] {
			t.Fatalf("point %d = {%v %v}; want {%v %v}", i, p.At, p.Value, wantAt[i], wantVal[i])
		}
	}
}

func TestBucketizeFilledMatchesBucketizeWhenDense(t *testing.T) {
	s := NewSeries()
	for i := 0; i < 10; i++ {
		s.RecordAt(time.Duration(i)*300*time.Millisecond, 1)
	}
	a := s.Bucketize(time.Second)
	b := s.BucketizeFilled(time.Second)
	if len(a) != len(b) {
		t.Fatalf("dense series: Bucketize %d points, Filled %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBucketizeFilledEmpty(t *testing.T) {
	s := NewSeries()
	if got := s.BucketizeFilled(time.Second); got != nil {
		t.Fatalf("empty series = %v; want nil", got)
	}
	s.RecordAt(time.Second, 1)
	if got := s.BucketizeFilled(0); got != nil {
		t.Fatalf("zero width = %v; want nil", got)
	}
}
