package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"tornado/internal/stream"
)

// buildCheckpointedLog writes `rounds` rounds of puts, each round k stamping
// vertices 1..3 at iteration k and ending with Flush(k). It returns the file
// size after each round's checkpoint: ckptEnd[k] is the offset just past the
// checkpoint-k record, so any corruption at offset >= ckptEnd[k] leaves
// checkpoint k (and all data it covers) intact.
func buildCheckpointedLog(t *testing.T, path string, rounds int) []int64 {
	t.Helper()
	s, err := OpenDisk(path)
	must(t, err)
	ckptEnd := make([]int64, rounds+1)
	for k := 1; k <= rounds; k++ {
		for v := stream.VertexID(1); v <= 3; v++ {
			must(t, s.Put(MainLoop, v, int64(k), []byte(fmt.Sprintf("v%d-k%d", v, k))))
		}
		must(t, s.Flush(MainLoop, int64(k))) // fsyncs, so Stat sees every byte
		fi, err := os.Stat(path)
		must(t, err)
		ckptEnd[k] = fi.Size()
	}
	must(t, s.Close())
	return ckptEnd
}

// lastIntact returns the highest checkpoint whose record lies entirely before
// offset off (0 if none).
func lastIntact(ckptEnd []int64, off int64) int64 {
	best := int64(0)
	for k := 1; k < len(ckptEnd); k++ {
		if ckptEnd[k] <= off {
			best = int64(k)
		}
	}
	return best
}

// checkRecoveredAt asserts that a store recovered from a log corrupted at
// offset off landed exactly on the last intact checkpoint: LastCheckpoint
// reports it and every vertex reads its value as of that iteration.
func checkRecoveredAt(t *testing.T, r *DiskStore, ckptEnd []int64, off int64) {
	t.Helper()
	want := lastIntact(ckptEnd, off)
	ckpt, err := r.LastCheckpoint(MainLoop)
	if want == 0 {
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("off=%d: LastCheckpoint = (%d, %v); want ErrNotFound", off, ckpt, err)
		}
		return
	}
	if err != nil || ckpt != want {
		t.Fatalf("off=%d: LastCheckpoint = (%d, %v); want %d", off, ckpt, err, want)
	}
	for v := stream.VertexID(1); v <= 3; v++ {
		data, iter, err := r.Latest(MainLoop, v, want)
		wantData := fmt.Sprintf("v%d-k%d", v, want)
		if err != nil || iter != want || string(data) != wantData {
			t.Fatalf("off=%d: Latest(%d, %d) = (%q, %d, %v); want (%q, %d)",
				off, v, want, data, iter, err, wantData, want)
		}
	}
}

// TestDiskRecoveryBitFlipSweep flips every byte of the log in turn (including
// bytes inside checkpoint records) and asserts recovery always lands exactly
// on the last checkpoint written before the flipped record. A full-byte flip
// is an 8-bit error burst, which CRC32 detects unconditionally, so no flip may
// ever survive replay.
func TestDiskRecoveryBitFlipSweep(t *testing.T) {
	dir := t.TempDir()
	orig := filepath.Join(dir, "orig.log")
	ckptEnd := buildCheckpointedLog(t, orig, 4)
	logBytes, err := os.ReadFile(orig)
	must(t, err)
	size := int64(len(logBytes))
	if size != ckptEnd[4] {
		t.Fatalf("log size %d != last checkpoint end %d", size, ckptEnd[4])
	}

	work := filepath.Join(dir, "flip.log")
	for off := int64(0); off < size; off++ {
		corrupted := make([]byte, size)
		copy(corrupted, logBytes)
		corrupted[off] ^= 0xFF
		must(t, os.WriteFile(work, corrupted, 0o644))

		r, err := OpenDisk(work)
		if err != nil {
			t.Fatalf("off=%d: OpenDisk after bit flip: %v", off, err)
		}
		checkRecoveredAt(t, r, ckptEnd, off)
		// The torn tail must have been physically discarded: the corrupt
		// record starts at or before off, so nothing past off may remain.
		if fi, err := os.Stat(work); err != nil || fi.Size() > off {
			t.Fatalf("off=%d: tail not truncated, size %d", off, fi.Size())
		}
		// And the store must accept writes again after recovery.
		must(t, r.Put(MainLoop, 9, 99, []byte("post-recovery")))
		must(t, r.Close())
	}
}

// TestDiskRecoveryTruncationSweep cuts the log at every possible length
// (mid-header, mid-payload, mid-CRC, and exactly on record boundaries) and
// asserts recovery lands exactly on the last checkpoint that fits.
func TestDiskRecoveryTruncationSweep(t *testing.T) {
	dir := t.TempDir()
	orig := filepath.Join(dir, "orig.log")
	ckptEnd := buildCheckpointedLog(t, orig, 4)
	logBytes, err := os.ReadFile(orig)
	must(t, err)
	size := int64(len(logBytes))

	work := filepath.Join(dir, "cut.log")
	for cut := int64(0); cut <= size; cut++ {
		must(t, os.WriteFile(work, logBytes[:cut], 0o644))
		r, err := OpenDisk(work)
		if err != nil {
			t.Fatalf("cut=%d: OpenDisk after truncation: %v", cut, err)
		}
		checkRecoveredAt(t, r, ckptEnd, cut)
		must(t, r.Close())
	}
}

// TestDiskRecoveryHugeLengthHeader flips the high byte of a record's length
// field directly. Before the replay guard on remaining file size this made
// recovery allocate a buffer for the bogus length (up to 1 GiB); now it must
// simply treat the record as a torn tail.
func TestDiskRecoveryHugeLengthHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tornado.log")
	ckptEnd := buildCheckpointedLog(t, path, 2)

	// First record of round 2 is the put at offset ckptEnd[1]; its dataLen
	// field is bytes 25..29 of the header. Set the top byte to 0x30, i.e. a
	// claimed length of ~800 MiB — far beyond the file but under the old
	// 1<<30 plausibility cap, so only the remaining-bytes guard rejects it.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	must(t, err)
	if _, err := f.WriteAt([]byte{0x30}, ckptEnd[1]+28); err != nil {
		t.Fatal(err)
	}
	must(t, f.Close())

	r, err := OpenDisk(path)
	must(t, err)
	defer r.Close()
	checkRecoveredAt(t, r, ckptEnd, ckptEnd[1])
}

// TestDiskTruncatePersists checks that Truncate survives close/reopen via its
// log record: truncated versions must not be resurrected by replay.
func TestDiskTruncatePersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tornado.log")
	s, err := OpenDisk(path)
	must(t, err)
	must(t, s.Put(MainLoop, 1, 1, []byte("one")))
	must(t, s.Put(MainLoop, 1, 2, []byte("two")))
	must(t, s.Put(MainLoop, 1, 3, []byte("three"))) // uncommitted work above the checkpoint
	must(t, s.Put(MainLoop, 2, 3, []byte("only-above")))
	must(t, s.Flush(MainLoop, 2))
	must(t, s.Truncate(MainLoop, 2))
	must(t, s.Close())

	r, err := OpenDisk(path)
	must(t, err)
	defer r.Close()
	data, iter, err := r.Latest(MainLoop, 1, 1<<40)
	if err != nil || string(data) != "two" || iter != 2 {
		t.Fatalf("after Truncate+reopen Latest = (%q, %d, %v); want (two, 2)", data, iter, err)
	}
	if _, _, err := r.Latest(MainLoop, 2, 1<<40); !errors.Is(err, ErrNotFound) {
		t.Fatalf("vertex with only truncated versions still readable: %v", err)
	}
	ckpt, err := r.LastCheckpoint(MainLoop)
	if err != nil || ckpt != 2 {
		t.Fatalf("checkpoint after Truncate+reopen = (%d, %v); want 2", ckpt, err)
	}
	// Recovery writes stamp above the floor as usual.
	must(t, r.Put(MainLoop, 1, 3, []byte("recomputed")))
	if data, _, err := r.Latest(MainLoop, 1, 1<<40); err != nil || string(data) != "recomputed" {
		t.Fatalf("write after truncate-reopen = (%q, %v)", data, err)
	}
}
