package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"tornado/internal/stream"
)

// TestBackendEquivalence drives MemStore and DiskStore with identical random
// operation sequences and asserts observationally identical behavior —
// including after a close/reopen of the disk backend mid-sequence. Both
// backends implement one contract; any divergence is a bug in one of them.
func TestBackendEquivalence(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) * 7919))
			mem := NewMemStore()
			path := filepath.Join(t.TempDir(), "log")
			disk, err := OpenDisk(path)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { disk.Close() }()

			loops := []LoopID{0, 1, 2}
			verts := []stream.VertexID{1, 2, 3, 4}
			maxIter := int64(40)

			check := func(op int) {
				t.Helper()
				for _, l := range loops {
					for _, v := range verts {
						probe := rng.Int63n(maxIter + 1)
						md, mi, merr := mem.Latest(l, v, probe)
						dd, di, derr := disk.Latest(l, v, probe)
						if errors.Is(merr, ErrNotFound) != errors.Is(derr, ErrNotFound) {
							t.Fatalf("op %d: Latest(%d,%d,%d) errs diverge: %v vs %v", op, l, v, probe, merr, derr)
						}
						if merr == nil && (mi != di || !bytes.Equal(md, dd)) {
							t.Fatalf("op %d: Latest(%d,%d,%d) = (%q,%d) vs (%q,%d)", op, l, v, probe, md, mi, dd, di)
						}
					}
					mc, merr := mem.LastCheckpoint(l)
					dc, derr := disk.LastCheckpoint(l)
					if errors.Is(merr, ErrNotFound) != errors.Is(derr, ErrNotFound) || (merr == nil && mc != dc) {
						t.Fatalf("op %d: LastCheckpoint(%d) diverges: (%d,%v) vs (%d,%v)", op, l, mc, merr, dc, derr)
					}
				}
			}

			for op := 0; op < 150; op++ {
				l := loops[rng.Intn(len(loops))]
				v := verts[rng.Intn(len(verts))]
				switch rng.Intn(7) {
				case 0, 1, 2:
					iter := rng.Int63n(maxIter)
					data := []byte(fmt.Sprintf("%d/%d/%d/%d", l, v, iter, op))
					must(t, mem.Put(l, v, iter, data))
					must(t, disk.Put(l, v, iter, data))
				case 3:
					upTo := rng.Int63n(maxIter)
					must(t, mem.Flush(l, upTo))
					must(t, disk.Flush(l, upTo))
				case 4:
					keep := rng.Int63n(maxIter)
					must(t, mem.Compact(l, keep))
					must(t, disk.Compact(l, keep))
					// NOTE: disk compaction only trims the index; after a
					// reopen the replayed log restores old versions, so skip
					// reopen-equivalence checks once compaction diverges the
					// persisted history. Keep the live views comparable by
					// never reopening after a compact in this trial.
				case 5:
					must(t, mem.DropLoop(l))
					must(t, disk.DropLoop(l))
				case 6:
					above := rng.Int63n(maxIter)
					must(t, mem.Truncate(l, above))
					must(t, disk.Truncate(l, above))
				}
				if op%25 == 24 {
					check(op)
				}
			}
			check(150)
		})
	}
}

// TestDiskReopenPreservesEverything replays put/flush/drop sequences (no
// compaction, whose persistence semantics intentionally differ) and checks
// the reopened store equals the in-memory reference.
func TestDiskReopenPreservesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	mem := NewMemStore()
	path := filepath.Join(t.TempDir(), "log")
	disk, err := OpenDisk(path)
	must(t, err)
	for op := 0; op < 100; op++ {
		l := LoopID(rng.Intn(2))
		v := stream.VertexID(rng.Intn(4))
		switch rng.Intn(6) {
		case 0, 1, 2:
			iter := rng.Int63n(30)
			data := []byte(fmt.Sprintf("%d:%d:%d:%d", l, v, iter, op))
			must(t, mem.Put(l, v, iter, data))
			must(t, disk.Put(l, v, iter, data))
		case 3:
			upTo := rng.Int63n(30)
			must(t, mem.Flush(l, upTo))
			must(t, disk.Flush(l, upTo))
		case 4:
			must(t, mem.DropLoop(l))
			must(t, disk.DropLoop(l))
		case 5:
			above := rng.Int63n(30)
			must(t, mem.Truncate(l, above))
			must(t, disk.Truncate(l, above))
		}
	}
	must(t, disk.Close())
	reopened, err := OpenDisk(path)
	must(t, err)
	defer reopened.Close()
	for l := LoopID(0); l < 2; l++ {
		for v := stream.VertexID(0); v < 4; v++ {
			for probe := int64(0); probe <= 30; probe += 3 {
				md, mi, merr := mem.Latest(l, v, probe)
				dd, di, derr := reopened.Latest(l, v, probe)
				if errors.Is(merr, ErrNotFound) != errors.Is(derr, ErrNotFound) {
					t.Fatalf("Latest(%d,%d,%d) errs diverge after reopen: %v vs %v", l, v, probe, merr, derr)
				}
				if merr == nil && (mi != di || !bytes.Equal(md, dd)) {
					t.Fatalf("Latest(%d,%d,%d) diverges after reopen", l, v, probe)
				}
			}
		}
	}
}
