package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"tornado/internal/stream"
)

// stores returns one instance of every backend, keyed by name.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := OpenDisk(filepath.Join(t.TempDir(), "tornado.log"))
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	t.Cleanup(func() { disk.Close() })
	mvcc := NewMVCCStore()
	t.Cleanup(func() { mvcc.Close() })
	return map[string]Store{
		"mem":  NewMemStore(),
		"disk": disk,
		"mvcc": mvcc,
	}
}

func TestPutLatest(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			must(t, s.Put(MainLoop, 1, 5, []byte("v5")))
			must(t, s.Put(MainLoop, 1, 10, []byte("v10")))
			must(t, s.Put(MainLoop, 1, 7, []byte("v7"))) // out-of-order insert

			cases := []struct {
				maxIter  int64
				want     string
				wantIter int64
			}{
				{5, "v5", 5}, {6, "v5", 5}, {7, "v7", 7}, {9, "v7", 7}, {10, "v10", 10}, {100, "v10", 10},
			}
			for _, c := range cases {
				data, iter, err := s.Latest(MainLoop, 1, c.maxIter)
				if err != nil {
					t.Fatalf("Latest(maxIter=%d): %v", c.maxIter, err)
				}
				if string(data) != c.want || iter != c.wantIter {
					t.Errorf("Latest(maxIter=%d) = (%q, %d); want (%q, %d)", c.maxIter, data, iter, c.want, c.wantIter)
				}
			}
			if _, _, err := s.Latest(MainLoop, 1, 4); !errors.Is(err, ErrNotFound) {
				t.Errorf("Latest below first version: err = %v; want ErrNotFound", err)
			}
			if _, _, err := s.Latest(MainLoop, 99, 100); !errors.Is(err, ErrNotFound) {
				t.Errorf("Latest of unknown vertex: err = %v; want ErrNotFound", err)
			}
		})
	}
}

func TestPutOverwritesSameIteration(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			must(t, s.Put(MainLoop, 1, 5, []byte("a")))
			must(t, s.Put(MainLoop, 1, 5, []byte("b")))
			data, _, err := s.Latest(MainLoop, 1, 5)
			if err != nil || string(data) != "b" {
				t.Fatalf("Latest = (%q, %v); want b", data, err)
			}
		})
	}
}

func TestLoopIsolation(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			must(t, s.Put(MainLoop, 1, 1, []byte("main")))
			must(t, s.Put(LoopID(7), 1, 1, []byte("branch")))
			data, _, err := s.Latest(LoopID(7), 1, 10)
			if err != nil || string(data) != "branch" {
				t.Fatalf("branch read = (%q, %v)", data, err)
			}
			must(t, s.DropLoop(LoopID(7)))
			if _, _, err := s.Latest(LoopID(7), 1, 10); !errors.Is(err, ErrNotFound) {
				t.Fatalf("after DropLoop err = %v; want ErrNotFound", err)
			}
			if data, _, err := s.Latest(MainLoop, 1, 10); err != nil || string(data) != "main" {
				t.Fatalf("main loop affected by DropLoop: (%q, %v)", data, err)
			}
		})
	}
}

func TestScanSnapshot(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			must(t, s.Put(MainLoop, 3, 2, []byte("c2")))
			must(t, s.Put(MainLoop, 1, 1, []byte("a1")))
			must(t, s.Put(MainLoop, 1, 9, []byte("a9")))
			must(t, s.Put(MainLoop, 2, 8, []byte("b8")))
			var got []Record
			must(t, s.Scan(MainLoop, 5, func(r Record) error {
				got = append(got, r)
				return nil
			}))
			// Vertex 1 -> a1 (9 is too new), vertex 2 absent (8 too new), vertex 3 -> c2.
			if len(got) != 2 {
				t.Fatalf("Scan returned %d records: %+v; want 2", len(got), got)
			}
			if got[0].Vertex != 1 || string(got[0].Data) != "a1" || got[1].Vertex != 3 || string(got[1].Data) != "c2" {
				t.Fatalf("Scan = %+v", got)
			}
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Vertex < got[j].Vertex }) {
				t.Fatal("Scan output not in vertex order")
			}
		})
	}
}

func TestScanAbortsOnError(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			must(t, s.Put(MainLoop, 1, 1, []byte("x")))
			must(t, s.Put(MainLoop, 2, 1, []byte("y")))
			sentinel := errors.New("stop")
			calls := 0
			err := s.Scan(MainLoop, 10, func(Record) error {
				calls++
				return sentinel
			})
			if !errors.Is(err, sentinel) || calls != 1 {
				t.Fatalf("Scan err = %v after %d calls; want sentinel after 1", err, calls)
			}
		})
	}
}

func TestCheckpointMark(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.LastCheckpoint(MainLoop); !errors.Is(err, ErrNotFound) {
				t.Fatalf("LastCheckpoint before Flush: %v; want ErrNotFound", err)
			}
			must(t, s.Flush(MainLoop, 4))
			must(t, s.Flush(MainLoop, 9))
			must(t, s.Flush(MainLoop, 7)) // stale flush must not rewind
			got, err := s.LastCheckpoint(MainLoop)
			if err != nil || got != 9 {
				t.Fatalf("LastCheckpoint = (%d, %v); want 9", got, err)
			}
		})
	}
}

func TestCompactKeepsSnapshotFloor(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			must(t, s.Put(MainLoop, 1, 1, []byte("v1")))
			must(t, s.Put(MainLoop, 1, 5, []byte("v5")))
			must(t, s.Put(MainLoop, 1, 9, []byte("v9")))
			must(t, s.Compact(MainLoop, 6))
			// Version 1 is superseded by version 5 <= 6 and may go; the
			// freshest version <= 6 must survive so snapshots at 6 still work.
			data, iter, err := s.Latest(MainLoop, 1, 6)
			if err != nil || string(data) != "v5" || iter != 5 {
				t.Fatalf("Latest(6) after Compact = (%q, %d, %v); want v5", data, iter, err)
			}
			if data, _, err := s.Latest(MainLoop, 1, 100); err != nil || string(data) != "v9" {
				t.Fatalf("newest version lost by Compact: (%q, %v)", data, err)
			}
		})
	}
}

func TestMemCompactDropsVersions(t *testing.T) {
	s := NewMemStore()
	for i := int64(1); i <= 10; i++ {
		must(t, s.Put(MainLoop, 1, i, []byte{byte(i)}))
	}
	if n := s.NumVersions(MainLoop); n != 10 {
		t.Fatalf("NumVersions = %d; want 10", n)
	}
	must(t, s.Compact(MainLoop, 8))
	if n := s.NumVersions(MainLoop); n != 3 { // versions 8, 9, 10
		t.Fatalf("NumVersions after Compact = %d; want 3", n)
	}
}

func TestConcurrentPuts(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			const workers, per = 8, 100
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						v := stream.VertexID(w)
						err := s.Put(MainLoop, v, int64(i), []byte(fmt.Sprintf("%d:%d", w, i)))
						if err != nil {
							t.Errorf("Put: %v", err)
						}
					}
				}(w)
			}
			wg.Wait()
			for w := 0; w < workers; w++ {
				data, iter, err := s.Latest(MainLoop, stream.VertexID(w), 1<<40)
				if err != nil {
					t.Fatalf("Latest(%d): %v", w, err)
				}
				want := fmt.Sprintf("%d:%d", w, per-1)
				if string(data) != want || iter != per-1 {
					t.Fatalf("Latest(%d) = (%q, %d); want (%q, %d)", w, data, iter, want, per-1)
				}
			}
		})
	}
}

func TestDiskRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tornado.log")
	s, err := OpenDisk(path)
	must(t, err)
	must(t, s.Put(MainLoop, 1, 1, []byte("one")))
	must(t, s.Put(MainLoop, 2, 3, []byte("two")))
	must(t, s.Put(LoopID(5), 9, 4, []byte("branch")))
	must(t, s.Flush(MainLoop, 3))
	must(t, s.Close())

	r, err := OpenDisk(path)
	must(t, err)
	defer r.Close()
	data, iter, err := r.Latest(MainLoop, 2, 10)
	if err != nil || string(data) != "two" || iter != 3 {
		t.Fatalf("recovered Latest = (%q, %d, %v); want (two, 3)", data, iter, err)
	}
	if data, _, err := r.Latest(LoopID(5), 9, 10); err != nil || string(data) != "branch" {
		t.Fatalf("branch loop not recovered: (%q, %v)", data, err)
	}
	ckpt, err := r.LastCheckpoint(MainLoop)
	if err != nil || ckpt != 3 {
		t.Fatalf("recovered checkpoint = (%d, %v); want 3", ckpt, err)
	}
}

func TestDiskRecoveryDiscardsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tornado.log")
	s, err := OpenDisk(path)
	must(t, err)
	must(t, s.Put(MainLoop, 1, 1, []byte("good")))
	must(t, s.Flush(MainLoop, 1))
	must(t, s.Put(MainLoop, 1, 2, []byte("doomed")))
	must(t, s.Flush(MainLoop, 2))
	must(t, s.Close())

	// Corrupt the tail: truncate mid-record.
	fi, err := os.Stat(path)
	must(t, err)
	must(t, os.Truncate(path, fi.Size()-7))

	r, err := OpenDisk(path)
	must(t, err)
	defer r.Close()
	data, iter, err := r.Latest(MainLoop, 1, 10)
	if err != nil {
		t.Fatalf("Latest after torn tail: %v", err)
	}
	// Depending on where the cut fell, iteration 2's put may survive (its
	// record was complete) but the final checkpoint must be gone.
	if iter != 1 && iter != 2 {
		t.Fatalf("recovered iter = %d; want 1 or 2", iter)
	}
	_ = data
	ckpt, err := r.LastCheckpoint(MainLoop)
	if err != nil || ckpt != 1 {
		t.Fatalf("checkpoint after torn tail = (%d, %v); want 1", ckpt, err)
	}
	// The store must accept new writes after recovery.
	must(t, r.Put(MainLoop, 1, 3, []byte("new")))
	if data, _, err := r.Latest(MainLoop, 1, 10); err != nil || string(data) != "new" {
		t.Fatalf("write after recovery = (%q, %v)", data, err)
	}
}

func TestDiskRecoveryDiscardsCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tornado.log")
	s, err := OpenDisk(path)
	must(t, err)
	must(t, s.Put(MainLoop, 1, 1, []byte("good")))
	must(t, s.Flush(MainLoop, 1))
	must(t, s.Put(MainLoop, 1, 2, bytes.Repeat([]byte("x"), 64)))
	must(t, s.Flush(MainLoop, 2))
	must(t, s.Close())

	// Flip a byte inside the second record's payload.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	must(t, err)
	fi, err := f.Stat()
	must(t, err)
	// The log tail is: put record (29B header + 64B payload + 4B crc)
	// followed by a checkpoint record (29B header + 4B crc). Aim inside the
	// put's payload.
	if _, err := f.WriteAt([]byte{0xFF}, fi.Size()-33-20); err != nil {
		t.Fatal(err)
	}
	must(t, f.Close())

	r, err := OpenDisk(path)
	must(t, err)
	defer r.Close()
	_, iter, err := r.Latest(MainLoop, 1, 10)
	if err != nil || iter != 1 {
		t.Fatalf("after corrupt record Latest iter = (%d, %v); want 1", iter, err)
	}
}

func TestVersionsProperty(t *testing.T) {
	// Property: for any insertion order, latest(maxIter) returns the value
	// with the greatest iteration <= maxIter.
	f := func(iters []int16, probe int16) bool {
		var vs versions
		best := int64(-1 << 62)
		seen := map[int64]bool{}
		for _, raw := range iters {
			it := int64(raw)
			vs.put(it, []byte{byte(raw)})
			seen[it] = true
			if it <= int64(probe) && it > best {
				best = it
			}
		}
		_, gotIter, ok := vs.latest(int64(probe))
		if best == -1<<62 {
			return !ok
		}
		return ok && gotIter == best
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func must(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestMemScanCacheInvalidation drives the sorted-ID cache through its
// invalidation edges: scans interleaved with new-vertex puts, existing-vertex
// puts (no invalidation), truncation-driven deletions, and concurrent
// scanners racing a writer. Every scan must see the full current ID set in
// ascending order.
func TestMemScanCacheInvalidation(t *testing.T) {
	s := NewMemStore()
	scanIDs := func() []stream.VertexID {
		var got []stream.VertexID
		if err := s.Scan(MainLoop, 1<<40, func(r Record) error {
			got = append(got, r.Vertex)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	want := func(ids ...stream.VertexID) {
		t.Helper()
		got := scanIDs()
		if len(got) != len(ids) {
			t.Fatalf("scan saw %v, want %v", got, ids)
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("scan saw %v, want %v", got, ids)
			}
		}
	}
	want() // empty store
	put := func(v stream.VertexID, iter int64) {
		if err := s.Put(MainLoop, v, iter, []byte{byte(v)}); err != nil {
			t.Fatal(err)
		}
	}
	put(30, 1)
	put(10, 1)
	want(10, 30) // cache built fresh, sorted
	put(20, 2)
	want(10, 20, 30) // new vertex invalidates
	put(10, 3)
	want(10, 20, 30) // existing-vertex put keeps the cache
	// Truncate above iteration 1: vertices whose only versions are newer
	// vanish (20 at iter 2; 10 keeps its iter-1 version).
	if err := s.Truncate(MainLoop, 1); err != nil {
		t.Fatal(err)
	}
	want(10, 30)
	put(20, 5)
	want(10, 20, 30)
	// Concurrent scanners racing new-vertex writers: every scan must be
	// sorted and include everything written before it started.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ids := scanIDs()
				if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
					t.Errorf("unsorted scan: %v", ids)
					return
				}
				if len(ids) < 3 {
					t.Errorf("scan lost vertices: %v", ids)
					return
				}
			}
		}()
	}
	for v := stream.VertexID(100); v < 400; v++ {
		put(v, 1)
	}
	close(stop)
	wg.Wait()
	want2 := scanIDs()
	if len(want2) != 303 {
		t.Fatalf("final scan saw %d vertices, want 303", len(want2))
	}
}

// BenchmarkMemScan measures Scan over a settled vertex population — the
// sorted-ID cache turns the per-scan sort into a cache hit.
// BenchmarkMemPut covers the two hot commit-path shapes: fresh iterations
// (one defensive copy each) and identical overwrites (at-least-once
// redelivery), which must not allocate at all.
func BenchmarkMemPut(b *testing.B) {
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i)
	}
	b.Run("fresh", func(b *testing.B) {
		s := NewMemStore()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// 1024 vertices, advancing iterations: every put is a new version.
			if err := s.Put(MainLoop, stream.VertexID(i%1024), int64(i/1024), payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("overwrite-same", func(b *testing.B) {
		s := NewMemStore()
		for v := stream.VertexID(0); v < 1024; v++ {
			if err := s.Put(MainLoop, v, 1, payload); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := s.Put(MainLoop, stream.VertexID(i%1024), 1, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMVCCPut(b *testing.B) {
	payload := make([]byte, 64)
	s := NewMVCCStore()
	defer s.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Put(MainLoop, stream.VertexID(i%1024), int64(i/1024), payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMVCCSnapshot measures the O(1) handle grab against a populated
// store (compare with BenchmarkMemScan, MemStore's only consistent-view
// primitive at the same vertex count).
func BenchmarkMVCCSnapshot(b *testing.B) {
	s := NewMVCCStore()
	defer s.Close()
	for v := stream.VertexID(0); v < 5000; v++ {
		if err := s.Put(MainLoop, v, 1, []byte{1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := s.Snapshot(MainLoop)
		h.Release()
	}
}

func BenchmarkMemScan(b *testing.B) {
	s := NewMemStore()
	for v := stream.VertexID(0); v < 5000; v++ {
		if err := s.Put(MainLoop, v, 1, []byte{1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := s.Scan(MainLoop, 1<<40, func(Record) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 5000 {
			b.Fatalf("scan saw %d", n)
		}
	}
}
