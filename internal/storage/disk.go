package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"tornado/internal/stream"
)

// DiskStore is a Store backed by a single append-only log file with an
// in-memory index. It stands in for the paper's PostgreSQL backend: every
// Put appends a record, Flush fsyncs the log and appends a checkpoint mark,
// and Open replays the log to recover all state written before a crash
// (truncated or corrupt tails are discarded, mirroring write-ahead-log
// recovery).
//
// Record layout (little endian):
//
//	kind(1) loop(8) vertex(8) iteration(8) dataLen(4) data(dataLen) crc32(4)
//
// where crc32 covers everything before it. kind is recPut or recCheckpoint
// (checkpoint records carry no data and reuse the iteration field).
type DiskStore struct {
	mu   sync.RWMutex
	mem  *MemStore // index + cache; the log is the durable copy
	f    *os.File
	w    *bufio.Writer
	path string
}

const (
	recPut        = byte(1)
	recCheckpoint = byte(2)
	recDropLoop   = byte(3)
	recTruncate   = byte(4)

	recHeaderLen = 1 + 8 + 8 + 8 + 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// OpenDisk opens (creating if needed) a disk store at path and recovers any
// existing state from the log.
func OpenDisk(path string) (*DiskStore, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("storage: create log dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open log: %w", err)
	}
	s := &DiskStore{mem: NewMemStore(), f: f, path: path}
	valid, err := s.replay()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Discard a torn tail so new records append after the last valid one.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: seek: %w", err)
	}
	s.w = bufio.NewWriterSize(f, 1<<16)
	return s, nil
}

// replay scans the log, rebuilding the in-memory index. It returns the
// offset just past the last valid record.
func (s *DiskStore) replay() (int64, error) {
	fi, err := s.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("storage: stat log: %w", err)
	}
	size := fi.Size()
	r := bufio.NewReaderSize(s.f, 1<<16)
	var off int64
	hdr := make([]byte, recHeaderLen)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			// Clean EOF or torn header: stop at the last valid offset.
			return off, nil
		}
		kind := hdr[0]
		loop := LoopID(binary.LittleEndian.Uint64(hdr[1:9]))
		vertex := stream.VertexID(binary.LittleEndian.Uint64(hdr[9:17]))
		iter := int64(binary.LittleEndian.Uint64(hdr[17:25]))
		dataLen := binary.LittleEndian.Uint32(hdr[25:29])
		// A length that cannot fit in the rest of the file is a torn or
		// bit-flipped header; bail out before allocating a buffer for it.
		if int64(dataLen) > size-off-int64(recHeaderLen)-4 {
			return off, nil
		}
		body := make([]byte, int(dataLen)+4)
		if _, err := io.ReadFull(r, body); err != nil {
			return off, nil
		}
		data, crcBytes := body[:dataLen], body[dataLen:]
		crc := crc32.Checksum(hdr, crcTable)
		crc = crc32.Update(crc, crcTable, data)
		if crc != binary.LittleEndian.Uint32(crcBytes) {
			return off, nil // corrupt record: discard it and everything after
		}
		switch kind {
		case recPut:
			if err := s.mem.Put(loop, vertex, iter, data); err != nil {
				return 0, err
			}
		case recCheckpoint:
			if err := s.mem.Flush(loop, iter); err != nil {
				return 0, err
			}
		case recDropLoop:
			if err := s.mem.DropLoop(loop); err != nil {
				return 0, err
			}
		case recTruncate:
			if err := s.mem.Truncate(loop, iter); err != nil {
				return 0, err
			}
		default:
			return off, nil // unknown kind: torn/garbage tail
		}
		off += int64(recHeaderLen) + int64(dataLen) + 4
	}
}

func (s *DiskStore) append(kind byte, loop LoopID, vertex stream.VertexID, iter int64, data []byte) error {
	hdr := make([]byte, recHeaderLen)
	hdr[0] = kind
	binary.LittleEndian.PutUint64(hdr[1:9], uint64(loop))
	binary.LittleEndian.PutUint64(hdr[9:17], uint64(vertex))
	binary.LittleEndian.PutUint64(hdr[17:25], uint64(iter))
	binary.LittleEndian.PutUint32(hdr[25:29], uint32(len(data)))
	crc := crc32.Checksum(hdr, crcTable)
	crc = crc32.Update(crc, crcTable, data)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc)
	if _, err := s.w.Write(hdr); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	if _, err := s.w.Write(data); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	if _, err := s.w.Write(crcBuf[:]); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	return nil
}

// Put implements Store.
func (s *DiskStore) Put(loop LoopID, vertex stream.VertexID, iteration int64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(recPut, loop, vertex, iteration, data); err != nil {
		return err
	}
	return s.mem.Put(loop, vertex, iteration, data)
}

// Latest implements Store.
func (s *DiskStore) Latest(loop LoopID, vertex stream.VertexID, maxIter int64) ([]byte, int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.mem.Latest(loop, vertex, maxIter)
}

// Scan implements Store.
func (s *DiskStore) Scan(loop LoopID, maxIter int64, fn func(Record) error) error {
	return s.mem.Scan(loop, maxIter, fn)
}

// Flush implements Store: it records the checkpoint mark, flushes the
// buffered writer and fsyncs the log, making the checkpoint durable.
func (s *DiskStore) Flush(loop LoopID, upTo int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(recCheckpoint, loop, 0, upTo, nil); err != nil {
		return err
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("storage: flush: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("storage: fsync: %w", err)
	}
	return s.mem.Flush(loop, upTo)
}

// LastCheckpoint implements Store.
func (s *DiskStore) LastCheckpoint(loop LoopID) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.mem.LastCheckpoint(loop)
}

// Compact implements Store. Compaction drops superseded versions from the
// index only; the log keeps history until rewritten (out of scope).
func (s *DiskStore) Compact(loop LoopID, keepFrom int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.Compact(loop, keepFrom)
}

// Pin implements Store: pins live in the in-memory index's registry, which
// is exactly what Compact (also delegated to the index) clamps against.
func (s *DiskStore) Pin(loop LoopID, iter int64) func() {
	return s.mem.Pin(loop, iter)
}

// Truncate implements Store: a truncation record is logged (and fsynced, so
// a crash during recovery cannot resurrect the truncated versions) and the
// index floor applied.
func (s *DiskStore) Truncate(loop LoopID, above int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(recTruncate, loop, 0, above, nil); err != nil {
		return err
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("storage: flush truncate: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("storage: fsync truncate: %w", err)
	}
	return s.mem.Truncate(loop, above)
}

// DropLoop implements Store.
func (s *DiskStore) DropLoop(loop LoopID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(recDropLoop, loop, 0, 0, nil); err != nil {
		return err
	}
	return s.mem.DropLoop(loop)
}

// Close flushes buffers and closes the log file.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return fmt.Errorf("storage: flush on close: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("storage: fsync on close: %w", err)
	}
	return s.f.Close()
}

// Path returns the log file path.
func (s *DiskStore) Path() string { return s.path }

var _ Store = (*DiskStore)(nil)
