package storage

import (
	"bytes"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tornado/internal/stream"
)

// This file implements MVCCStore, the copy-on-write multi-version backend.
//
// MemStore serializes every fork against every commit: taking a consistent
// view means materializing a full Scan under the store lock, O(n) in the
// vertex count, and nothing ties version reclamation to the snapshots still
// reading. MVCCStore inverts the design. Each loop's index is a persistent
// treap keyed by vertex: writers path-copy the O(log n) spine from the root
// to the touched node and publish the new root with a single atomic pointer
// store, so every root ever published describes a complete, immutable tree.
// A Snapshot is therefore one atomic root load — O(1) regardless of how
// many vertices or versions exist — and readers (live or snapshot) never
// take a lock at all.
//
// Reclamation is epoch-style by construction: a snapshot handle keeps its
// root reachable, the root keeps exactly the nodes of its epoch reachable,
// and Go's GC frees a version the moment no published root and no
// outstanding handle can reach it. Compaction rewrites version chains below
// `min(checkpoint horizon, oldest pin)` into a new root; subtrees with
// nothing to reclaim are shared, not copied, so the treap's shape (and its
// hash-derived priorities) survive. A handle taken before the compaction
// still reads the old root — a live branch structurally cannot lose its
// view — while the pin registry additionally clamps the floor for readers
// of the live root (the engine's non-handle fallback paths).
type MVCCStore struct {
	loops sync.Map // LoopID -> *mvccLoop
	pins  pinRegistry

	// handles tracks unreleased snapshots for the pinned-snapshot and
	// snapshot-age gauges; correctness never depends on it (the root
	// reference inside the handle is what preserves the view). The map
	// holds lightweight tags rather than the handles themselves, so a
	// handle dropped without Release stays collectible: the GC frees it
	// (and its root) normally, and a finalizer prunes the stale tag so
	// the gauges don't count leaked handles forever.
	handleMu sync.Mutex
	handles  map[*snapTag]struct{}

	compactions  atomic.Int64
	reclaimedVer atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// mvccLoop is one loop's namespace: an atomically published tree root plus
// the checkpoint mark and residency counters. wmu serializes writers only;
// readers load root without any lock.
type mvccLoop struct {
	wmu  sync.Mutex
	root atomic.Pointer[treapNode]
	ckpt atomic.Pointer[int64] // nil until the first Flush

	liveVersions atomic.Int64
	liveBytes    atomic.Int64
}

// treapNode is one immutable node of the persistent vertex index. Nodes are
// never modified after their root is published; writers copy the path from
// the root down and share every untouched subtree.
type treapNode struct {
	key         stream.VertexID
	prio        uint64
	left, right *treapNode
	chain       *vchain
}

// vchain is an immutable version chain in ascending iteration order.
// Mutating operations return a fresh chain (or the receiver, when nothing
// changed) instead of editing in place.
type vchain struct {
	iters []int64
	data  [][]byte
}

// MVCCOption configures an MVCCStore.
type MVCCOption func(*mvccConfig)

type mvccConfig struct {
	compactInterval time.Duration
}

// AutoCompact runs a background compactor that, every interval, compacts
// each loop to its checkpoint horizon (clamped, as every compaction is, at
// the oldest pinned snapshot). Without it the store still compacts whenever
// the engine calls Compact; the background pass additionally reclaims loops
// the engine is not actively driving.
func AutoCompact(interval time.Duration) MVCCOption {
	return func(c *mvccConfig) { c.compactInterval = interval }
}

// NewMVCCStore returns an empty copy-on-write store.
func NewMVCCStore(opts ...MVCCOption) *MVCCStore {
	var cfg mvccConfig
	for _, o := range opts {
		o(&cfg)
	}
	s := &MVCCStore{
		handles: make(map[*snapTag]struct{}),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if cfg.compactInterval > 0 {
		go s.compactor(cfg.compactInterval)
	} else {
		close(s.done)
	}
	return s
}

func (s *MVCCStore) loop(l LoopID) *mvccLoop {
	if lp, ok := s.loops.Load(l); ok {
		return lp.(*mvccLoop)
	}
	lp, _ := s.loops.LoadOrStore(l, &mvccLoop{})
	return lp.(*mvccLoop)
}

func (s *MVCCStore) lookup(l LoopID) *mvccLoop {
	if lp, ok := s.loops.Load(l); ok {
		return lp.(*mvccLoop)
	}
	return nil
}

// Put implements Store. Like MemStore, a re-delivered identical write is a
// no-op with zero allocations and — here — zero published roots.
func (s *MVCCStore) Put(loop LoopID, vertex stream.VertexID, iteration int64, data []byte) error {
	lp := s.loop(loop)
	lp.wmu.Lock()
	defer lp.wmu.Unlock()
	root := lp.root.Load()
	if c := find(root, vertex); c != nil {
		if old, ok := c.get(iteration); ok && bytes.Equal(old, data) {
			return nil
		}
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	var dVer, dBytes int64
	lp.root.Store(insert(root, vertex, func(old *vchain) *vchain {
		nc, replaced, overwrote := old.withPut(iteration, cp)
		if overwrote {
			dBytes = int64(len(cp)) - replaced
		} else {
			dVer, dBytes = 1, int64(len(cp))
		}
		return nc
	}))
	lp.liveVersions.Add(dVer)
	lp.liveBytes.Add(dBytes)
	return nil
}

// Latest implements Store: a lock-free read of the current root.
func (s *MVCCStore) Latest(loop LoopID, vertex stream.VertexID, maxIter int64) ([]byte, int64, error) {
	lp := s.lookup(loop)
	if lp == nil {
		return nil, 0, ErrNotFound
	}
	return chainLatest(find(lp.root.Load(), vertex), maxIter)
}

func chainLatest(c *vchain, maxIter int64) ([]byte, int64, error) {
	if c == nil {
		return nil, 0, ErrNotFound
	}
	data, iter, ok := c.latest(maxIter)
	if !ok {
		return nil, 0, ErrNotFound
	}
	return data, iter, nil
}

// Scan implements Store. The in-order walk of one atomically loaded root is
// a consistent point-in-time view by construction — no record
// materialization, no lock, and concurrent writers are never blocked.
func (s *MVCCStore) Scan(loop LoopID, maxIter int64, fn func(Record) error) error {
	lp := s.lookup(loop)
	if lp == nil {
		return nil
	}
	return scanTree(lp.root.Load(), maxIter, fn)
}

func scanTree(n *treapNode, maxIter int64, fn func(Record) error) error {
	if n == nil {
		return nil
	}
	if err := scanTree(n.left, maxIter, fn); err != nil {
		return err
	}
	if data, iter, ok := n.chain.latest(maxIter); ok {
		if err := fn(Record{Vertex: n.key, Iteration: iter, Data: data}); err != nil {
			return err
		}
	}
	return scanTree(n.right, maxIter, fn)
}

// Flush implements Store: it records the checkpoint mark (all state is
// already "durable" in memory).
func (s *MVCCStore) Flush(loop LoopID, upTo int64) error {
	lp := s.loop(loop)
	lp.wmu.Lock()
	defer lp.wmu.Unlock()
	if ck := lp.ckpt.Load(); ck == nil || upTo > *ck {
		v := upTo
		lp.ckpt.Store(&v)
	}
	return nil
}

// LastCheckpoint implements Store.
func (s *MVCCStore) LastCheckpoint(loop LoopID) (int64, error) {
	lp := s.lookup(loop)
	if lp == nil {
		return 0, ErrNotFound
	}
	ck := lp.ckpt.Load()
	if ck == nil {
		return 0, ErrNotFound
	}
	return *ck, nil
}

// Compact implements Store: chains are rewritten below keepFrom (clamped at
// the oldest pin) into a fresh root; subtrees with nothing to drop are
// shared with the old root, which outstanding snapshot handles keep intact.
func (s *MVCCStore) Compact(loop LoopID, keepFrom int64) error {
	keepFrom = s.pins.clamp(loop, keepFrom)
	lp := s.lookup(loop)
	if lp == nil {
		return nil
	}
	lp.wmu.Lock()
	defer lp.wmu.Unlock()
	var rc reclaim
	root := lp.root.Load()
	if nr := compactTree(root, keepFrom, &rc); nr != root {
		lp.root.Store(nr)
		lp.liveVersions.Add(-rc.versions)
		lp.liveBytes.Add(-rc.bytes)
		s.reclaimedVer.Add(rc.versions)
	}
	s.compactions.Add(1)
	return nil
}

// Truncate implements Store: the crash-recovery floor, deliberately not
// clamped by pins (see Store.Pin).
func (s *MVCCStore) Truncate(loop LoopID, above int64) error {
	lp := s.lookup(loop)
	if lp == nil {
		return nil
	}
	lp.wmu.Lock()
	defer lp.wmu.Unlock()
	var rc reclaim
	root := lp.root.Load()
	if nr := truncateTree(root, above, &rc); nr != root {
		lp.root.Store(nr)
		lp.liveVersions.Add(-rc.versions)
		lp.liveBytes.Add(-rc.bytes)
	}
	return nil
}

// DropLoop implements Store. Outstanding handles on the loop keep reading
// their captured root; only the live index disappears.
func (s *MVCCStore) DropLoop(loop LoopID) error {
	s.loops.Delete(loop)
	return nil
}

// Pin implements Store.
func (s *MVCCStore) Pin(loop LoopID, iter int64) func() {
	return s.pins.pin(loop, iter)
}

// Close implements Store: it stops the background compactor and drops all
// loops. Idempotent.
func (s *MVCCStore) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
	s.loops.Range(func(k, _ any) bool {
		s.loops.Delete(k)
		return true
	})
	return nil
}

// compactor is the background reclamation pass: every interval, each loop
// with a checkpoint is compacted to that horizon (Compact clamps at pins).
func (s *MVCCStore) compactor(interval time.Duration) {
	defer close(s.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.CompactAll()
		}
	}
}

// CompactAll compacts every loop below its checkpoint horizon (loops never
// flushed are left untouched; nothing below no-checkpoint is reclaimable).
func (s *MVCCStore) CompactAll() {
	s.loops.Range(func(k, _ any) bool {
		loop := k.(LoopID)
		if ck, err := s.LastCheckpoint(loop); err == nil {
			_ = s.Compact(loop, ck)
		}
		return true
	})
}

// NumVersions reports the number of live versions in a loop (the published
// root's, not any handle's).
func (s *MVCCStore) NumVersions(loop LoopID) int {
	lp := s.lookup(loop)
	if lp == nil {
		return 0
	}
	return int(lp.liveVersions.Load())
}

// Snapshot returns an O(1) read-only handle on the loop's current state:
// one atomic root load, no locks, no copying. The handle stays exactly as
// consistent and complete as it was at the grab no matter what Put, Compact,
// Truncate or DropLoop do afterwards; Release it when done so the
// pinned-snapshot gauges (and the GC) can let its epoch go.
func (s *MVCCStore) Snapshot(loop LoopID) Snapshot {
	var root *treapNode
	if lp := s.lookup(loop); lp != nil {
		root = lp.root.Load()
	}
	h := &mvccSnap{store: s, root: root, tag: &snapTag{taken: time.Now()}}
	s.handleMu.Lock()
	s.handles[h.tag] = struct{}{}
	s.handleMu.Unlock()
	// The gauge map references the tag, never the handle, so a leaked
	// handle is still collectible; the finalizer then retires its tag.
	runtime.SetFinalizer(h, (*mvccSnap).finalize)
	return h
}

// mvccSnap is a point-in-time view: just a captured root. root is written
// once at construction and never again — Latest/Scan on one handle from many
// goroutines, concurrent with Release, are race-free because every method
// only ever reads it.
type mvccSnap struct {
	store *MVCCStore
	root  *treapNode
	tag   *snapTag
	once  sync.Once
}

// snapTag is the store-side gauge entry for one handle. It carries no
// reference to the handle or its root.
type snapTag struct {
	taken time.Time
}

// Latest implements Snapshot.
func (h *mvccSnap) Latest(vertex stream.VertexID, maxIter int64) ([]byte, int64, error) {
	return chainLatest(find(h.root, vertex), maxIter)
}

// Scan implements Snapshot.
func (h *mvccSnap) Scan(maxIter int64, fn func(Record) error) error {
	return scanTree(h.root, maxIter, fn)
}

// Release implements Snapshot. Idempotent. It deliberately does not clear
// h.root: a reader racing a Release (e.g. a ReadState mid-Scan while
// recovery swaps the engine's SnapshotSource) keeps its coherent view
// instead of hitting a data race or a spurious ErrNotFound. Dropping the
// tag removes the store-side reference; the root is freed as soon as the
// handle itself is unreachable.
func (h *mvccSnap) Release() {
	h.once.Do(func() {
		runtime.SetFinalizer(h, nil)
		h.store.dropTag(h.tag)
	})
}

// finalize retires a leaked handle's gauge entry once the GC proves the
// handle (and therefore its root) unreachable.
func (h *mvccSnap) finalize() {
	h.store.dropTag(h.tag)
}

func (s *MVCCStore) dropTag(t *snapTag) {
	s.handleMu.Lock()
	delete(s.handles, t)
	s.handleMu.Unlock()
}

// StoreStats implements StatsProvider.
func (s *MVCCStore) StoreStats() StoreStats {
	st := StoreStats{
		Compactions:       s.compactions.Load(),
		ReclaimedVersions: s.reclaimedVer.Load(),
	}
	s.loops.Range(func(_, v any) bool {
		lp := v.(*mvccLoop)
		st.Loops++
		st.LiveVersions += lp.liveVersions.Load()
		st.ResidentBytes += lp.liveBytes.Load()
		return true
	})
	s.handleMu.Lock()
	now := time.Now()
	for tag := range s.handles {
		st.PinnedSnapshots++
		if age := now.Sub(tag.taken); age > st.OldestSnapshotAge {
			st.OldestSnapshotAge = age
		}
	}
	s.handleMu.Unlock()
	st.PinnedSnapshots += s.pins.count()
	return st
}

var (
	_ Store         = (*MVCCStore)(nil)
	_ Snapshotter   = (*MVCCStore)(nil)
	_ StatsProvider = (*MVCCStore)(nil)
)

// ---- persistent treap machinery ----

// prioOf derives a node's heap priority from its key (splitmix64 finalizer):
// deterministic, so compaction and truncation can rebuild chains without
// re-randomizing, and uniform enough to keep the treap balanced in
// expectation regardless of insertion order.
func prioOf(key stream.VertexID) uint64 {
	x := uint64(key) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// find returns the chain at key, or nil. Pure read: safe on any root.
func find(n *treapNode, key stream.VertexID) *vchain {
	for n != nil {
		switch {
		case key == n.key:
			return n.chain
		case key < n.key:
			n = n.left
		default:
			n = n.right
		}
	}
	return nil
}

// insert returns the root of a tree identical to n except that the chain at
// key is upd(old) (old is nil for a fresh vertex). Only the root-to-key
// path is copied; the returned node is always freshly allocated, which is
// what makes the local rotation relinks below safe.
func insert(n *treapNode, key stream.VertexID, upd func(*vchain) *vchain) *treapNode {
	if n == nil {
		return &treapNode{key: key, prio: prioOf(key), chain: upd(nil)}
	}
	cp := *n
	switch {
	case key == n.key:
		cp.chain = upd(n.chain)
		return &cp
	case key < n.key:
		l := insert(n.left, key, upd)
		cp.left = l
		if l.prio > cp.prio {
			cp.left = l.right
			l.right = &cp
			return l
		}
		return &cp
	default:
		r := insert(n.right, key, upd)
		cp.right = r
		if r.prio > cp.prio {
			cp.right = r.left
			r.left = &cp
			return r
		}
		return &cp
	}
}

// join merges two treaps where every key of l precedes every key of r
// (deletion support for truncated-empty chains). Path-copying like insert.
func join(l, r *treapNode) *treapNode {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	if l.prio >= r.prio {
		cp := *l
		cp.right = join(l.right, r)
		return &cp
	}
	cp := *r
	cp.left = join(l, r.left)
	return &cp
}

// reclaim accumulates what a compaction or truncation pass dropped.
type reclaim struct{ versions, bytes int64 }

// compactTree rewrites every chain to keep the freshest version <= keepFrom
// plus all newer ones. Untouched subtrees are returned as-is (pointer
// equality), so an idle region of the key space costs nothing to "compact".
func compactTree(n *treapNode, keepFrom int64, rc *reclaim) *treapNode {
	if n == nil {
		return nil
	}
	l := compactTree(n.left, keepFrom, rc)
	r := compactTree(n.right, keepFrom, rc)
	c := n.chain.compacted(keepFrom, rc)
	if l == n.left && r == n.right && c == n.chain {
		return n
	}
	cp := *n
	cp.left, cp.right, cp.chain = l, r, c
	return &cp
}

// truncateTree drops every version above `above`; vertices whose chains
// empty out are deleted from the index entirely.
func truncateTree(n *treapNode, above int64, rc *reclaim) *treapNode {
	if n == nil {
		return nil
	}
	l := truncateTree(n.left, above, rc)
	r := truncateTree(n.right, above, rc)
	c, empty := n.chain.truncated(above, rc)
	if empty {
		return join(l, r)
	}
	if l == n.left && r == n.right && c == n.chain {
		return n
	}
	cp := *n
	cp.left, cp.right, cp.chain = l, r, c
	return &cp
}

// ---- immutable version chains ----

// get returns the exact version at iteration. Nil receiver: absent vertex.
func (c *vchain) get(iteration int64) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	i, ok := c.search(iteration)
	if !ok {
		return nil, false
	}
	return c.data[i], true
}

// latest returns the freshest version <= maxIter.
func (c *vchain) latest(maxIter int64) ([]byte, int64, bool) {
	if c == nil {
		return nil, 0, false
	}
	i := c.upperBound(maxIter)
	if i == 0 {
		return nil, 0, false
	}
	return c.data[i-1], c.iters[i-1], true
}

// upperBound returns the first index with iters[i] > iter. Unlike
// search(iter+1) it is safe at iter == MaxInt64 (readers pass it for "the
// newest").
func (c *vchain) upperBound(iter int64) int {
	lo, hi := 0, len(c.iters)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.iters[mid] <= iter {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// search returns the insertion index for iteration (first i with
// iters[i] >= iteration) and whether an exact match sits there.
func (c *vchain) search(iteration int64) (int, bool) {
	lo, hi := 0, len(c.iters)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.iters[mid] < iteration {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(c.iters) && c.iters[lo] == iteration
}

// withPut returns a fresh chain with the version at iteration set to data.
// replaced is the byte length of an overwritten payload (overwrote reports
// whether one existed).
func (c *vchain) withPut(iteration int64, data []byte) (nc *vchain, replaced int64, overwrote bool) {
	if c == nil {
		return &vchain{iters: []int64{iteration}, data: [][]byte{data}}, 0, false
	}
	i, exact := c.search(iteration)
	if exact {
		nc = &vchain{iters: c.iters, data: make([][]byte, len(c.data))}
		copy(nc.data, c.data)
		replaced = int64(len(nc.data[i]))
		nc.data[i] = data
		return nc, replaced, true
	}
	nc = &vchain{
		iters: make([]int64, len(c.iters)+1),
		data:  make([][]byte, len(c.data)+1),
	}
	copy(nc.iters, c.iters[:i])
	copy(nc.data, c.data[:i])
	nc.iters[i], nc.data[i] = iteration, data
	copy(nc.iters[i+1:], c.iters[i:])
	copy(nc.data[i+1:], c.data[i:])
	return nc, 0, false
}

// compacted keeps the freshest version <= keepFrom plus all newer ones,
// returning the receiver when nothing drops. The kept window is copied into
// fresh slices — a subslice of the old arrays would keep every dropped
// payload GC-reachable while the residency gauges claim it reclaimed.
func (c *vchain) compacted(keepFrom int64, rc *reclaim) *vchain {
	i := c.upperBound(keepFrom)
	if i <= 1 {
		return c
	}
	keep := i - 1
	for _, d := range c.data[:keep] {
		rc.bytes += int64(len(d))
	}
	rc.versions += int64(keep)
	n := len(c.iters) - keep
	nc := &vchain{iters: make([]int64, n), data: make([][]byte, n)}
	copy(nc.iters, c.iters[keep:])
	copy(nc.data, c.data[keep:])
	return nc
}

// truncated drops versions above `above`, reporting whether the chain
// emptied. Returns the receiver when nothing drops. Like compacted, the
// kept prefix is copied so the dropped payloads actually become
// unreachable.
func (c *vchain) truncated(above int64, rc *reclaim) (*vchain, bool) {
	i := c.upperBound(above)
	if i == len(c.iters) {
		return c, len(c.iters) == 0
	}
	for _, d := range c.data[i:] {
		rc.bytes += int64(len(d))
	}
	rc.versions += int64(len(c.iters) - i)
	if i == 0 {
		return nil, true
	}
	nc := &vchain{iters: make([]int64, i), data: make([][]byte, i)}
	copy(nc.iters, c.iters[:i])
	copy(nc.data, c.data[:i])
	return nc, false
}
