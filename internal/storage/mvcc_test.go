package storage

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"tornado/internal/stream"
)

// applyOp decodes one operation from (kind, l, v, iter, tag) and applies it
// identically to every store in targets. It is the single op vocabulary
// shared by the randomized equivalence harness, the concurrent soak, and
// FuzzMVCCOps, so a divergence found by any of them replays in the others.
func applyOp(t testing.TB, targets []Store, kind int, l LoopID, v stream.VertexID, iter int64, tag int) {
	t.Helper()
	for _, s := range targets {
		var err error
		switch kind % 7 {
		case 0, 1, 2:
			err = s.Put(l, v, iter, []byte(fmt.Sprintf("%d/%d/%d/%d", l, v, iter, tag)))
		case 3:
			err = s.Flush(l, iter)
		case 4:
			err = s.Compact(l, iter)
		case 5:
			err = s.Truncate(l, iter)
		case 6:
			err = s.DropLoop(l)
		}
		if err != nil {
			t.Fatalf("op %d on %T: %v", kind%7, s, err)
		}
	}
}

// checkEquivalent asserts that ref and got are observationally identical
// over the probed loops/vertices: Latest at every probe point, full Scan
// order and contents, and the checkpoint mark.
func checkEquivalent(t testing.TB, ref, got Store, loops []LoopID, verts []stream.VertexID, maxIter int64, ctx string) {
	t.Helper()
	for _, l := range loops {
		for _, v := range verts {
			// math.MaxInt64 rides along: it is what "read the newest" passes
			// in production, and it once caught an overflow in the chain
			// search's exclusive-bound arithmetic.
			probes := make([]int64, 0, maxIter+2)
			for p := int64(0); p <= maxIter; p++ {
				probes = append(probes, p)
			}
			probes = append(probes, math.MaxInt64)
			for _, probe := range probes {
				rd, ri, rerr := ref.Latest(l, v, probe)
				gd, gi, gerr := got.Latest(l, v, probe)
				if errors.Is(rerr, ErrNotFound) != errors.Is(gerr, ErrNotFound) {
					t.Fatalf("%s: Latest(%d,%d,%d) errs diverge: %v vs %v", ctx, l, v, probe, rerr, gerr)
				}
				if rerr == nil && (ri != gi || !bytes.Equal(rd, gd)) {
					t.Fatalf("%s: Latest(%d,%d,%d) = (%q,%d) vs (%q,%d)", ctx, l, v, probe, rd, ri, gd, gi)
				}
			}
		}
		rc, rerr := ref.LastCheckpoint(l)
		gc, gerr := got.LastCheckpoint(l)
		if errors.Is(rerr, ErrNotFound) != errors.Is(gerr, ErrNotFound) || (rerr == nil && rc != gc) {
			t.Fatalf("%s: LastCheckpoint(%d) diverges: (%d,%v) vs (%d,%v)", ctx, l, rc, rerr, gc, gerr)
		}
		var refRecs, gotRecs []Record
		collect := func(out *[]Record) func(Record) error {
			return func(r Record) error {
				cp := make([]byte, len(r.Data))
				copy(cp, r.Data)
				*out = append(*out, Record{Vertex: r.Vertex, Iteration: r.Iteration, Data: cp})
				return nil
			}
		}
		must(t, ref.Scan(l, maxIter, collect(&refRecs)))
		must(t, got.Scan(l, maxIter, collect(&gotRecs)))
		if len(refRecs) != len(gotRecs) {
			t.Fatalf("%s: Scan(%d) lengths diverge: %d vs %d", ctx, l, len(refRecs), len(gotRecs))
		}
		for i := range refRecs {
			r, g := refRecs[i], gotRecs[i]
			if r.Vertex != g.Vertex || r.Iteration != g.Iteration || !bytes.Equal(r.Data, g.Data) {
				t.Fatalf("%s: Scan(%d)[%d] diverges: %+v vs %+v", ctx, l, i, r, g)
			}
		}
	}
}

// TestMVCCEquivalenceRandom drives MemStore (the reference model) and
// MVCCStore through identical random Put/Flush/Compact/Truncate/DropLoop
// sequences and asserts observational equality — Latest at every probe
// point, Scan order/contents, checkpoints — throughout.
func TestMVCCEquivalenceRandom(t *testing.T) {
	loops := []LoopID{0, 1, 2}
	verts := []stream.VertexID{1, 2, 3, 4, 9}
	const maxIter = 30
	for trial := 0; trial < 10; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial)*104729 + 1))
			mem := NewMemStore()
			mvcc := NewMVCCStore()
			defer mvcc.Close()
			for op := 0; op < 200; op++ {
				applyOp(t, []Store{mem, mvcc},
					rng.Intn(7), loops[rng.Intn(len(loops))],
					verts[rng.Intn(len(verts))], rng.Int63n(maxIter), op)
				if op%20 == 19 {
					checkEquivalent(t, mem, mvcc, loops, verts, maxIter, fmt.Sprintf("op %d", op))
				}
			}
			checkEquivalent(t, mem, mvcc, loops, verts, maxIter, "final")
		})
	}
}

// TestMVCCEquivalenceConcurrent runs one deterministic op sequence per loop
// from its own goroutine (writers to different loops never conflict) while
// reader goroutines hammer lock-free Latest/Scan and snapshot handles on
// the shared store. Afterwards each loop must match a MemStore that
// replayed the same per-loop sequence. Run under -race (make check does).
func TestMVCCEquivalenceConcurrent(t *testing.T) {
	const (
		nLoops  = 4
		nOps    = 400
		maxIter = 30
	)
	verts := []stream.VertexID{1, 2, 3, 4, 9}
	mvcc := NewMVCCStore()
	defer mvcc.Close()

	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(r) * 31))
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				l := LoopID(rng.Intn(nLoops))
				_, _, _ = mvcc.Latest(l, verts[rng.Intn(len(verts))], rng.Int63n(maxIter))
				h := mvcc.Snapshot(l)
				_ = h.Scan(maxIter, func(Record) error { return nil })
				h.Release()
			}
		}(r)
	}

	var writers sync.WaitGroup
	for l := 0; l < nLoops; l++ {
		writers.Add(1)
		go func(l int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(l)*7919 + 5))
			for op := 0; op < nOps; op++ {
				// DropLoop excluded here: per-loop replay below cannot model
				// it without also re-running every later op, and the random
				// sequential harness already covers it.
				kind := []int{0, 1, 2, 3, 4, 5}[rng.Intn(6)]
				applyOp(t, []Store{mvcc}, kind, LoopID(l),
					verts[rng.Intn(len(verts))], rng.Int63n(maxIter), op)
			}
		}(l)
	}
	writers.Wait()
	close(stopReaders)
	readers.Wait()

	for l := 0; l < nLoops; l++ {
		mem := NewMemStore()
		rng := rand.New(rand.NewSource(int64(l)*7919 + 5))
		for op := 0; op < nOps; op++ {
			kind := []int{0, 1, 2, 3, 4, 5}[rng.Intn(6)]
			applyOp(t, []Store{mem}, kind, LoopID(l),
				verts[rng.Intn(len(verts))], rng.Int63n(maxIter), op)
		}
		checkEquivalent(t, mem, mvcc, []LoopID{LoopID(l)}, verts, maxIter, fmt.Sprintf("loop %d", l))
	}
}

// FuzzMVCCOps feeds arbitrary byte strings through the shared op vocabulary
// into MemStore and MVCCStore and asserts observational equality after the
// sequence. go test -fuzz=FuzzMVCCOps ./internal/storage/ explores; the
// seed corpus replays in every ordinary test run.
func FuzzMVCCOps(f *testing.F) {
	f.Add([]byte{0x00, 0x13, 0x27, 0x3b})
	f.Add([]byte{0x04, 0x04, 0x04, 0x04, 0x04})
	f.Add([]byte("put-compact-truncate-drop"))
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		loops := []LoopID{0, 1}
		verts := []stream.VertexID{1, 2, 3}
		const maxIter = 15
		mem := NewMemStore()
		mvcc := NewMVCCStore()
		defer mvcc.Close()
		for i, b := range ops {
			applyOp(t, []Store{mem, mvcc},
				int(b)%7, loops[int(b>>3)%len(loops)],
				verts[int(b>>5)%len(verts)], int64(b>>4)%maxIter, i)
		}
		checkEquivalent(t, mem, mvcc, loops, verts, maxIter, "fuzz")
	})
}

// TestPinBlocksCompact is the satellite regression: in every backend, a
// pinned iteration's visible version survives a Compact whose keepFrom
// would otherwise drop it, and compaction proceeds normally once released.
func TestPinBlocksCompact(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			const v = stream.VertexID(7)
			for iter := int64(1); iter <= 10; iter++ {
				must(t, s.Put(MainLoop, v, iter, []byte{byte(iter)}))
			}
			release := s.Pin(MainLoop, 5)
			must(t, s.Compact(MainLoop, 10))
			data, iter, err := s.Latest(MainLoop, v, 5)
			if err != nil || iter != 5 || !bytes.Equal(data, []byte{5}) {
				t.Fatalf("pinned version lost: (%v,%d,%v)", data, iter, err)
			}
			release()
			release() // idempotent
			must(t, s.Compact(MainLoop, 10))
			if _, _, err := s.Latest(MainLoop, v, 5); !errors.Is(err, ErrNotFound) {
				t.Fatalf("version below keepFrom survived after release: %v", err)
			}
			if data, iter, err := s.Latest(MainLoop, v, 10); err != nil || iter != 10 {
				t.Fatalf("freshest version must survive: (%v,%d,%v)", data, iter, err)
			}
		})
	}
}

// TestPinCompactRace races pin/read/release cycles against a continuously
// advancing compactor in every backend: while a reader holds a pin on the
// iteration it observed, its reads at that iteration must keep succeeding.
// Run under -race (make check does).
func TestPinCompactRace(t *testing.T) {
	for name, s := range stores(t) {
		s := s
		t.Run(name, func(t *testing.T) {
			const v = stream.VertexID(3)
			var (
				frontier int64 = 1
				frontMu  sync.Mutex
			)
			must(t, s.Put(MainLoop, v, 1, []byte{1}))
			stop := make(chan struct{})
			var writer sync.WaitGroup
			writer.Add(1)
			go func() { // writer+compactor: advance and compact to the tip
				defer writer.Done()
				for iter := int64(2); ; iter++ {
					select {
					case <-stop:
						return
					default:
					}
					// Put/advance/compact under frontMu, mirroring the
					// engine: a fork pins under the same lock that defines
					// the frontier, so no compaction can have computed its
					// pin clamp before the pin while executing after it.
					frontMu.Lock()
					must(t, s.Put(MainLoop, v, iter, []byte{byte(iter)}))
					frontier = iter
					must(t, s.Compact(MainLoop, iter))
					frontMu.Unlock()
				}
			}()
			var readers sync.WaitGroup
			for r := 0; r < 4; r++ {
				readers.Add(1)
				go func() {
					defer readers.Done()
					for i := 0; i < 300; i++ {
						frontMu.Lock()
						at := frontier
						release := s.Pin(MainLoop, at)
						frontMu.Unlock()
						// The version at `at` was committed before the pin;
						// until release, a read at `at` must keep finding a
						// version no matter how far the compactor advances.
						for probe := 0; probe < 5; probe++ {
							if _, _, err := s.Latest(MainLoop, v, at); err != nil {
								t.Errorf("pinned read at %d failed: %v", at, err)
								release()
								return
							}
						}
						release()
					}
				}()
			}
			readers.Wait()
			close(stop)
			writer.Wait()
		})
	}
}

// TestSnapshotHandleImmune proves the epoch property: a handle taken before
// Put/Compact/Truncate/DropLoop keeps reading exactly its grab-time state.
func TestSnapshotHandleImmune(t *testing.T) {
	s := NewMVCCStore()
	defer s.Close()
	for v := stream.VertexID(1); v <= 50; v++ {
		for iter := int64(1); iter <= 4; iter++ {
			must(t, s.Put(MainLoop, v, iter, []byte(fmt.Sprintf("%d@%d", v, iter))))
		}
	}
	h := s.Snapshot(MainLoop)
	defer h.Release()

	// Mutate everything after the grab.
	for v := stream.VertexID(1); v <= 50; v++ {
		must(t, s.Put(MainLoop, v, 9, []byte("new")))
	}
	must(t, s.Compact(MainLoop, 9))
	must(t, s.Truncate(MainLoop, 0))
	must(t, s.DropLoop(MainLoop))

	for v := stream.VertexID(1); v <= 50; v++ {
		for probe := int64(1); probe <= 4; probe++ {
			data, iter, err := h.Latest(v, probe)
			if err != nil || iter != probe || string(data) != fmt.Sprintf("%d@%d", v, probe) {
				t.Fatalf("handle read %d@%d diverged: (%q,%d,%v)", v, probe, data, iter, err)
			}
		}
	}
	n := 0
	var prev stream.VertexID
	must(t, h.Scan(4, func(r Record) error {
		if n > 0 && r.Vertex <= prev {
			t.Fatalf("handle scan out of order: %d after %d", r.Vertex, prev)
		}
		prev = r.Vertex
		n++
		if r.Iteration != 4 {
			t.Fatalf("handle scan of vertex %d at iter %d, want 4", r.Vertex, r.Iteration)
		}
		return nil
	}))
	if n != 50 {
		t.Fatalf("handle scan saw %d vertices, want 50", n)
	}
	// The live store, meanwhile, is empty.
	if _, _, err := s.Latest(MainLoop, 1, 1<<40); !errors.Is(err, ErrNotFound) {
		t.Fatalf("live store should be dropped: %v", err)
	}
}

// TestMVCCStatsAccounting sanity-checks the residency counters the
// tornado_store_* gauges export.
func TestMVCCStatsAccounting(t *testing.T) {
	s := NewMVCCStore()
	defer s.Close()
	payload := make([]byte, 10)
	for v := stream.VertexID(0); v < 8; v++ {
		for iter := int64(1); iter <= 3; iter++ {
			must(t, s.Put(MainLoop, v, iter, payload))
		}
	}
	st := s.StoreStats()
	if st.LiveVersions != 24 || st.ResidentBytes != 240 || st.Loops != 1 {
		t.Fatalf("after puts: %+v", st)
	}
	h := s.Snapshot(MainLoop)
	release := s.Pin(MainLoop, 3)
	if st = s.StoreStats(); st.PinnedSnapshots != 2 {
		t.Fatalf("pinned snapshots = %d, want 2 (one handle + one pin)", st.PinnedSnapshots)
	}
	release()
	h.Release()
	must(t, s.Compact(MainLoop, 3))
	st = s.StoreStats()
	if st.LiveVersions != 8 || st.ResidentBytes != 80 {
		t.Fatalf("after compact: %+v", st)
	}
	if st.Compactions != 1 || st.ReclaimedVersions != 16 {
		t.Fatalf("compaction counters: %+v", st)
	}
	if st.PinnedSnapshots != 0 {
		t.Fatalf("pins leaked: %+v", st)
	}
}

// TestSnapshotReadsRaceRelease regression-tests the Release data race: the
// engine legitimately releases a handle (recovery swapping its
// SnapshotSource, double-release on branch stop) while readers holding the
// same handle are mid-Latest/Scan. Readers must keep their coherent view —
// no race, no spurious ErrNotFound. Run under -race (make check does).
func TestSnapshotReadsRaceRelease(t *testing.T) {
	s := NewMVCCStore()
	defer s.Close()
	for v := stream.VertexID(1); v <= 64; v++ {
		must(t, s.Put(MainLoop, v, 3, []byte("x")))
	}
	for round := 0; round < 50; round++ {
		h := s.Snapshot(MainLoop)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				<-start
				for i := 0; i < 20; i++ {
					if _, _, err := h.Latest(stream.VertexID(1+(i+r)%64), 9); err != nil {
						t.Errorf("read through held handle failed: %v", err)
						return
					}
					n := 0
					_ = h.Scan(9, func(Record) error { n++; return nil })
					if n != 64 {
						t.Errorf("scan through held handle saw %d vertices, want 64", n)
						return
					}
				}
			}(r)
		}
		close(start)
		h.Release()
		h.Release() // double-release is the documented engine pattern
		wg.Wait()
	}
}

// TestLeakedHandleRetiresGauge: a handle dropped without Release must not
// stay in the pinned-snapshot gauge forever — the store holds no strong
// reference to it, and collection retires its gauge entry.
func TestLeakedHandleRetiresGauge(t *testing.T) {
	s := NewMVCCStore()
	defer s.Close()
	must(t, s.Put(MainLoop, 1, 1, []byte("x")))
	func() {
		_ = s.Snapshot(MainLoop) // leaked: never released
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.StoreStats().PinnedSnapshots != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("leaked handle still pinned after GC: %+v", s.StoreStats())
		}
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
}

// TestCompactedChainsDropPayloadReferences: compaction and truncation must
// copy the kept window into fresh backing arrays — a subslice of the old
// arrays would keep every dropped payload reachable while the residency
// gauges report it reclaimed.
func TestCompactedChainsDropPayloadReferences(t *testing.T) {
	c := &vchain{}
	for iter := int64(1); iter <= 8; iter++ {
		c, _, _ = c.withPut(iter, []byte{byte(iter)})
	}
	var rc reclaim
	cc := c.compacted(5, &rc)
	if got := len(cc.iters); got != 4 {
		t.Fatalf("compacted kept %d versions, want 4 (iters 5..8)", got)
	}
	if cap(cc.iters) != len(cc.iters) || cap(cc.data) != len(cc.data) {
		t.Fatalf("compacted shares the old backing array: len %d/%d cap %d/%d",
			len(cc.iters), len(cc.data), cap(cc.iters), cap(cc.data))
	}
	tc, empty := c.truncated(3, &rc)
	if empty || len(tc.iters) != 3 {
		t.Fatalf("truncated kept %d versions (empty=%v), want 3", len(tc.iters), empty)
	}
	if cap(tc.iters) != len(tc.iters) || cap(tc.data) != len(tc.data) {
		t.Fatalf("truncated shares the old backing array: len %d/%d cap %d/%d",
			len(tc.iters), len(tc.data), cap(tc.iters), cap(tc.data))
	}
}
