// Package storage provides the multi-versioned state store backing Tornado's
// loops.
//
// The paper's prototype materializes vertex state in an external store
// (PostgreSQL by default, an LMDB-backed in-memory database for the system
// comparison). The engine needs exactly four capabilities from it:
//
//   - Put a new version of a vertex, stamped with the iteration in which the
//     update committed.
//   - Read the most recent version of a vertex no newer than iteration i
//     (this is how a branch loop snapshots the main loop: "the most recent
//     versions of vertices that are not greater than i will be selected").
//   - Flush all versions of an iteration before progress is reported, which
//     makes every terminated iteration a checkpoint.
//   - Recover the checkpoint after a failure.
//
// Two backends implement the Store interface: MemStore (the LMDB stand-in)
// and DiskStore (an append-only log with an in-memory index and CRC-checked
// records, the PostgreSQL stand-in whose Flush cost shapes the synchronous
// loop's per-iteration time in the experiments).
package storage

import (
	"bytes"
	"errors"
	"sort"
	"sync"

	"tornado/internal/stream"
)

// LoopID identifies a loop's namespace in the store. The main loop is
// conventionally loop 0; every branch loop gets a fresh ID.
type LoopID uint64

// MainLoop is the LoopID of the main loop.
const MainLoop LoopID = 0

// ErrNotFound is returned when no version satisfies a read.
var ErrNotFound = errors.New("storage: version not found")

// Record is one versioned value surfaced by Scan.
type Record struct {
	Vertex    stream.VertexID
	Iteration int64
	Data      []byte
}

// Store is the versioned state store contract shared by all backends.
// Implementations are safe for concurrent use.
type Store interface {
	// Put writes a version of vertex stamped with iteration. Writing the
	// same (loop, vertex, iteration) twice overwrites (updates are
	// idempotent under at-least-once delivery).
	Put(loop LoopID, vertex stream.VertexID, iteration int64, data []byte) error

	// Latest returns the freshest version of vertex with iteration <= maxIter,
	// or ErrNotFound. The returned slice must not be modified.
	Latest(loop LoopID, vertex stream.VertexID, maxIter int64) ([]byte, int64, error)

	// Scan visits the freshest version <= maxIter of every vertex in the
	// loop, in ascending vertex order. fn returning an error aborts the scan.
	Scan(loop LoopID, maxIter int64, fn func(Record) error) error

	// Flush makes all writes of the loop durable and records that iteration
	// upTo has terminated (the checkpoint barrier of Section 5.3).
	Flush(loop LoopID, upTo int64) error

	// LastCheckpoint returns the highest iteration recorded by Flush for the
	// loop, or ErrNotFound if the loop was never flushed.
	LastCheckpoint(loop LoopID) (int64, error)

	// Compact drops versions of the loop that are superseded by a version
	// <= keepFrom (the freshest version <= keepFrom of each vertex is kept).
	Compact(loop LoopID, keepFrom int64) error

	// Truncate drops every version of the loop with iteration > above. It is
	// the crash-recovery floor: restarting from the checkpoint at iteration
	// `above` first discards the incomplete versions of unterminated
	// iterations so they can never shadow recomputed state.
	Truncate(loop LoopID, above int64) error

	// DropLoop discards all state of a loop (branch loops are dropped after
	// their results are consumed or merged).
	DropLoop(loop LoopID) error

	// Pin marks iteration iter of the loop as snapshot-visible: until the
	// returned release is called, Compact keeps every version a reader at
	// iter can observe (the freshest version <= iter of each vertex).
	// Pinning is the store-level guarantee behind branch forks — the engine
	// additionally caps its own compaction floor, but only the store can
	// promise that a direct Compact call never races a fork window. The
	// release is idempotent. Truncate and DropLoop are deliberately not
	// clamped: they are crash-recovery and teardown floors, authoritative
	// over any snapshot.
	Pin(loop LoopID, iter int64) func()

	// Close releases resources. The store must not be used afterwards.
	Close() error
}

// pinRegistry is the shared snapshot-pin ledger every backend consults
// before compacting. It maps loop -> pinned iteration -> refcount; Compact
// clamps its keepFrom at the oldest pinned iteration so the version a
// pinned reader may observe is always the one kept.
type pinRegistry struct {
	mu   sync.Mutex
	pins map[LoopID]map[int64]int
}

// pin registers iter and returns its idempotent release.
func (r *pinRegistry) pin(loop LoopID, iter int64) func() {
	r.mu.Lock()
	if r.pins == nil {
		r.pins = make(map[LoopID]map[int64]int)
	}
	m := r.pins[loop]
	if m == nil {
		m = make(map[int64]int)
		r.pins[loop] = m
	}
	m[iter]++
	r.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			if m := r.pins[loop]; m != nil {
				if m[iter]--; m[iter] <= 0 {
					delete(m, iter)
					if len(m) == 0 {
						delete(r.pins, loop)
					}
				}
			}
			r.mu.Unlock()
		})
	}
}

// clamp caps keepFrom at the oldest pinned iteration of the loop.
func (r *pinRegistry) clamp(loop LoopID, keepFrom int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	for iter := range r.pins[loop] {
		if iter < keepFrom {
			keepFrom = iter
		}
	}
	return keepFrom
}

// count returns the number of live pins across all loops.
func (r *pinRegistry) count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, m := range r.pins {
		for _, c := range m {
			n += int64(c)
		}
	}
	return n
}

// versions is a per-vertex version chain ordered by ascending iteration.
type versions struct {
	iters []int64
	data  [][]byte
}

// get returns the exact version at iteration, if present.
func (v *versions) get(iteration int64) ([]byte, bool) {
	i := sort.Search(len(v.iters), func(i int) bool { return v.iters[i] >= iteration })
	if i < len(v.iters) && v.iters[i] == iteration {
		return v.data[i], true
	}
	return nil, false
}

// put inserts or overwrites the version at iteration.
func (v *versions) put(iteration int64, data []byte) {
	i := sort.Search(len(v.iters), func(i int) bool { return v.iters[i] >= iteration })
	if i < len(v.iters) && v.iters[i] == iteration {
		v.data[i] = data
		return
	}
	v.iters = append(v.iters, 0)
	v.data = append(v.data, nil)
	copy(v.iters[i+1:], v.iters[i:])
	copy(v.data[i+1:], v.data[i:])
	v.iters[i] = iteration
	v.data[i] = data
}

// latest returns the freshest version <= maxIter.
func (v *versions) latest(maxIter int64) ([]byte, int64, bool) {
	i := sort.Search(len(v.iters), func(i int) bool { return v.iters[i] > maxIter })
	if i == 0 {
		return nil, 0, false
	}
	return v.data[i-1], v.iters[i-1], true
}

// compact keeps the freshest version <= keepFrom plus all newer versions.
func (v *versions) compact(keepFrom int64) {
	i := sort.Search(len(v.iters), func(i int) bool { return v.iters[i] > keepFrom })
	if i <= 1 {
		return
	}
	keep := i - 1 // index of freshest version <= keepFrom
	v.iters = append(v.iters[:0], v.iters[keep:]...)
	v.data = append(v.data[:0], v.data[keep:]...)
}

// truncate drops all versions with iteration > above and reports whether the
// chain is now empty.
func (v *versions) truncate(above int64) bool {
	i := sort.Search(len(v.iters), func(i int) bool { return v.iters[i] > above })
	v.iters = v.iters[:i]
	v.data = v.data[:i]
	return len(v.iters) == 0
}

// loopState is one loop's namespace in MemStore.
type loopState struct {
	verts      map[stream.VertexID]*versions
	checkpoint int64
	hasCkpt    bool
	// sortedIDs caches the ascending vertex order Scan visits. Scans (state
	// reads, branch forks, checkpoint recovery) far outnumber changes to the
	// ID set, so the sort is paid once per membership change instead of once
	// per scan. nil means stale: the first Put of a new vertex and any
	// Truncate that deletes one reset it, and the next Scan rebuilds.
	sortedIDs []stream.VertexID
}

// MemStore is an in-memory Store. The zero value is not usable; call
// NewMemStore.
type MemStore struct {
	mu    sync.RWMutex
	loops map[LoopID]*loopState
	pins  pinRegistry
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{loops: make(map[LoopID]*loopState)}
}

func (s *MemStore) loop(l LoopID) *loopState {
	ls, ok := s.loops[l]
	if !ok {
		ls = &loopState{verts: make(map[stream.VertexID]*versions)}
		s.loops[l] = ls
	}
	return ls
}

// Put implements Store. The defensive copy is taken under the lock only
// when a new payload actually lands: re-delivered identical writes — the
// common case under at-least-once delivery, where an acked commit is
// retransmitted and re-applied idempotently — allocate nothing. A differing
// overwrite cannot reuse the old slice's capacity in place, because slices
// previously returned by Latest/Scan alias it and an in-place write would
// race their readers; it gets a fresh copy instead.
func (s *MemStore) Put(loop LoopID, vertex stream.VertexID, iteration int64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := s.loop(loop)
	vs, ok := ls.verts[vertex]
	if !ok {
		// Pre-size the chain: commit/compact cycles hold steady-state chains
		// at a handful of versions, so one up-front allocation absorbs the
		// early append-growth churn on the hot commit path.
		vs = &versions{iters: make([]int64, 0, 4), data: make([][]byte, 0, 4)}
		ls.verts[vertex] = vs
		ls.sortedIDs = nil
	}
	if old, exists := vs.get(iteration); exists && bytes.Equal(old, data) {
		return nil
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	vs.put(iteration, cp)
	return nil
}

// Latest implements Store.
func (s *MemStore) Latest(loop LoopID, vertex stream.VertexID, maxIter int64) ([]byte, int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ls, ok := s.loops[loop]
	if !ok {
		return nil, 0, ErrNotFound
	}
	vs, ok := ls.verts[vertex]
	if !ok {
		return nil, 0, ErrNotFound
	}
	data, iter, ok := vs.latest(maxIter)
	if !ok {
		return nil, 0, ErrNotFound
	}
	return data, iter, nil
}

// Scan implements Store.
func (s *MemStore) Scan(loop LoopID, maxIter int64, fn func(Record) error) error {
	s.mu.RLock()
	ls, ok := s.loops[loop]
	if !ok {
		s.mu.RUnlock()
		return nil
	}
	ids := ls.sortedIDs
	if ids == nil {
		// Stale cache: retake the lock for writing, rebuild, and snapshot
		// the records under the same critical section so a concurrent Put
		// cannot invalidate between rebuild and collection.
		s.mu.RUnlock()
		s.mu.Lock()
		ls, ok = s.loops[loop]
		if !ok {
			s.mu.Unlock()
			return nil
		}
		if ids = ls.sortedIDs; ids == nil {
			ids = make([]stream.VertexID, 0, len(ls.verts))
			for v := range ls.verts {
				ids = append(ids, v)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			ls.sortedIDs = ids
		}
		recs := collectRecords(ls, ids, maxIter)
		s.mu.Unlock()
		return visitRecords(recs, fn)
	}
	recs := collectRecords(ls, ids, maxIter)
	s.mu.RUnlock()
	return visitRecords(recs, fn)
}

// collectRecords snapshots the freshest version <= maxIter of every cached
// vertex; callers hold s.mu (read or write).
func collectRecords(ls *loopState, ids []stream.VertexID, maxIter int64) []Record {
	recs := make([]Record, 0, len(ids))
	for _, v := range ids {
		vs, ok := ls.verts[v]
		if !ok {
			continue
		}
		if data, iter, ok := vs.latest(maxIter); ok {
			recs = append(recs, Record{Vertex: v, Iteration: iter, Data: data})
		}
	}
	return recs
}

func visitRecords(recs []Record, fn func(Record) error) error {
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements Store. For MemStore it only records the checkpoint mark.
func (s *MemStore) Flush(loop LoopID, upTo int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := s.loop(loop)
	if !ls.hasCkpt || upTo > ls.checkpoint {
		ls.checkpoint = upTo
		ls.hasCkpt = true
	}
	return nil
}

// LastCheckpoint implements Store.
func (s *MemStore) LastCheckpoint(loop LoopID) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ls, ok := s.loops[loop]
	if !ok || !ls.hasCkpt {
		return 0, ErrNotFound
	}
	return ls.checkpoint, nil
}

// Compact implements Store. keepFrom is clamped at the oldest pinned
// iteration so a pinned snapshot never loses a version it can observe.
func (s *MemStore) Compact(loop LoopID, keepFrom int64) error {
	keepFrom = s.pins.clamp(loop, keepFrom)
	s.mu.Lock()
	defer s.mu.Unlock()
	ls, ok := s.loops[loop]
	if !ok {
		return nil
	}
	for _, vs := range ls.verts {
		vs.compact(keepFrom)
	}
	return nil
}

// Pin implements Store.
func (s *MemStore) Pin(loop LoopID, iter int64) func() {
	return s.pins.pin(loop, iter)
}

// Truncate implements Store.
func (s *MemStore) Truncate(loop LoopID, above int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ls, ok := s.loops[loop]
	if !ok {
		return nil
	}
	for id, vs := range ls.verts {
		if vs.truncate(above) {
			delete(ls.verts, id)
			ls.sortedIDs = nil
		}
	}
	return nil
}

// DropLoop implements Store.
func (s *MemStore) DropLoop(loop LoopID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.loops, loop)
	return nil
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loops = make(map[LoopID]*loopState)
	return nil
}

// NumVersions reports the total number of stored versions in a loop,
// used by tests and by memory accounting.
func (s *MemStore) NumVersions(loop LoopID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ls, ok := s.loops[loop]
	if !ok {
		return 0
	}
	n := 0
	for _, vs := range ls.verts {
		n += len(vs.iters)
	}
	return n
}

var _ Store = (*MemStore)(nil)
