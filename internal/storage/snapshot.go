package storage

import (
	"time"

	"tornado/internal/stream"
)

// Snapshot is a read-only point-in-time view of one loop's versions. Reads
// through a handle see exactly the versions that existed when the handle
// was taken: later Puts, Compacts, Truncates, or even a DropLoop of the
// underlying loop never change what the handle returns. Handles are safe
// for concurrent use, including reads racing a Release: a reader that holds
// the handle keeps its coherent view. Release is idempotent and retires the
// handle from the pinned-snapshot gauges; the store never holds a strong
// reference to the handle itself, so nothing breaks if one leaks — the GC
// frees it (and its epoch) normally, and the gauge shows the leak only
// until collection.
type Snapshot interface {
	// Latest returns the freshest version of vertex with iteration <=
	// maxIter at grab time, or ErrNotFound.
	Latest(vertex stream.VertexID, maxIter int64) ([]byte, int64, error)
	// Scan visits the freshest version <= maxIter of every vertex present
	// at grab time, in ascending vertex order.
	Scan(maxIter int64, fn func(Record) error) error
	// Release drops the handle.
	Release()
}

// Snapshotter is implemented by stores whose Snapshot is an O(1) handle
// grab (MVCCStore). Callers that fork loops should prefer a handle over
// repeated Store reads: the handle is immune to concurrent compaction by
// construction, where live-store reads rely on the Pin clamp.
type Snapshotter interface {
	Snapshot(loop LoopID) Snapshot
}

// StoreStats is a residency report from a self-accounting store.
type StoreStats struct {
	// Loops is the number of live loop namespaces.
	Loops int
	// LiveVersions / ResidentBytes count versions (and their payload bytes)
	// reachable from the live roots — what a reader of the current state
	// can observe, and what compaction shrinks. Handle-retained epochs are
	// excluded: they die with their handles.
	LiveVersions  int64
	ResidentBytes int64
	// Compactions counts Compact passes; ReclaimedVersions the versions
	// they dropped.
	Compactions       int64
	ReclaimedVersions int64
	// PinnedSnapshots is the number of unreleased snapshot handles plus
	// live Pin marks; OldestSnapshotAge the age of the oldest handle.
	// Persistently nonzero counts after all branches closed indicate a
	// leaked fork.
	PinnedSnapshots   int64
	OldestSnapshotAge time.Duration
}

// StatsProvider is implemented by stores that account their own residency;
// the engine exports these as tornado_store_* gauges when available.
type StatsProvider interface {
	StoreStats() StoreStats
}
