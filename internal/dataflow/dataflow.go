// Package dataflow is a Storm-like stream-processing substrate: topologies
// of spouts and bolts with parallel tasks, stream groupings, and Storm's
// XOR tuple-tree acking for at-least-once processing.
//
// The paper builds Tornado on Storm (Section 5.1) and explicitly discusses
// why Storm's guaranteed-message-passing mechanism — tracking the tree of
// tuples descending from each spout tuple and acknowledging the spout when
// the tree completes — does NOT carry over to Tornado's cyclic, amplifying
// dataflow (Section 5.3: "an update may lead to a large number of new
// updates... it's hard to track the propagation of the tuples because the
// topology is cyclic"). This package implements that substrate faithfully
// for the acyclic ingestion side: Tornado's ingesters are spouts, and
// System.AttachSource runs input delivery through a dataflow topology. The
// iteration engine keeps its own causality-based reliability.
package dataflow

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"tornado/internal/transport"
)

// TupleID identifies one emitted tuple for ack tracking.
type TupleID uint64

// Tuple is a unit of data flowing through a topology.
type Tuple struct {
	// ID is unique per emission.
	ID TupleID
	// Root is the spout tuple this tuple descends from (its anchor tree).
	Root TupleID
	// Payload is the application data.
	Payload any
}

// Spout produces the topology's input stream.
type Spout interface {
	// Next returns the next payload, or ok=false when no tuple is currently
	// available (the executor will poll again; return ok=false forever when
	// exhausted).
	Next() (payload any, ok bool)
	// Ack notifies that the tuple tree rooted at the emission with the
	// given payload completed fully.
	Ack(payload any)
	// Fail notifies that the tree timed out or failed; the spout should
	// re-emit the payload if it wants at-least-once processing.
	Fail(payload any)
}

// Bolt processes tuples. Execute runs on a single task goroutine; emitting
// through the collector anchors descendants to the input's tree.
type Bolt interface {
	Execute(t Tuple, c *Collector)
}

// BoltFunc adapts a function to the Bolt interface.
type BoltFunc func(t Tuple, c *Collector)

// Execute implements Bolt.
func (f BoltFunc) Execute(t Tuple, c *Collector) { f(t, c) }

// Grouping selects the destination task(s) for a payload.
type Grouping interface {
	Select(payload any, tasks int) []int
}

type shuffleGrouping struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// Shuffle distributes payloads uniformly at random.
func Shuffle(seed int64) Grouping {
	return &shuffleGrouping{rng: rand.New(rand.NewSource(seed))}
}

func (g *shuffleGrouping) Select(_ any, tasks int) []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return []int{g.rng.Intn(tasks)}
}

type fieldsGrouping struct {
	key func(any) uint64
}

// Fields routes payloads with equal keys to the same task.
func Fields(key func(any) uint64) Grouping {
	return fieldsGrouping{key: key}
}

func (g fieldsGrouping) Select(payload any, tasks int) []int {
	h := fnv.New64a()
	var buf [8]byte
	k := g.key(payload)
	for i := 0; i < 8; i++ {
		buf[i] = byte(k >> (8 * i))
	}
	h.Write(buf[:])
	return []int{int(h.Sum64() % uint64(tasks))}
}

type allGrouping struct{}

// All replicates every payload to every task.
func All() Grouping { return allGrouping{} }

func (allGrouping) Select(_ any, tasks int) []int {
	out := make([]int, tasks)
	for i := range out {
		out[i] = i
	}
	return out
}

type globalGrouping struct{}

// Global routes every payload to task 0.
func Global() Grouping { return globalGrouping{} }

func (globalGrouping) Select(_ any, _ int) []int { return []int{0} }

// component is a declared spout or bolt.
type component struct {
	name  string
	spout Spout
	bolt  Bolt
	tasks int
	// subscriptions: upstream component name -> grouping.
	subs map[string]Grouping
	// resolved downstream edges: grouping + the subscriber's task nodes.
	downstream []edge
	taskBase   transport.NodeID
}

type edge struct {
	grouping Grouping
	to       *component
}

// Topology declares and runs a dataflow graph.
type Topology struct {
	mu         sync.Mutex
	components map[string]*component
	order      []string
	running    bool

	net     *transport.Network
	acker   *acker
	nextID  atomic.Uint64
	stopCh  chan struct{}
	wg      sync.WaitGroup
	timeout time.Duration

	// Flow control (set before Start). maxPending caps incomplete spout-tuple
	// trees: at the cap the spout executor stops pulling from the spout (while
	// still draining ack/fail notifications) until trees complete, so a slow
	// consumer translates into a paused source instead of an unbounded tracking
	// table. inboxHigh/inboxLow bound the topology transport's inboxes with
	// credit-based watermarks (see transport.Options).
	maxPending          int
	inboxHigh, inboxLow int
	spoutPauses         atomic.Int64
	spoutPausedNanos    atomic.Int64

	// treeObs, when set, observes each completed tuple tree's emit-to-ack
	// wall time (the feed wires it into the spout_tree stage histogram).
	treeObs func(time.Duration)

	// Processed counts tuples fully executed by bolts.
	Processed atomic.Int64
}

// NewTopology returns an empty topology. timeout is how long a spout
// tuple's tree may stay incomplete before it is failed back to the spout
// (0 = 30s).
func NewTopology(timeout time.Duration) *Topology {
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	return &Topology{
		components: make(map[string]*component),
		stopCh:     make(chan struct{}),
		timeout:    timeout,
	}
}

// AddSpout declares a spout with one task.
func (t *Topology) AddSpout(name string, s Spout) error {
	return t.add(&component{name: name, spout: s, tasks: 1, subs: map[string]Grouping{}})
}

// AddBolt declares a bolt with the given parallelism.
func (t *Topology) AddBolt(name string, b Bolt, tasks int) error {
	if tasks < 1 {
		return fmt.Errorf("dataflow: bolt %q needs at least one task", name)
	}
	return t.add(&component{name: name, bolt: b, tasks: tasks, subs: map[string]Grouping{}})
}

func (t *Topology) add(c *component) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.running {
		return errors.New("dataflow: topology already running")
	}
	if _, dup := t.components[c.name]; dup {
		return fmt.Errorf("dataflow: component %q declared twice", c.name)
	}
	t.components[c.name] = c
	t.order = append(t.order, c.name)
	return nil
}

// SetMaxPending caps incomplete spout-tuple trees; at the cap spouts pause
// (admission control) until trees complete. Zero leaves the spout unthrottled.
// Must be called before Start.
func (t *Topology) SetMaxPending(n int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.running {
		return errors.New("dataflow: topology already running")
	}
	t.maxPending = n
	return nil
}

// SetInboxWatermarks bounds the topology transport's inboxes with
// credit-based flow control (see transport.Options.InboxHigh). Zero high
// leaves inboxes unbounded. Must be called before Start.
func (t *Topology) SetInboxWatermarks(high, low int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.running {
		return errors.New("dataflow: topology already running")
	}
	t.inboxHigh, t.inboxLow = high, low
	return nil
}

// SetTreeObserver registers a callback observing every completed tuple
// tree's emit-to-ack latency. Must be called before Start.
func (t *Topology) SetTreeObserver(fn func(time.Duration)) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.running {
		return errors.New("dataflow: topology already running")
	}
	t.treeObs = fn
	return nil
}

// SpoutPauses counts transitions into the paused state (tree cap reached).
func (t *Topology) SpoutPauses() int64 { return t.spoutPauses.Load() }

// SpoutPaused is the cumulative wall-clock time spouts spent paused at the
// tree cap.
func (t *Topology) SpoutPaused() time.Duration {
	return time.Duration(t.spoutPausedNanos.Load())
}

// Subscribe routes from's output to the named bolt with the grouping.
func (t *Topology) Subscribe(bolt, from string, g Grouping) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.running {
		return errors.New("dataflow: topology already running")
	}
	b, ok := t.components[bolt]
	if !ok || b.bolt == nil {
		return fmt.Errorf("dataflow: unknown bolt %q", bolt)
	}
	if _, ok := t.components[from]; !ok {
		return fmt.Errorf("dataflow: unknown component %q", from)
	}
	b.subs[from] = g
	return nil
}

// Start launches the topology's executors.
func (t *Topology) Start() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.running {
		return errors.New("dataflow: already running")
	}
	// Resolve edges and assign transport nodes.
	var node transport.NodeID
	for _, name := range t.order {
		c := t.components[name]
		c.taskBase = node
		node += transport.NodeID(c.tasks)
	}
	for _, name := range t.order {
		c := t.components[name]
		for from, g := range c.subs {
			up := t.components[from]
			up.downstream = append(up.downstream, edge{grouping: g, to: c})
		}
	}
	t.net = transport.NewNetwork(transport.Options{InboxHigh: t.inboxHigh, InboxLow: t.inboxLow})
	t.acker = newAcker(t)
	t.acker.ep = t.net.Register(node)
	timerEP := t.net.Register(node + 1)
	t.wg.Add(1)
	go func() {
		// Expiry ticks reach the acker through its inbox so it can block on
		// Recv between events.
		defer t.wg.Done()
		ticker := time.NewTicker(10 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-t.stopCh:
				return
			case <-ticker.C:
				timerEP.Send(t.acker.node, tickMsg{})
			}
		}
	}()

	for _, name := range t.order {
		c := t.components[name]
		for task := 0; task < c.tasks; task++ {
			ep := t.net.Register(c.taskBase + transport.NodeID(task))
			if c.spout != nil {
				t.wg.Add(1)
				go t.runSpout(c, ep)
			} else {
				t.wg.Add(1)
				go t.runBolt(c, task, ep)
			}
		}
	}
	t.wg.Add(1)
	go t.acker.run()
	t.running = true
	return nil
}

// Stop shuts the topology down.
func (t *Topology) Stop() {
	t.mu.Lock()
	if !t.running {
		t.mu.Unlock()
		return
	}
	t.running = false
	close(t.stopCh)
	t.net.Close()
	t.mu.Unlock()
	t.wg.Wait()
}

// runSpout pumps the spout: each emission registers a tree with the acker
// and flows to the spout's subscribers.
func (t *Topology) runSpout(c *component, ep *transport.Endpoint) {
	defer t.wg.Done()
	var pausedAt time.Time
	for {
		select {
		case <-t.stopCh:
			return
		default:
		}
		// Drain spout-directed acker notifications (acks/fails).
		for {
			env, ok := ep.TryRecv()
			if !ok {
				break
			}
			switch m := env.Payload.(type) {
			case ackMsg:
				c.spout.Ack(m.payload)
			case failMsg:
				c.spout.Fail(m.payload)
			}
		}
		// Admission control: at the tree cap the source pauses — the loop
		// keeps draining notifications above, which is what lets it resume.
		if t.maxPending > 0 && t.acker.Pending() >= t.maxPending {
			if pausedAt.IsZero() {
				pausedAt = time.Now()
				t.spoutPauses.Add(1)
			}
			select {
			case <-t.stopCh:
				t.spoutPausedNanos.Add(int64(time.Since(pausedAt)))
				return
			case <-time.After(200 * time.Microsecond):
			}
			continue
		}
		if !pausedAt.IsZero() {
			t.spoutPausedNanos.Add(int64(time.Since(pausedAt)))
			pausedAt = time.Time{}
		}
		payload, ok := c.spout.Next()
		if !ok {
			select {
			case <-t.stopCh:
				return
			case <-time.After(200 * time.Microsecond):
			}
			continue
		}
		// Every DELIVERY gets its own tuple ID (as in Storm, where a tuple
		// sent to n tasks contributes n distinct tree entries), so the
		// tree's XOR algebra is exact: register XOR(delivery ids), each
		// consumer XORs out its input and XORs in its own emissions, zero
		// means complete.
		root := TupleID(t.nextID.Add(1))
		type delivery struct {
			node transport.NodeID
			tup  Tuple
		}
		var deliveries []delivery
		var xor uint64
		for _, e := range c.downstream {
			for _, task := range e.grouping.Select(payload, e.to.tasks) {
				id := TupleID(t.nextID.Add(1))
				xor ^= uint64(id)
				deliveries = append(deliveries, delivery{
					node: e.to.taskBase + transport.NodeID(task),
					tup:  Tuple{ID: id, Root: root, Payload: payload},
				})
			}
		}
		if len(deliveries) == 0 {
			c.spout.Ack(payload) // nothing subscribes: trivially complete
			continue
		}
		t.acker.register(root, payload, c, xor)
		for _, d := range deliveries {
			ep.Send(d.node, d.tup)
		}
	}
}

// runBolt executes tuples on one task.
func (t *Topology) runBolt(c *component, task int, ep *transport.Endpoint) {
	defer t.wg.Done()
	for {
		env, ok := ep.Recv()
		if !ok {
			return
		}
		tup, ok := env.Payload.(Tuple)
		if !ok {
			continue
		}
		col := &Collector{topo: t, comp: c, ep: ep, input: tup}
		func() {
			defer func() {
				if r := recover(); r != nil {
					col.FailInput()
				}
			}()
			c.bolt.Execute(tup, col)
		}()
		col.finish()
		t.Processed.Add(1)
	}
}

// Collector lets a bolt emit anchored tuples and acknowledge its input.
type Collector struct {
	topo   *Topology
	comp   *component
	ep     *transport.Endpoint
	input  Tuple
	xorAcc uint64
	failed bool
	acked  bool
}

// Emit sends payload downstream, anchored to the input tuple's tree. Each
// delivery carries a fresh tuple ID XORed into the tree.
func (c *Collector) Emit(payload any) {
	for _, e := range c.comp.downstream {
		for _, task := range e.grouping.Select(payload, e.to.tasks) {
			id := TupleID(c.topo.nextID.Add(1))
			c.xorAcc ^= uint64(id)
			c.ep.Send(e.to.taskBase+transport.NodeID(task), Tuple{ID: id, Root: c.input.Root, Payload: payload})
		}
	}
}

// AckInput marks the input tuple processed (done automatically when Execute
// returns without failing).
func (c *Collector) AckInput() { c.acked = true }

// FailInput marks the whole tree failed; the spout will be notified.
func (c *Collector) FailInput() { c.failed = true }

func (c *Collector) finish() {
	if c.failed {
		c.ep.Send(c.topo.acker.node, treeFail{root: c.input.Root})
		return
	}
	// XOR out the processed input, XOR in the emissions.
	c.ep.Send(c.topo.acker.node, treeAck{root: c.input.Root, xor: uint64(c.input.ID) ^ c.xorAcc})
}

// --- acker ------------------------------------------------------------

type treeAck struct {
	root TupleID
	xor  uint64
}

type treeFail struct {
	root TupleID
}

type ackMsg struct{ payload any }
type failMsg struct{ payload any }
type tickMsg struct{}

type tree struct {
	xor      uint64
	payload  any
	spout    *component
	born     time.Time
	deadline time.Time
}

// acker implements Storm's algorithm: every tree keeps the XOR of (tuple ID
// of every live tuple in the tree, each counted once per delivery). Bolts
// report (input ID XOR emitted IDs); when the XOR reaches zero the tree is
// complete and the spout is acked.
type acker struct {
	topo  *Topology
	node  transport.NodeID
	ep    *transport.Endpoint
	mu    sync.Mutex
	trees map[TupleID]*tree
}

func newAcker(t *Topology) *acker {
	var maxNode transport.NodeID
	for _, c := range t.components {
		if end := c.taskBase + transport.NodeID(c.tasks); end > maxNode {
			maxNode = end
		}
	}
	return &acker{topo: t, node: maxNode, trees: make(map[TupleID]*tree)}
}

func (a *acker) register(root TupleID, payload any, spout *component, initialXor uint64) {
	a.mu.Lock()
	now := time.Now()
	a.trees[root] = &tree{
		xor:      initialXor,
		payload:  payload,
		spout:    spout,
		born:     now,
		deadline: now.Add(a.topo.timeout),
	}
	a.mu.Unlock()
}

func (a *acker) run() {
	defer a.topo.wg.Done()
	for {
		env, ok := a.ep.Recv()
		if !ok {
			return
		}
		switch m := env.Payload.(type) {
		case treeAck:
			a.apply(m)
		case treeFail:
			a.fail(m.root)
		case tickMsg:
			a.expire()
		}
	}
}

func (a *acker) apply(m treeAck) {
	a.mu.Lock()
	tr, ok := a.trees[m.root]
	if !ok {
		a.mu.Unlock()
		return
	}
	tr.xor ^= m.xor
	done := tr.xor == 0
	if done {
		delete(a.trees, m.root)
	}
	a.mu.Unlock()
	if done {
		if obs := a.topo.treeObs; obs != nil {
			obs(time.Since(tr.born))
		}
		a.ep.Send(tr.spout.taskBase, ackMsg{payload: tr.payload})
	}
}

func (a *acker) fail(root TupleID) {
	a.mu.Lock()
	tr, ok := a.trees[root]
	if ok {
		delete(a.trees, root)
	}
	a.mu.Unlock()
	if ok {
		a.ep.Send(tr.spout.taskBase, failMsg{payload: tr.payload})
	}
}

func (a *acker) expire() {
	now := time.Now()
	var expired []TupleID
	a.mu.Lock()
	for root, tr := range a.trees {
		if now.After(tr.deadline) {
			expired = append(expired, root)
		}
	}
	a.mu.Unlock()
	for _, root := range expired {
		a.fail(root)
	}
}

// Pending returns the number of incomplete tuple trees.
func (a *acker) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.trees)
}

// PendingTrees reports the number of incomplete spout-tuple trees.
func (t *Topology) PendingTrees() int { return t.acker.Pending() }
